// Cost of the simulation harness itself: how much recording slows the query
// pipeline (history sink on vs. off), and how fast the conformance oracle
// replays a recorded history. Keeping both cheap is what lets the seed
// matrix in tests/sim_seeds_test.cpp afford 25 full runs in tier-1.

#include <cstdio>

#include "bench_util.h"
#include "sim/history.h"
#include "sim/oracle.h"
#include "sim/runner.h"
#include "workload/bookstore.h"

namespace rcc {
namespace bench {
namespace {

constexpr uint64_t kSeed = 20040613;
constexpr int kQueries = 2000;

/// Executes the same guarded query `kQueries` times, with or without a
/// history sink attached, returning wall milliseconds.
double DriveQueries(bool record, sim::HistoryRecorder* recorder,
                    int64_t* events_out) {
  RccSystem sys;
  if (record) sys.SetHistorySink(recorder);
  BookstoreConfig config;
  config.seed = kSeed;
  Status st = LoadBookstore(&sys, config);
  if (st.ok()) st = SetupBookstoreCache(&sys, 8000, 3000);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  sys.AdvanceTo(30000);
  auto session = sys.CreateSession();
  double ms = TimeMs([&] {
    for (int i = 0; i < kQueries; ++i) {
      sys.AdvanceBy(500);
      auto r = session->Execute(
          "SELECT isbn, price FROM Books B WHERE B.isbn < 50 "
          "CURRENCY BOUND 10 SECONDS ON (B)");
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n", r.status().ToString().c_str());
        std::exit(1);
      }
    }
  });
  if (record) {
    *events_out = static_cast<int64_t>(recorder->event_count());
    sys.SetHistorySink(nullptr);
  }
  return ms;
}

}  // namespace
}  // namespace bench
}  // namespace rcc

int main() {
  using namespace rcc;
  using namespace rcc::bench;

  PrintHeader("Simulation harness: recording overhead");
  int64_t events = 0;
  double off_ms = DriveQueries(false, nullptr, nullptr);
  sim::HistoryRecorder recorder(kSeed);
  double on_ms = DriveQueries(true, &recorder, &events);
  std::printf("  %-22s %10.1f ms  (%.1f us/query)\n", "sink off", off_ms,
              1000.0 * off_ms / kQueries);
  std::printf("  %-22s %10.1f ms  (%.1f us/query, %lld events)\n", "sink on",
              on_ms, 1000.0 * on_ms / kQueries,
              static_cast<long long>(events));
  std::printf("  %-22s %9.1f%%\n", "overhead",
              off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0);

  PrintHeader("Conformance oracle: replay throughput");
  sim::SimRunConfig cfg;
  cfg.seed = kSeed;
  cfg.faults = sim::FaultMix::kCombined;
  cfg.steps = 400;
  auto run = sim::RunSimulation(cfg);
  if (!run.ok()) {
    std::fprintf(stderr, "run failed: %s\n", run.status().ToString().c_str());
    return 1;
  }
  const sim::History& history = run->history;
  sim::OracleReport report;
  double check_ms = TimeMs([&] {
    for (int i = 0; i < 20; ++i) report = sim::CheckHistory(history);
  });
  double per_replay = check_ms / 20.0;
  std::printf("  %zu events, %lld answers per replay\n",
              history.events.size(),
              static_cast<long long>(report.answers_checked));
  std::printf("  %-22s %10.2f ms/replay  (%.0f events/ms)\n", "CheckHistory",
              per_replay,
              per_replay > 0 ? history.events.size() / per_replay : 0.0);
  std::printf("  violations: %zu (expected 0 in an unmutated build)\n",
              report.violations.size());

  // Seed-stamped metrics record of this bench run (gauge rcc.run.seed).
  obs::MetricsRegistry metrics;
  metrics.gauge("rcc.sim.record_overhead_pct")
      ->Set(off_ms > 0 ? 100.0 * (on_ms - off_ms) / off_ms : 0.0);
  metrics.gauge("rcc.sim.oracle_ms_per_replay")->Set(per_replay);
  metrics.gauge("rcc.sim.history_events")
      ->Set(static_cast<double>(history.events.size()));
  WriteMetricsJson(metrics, "bench_sim_harness", kSeed);
  return report.violations.empty() ? 0 : 1;
}
