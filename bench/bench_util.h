#ifndef RCC_BENCH_BENCH_UTIL_H_
#define RCC_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "common/strings.h"
#include "core/rcc.h"
#include "workload/tpcd.h"

namespace rcc {
namespace bench {

/// Milliseconds of real time spent in `fn`.
template <typename Fn>
double TimeMs(Fn&& fn) {
  auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// Builds the paper's evaluation system (§4): TPCD at `scale` with the
/// Table 4.1 cache configuration, advanced past warm-up so regions are in
/// steady state.
inline std::unique_ptr<RccSystem> MakePaperSystem(double scale) {
  auto sys = std::make_unique<RccSystem>();
  TpcdConfig config;
  config.scale = scale;
  Status st = LoadTpcd(sys.get(), config);
  if (!st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  st = SetupPaperCache(sys.get());
  if (!st.ok()) {
    std::fprintf(stderr, "cache setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  sys->AdvanceTo(60000);
  return sys;
}

inline void PrintHeader(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

/// Writes a metrics registry (schema rcc.metrics.v1, DESIGN.md §9) to
/// `<bench_name>.metrics.json` in the working directory, so every bench run
/// leaves a machine-readable record next to its printed tables. The run's
/// seed is stamped into the dump (gauge `rcc.run.seed`) so any figure can be
/// reproduced from its metrics file alone.
inline void WriteMetricsJson(obs::MetricsRegistry& metrics,
                             const std::string& bench_name, uint64_t seed) {
  metrics.gauge("rcc.run.seed")->Set(static_cast<double>(seed));
  std::string path = bench_name + ".metrics.json";
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::string json = metrics.ToJson();
  std::fwrite(json.data(), 1, json.size(), f);
  std::fputc('\n', f);
  std::fclose(f);
  std::printf("\nmetrics written to %s\n", path.c_str());
}

/// Dumps the metrics of the system the bench measured, stamped with the
/// system's configured seed.
inline void DumpMetricsJson(RccSystem& sys, const std::string& bench_name) {
  WriteMetricsJson(sys.metrics(), bench_name, sys.config().seed);
}

/// Prints the Table 4.1 region settings actually in effect.
inline void PrintRegionSettings(RccSystem* sys) {
  std::printf("Currency region settings (paper Table 4.1):\n");
  std::printf("  %-4s %-12s %-9s %s\n", "cid", "interval(s)", "delay(s)",
              "views");
  for (const RegionDef& def : sys->cache()->catalog().AllRegions()) {
    std::string views;
    for (const ViewDef* v : sys->cache()->catalog().AllViews()) {
      if (v->region == def.cid) {
        if (!views.empty()) views += ", ";
        views += v->name;
      }
    }
    std::printf("  CR%-2d %-12lld %-9lld %s\n", def.cid,
                static_cast<long long>(def.update_interval / 1000),
                static_cast<long long>(def.update_delay / 1000),
                views.c_str());
  }
}

}  // namespace bench
}  // namespace rcc

#endif  // RCC_BENCH_BENCH_UTIL_H_
