// Reproduces the paper's query-optimization experiment (§4.1): Tables 4.2 /
// 4.3 and the plan classes of Figure 4.1. For each query variant we print
// the currency clause, the chosen plan shape, and the plan tree, and check
// the qualitative choice against the paper.

#include <cstdio>
#include <vector>

#include "bench_util.h"

using namespace rcc;         // NOLINT
using namespace rcc::bench;  // NOLINT

namespace {

struct Variant {
  const char* id;
  const char* description;
  std::string sql;
  PlanShape expected;
  const char* paper_plan;
};

int failures = 0;

void RunVariant(Session* session, const Variant& v) {
  auto plan = session->Prepare(v.sql);
  if (!plan.ok()) {
    std::printf("%-4s ERROR: %s\n", v.id, plan.status().ToString().c_str());
    ++failures;
    return;
  }
  PlanShape shape = plan->Shape();
  bool ok = shape == v.expected;
  if (!ok) ++failures;
  std::printf("%-4s %-52s -> %-26s (paper: %s) %s\n", v.id, v.description,
              std::string(PlanShapeName(shape)).c_str(), v.paper_plan,
              ok ? "[OK]" : "[MISMATCH]");
  std::printf("     query: %s\n", v.sql.c_str());
  std::printf("%s\n", plan->DescribeTree().c_str());
}

}  // namespace

int main() {
  auto sys = MakePaperSystem(/*scale=*/0.1);  // 15,000 customers
  auto session = sys->CreateSession();

  PrintHeader("Plan choice vs. C&C constraints (paper Tables 4.2/4.3, Fig 4.1)");
  PrintRegionSettings(sys.get());
  std::printf("\n");

  // Query schemas S1/S2 of Table 4.2, with the Table 4.3 variants.
  const char* join =
      "SELECT C.c_name, O.o_orderkey, O.o_totalprice "
      "FROM Customer C, Orders O "
      "WHERE C.c_custkey = %s AND O.o_custkey = C.c_custkey %s";
  const char* range =
      "SELECT c_custkey, c_acctbal FROM Customer C WHERE c_acctbal > %s %s";

  std::vector<Variant> variants;
  variants.push_back(
      {"Q1",
       "selective join, no currency clause",
       StrPrintf(join, "42", ""),
       PlanShape::kRemoteOnly, "plan 1 (remote)"});
  variants.push_back(
      {"Q2",
       "wide join (all customers), no currency clause",
       "SELECT C.c_name, O.o_orderkey, O.o_totalprice "
       "FROM Customer C, Orders O WHERE O.o_custkey = C.c_custkey",
       PlanShape::kLocalJoinRemoteFetches,
       "plan 2 (local join, remote fetches)"});
  variants.push_back(
      {"Q3",
       "10 min bounds, C and O mutually consistent",
       StrPrintf(join, "42", "CURRENCY BOUND 10 MIN ON (C, O)"),
       PlanShape::kRemoteOnly, "plan 1 (remote: regions differ)"});
  variants.push_back(
      {"Q4",
       "3s bound on C (< delay), 10 min on O",
       StrPrintf(join, "42",
                 "CURRENCY BOUND 3 SECONDS ON (C), 10 MIN ON (O)"),
       PlanShape::kMixed, "plan 4 (mixed)"});
  variants.push_back(
      {"Q5",
       "10 min on C and O separately",
       StrPrintf(join, "42",
                 "CURRENCY BOUND 10 MIN ON (C), 10 MIN ON (O)"),
       PlanShape::kAllLocal, "plan 5 (all local)"});
  variants.push_back(
      {"Q6",
       "highly selective range on c_acctbal, 10 min",
       StrPrintf(range, "9995", "CURRENCY BOUND 10 MIN ON (C)"),
       PlanShape::kRemoteOnly,
       "remote (back-end secondary index wins)"});
  variants.push_back(
      {"Q7",
       "wide range on c_acctbal, 10 min",
       StrPrintf(range, "1000", "CURRENCY BOUND 10 MIN ON (C)"),
       PlanShape::kAllLocal, "local (scan beats remote index)"});

  for (const Variant& v : variants) {
    RunVariant(session.get(), v);
  }

  std::printf("summary: %d/%zu plan choices match the paper\n",
              static_cast<int>(variants.size()) - failures, variants.size());
  DumpMetricsJson(*sys, "bench_plan_choice");
  return failures == 0 ? 0 : 1;
}
