// QPS scaling of the concurrent batch engine: the paper's guard workload
// (point lookups + range scans with relaxed currency bounds, so guards pass
// and queries stay on the cache) executed through RccSystem::ExecuteConcurrent
// at 1, 2, 4 and 8 workers. Speedups are bounded by the host's core count —
// the harness prints hardware_concurrency so numbers from small containers
// read correctly.

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"

namespace rcc {
namespace bench {
namespace {

std::vector<std::string> MakeWorkload(int queries) {
  // Read-mostly mix modelled on the §4.3 guard queries: mostly Q1-style
  // clustered point lookups, with a Q3-style wide scan every 8th query. The
  // 10-minute bounds keep every guard passing, so the batch measures pure
  // cache-side execution (the remote channel is serialized and would
  // otherwise dominate).
  std::vector<std::string> sqls;
  sqls.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    if (i % 8 == 7) {
      sqls.push_back(
          "SELECT c_custkey, c_acctbal FROM Customer C "
          "WHERE C.c_acctbal > 5000 CURRENCY BOUND 10 MIN ON (C)");
    } else {
      int key = 1 + (i * 37) % 1000;
      sqls.push_back(
          "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
          "WHERE C.c_custkey = " +
          std::to_string(key) + " CURRENCY BOUND 10 MIN ON (C)");
    }
  }
  return sqls;
}

void Run() {
  PrintHeader("Concurrent batch throughput (worker-pool scaling)");
  std::printf("hardware_concurrency: %u, ThreadPool default: %d\n",
              std::thread::hardware_concurrency(),
              ThreadPool::DefaultWorkers());

  auto sys = MakePaperSystem(/*scale=*/0.05);
  const int kQueries = 512;
  std::vector<std::string> sqls = MakeWorkload(kQueries);

  // Warm-up pass (first-touch allocations, catalog caches).
  {
    ConcurrentBatchOptions opts;
    opts.workers = 1;
    auto results = sys->ExecuteConcurrent(sqls, opts);
    int64_t rows = 0;
    for (const auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
      rows += static_cast<int64_t>(r->rows.size());
    }
    std::printf("workload: %d queries/batch, %lld rows/batch\n", kQueries,
                static_cast<long long>(rows));
  }

  std::printf("\n  %-8s %-12s %-12s %s\n", "workers", "batch(ms)", "QPS",
              "speedup vs 1");
  double base_qps = 0;
  for (int workers : {1, 2, 4, 8}) {
    ConcurrentBatchOptions opts;
    opts.workers = workers;
    // Best of several batches: scheduler noise only ever adds time.
    double best_ms = -1;
    for (int rep = 0; rep < 5; ++rep) {
      double elapsed = TimeMs([&] {
        auto results = sys->ExecuteConcurrent(sqls, opts);
        if (!results.front().ok() || !results.back().ok()) std::exit(1);
      });
      if (best_ms < 0 || elapsed < best_ms) best_ms = elapsed;
    }
    double qps = kQueries / (best_ms / 1000.0);
    if (workers == 1) base_qps = qps;
    sys->metrics()
        .gauge(StrPrintf("rcc.bench.qps.workers_%d", workers))
        ->Set(qps);
    std::printf("  %-8d %-12.1f %-12.0f %.2fx\n", workers, best_ms, qps,
                qps / base_qps);
  }
  std::printf(
      "\nNote: speedup is capped by physical cores; on a single-core host\n"
      "all worker counts collapse to ~1x while remaining correct (the\n"
      "equivalence tests in concurrency_test assert pooled == serial).\n");
  DumpMetricsJson(*sys, "bench_concurrent_throughput");
}

}  // namespace
}  // namespace bench
}  // namespace rcc

int main() {
  rcc::bench::Run();
  return 0;
}
