// QPS scaling of the concurrent batch engine: the paper's guard workload
// (point lookups + range scans with relaxed currency bounds, so guards pass
// and queries stay on the cache) executed through RccSystem::ExecuteConcurrent
// at 1, 2, 4 and 8 workers. Speedups are bounded by the host's core count —
// the harness prints hardware_concurrency so numbers from small containers
// read correctly.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "common/thread_pool.h"
#include "replication/region.h"
#include "replication/snapshot.h"

namespace rcc {
namespace bench {
namespace {

std::vector<std::string> MakeWorkload(int queries) {
  // Read-mostly mix modelled on the §4.3 guard queries: mostly Q1-style
  // clustered point lookups, with a Q3-style wide scan every 8th query. The
  // 10-minute bounds keep every guard passing, so the batch measures pure
  // cache-side execution (the remote channel is serialized and would
  // otherwise dominate).
  std::vector<std::string> sqls;
  sqls.reserve(queries);
  for (int i = 0; i < queries; ++i) {
    if (i % 8 == 7) {
      sqls.push_back(
          "SELECT c_custkey, c_acctbal FROM Customer C "
          "WHERE C.c_acctbal > 5000 CURRENCY BOUND 10 MIN ON (C)");
    } else {
      int key = 1 + (i * 37) % 1000;
      sqls.push_back(
          "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
          "WHERE C.c_custkey = " +
          std::to_string(key) + " CURRENCY BOUND 10 MIN ON (C)");
    }
  }
  return sqls;
}

// ---------------------------------------------------------------------------
// Read throughput *during delivery*: MVCC snapshot pins vs the old exclusive
// delivery lock. A writer applies heavy delivery batches to a 20k-row view
// at a fixed cadence while reader threads scan continuously; we count the
// scans that *complete while a batch is in flight* and divide by the total
// in-flight time. The locked arm reproduces the pre-MVCC protocol — readers
// hold a shared lock per scan, delivery holds the exclusive lock while it
// applies the whole batch in place (with writer priority, as the engine's
// delivery path had: readers drain, then the batch runs) — so the in-flight
// read rate collapses to the few scans that straddle the lock hand-off. The
// MVCC arm clones off to the side and publishes atomically; readers pin an
// epoch and keep scanning at their free-running rate. Reader CPU share
// differs between hosts (on a single core the clone work competes with the
// scans), which is why the comparison isolates the in-flight window — the
// thing the refactor changes — instead of whole-run throughput.

constexpr int kViewRows = 20000;
constexpr int kBatchOps = 20000;
constexpr int kDeliveryReaders = 4;
constexpr int kDeliveryRounds = 12;
constexpr int kInterBatchGapMs = 5;

std::unique_ptr<MaterializedView> MakeItemsView() {
  TableDef items;
  items.name = "Items";
  items.schema = Schema({{"id", ValueType::kInt64},
                         {"cat", ValueType::kInt64},
                         {"price", ValueType::kDouble}});
  items.clustered_key = {"id"};
  ViewDef def;
  def.name = "items_copy";
  def.source_table = "Items";
  def.columns = {"id", "cat", "price"};
  def.region = 1;
  auto view_or = MaterializedView::Create(def, items);
  if (!view_or.ok()) {
    std::fprintf(stderr, "view setup failed: %s\n",
                 view_or.status().ToString().c_str());
    std::exit(1);
  }
  auto view = std::move(*view_or);
  for (int64_t id = 1; id <= kViewRows; ++id) {
    RowOp op;
    op.kind = RowOp::Kind::kInsert;
    op.table = "Items";
    op.row = {Value::Int(id), Value::Int(id % 8), Value::Double(id * 0.5)};
    view->ApplyOp(op);
  }
  return view;
}

/// One delivery batch: price updates across the key space, preserving row
/// count so both arms scan identical volumes all window long.
void ApplyBatch(MaterializedView* view, int round) {
  for (int i = 0; i < kBatchOps; ++i) {
    int64_t id = 1 + (round * kBatchOps + i * 7) % kViewRows;
    RowOp op;
    op.kind = RowOp::Kind::kUpdate;
    op.table = "Items";
    op.key = {Value::Int(id)};
    op.row = {Value::Int(id), Value::Int(i % 8), Value::Double(round + i * 0.1)};
    view->ApplyOp(op);
  }
}

int64_t ScanView(const MaterializedView& view) {
  int64_t hits = 0;
  view.data().Scan([&hits](const Row& row) {
    if (row[2].AsDouble() > 100.0) ++hits;
    return true;
  });
  return hits;
}

struct DeliveryReadStats {
  /// Scans completed while a delivery batch was in flight.
  long scans_during = 0;
  /// Total time batches were in flight, ms.
  double delivery_ms = 0;
  double scans_per_sec() const {
    return delivery_ms > 0 ? scans_during / (delivery_ms / 1000.0) : 0;
  }
};

DeliveryReadStats RunLockedArm() {
  auto view = MakeItemsView();
  std::shared_mutex mu;
  std::atomic<bool> stop{false};
  std::atomic<bool> in_delivery{false};
  // Writer priority, as the old delivery path had: readers drain and queue
  // behind a waiting delivery instead of starving it (pthread rwlocks
  // default to reader preference, which would let continuous scans postpone
  // the batch forever).
  std::atomic<bool> writer_waiting{false};
  std::atomic<long> scans_during{0};
  std::atomic<int64_t> sink{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kDeliveryReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        if (writer_waiting.load(std::memory_order_relaxed)) {
          std::this_thread::yield();
          continue;
        }
        std::shared_lock<std::shared_mutex> l(mu);
        sink.fetch_add(ScanView(*view), std::memory_order_relaxed);
        if (in_delivery.load(std::memory_order_relaxed)) {
          scans_during.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  double delivery_ms = 0;
  for (int round = 0; round < kDeliveryRounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kInterBatchGapMs));
    writer_waiting.store(true);
    std::unique_lock<std::shared_mutex> l(mu);
    writer_waiting.store(false);
    in_delivery.store(true);
    delivery_ms += TimeMs([&] { ApplyBatch(view.get(), round); });
    in_delivery.store(false);
  }
  stop.store(true);
  for (std::thread& r : readers) r.join();
  return {scans_during.load(), delivery_ms};
}

DeliveryReadStats RunMvccArm() {
  RegionDef region_def;
  region_def.cid = 1;
  CurrencyRegion region(region_def);
  region.AddView(MakeItemsView());
  std::atomic<bool> stop{false};
  std::atomic<bool> in_delivery{false};
  std::atomic<long> scans_during{0};
  std::atomic<int64_t> sink{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < kDeliveryReaders; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotPin pin(region.epochs());
        const RegionSnapshot* snap = pin.Acquire(&region);
        sink.fetch_add(ScanView(*snap->views[0]), std::memory_order_relaxed);
        if (in_delivery.load(std::memory_order_relaxed)) {
          scans_during.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  double delivery_ms = 0;
  for (int round = 0; round < kDeliveryRounds; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(kInterBatchGapMs));
    in_delivery.store(true);
    delivery_ms += TimeMs([&] {
      region.PublishUpdate(
          [&](const RegionSnapshot& cur, RegionSnapshot* next) {
            auto clone = cur.views[0]->Clone();
            ApplyBatch(clone.get(), round);
            next->views[0] = std::move(clone);
            next->heartbeat = cur.heartbeat + 1;
            return true;
          });
    });
    in_delivery.store(false);
  }
  stop.store(true);
  for (std::thread& r : readers) r.join();
  return {scans_during.load(), delivery_ms};
}

void RunReadDuringDelivery(RccSystem* sys) {
  PrintHeader("Read throughput during delivery (MVCC pins vs exclusive lock)");
  std::printf(
      "view: %d rows, %d batches of %d updates, %d reader threads\n",
      kViewRows, kDeliveryRounds, kBatchOps, kDeliveryReaders);

  DeliveryReadStats locked = RunLockedArm();
  DeliveryReadStats mvcc = RunMvccArm();
  // The locked arm frequently serves *zero* scans inside the windows; +1 in
  // the denominator keeps the reported speedup a finite lower bound.
  double speedup = mvcc.scans_during / static_cast<double>(locked.scans_during + 1);

  std::printf("\n  %-22s %-16s %-16s %s\n", "protocol", "in-flight(ms)",
              "scans during", "scans/sec during");
  std::printf("  %-22s %-16.1f %-16ld %.0f\n", "exclusive lock",
              locked.delivery_ms, locked.scans_during, locked.scans_per_sec());
  std::printf("  %-22s %-16.1f %-16ld %.0f\n", "mvcc snapshot pins",
              mvcc.delivery_ms, mvcc.scans_during, mvcc.scans_per_sec());
  std::printf(
      "\nread-throughput-during-delivery speedup: %.1fx (target >= 5x)\n",
      speedup);
  sys->metrics()
      .gauge("rcc.bench.mvcc.read_qps_during_delivery")
      ->Set(mvcc.scans_per_sec());
  sys->metrics()
      .gauge("rcc.bench.mvcc.locked_read_qps_during_delivery")
      ->Set(locked.scans_per_sec());
  sys->metrics().gauge("rcc.bench.mvcc.read_during_delivery_speedup")->Set(speedup);
}

void Run(bool delivery_only) {
  PrintHeader("Concurrent batch throughput (worker-pool scaling)");
  std::printf("hardware_concurrency: %u, ThreadPool default: %d\n",
              std::thread::hardware_concurrency(),
              ThreadPool::DefaultWorkers());

  auto sys = MakePaperSystem(/*scale=*/0.05);
  if (delivery_only) {
    RunReadDuringDelivery(sys.get());
    DumpMetricsJson(*sys, "bench_concurrent_throughput");
    return;
  }
  const int kQueries = 512;
  std::vector<std::string> sqls = MakeWorkload(kQueries);

  // Warm-up pass (first-touch allocations, catalog caches).
  {
    ConcurrentBatchOptions opts;
    opts.workers = 1;
    auto results = sys->ExecuteConcurrent(sqls, opts);
    int64_t rows = 0;
    for (const auto& r : results) {
      if (!r.ok()) {
        std::fprintf(stderr, "query failed: %s\n",
                     r.status().ToString().c_str());
        std::exit(1);
      }
      rows += static_cast<int64_t>(r->rows.size());
    }
    std::printf("workload: %d queries/batch, %lld rows/batch\n", kQueries,
                static_cast<long long>(rows));
  }

  std::printf("\n  %-8s %-12s %-12s %s\n", "workers", "batch(ms)", "QPS",
              "speedup vs 1");
  double base_qps = 0;
  for (int workers : {1, 2, 4, 8}) {
    ConcurrentBatchOptions opts;
    opts.workers = workers;
    // Best of several batches: scheduler noise only ever adds time.
    double best_ms = -1;
    for (int rep = 0; rep < 5; ++rep) {
      double elapsed = TimeMs([&] {
        auto results = sys->ExecuteConcurrent(sqls, opts);
        if (!results.front().ok() || !results.back().ok()) std::exit(1);
      });
      if (best_ms < 0 || elapsed < best_ms) best_ms = elapsed;
    }
    double qps = kQueries / (best_ms / 1000.0);
    if (workers == 1) base_qps = qps;
    sys->metrics()
        .gauge(StrPrintf("rcc.bench.qps.workers_%d", workers))
        ->Set(qps);
    std::printf("  %-8d %-12.1f %-12.0f %.2fx\n", workers, best_ms, qps,
                qps / base_qps);
  }
  std::printf(
      "\nNote: speedup is capped by physical cores; on a single-core host\n"
      "all worker counts collapse to ~1x while remaining correct (the\n"
      "equivalence tests in concurrency_test assert pooled == serial).\n");
  RunReadDuringDelivery(sys.get());
  DumpMetricsJson(*sys, "bench_concurrent_throughput");
}

}  // namespace
}  // namespace bench
}  // namespace rcc

int main(int argc, char** argv) {
  // --read-during-delivery skips the (slow) worker-scaling sweep and runs
  // only the MVCC-vs-lock section.
  bool delivery_only =
      argc > 1 && std::string(argv[1]) == "--read-during-delivery";
  rcc::bench::Run(delivery_only);
  return 0;
}
