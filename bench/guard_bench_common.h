#ifndef RCC_BENCH_GUARD_BENCH_COMMON_H_
#define RCC_BENCH_GUARD_BENCH_COMMON_H_

// Shared fixture for the currency-guard overhead experiments (paper §4.3,
// Tables 4.4 and 4.5): the three query types and three plan variants per
// query — traditional local (view, no guard), traditional remote, and the
// dynamic plan with currency guards. The dynamic plan is measured twice,
// once with guards passing (local branches) and once with the regions'
// heartbeats artificially aged so every guard fails (remote branches),
// mirroring the paper's "ran the plan with currency checking twice".

#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "exec/executor.h"

namespace rcc {
namespace bench {

struct GuardQuery {
  const char* id;
  const char* description;
  std::string base_sql;        // without currency clause
  std::string relaxed_clause;  // clause making the local branch qualify
  int local_iters;
  int remote_iters;
};

inline std::vector<GuardQuery> PaperGuardQueries() {
  std::vector<GuardQuery> out;
  // Q1: single-row clustered-index lookup.
  out.push_back({"Q1", "point lookup (1 row)",
                 "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
                 "WHERE C.c_custkey = 42",
                 " CURRENCY BOUND 10 MIN ON (C)", 200000, 10000});
  // Q2: one-customer nested-loop join (paper: 6 rows).
  out.push_back({"Q2", "1-customer join (~10 rows)",
                 "SELECT C.c_name, O.o_orderkey, O.o_totalprice "
                 "FROM Customer C, Orders O "
                 "WHERE C.c_custkey = 42 AND O.o_custkey = C.c_custkey",
                 " CURRENCY BOUND 10 MIN ON (C), 10 MIN ON (O)", 100000,
                 5000});
  // Q3: a scan query returning thousands of rows (paper: 5975 rows). The
  // range is wide enough that the local view scan beats the remote index,
  // so the dynamic plan keeps a local branch (the paper's Q3 used a full
  // table scan on both servers).
  out.push_back({"Q3", "45% range scan (~6800 rows)",
                 "SELECT c_custkey, c_acctbal FROM Customer C "
                 "WHERE C.c_acctbal > 5000",
                 " CURRENCY BOUND 10 MIN ON (C)", 1000, 100});
  return out;
}

struct PlanVariants {
  QueryPlan local_plain;   // matched view, no guard (traditional local)
  QueryPlan guarded;       // SwitchUnion plan (branch chosen by the guard)
  QueryPlan remote_plain;  // pure remote (traditional remote)
};

inline QueryPlan PrepareWith(RccSystem* sys, const std::string& sql,
                             bool view_matching, bool guards) {
  auto select = ParseSelect(sql);
  if (!select.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 select.status().ToString().c_str());
    std::exit(1);
  }
  OptimizerOptions opts = sys->cache()->default_options();
  opts.enable_view_matching = view_matching;
  opts.enable_currency_guards = guards;
  auto plan = sys->cache()->Prepare(**select, opts);
  if (!plan.ok()) {
    std::fprintf(stderr, "optimize failed for %s: %s\n", sql.c_str(),
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*plan);
}

inline PlanVariants MakeVariants(RccSystem* sys, const GuardQuery& q) {
  PlanVariants v;
  v.local_plain = PrepareWith(sys, q.base_sql + q.relaxed_clause, true, false);
  v.guarded = PrepareWith(sys, q.base_sql + q.relaxed_clause, true, true);
  v.remote_plain = PrepareWith(sys, q.base_sql, false, true);
  return v;
}

/// RAII helper: while alive, every region's local heartbeat is aged far into
/// the past so all currency guards fail and dynamic plans execute their
/// remote branches.
class ForcedStaleness {
 public:
  explicit ForcedStaleness(RccSystem* sys) : sys_(sys) {
    for (const RegionDef& def : sys->cache()->catalog().AllRegions()) {
      CurrencyRegion* region = sys->cache()->region(def.cid);
      saved_[def.cid] = region->local_heartbeat();
      region->set_local_heartbeat(-1000000000);
    }
  }
  ~ForcedStaleness() {
    for (const auto& [cid, hb] : saved_) {
      sys_->cache()->region(cid)->set_local_heartbeat(hb);
    }
  }

 private:
  RccSystem* sys_;
  std::map<RegionId, SimTimeMs> saved_;
};

/// Runs a prepared plan `iters` times through the executor (no result
/// post-processing, like an already-optimized server-side plan); returns the
/// average elapsed real time in ms. Phase stats accumulate into `total` when
/// non-null; the produced row count lands in `rows_out`.
inline double RunPlan(RccSystem* sys, const QueryPlan& plan, int iters,
                      ExecStats* total, int64_t* rows_out) {
  ExecStats stats;
  ExecContext ctx = sys->cache()->MakeExecContext(&stats);
  // One warm-up execution (also captures the row count).
  {
    auto result = ExecutePlan(plan, &ctx);
    if (!result.ok()) {
      std::fprintf(stderr, "execution failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    if (rows_out != nullptr) {
      *rows_out = static_cast<int64_t>(result->rows.size());
    }
  }
  stats.Reset();
  // Split into chunks and keep the fastest: scheduler noise only ever adds
  // time, so the minimum is the most faithful per-execution estimate.
  constexpr int kChunks = 7;
  int chunk_iters = iters / kChunks + 1;
  double best = -1;
  for (int c = 0; c < kChunks; ++c) {
    double elapsed = TimeMs([&] {
      for (int i = 0; i < chunk_iters; ++i) {
        auto result = ExecutePlan(plan, &ctx);
        if (!result.ok()) std::exit(1);
      }
    });
    double per_iter = elapsed / chunk_iters;
    if (best < 0 || per_iter < best) best = per_iter;
  }
  if (total != nullptr) {
    total->setup_ms += stats.setup_ms;
    total->run_ms += stats.run_ms;
    total->shutdown_ms += stats.shutdown_ms;
    total->Accumulate(stats);
  }
  return best;
}

}  // namespace bench
}  // namespace rcc

#endif  // RCC_BENCH_GUARD_BENCH_COMMON_H_
