// Reproduces Table 4.4: the overhead of currency guards, for local and
// remote execution of the three paper query types. For each query we compare
// a traditional plan (no currency checking) with the dynamic plan, executed
// once with the guards passing (local branches) and once with the regions
// artificially aged so the guards fail (remote branches) — the paper's
// two-run methodology.

#include <cstdio>

#include "guard_bench_common.h"

using namespace rcc;         // NOLINT
using namespace rcc::bench;  // NOLINT

int main() {
  auto sys = MakePaperSystem(/*scale=*/0.1);

  PrintHeader("Currency-guard overhead (paper Table 4.4)");
  PrintRegionSettings(sys.get());
  std::printf(
      "\n%-4s %-26s | %-10s %-10s %-9s %-7s | %-10s %-10s %-9s %-7s\n", "",
      "", "local(ms)", "+guard", "ovh(ms)", "ovh(%)", "remote(ms)", "+guard",
      "ovh(ms)", "ovh(%)");

  for (const GuardQuery& q : PaperGuardQueries()) {
    PlanVariants v = MakeVariants(sys.get(), q);

    // Sanity: route checking.
    {
      auto lg = sys->cache()->ExecutePrepared(v.guarded);
      if (!lg.ok() || lg->stats.switch_local == 0) {
        std::fprintf(stderr, "%s: guard did not choose local\n", q.id);
        return 1;
      }
      ForcedStaleness stale(sys.get());
      auto rg = sys->cache()->ExecutePrepared(v.guarded);
      if (!rg.ok() || rg->stats.switch_remote == 0 ||
          rg->stats.switch_local != 0) {
        std::fprintf(stderr, "%s: guard did not choose remote when stale\n",
                     q.id);
        return 1;
      }
    }

    int64_t rows = 0;
    double local_plain =
        RunPlan(sys.get(), v.local_plain, q.local_iters, nullptr, &rows);
    double local_guarded =
        RunPlan(sys.get(), v.guarded, q.local_iters, nullptr, &rows);
    double remote_plain =
        RunPlan(sys.get(), v.remote_plain, q.remote_iters, nullptr, &rows);
    double remote_guarded = 0;
    {
      ForcedStaleness stale(sys.get());
      remote_guarded =
          RunPlan(sys.get(), v.guarded, q.remote_iters, nullptr, &rows);
    }

    double lo = local_guarded - local_plain;
    double ro = remote_guarded - remote_plain;
    std::printf(
        "%-4s %-26s | %-10.5f %-10.5f %-9.5f %-7.2f | %-10.5f %-10.5f "
        "%-9.5f %-7.2f   rows=%lld\n",
        q.id, q.description, local_plain, local_guarded, lo,
        100.0 * lo / local_plain, remote_plain, remote_guarded, ro,
        100.0 * ro / remote_plain, static_cast<long long>(rows));
  }

  std::printf(
      "\nShape check (paper): absolute overhead far below a millisecond; "
      "relative overhead\nlargest for tiny local queries (Q1/Q2), small for "
      "remote and scan-heavy queries (Q3).\n");
  DumpMetricsJson(*sys, "bench_guard_overhead");
  return 0;
}
