// Google-benchmark microbenchmarks for the pipeline stages: parsing the
// extended SQL (currency clause included), constraint normalization,
// cache-mode optimization, guard evaluation, and end-to-end execution of the
// paper's Q1. These are the building blocks behind Tables 4.4/4.5.

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "exec/switch_union.h"
#include "semantics/resolver.h"

namespace rcc {
namespace {

const char* kJoinSql =
    "SELECT C.c_name, O.o_orderkey, O.o_totalprice "
    "FROM Customer C, Orders O "
    "WHERE C.c_custkey = 42 AND O.o_custkey = C.c_custkey "
    "CURRENCY BOUND 10 MIN ON (C), 30 SECONDS ON (O)";

RccSystem* System() {
  static RccSystem* sys = [] {
    auto owned = bench::MakePaperSystem(0.01);
    return owned.release();
  }();
  return sys;
}

void BM_ParseCurrencyClauseQuery(benchmark::State& state) {
  for (auto _ : state) {
    auto stmt = ParseSelect(kJoinSql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_ParseCurrencyClauseQuery);

void BM_ResolveAndNormalize(benchmark::State& state) {
  auto stmt = ParseSelect(kJoinSql);
  const Catalog& catalog = System()->cache()->catalog();
  for (auto _ : state) {
    auto rq = ResolveQuery(**stmt, catalog);
    benchmark::DoNotOptimize(rq);
  }
}
BENCHMARK(BM_ResolveAndNormalize);

void BM_NormalizeConstraint(benchmark::State& state) {
  // A chain of overlapping tuples forcing repeated merging.
  CcConstraint raw;
  for (uint32_t i = 0; i + 1 < 8; ++i) {
    CcTuple t;
    t.bound_ms = 1000 * (i + 1);
    t.operands = {i, i + 1};
    raw.tuples.push_back(std::move(t));
  }
  for (auto _ : state) {
    auto n = NormalizeConstraint(raw, 8);
    benchmark::DoNotOptimize(n);
  }
}
BENCHMARK(BM_NormalizeConstraint);

void BM_OptimizeCacheMode(benchmark::State& state) {
  auto stmt = ParseSelect(kJoinSql);
  CacheDbms* cache = System()->cache();
  for (auto _ : state) {
    auto plan = cache->Prepare(**stmt);
    benchmark::DoNotOptimize(plan);
  }
}
BENCHMARK(BM_OptimizeCacheMode);

void BM_GuardEvaluation(benchmark::State& state) {
  RccSystem* sys = System();
  PhysicalOp op;
  op.kind = PhysOpKind::kSwitchUnion;
  op.guard_region = 1;
  op.guard_bound_ms = 600000;
  ExecStats stats;
  ExecContext ctx = sys->cache()->MakeExecContext(&stats);
  for (auto _ : state) {
    bool ok = SwitchUnionIterator::EvaluateGuard(op, &ctx);
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_GuardEvaluation);

void BM_ExecuteLocalPointLookup(benchmark::State& state) {
  RccSystem* sys = System();
  auto stmt = ParseSelect(
      "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
      "WHERE C.c_custkey = 42 CURRENCY BOUND 10 MIN ON (C)");
  auto plan = sys->cache()->Prepare(**stmt);
  if (!plan.ok()) state.SkipWithError("prepare failed");
  for (auto _ : state) {
    auto outcome = sys->cache()->ExecutePrepared(*plan);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ExecuteLocalPointLookup);

void BM_ExecuteRemotePointLookup(benchmark::State& state) {
  RccSystem* sys = System();
  auto stmt = ParseSelect(
      "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
      "WHERE C.c_custkey = 42");
  auto plan = sys->cache()->Prepare(**stmt);
  if (!plan.ok()) state.SkipWithError("prepare failed");
  for (auto _ : state) {
    auto outcome = sys->cache()->ExecutePrepared(*plan);
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_ExecuteRemotePointLookup);

void BM_ReplicationDelivery(benchmark::State& state) {
  // One full sync cycle of both regions, including heartbeats.
  RccSystem* sys = System();
  for (auto _ : state) {
    sys->AdvanceBy(15000);
  }
}
BENCHMARK(BM_ReplicationDelivery);

}  // namespace
}  // namespace rcc

// Expanded BENCHMARK_MAIN() so the shared system's metrics registry (which
// outlives RunSpecifiedBenchmarks — System() leaks it on purpose) can be
// dumped after the run.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  rcc::bench::DumpMetricsJson(*rcc::System(), "bench_microbench");
  return 0;
}
