// Reproduces Table 4.5: where the local currency-guard overhead goes, broken
// into the executor's three phases — setup (instantiate + bind the plan),
// run (produce rows, including the one-time guard evaluation), and shutdown.
// The "ideal" column estimates the floor: the pure guard-predicate cost
// (taken from Q1's run-phase overhead) plus the shutdown overhead.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "guard_bench_common.h"

using namespace rcc;         // NOLINT
using namespace rcc::bench;  // NOLINT

int main() {
  auto sys = MakePaperSystem(/*scale=*/0.1);

  PrintHeader("Local currency-guard overhead by phase (paper Table 4.5)");

  struct Line {
    const char* id;
    double setup_abs, setup_pct;
    double run_abs, run_pct;
    double shutdown_abs, shutdown_pct;
  };
  std::vector<Line> lines;

  for (const GuardQuery& q : PaperGuardQueries()) {
    PlanVariants v = MakeVariants(sys.get(), q);
    ExecStats plain;
    ExecStats guarded;
    RunPlan(sys.get(), v.local_plain, q.local_iters, &plain, nullptr);
    RunPlan(sys.get(), v.guarded, q.local_iters, &guarded, nullptr);
    double n = q.local_iters;
    Line line;
    line.id = q.id;
    line.setup_abs = (guarded.setup_ms - plain.setup_ms) / n;
    line.setup_pct = 100.0 * (guarded.setup_ms - plain.setup_ms) /
                     std::max(plain.setup_ms, 1e-9);
    line.run_abs = (guarded.run_ms - plain.run_ms) / n;
    line.run_pct = 100.0 * (guarded.run_ms - plain.run_ms) /
                   std::max(plain.run_ms, 1e-9);
    line.shutdown_abs = (guarded.shutdown_ms - plain.shutdown_ms) / n;
    line.shutdown_pct = 100.0 * (guarded.shutdown_ms - plain.shutdown_ms) /
                        std::max(plain.shutdown_ms, 1e-9);
    lines.push_back(line);
  }

  // Ideal = Q1's run-phase overhead (≈ pure guard evaluation) + shutdown.
  double guard_eval_floor = lines.empty() ? 0.0 : std::max(lines[0].run_abs,
                                                           0.0);

  std::printf("%-4s | %-10s %-7s | %-10s %-7s | %-10s %-7s | %-10s\n", "",
              "setup(ms)", "%", "run(ms)", "%", "shutd(ms)", "%",
              "ideal(ms)");
  for (const Line& l : lines) {
    std::printf(
        "%-4s | %-10.6f %-7.1f | %-10.6f %-7.1f | %-10.6f %-7.1f | "
        "~%-9.6f\n",
        l.id, l.setup_abs, l.setup_pct, l.run_abs, l.run_pct, l.shutdown_abs,
        l.shutdown_pct, guard_eval_floor + std::max(l.shutdown_abs, 0.0));
  }
  std::printf(
      "\nShape check (paper): setup overhead grows with the number of guards "
      "in the plan\nand is independent of output size; run overhead is a "
      "one-time guard evaluation,\nso its relative share shrinks as the "
      "query returns more rows (Q3 << Q1).\n");
  DumpMetricsJson(*sys, "bench_guard_phases");
  return 0;
}
