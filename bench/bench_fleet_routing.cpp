// Fleet routing study: throughput and degraded-serve rate of the C&C-aware
// FleetRouter as the fleet grows (1 / 3 / 8 cache nodes) and per-node
// replication faults intensify, plus a deterministic quarantine-reroute
// demonstration. Every recorded history replays through the multi-node
// conformance oracle; a single violation fails the bench.
//
// Acceptance (ISSUE): a quarantined node's traffic is rerouted to its peers
// with zero constraint-violating serves — the tie-winning node receives all
// cache-tier dispatches while healthy, none while its certification is
// withdrawn, and the oracle finds nothing to flag across every run.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "fleet/fleet.h"
#include "fleet/router.h"
#include "sim/history.h"
#include "sim/oracle.h"
#include "sql/parser.h"

using namespace rcc;         // NOLINT
using namespace rcc::bench;  // NOLINT

namespace {

constexpr uint64_t kSeed = 20040613;  // SIGMOD 2004 vintage
constexpr int kQueries = 600;
constexpr SimTimeMs kStart = 35000;
constexpr SimTimeMs kStep = 497;  // co-prime-ish with every refresh cadence

/// Query pool: two Books bounds bracketing the fleet's staleness range and a
/// Reviews query the partial nodes fail coverage on.
const char* kPool[] = {
    "SELECT title, price FROM Books B WHERE B.isbn = 7 "
    "CURRENCY BOUND 5 SECONDS ON (B)",
    "SELECT isbn, price FROM Books B WHERE B.isbn < 40 "
    "CURRENCY BOUND 20 SECONDS ON (B)",
    "SELECT isbn, rating FROM Reviews R WHERE R.isbn < 20 "
    "CURRENCY BOUND 20 SECONDS ON (R)",
};

/// Heterogeneous fleet, same cycled specs as the simulation runner: a
/// complete default-cadence node, a fast partial node without Reviews, and a
/// slow complete node.
fleet::FleetConfig MakeFleetConfig(int nodes) {
  fleet::FleetConfig fc;
  fc.seed = kSeed;
  for (int i = 0; i < nodes; ++i) {
    fleet::FleetNodeConfig nc;
    if (i % 3 == 1) {
      nc.update_interval = 4000;
      nc.update_delay = 1500;
      nc.reviews = false;
    } else if (i % 3 == 2) {
      nc.update_interval = 12000;
      nc.update_delay = 5000;
    } else {
      nc.update_interval = 8000;
      nc.update_delay = 3000;
    }
    fc.nodes.push_back(nc);
  }
  return fc;
}

std::unique_ptr<fleet::FleetSystem> MakeFleet(int nodes,
                                              sim::HistoryRecorder* recorder) {
  auto f = std::make_unique<fleet::FleetSystem>(MakeFleetConfig(nodes));
  f->SetHistorySink(recorder);
  BookstoreConfig w;
  w.books = 200;
  w.reviews_per_book = 2;
  w.sales_per_book = 2;
  w.seed = 7;
  Status st = f->LoadBookstore(w);
  if (st.ok()) st = f->SetupBookstore();
  if (!st.ok()) {
    std::fprintf(stderr, "fleet setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  f->AdvanceTo(kStart - 2000);  // steady state
  return f;
}

/// Per-node replication fault mix scaled by `intensity` in [0, 1]; every
/// node faults independently (per-node seeds, fleet-unique region ids).
ReplicationFaultConfig MakeFaults(double intensity, int node) {
  ReplicationFaultConfig cfg;
  cfg.seed = kSeed ^ 0x7E911u ^ (static_cast<uint64_t>(node) << 9);
  cfg.drop_probability = 0.20 * intensity;
  cfg.delay_probability = 0.20 * intensity;
  cfg.delay_ms = 9000;
  cfg.duplicate_probability = 0.10 * intensity;
  cfg.stall_probability = 0.08 * intensity;
  cfg.stall_wakeups = 2;
  cfg.poison_probability = 0.10 * intensity;
  return cfg;
}

Result<CacheQueryOutcome> RouteSql(fleet::FleetSystem* f,
                                   const std::string& sql) {
  RCC_ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  return f->router()->RouteSelect(*stmt, {});
}

struct RunResult {
  int total = 0;
  int ok = 0;
  int failed = 0;
  double wall_ms = 0;
  int64_t cache_routes = 0;
  int64_t backend_routes = 0;
  int64_t fallthroughs = 0;
  int64_t serves = 0;
  int64_t degraded_serves = 0;
  int64_t quarantines = 0;
  size_t violations = 0;

  double Qps() const { return wall_ms > 0 ? 1000.0 * total / wall_ms : 0.0; }
  double AnswerRate() const { return 100.0 * ok / total; }
  double BackendShare() const {
    int64_t routes = cache_routes + backend_routes;
    return routes > 0 ? 100.0 * backend_routes / routes : 0.0;
  }
  double DegradedRate() const {
    return serves > 0 ? 100.0 * degraded_serves / serves : 0.0;
  }
};

/// One cell of the sweep: `nodes` cache nodes at fault `intensity`. Routed
/// queries arrive every kStep ms with an UPDATE every third arrival (so
/// delivery batches carry ops and poisons can fire); the recorded history is
/// replayed through the conformance oracle at the end.
RunResult Run(int nodes, double intensity, bool dump_metrics = false) {
  sim::HistoryRecorder recorder(kSeed);
  std::unique_ptr<fleet::FleetSystem> f = MakeFleet(nodes, &recorder);
  if (intensity > 0) {
    for (int n = 1; n <= nodes; ++n) {
      f->SetNodeReplicationFaults(n, MakeFaults(intensity, n));
    }
  }
  std::unique_ptr<Session> dml = f->anchor()->CreateSession();

  RunResult out;
  out.total = kQueries;
  out.wall_ms = TimeMs([&] {
    for (int i = 0; i < kQueries; ++i) {
      SimTimeMs arrival = kStart + static_cast<SimTimeMs>(i) * kStep;
      if (arrival > f->Now()) f->AdvanceTo(arrival);
      if (i % 3 == 0) {
        auto upd = dml->Execute(StrPrintf(
            "UPDATE Books SET price = %d WHERE isbn = %d", 10 + i,
            1 + i % 200));
        if (!upd.ok()) {
          std::fprintf(stderr, "update failed: %s\n",
                       upd.status().ToString().c_str());
          std::exit(1);
        }
      }
      auto r = RouteSql(f.get(), kPool[i % 3]);
      if (r.ok()) {
        ++out.ok;
      } else {
        ++out.failed;
      }
    }
  });

  obs::MetricsRegistry& m = f->anchor()->metrics();
  out.fallthroughs = m.counter("rcc.fleet.fallthroughs")->value();
  for (int n = 1; n <= nodes; ++n) {
    for (const auto& agent : f->node(n)->agents()) {
      out.quarantines += agent->quarantines();
    }
  }

  sim::History h = recorder.Snapshot();
  for (const sim::HistoryEvent& ev : h.events) {
    if (ev.kind == sim::HistoryEvent::Kind::kRoute) {
      ev.backend_tier ? ++out.backend_routes : ++out.cache_routes;
    } else if (ev.kind == sim::HistoryEvent::Kind::kServe) {
      ++out.serves;
      if (ev.degraded) ++out.degraded_serves;
    }
  }
  out.violations = sim::CheckHistory(h).violations.size();
  f->SetHistorySink(nullptr);
  if (dump_metrics) {
    WriteMetricsJson(m, "bench_fleet_routing", kSeed);
  }
  return out;
}

void PrintRow(int nodes, double intensity, const RunResult& r) {
  std::printf("%-6d %-10.2f %9.0f %9.1f%% %9.1f%% %9.1f%% %7lld %8lld %6zu\n",
              nodes, intensity, r.Qps(), r.AnswerRate(), r.BackendShare(),
              r.DegradedRate(), static_cast<long long>(r.fallthroughs),
              static_cast<long long>(r.quarantines), r.violations);
}

/// The deterministic reroute demonstration: with every node eligible and
/// equal plan costs, the lowest-id tie-break sends all cache-tier traffic to
/// node 1; poisoning node 1's pipeline withdraws its certification, and the
/// same query stream must shift entirely to node 2 — with the oracle finding
/// no constraint-violating serve anywhere.
struct DemoResult {
  int64_t healthy_node1 = 0;
  int64_t healthy_other = 0;
  int64_t quarantined_node1 = 0;
  int64_t quarantined_node2 = 0;
  size_t violations = 0;
  bool quarantined = false;
};

DemoResult RunDemo() {
  constexpr const char* kDemoQuery =
      "SELECT isbn, price FROM Books B WHERE B.isbn < 40 "
      "CURRENCY BOUND 1 HOUR ON (B)";
  sim::HistoryRecorder recorder(kSeed);
  std::unique_ptr<fleet::FleetSystem> f = MakeFleet(3, &recorder);
  DemoResult out;

  // Phase A: healthy fleet, 100 loose-bound queries — all to node 1.
  for (int i = 0; i < 100; ++i) {
    f->AdvanceBy(200);
    auto r = RouteSql(f.get(), kDemoQuery);
    if (!r.ok()) std::exit(1);
  }
  {
    sim::History h = recorder.Snapshot();
    for (const sim::HistoryEvent& ev : h.events) {
      if (ev.kind != sim::HistoryEvent::Kind::kRoute || ev.backend_tier) {
        continue;
      }
      ev.node == 1 ? ++out.healthy_node1 : ++out.healthy_other;
    }
  }

  // Poison node 1's deliveries; the next batch carrying ops quarantines its
  // Books region and withdraws the certified heartbeat.
  ReplicationFaultConfig rf;
  rf.seed = kSeed;
  rf.poison_probability = 1.0;
  f->SetNodeReplicationFaults(1, rf);
  std::unique_ptr<Session> dml = f->anchor()->CreateSession();
  auto upd =
      dml->Execute("UPDATE Books SET price = price + 1 WHERE isbn <= 50");
  if (!upd.ok()) std::exit(1);
  for (int i = 0; i < 60 && !out.quarantined; ++i) {
    f->AdvanceBy(500);
    out.quarantined =
        !f->node(1)->LocalHeartbeat(fleet::BooksRegion(1)).has_value();
  }
  size_t phase_b_from = recorder.event_count();

  // Phase B: same stream with virtual time frozen (no resync can land) —
  // every dispatch must shift to node 2.
  for (int i = 0; i < 100; ++i) {
    auto r = RouteSql(f.get(), kDemoQuery);
    if (!r.ok()) std::exit(1);
  }
  sim::History h = recorder.Snapshot();
  for (size_t i = phase_b_from; i < h.events.size(); ++i) {
    const sim::HistoryEvent& ev = h.events[i];
    if (ev.kind != sim::HistoryEvent::Kind::kRoute || ev.backend_tier) {
      continue;
    }
    if (ev.node == 1) ++out.quarantined_node1;
    if (ev.node == 2) ++out.quarantined_node2;
  }
  out.violations = sim::CheckHistory(h).violations.size();
  f->SetHistorySink(nullptr);
  return out;
}

}  // namespace

int main() {
  PrintHeader(
      "Fleet routing: throughput + degraded-serve rate vs fleet size and "
      "per-node replication-fault intensity");
  std::printf(
      "Bookstore, %d routed queries per cell, arrivals every %lldms, an "
      "UPDATE every 3rd arrival; every history oracle-checked\n\n",
      kQueries, static_cast<long long>(kStep));
  std::printf("%-6s %-10s %9s %10s %10s %10s %7s %8s %6s\n", "nodes",
              "intensity", "qps", "answered", "backend", "degraded",
              "fallthr", "quarant", "viol");

  size_t total_violations = 0;
  bool all_answered = true;
  const int kSizes[] = {1, 3, 8};
  const double kIntensities[] = {0.0, 0.5, 1.0};
  for (int nodes : kSizes) {
    for (double intensity : kIntensities) {
      bool dump = nodes == 8 && intensity == 1.0;
      RunResult r = Run(nodes, intensity, dump);
      PrintRow(nodes, intensity, r);
      total_violations += r.violations;
      all_answered = all_answered && r.failed == 0;
    }
  }

  PrintHeader("Quarantine reroute demonstration (3 nodes, loose bound)");
  DemoResult demo = RunDemo();
  std::printf("healthy fleet:      node 1 served %lld/%lld cache-tier "
              "dispatches (lowest-id tie-break)\n",
              static_cast<long long>(demo.healthy_node1),
              static_cast<long long>(demo.healthy_node1 + demo.healthy_other));
  std::printf("node 1 quarantined: node 1 got %lld dispatches, node 2 got "
              "%lld  (traffic rerouted)\n",
              static_cast<long long>(demo.quarantined_node1),
              static_cast<long long>(demo.quarantined_node2));
  std::printf("oracle violations across the demo history: %zu\n",
              demo.violations);

  PrintHeader("Acceptance check");
  bool healthy_tie = demo.healthy_node1 > 0 && demo.healthy_other == 0;
  bool rerouted = demo.quarantined && demo.quarantined_node1 == 0 &&
                  demo.quarantined_node2 > 0;
  bool clean = total_violations == 0 && demo.violations == 0;
  std::printf("healthy fleet routes through tie-winner:  %s\n",
              healthy_tie ? "yes" : "NO");
  std::printf("quarantined node's traffic rerouted:      %s  (must shift "
              "entirely to the peer)\n",
              rerouted ? "yes" : "NO");
  std::printf("answer rate under every cell:             %s\n",
              all_answered ? "100%" : "DEGRADED");
  std::printf("constraint-violating serves (oracle):     %zu  (must be 0)\n",
              total_violations + demo.violations);
  bool pass = healthy_tie && rerouted && clean && all_answered;
  std::printf("\n%s\n", pass ? "ACCEPTANCE: PASS" : "ACCEPTANCE: FAIL");
  return pass ? 0 : 1;
}
