// Plan-cache acceptance bench (DESIGN.md §12): the cost of the plan phase
// with and without the cache, and the cache's behaviour under the paper's
// fixed-pool workload.
//
//  - cold: lexer -> parser -> resolver -> optimizer (what a miss pays);
//  - L1 hit: exact-text lookup (skips even the lexer);
//  - L2 hit: normalized-template lookup (one lex pass, fresh literals).
//
// Acceptance: the p50 plan phase on a hit must be at least 10x cheaper than
// the cold plan phase. The run also drives a session workload to report the
// steady-state hit rate, then dumps the metrics registry (which carries
// rcc.plancache.hits/misses/lookup_ms plus the gauges computed here) to
// bench_plan_cache.metrics.json.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/strings.h"
#include "exec/iterators.h"
#include "guard_bench_common.h"
#include "plan/plan_cache.h"
#include "sql/parser.h"

namespace rcc {
namespace {

// The paper's Q1/Q2-shaped pool: point lookups and a join, mixed bounds, so
// both switch-union and remote-only plan shapes sit in the cache.
const char* kPool[] = {
    "SELECT c_name, c_acctbal FROM Customer C WHERE C.c_custkey = 42 "
    "CURRENCY BOUND 10 MIN ON (C)",
    "SELECT c_name, c_acctbal FROM Customer C WHERE C.c_custkey = 42 "
    "CURRENCY BOUND 1 SECONDS ON (C)",
    "SELECT C.c_name, O.o_orderkey FROM Customer C, Orders O "
    "WHERE C.c_custkey = 7 AND O.o_custkey = C.c_custkey "
    "CURRENCY BOUND 10 MIN ON (C), 30 SECONDS ON (O)",
    "SELECT o_orderkey, o_totalprice FROM Orders O WHERE O.o_custkey < 20 "
    "CURRENCY BOUND 45 SECONDS ON (O)",
};
constexpr size_t kPoolSize = sizeof(kPool) / sizeof(kPool[0]);

double NowNs() {
  return std::chrono::duration<double, std::nano>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  size_t idx = static_cast<size_t>(p * static_cast<double>(samples.size()));
  if (idx >= samples.size()) idx = samples.size() - 1;
  return samples[idx];
}

/// Per-iteration latency of `fn` in nanoseconds, `iters` samples after a
/// small warm-up.
template <typename Fn>
std::vector<double> Sample(int iters, Fn&& fn) {
  for (int i = 0; i < 32; ++i) fn(i);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(iters));
  for (int i = 0; i < iters; ++i) {
    double t0 = NowNs();
    fn(i);
    out.push_back(NowNs() - t0);
  }
  return out;
}

}  // namespace

int Run() {
  auto sys = bench::MakePaperSystem(0.01);
  bench::PrintRegionSettings(sys.get());
  auto session = sys->CreateSession();
  PlanCache& cache = sys->cache()->plan_cache();

  // --- Plan-phase latency: cold vs hit -----------------------------------
  constexpr int kIters = 2000;

  // Cold: the full pipeline a miss pays before execution can start.
  std::vector<double> cold = Sample(kIters, [&](int i) {
    const char* sql = kPool[static_cast<size_t>(i) % kPoolSize];
    ParseOptions popts;
    popts.record_literal_offsets = true;
    auto stmt = ParseSelect(sql, popts);
    if (!stmt.ok()) std::abort();
    auto plan = sys->cache()->Prepare(**stmt);
    if (!plan.ok()) std::abort();
  });

  // Warm the cache through the real session path.
  for (size_t q = 0; q < kPoolSize; ++q) (void)session->Execute(kPool[q]);

  // L1: exact text, repeated verbatim (the fixed-pool steady state).
  std::vector<double> l1 = Sample(kIters, [&](int i) {
    auto looked = cache.Lookup(kPool[static_cast<size_t>(i) % kPoolSize],
                               DegradeMode::kNone, false);
    if (!looked.hit.has_value()) std::abort();
  });

  // L2: same template, a literal never seen before -> one lex pass, then the
  // normalized-template entry binds the fresh value.
  (void)session->Execute(
      "SELECT c_name FROM Customer C WHERE C.c_custkey = 1 "
      "CURRENCY BOUND 10 MIN ON (C)");
  std::vector<double> l2 = Sample(kIters, [&](int i) {
    std::string sql = StrPrintf(
        "SELECT c_name FROM Customer C WHERE C.c_custkey = %d "
        "CURRENCY BOUND 10 MIN ON (C)",
        100000 + i);
    auto looked = cache.Lookup(sql, DegradeMode::kNone, false);
    if (!looked.hit.has_value()) std::abort();
  });

  double cold_p50 = Percentile(cold, 0.5);
  double l1_p50 = Percentile(l1, 0.5);
  double l2_p50 = Percentile(l2, 0.5);
  double speedup_l1 = cold_p50 / std::max(l1_p50, 1.0);
  double speedup_l2 = cold_p50 / std::max(l2_p50, 1.0);

  bench::PrintHeader("Plan-phase latency (p50 over 2000 iterations)");
  std::printf("  %-34s %12.0f ns\n", "cold (lex+parse+resolve+optimize)",
              cold_p50);
  std::printf("  %-34s %12.0f ns   (%.1fx cheaper)\n", "L1 hit (exact text)",
              l1_p50, speedup_l1);
  std::printf("  %-34s %12.0f ns   (%.1fx cheaper)\n",
              "L2 hit (template, fresh literal)", l2_p50, speedup_l2);
  bool pass = speedup_l1 >= 10.0 && speedup_l2 >= 10.0;
  std::printf("  acceptance (>=10x on hits): %s\n", pass ? "PASS" : "FAIL");

  // --- Steady-state hit rate under the session workload ------------------
  int64_t hits0 = cache.hits();
  int64_t misses0 = cache.misses();
  constexpr int kWorkload = 4000;
  for (int i = 0; i < kWorkload; ++i) {
    // Mostly verbatim pool texts; every 8th statement varies the literal so
    // the L2 path stays exercised.
    if (i % 8 == 7) {
      (void)session->Execute(StrPrintf(
          "SELECT c_name FROM Customer C WHERE C.c_custkey = %d "
          "CURRENCY BOUND 10 MIN ON (C)",
          i % 97));
    } else {
      (void)session->Execute(kPool[static_cast<size_t>(i) % kPoolSize]);
    }
    if (i % 16 == 0) sys->AdvanceBy(40);
  }
  int64_t hits = cache.hits() - hits0;
  int64_t misses = cache.misses() - misses0;
  double hit_rate =
      static_cast<double>(hits) / std::max<double>(1.0, hits + misses);

  bench::PrintHeader("Fixed-pool session workload");
  std::printf("  statements: %d   hits: %lld   misses: %lld   "
              "hit rate: %.3f   invalidations: %lld\n",
              kWorkload, static_cast<long long>(hits),
              static_cast<long long>(misses), hit_rate,
              static_cast<long long>(cache.invalidations()));

  // --- Per-batch guard probe at batch size 1 -----------------------------
  // The switch-union guard moved from per-row (Next) to per-batch
  // (NextBatch) probing. At max_rows = 1 the batch protocol degenerates to
  // one probe per row — exactly the per-row regime — so it must not be
  // slower than draining the same guarded plan through Next().
  QueryPlan guarded = bench::PrepareWith(
      sys.get(),
      "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
      "WHERE C.c_custkey = 42 CURRENCY BOUND 10 MIN ON (C)",
      /*view_matching=*/true, /*guards=*/true);
  ExecStats stats;
  ExecContext ctx = sys->cache()->MakeExecContext(&stats);
  ctx.subplans = &guarded.subplans;
  auto drain = [&](bool batch_protocol) {
    auto iter = BuildIterator(*guarded.root, &ctx, &guarded.aliases);
    if (!iter.ok() || !(*iter)->Open(nullptr).ok()) std::abort();
    int64_t rows = 0;
    if (batch_protocol) {
      RowBatch b;
      while (true) {
        auto more = (*iter)->NextBatch(&b, /*max_rows=*/1);
        if (!more.ok()) std::abort();
        if (!*more) break;
        rows += static_cast<int64_t>(b.size());
      }
    } else {
      Row row;
      while (true) {
        auto more = (*iter)->Next(&row);
        if (!more.ok()) std::abort();
        if (!*more) break;
        ++rows;
      }
    }
    if (!(*iter)->Close().ok() || rows != 1) std::abort();
  };
  // Best-of-chunks: scheduler noise only ever adds time.
  auto best_of = [&](bool batch_protocol) {
    double best = -1;
    for (int c = 0; c < 7; ++c) {
      double t0 = NowNs();
      for (int i = 0; i < 2000; ++i) drain(batch_protocol);
      double per = (NowNs() - t0) / 2000.0;
      if (best < 0 || per < best) best = per;
    }
    return best;
  };
  drain(true);  // warm-up
  double per_row_ns = best_of(false);
  double per_batch1_ns = best_of(true);
  bench::PrintHeader("Guard probe: per-batch protocol at batch size 1");
  std::printf("  %-34s %12.0f ns/query\n", "Next() drain (per-row probes)",
              per_row_ns);
  std::printf("  %-34s %12.0f ns/query\n", "NextBatch(1) drain (batch probes)",
              per_batch1_ns);
  bool batch_ok = per_batch1_ns <= per_row_ns * 1.10;
  std::printf("  acceptance (no slower, 10%% tolerance): %s\n",
              batch_ok ? "PASS" : "FAIL");
  pass = pass && batch_ok;

  obs::MetricsRegistry& metrics = sys->metrics();
  metrics.gauge("rcc.plancache.hit_rate")->Set(hit_rate);
  metrics.gauge("rcc.plancache.cold_plan_p50_ns")->Set(cold_p50);
  metrics.gauge("rcc.plancache.l1_lookup_p50_ns")->Set(l1_p50);
  metrics.gauge("rcc.plancache.l2_lookup_p50_ns")->Set(l2_p50);
  metrics.gauge("rcc.plancache.hit_speedup_l1")->Set(speedup_l1);
  metrics.gauge("rcc.plancache.hit_speedup_l2")->Set(speedup_l2);
  metrics.gauge("rcc.guard.batch1_drain_p50_ns")->Set(per_batch1_ns);
  metrics.gauge("rcc.guard.row_drain_p50_ns")->Set(per_row_ns);
  bench::DumpMetricsJson(*sys, "bench_plan_cache");
  return pass ? 0 : 1;
}

}  // namespace rcc

int main() { return rcc::Run(); }
