// Network front-end saturation: how many concurrent client connections the
// RccServer sustains, and what statement latency looks like under load
// (DESIGN.md §14). A multi-threaded load driver opens N connections (each
// its own socket + server-side Session), then pumps the paper's guard
// workload — clustered point lookups with relaxed currency bounds, so
// guards pass and statements stay on the cache — through every connection
// and reports p50/p99 round-trip latency and aggregate QPS per tier.
//
// Every response is checked: a statement error, a malformed frame, or an
// unexpected disconnect counts as a failure, and the acceptance bar is
// zero across all tiers. Results land in bench_server_saturation.metrics.json
// (schema rcc.metrics.v1) stamped with the run seed, alongside the
// rcc.server.* counters the server itself maintains.
//
// Driver threads are fixed (8) regardless of tier: each thread round-robins
// over its share of the connections with one statement outstanding at a
// time, so "concurrent connections" measures open sockets and per-connection
// server state, while aggregate QPS is bounded by the host's core count —
// the harness prints hardware_concurrency so numbers from small containers
// read correctly.

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"

namespace rcc {
namespace bench {
namespace {

using server::RccClient;

constexpr int kDriverThreads = 8;
constexpr int kQueriesPerConnection = 4;

std::string QueryForIndex(int i) {
  int key = 1 + (i * 37) % 1000;
  return "SELECT c_custkey, c_name, c_acctbal FROM Customer C "
         "WHERE C.c_custkey = " +
         std::to_string(key) + " CURRENCY BOUND 10 MIN ON (C)";
}

struct TierResult {
  int connections = 0;
  int queries = 0;
  int failures = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double qps = 0;
  double connect_ms = 0;
};

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

TierResult RunTier(const std::string& uds_path, int connections) {
  TierResult out;
  out.connections = connections;

  // Phase 1: open every connection and shake hands. All sockets stay open
  // for the whole tier — this is the "concurrent connections" under test.
  std::vector<RccClient> clients(static_cast<size_t>(connections));
  std::atomic<int> connect_failures{0};
  out.connect_ms = TimeMs([&] {
    std::vector<std::thread> threads;
    threads.reserve(kDriverThreads);
    for (int t = 0; t < kDriverThreads; ++t) {
      threads.emplace_back([&, t] {
        for (int i = t; i < connections; i += kDriverThreads) {
          RccClient& c = clients[static_cast<size_t>(i)];
          if (!c.ConnectUds(uds_path).ok()) {
            connect_failures.fetch_add(1);
            continue;
          }
          auto hello = c.Hello("bench_server_saturation");
          if (!hello.ok()) connect_failures.fetch_add(1);
        }
      });
    }
    for (auto& th : threads) th.join();
  });
  out.failures += connect_failures.load();

  // Phase 2: every connection runs kQueriesPerConnection statements, driver
  // threads round-robining with one statement in flight each. Per-statement
  // round-trip latency (send -> terminal status frame) is recorded.
  std::vector<std::vector<double>> lat_per_thread(kDriverThreads);
  std::atomic<int> failures{0};
  std::atomic<int> completed{0};
  double run_ms = TimeMs([&] {
    std::vector<std::thread> threads;
    threads.reserve(kDriverThreads);
    for (int t = 0; t < kDriverThreads; ++t) {
      threads.emplace_back([&, t] {
        auto& lat = lat_per_thread[static_cast<size_t>(t)];
        for (int round = 0; round < kQueriesPerConnection; ++round) {
          for (int i = t; i < connections; i += kDriverThreads) {
            RccClient& c = clients[static_cast<size_t>(i)];
            if (!c.connected()) continue;
            std::string sql = QueryForIndex(i * kQueriesPerConnection + round);
            bool ok = false;
            double ms = TimeMs([&] {
              auto resp = c.Query(sql);
              ok = resp.ok() && resp->ok() && !resp->rows.empty();
            });
            if (ok) {
              lat.push_back(ms);
              completed.fetch_add(1, std::memory_order_relaxed);
            } else {
              failures.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  });

  // Phase 3: polite teardown — goodbye flushes anything pending, then close.
  for (auto& c : clients) {
    if (c.connected()) (void)c.Goodbye();
  }

  std::vector<double> all;
  for (auto& v : lat_per_thread) all.insert(all.end(), v.begin(), v.end());
  std::sort(all.begin(), all.end());
  out.queries = completed.load();
  out.failures += failures.load();
  out.p50_ms = Percentile(all, 0.50);
  out.p99_ms = Percentile(all, 0.99);
  out.qps = run_ms > 0 ? 1000.0 * static_cast<double>(out.queries) / run_ms : 0;
  return out;
}

// -- overload tier ------------------------------------------------------------
//
// The survivability tier (DESIGN.md §15): far more pipelined statements than
// the admission limit, through few connections, so the server's overload
// machinery — early rejection, queue-delay refusal, C&C-aware shedding,
// per-statement deadlines — all fire at once. Every connection first runs
// SET DEGRADE ALWAYS and then pipelines tight-bound lookups (10s bound:
// plan-time feasible, since the region's refresh delay keeps minimum
// staleness at 5s, but failing at run time against the replica's current
// 15s staleness — exactly the switch-union shape where a shed hint can
// serve degraded-local); every 8th statement carries a 1ms wire deadline
// that queue wait alone blows. The acceptance bar: every single frame in
// the storm is answered with rows or a structured status (Overloaded /
// DeadlineExceeded) — a malformed frame, an unexpected status code, or a
// dead connection is a protocol failure and fails the bench.

struct OverloadResult {
  int connections = 0;
  int statements = 0;
  int ok = 0;
  int shed = 0;        ///< answered degraded (client-visible shed marker)
  int overloaded = 0;  ///< structured kOverloaded refusals
  int deadline = 0;    ///< structured kDeadlineExceeded timeouts
  int protocol_failures = 0;
  double run_ms = 0;
};

OverloadResult RunOverloadTier(const std::string& uds_path, int connections,
                               int burst_per_connection) {
  OverloadResult out;
  out.connections = connections;

  std::vector<RccClient> clients(static_cast<size_t>(connections));
  for (auto& c : clients) {
    if (!c.ConnectUds(uds_path).ok() ||
        !c.Hello("bench_overload").ok() ||
        !c.Set("SET DEGRADE ALWAYS").ok()) {
      out.protocol_failures++;
    }
  }

  std::atomic<int> ok{0}, shed{0}, overloaded{0}, deadline{0}, bad{0};
  out.run_ms = TimeMs([&] {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(connections));
    for (int i = 0; i < connections; ++i) {
      threads.emplace_back([&, i] {
        RccClient& c = clients[static_cast<size_t>(i)];
        if (!c.connected()) return;
        // One contiguous burst: the event loop parses it in a few reads and
        // dispatches the statements back to back, holding in_flight at the
        // admission limit for the whole storm.
        std::string batch;
        for (int q = 0; q < burst_per_connection; ++q) {
          std::string sql =
              "SELECT c_custkey, c_acctbal FROM Customer C WHERE "
              "C.c_custkey = " +
              std::to_string(1 + (i * 131 + q * 37) % 1000) +
              " CURRENCY BOUND 10 SEC ON (C)";
          if (q % 8 == 7) {
            server::AppendFrame(
                &batch, server::Opcode::kQueryDeadline, c.NextSeq(),
                server::EncodeQueryDeadlinePayload(1, sql));
          } else {
            server::AppendFrame(&batch, server::Opcode::kQuery, c.NextSeq(),
                                sql);
          }
        }
        if (!c.SendRaw(batch).ok()) {
          bad.fetch_add(burst_per_connection);
          return;
        }
        for (int q = 0; q < burst_per_connection; ++q) {
          auto resp = c.ReadResponse(nullptr);
          if (!resp.ok()) {
            // Transport/framing failure mid-storm: everything still
            // unanswered on this connection counts against the bar.
            bad.fetch_add(burst_per_connection - q);
            return;
          }
          if (resp->ok()) {
            ok.fetch_add(1);
            if (resp->status.degraded) shed.fetch_add(1);
          } else if (resp->status.code ==
                     static_cast<uint16_t>(StatusCode::kOverloaded)) {
            overloaded.fetch_add(1);
          } else if (resp->status.code ==
                     static_cast<uint16_t>(StatusCode::kDeadlineExceeded)) {
            deadline.fetch_add(1);
          } else {
            bad.fetch_add(1);
          }
        }
      });
    }
    for (auto& th : threads) th.join();
  });

  for (auto& c : clients) {
    if (c.connected()) (void)c.Goodbye();
  }

  out.statements = connections * burst_per_connection;
  out.ok = ok.load();
  out.shed = shed.load();
  out.overloaded = overloaded.load();
  out.deadline = deadline.load();
  out.protocol_failures += bad.load();
  return out;
}

}  // namespace
}  // namespace bench
}  // namespace rcc

int main(int argc, char** argv) {
  using namespace rcc;
  using namespace rcc::bench;

  // Tiers can be overridden from the command line:
  //   bench_server_saturation 512 4096
  std::vector<int> tiers = {256, 1024, 2048};
  if (argc > 1) {
    tiers.clear();
    for (int i = 1; i < argc; ++i) tiers.push_back(std::atoi(argv[i]));
  }

  PrintHeader("server saturation (rcc.wire.v1 over UDS)");
  std::printf("hardware_concurrency=%u driver_threads=%d queries/conn=%d\n",
              std::thread::hardware_concurrency(), kDriverThreads,
              kQueriesPerConnection);

  auto sys = MakePaperSystem(/*scale=*/0.05);

  server::ServerOptions opts;
  opts.uds_path =
      "/tmp/rcc_bench_server_" + std::to_string(::getpid()) + ".sock";
  opts.workers = 4;
  opts.max_connections = 12000;
  // Overload machinery, exercised by the overload tier below. The normal
  // tiers keep one statement in flight per driver thread, so queue delay
  // stays ~0 and neither the shed hint nor the admission limit fires there.
  opts.shed_queue_delay_ms = 1;
  server::RccServer srv(sys.get(), opts);
  Status st = srv.Start();
  if (!st.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("\n  %-8s %-9s %-11s %-9s %-9s %-11s %s\n", "conns", "queries",
              "connect(ms)", "p50(ms)", "p99(ms)", "QPS", "failures");
  int total_failures = 0;
  for (int tier : tiers) {
    TierResult r = RunTier(opts.uds_path, tier);
    total_failures += r.failures;
    std::printf("  %-8d %-9d %-11.1f %-9.3f %-9.3f %-11.1f %d\n",
                r.connections, r.queries, r.connect_ms, r.p50_ms, r.p99_ms,
                r.qps, r.failures);

    std::string prefix = "rcc.bench.server.c" + std::to_string(tier);
    sys->metrics().gauge(prefix + ".p50_ms")->Set(r.p50_ms);
    sys->metrics().gauge(prefix + ".p99_ms")->Set(r.p99_ms);
    sys->metrics().gauge(prefix + ".qps")->Set(r.qps);
    sys->metrics()
        .gauge(prefix + ".failures")
        ->Set(static_cast<double>(r.failures));
  }

  // Overload tier: counters snapshot -> storm -> delta, so the gauges show
  // exactly what this tier drove (the normal tiers leave them untouched).
  auto& m = sys->metrics();
  int64_t rejected0 = m.counter("rcc.server.overload_rejected")->value();
  int64_t timeouts0 = m.counter("rcc.server.deadline_timeouts")->value();
  int64_t sheds0 = m.counter("rcc.server.shed_statements")->value();

  OverloadResult o = RunOverloadTier(opts.uds_path, /*connections=*/16,
                                     /*burst_per_connection=*/48);
  total_failures += o.protocol_failures;

  int64_t rejected = m.counter("rcc.server.overload_rejected")->value() -
                     rejected0;
  int64_t timeouts = m.counter("rcc.server.deadline_timeouts")->value() -
                     timeouts0;
  int64_t sheds = m.counter("rcc.server.shed_statements")->value() - sheds0;

  std::printf("\n  overload tier: %d conns x %d pipelined statements\n",
              o.connections, o.statements / o.connections);
  std::printf(
      "  %-9s %-9s %-9s %-9s %-9s %s\n"
      "  %-9d %-9d %-9d %-9d %-9d %d\n",
      "answered", "rows", "shed", "rejected", "timeout", "protocol_failures",
      o.ok + o.overloaded + o.deadline, o.ok, o.shed, o.overloaded,
      o.deadline, o.protocol_failures);
  std::printf(
      "  server counters: overload_rejected=%lld deadline_timeouts=%lld "
      "shed_statements=%lld\n",
      static_cast<long long>(rejected), static_cast<long long>(timeouts),
      static_cast<long long>(sheds));

  const std::string op = "rcc.bench.server.overload";
  m.gauge(op + ".statements")->Set(static_cast<double>(o.statements));
  m.gauge(op + ".rows")->Set(static_cast<double>(o.ok));
  m.gauge(op + ".shed")->Set(static_cast<double>(o.shed));
  m.gauge(op + ".rejected")->Set(static_cast<double>(o.overloaded));
  m.gauge(op + ".timeout")->Set(static_cast<double>(o.deadline));
  m.gauge(op + ".protocol_failures")
      ->Set(static_cast<double>(o.protocol_failures));
  m.gauge(op + ".server_rejected_delta")->Set(static_cast<double>(rejected));
  m.gauge(op + ".server_timeouts_delta")->Set(static_cast<double>(timeouts));
  m.gauge(op + ".server_sheds_delta")->Set(static_cast<double>(sheds));

  srv.Stop();

  if (total_failures > 0) {
    std::printf("\nFAIL: %d protocol/statement failures across tiers\n",
                total_failures);
  } else {
    std::printf("\nall tiers clean: zero protocol errors\n");
  }

  DumpMetricsJson(*sys, "bench_server_saturation");
  return total_failures > 0 ? 1 : 0;
}
