// Fault-injection study on the replication pipeline (the backend→cache
// maintenance stream): a sweep over fault intensity — drops, out-of-order
// delays, duplicates, stalls, and poisoned batches — measuring how often the
// cache must serve degraded (remote instead of local, because quarantine
// withdrew the region's certified heartbeat) and how quickly a quarantined
// region resyncs back to HEALTHY from the back-end master snapshot.
//
// Acceptance (ISSUE): with no faults nothing quarantines and queries split
// local/remote on staleness alone; under heavy faults every quarantine is
// followed by a resync, no query is ever answered from a quarantined
// replica, the overall answer rate stays 100% (the remote branch absorbs the
// displaced queries), and mean resync latency stays within the bound implied
// by the wakeup cadence (stall drain + one wakeup to enter RESYNCING + the
// propagation delay).

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "workload/bookstore.h"

using namespace rcc;         // NOLINT
using namespace rcc::bench;  // NOLINT

namespace {

constexpr int kQueries = 1500;
constexpr SimTimeMs kStart = 40000;
constexpr SimTimeMs kStep = 997;  // co-prime-ish with the 10s wakeup cycle
constexpr SimTimeMs kBoundMs = 5000;

constexpr const char* kQuery =
    "SELECT title, price FROM Books B WHERE B.isbn = 7 "
    "CURRENCY BOUND 5 SECONDS ON (B)";

/// Bookstore with f = 10s, d = 2s: replica staleness sweeps ~2s..12s, so the
/// 5s bound answers ~30% of arrivals locally when the pipeline is healthy —
/// a visible local share for the faults to displace.
std::unique_ptr<RccSystem> MakeSystem() {
  auto sys = std::make_unique<RccSystem>();
  Status st = LoadBookstore(sys.get(), BookstoreConfig{});
  if (st.ok()) st = SetupBookstoreCache(sys.get(), 10000, 2000);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  sys->AdvanceTo(35000);  // steady state
  return sys;
}

/// One fault mix, scaled by `intensity` in [0, 1]. The mix exercises every
/// fault class at once; intensity 0 is the fault-free control.
ReplicationFaultConfig MakeFaults(double intensity) {
  ReplicationFaultConfig cfg;
  cfg.drop_probability = 0.30 * intensity;
  cfg.delay_probability = 0.30 * intensity;
  cfg.delay_ms = 12000;  // > update_interval: arrives out of order
  cfg.duplicate_probability = 0.30 * intensity;
  cfg.stall_probability = 0.10 * intensity;
  cfg.stall_wakeups = 2;
  cfg.poison_probability = 0.10 * intensity;
  return cfg;
}

struct RunResult {
  int total = 0;
  int ok = 0;
  int failed = 0;
  int64_t quarantines = 0;
  int64_t resyncs = 0;
  int64_t stale_rejected = 0;
  SimTimeMs resync_latency_total = 0;
  ExecStats stats;

  double AnswerRate() const { return 100.0 * ok / total; }
  double LocalRate() const { return ok > 0 ? 100.0 * stats.switch_local / ok : 0.0; }
  double QuarantineRefusalRate() const {
    return stats.guard_evaluations > 0
               ? 100.0 * stats.guard_quarantined_region /
                     stats.guard_evaluations
               : 0.0;
  }
  double AvgResyncMs() const {
    return resyncs > 0 ? double(resync_latency_total) / resyncs : 0.0;
  }
};

/// Runs the query/update workload against one fault intensity. The plan is
/// prepared once while the pipeline is healthy and then re-executed — the
/// production shape for a hot query — so quarantine is met by the *runtime*
/// guard (heartbeat withdrawn, probe sees health=quarantined, switch routes
/// remote), not papered over by per-query re-optimization. Updates ride
/// along with the queries so every delivery batch carries row ops (a poison
/// only fires inside a non-empty batch). When `dump_name` is set, the run's
/// metrics registry is written to `<dump_name>.metrics.json`.
RunResult Run(double intensity, const char* dump_name = nullptr) {
  std::unique_ptr<RccSystem> sys = MakeSystem();
  std::unique_ptr<Session> session = sys->CreateSession();
  auto plan = session->Prepare(kQuery);
  if (!plan.ok()) {
    std::fprintf(stderr, "prepare failed: %s\n",
                 plan.status().ToString().c_str());
    std::exit(1);
  }
  if (intensity > 0) sys->cache()->SetReplicationFaults(MakeFaults(intensity));

  RunResult out;
  out.total = kQueries;
  for (int i = 0; i < kQueries; ++i) {
    SimTimeMs arrival = kStart + static_cast<SimTimeMs>(i) * kStep;
    if (arrival > sys->Now()) sys->AdvanceTo(arrival);
    if (i % 3 == 0) {
      auto upd = session->Execute(
          StrPrintf("UPDATE Books SET price = %d WHERE isbn = 7", 10 + i));
      if (!upd.ok()) {
        std::fprintf(stderr, "update failed: %s\n",
                     upd.status().ToString().c_str());
        std::exit(1);
      }
    }
    auto r = sys->cache()->ExecutePrepared(*plan);
    if (r.ok()) {
      ++out.ok;
      out.stats.Accumulate(r->stats);
    } else {
      ++out.failed;
    }
  }
  for (const auto& agent : sys->cache()->agents()) {
    out.quarantines += agent->quarantines();
    out.resyncs += agent->resyncs();
    out.stale_rejected += agent->stale_batches_rejected();
    out.resync_latency_total += agent->resync_latency_total_ms();
  }
  if (dump_name != nullptr) DumpMetricsJson(*sys, dump_name);
  return out;
}

void PrintRow(double intensity, const RunResult& r) {
  std::printf("%-10.2f %8.1f%% %7.1f%% %11.1f%% %7lld %7lld %7lld",
              intensity, r.AnswerRate(), r.LocalRate(),
              r.QuarantineRefusalRate(),
              static_cast<long long>(r.quarantines),
              static_cast<long long>(r.resyncs),
              static_cast<long long>(r.stale_rejected));
  if (r.resyncs > 0) {
    std::printf(" %11.0fms\n", r.AvgResyncMs());
  } else {
    std::printf(" %13s\n", "-");
  }
}

}  // namespace

int main() {
  PrintHeader(
      "Replication faults: drop/delay/duplicate/stall/poison mix vs "
      "degraded-serve rate and resync latency");
  std::printf(
      "Bookstore f=10s d=2s, %d queries, bound %llds, arrivals every %lldms; "
      "an UPDATE every 3rd arrival keeps delivery batches non-empty\n\n",
      kQueries, static_cast<long long>(kBoundMs / 1000),
      static_cast<long long>(kStep));

  std::printf("%-10s %9s %8s %12s %7s %7s %7s %13s\n", "intensity", "answered",
              "local", "guard-refuse", "quarant", "resyncs", "stale-rej",
              "avg-resync");
  RunResult control = Run(0.0);
  PrintRow(0.0, control);
  RunResult light = Run(0.25);
  PrintRow(0.25, light);
  RunResult medium = Run(0.5);
  PrintRow(0.5, medium);
  RunResult heavy = Run(1.0, "bench_replication_faults");
  PrintRow(1.0, heavy);

  PrintHeader("Acceptance check");
  // Resync latency bound: quarantine is noticed at the next wakeup (<= one
  // 10s interval away, or after the in-progress stall drains — at most
  // stall_wakeups more intervals), then the snapshot propagates in d = 2s.
  constexpr double kResyncBoundMs = (1 + 2) * 10000 + 2000;
  bool faulted_resynced = heavy.quarantines > 0 && heavy.resyncs > 0;
  bool no_spurious = control.quarantines == 0 && control.resyncs == 0;
  bool all_answered = control.failed == 0 && light.failed == 0 &&
                      medium.failed == 0 && heavy.failed == 0;
  bool latency_bounded =
      heavy.resyncs == 0 || heavy.AvgResyncMs() <= kResyncBoundMs;
  std::printf("fault-free control quarantines/resyncs:  %lld/%lld  (must be "
              "0/0)\n",
              static_cast<long long>(control.quarantines),
              static_cast<long long>(control.resyncs));
  std::printf("heavy-fault quarantines -> resyncs:      %lld -> %lld  (must "
              "both be > 0)\n",
              static_cast<long long>(heavy.quarantines),
              static_cast<long long>(heavy.resyncs));
  std::printf("answer rate under every mix:             %s  (remote branch "
              "must absorb displaced queries)\n",
              all_answered ? "100%" : "DEGRADED");
  std::printf("heavy-fault mean resync latency:         %.0fms  (must be <= "
              "%.0fms)\n",
              heavy.AvgResyncMs(), kResyncBoundMs);
  bool pass =
      faulted_resynced && no_spurious && all_answered && latency_bounded;
  std::printf("\n%s\n", pass ? "ACCEPTANCE: PASS" : "ACCEPTANCE: FAIL");
  return pass ? 0 : 1;
}
