// Fault-injection study on the cache↔back-end link: a scripted 30% outage
// schedule (20s period, 6s down) plus transient errors, measured against four
// link configurations: a bare link (single attempt, no fallback), the retry
// policy alone, and the retry policy combined with DEGRADE BOUNDED / ALWAYS.
//
// Acceptance (ISSUE): with the 30% outage and DEGRADE BOUNDED the cache keeps
// answering >= 99% of the queries whose currency bound is satisfiable at the
// moment they give up, while the bare link drops below 75% overall; every
// degraded answer carries its real, nonzero staleness.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "workload/bookstore.h"

using namespace rcc;         // NOLINT
using namespace rcc::bench;  // NOLINT

namespace {

constexpr int kQueries = 2000;
constexpr SimTimeMs kStart = 60000;
constexpr SimTimeMs kStep = 997;  // co-prime-ish with the 10s/20s cycles
constexpr SimTimeMs kBoundMs = 5000;

constexpr const char* kQuery =
    "SELECT isbn FROM Books B WHERE B.isbn = 1 "
    "CURRENCY BOUND 5 SECONDS ON (B)";

/// Bookstore with f = 10s, d = 2s: replica staleness sweeps ~3s..13s, so a
/// 5s bound answers ~30% of arrivals locally and sends the rest remote.
std::unique_ptr<RccSystem> MakeSystem() {
  auto sys = std::make_unique<RccSystem>();
  Status st = LoadBookstore(sys.get(), BookstoreConfig{});
  if (st.ok()) st = SetupBookstoreCache(sys.get(), 10000, 2000);
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  sys->AdvanceTo(35000);  // steady state
  return sys;
}

FaultInjectorConfig MakeFaults(SimTimeMs down_ms) {
  FaultInjectorConfig faults;
  faults.outage_period_ms = 20000;
  faults.outage_down_ms = down_ms;
  faults.transient_error_probability = 0.2;
  faults.base_latency_ms = 2;
  return faults;
}

RemotePolicy MakePolicy() {
  RemotePolicy policy;
  policy.timeout_ms = 1000;
  // ~3.5s budget: rides out transient errors and outage tails, but hands
  // queries arriving early in an outage window over to degradation.
  policy.max_retries = 3;
  policy.backoff_base_ms = 500;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter_ms = 50;
  policy.breaker_threshold = 0;
  return policy;
}

struct RunResult {
  int total = 0;
  int ok = 0;
  int failed = 0;
  int unsatisfiable = 0;  // failures with the bound genuinely out of reach
  int degraded = 0;
  SimTimeMs staleness_sum = 0;
  SimTimeMs staleness_max = 0;
  int zero_staleness_degrades = 0;  // must stay 0
  ExecStats stats;

  double SuccessRate() const { return 100.0 * ok / total; }
  double SatisfiableRate() const {
    int satisfiable = total - unsatisfiable;
    return satisfiable > 0 ? 100.0 * ok / satisfiable : 100.0;
  }
};

/// When `dump_name` is set, this configuration's metrics registry is written
/// to `<dump_name>.metrics.json` before the system is torn down.
RunResult Run(SimTimeMs down_ms, bool with_policy, const char* degrade,
              const char* dump_name = nullptr) {
  std::unique_ptr<RccSystem> sys = MakeSystem();
  sys->cache()->SetFaultInjector(MakeFaults(down_ms));
  if (with_policy) sys->cache()->SetRemotePolicy(MakePolicy());
  std::unique_ptr<Session> session = sys->CreateSession();
  auto set = session->Execute(StrPrintf("SET DEGRADE %s", degrade));
  if (!set.ok()) {
    std::fprintf(stderr, "SET DEGRADE failed: %s\n",
                 set.status().ToString().c_str());
    std::exit(1);
  }

  RunResult out;
  out.total = kQueries;
  for (int i = 0; i < kQueries; ++i) {
    SimTimeMs arrival = kStart + static_cast<SimTimeMs>(i) * kStep;
    if (arrival > sys->Now()) sys->AdvanceTo(arrival);
    auto r = session->Execute(kQuery);
    if (r.ok()) {
      ++out.ok;
      if (r->degraded) {
        ++out.degraded;
        out.staleness_sum += r->staleness_ms;
        if (r->staleness_ms > out.staleness_max)
          out.staleness_max = r->staleness_ms;
        if (r->staleness_ms <= 0) ++out.zero_staleness_degrades;
      }
    } else {
      ++out.failed;
      // At the moment the query gave up, could any branch have satisfied the
      // bound? The replica heartbeat is the ground truth.
      SimTimeMs staleness =
          sys->Now() - sys->cache()->region(1)->local_heartbeat();
      if (staleness > kBoundMs) ++out.unsatisfiable;
    }
  }
  out.stats = sys->cache_stats();
  if (dump_name != nullptr) DumpMetricsJson(*sys, dump_name);
  return out;
}

void PrintRow(const char* label, const RunResult& r) {
  std::printf("%-22s %7.1f%% %9d %9d %9d", label, r.SuccessRate(), r.ok,
              r.failed, r.degraded);
  if (r.degraded > 0) {
    std::printf(" %8.0fms %7lldms", double(r.staleness_sum) / r.degraded,
                static_cast<long long>(r.staleness_max));
  } else {
    std::printf(" %10s %9s", "-", "-");
  }
  std::printf(" %8lld %8lld %8lld\n",
              static_cast<long long>(r.stats.remote_retries),
              static_cast<long long>(r.stats.remote_timeouts),
              static_cast<long long>(r.stats.breaker_opens));
}

}  // namespace

int main() {
  PrintHeader("Fault model: 30% scripted outage (20s period, 6s down), "
              "20% transient errors");
  std::printf("Bookstore f=10s d=2s, %d queries, bound %llds, arrivals every "
              "%lldms\n\n",
              kQueries, static_cast<long long>(kBoundMs / 1000),
              static_cast<long long>(kStep));

  std::printf("%-22s %8s %9s %9s %9s %10s %9s %8s %8s %8s\n", "link config",
              "success", "ok", "failed", "degraded", "avg-stale", "max-stale",
              "retries", "timeouts", "breaker");
  RunResult vanilla = Run(6000, /*with_policy=*/false, "NONE");
  PrintRow("bare link", vanilla);
  RunResult retry_only = Run(6000, /*with_policy=*/true, "NONE");
  PrintRow("retry policy", retry_only);
  RunResult bounded =
      Run(6000, /*with_policy=*/true, "BOUNDED", "bench_fault_degradation");
  PrintRow("retry + DEGRADE BOUNDED", bounded);
  RunResult always = Run(6000, /*with_policy=*/true, "ALWAYS");
  PrintRow("retry + DEGRADE ALWAYS", always);

  PrintHeader("Success rate vs outage severity (down ms per 20s period)");
  std::printf("%-10s %12s %14s %22s\n", "down(ms)", "bare link",
              "retry policy", "retry + DEGRADE BOUNDED");
  for (SimTimeMs down : {SimTimeMs{0}, SimTimeMs{2000}, SimTimeMs{4000},
                         SimTimeMs{6000}, SimTimeMs{8000}}) {
    RunResult v = Run(down, false, "NONE");
    RunResult p = Run(down, true, "NONE");
    RunResult b = Run(down, true, "BOUNDED");
    std::printf("%-10lld %11.1f%% %13.1f%% %21.1f%%\n",
                static_cast<long long>(down), v.SuccessRate(), p.SuccessRate(),
                b.SuccessRate());
  }

  PrintHeader("Acceptance check");
  std::printf("bare link overall success:              %6.1f%%  (must be "
              "< 75%%)\n",
              vanilla.SuccessRate());
  std::printf("DEGRADE BOUNDED on satisfiable queries: %6.1f%%  (must be "
              ">= 99%%; %d of %d failures were genuinely unsatisfiable)\n",
              bounded.SatisfiableRate(), bounded.unsatisfiable,
              bounded.failed);
  std::printf("degraded serves reporting staleness=0:  %6d   (must be 0)\n",
              bounded.zero_staleness_degrades + always.zero_staleness_degrades);
  bool pass = vanilla.SuccessRate() < 75.0 &&
              bounded.SatisfiableRate() >= 99.0 && bounded.degraded > 0 &&
              bounded.zero_staleness_degrades == 0 &&
              always.zero_staleness_degrades == 0;
  std::printf("\n%s\n", pass ? "ACCEPTANCE: PASS" : "ACCEPTANCE: FAIL");
  return pass ? 0 : 1;
}
