// Ablation benchmarks for the design choices DESIGN.md calls out:
//  1. cost-model fidelity — the analytic p of Eq. (1) vs the fraction of
//     executions the guard actually sent to the local branch;
//  2. view matching on/off — how much of the workload the cache absorbs;
//  3. currency guards on/off — demonstrating that unguarded use of matched
//     views (what a C&C-unaware cache does) silently violates the query's
//     currency bound, while guarded plans never do.

#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "optimizer/cost_model.h"
#include "workload/driver.h"

using namespace rcc;         // NOLINT
using namespace rcc::bench;  // NOLINT

namespace {

void CostModelFidelity() {
  PrintHeader("Ablation 1: Eq. (1) inside the cost model vs measured routing");
  std::printf("%-10s %-12s %-12s %-8s\n", "bound(s)", "analytic p",
              "measured", "|err|");
  // CR1: f = 15s, d = 5s.
  for (int bound_s : {6, 8, 10, 12, 14, 16, 18, 20, 25}) {
    auto sys = MakePaperSystem(0.01);
    std::string sql = StrPrintf(
        "SELECT c_custkey FROM Customer C WHERE c_acctbal > 1000 "
        "CURRENCY BOUND %d SECONDS ON (C)",
        bound_s);
    auto run = RunUniformWorkload(sys.get(), sql, 400, 400000,
                                  static_cast<uint64_t>(bound_s));
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      std::exit(1);
    }
    double p = EstimateLocalProbability(bound_s * 1000, 5000, 15000);
    double measured = run->LocalFraction();
    std::printf("%-10d %-12.3f %-12.3f %-8.3f\n", bound_s, p, measured,
                std::abs(p - measured));
  }
}

void ViewMatchingAblation() {
  PrintHeader("Ablation 2: view matching on/off (workload absorbed locally)");
  auto sys = MakePaperSystem(0.01);
  const char* sql =
      "SELECT c_custkey FROM Customer C WHERE c_acctbal > 1000 "
      "CURRENCY BOUND 10 MIN ON (C)";
  auto select = ParseSelect(sql);
  for (bool matching : {true, false}) {
    OptimizerOptions opts = sys->cache()->default_options();
    opts.enable_view_matching = matching;
    auto plan = sys->cache()->Prepare(**select, opts);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      std::exit(1);
    }
    ExecStats total;
    for (int i = 0; i < 50; ++i) {
      auto outcome = sys->cache()->ExecutePrepared(*plan);
      if (outcome.ok()) total.Accumulate(outcome->stats);
      sys->AdvanceBy(700);
    }
    std::printf(
        "  view matching %-3s: shape=%-26s remote queries=%lld of 50, est "
        "cost=%.3f\n",
        matching ? "ON" : "OFF",
        std::string(PlanShapeName(plan->Shape())).c_str(),
        static_cast<long long>(total.remote_queries), plan->est_cost);
  }
  DumpMetricsJson(*sys, "bench_ablation");
}

void GuardSoundnessAblation() {
  PrintHeader(
      "Ablation 3: currency guards on/off under update traffic "
      "(constraint-violation rate)");
  const char* sql =
      "SELECT c_custkey, c_acctbal FROM Customer C WHERE c_custkey = 7 "
      "CURRENCY BOUND 8 SECONDS ON (C)";
  for (bool guards : {true, false}) {
    auto sys = MakePaperSystem(0.01);
    StartUpdateTraffic(sys.get(), /*period_ms=*/400, /*seed=*/3);
    auto session = sys->CreateSession();
    auto select = ParseSelect(sql);
    OptimizerOptions opts = sys->cache()->default_options();
    opts.enable_currency_guards = guards;
    auto plan = sys->cache()->Prepare(**select, opts);
    if (!plan.ok()) {
      std::fprintf(stderr, "%s\n", plan.status().ToString().c_str());
      std::exit(1);
    }
    int violations = 0;
    int checks = 200;
    Rng rng(17);
    for (int i = 0; i < checks; ++i) {
      sys->AdvanceBy(rng.Uniform(200, 900));
      if (session->VerifyConstraint(*plan).IsConstraintViolation()) {
        ++violations;
      }
    }
    std::printf("  guards %-3s: %3d/%d probes would violate the 8s bound\n",
                guards ? "ON" : "OFF", violations, checks);
  }
  std::printf(
      "  (guarded plans never violate; unguarded matched views do whenever "
      "staleness > bound)\n");
}

}  // namespace

int main() {
  CostModelFidelity();
  ViewMatchingAblation();
  GuardSoundnessAblation();
  return 0;
}
