// Reproduces Figure 4.2: how the workload shifts between the cache and the
// back-end (a) as the currency bound B is relaxed (f = 100s, d = 1, 5, 10s)
// and (b) as the refresh interval f grows (B = 10s, d = 1, 5, 8s). For each
// point we print the analytic p of Eq. (1) next to the fraction measured by
// actually executing the guarded query at uniformly distributed times.

#include <cstdio>
#include <memory>

#include "bench_util.h"
#include "optimizer/cost_model.h"
#include "workload/driver.h"

using namespace rcc;         // NOLINT
using namespace rcc::bench;  // NOLINT

namespace {

constexpr int kExecutions = 300;

/// Fresh system whose CR1 has the given interval/delay (seconds).
std::unique_ptr<RccSystem> MakeSystem(SimTimeMs interval_s, SimTimeMs delay_s) {
  auto sys = std::make_unique<RccSystem>();
  TpcdConfig config;
  config.scale = 0.01;
  Status st = LoadTpcd(sys.get(), config);
  if (st.ok()) {
    RegionDef cr1;
    cr1.cid = 1;
    cr1.update_interval = interval_s * 1000;
    cr1.update_delay = delay_s * 1000;
    cr1.heartbeat_interval = 200;
    RegionDef cr2 = cr1;
    cr2.cid = 2;
    st = SetupPaperCacheWithRegions(sys.get(), cr1, cr2);
  }
  if (!st.ok()) {
    std::fprintf(stderr, "setup failed: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  // Warm up a few cycles so the sawtooth is in steady state.
  sys->AdvanceTo(interval_s * 1000 * 3 + delay_s * 1000 * 3 + 5000);
  return sys;
}

double Measure(RccSystem* sys, SimTimeMs bound_s, uint64_t seed) {
  std::string sql = StrPrintf(
      "SELECT c_custkey FROM Customer C WHERE c_acctbal > 1000 "
      "CURRENCY BOUND %lld SECONDS ON (C)",
      static_cast<long long>(bound_s));
  // Horizon: many full sync cycles.
  auto run = RunUniformWorkload(sys, sql, kExecutions,
                                /*horizon=*/600000, seed);
  if (!run.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 run.status().ToString().c_str());
    std::exit(1);
  }
  return 100.0 * run->LocalFraction();
}

}  // namespace

int main() {
  PrintHeader("Fig 4.2(a): local workload % vs currency bound (f = 100s)");
  std::printf("%-10s", "bound(s)");
  for (int d : {1, 5, 10}) {
    std::printf(" | d=%-2d analytic  measured", d);
  }
  std::printf("\n");
  {
    std::unique_ptr<RccSystem> systems[3] = {
        MakeSystem(100, 1), MakeSystem(100, 5), MakeSystem(100, 10)};
    for (int bound = 0; bound <= 120; bound += 10) {
      std::printf("%-10d", bound);
      int i = 0;
      for (int d : {1, 5, 10}) {
        double analytic =
            100.0 * EstimateLocalProbability(bound * 1000, d * 1000, 100000);
        double measured = Measure(systems[i].get(), bound,
                                  static_cast<uint64_t>(bound * 10 + d));
        std::printf(" | %8.1f%%  %8.1f%%", analytic, measured);
        ++i;
      }
      std::printf("\n");
    }
  }

  PrintHeader("Fig 4.2(b): local workload % vs refresh interval (B = 10s)");
  std::printf("%-12s", "interval(s)");
  for (int d : {1, 5, 8}) {
    std::printf(" | d=%-2d analytic  measured", d);
  }
  std::printf("\n");
  // Each sweep point runs on its own system; keep the last one alive so the
  // bench still leaves a representative metrics record.
  std::unique_ptr<RccSystem> last;
  for (int f = 2; f <= 100; f += (f < 20 ? 2 : 20)) {
    std::printf("%-12d", f);
    for (int d : {1, 5, 8}) {
      auto sys = MakeSystem(f, d);
      double analytic =
          100.0 * EstimateLocalProbability(10000, d * 1000, f * 1000);
      double measured =
          Measure(sys.get(), 10, static_cast<uint64_t>(f * 10 + d));
      std::printf(" | %8.1f%%  %8.1f%%", analytic, measured);
      last = std::move(sys);
    }
    std::printf("\n");
  }
  std::printf(
      "\nShape check (paper): (a) 0%% below B=d, then linear to 100%% at "
      "B=d+f;\n(b) 100%% while f <= B-d, then decaying, steep first.\n");
  if (last != nullptr) DumpMetricsJson(*last, "bench_workload_shift");
  return 0;
}
