// Fleet conformance suite: the C&C-aware router over N heterogeneous cache
// nodes. Unit tests pin the eligibility ladder (cheapest eligible node,
// lowest-id tie-break, coverage failures, quarantine withdrawal, backend
// fall-through, deadline short-circuit), a property test randomizes per-node
// heartbeats against an independent re-derivation of the router's choice,
// and every recorded history replays clean through the multi-node
// conformance oracle. Epoch-pin hygiene is asserted after every scenario:
// routed statements must never leak an MVCC snapshot pin on any node.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "backend/fault_injector.h"
#include "core/statement_router.h"
#include "fleet/fleet.h"
#include "fleet/router.h"
#include "replication/fault_injector.h"
#include "sim/history.h"
#include "sim/oracle.h"
#include "sql/parser.h"

namespace rcc {
namespace {

using fleet::BooksRegion;
using fleet::FleetConfig;
using fleet::FleetNodeConfig;
using fleet::FleetSystem;

/// The canonical heterogeneous three-node topology (mirrors the sim
/// runner's): a complete default-cadence node, a fast partial node without
/// Reviews, and a slow complete node.
FleetConfig ThreeNodeConfig(uint64_t seed = 42) {
  FleetConfig fc;
  fc.seed = seed;
  FleetNodeConfig n1;
  n1.update_interval = 8000;
  n1.update_delay = 3000;
  FleetNodeConfig n2;
  n2.update_interval = 4000;
  n2.update_delay = 1500;
  n2.reviews = false;
  FleetNodeConfig n3;
  n3.update_interval = 12000;
  n3.update_delay = 5000;
  fc.nodes = {n1, n2, n3};
  return fc;
}

Status SetupFleet(FleetSystem* f, sim::HistoryRecorder* recorder = nullptr) {
  if (recorder != nullptr) f->SetHistorySink(recorder);
  BookstoreConfig w;
  w.books = 80;
  w.reviews_per_book = 2;
  w.sales_per_book = 2;
  w.seed = 7;
  RCC_RETURN_NOT_OK(f->LoadBookstore(w));
  return f->SetupBookstore();
}

Result<CacheQueryOutcome> RouteSql(FleetSystem* f, const std::string& sql,
                                   RoutedStatementOptions opts = {}) {
  RCC_ASSIGN_OR_RETURN(auto stmt, ParseSelect(sql));
  return f->router()->RouteSelect(*stmt, opts);
}

std::vector<const sim::HistoryEvent*> EventsOfKind(
    const sim::History& h, sim::HistoryEvent::Kind kind) {
  std::vector<const sim::HistoryEvent*> out;
  for (const sim::HistoryEvent& ev : h.events) {
    if (ev.kind == kind) out.push_back(&ev);
  }
  return out;
}

void ExpectNoLeakedPins(FleetSystem* f) {
  for (int n = 1; n <= f->node_count(); ++n) {
    const SnapshotEpochManager& em = f->node(n)->epoch_manager();
    EXPECT_EQ(em.MinPinnedEpoch(), em.current_epoch()) << "node " << n;
  }
}

TEST(FleetRouterTest, UnconstrainedQueryKeepsTraditionalSemantics) {
  FleetSystem f(ThreeNodeConfig());
  sim::HistoryRecorder recorder(1);
  ASSERT_TRUE(SetupFleet(&f, &recorder).ok());
  f.AdvanceTo(30000);

  // No currency clause: constraint normalization gives every operand the
  // default bound 0 ("current"), which no replica's delivered currency can
  // meet — the query keeps traditional semantics and serves from the
  // backend, on every node's probes recorded as ineligible.
  auto out = RouteSql(&f, "SELECT isbn FROM Books B WHERE B.isbn < 30");
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  sim::History h = recorder.Snapshot();
  auto routes = EventsOfKind(h, sim::HistoryEvent::Kind::kRoute);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_TRUE(routes[0]->backend_tier);
  ASSERT_EQ(routes[0]->probes.size(), 3u);
  for (const RouteProbe& p : routes[0]->probes) {
    EXPECT_EQ(p.bound_ms, 0);
    EXPECT_FALSE(p.eligible);
  }

  sim::OracleReport report = sim::CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.routes_checked, 1);
  ExpectNoLeakedPins(&f);
}

TEST(FleetRouterTest, LooseBoundRoutesToCheapestEligibleNode) {
  FleetSystem f(ThreeNodeConfig());
  sim::HistoryRecorder recorder(1);
  ASSERT_TRUE(SetupFleet(&f, &recorder).ok());
  f.AdvanceTo(30000);

  // A loose bound every replica meets: all three nodes are eligible and the
  // choice is pure Eq. 1 cost (lowest id on ties), re-derived independently
  // from per-node Prepare.
  const std::string sql =
      "SELECT isbn FROM Books B WHERE B.isbn < 30 "
      "CURRENCY BOUND 1 HOUR ON (B)";
  auto out = RouteSql(&f, sql);
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  sim::History h = recorder.Snapshot();
  auto routes = EventsOfKind(h, sim::HistoryEvent::Kind::kRoute);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_FALSE(routes[0]->backend_tier);
  ASSERT_EQ(routes[0]->probes.size(), 3u);
  for (const RouteProbe& p : routes[0]->probes) EXPECT_TRUE(p.eligible);

  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok());
  int best = 0;
  double best_cost = 0;
  for (int n = 1; n <= 3; ++n) {
    auto plan = f.node(n)->Prepare(**stmt);
    ASSERT_TRUE(plan.ok());
    if (best == 0 || plan->est_cost < best_cost) {
      best = n;
      best_cost = plan->est_cost;
    }
  }
  EXPECT_EQ(routes[0]->node, best);

  sim::OracleReport report = sim::CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.routes_checked, 1);
  ExpectNoLeakedPins(&f);
}

TEST(FleetRouterTest, CoverageFailureExcludesPartialNode) {
  FleetSystem f(ThreeNodeConfig());
  sim::HistoryRecorder recorder(2);
  ASSERT_TRUE(SetupFleet(&f, &recorder).ok());
  f.AdvanceTo(30000);

  // Node 2 materializes no Reviews view, so a Reviews-constrained query must
  // record a coverage-failure probe for it and never choose it.
  auto out = RouteSql(&f,
                      "SELECT isbn, rating FROM Reviews R WHERE R.isbn < 20 "
                      "CURRENCY BOUND 1 HOUR ON (R)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  sim::History h = recorder.Snapshot();
  auto routes = EventsOfKind(h, sim::HistoryEvent::Kind::kRoute);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_FALSE(routes[0]->backend_tier);
  EXPECT_NE(routes[0]->node, 2);
  ASSERT_EQ(routes[0]->probes.size(), 3u);
  bool saw_coverage_failure = false;
  for (const RouteProbe& p : routes[0]->probes) {
    if (p.node == 2) {
      EXPECT_EQ(p.region, kBackendRegion);
      EXPECT_FALSE(p.heartbeat_known);
      EXPECT_FALSE(p.eligible);
      saw_coverage_failure = true;
    } else {
      EXPECT_EQ(p.region, fleet::ReviewsRegion(p.node));
      EXPECT_TRUE(p.eligible);
    }
  }
  EXPECT_TRUE(saw_coverage_failure);

  sim::OracleReport report = sim::CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
  ExpectNoLeakedPins(&f);
}

TEST(FleetRouterTest, TightBoundFallsThroughToBackendTier) {
  FleetSystem f(ThreeNodeConfig());
  sim::HistoryRecorder recorder(3);
  ASSERT_TRUE(SetupFleet(&f, &recorder).ok());
  f.AdvanceTo(30000);

  // The minimum steady-state heartbeat lag across the fleet is node 2's
  // 1500ms delivery delay, so a 1s bound can never be met from any cache
  // node: the only eligible tier is the backend, whose data is current by
  // definition.
  auto out = RouteSql(&f,
                      "SELECT isbn, price FROM Books B WHERE B.isbn < 25 "
                      "CURRENCY BOUND 1 SECONDS ON (B)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  sim::History h = recorder.Snapshot();
  auto routes = EventsOfKind(h, sim::HistoryEvent::Kind::kRoute);
  ASSERT_EQ(routes.size(), 1u);
  EXPECT_TRUE(routes[0]->backend_tier);
  for (const RouteProbe& p : routes[0]->probes) EXPECT_FALSE(p.eligible);
  for (const sim::HistoryEvent* serve :
       EventsOfKind(h, sim::HistoryEvent::Kind::kServe)) {
    EXPECT_FALSE(serve->local) << "backend-tier dispatch served locally";
  }
  EXPECT_GE(
      f.anchor()->metrics().counter("rcc.fleet.backend_serves")->value(), 1);

  sim::OracleReport report = sim::CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
  ExpectNoLeakedPins(&f);
}

TEST(FleetRouterTest, FailedNodeFallsThroughToPeer) {
  FleetSystem f(ThreeNodeConfig());
  sim::HistoryRecorder recorder(4);
  ASSERT_TRUE(SetupFleet(&f, &recorder).ok());
  f.AdvanceTo(30000);

  // Break node 1's query channel completely. The (B, R) consistency class
  // spans two regions on every node, so no local placement can serve it and
  // every plan is all-remote; node 2 lacks Reviews (ineligible), nodes 1 and
  // 3 price identical all-remote plans and the tie goes to node 1 — whose
  // remote fetch now fails, so the router must fall through to node 3.
  FaultInjectorConfig fi;
  fi.transient_error_probability = 1.0;
  f.node(1)->SetFaultInjector(fi);

  auto out = RouteSql(&f,
                      "SELECT B.isbn, R.rating FROM Books B, Reviews R "
                      "WHERE B.isbn = R.isbn AND B.isbn < 10 "
                      "CURRENCY BOUND 1 HOUR ON (B, R)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();

  sim::History h = recorder.Snapshot();
  auto routes = EventsOfKind(h, sim::HistoryEvent::Kind::kRoute);
  ASSERT_EQ(routes.size(), 2u);
  EXPECT_FALSE(routes[0]->backend_tier);
  EXPECT_EQ(routes[0]->node, 1);
  EXPECT_FALSE(routes[1]->backend_tier);
  EXPECT_EQ(routes[1]->node, 3);
  EXPECT_EQ(f.anchor()->metrics().counter("rcc.fleet.fallthroughs")->value(),
            1);

  // Each attempt runs under its own query id, so the failed attempt's
  // answer and the successful one never blend in the oracle's view.
  EXPECT_NE(routes[0]->query, routes[1]->query);
  sim::OracleReport report = sim::CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
  ExpectNoLeakedPins(&f);
}

TEST(FleetRouterTest, ExpiredDeadlineDoesNotFallThrough) {
  FleetSystem f(ThreeNodeConfig());
  ASSERT_TRUE(SetupFleet(&f).ok());
  f.AdvanceTo(30000);

  RoutedStatementOptions opts;
  opts.deadline = Deadline::After(std::chrono::steady_clock::now(), 0);
  auto out = RouteSql(&f,
                      "SELECT isbn, price FROM Books B WHERE B.isbn < 25 "
                      "CURRENCY BOUND 1 HOUR ON (B)",
                      opts);
  ASSERT_FALSE(out.ok());
  EXPECT_TRUE(out.status().IsDeadlineExceeded()) << out.status().ToString();
  // The budget is spent: no retry on a peer was attempted.
  EXPECT_EQ(f.anchor()->metrics().counter("rcc.fleet.fallthroughs")->value(),
            0);
  ExpectNoLeakedPins(&f);
}

TEST(FleetRouterTest, QuarantinedNodeIsNeverServedFrom) {
  FleetSystem f(ThreeNodeConfig());
  sim::HistoryRecorder recorder(5);
  ASSERT_TRUE(SetupFleet(&f, &recorder).ok());
  f.AdvanceTo(30000);

  // Poison node 2's delivery pipeline deterministically: the next delivery
  // carrying ops quarantines its region and withdraws the certified
  // heartbeat.
  ReplicationFaultConfig rf;
  rf.seed = 99;
  rf.poison_probability = 1.0;
  f.SetNodeReplicationFaults(2, rf);
  auto dml = f.anchor()->CreateSession();
  ASSERT_TRUE(
      dml->Execute("UPDATE Books SET price = price + 1 WHERE isbn <= 40")
          .ok());
  // Step in small increments so a check lands inside the quarantine window
  // (the auto-resync only fires at the region's next wakeup, several
  // intervals later).
  bool withdrawn = false;
  for (int i = 0; i < 60 && !withdrawn; ++i) {
    f.AdvanceBy(500);
    withdrawn = !f.node(2)->LocalHeartbeat(BooksRegion(2)).has_value();
  }
  ASSERT_TRUE(withdrawn) << "node 2 never quarantined";

  uint64_t quarantine_seq = 0;
  for (const sim::HistoryEvent& ev : recorder.Snapshot().events) {
    if (ev.kind == sim::HistoryEvent::Kind::kHealth && ev.node == 2 &&
        ev.health_to == RegionHealth::kQuarantined) {
      quarantine_seq = ev.seq;
    }
  }
  ASSERT_GT(quarantine_seq, 0u);

  // Queries issued while the heartbeat is withdrawn (virtual time frozen, so
  // no resync can land in between) must route around node 2.
  for (int i = 0; i < 8; ++i) {
    auto out = RouteSql(&f,
                        "SELECT isbn, price FROM Books B WHERE B.isbn < 30 "
                        "CURRENCY BOUND 1 HOUR ON (B)");
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }

  sim::History h = recorder.Snapshot();
  int64_t post_routes = 0;
  for (const sim::HistoryEvent& ev : h.events) {
    if (ev.seq <= quarantine_seq) continue;
    if (ev.kind == sim::HistoryEvent::Kind::kRoute) {
      ++post_routes;
      if (!ev.backend_tier) {
        EXPECT_NE(ev.node, 2) << "routed to a quarantined node, seq "
                              << ev.seq;
      }
    }
    if (ev.kind == sim::HistoryEvent::Kind::kGuard ||
        ev.kind == sim::HistoryEvent::Kind::kServe) {
      EXPECT_NE(ev.node, 2) << "served from a quarantined node, seq "
                            << ev.seq;
    }
  }
  EXPECT_EQ(post_routes, 8);

  sim::OracleReport report = sim::CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
  ExpectNoLeakedPins(&f);
}

TEST(FleetRouterTest, PerNodeRoutedMetricsMatchHistory) {
  FleetSystem f(ThreeNodeConfig());
  sim::HistoryRecorder recorder(6);
  ASSERT_TRUE(SetupFleet(&f, &recorder).ok());
  f.AdvanceTo(30000);

  const char* kPool[] = {
      "SELECT isbn FROM Books B WHERE B.isbn < 30",
      "SELECT isbn, price FROM Books B WHERE B.isbn < 40 "
      "CURRENCY BOUND 1 HOUR ON (B)",
      "SELECT isbn, rating FROM Reviews R WHERE R.isbn < 20 "
      "CURRENCY BOUND 1 HOUR ON (R)",
  };
  for (int i = 0; i < 9; ++i) {
    auto out = RouteSql(&f, kPool[i % 3]);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }

  sim::History h = recorder.Snapshot();
  int64_t cache_routes[4] = {0, 0, 0, 0};
  for (const sim::HistoryEvent* r :
       EventsOfKind(h, sim::HistoryEvent::Kind::kRoute)) {
    if (!r->backend_tier) ++cache_routes[r->node];
  }
  obs::MetricsRegistry& m = f.anchor()->metrics();
  for (int n = 1; n <= 3; ++n) {
    EXPECT_EQ(m.counter(obs::MetricsRegistry::NodeMetricName("rcc.fleet", n,
                                                             "routed"))
                  ->value(),
              cache_routes[n])
        << "node " << n;
  }
  sim::OracleReport report = sim::CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(FleetSessionTest, SessionSelectsRouteAcrossTheFleet) {
  FleetSystem f(ThreeNodeConfig());
  sim::HistoryRecorder recorder(7);
  ASSERT_TRUE(SetupFleet(&f, &recorder).ok());
  f.AdvanceTo(30000);

  std::unique_ptr<Session> session = f.CreateSession();
  auto res = session->Execute(
      "SELECT isbn, price FROM Books B WHERE B.isbn < 40 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  ASSERT_TRUE(res.ok()) << res.status().ToString();

  // EXPLAIN and DML stay on the anchor: no new route events.
  size_t routes_before =
      EventsOfKind(recorder.Snapshot(), sim::HistoryEvent::Kind::kRoute)
          .size();
  EXPECT_GE(routes_before, 1u);
  ASSERT_TRUE(
      session->Execute("EXPLAIN SELECT isbn FROM Books B WHERE B.isbn < 10")
          .ok());
  ASSERT_TRUE(
      session->Execute("UPDATE Books SET price = price + 1 WHERE isbn = 1")
          .ok());
  EXPECT_EQ(EventsOfKind(recorder.Snapshot(), sim::HistoryEvent::Kind::kRoute)
                .size(),
            routes_before);

  // Timeline mode flows into routed statements: the floor raised by one
  // query holds for the next, fleet-wide.
  ASSERT_TRUE(session->Execute("BEGIN TIMEORDERED").ok());
  ASSERT_TRUE(session
                  ->Execute("SELECT isbn, price FROM Books B "
                            "WHERE B.isbn < 40 CURRENCY BOUND 1 HOUR ON (B)")
                  .ok());
  ASSERT_TRUE(session
                  ->Execute("SELECT isbn, price FROM Books B "
                            "WHERE B.isbn < 40 CURRENCY BOUND 1 HOUR ON (B)")
                  .ok());
  ASSERT_TRUE(session->Execute("END TIMEORDERED").ok());

  sim::OracleReport report = sim::CheckHistory(recorder.Snapshot());
  EXPECT_TRUE(report.ok()) << report.Summary();
  ExpectNoLeakedPins(&f);
}

TEST(FleetPropertyTest, RouterAlwaysPicksCheapestEligibleNode) {
  // Randomized per-node heartbeats (seeded fleets advanced to arbitrary
  // points in their refresh cycles) against an independent re-derivation of
  // the eligibility ladder and the cost argmin. Every recorded history must
  // also replay clean through the multi-node oracle.
  const SimTimeMs kBounds[] = {2000, 5000, 12000, 3600000};
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    FleetSystem f(ThreeNodeConfig(seed));
    sim::HistoryRecorder recorder(seed);
    ASSERT_TRUE(SetupFleet(&f, &recorder).ok());
    f.AdvanceTo(20000 + static_cast<SimTimeMs>(seed * 1711));

    for (int step = 0; step < 12; ++step) {
      f.AdvanceBy(700 +
                  static_cast<SimTimeMs>((seed * 131 + step * 977) % 2300));
      SimTimeMs bound = kBounds[(seed + step) % 4];
      std::string sql =
          "SELECT isbn, price FROM Books B WHERE B.isbn < 35 "
          "CURRENCY BOUND " +
          std::to_string(bound) + " MILLISECONDS ON (B)";
      auto stmt = ParseSelect(sql);
      ASSERT_TRUE(stmt.ok());

      // Independent expectation, derived before the router runs: per node,
      // the certified heartbeat of the view's region and the router's
      // eligibility formula, then the Eq. 1 cost argmin with the lowest-id
      // tie-break.
      const SimTimeMs now = f.Now();
      int best = 0;
      double best_cost = 0;
      for (int n = 1; n <= 3; ++n) {
        auto views = f.node(n)->catalog().ViewsOnTable("Books");
        ASSERT_FALSE(views.empty());
        std::optional<SimTimeMs> hb =
            f.node(n)->LocalHeartbeat(views.front()->region);
        if (!hb.has_value() || *hb <= now - bound) continue;
        auto plan = f.node(n)->Prepare(**stmt);
        if (!plan.ok()) continue;
        if (best == 0 || plan->est_cost < best_cost) {
          best = n;
          best_cost = plan->est_cost;
        }
      }

      size_t routes_before =
          EventsOfKind(recorder.Snapshot(), sim::HistoryEvent::Kind::kRoute)
              .size();
      auto out = f.router()->RouteSelect(**stmt, {});
      ASSERT_TRUE(out.ok()) << out.status().ToString();
      sim::History h = recorder.Snapshot();
      auto routes = EventsOfKind(h, sim::HistoryEvent::Kind::kRoute);
      ASSERT_GT(routes.size(), routes_before);
      const sim::HistoryEvent* first = routes[routes_before];
      if (best == 0) {
        EXPECT_TRUE(first->backend_tier) << "seed " << seed << " step "
                                         << step;
      } else {
        EXPECT_FALSE(first->backend_tier) << "seed " << seed << " step "
                                          << step;
        EXPECT_EQ(first->node, best) << "seed " << seed << " step " << step;
      }
    }

    sim::OracleReport report = sim::CheckHistory(recorder.Snapshot());
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n" << report.Summary();
    ExpectNoLeakedPins(&f);
  }
}

TEST(FleetShardingTest, MirroredShardsServeIdenticalData) {
  FleetConfig fc = ThreeNodeConfig();
  fc.backend_shards = 2;
  fc.nodes[1].shard = 1;
  fc.nodes[2].shard = 1;
  FleetSystem f(fc);
  ASSERT_TRUE(SetupFleet(&f).ok());
  ASSERT_EQ(f.shard_count(), 2);
  ASSERT_NE(f.shard(1), nullptr);
  f.AdvanceTo(30000);

  // Routed reads work no matter which shard backs the chosen node. (No
  // oracle replay here: mirrored shards have independent commit timestamp
  // spaces, and the recorded commit stream would be the anchor's only.)
  auto out = RouteSql(&f,
                      "SELECT isbn, price FROM Books B WHERE B.isbn < 25 "
                      "CURRENCY BOUND 1 HOUR ON (B)");
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_GT(out->result.rows.size(), 0u);

  // Mirrored DML lands on every shard; the same rows must then be visible
  // both through the backend tier (anchor shard) and, after propagation,
  // from mirror-backed cache nodes.
  std::vector<RowOp> ops;
  for (int64_t isbn : {9001, 9002}) {
    RowOp op;
    op.kind = RowOp::Kind::kInsert;
    op.table = "Books";
    op.row = {Value::Int(isbn), Value::Str("mirrored"), Value::Double(12.5),
              Value::Int(3)};
    ops.push_back(std::move(op));
  }
  auto ts = f.ExecuteMirrored(std::move(ops));
  ASSERT_TRUE(ts.ok()) << ts.status().ToString();
  f.AdvanceBy(20000);

  auto strict = RouteSql(&f,
                         "SELECT isbn FROM Books B WHERE B.isbn >= 9001 "
                         "CURRENCY BOUND 1 SECONDS ON (B)");
  ASSERT_TRUE(strict.ok()) << strict.status().ToString();
  EXPECT_EQ(strict->result.rows.size(), 2u);
  auto loose = RouteSql(&f,
                        "SELECT isbn FROM Books B WHERE B.isbn >= 9001 "
                        "CURRENCY BOUND 1 HOUR ON (B)");
  ASSERT_TRUE(loose.ok()) << loose.status().ToString();
  EXPECT_EQ(loose->result.rows.size(), 2u);
  ExpectNoLeakedPins(&f);
}

}  // namespace
}  // namespace rcc
