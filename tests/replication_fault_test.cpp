// Replication-pipeline fault injection and the agent's defenses: duplicate /
// out-of-order / dropped / stalled / poisoned deliveries, the region health
// state machine (HEALTHY → SUSPECT → QUARANTINED → RESYNCING → HEALTHY),
// quarantine invalidating the certified heartbeat, and automatic resync from
// a back-end master snapshot. Registered with the `repl` and `tsan` ctest
// labels: the tsan preset runs the pooled-reader tests under ThreadSanitizer.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "replication/agent.h"
#include "replication/fault_injector.h"
#include "replication/heartbeat.h"
#include "replication/region.h"
#include "test_util.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::MustExecute;

TableDef ItemsDef() {
  TableDef def;
  def.name = "Items";
  def.schema = Schema({{"id", ValueType::kInt64},
                       {"cat", ValueType::kInt64},
                       {"price", ValueType::kDouble}});
  def.clustered_key = {"id"};
  return def;
}

ViewDef FullView(RegionId region = 1, const std::string& name = "items_copy") {
  ViewDef v;
  v.name = name;
  v.source_table = "Items";
  v.columns = {"id", "cat", "price"};
  v.region = region;
  return v;
}

Row ItemRow(int64_t id, int64_t cat, double price) {
  return {Value::Int(id), Value::Int(cat), Value::Double(price)};
}

// -- ReplicationFaultInjector -------------------------------------------------

TEST(ReplicationFaultInjectorTest, SameSeedSameFaultSchedule) {
  ReplicationFaultConfig config;
  config.seed = 77;
  config.drop_probability = 0.3;
  config.delay_probability = 0.3;
  config.delay_ms = 500;
  config.duplicate_probability = 0.3;
  ReplicationFaultInjector a(config);
  ReplicationFaultInjector b(config);
  for (int i = 0; i < 200; ++i) {
    DeliveryFate fa = a.DrawDeliveryFate(i * 100);
    DeliveryFate fb = b.DrawDeliveryFate(i * 100);
    EXPECT_EQ(fa.drop, fb.drop) << "draw " << i;
    EXPECT_EQ(fa.extra_delay_ms, fb.extra_delay_ms) << "draw " << i;
    EXPECT_EQ(fa.duplicate, fb.duplicate) << "draw " << i;
  }
  EXPECT_EQ(a.batches_dropped(), b.batches_dropped());
  EXPECT_EQ(a.batches_delayed(), b.batches_delayed());
  EXPECT_EQ(a.batches_duplicated(), b.batches_duplicated());
  EXPECT_GT(a.batches_dropped(), 0);
  EXPECT_GT(a.batches_delayed(), 0);
  EXPECT_GT(a.batches_duplicated(), 0);
}

TEST(ReplicationFaultInjectorTest, OutageWindowDropsEveryBatch) {
  ReplicationFaultConfig config;
  config.outages = {{1000, 2000}};
  ReplicationFaultInjector inj(config);
  EXPECT_FALSE(inj.DrawDeliveryFate(999).drop);
  EXPECT_TRUE(inj.DrawDeliveryFate(1000).drop);
  EXPECT_TRUE(inj.DrawDeliveryFate(1999).drop);
  EXPECT_FALSE(inj.DrawDeliveryFate(2000).drop);
  EXPECT_EQ(inj.outage_drops(), 2);
  EXPECT_EQ(inj.batches_dropped(), 2);
}

TEST(ReplicationFaultInjectorTest, PoisonPicksAnOpInsideTheBatch) {
  ReplicationFaultConfig config;
  config.poison_probability = 1.0;
  ReplicationFaultInjector inj(config);
  EXPECT_FALSE(inj.DrawPoisonedOp(0).has_value());  // empty batch: no poison
  for (int i = 0; i < 50; ++i) {
    auto at = inj.DrawPoisonedOp(7);
    ASSERT_TRUE(at.has_value());
    EXPECT_LT(*at, 7u);
  }
}

// -- DistributionAgent under faults ------------------------------------------

/// Mirrors AgentTest in replication_test.cpp, plus a master table that stays
/// the ground truth for every commit (for resync and bit-identity checks).
class FaultAgentTest : public ::testing::Test {
 protected:
  FaultAgentTest()
      : sched_(&clock_), items_(ItemsDef()), master_("Items", items_.schema,
                                                     {0}) {}

  void Setup(SimTimeMs f, SimTimeMs d, SimTimeMs hb_interval = 1000) {
    RegionDef def;
    def.cid = 1;
    def.update_interval = f;
    def.update_delay = d;
    def.heartbeat_interval = hb_interval;
    region_ = std::make_unique<CurrencyRegion>(def);
    auto view = MaterializedView::Create(FullView(), items_);
    ASSERT_TRUE(view.ok());
    region_->AddView(std::move(*view));
    agent_ = std::make_unique<DistributionAgent>(region_.get(), &log_,
                                                 &heartbeat_, &sched_);
    agent_->set_master_table_provider(
        [this](const std::string& name) -> const Table* {
          return ToLower(name) == "items" ? &master_ : nullptr;
        });
    agent_->set_health_observer([this](RegionId, RegionHealth from,
                                       RegionHealth to, SimTimeMs) {
      transitions_.push_back({from, to});
    });
    agent_->Start(f);
    sched_.SchedulePeriodic(hb_interval, hb_interval, [this](SimTimeMs now) {
      heartbeat_.Beat(1, now);
    });
  }

  /// Commits one random-ish mutation against the master and the log.
  void CommitRandom(Rng* rng) {
    SimTimeMs at = clock_.Now() + rng->Uniform(100, 3000);
    sched_.RunUntil(at);
    int64_t id = rng->Uniform(1, 30);
    Row row = ItemRow(id, rng->Uniform(0, 5),
                      static_cast<double>(rng->Uniform(1, 1000)));
    CommittedTxn txn;
    txn.id = ++last_ts_;
    txn.commit_time = clock_.Now();
    RowOp op;
    op.table = "Items";
    if (master_.Get({Value::Int(id)}) == nullptr) {
      op.kind = RowOp::Kind::kInsert;
      op.row = row;
      ASSERT_TRUE(master_.Insert(row).ok());
    } else if (rng->Uniform(0, 3) == 0) {
      op.kind = RowOp::Kind::kDelete;
      op.key = {Value::Int(id)};
      ASSERT_TRUE(master_.Delete({Value::Int(id)}).ok());
    } else {
      op.kind = RowOp::Kind::kUpdate;
      op.row = row;
      ASSERT_TRUE(master_.Update(row).ok());
    }
    txn.ops.push_back(std::move(op));
    log_.Append(std::move(txn));
  }

  void Commit(SimTimeMs at, int64_t id, double price) {
    sched_.RunUntil(at);
    Row row = ItemRow(id, 0, price);
    CommittedTxn txn;
    txn.id = ++last_ts_;
    txn.commit_time = at;
    RowOp op;
    op.table = "Items";
    if (master_.Get({Value::Int(id)}) == nullptr) {
      op.kind = RowOp::Kind::kInsert;
      ASSERT_TRUE(master_.Insert(row).ok());
    } else {
      op.kind = RowOp::Kind::kUpdate;
      ASSERT_TRUE(master_.Update(row).ok());
    }
    op.row = std::move(row);
    txn.ops.push_back(std::move(op));
    log_.Append(std::move(txn));
  }

  /// The invariant under every fault mix: a certified heartbeat T promises
  /// that everything committed at or before T has been applied — so the log
  /// position implied by T can never exceed the region's applied position.
  void CheckHeartbeatInvariant() {
    std::optional<SimTimeMs> hb = region_->certified_heartbeat();
    if (!hb.has_value()) return;  // quarantined: nothing is promised
    EXPECT_LE(log_.UpperBoundByCommitTime(*hb), region_->applied_log_pos())
        << "published heartbeat " << *hb << " promises data the region "
        << "never applied";
  }

  /// The region's *current* published view (delivery and resync publish
  /// fresh clones, so the originally added object goes stale).
  std::shared_ptr<const MaterializedView> View() const {
    return region_->view("items_copy");
  }

  void ExpectViewMatchesMaster() {
    auto view = View();
    EXPECT_EQ(view->data().num_rows(), master_.num_rows());
    master_.Scan([&](const Row& row) {
      const Row* replica = view->data().Get({row[0]});
      EXPECT_NE(replica, nullptr);
      if (replica != nullptr) {
        EXPECT_EQ(RowToString(*replica), RowToString(row));
      }
      return true;
    });
  }

  VirtualClock clock_;
  SimulationScheduler sched_;
  TableDef items_;
  Table master_;
  UpdateLog log_;
  HeartbeatStore heartbeat_;
  std::unique_ptr<CurrencyRegion> region_;
  std::unique_ptr<DistributionAgent> agent_;
  std::vector<std::pair<RegionHealth, RegionHealth>> transitions_;
  TxnTimestamp last_ts_ = 0;
};

TEST_F(FaultAgentTest, DuplicateDeliveriesAreIdempotent) {
  Setup(10000, 2000);
  ReplicationFaultConfig faults;
  faults.duplicate_probability = 1.0;
  agent_->SetFaultConfig(faults);
  Rng rng(5);
  for (int i = 0; i < 40; ++i) CommitRandom(&rng);
  sched_.RunUntil(clock_.Now() + 30000);
  // Every batch arrived twice; the second copy's log range is already
  // applied, so it is a no-op — never a double-apply, never an anomaly.
  ExpectViewMatchesMaster();
  EXPECT_EQ(region_->health(), RegionHealth::kHealthy);
  EXPECT_GT(agent_->fault_injector()->batches_duplicated(), 0);
  CheckHeartbeatInvariant();
}

TEST_F(FaultAgentTest, OutOfOrderDeliveryIsRejectedNotApplied) {
  Setup(5000, 1000);
  // Half the batches arrive a full interval late, i.e. *after* the next
  // wakeup's batch: classic reordering.
  ReplicationFaultConfig faults;
  faults.seed = 11;
  faults.delay_probability = 0.5;
  faults.delay_ms = 7000;
  agent_->SetFaultConfig(faults);
  // Reordering alone must never quarantine a region into a full resync;
  // raise the threshold so this test exercises the monotonicity check only.
  agent_->set_quarantine_after(1 << 20);
  Rng rng(6);
  SimTimeMs prev_hb = 0;
  for (int i = 0; i < 60; ++i) {
    CommitRandom(&rng);
    CheckHeartbeatInvariant();
    // The published heartbeat is monotone even when arrivals are not.
    SimTimeMs hb = region_->local_heartbeat();
    EXPECT_GE(hb, prev_hb);
    prev_hb = hb;
  }
  sched_.RunUntil(clock_.Now() + 30000);
  // A late batch arriving behind the applied position was rejected whole;
  // the log-position check (not arrival order) kept application in commit
  // order, so the final state is exact.
  EXPECT_GT(agent_->stale_batches_rejected(), 0);
  ExpectViewMatchesMaster();
  CheckHeartbeatInvariant();
}

TEST_F(FaultAgentTest, DroppedBatchesSelfHealFromTheLog) {
  Setup(5000, 1000);
  ReplicationFaultConfig faults;
  faults.seed = 12;
  faults.drop_probability = 0.4;
  agent_->SetFaultConfig(faults);
  agent_->set_quarantine_after(1 << 20);
  Rng rng(7);
  for (int i = 0; i < 60; ++i) {
    CommitRandom(&rng);
    CheckHeartbeatInvariant();
  }
  ASSERT_GT(agent_->fault_injector()->batches_dropped(), 0);
  // Stop dropping; the next delivery applies the whole gap from the log.
  agent_->ClearFaultConfig();
  sched_.RunUntil(clock_.Now() + 30000);
  ExpectViewMatchesMaster();
  EXPECT_EQ(region_->applied_log_pos(), log_.size());
  CheckHeartbeatInvariant();
}

TEST_F(FaultAgentTest, PoisonedBatchQuarantinesBeforeAnythingIsVisible) {
  Setup(10000, 2000);
  ReplicationFaultConfig faults;
  faults.poison_probability = 1.0;
  agent_->SetFaultConfig(faults);
  Commit(1000, 1, 9.9);
  Commit(2000, 2, 8.8);
  // Wakeup at 10000, poisoned delivery at 12000.
  sched_.RunUntil(12000);
  EXPECT_EQ(region_->health(), RegionHealth::kQuarantined);
  EXPECT_EQ(agent_->quarantines(), 1);
  // Nothing of the half-applied batch was published: position, snapshot and
  // heartbeat still describe the pre-batch state, and the certified
  // heartbeat is withdrawn so no guard can trust the region at all.
  EXPECT_EQ(region_->applied_log_pos(), 0u);
  EXPECT_FALSE(region_->certified_heartbeat().has_value());
  // Recovery: next wakeup (20000) enters RESYNCING, the snapshot lands
  // update_delay later, and the region is HEALTHY again with exact data —
  // bounded wakeups, not best-effort.
  agent_->ClearFaultConfig();
  sched_.RunUntil(22000);
  EXPECT_EQ(region_->health(), RegionHealth::kHealthy);
  EXPECT_EQ(agent_->resyncs(), 1);
  EXPECT_GT(agent_->resync_latency_total_ms(), 0);
  EXPECT_TRUE(region_->certified_heartbeat().has_value());
  EXPECT_EQ(region_->applied_log_pos(), log_.size());
  ExpectViewMatchesMaster();
  // The observer saw the full state machine walk.
  ASSERT_GE(transitions_.size(), 3u);
  EXPECT_EQ(transitions_.front().second, RegionHealth::kQuarantined);
  EXPECT_EQ(transitions_.back().first, RegionHealth::kResyncing);
  EXPECT_EQ(transitions_.back().second, RegionHealth::kHealthy);
}

TEST_F(FaultAgentTest, RepeatedAnomaliesEscalateThroughSuspect) {
  Setup(5000, 1000);
  ReplicationFaultConfig faults;
  faults.drop_probability = 1.0;
  agent_->SetFaultConfig(faults);
  agent_->set_quarantine_after(3);
  Commit(1000, 1, 1.0);
  // First two dropped wakeups: SUSPECT (heartbeat still certified — the
  // data is merely aging, not suspect of being wrong).
  sched_.RunUntil(10000);
  EXPECT_EQ(region_->health(), RegionHealth::kSuspect);
  EXPECT_TRUE(region_->certified_heartbeat().has_value());
  // Third consecutive anomaly crosses the threshold.
  sched_.RunUntil(15000);
  EXPECT_EQ(region_->health(), RegionHealth::kQuarantined);
  EXPECT_FALSE(region_->certified_heartbeat().has_value());
  // Drops keep happening, but recovery outranks the injector: wakeup 20000
  // enters RESYNCING, resync lands at 21000.
  sched_.RunUntil(21000);
  EXPECT_EQ(region_->health(), RegionHealth::kHealthy);
  ExpectViewMatchesMaster();
}

TEST_F(FaultAgentTest, StallStopsDeliveriesThenHeals) {
  Setup(5000, 1000);
  ReplicationFaultConfig faults;
  faults.stall_probability = 1.0;
  faults.stall_wakeups = 3;
  agent_->SetFaultConfig(faults);
  agent_->set_quarantine_after(3);
  Commit(1000, 1, 1.0);
  // Wakeups at 5000/10000/15000 all stall; the third anomaly quarantines.
  sched_.RunUntil(15000);
  EXPECT_EQ(agent_->fault_injector()->stalls(), 1);
  EXPECT_EQ(region_->health(), RegionHealth::kQuarantined);
  EXPECT_EQ(View()->data().num_rows(), 0u);
  // Recovery happens even though the injector would stall every wakeup:
  // quarantine checks recovery before drawing new stalls. Wakeup 20000
  // enters RESYNCING and the rebuilt snapshot lands at 21000.
  sched_.RunUntil(21500);
  EXPECT_EQ(region_->health(), RegionHealth::kHealthy);
  EXPECT_EQ(agent_->resyncs(), 1);
  ExpectViewMatchesMaster();
}

TEST_F(FaultAgentTest, InvariantHoldsUnderFullFaultMix) {
  Setup(5000, 1000, 500);
  ReplicationFaultConfig faults;
  faults.seed = 0xBADF00D;
  faults.drop_probability = 0.15;
  faults.delay_probability = 0.25;
  faults.delay_ms = 8000;  // > interval: reordering
  faults.duplicate_probability = 0.25;
  faults.stall_probability = 0.05;
  faults.stall_wakeups = 2;
  faults.poison_probability = 0.05;
  agent_->SetFaultConfig(faults);
  agent_->set_quarantine_after(3);
  Rng rng(8);
  for (int i = 0; i < 150; ++i) {
    CommitRandom(&rng);
    // The acceptance invariant: no certified heartbeat ever promises data
    // the region has not applied, under any interleaving of faults.
    CheckHeartbeatInvariant();
  }
  // Quiesce fault-free: every quarantine must resolve via resync and the
  // final state must be exact.
  agent_->ClearFaultConfig();
  sched_.RunUntil(clock_.Now() + 60000);
  EXPECT_EQ(region_->health(), RegionHealth::kHealthy);
  ExpectViewMatchesMaster();
  CheckHeartbeatInvariant();
}

TEST_F(FaultAgentTest, ResyncedRegionIsBitIdenticalToNeverFaultedTwin) {
  // Twin region 2 over the same log, fault-free, same schedule.
  Setup(5000, 1000);
  RegionDef def2;
  def2.cid = 2;
  def2.update_interval = 5000;
  def2.update_delay = 1000;
  def2.heartbeat_interval = 1000;
  auto region2 = std::make_unique<CurrencyRegion>(def2);
  auto view2_or = MaterializedView::Create(FullView(2, "items_copy2"), items_);
  ASSERT_TRUE(view2_or.ok());
  region2->AddView(std::move(*view2_or));
  DistributionAgent agent2(region2.get(), &log_, &heartbeat_, &sched_);
  agent2.Start(5000);

  ReplicationFaultConfig faults;
  faults.seed = 21;
  faults.drop_probability = 0.2;
  faults.poison_probability = 0.3;
  agent_->SetFaultConfig(faults);
  agent_->set_quarantine_after(2);
  Rng rng(9);
  for (int i = 0; i < 80; ++i) CommitRandom(&rng);
  EXPECT_GT(agent_->quarantines(), 0);
  // Quiesce: region 1 finishes its resync, region 2 just drains the log.
  agent_->ClearFaultConfig();
  sched_.RunUntil(clock_.Now() + 60000);
  ASSERT_EQ(region_->health(), RegionHealth::kHealthy);
  // Row-for-row identical replicas.
  auto mine_view = View();
  auto view2 = region2->view("items_copy2");
  EXPECT_EQ(mine_view->data().num_rows(), view2->data().num_rows());
  view2->data().Scan([&](const Row& row) {
    const Row* mine = mine_view->data().Get({row[0]});
    EXPECT_NE(mine, nullptr);
    if (mine != nullptr) {
      EXPECT_EQ(RowToString(*mine), RowToString(row));
    }
    return true;
  });
  ExpectViewMatchesMaster();
  agent2.Stop();
}

TEST_F(FaultAgentTest, StopCancelsInFlightEventsBeforeDestruction) {
  Setup(5000, 1000);
  Commit(1000, 1, 1.0);
  // A wakeup has fired and a delivery event sits in the queue for t=6000.
  sched_.RunUntil(5500);
  // Destroying the agent (dtor calls Stop) must cancel the queued delivery
  // and the periodic series: running the scheduler afterwards would
  // otherwise call into freed memory (asan-visible use-after-free).
  agent_.reset();
  region_.reset();
  sched_.RunUntil(60000);  // queued events are skipped, not dispatched
  SUCCEED();
}

// -- system level -------------------------------------------------------------

using testing_util::MustPrepare;

constexpr char kGuardedQuery[] =
    "SELECT title, price FROM Books WHERE isbn = 7 "
    "CURRENCY BOUND 60 SEC ON (Books)";

/// Drives bookstore update traffic through a session so the back-end log
/// grows while replication faults are active.
void CommitPriceUpdates(BookstoreFixture* fx, int n, SimTimeMs gap_ms) {
  for (int i = 0; i < n; ++i) {
    fx->sys.AdvanceBy(gap_ms);
    auto r = fx->session->Execute(
        "UPDATE Books SET price = " + std::to_string(10 + i % 7) +
        " WHERE isbn = " + std::to_string(1 + i % 50));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
}

/// Poisons region 1's next delivery and advances past it, asserting the
/// region ends up quarantined with its certified heartbeat withdrawn.
void ForceQuarantine(BookstoreFixture* fx) {
  ReplicationFaultConfig faults;
  faults.poison_probability = 1.0;
  fx->sys.cache()->SetReplicationFaults(faults);
  CommitPriceUpdates(fx, 3, 500);
  // Past the next wakeup + delivery of the 10s/2s region schedule.
  fx->sys.AdvanceBy(13000);
  ASSERT_EQ(fx->sys.cache()->RegionHealthOf(1), RegionHealth::kQuarantined);
  ASSERT_FALSE(fx->sys.cache()->LocalHeartbeat(1).has_value());
}

TEST(ReplicationFaultSystemTest, QuarantineWithdrawsHeartbeatAndGuardsRefuse) {
  BookstoreFixture fx(/*interval_ms=*/10000, /*delay_ms=*/2000);
  fx.sys.AdvanceTo(13000);  // first delivery landed; heartbeat certified
  QueryPlan plan = MustPrepare(fx.session.get(), kGuardedQuery);
  EXPECT_NE(plan.Shape(), PlanShape::kRemoteOnly);

  // Healthy: the guard passes and the local view serves.
  auto healthy = fx.sys.cache()->ExecutePrepared(plan);
  ASSERT_TRUE(healthy.ok());
  EXPECT_EQ(healthy->stats.switch_local, 1);
  EXPECT_EQ(healthy->stats.guard_quarantined_region, 0);

  ForceQuarantine(&fx);

  // Quarantined: the same plan's guard now sees an unknown heartbeat and
  // routes remote — the half-applied region is never served.
  obs::QueryTrace trace;
  auto outcome = fx.sys.cache()->ExecutePrepared(plan, -1, DegradeMode::kNone,
                                                 &trace);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->stats.switch_local, 0);
  EXPECT_EQ(outcome->stats.switch_remote, 1);
  EXPECT_GE(outcome->stats.guard_unknown_region, 1);
  EXPECT_GE(outcome->stats.guard_quarantined_region, 1);
  // The guard probe records the pipeline health it saw.
  const obs::TraceEvent* probe =
      trace.FirstOf(obs::TraceEventKind::kGuardProbe);
  ASSERT_NE(probe, nullptr);
  EXPECT_NE(probe->detail.find("health=quarantined"), std::string::npos);

  // Even SET DEGRADE ALWAYS refuses a quarantined region when remote fails:
  // there is no staleness bound to annotate the answer with.
  FaultInjectorConfig outage;
  outage.outages = {{0, 1000000000}};
  fx.sys.cache()->SetFaultInjector(outage);
  auto degraded = fx.sys.cache()->ExecutePrepared(plan, -1,
                                                  DegradeMode::kAlways);
  ASSERT_FALSE(degraded.ok());
  EXPECT_NE(degraded.status().ToString().find("quarantined"),
            std::string::npos);
  fx.sys.cache()->ClearFaultInjector();

  // Automatic recovery: next wakeup resyncs from the back-end masters and
  // the guard serves locally again.
  fx.sys.cache()->ClearReplicationFaults();
  fx.sys.AdvanceBy(15000);
  EXPECT_EQ(fx.sys.cache()->RegionHealthOf(1), RegionHealth::kHealthy);
  ASSERT_TRUE(fx.sys.cache()->LocalHeartbeat(1).has_value());
  auto recovered = fx.sys.cache()->ExecutePrepared(plan);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->stats.switch_local, 1);
}

TEST(ReplicationFaultSystemTest, OptimizerPricesQuarantinedRegionRemoteOnly) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(13000);
  QueryPlan before = MustPrepare(fx.session.get(), kGuardedQuery);
  EXPECT_NE(before.Shape(), PlanShape::kRemoteOnly);

  ForceQuarantine(&fx);
  // Re-planning now prices the region remote-only: the local placement is
  // discarded because its guard cannot pass until the resync completes.
  QueryPlan during = MustPrepare(fx.session.get(), kGuardedQuery);
  EXPECT_EQ(during.Shape(), PlanShape::kRemoteOnly);

  fx.sys.cache()->ClearReplicationFaults();
  fx.sys.AdvanceBy(15000);
  ASSERT_EQ(fx.sys.cache()->RegionHealthOf(1), RegionHealth::kHealthy);
  QueryPlan after = MustPrepare(fx.session.get(), kGuardedQuery);
  EXPECT_NE(after.Shape(), PlanShape::kRemoteOnly);
}

TEST(ReplicationFaultSystemTest, ExplainAnalyzeShowsRegionHealthAtGuardTime) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(13000);
  QueryResult r = MustExecute(fx.session.get(),
                              std::string("EXPLAIN ANALYZE ") + kGuardedQuery);
  EXPECT_NE(r.message.find("health=healthy"), std::string::npos);
  EXPECT_NE(r.message.find("quarantined_region="), std::string::npos);
}

TEST(ReplicationFaultSystemTest, MetricsExportHealthGaugeAndCounters) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(13000);
  ForceQuarantine(&fx);
  fx.sys.cache()->ClearReplicationFaults();
  fx.sys.AdvanceBy(15000);
  ASSERT_EQ(fx.sys.cache()->RegionHealthOf(1), RegionHealth::kHealthy);
  EXPECT_GE(fx.sys.metrics().counter("rcc.replication.quarantines")->value(),
            1);
  EXPECT_GE(fx.sys.metrics().counter("rcc.replication.resyncs")->value(), 1);
  // Gauge reflects the final state (healthy = 0); the fault-free region 2
  // has a gauge too.
  std::string json = fx.sys.metrics().ToJson();
  EXPECT_NE(json.find("rcc.replication.region_health.1"), std::string::npos);
  EXPECT_NE(json.find("rcc.replication.region_health.2"), std::string::npos);
}

TEST(ReplicationFaultSystemTest, PooledReadersNeverSeeDataBehindHeartbeat) {
  // Concurrent batches interleaved with faulty replication: whatever the
  // fault mix does to deliveries, a query that served locally must have read
  // data at least as new as the heartbeat published for its region — data
  // and heartbeat travel in one immutable snapshot, so the guarantee holds
  // even while batches drop, reorder and poison. Runs under tsan via the
  // `repl` label.
  BookstoreFixture fx(5000, 1000);
  ReplicationFaultConfig faults;
  faults.seed = 99;
  faults.drop_probability = 0.2;
  faults.delay_probability = 0.2;
  faults.delay_ms = 8000;
  faults.duplicate_probability = 0.2;
  faults.poison_probability = 0.1;
  fx.sys.cache()->SetReplicationFaults(faults);

  std::vector<std::string> sqls;
  for (int i = 0; i < 8; ++i) {
    sqls.push_back("SELECT title, price FROM Books WHERE isbn = " +
                   std::to_string(3 + i) + " CURRENCY BOUND 60 SEC ON (Books)");
  }
  ConcurrentBatchOptions opts;
  opts.workers = 4;
  for (int round = 0; round < 20; ++round) {
    CommitPriceUpdates(&fx, 2, 700);
    fx.sys.AdvanceBy(2500);
    std::optional<SimTimeMs> hb = fx.sys.cache()->LocalHeartbeat(1);
    auto results = fx.sys.ExecuteConcurrent(sqls, opts);
    for (auto& r : results) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      if (r->stats.switch_local == 1) {
        // Local serve: only possible with a certified heartbeat, and the
        // data scanned is at least that new.
        ASSERT_TRUE(hb.has_value());
        EXPECT_GE(r->stats.max_seen_heartbeat, *hb);
      }
    }
  }
  // Drain: the system always converges back to HEALTHY regions.
  fx.sys.cache()->ClearReplicationFaults();
  fx.sys.AdvanceBy(60000);
  EXPECT_EQ(fx.sys.cache()->RegionHealthOf(1), RegionHealth::kHealthy);
  EXPECT_EQ(fx.sys.cache()->RegionHealthOf(2), RegionHealth::kHealthy);
}

}  // namespace
}  // namespace rcc
