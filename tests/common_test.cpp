#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/thread_pool.h"

namespace rcc {
namespace {

// -- Status / Result ----------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsParseError());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
  EXPECT_EQ(st.message(), "bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kParseError,
        StatusCode::kConstraintViolation, StatusCode::kNotSupported,
        StatusCode::kInternal, StatusCode::kUnavailable,
        StatusCode::kStaleOk}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
    EXPECT_NE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.ValueOr(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(7), 7);
}

TEST(StatusTest, StaleOkIsAdvisory) {
  Status st = Status::StaleOk("2000ms stale");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsStaleOk());
  EXPECT_EQ(st.code(), StatusCode::kStaleOk);
}

TEST(ResultTest, RejectsOkStatusWithoutValue) {
  // A Result built from an OK status would be ok()==false while
  // status().ok()==true — error propagation (RCC_ASSIGN_OR_RETURN) would then
  // silently return OK from the enclosing function. The constructor coerces
  // such a status to an Internal error instead.
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_FALSE(r.status().ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, RejectedOkStatusDoesNotPropagateAsSuccess) {
  auto passthrough = [](Result<int> in) -> Result<int> {
    RCC_ASSIGN_OR_RETURN(int v, std::move(in));
    return v;
  };
  Result<int> out = passthrough(Status::OK());
  ASSERT_FALSE(out.ok());
  EXPECT_FALSE(out.status().ok());
}

Result<int> Doubler(Result<int> in) {
  RCC_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(*Doubler(21), 42);
  EXPECT_FALSE(Doubler(Status::Internal("x")).ok());
}

// -- VirtualClock / Scheduler ----------------------------------------------------

TEST(ClockTest, NeverMovesBackwards) {
  VirtualClock clock;
  clock.AdvanceTo(100);
  clock.AdvanceTo(50);
  EXPECT_EQ(clock.Now(), 100);
  clock.AdvanceBy(25);
  EXPECT_EQ(clock.Now(), 125);
}

TEST(SchedulerTest, FiresInTimeOrder) {
  VirtualClock clock;
  SimulationScheduler sched(&clock);
  std::vector<int> fired;
  sched.ScheduleAt(30, [&](SimTimeMs) { fired.push_back(3); });
  sched.ScheduleAt(10, [&](SimTimeMs) { fired.push_back(1); });
  sched.ScheduleAt(20, [&](SimTimeMs) { fired.push_back(2); });
  sched.RunUntil(25);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(clock.Now(), 25);
  sched.RunUntil(100);
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, EqualTimesFireInScheduleOrder) {
  VirtualClock clock;
  SimulationScheduler sched(&clock);
  std::vector<int> fired;
  sched.ScheduleAt(10, [&](SimTimeMs) { fired.push_back(1); });
  sched.ScheduleAt(10, [&](SimTimeMs) { fired.push_back(2); });
  sched.RunUntil(10);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, PeriodicReschedulesItself) {
  VirtualClock clock;
  SimulationScheduler sched(&clock);
  int count = 0;
  sched.SchedulePeriodic(10, 10, [&](SimTimeMs) { ++count; });
  sched.RunUntil(55);
  EXPECT_EQ(count, 5);  // t = 10,20,30,40,50
}

TEST(SchedulerTest, EventsCanScheduleEvents) {
  VirtualClock clock;
  SimulationScheduler sched(&clock);
  std::vector<SimTimeMs> fired;
  sched.ScheduleAt(10, [&](SimTimeMs now) {
    fired.push_back(now);
    sched.ScheduleAt(now + 5, [&](SimTimeMs n2) { fired.push_back(n2); });
  });
  sched.RunUntil(20);
  EXPECT_EQ(fired, (std::vector<SimTimeMs>{10, 15}));
}

TEST(SchedulerTest, PastEventsClampToNow) {
  VirtualClock clock;
  SimulationScheduler sched(&clock);
  clock.AdvanceTo(100);
  bool fired = false;
  sched.ScheduleAt(10, [&](SimTimeMs) { fired = true; });
  sched.RunUntil(100);
  EXPECT_TRUE(fired);
}

TEST(ClockTest, FormatSimTime) {
  EXPECT_EQ(FormatSimTime(0), "0.000s");
  EXPECT_EQ(FormatSimTime(12345), "12.345s");
}

// -- strings -------------------------------------------------------------------

TEST(StringsTest, ToLowerAndEquals) {
  EXPECT_EQ(ToLower("HeLLo"), "hello");
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_FALSE(EqualsIgnoreCase("SELECT", "selec"));
  EXPECT_FALSE(EqualsIgnoreCase("a", "ab"));
}

TEST(StringsTest, ToLowerIsAsciiOnlyAndLocaleIndependent) {
  // Exhaustive: exactly 'A'..'Z' map down; every other byte value — digits,
  // punctuation, control bytes, and everything >= 0x80 (UTF-8 continuation
  // bytes, Latin-1 letters) — passes through untouched, regardless of the
  // global locale.
  for (int b = 0; b < 256; ++b) {
    char c = static_cast<char>(b);
    char lowered = AsciiToLowerChar(c);
    if (b >= 'A' && b <= 'Z') {
      EXPECT_EQ(lowered, static_cast<char>(b + 32)) << "byte " << b;
    } else {
      EXPECT_EQ(lowered, c) << "byte " << b;
    }
  }
  // High-bit bytes inside strings survive byte-for-byte ("café" in UTF-8).
  std::string utf8 = "CAF\xc3\xa9";
  EXPECT_EQ(ToLower(utf8), "caf\xc3\xa9");
  EXPECT_TRUE(EqualsIgnoreCase("caf\xc3\xa9", "CAF\xc3\xa9"));
  // 0xC9 is 'É' in Latin-1: a locale-aware tolower would fold it to 0xE9.
  EXPECT_FALSE(EqualsIgnoreCase("\xc9", "\xe9"));
}

TEST(StringsTest, JoinAndSplit) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Split("a, b , c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x  "), "x");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StrPrintf) {
  EXPECT_EQ(StrPrintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrPrintf("%s", ""), "");
}

// -- thread pool shutdown determinism -----------------------------------------

TEST(ThreadPoolShutdownTest, ShutdownDrainsEveryAcceptedTask) {
  // A single worker with a long queue: Shutdown must run all of it, not
  // silently drop the tail.
  ThreadPool pool(1);
  std::atomic<int> ran{0};
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  pool.Shutdown();
  EXPECT_EQ(ran.load(), 200);
  pool.Shutdown();  // idempotent
  EXPECT_EQ(ran.load(), 200);
}

TEST(ThreadPoolShutdownTest, SubmitAfterShutdownIsRejectedNotDropped) {
  ThreadPool pool(2);
  pool.Shutdown();
  std::atomic<int> ran{0};
  // Rejected means guaranteed-not-run: the caller knows to handle it, unlike
  // the old accept-then-drop behaviour where the task vanished.
  EXPECT_FALSE(pool.Submit([&ran] { ran.fetch_add(1); }));
  EXPECT_EQ(ran.load(), 0);
}

TEST(ThreadPoolShutdownTest, RunExecutesInlineAfterShutdown) {
  ThreadPool pool(2);
  pool.Shutdown();
  // Run's contract (every task executes exactly once) survives shutdown via
  // the inline fallback.
  std::atomic<int> ran{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 5; ++i) tasks.push_back([&ran] { ran.fetch_add(1); });
  pool.Run(std::move(tasks));
  EXPECT_EQ(ran.load(), 5);
}

TEST(ThreadPoolShutdownTest, CancelPendingDiscardsOnlyQueuedWork) {
  ThreadPool pool(1);
  std::atomic<bool> started{false};
  std::atomic<bool> release{false};
  std::atomic<int> ran{0};
  // Occupy the single worker so everything behind it stays queued.
  ASSERT_TRUE(pool.Submit([&started, &release] {
    started.store(true);
    while (!release.load()) std::this_thread::yield();
  }));
  // Wait until the worker owns the blocker, otherwise CancelPending would
  // discard the blocker itself and the arithmetic below counts 51 tasks.
  while (!started.load()) std::this_thread::yield();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  size_t dropped = pool.CancelPending();
  release.store(true);
  pool.Shutdown();
  // Everything is accounted for: ran + explicitly discarded == submitted.
  EXPECT_EQ(static_cast<int>(dropped) + ran.load(), 50);
  EXPECT_GT(dropped, 0u);
}

// -- rng --------------------------------------------------------------------------

TEST(RngTest, DeterministicFromSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.Uniform(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

}  // namespace
}  // namespace rcc
