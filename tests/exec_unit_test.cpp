// Direct unit tests for the execution layer: hand-built physical plans over
// a raw table, independent of the optimizer; plus the remote-statement
// parameterization and the currency guard in isolation.

#include <gtest/gtest.h>

#include "exec/iterators.h"
#include "exec/remote.h"
#include "exec/switch_union.h"
#include "sql/parser.h"

namespace rcc {
namespace {

class ExecUnitTest : public ::testing::Test {
 protected:
  ExecUnitTest()
      : table_("items",
               Schema({{"id", ValueType::kInt64},
                       {"grp", ValueType::kInt64},
                       {"price", ValueType::kDouble}}),
               {0}) {
    for (int64_t i = 1; i <= 20; ++i) {
      EXPECT_TRUE(table_
                      .Insert({Value::Int(i), Value::Int(i % 4),
                               Value::Double(i * 10.0)})
                      .ok());
    }
    EXPECT_TRUE(table_.CreateSecondaryIndex("idx_grp", {1}).ok());
    aliases_["i"] = 0;
    ctx_.table_provider = [this](const ScanTarget& target) -> const Table* {
      return target.name == "items" ? &table_ : nullptr;
    };
    ctx_.local_heartbeat = [this](RegionId) {
      return std::optional<SimTimeMs>(heartbeat_);
    };
    ctx_.clock = &clock_;
    ctx_.stats = &stats_;
  }

  /// Scan node over the full table.
  std::unique_ptr<PhysicalOp> MakeScan() {
    auto scan = std::make_unique<PhysicalOp>();
    scan->kind = PhysOpKind::kLocalScan;
    scan->target = ScanTarget{false, "items"};
    scan->operand = 0;
    for (const Column& c : table_.schema().columns()) {
      scan->layout.Add(0, c.name, c.type);
    }
    return scan;
  }

  std::vector<Row> Drain(RowIterator* iter) {
    EXPECT_TRUE(iter->Open(nullptr).ok());
    std::vector<Row> rows;
    Row row;
    while (true) {
      auto more = iter->Next(&row);
      EXPECT_TRUE(more.ok());
      if (!more.ok() || !*more) break;
      rows.push_back(row);
    }
    EXPECT_TRUE(iter->Close().ok());
    return rows;
  }

  std::unique_ptr<Expr> Pred(const std::string& text) {
    auto stmt = ParseSelect("SELECT 1 FROM i WHERE " + text);
    EXPECT_TRUE(stmt.ok());
    return std::move((*stmt)->where);
  }

  Table table_;
  AliasMap aliases_;
  ExecContext ctx_;
  ExecStats stats_;
  VirtualClock clock_;
  SimTimeMs heartbeat_ = 0;
};

TEST_F(ExecUnitTest, FullScan) {
  auto scan = MakeScan();
  auto iter = BuildIterator(*scan, &ctx_, &aliases_);
  ASSERT_TRUE(iter.ok());
  EXPECT_EQ(Drain(iter->get()).size(), 20u);
}

TEST_F(ExecUnitTest, ClusteredSeek) {
  auto scan = MakeScan();
  scan->seek_lo.push_back(Expr::MakeLiteral(Value::Int(5)));
  scan->seek_hi.push_back(Expr::MakeLiteral(Value::Int(8)));
  auto iter = BuildIterator(*scan, &ctx_, &aliases_);
  ASSERT_TRUE(iter.ok());
  auto rows = Drain(iter->get());
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows.front()[0].AsInt(), 5);
  EXPECT_EQ(rows.back()[0].AsInt(), 8);
}

TEST_F(ExecUnitTest, SecondaryIndexSeekWithResidual) {
  auto scan = MakeScan();
  scan->index_name = "idx_grp";
  scan->seek_lo.push_back(Expr::MakeLiteral(Value::Int(2)));
  scan->seek_hi.push_back(Expr::MakeLiteral(Value::Int(2)));
  scan->residual = Pred("i.price > 100");
  auto iter = BuildIterator(*scan, &ctx_, &aliases_);
  ASSERT_TRUE(iter.ok());
  // grp == 2: ids 2,6,10,14,18; price > 100 keeps 14, 18.
  auto rows = Drain(iter->get());
  ASSERT_EQ(rows.size(), 2u);
  for (const Row& row : rows) {
    EXPECT_EQ(row[1].AsInt(), 2);
    EXPECT_GT(row[2].AsDouble(), 100.0);
  }
}

TEST_F(ExecUnitTest, MissingIndexSurfaces) {
  auto scan = MakeScan();
  scan->index_name = "nope";
  auto iter = BuildIterator(*scan, &ctx_, &aliases_);
  ASSERT_TRUE(iter.ok());
  EXPECT_TRUE((*iter)->Open(nullptr).IsNotFound());
}

TEST_F(ExecUnitTest, MissingTableSurfaces) {
  auto scan = MakeScan();
  scan->target.name = "missing";
  auto iter = BuildIterator(*scan, &ctx_, &aliases_);
  ASSERT_TRUE(iter.ok());
  EXPECT_TRUE((*iter)->Open(nullptr).IsNotFound());
}

TEST_F(ExecUnitTest, IteratorsReopenCleanly) {
  auto scan = MakeScan();
  scan->seek_lo.push_back(Expr::MakeLiteral(Value::Int(1)));
  scan->seek_hi.push_back(Expr::MakeLiteral(Value::Int(3)));
  auto iter = BuildIterator(*scan, &ctx_, &aliases_);
  ASSERT_TRUE(iter.ok());
  EXPECT_EQ(Drain(iter->get()).size(), 3u);
  EXPECT_EQ(Drain(iter->get()).size(), 3u);  // re-open produces same rows
}

TEST_F(ExecUnitTest, HashJoinSelfJoin) {
  // items i JOIN items j ON i.grp = j.grp, with i restricted to id <= 2.
  auto left = MakeScan();
  left->seek_hi.push_back(Expr::MakeLiteral(Value::Int(2)));
  auto right = MakeScan();
  // Right side aliased 'j': re-tag its layout to operand 1.
  right->layout = RowLayout();
  for (const Column& c : table_.schema().columns()) {
    right->layout.Add(1, c.name, c.type);
  }
  AliasMap aliases = aliases_;
  aliases["j"] = 1;

  auto join = std::make_unique<PhysicalOp>();
  join->kind = PhysOpKind::kHashJoin;
  join->exprs.push_back(Expr::MakeColumn("i", "grp"));
  join->exprs2.push_back(Expr::MakeColumn("j", "grp"));
  join->layout = RowLayout::Concat(left->layout, right->layout);
  join->children.push_back(std::move(left));
  join->children.push_back(std::move(right));

  auto iter = BuildIterator(*join, &ctx_, &aliases);
  ASSERT_TRUE(iter.ok());
  // Each of ids 1,2 joins the 5 rows of its group.
  auto rows = Drain(iter->get());
  EXPECT_EQ(rows.size(), 10u);
  for (const Row& row : rows) {
    EXPECT_EQ(row[1].AsInt(), row[4].AsInt());  // grp == grp
  }
}

TEST_F(ExecUnitTest, NestedLoopJoinWithParameterizedSeek) {
  auto outer = MakeScan();
  outer->seek_hi.push_back(Expr::MakeLiteral(Value::Int(3)));
  auto inner = MakeScan();
  inner->layout = RowLayout();
  for (const Column& c : table_.schema().columns()) {
    inner->layout.Add(1, c.name, c.type);
  }
  // Inner point-seek on id = i.id: a parameterized clustered lookup.
  inner->seek_lo.push_back(Expr::MakeColumn("i", "id"));
  inner->seek_hi.push_back(Expr::MakeColumn("i", "id"));
  AliasMap aliases = aliases_;
  aliases["j"] = 1;

  auto join = std::make_unique<PhysicalOp>();
  join->kind = PhysOpKind::kNestedLoopJoin;
  join->layout = RowLayout::Concat(outer->layout, inner->layout);
  join->children.push_back(std::move(outer));
  join->children.push_back(std::move(inner));

  auto iter = BuildIterator(*join, &ctx_, &aliases);
  ASSERT_TRUE(iter.ok());
  auto rows = Drain(iter->get());
  ASSERT_EQ(rows.size(), 3u);  // each outer row matches exactly itself
  for (const Row& row : rows) {
    EXPECT_EQ(row[0].AsInt(), row[3].AsInt());
  }
}

TEST_F(ExecUnitTest, SortAndProject) {
  auto scan = MakeScan();
  scan->seek_hi.push_back(Expr::MakeLiteral(Value::Int(5)));

  auto project = std::make_unique<PhysicalOp>();
  project->kind = PhysOpKind::kProject;
  project->exprs.push_back(Expr::MakeColumn("i", "id"));
  project->layout.Add(0, "id", ValueType::kInt64);
  project->children.push_back(std::move(scan));

  auto sort = std::make_unique<PhysicalOp>();
  sort->kind = PhysOpKind::kSort;
  sort->layout = project->layout;
  SortKey key;
  key.expr = Expr::MakeColumn("i", "id");
  key.descending = true;
  sort->sort_keys.push_back(std::move(key));
  sort->children.push_back(std::move(project));

  auto iter = BuildIterator(*sort, &ctx_, &aliases_);
  ASSERT_TRUE(iter.ok());
  auto rows = Drain(iter->get());
  ASSERT_EQ(rows.size(), 5u);
  EXPECT_EQ(rows[0][0].AsInt(), 5);
  EXPECT_EQ(rows[4][0].AsInt(), 1);
}

TEST_F(ExecUnitTest, HashAggregate) {
  auto scan = MakeScan();
  auto agg = std::make_unique<PhysicalOp>();
  agg->kind = PhysOpKind::kHashAggregate;
  agg->exprs.push_back(Expr::MakeColumn("i", "grp"));
  agg->layout.Add(0, "grp", ValueType::kInt64);
  AggItem count;
  count.func = "count";
  count.star = true;
  count.out_name = "n";
  agg->layout.Add(kInvalidOperand, "n", ValueType::kInt64);
  agg->aggs.push_back(std::move(count));
  agg->children.push_back(std::move(scan));

  auto iter = BuildIterator(*agg, &ctx_, &aliases_);
  ASSERT_TRUE(iter.ok());
  auto rows = Drain(iter->get());
  ASSERT_EQ(rows.size(), 4u);  // groups 0..3
  int64_t total = 0;
  for (const Row& row : rows) total += row[1].AsInt();
  EXPECT_EQ(total, 20);
}

// -- SwitchUnion guard in isolation ---------------------------------------------

TEST_F(ExecUnitTest, GuardSemantics) {
  PhysicalOp op;
  op.kind = PhysOpKind::kSwitchUnion;
  op.guard_region = 1;
  op.guard_bound_ms = 1000;
  clock_.AdvanceTo(5000);
  heartbeat_ = 4500;  // staleness 500 < 1000
  EXPECT_TRUE(SwitchUnionIterator::EvaluateGuard(op, &ctx_));
  heartbeat_ = 4000;  // staleness 1000 == bound: strict comparison fails
  EXPECT_FALSE(SwitchUnionIterator::EvaluateGuard(op, &ctx_));
  heartbeat_ = 4001;
  EXPECT_TRUE(SwitchUnionIterator::EvaluateGuard(op, &ctx_));
  EXPECT_EQ(stats_.guard_evaluations, 3);
}

TEST_F(ExecUnitTest, GuardTimelineFloor) {
  PhysicalOp op;
  op.kind = PhysOpKind::kSwitchUnion;
  op.guard_region = 1;
  op.guard_bound_ms = 100000;
  clock_.AdvanceTo(5000);
  heartbeat_ = 4000;
  EXPECT_TRUE(SwitchUnionIterator::EvaluateGuard(op, &ctx_));
  ctx_.timeline_floor_ms = 4500;  // session already saw t=4500
  EXPECT_FALSE(SwitchUnionIterator::EvaluateGuard(op, &ctx_));
  ctx_.timeline_floor_ms = 4000;  // floor == heartbeat: allowed
  EXPECT_TRUE(SwitchUnionIterator::EvaluateGuard(op, &ctx_));
}

// -- ExecStats --------------------------------------------------------------------

TEST(ExecStatsTest, AccumulateMergesHeartbeatWithMax) {
  // max_seen_heartbeat is an input of the session timeline floor; dropping it
  // in Accumulate (or overwriting with the later value) would let a
  // time-ordered session regress below data it already saw.
  ExecStats total;
  ExecStats first;
  first.max_seen_heartbeat = 9000;
  ExecStats second;
  second.max_seen_heartbeat = 4000;
  total.Accumulate(first);
  total.Accumulate(second);
  EXPECT_EQ(total.max_seen_heartbeat, 9000);
  // -1 (= no source touched) never wins over a real timestamp.
  total.Accumulate(ExecStats());
  EXPECT_EQ(total.max_seen_heartbeat, 9000);
}

TEST(ExecStatsTest, AccumulateSumsResilienceCounters) {
  ExecStats total;
  ExecStats a;
  a.remote_retries = 2;
  a.remote_timeouts = 1;
  a.breaker_opens = 1;
  a.degraded_serves = 1;
  a.degraded_staleness_ms = 7000;
  ExecStats b;
  b.remote_retries = 3;
  b.degraded_serves = 2;
  b.degraded_staleness_ms = 2500;
  total.Accumulate(a);
  total.Accumulate(b);
  EXPECT_EQ(total.remote_retries, 5);
  EXPECT_EQ(total.remote_timeouts, 1);
  EXPECT_EQ(total.breaker_opens, 1);
  EXPECT_EQ(total.degraded_serves, 3);
  EXPECT_EQ(total.degraded_staleness_ms, 7000);  // max, not sum
}

TEST(ExecStatsTest, AccumulateSumsPhaseTimings) {
  // Regression: Accumulate used to drop setup_ms/run_ms/shutdown_ms, so any
  // aggregate built from per-query stats (cumulative link stats, bench
  // totals) reported zero executor time.
  ExecStats total;
  ExecStats a;
  a.setup_ms = 1.5;
  a.run_ms = 10.0;
  a.shutdown_ms = 0.25;
  ExecStats b;
  b.setup_ms = 0.5;
  b.run_ms = 2.0;
  b.shutdown_ms = 0.75;
  total.Accumulate(a);
  total.Accumulate(b);
  EXPECT_DOUBLE_EQ(total.setup_ms, 2.0);
  EXPECT_DOUBLE_EQ(total.run_ms, 12.0);
  EXPECT_DOUBLE_EQ(total.shutdown_ms, 1.0);
}

TEST(ExecStatsTest, AccumulateSumsSwitchCounters) {
  // switch_remote_attempted (the pre-degradation decision counter) must
  // aggregate like the serving-branch counters.
  ExecStats total;
  ExecStats a;
  a.switch_local = 2;
  a.switch_remote = 1;
  a.switch_remote_attempted = 3;
  ExecStats b;
  b.switch_remote_attempted = 1;
  total.Accumulate(a);
  total.Accumulate(b);
  EXPECT_EQ(total.switch_local, 2);
  EXPECT_EQ(total.switch_remote, 1);
  EXPECT_EQ(total.switch_remote_attempted, 4);
}

// -- ParameterizeStmt -------------------------------------------------------------

TEST(ParameterizeTest, SubstitutesOuterRefsOnly) {
  auto stmt = ParseSelect(
      "SELECT S.a FROM SalesT S WHERE S.k = OuterT.x AND S.a > 3");
  ASSERT_TRUE(stmt.ok());
  RowLayout layout;
  layout.Add(7, "x", ValueType::kInt64);
  Row row{Value::Int(42)};
  AliasMap aliases;
  aliases["outert"] = 7;
  EvalScope scope;
  scope.layout = &layout;
  scope.row = &row;
  scope.aliases = &aliases;

  auto parameterized = ParameterizeStmt(**stmt, scope);
  ASSERT_TRUE(parameterized.ok());
  std::string text = (*parameterized)->ToString();
  EXPECT_EQ(text.find("OuterT"), std::string::npos);
  EXPECT_NE(text.find("42"), std::string::npos);
  EXPECT_NE(text.find("S.k"), std::string::npos);  // own refs untouched
  EXPECT_NE(text.find("S.a"), std::string::npos);
}

TEST(ParameterizeTest, UnresolvableOuterRefFails) {
  auto stmt = ParseSelect("SELECT S.a FROM SalesT S WHERE S.k = Ghost.x");
  ASSERT_TRUE(stmt.ok());
  EvalScope empty;
  EXPECT_FALSE(ParameterizeStmt(**stmt, empty).ok());
}

TEST(ParameterizeTest, SubstitutesInAllClauses) {
  // Outer refs must be substituted everywhere an expression can appear —
  // GROUP BY, HAVING and ORDER BY included, not just WHERE and the select
  // items (a remote statement shipping an unresolved outer name fails at the
  // back-end resolver).
  auto stmt = ParseSelect(
      "SELECT S.a, SUM(S.b) FROM SalesT S WHERE S.k > 0 "
      "GROUP BY S.a, OuterT.x HAVING SUM(S.b) > OuterT.x "
      "ORDER BY OuterT.x DESC");
  ASSERT_TRUE(stmt.ok());
  RowLayout layout;
  layout.Add(7, "x", ValueType::kInt64);
  Row row{Value::Int(42)};
  AliasMap aliases;
  aliases["outert"] = 7;
  EvalScope scope;
  scope.layout = &layout;
  scope.row = &row;
  scope.aliases = &aliases;

  auto parameterized = ParameterizeStmt(**stmt, scope);
  ASSERT_TRUE(parameterized.ok());
  std::string text = (*parameterized)->ToString();
  EXPECT_EQ(text.find("OuterT"), std::string::npos) << text;
  EXPECT_NE(text.find("GROUP BY"), std::string::npos) << text;
  EXPECT_NE(text.find("HAVING"), std::string::npos) << text;
  EXPECT_NE(text.find("ORDER BY"), std::string::npos) << text;
}

TEST(ParameterizeTest, OwnAliasInGroupByNotTreatedAsOuter) {
  // A table's own alias referenced only in GROUP BY / ORDER BY must be
  // recognized as local (alias collection walks every clause too).
  auto stmt = ParseSelect(
      "SELECT COUNT(1) FROM SalesT S GROUP BY S.a ORDER BY S.a");
  ASSERT_TRUE(stmt.ok());
  EvalScope empty;
  auto parameterized = ParameterizeStmt(**stmt, empty);
  ASSERT_TRUE(parameterized.ok())
      << parameterized.status().ToString();
  EXPECT_NE((*parameterized)->ToString().find("S.a"), std::string::npos);
}

TEST(ParameterizeTest, NestedSubqueryHandled) {
  auto stmt = ParseSelect(
      "SELECT S.a FROM SalesT S WHERE EXISTS ("
      "SELECT 1 FROM T2 WHERE T2.y = Outer2.z)");
  ASSERT_TRUE(stmt.ok());
  RowLayout layout;
  layout.Add(3, "z", ValueType::kInt64);
  Row row{Value::Int(9)};
  AliasMap aliases;
  aliases["outer2"] = 3;
  EvalScope scope;
  scope.layout = &layout;
  scope.row = &row;
  scope.aliases = &aliases;
  auto parameterized = ParameterizeStmt(**stmt, scope);
  ASSERT_TRUE(parameterized.ok());
  EXPECT_EQ((*parameterized)->ToString().find("Outer2"), std::string::npos);
}

}  // namespace
}  // namespace rcc
