#include <gtest/gtest.h>

#include "common/rng.h"
#include "replication/agent.h"
#include "replication/heartbeat.h"
#include "replication/region.h"

namespace rcc {
namespace {

TableDef ItemsDef() {
  TableDef def;
  def.name = "Items";
  def.schema = Schema({{"id", ValueType::kInt64},
                       {"cat", ValueType::kInt64},
                       {"price", ValueType::kDouble}});
  def.clustered_key = {"id"};
  return def;
}

ViewDef FullView(RegionId region = 1) {
  ViewDef v;
  v.name = "items_copy";
  v.source_table = "Items";
  v.columns = {"id", "cat", "price"};
  v.region = region;
  return v;
}

Row ItemRow(int64_t id, int64_t cat, double price) {
  return {Value::Int(id), Value::Int(cat), Value::Double(price)};
}

// -- MaterializedView ---------------------------------------------------------

TEST(MaterializedViewTest, CreateValidatesColumns) {
  TableDef items = ItemsDef();
  ViewDef bad = FullView();
  bad.columns = {"id", "nope"};
  EXPECT_FALSE(MaterializedView::Create(bad, items).ok());

  ViewDef no_key = FullView();
  no_key.columns = {"cat", "price"};
  EXPECT_FALSE(MaterializedView::Create(no_key, items).ok());

  auto ok = MaterializedView::Create(FullView(), items);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->schema().num_columns(), 3u);
}

TEST(MaterializedViewTest, ProjectionView) {
  TableDef items = ItemsDef();
  ViewDef v = FullView();
  v.columns = {"id", "price"};
  auto view = MaterializedView::Create(v, items);
  ASSERT_TRUE(view.ok());
  RowOp ins;
  ins.kind = RowOp::Kind::kInsert;
  ins.table = "Items";
  ins.row = ItemRow(1, 5, 9.5);
  (*view)->ApplyOp(ins);
  const Row* row = (*view)->data().Get({Value::Int(1)});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->size(), 2u);
  EXPECT_DOUBLE_EQ((*row)[1].AsDouble(), 9.5);
}

TEST(MaterializedViewTest, SelectionViewTracksPredicate) {
  TableDef items = ItemsDef();
  ViewDef v = FullView();
  // Only category 1..3.
  v.predicate = {ColumnRange{"cat", Value::Int(1), Value::Int(3)}};
  auto view_or = MaterializedView::Create(v, items);
  ASSERT_TRUE(view_or.ok());
  MaterializedView* view = view_or->get();

  RowOp in_range;
  in_range.kind = RowOp::Kind::kInsert;
  in_range.table = "Items";
  in_range.row = ItemRow(1, 2, 1.0);
  view->ApplyOp(in_range);
  EXPECT_EQ(view->data().num_rows(), 1u);

  RowOp out_of_range;
  out_of_range.kind = RowOp::Kind::kInsert;
  out_of_range.table = "Items";
  out_of_range.row = ItemRow(2, 9, 1.0);
  view->ApplyOp(out_of_range);
  EXPECT_EQ(view->data().num_rows(), 1u);

  // Update moving row 1 out of range deletes it from the view.
  RowOp move_out;
  move_out.kind = RowOp::Kind::kUpdate;
  move_out.table = "Items";
  move_out.row = ItemRow(1, 7, 1.0);
  view->ApplyOp(move_out);
  EXPECT_EQ(view->data().num_rows(), 0u);

  // Update moving row 2 into range inserts it.
  RowOp move_in;
  move_in.kind = RowOp::Kind::kUpdate;
  move_in.table = "Items";
  move_in.row = ItemRow(2, 3, 1.0);
  view->ApplyOp(move_in);
  EXPECT_EQ(view->data().num_rows(), 1u);

  // Delete (by source key).
  RowOp del;
  del.kind = RowOp::Kind::kDelete;
  del.table = "Items";
  del.key = {Value::Int(2)};
  view->ApplyOp(del);
  EXPECT_EQ(view->data().num_rows(), 0u);
  // Deleting an absent row is a no-op.
  view->ApplyOp(del);
  EXPECT_EQ(view->data().num_rows(), 0u);
}

TEST(MaterializedViewTest, KeyChangingUpdateDeletesPreImage) {
  // Regression: an update that changes a clustered-key column is logged with
  // the pre-image key. The view must delete the old row image by that key —
  // deleting by the *new* image's key (the old behaviour) left the pre-image
  // row orphaned in the view forever.
  TableDef items = ItemsDef();
  auto view_or = MaterializedView::Create(FullView(), items);
  ASSERT_TRUE(view_or.ok());
  MaterializedView* view = view_or->get();

  RowOp ins;
  ins.kind = RowOp::Kind::kInsert;
  ins.table = "Items";
  ins.row = ItemRow(1, 2, 1.0);
  view->ApplyOp(ins);

  RowOp upd;
  upd.kind = RowOp::Kind::kUpdate;
  upd.table = "Items";
  upd.key = {Value::Int(1)};  // pre-image key
  upd.row = ItemRow(5, 2, 1.5);
  view->ApplyOp(upd);

  EXPECT_EQ(view->data().num_rows(), 1u);
  EXPECT_EQ(view->data().Get({Value::Int(1)}), nullptr);
  const Row* moved = view->data().Get({Value::Int(5)});
  ASSERT_NE(moved, nullptr);
  EXPECT_DOUBLE_EQ((*moved)[2].AsDouble(), 1.5);
}

TEST(MaterializedViewTest, KeyChangingUpdateOutOfRangeDeletesPreImage) {
  // Same, for a predicated view when the new image is disqualified: the
  // delete must target op.key (pre-image), not the new image's key.
  TableDef items = ItemsDef();
  ViewDef v = FullView();
  v.predicate = {ColumnRange{"cat", Value::Int(1), Value::Int(3)}};
  auto view_or = MaterializedView::Create(v, items);
  ASSERT_TRUE(view_or.ok());
  MaterializedView* view = view_or->get();

  RowOp ins;
  ins.kind = RowOp::Kind::kInsert;
  ins.table = "Items";
  ins.row = ItemRow(1, 2, 1.0);
  view->ApplyOp(ins);
  ASSERT_EQ(view->data().num_rows(), 1u);

  // Key 1 -> 9 while also moving out of the predicate range.
  RowOp upd;
  upd.kind = RowOp::Kind::kUpdate;
  upd.table = "Items";
  upd.key = {Value::Int(1)};
  upd.row = ItemRow(9, 7, 1.0);
  view->ApplyOp(upd);
  EXPECT_EQ(view->data().num_rows(), 0u);
}

TEST(MaterializedViewTest, PopulateFromMaster) {
  TableDef items = ItemsDef();
  Table master("Items", items.schema, {0});
  for (int64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(master.Insert(ItemRow(i, i % 4, i * 1.0)).ok());
  }
  ViewDef v = FullView();
  v.predicate = {ColumnRange{"cat", Value::Int(0), Value::Int(1)}};
  auto view = MaterializedView::Create(v, items);
  ASSERT_TRUE(view.ok());
  (*view)->PopulateFrom(master);
  // cats 0 and 1: ids 4,8 (cat 0) and 1,5,9 (cat 1).
  EXPECT_EQ((*view)->data().num_rows(), 5u);
}

// -- HeartbeatStore ----------------------------------------------------------

TEST(HeartbeatTest, BeatAndGet) {
  HeartbeatStore hb;
  // A region that never beat is *unknown*, not "synced at time 0" — the old
  // behaviour made unbeaten regions look maximally stale (or, worse, fresh
  // at simulation start) to currency guards.
  EXPECT_FALSE(hb.Get(1).has_value());
  EXPECT_EQ(hb.GetOr(1, -1), -1);
  hb.Beat(1, 500);
  hb.Beat(2, 700);
  EXPECT_EQ(hb.Get(1), std::optional<SimTimeMs>(500));
  EXPECT_EQ(hb.Get(2), std::optional<SimTimeMs>(700));
  EXPECT_EQ(hb.GetOr(2, -1), 700);
  EXPECT_EQ(hb.size(), 2u);
}

// -- DistributionAgent ------------------------------------------------------

class AgentTest : public ::testing::Test {
 protected:
  AgentTest() : sched_(&clock_), items_(ItemsDef()) {}

  /// Sets up one region (interval f, delay d) with a full view of Items.
  void Setup(SimTimeMs f, SimTimeMs d, SimTimeMs hb_interval = 1000) {
    RegionDef def;
    def.cid = 1;
    def.update_interval = f;
    def.update_delay = d;
    def.heartbeat_interval = hb_interval;
    region_ = std::make_unique<CurrencyRegion>(def);
    auto view = MaterializedView::Create(FullView(), items_);
    ASSERT_TRUE(view.ok());
    region_->AddView(std::move(*view));
    agent_ = std::make_unique<DistributionAgent>(region_.get(), &log_,
                                                 &heartbeat_, &sched_);
    agent_->Start(f);
    // Heartbeat beats on its own schedule.
    sched_.SchedulePeriodic(hb_interval, hb_interval, [this](SimTimeMs now) {
      heartbeat_.Beat(1, now);
    });
  }

  void Commit(SimTimeMs at, int64_t id, double price) {
    // Run the simulation up to the commit point so scheduled wake-ups fire
    // at their nominal times.
    sched_.RunUntil(at);
    CommittedTxn txn;
    txn.id = ++last_ts_;
    txn.commit_time = at;
    RowOp op;
    op.kind = RowOp::Kind::kInsert;
    op.table = "Items";
    op.row = ItemRow(id, 0, price);
    txn.ops.push_back(std::move(op));
    log_.Append(std::move(txn));
  }

  /// Delivery publishes fresh clones, so assertions must read the *current*
  /// published view from the region, not the originally added object.
  std::shared_ptr<const MaterializedView> View() const {
    return region_->view("items_copy");
  }

  VirtualClock clock_;
  SimulationScheduler sched_;
  TableDef items_;
  UpdateLog log_;
  HeartbeatStore heartbeat_;
  std::unique_ptr<CurrencyRegion> region_;
  std::unique_ptr<DistributionAgent> agent_;
  TxnTimestamp last_ts_ = 0;
};

TEST_F(AgentTest, DeliversAfterDelay) {
  Setup(/*f=*/10000, /*d=*/5000);
  Commit(1000, 1, 9.9);
  // Agent wakes at t=10000, delivery lands at t=15000.
  sched_.RunUntil(14999);
  EXPECT_EQ(View()->data().num_rows(), 0u);
  sched_.RunUntil(15000);
  EXPECT_EQ(View()->data().num_rows(), 1u);
  EXPECT_EQ(region_->as_of(), 1u);
  EXPECT_EQ(region_->applied_log_pos(), 1u);
}

TEST_F(AgentTest, AppliesInCommitOrder) {
  Setup(10000, 0);
  Commit(1000, 1, 1.0);
  Commit(2000, 2, 2.0);
  Commit(3000, 3, 3.0);
  sched_.RunUntil(10000);
  EXPECT_EQ(View()->data().num_rows(), 3u);
  EXPECT_EQ(region_->as_of(), 3u);
}

TEST_F(AgentTest, SnapshotExcludesLaterCommits) {
  Setup(10000, 5000);
  Commit(9000, 1, 1.0);
  // Committed after the wake-up snapshot at t=10000:
  Commit(12000, 2, 2.0);
  sched_.RunUntil(15000);  // first delivery
  EXPECT_EQ(View()->data().num_rows(), 1u);
  sched_.RunUntil(25000);  // second wake at 20000, delivery at 25000
  EXPECT_EQ(View()->data().num_rows(), 2u);
}

TEST_F(AgentTest, HeartbeatBoundsStaleness) {
  Setup(/*f=*/10000, /*d=*/5000, /*hb=*/1000);
  sched_.RunUntil(60000);
  // The local heartbeat was captured at the last wake-up (t=50000..60000):
  // staleness = now - local_heartbeat must lie within (d, d+f] + hb quantum.
  SimTimeMs staleness = region_->CurrencyAt(clock_.Now());
  EXPECT_GT(staleness, 0);
  EXPECT_LE(staleness, 5000 + 10000 + 1000);
}

TEST_F(AgentTest, SawtoothCurrencyCycle) {
  // Fig 3.2: immediately after a delivery the data is ~d out of date, then
  // currency grows linearly to ~d+f until the next delivery.
  Setup(/*f=*/10000, /*d=*/3000, /*hb=*/100);
  sched_.RunUntil(100000);
  SimTimeMs just_after = 103000;  // delivery at 100000+3000
  sched_.RunUntil(just_after);
  SimTimeMs c0 = region_->CurrencyAt(clock_.Now());
  EXPECT_NEAR(static_cast<double>(c0), 3000.0, 200.0);
  sched_.RunUntil(just_after + 9000);  // just before next delivery (113000)
  SimTimeMs c1 = region_->CurrencyAt(clock_.Now());
  EXPECT_NEAR(static_cast<double>(c1), 12000.0, 200.0);
}

TEST_F(AgentTest, DeliveryMatchesTableNamesCaseInsensitively) {
  // Ops logged with a differently-cased table name ("ITEMS" vs the view's
  // source "Items") must still reach the view: our SQL dialect treats
  // identifiers case-insensitively everywhere else.
  Setup(10000, 0);
  sched_.RunUntil(1000);
  CommittedTxn txn;
  txn.id = ++last_ts_;
  txn.commit_time = 1000;
  RowOp op;
  op.kind = RowOp::Kind::kInsert;
  op.table = "ITEMS";
  op.row = ItemRow(1, 0, 1.5);
  txn.ops.push_back(std::move(op));
  // A second op for a table no view subscribes to is skipped, not fatal.
  RowOp other;
  other.kind = RowOp::Kind::kInsert;
  other.table = "Unrelated";
  other.row = ItemRow(2, 0, 2.5);
  txn.ops.push_back(std::move(other));
  log_.Append(std::move(txn));
  sched_.RunUntil(10000);
  EXPECT_EQ(View()->data().num_rows(), 1u);
  EXPECT_NE(View()->data().Get({Value::Int(1)}), nullptr);
}

TEST(CurrencyRegionTest, SnapshotIndexesViewsBySourceTable) {
  RegionDef def;
  def.cid = 1;
  CurrencyRegion region(def);
  TableDef items = ItemsDef();
  auto view = MaterializedView::Create(FullView(), items);
  ASSERT_TRUE(view.ok());
  region.AddView(std::move(*view));
  auto snap = region.Snapshot();
  ASSERT_NE(snap->ViewIndicesOf("items"), nullptr);
  EXPECT_EQ(snap->ViewIndicesOf("items")->size(), 1u);
  // The index is keyed by lower-cased names; unknown tables yield nullptr.
  EXPECT_EQ(snap->ViewIndicesOf("Items"), nullptr);
  EXPECT_EQ(snap->ViewIndicesOf("ghost"), nullptr);
  // View-name lookup, also keyed lower-cased.
  EXPECT_NE(region.view("items_copy"), nullptr);
  EXPECT_EQ(region.view("ghost"), nullptr);
}

TEST(CurrencyRegionTest, CurrencyAtClampsAtZero) {
  RegionDef def;
  def.cid = 1;
  CurrencyRegion region(def);
  region.set_local_heartbeat(5000);
  // A reader whose (frozen) query clock trails a just-published heartbeat is
  // current, not negatively stale — mirror of semantics::CurrencyOf's clamp.
  EXPECT_EQ(region.CurrencyAt(1000), 0);
  EXPECT_EQ(region.CurrencyAt(5000), 0);
  EXPECT_EQ(region.CurrencyAt(7500), 2500);
}

TEST_F(AgentTest, RandomizedViewMatchesMasterSnapshot) {
  // Property: after any delivery, the view equals the master table as of the
  // region's as_of timestamp (mutual-consistency invariant of a region).
  Setup(5000, 2000, 500);
  Table master("Items", items_.schema, {0});
  Rng rng(33);
  // Interleave commits and deliveries over 200s of virtual time.
  for (int i = 0; i < 100; ++i) {
    SimTimeMs at = clock_.Now() + rng.Uniform(100, 3000);
    sched_.RunUntil(at);
    int64_t id = rng.Uniform(1, 30);
    Row row = ItemRow(id, rng.Uniform(0, 5),
                      static_cast<double>(rng.Uniform(1, 1000)));
    clock_.AdvanceTo(at);
    CommittedTxn txn;
    txn.id = ++last_ts_;
    txn.commit_time = clock_.Now();
    RowOp op;
    op.table = "Items";
    if (master.Get({Value::Int(id)}) == nullptr) {
      op.kind = RowOp::Kind::kInsert;
      op.row = row;
      ASSERT_TRUE(master.Insert(row).ok());
    } else if (rng.Uniform(0, 3) == 0) {
      op.kind = RowOp::Kind::kDelete;
      op.key = {Value::Int(id)};
      ASSERT_TRUE(master.Delete({Value::Int(id)}).ok());
    } else {
      op.kind = RowOp::Kind::kUpdate;
      op.row = row;
      ASSERT_TRUE(master.Update(row).ok());
    }
    txn.ops.push_back(std::move(op));
    log_.Append(std::move(txn));
  }
  // Let everything propagate (no more commits).
  sched_.RunUntil(clock_.Now() + 20000);
  ASSERT_EQ(region_->as_of(), last_ts_);
  EXPECT_EQ(View()->data().num_rows(), master.num_rows());
  master.Scan([&](const Row& row) {
    const Row* replica = View()->data().Get({row[0]});
    EXPECT_NE(replica, nullptr);
    if (replica != nullptr) {
      EXPECT_EQ(RowToString(*replica), RowToString(row));
    }
    return true;
  });
}

}  // namespace
}  // namespace rcc
