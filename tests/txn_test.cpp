#include <gtest/gtest.h>

#include "txn/oracle.h"
#include "txn/update_log.h"

namespace rcc {
namespace {

TEST(OracleTest, TimestampsIncrease) {
  TimestampOracle oracle;
  EXPECT_EQ(oracle.last_committed(), kInitialTimestamp);
  TxnTimestamp a = oracle.NextCommit(10);
  TxnTimestamp b = oracle.NextCommit(20);
  EXPECT_LT(a, b);
  EXPECT_EQ(oracle.last_committed(), b);
  EXPECT_EQ(oracle.last_commit_time(), 20);
}

CommittedTxn MakeTxn(TxnTimestamp id, SimTimeMs at, const std::string& table) {
  CommittedTxn txn;
  txn.id = id;
  txn.commit_time = at;
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.table = table;
  txn.ops.push_back(std::move(op));
  return txn;
}

TEST(UpdateLogTest, AppendAndAccess) {
  UpdateLog log;
  log.Append(MakeTxn(1, 100, "t"));
  log.Append(MakeTxn(2, 150, "t"));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.at(0).id, 1u);
  EXPECT_EQ(log.at(1).commit_time, 150);
}

TEST(UpdateLogTest, UpperBoundByCommitTime) {
  UpdateLog log;
  log.Append(MakeTxn(1, 100, "t"));
  log.Append(MakeTxn(2, 150, "t"));
  log.Append(MakeTxn(3, 150, "t"));
  log.Append(MakeTxn(4, 200, "t"));
  EXPECT_EQ(log.UpperBoundByCommitTime(99), 0u);
  EXPECT_EQ(log.UpperBoundByCommitTime(100), 1u);
  EXPECT_EQ(log.UpperBoundByCommitTime(150), 3u);
  EXPECT_EQ(log.UpperBoundByCommitTime(151), 3u);
  EXPECT_EQ(log.UpperBoundByCommitTime(10000), 4u);
}

TEST(UpdateLogTest, TimestampAtPosition) {
  UpdateLog log;
  log.Append(MakeTxn(5, 100, "t"));
  log.Append(MakeTxn(9, 150, "t"));
  EXPECT_EQ(log.TimestampAtPosition(0), kInitialTimestamp);
  EXPECT_EQ(log.TimestampAtPosition(1), 5u);
  EXPECT_EQ(log.TimestampAtPosition(2), 9u);
}

TEST(UpdateLogDeathTest, RejectsNonIncreasingIds) {
  UpdateLog log;
  log.Append(MakeTxn(2, 100, "t"));
  EXPECT_DEATH(log.Append(MakeTxn(2, 150, "t")), "increasing");
}

}  // namespace
}  // namespace rcc
