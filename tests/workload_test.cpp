#include <gtest/gtest.h>

#include "test_util.h"
#include "workload/driver.h"

namespace rcc {
namespace {

TEST(TpcdGenTest, DeterministicFromSeed) {
  RccSystem a;
  RccSystem b;
  TpcdConfig config;
  config.scale = 0.003;
  ASSERT_TRUE(LoadTpcd(&a, config).ok());
  ASSERT_TRUE(LoadTpcd(&b, config).ok());
  EXPECT_EQ(a.backend()->table("Customer")->num_rows(),
            b.backend()->table("Customer")->num_rows());
  EXPECT_EQ(a.backend()->table("Orders")->num_rows(),
            b.backend()->table("Orders")->num_rows());
  const Row* ra = a.backend()->table("Customer")->Get({Value::Int(7)});
  const Row* rb = b.backend()->table("Customer")->Get({Value::Int(7)});
  ASSERT_NE(ra, nullptr);
  EXPECT_EQ(RowToString(*ra), RowToString(*rb));
}

TEST(TpcdGenTest, ScaleAndRatios) {
  RccSystem sys;
  TpcdConfig config;
  config.scale = 0.01;
  ASSERT_TRUE(LoadTpcd(&sys, config).ok());
  EXPECT_EQ(TpcdCustomerCount(config), 1500);
  EXPECT_EQ(sys.backend()->table("Customer")->num_rows(), 1500u);
  // "Customers have 10 orders on average": within 20%.
  double ratio =
      static_cast<double>(sys.backend()->table("Orders")->num_rows()) / 1500.0;
  EXPECT_NEAR(ratio, 10.0, 2.0);
}

TEST(TpcdGenTest, PhysicalDesignMatchesPaper) {
  RccSystem sys;
  TpcdConfig config;
  config.scale = 0.003;
  ASSERT_TRUE(LoadTpcd(&sys, config).ok());
  const TableDef* customer = sys.backend()->catalog().FindTable("Customer");
  ASSERT_NE(customer, nullptr);
  EXPECT_EQ(customer->clustered_key, (std::vector<std::string>{"c_custkey"}));
  ASSERT_EQ(customer->secondary_indexes.size(), 1u);
  EXPECT_EQ(customer->secondary_indexes[0].columns,
            (std::vector<std::string>{"c_acctbal"}));
  const TableDef* orders = sys.backend()->catalog().FindTable("Orders");
  EXPECT_EQ(orders->clustered_key,
            (std::vector<std::string>{"o_custkey", "o_orderkey"}));
  // The cached views must NOT have the acctbal index (Q6's whole point).
  ASSERT_TRUE(SetupPaperCache(&sys).ok());
  EXPECT_TRUE(
      sys.cache()->catalog().FindView("cust_prj")->secondary_indexes.empty());
}

TEST(TpcdGenTest, ValueDomains) {
  RccSystem sys;
  TpcdConfig config;
  config.scale = 0.003;
  ASSERT_TRUE(LoadTpcd(&sys, config).ok());
  sys.backend()->table("Customer")->Scan([&](const Row& row) {
    EXPECT_GE(row[3].AsDouble(), -1000.0);
    EXPECT_LE(row[3].AsDouble(), 10000.0);
    EXPECT_GE(row[2].AsInt(), 0);
    EXPECT_LE(row[2].AsInt(), 24);
    return true;
  });
}

TEST(BookstoreGenTest, TablesPopulated) {
  RccSystem sys;
  BookstoreConfig config;
  config.books = 100;
  ASSERT_TRUE(LoadBookstore(&sys, config).ok());
  EXPECT_EQ(sys.backend()->table("Books")->num_rows(), 100u);
  EXPECT_GT(sys.backend()->table("Reviews")->num_rows(), 100u);
  EXPECT_GT(sys.backend()->table("Sales")->num_rows(), 0u);
}

TEST(UpdateTrafficTest, ProducesCommits) {
  testing_util::TpcdFixture fx(0.003);
  size_t before = fx.sys.backend()->log().size();
  StartUpdateTraffic(&fx.sys, /*period_ms=*/500, /*seed=*/1);
  fx.sys.AdvanceBy(10000);
  EXPECT_GE(fx.sys.backend()->log().size(), before + 15u);
}

TEST(DriverTest, UniformWorkloadCountsDecisions) {
  testing_util::TpcdFixture fx(0.003);
  fx.sys.AdvanceTo(30000);
  auto run = RunUniformWorkload(
      &fx.sys,
      "SELECT c_custkey FROM Customer C WHERE c_acctbal > 0 "
      "CURRENCY BOUND 10 MIN ON (C)",
      30, 60000, 9);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->executions, 30);
  EXPECT_EQ(run->local + run->remote, 30);
  EXPECT_EQ(run->remote, 0);  // 10-minute bound always passes
  EXPECT_DOUBLE_EQ(run->LocalFraction(), 1.0);
}

TEST(DriverTest, ParseErrorSurfaces) {
  testing_util::TpcdFixture fx(0.003);
  EXPECT_FALSE(RunUniformWorkload(&fx.sys, "SELEC x", 1, 1000, 1).ok());
}

}  // namespace
}  // namespace rcc
