#include <gtest/gtest.h>

#include "plan/plan_cache.h"
#include "sql/lexer.h"
#include "sql/parser.h"

namespace rcc {
namespace {

// -- lexer -----------------------------------------------------------------------

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE a >= 1.5 AND b = 'x''y'");
  ASSERT_TRUE(tokens.ok());
  const auto& t = *tokens;
  EXPECT_EQ(t[0].type, TokenType::kIdent);
  EXPECT_EQ(t[0].text, "SELECT");
  EXPECT_EQ(t[2].type, TokenType::kSymbol);
  EXPECT_EQ(t[2].text, ",");
  // find the double and the escaped string
  bool saw_double = false;
  bool saw_string = false;
  for (const Token& tok : t) {
    if (tok.type == TokenType::kDouble) {
      EXPECT_DOUBLE_EQ(tok.double_value, 1.5);
      saw_double = true;
    }
    if (tok.type == TokenType::kString) {
      EXPECT_EQ(tok.text, "x'y");
      saw_string = true;
    }
  }
  EXPECT_TRUE(saw_double);
  EXPECT_TRUE(saw_string);
  EXPECT_EQ(t.back().type, TokenType::kEnd);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT -- a comment\n1");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[1].type, TokenType::kInt);
  EXPECT_EQ((*tokens)[1].int_value, 1);
}

TEST(LexerTest, TwoCharOperators) {
  auto tokens = Tokenize("<= >= <> !=");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "<=");
  EXPECT_EQ((*tokens)[1].text, ">=");
  EXPECT_EQ((*tokens)[2].text, "<>");
  EXPECT_EQ((*tokens)[3].text, "!=");
}

TEST(LexerTest, HighBitBytesInStringLiteralsSurviveVerbatim) {
  // UTF-8 "Café" followed by a lone Latin-1 É (0xC9). Keyword folding is
  // ASCII-only, so bytes >= 0x80 inside literals must pass through the lexer
  // untouched regardless of the process locale.
  const std::string literal = "Caf\xC3\xA9 \xC9 \xFF";
  auto tokens = Tokenize("SELECT title FROM Books WHERE title = '" + literal +
                         "' AND price > 1");
  ASSERT_TRUE(tokens.ok());
  bool saw = false;
  for (const Token& tok : *tokens) {
    if (tok.type == TokenType::kString) {
      EXPECT_EQ(tok.text, literal);
      saw = true;
    }
  }
  EXPECT_TRUE(saw);

  // The surrounding keywords still fold case-insensitively and the whole
  // statement parses: high-bit bytes never desugar into keyword matches.
  auto stmt = ParseSelect("select TITLE from Books where title = '" + literal +
                          "'");
  ASSERT_TRUE(stmt.ok());
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("'unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("a # b").status().IsParseError());
}

TEST(LexerTest, ScientificNotation) {
  auto tokens = Tokenize("1.5e3 2E-2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_DOUBLE_EQ((*tokens)[0].double_value, 1500.0);
  EXPECT_DOUBLE_EQ((*tokens)[1].double_value, 0.02);
}

// -- parser: structure ------------------------------------------------------------

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseSelect("SELECT a, b AS bee FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE((*stmt)->select_star);
  ASSERT_EQ((*stmt)->items.size(), 2u);
  EXPECT_EQ((*stmt)->items[1].alias, "bee");
  ASSERT_EQ((*stmt)->from.size(), 1u);
  EXPECT_EQ((*stmt)->from[0].table, "t");
  EXPECT_EQ((*stmt)->from[0].alias, "t");
}

TEST(ParserTest, SelectStarAndAliases) {
  auto stmt = ParseSelect("SELECT * FROM Books B, Reviews AS R");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->select_star);
  ASSERT_EQ((*stmt)->from.size(), 2u);
  EXPECT_EQ((*stmt)->from[0].alias, "B");
  EXPECT_EQ((*stmt)->from[1].alias, "R");
}

TEST(ParserTest, WherePrecedence) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(stmt.ok());
  const Expr* w = (*stmt)->where.get();
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->op, BinaryOp::kOr);  // AND binds tighter
  EXPECT_EQ(w->right->op, BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = ParseSelect("SELECT a + b * 2 FROM t");
  ASSERT_TRUE(stmt.ok());
  const Expr* e = (*stmt)->items[0].expr.get();
  EXPECT_EQ(e->op, BinaryOp::kAdd);
  EXPECT_EQ(e->right->op, BinaryOp::kMul);
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a BETWEEN 1 AND 5");
  ASSERT_TRUE(stmt.ok());
  const Expr* w = (*stmt)->where.get();
  EXPECT_EQ(w->op, BinaryOp::kAnd);
  EXPECT_EQ(w->left->op, BinaryOp::kGe);
  EXPECT_EQ(w->right->op, BinaryOp::kLe);
}

TEST(ParserTest, JoinOnDesugarsToWhere) {
  auto stmt = ParseSelect(
      "SELECT * FROM a JOIN b ON a.x = b.x WHERE a.y > 1");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->from.size(), 2u);
  // WHERE = (a.y > 1) AND (a.x = b.x)
  const Expr* w = (*stmt)->where.get();
  ASSERT_NE(w, nullptr);
  EXPECT_EQ(w->op, BinaryOp::kAnd);
}

TEST(ParserTest, DerivedTable) {
  auto stmt = ParseSelect(
      "SELECT T.x FROM (SELECT a AS x FROM t) AS T WHERE T.x > 0");
  ASSERT_TRUE(stmt.ok());
  ASSERT_TRUE((*stmt)->from[0].is_subquery());
  EXPECT_EQ((*stmt)->from[0].alias, "T");
}

TEST(ParserTest, ExistsAndInSubqueries) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.x = t.a) "
      "AND a IN (SELECT y FROM u)");
  ASSERT_TRUE(stmt.ok());
  const Expr* w = (*stmt)->where.get();
  EXPECT_EQ(w->op, BinaryOp::kAnd);
  EXPECT_EQ(w->left->kind, ExprKind::kExists);
  EXPECT_EQ(w->right->kind, ExprKind::kInSubquery);
}

TEST(ParserTest, GroupOrderBy) {
  auto stmt = ParseSelect(
      "SELECT c, count(*) AS n FROM t GROUP BY c ORDER BY c DESC, n");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->group_by.size(), 1u);
  ASSERT_EQ((*stmt)->order_by.size(), 2u);
  EXPECT_TRUE((*stmt)->order_by[0].descending);
  EXPECT_FALSE((*stmt)->order_by[1].descending);
}

TEST(ParserTest, AggregatesAndCountStar) {
  auto stmt = ParseSelect("SELECT count(*), sum(a), avg(b) FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->items[0].expr->star);
  EXPECT_EQ((*stmt)->items[1].expr->func, "sum");
}

TEST(ParserTest, Having) {
  auto stmt = ParseSelect(
      "SELECT c, count(*) FROM t GROUP BY c HAVING count(*) > 2");
  ASSERT_TRUE(stmt.ok());
  ASSERT_NE((*stmt)->having, nullptr);
  EXPECT_EQ((*stmt)->having->op, BinaryOp::kGt);
}

TEST(ParserTest, SelectDistinct) {
  auto stmt = ParseSelect("SELECT DISTINCT a, b FROM t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_TRUE((*stmt)->distinct);
  EXPECT_EQ((*stmt)->items.size(), 2u);
  auto plain = ParseSelect("SELECT a FROM t");
  EXPECT_FALSE((*plain)->distinct);
}

TEST(ParserTest, UnaryMinusAndNull) {
  auto stmt = ParseSelect("SELECT a FROM t WHERE a > -5 AND b = NULL");
  ASSERT_TRUE(stmt.ok());
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT FROM t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra junk!").ok());
  EXPECT_FALSE(ParseSelect("").ok());
}

// -- parser: currency clause ------------------------------------------------------

TEST(CurrencyClauseTest, PaperExampleE1) {
  // Fig 2.1 E1: bound 10 min on both tables, one consistency class.
  auto stmt = ParseSelect(
      "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn "
      "CURRENCY BOUND 10 MIN ON (B, R)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->currency.size(), 1u);
  const CurrencySpec& spec = (*stmt)->currency[0];
  EXPECT_EQ(spec.bound_ms, 10 * 60000);
  EXPECT_EQ(spec.targets, (std::vector<std::string>{"B", "R"}));
  EXPECT_TRUE(spec.by_columns.empty());
}

TEST(CurrencyClauseTest, PaperExampleE2TwoClasses) {
  // E2: 10 min on B, 30 min on R, separate classes.
  auto stmt = ParseSelect(
      "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn "
      "CURRENCY BOUND 10 MIN ON (B), 30 MIN ON (R)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->currency.size(), 2u);
  EXPECT_EQ((*stmt)->currency[1].bound_ms, 30 * 60000);
  EXPECT_EQ((*stmt)->currency[1].targets,
            (std::vector<std::string>{"R"}));
}

TEST(CurrencyClauseTest, PaperExampleE4GroupingColumns) {
  // E4: per-isbn consistency groups.
  auto stmt = ParseSelect(
      "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn "
      "CURRENCY BOUND 10 MIN ON (B, R) BY B.isbn");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->currency.size(), 1u);
  EXPECT_EQ((*stmt)->currency[0].by_columns,
            (std::vector<std::string>{"B.isbn"}));
}

TEST(CurrencyClauseTest, SingleTargetWithoutParens) {
  auto stmt =
      ParseSelect("SELECT a FROM t CURRENCY BOUND 5 SECONDS ON t");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->currency[0].bound_ms, 5000);
}

TEST(CurrencyClauseTest, BoundKeywordOptional) {
  auto stmt = ParseSelect("SELECT a FROM t CURRENCY 90 SECONDS ON (t)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ((*stmt)->currency[0].bound_ms, 90000);
}

TEST(CurrencyClauseTest, SubqueryCurrencyClause) {
  // Paper Q3: inner block's clause references the outer table B.
  auto stmt = ParseSelect(
      "SELECT * FROM Books B, Reviews R "
      "WHERE B.isbn = R.isbn AND EXISTS ("
      "  SELECT 1 FROM Sales S WHERE S.isbn = B.isbn "
      "  CURRENCY BOUND 10 MIN ON (S, B)) "
      "CURRENCY BOUND 10 MIN ON (B, R)");
  ASSERT_TRUE(stmt.ok());
  ASSERT_EQ((*stmt)->currency.size(), 1u);
  // The inner clause stays attached to the subquery.
  const Expr* w = (*stmt)->where.get();
  const Expr* exists = w->right.get();
  ASSERT_EQ(exists->kind, ExprKind::kExists);
  ASSERT_EQ(exists->subquery->currency.size(), 1u);
  EXPECT_EQ(exists->subquery->currency[0].targets,
            (std::vector<std::string>{"S", "B"}));
}

TEST(CurrencyClauseTest, Errors) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t CURRENCY BOUND ON (t)").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t CURRENCY 10 fortnights ON t").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t CURRENCY 10 MIN").ok());
}

// Unit conversion sweep.
struct UnitCase {
  const char* unit;
  int64_t expect_ms;
};

class TimeUnitTest : public ::testing::TestWithParam<UnitCase> {};

TEST_P(TimeUnitTest, ConvertsToMs) {
  const UnitCase& c = GetParam();
  auto stmt = ParseSelect(std::string("SELECT a FROM t CURRENCY BOUND 2 ") +
                          c.unit + " ON (t)");
  ASSERT_TRUE(stmt.ok()) << c.unit;
  EXPECT_EQ((*stmt)->currency[0].bound_ms, c.expect_ms);
}

INSTANTIATE_TEST_SUITE_P(
    Units, TimeUnitTest,
    ::testing::Values(UnitCase{"MS", 2}, UnitCase{"SEC", 2000},
                      UnitCase{"SECONDS", 2000}, UnitCase{"second", 2000},
                      UnitCase{"MIN", 120000}, UnitCase{"minutes", 120000},
                      UnitCase{"HOUR", 7200000}, UnitCase{"hr", 7200000}));

// -- statements ----------------------------------------------------------------------

TEST(StatementTest, TimeOrderedMarkers) {
  auto b = ParseStatement("BEGIN TIMEORDERED");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(b->kind, StatementKind::kBeginTimeOrdered);
  auto e = ParseStatement("end timeordered");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e->kind, StatementKind::kEndTimeOrdered);
  EXPECT_FALSE(ParseStatement("BEGIN").ok());
}

// -- round trips --------------------------------------------------------------------

class RoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RoundTripTest, ToStringReparses) {
  auto stmt = ParseSelect(GetParam());
  ASSERT_TRUE(stmt.ok()) << GetParam();
  std::string rendered = (*stmt)->ToString();
  auto again = ParseSelect(rendered);
  ASSERT_TRUE(again.ok()) << rendered;
  EXPECT_EQ((*again)->ToString(), rendered);
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RoundTripTest,
    ::testing::Values(
        "SELECT a FROM t",
        "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn",
        "SELECT a, count(*) AS n FROM t WHERE a > 3 GROUP BY a ORDER BY a",
        "SELECT a FROM t WHERE a BETWEEN 1 AND 2 CURRENCY BOUND 10 MIN ON "
        "(t)",
        "SELECT T.x FROM (SELECT a AS x FROM t) T",
        "SELECT DISTINCT a FROM t WHERE a > 1",
        "SELECT c, count(*) FROM t GROUP BY c HAVING count(*) > 2",
        "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.x = t.a)",
        "SELECT a FROM t CURRENCY BOUND 10 MIN ON (t) BY t.a"));

TEST(CloneTest, DeepCopyIsIndependent) {
  auto stmt = ParseSelect(
      "SELECT a FROM t WHERE EXISTS (SELECT 1 FROM s WHERE s.x = t.a) "
      "CURRENCY BOUND 1 MIN ON (t)");
  ASSERT_TRUE(stmt.ok());
  auto clone = CloneSelectStmt(**stmt);
  EXPECT_EQ(clone->ToString(), (*stmt)->ToString());
  // Mutating the clone leaves the original untouched.
  clone->currency[0].bound_ms = 999;
  EXPECT_NE(clone->ToString(), (*stmt)->ToString());
}

// -- plan-cache SQL normalization ------------------------------------------------
// The cache key must never alias queries whose literals differ in *type*:
// a plan compiled for an int comparison is wrong for a string comparison
// even when the spellings collide after naive literal stripping.

TEST(NormalizeSqlTest, LiteralTypesProduceDistinctTemplates) {
  NormalizedSql i = NormalizeSql("SELECT 1");
  NormalizedSql f = NormalizeSql("SELECT 1.0");
  NormalizedSql s = NormalizeSql("SELECT '1'");
  ASSERT_TRUE(i.ok);
  ASSERT_TRUE(f.ok);
  ASSERT_TRUE(s.ok);
  // Typed slots: ?<n>i / ?<n>f / ?<n>s.
  EXPECT_NE(i.text, f.text);
  EXPECT_NE(i.text, s.text);
  EXPECT_NE(f.text, s.text);
  ASSERT_EQ(i.slots.size(), 1u);
  ASSERT_EQ(f.slots.size(), 1u);
  ASSERT_EQ(s.slots.size(), 1u);
  EXPECT_EQ(i.slots[0].value, Value::Int(1));
  EXPECT_EQ(f.slots[0].value, Value::Double(1.0));
  EXPECT_EQ(s.slots[0].value, Value::Str("1"));
}

TEST(NormalizeSqlTest, NullIsNeverParameterized) {
  // NULL is a keyword, not a literal: it must stay textual so
  // `WHERE a IS NULL` and `WHERE a = 'NULL'` can never share a template.
  NormalizedSql kw = NormalizeSql("SELECT a FROM t WHERE a IS NULL");
  NormalizedSql str = NormalizeSql("SELECT a FROM t WHERE a IS 'NULL'");
  ASSERT_TRUE(kw.ok);
  ASSERT_TRUE(str.ok);
  EXPECT_NE(kw.text, str.text);
  EXPECT_EQ(kw.slots.size(), 0u);
  EXPECT_NE(kw.text.find("null"), std::string::npos);
  EXPECT_EQ(str.slots.size(), 1u);
}

TEST(NormalizeSqlTest, SameTemplateDiffersOnlyInSlotValues) {
  NormalizedSql a = NormalizeSql("SELECT x FROM t WHERE x = 5 AND y = 'a'");
  NormalizedSql b = NormalizeSql("select x from t where x=99 and y='zz'");
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  // Identifiers lowercased, whitespace canonicalized, literals slotted:
  // the two spellings share one template...
  EXPECT_EQ(a.text, b.text);
  // ...and differ only in slot values (same offsets-ordered slot list).
  ASSERT_EQ(a.slots.size(), 2u);
  ASSERT_EQ(b.slots.size(), 2u);
  EXPECT_EQ(a.slots[0].value, Value::Int(5));
  EXPECT_EQ(b.slots[0].value, Value::Int(99));
  EXPECT_EQ(a.slots[1].value, Value::Str("a"));
  EXPECT_EQ(b.slots[1].value, Value::Str("zz"));
  // Slot offsets point at the literal tokens in the *original* text.
  EXPECT_EQ(a.slots[0].offset, std::string("SELECT x FROM t WHERE x = ").size());
}

TEST(NormalizeSqlTest, CurrencyClauseLiteralsStayVerbatim) {
  // Bound literals select the C&C constraint and hence the plan: different
  // bounds must be different cache keys.
  NormalizedSql b10 = NormalizeSql(
      "SELECT isbn FROM Books B WHERE B.isbn = 1 CURRENCY BOUND 10 MIN ON (B)");
  NormalizedSql b5 = NormalizeSql(
      "SELECT isbn FROM Books B WHERE B.isbn = 1 CURRENCY BOUND 5 MIN ON (B)");
  ASSERT_TRUE(b10.ok);
  ASSERT_TRUE(b5.ok);
  EXPECT_NE(b10.text, b5.text);
  // The WHERE literal before the clause is still slotted; the bound is not.
  ASSERT_EQ(b10.slots.size(), 1u);
  EXPECT_EQ(b10.slots[0].value, Value::Int(1));
  EXPECT_NE(b10.text.find("10"), std::string::npos);
}

}  // namespace
}  // namespace rcc
