// Simulation-harness unit and integration tests: the history recorder and
// its serialization, the conformance oracle's rules against hand-crafted
// histories (proving each rule can fire), determinism of the seeded runner,
// and a reduced oracle sweep across fault mixes.
//
// Every "the oracle is green" assertion is gated on the mutation defines
// (RCC_SIM_MUTATE's skewed guard comparison, RCC_MVCC_MUTATE's stale
// snapshot heartbeat): in a mutated build the same runs must instead
// produce violations — that inversion is the evidence the oracle checks
// the engine rather than echoing it.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/history.h"
#include "sim/oracle.h"
#include "sim/runner.h"
#include "test_util.h"

namespace rcc {
namespace sim {
namespace {

// -- recorder ---------------------------------------------------------------------

TEST(HistoryRecorderTest, AssignsQueryIdsAndSequenceNumbers) {
  HistoryRecorder recorder(42);
  EXPECT_EQ(recorder.BeginQuery(100), 1u);
  EXPECT_EQ(recorder.BeginQuery(200), 2u);

  CommittedTxn txn;
  txn.id = 1;
  txn.commit_time = 150;
  RowOp op;
  op.table = "Books";
  txn.ops.push_back(op);
  txn.ops.push_back(op);  // same table twice: must dedup
  recorder.OnCommit(txn, 150);

  InstallObservation inst;
  inst.kind = InstallObservation::Kind::kInitial;
  inst.region = 1;
  inst.at = 0;
  inst.as_of = 0;
  inst.heartbeat = 0;
  recorder.OnInstall(inst);

  recorder.OnHealth(1, RegionHealth::kHealthy, RegionHealth::kSuspect, 300);
  recorder.OnSessionMode(7, true, 300);

  History h = recorder.Snapshot();
  EXPECT_EQ(h.seed, 42u);
  ASSERT_EQ(h.events.size(), 4u);
  for (size_t i = 0; i < h.events.size(); ++i) {
    EXPECT_EQ(h.events[i].seq, i + 1);
  }
  EXPECT_EQ(h.events[0].kind, HistoryEvent::Kind::kCommit);
  EXPECT_EQ(h.events[0].tables, std::vector<std::string>{"Books"});
  EXPECT_EQ(h.events[3].kind, HistoryEvent::Kind::kSession);
  EXPECT_TRUE(h.events[3].timeordered);
}

// -- serialization ----------------------------------------------------------------

History SampleHistory() {
  HistoryRecorder recorder(777);

  InstallObservation inst;
  inst.kind = InstallObservation::Kind::kInitial;
  inst.region = 1;
  inst.at = 0;
  inst.as_of = 0;
  inst.heartbeat = 0;
  recorder.OnInstall(inst);

  CommittedTxn txn;
  txn.id = 1;
  txn.commit_time = 4000;
  RowOp op;
  op.table = "Books";
  txn.ops.push_back(op);
  recorder.OnCommit(txn, 4000);

  inst.kind = InstallObservation::Kind::kDelivery;
  inst.at = 9000;
  inst.as_of = 1;
  inst.heartbeat = 8000;
  inst.ops = 3;
  recorder.OnInstall(inst);

  uint64_t q = recorder.BeginQuery(10000);
  GuardObservation guard;
  guard.query_id = q;
  guard.region = 1;
  guard.at = 10000;
  guard.heartbeat_known = true;
  guard.heartbeat = 8000;
  guard.bound_ms = 5000;
  guard.verdict_local = true;
  recorder.OnGuardProbe(guard);

  ServeObservation serve;
  serve.query_id = q;
  serve.at = 10000;
  serve.local = true;
  serve.region = 1;
  serve.heartbeat_known = true;
  serve.heartbeat = 8000;
  serve.operands = {0};
  recorder.OnServe(serve);

  AnswerObservation ans;
  ans.query_id = q;
  ans.session = 3;
  ans.at = 10000;
  ans.ok = true;
  ans.rows = 12;
  ans.operand_tables = {"Books"};
  ans.tuples = {{5000, {0}}};
  recorder.OnAnswer(ans);

  recorder.OnHealth(1, RegionHealth::kHealthy, RegionHealth::kSuspect, 11000);
  return recorder.Snapshot();
}

TEST(HistorySerializationTest, RoundTripsThroughParse) {
  History h = SampleHistory();
  std::string text = h.Serialize();
  EXPECT_NE(text.find("rcc.history.v1 seed=777"), std::string::npos);

  auto parsed = History::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, h.seed);
  ASSERT_EQ(parsed->events.size(), h.events.size());
  EXPECT_EQ(parsed->Serialize(), text);
  EXPECT_EQ(parsed->Digest(), h.Digest());
}

TEST(HistorySerializationTest, ParseRejectsGarbage) {
  EXPECT_FALSE(History::Parse("not a history").ok());
  EXPECT_FALSE(History::Parse("rcc.history.v2 seed=1\n").ok());
  EXPECT_FALSE(
      History::Parse("rcc.history.v1 seed=1\nwat seq=1 at=0\n").ok());
}

TEST(HistorySerializationTest, DigestIsContentSensitive) {
  History h = SampleHistory();
  History mutated = h;
  mutated.events[3].heartbeat += 1;  // the guard's observed heartbeat
  EXPECT_NE(h.Digest(), mutated.Digest());
}

// -- oracle rules against hand-crafted histories ----------------------------------
// Each history below is minimal and engine-free: it proves the rule *can*
// fire, which is what makes green sweeps over real runs meaningful.

HistoryEvent Install(uint64_t seq, SimTimeMs at, RegionId region,
                     TxnTimestamp as_of, SimTimeMs hb) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kInstall;
  ev.seq = seq;
  ev.at = at;
  ev.region = region;
  ev.install_kind = InstallObservation::Kind::kDelivery;
  ev.as_of = as_of;
  ev.heartbeat_known = true;
  ev.heartbeat = hb;
  return ev;
}

HistoryEvent Commit(uint64_t seq, SimTimeMs at, TxnTimestamp id,
                    std::vector<std::string> tables) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kCommit;
  ev.seq = seq;
  ev.at = at;
  ev.txn = id;
  ev.tables = std::move(tables);
  return ev;
}

HistoryEvent LocalServe(uint64_t seq, SimTimeMs at, uint64_t query,
                        RegionId region, SimTimeMs hb,
                        std::vector<InputOperandId> operands) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kServe;
  ev.seq = seq;
  ev.at = at;
  ev.query = query;
  ev.region = region;
  ev.local = true;
  ev.heartbeat_known = true;
  ev.heartbeat = hb;
  ev.operands = std::move(operands);
  return ev;
}

HistoryEvent RemoteServe(uint64_t seq, SimTimeMs at, uint64_t query,
                         std::vector<InputOperandId> operands) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kServe;
  ev.seq = seq;
  ev.at = at;
  ev.query = query;
  ev.region = kBackendRegion;
  ev.local = false;
  ev.operands = std::move(operands);
  return ev;
}

HistoryEvent Answer(uint64_t seq, SimTimeMs at, uint64_t query,
                    std::vector<std::string> tables,
                    std::vector<std::pair<SimTimeMs,
                                          std::vector<InputOperandId>>>
                        tuples,
                    SimTimeMs floor_ms = -1) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kAnswer;
  ev.seq = seq;
  ev.at = at;
  ev.query = query;
  ev.ok = true;
  ev.tables = std::move(tables);
  ev.tuples = std::move(tuples);
  ev.floor_ms = floor_ms;
  return ev;
}

const Violation* FindRule(const OracleReport& report,
                          const std::string& rule) {
  for (const Violation& v : report.violations) {
    if (v.rule == rule) return &v;
  }
  return nullptr;
}

TEST(OracleRuleTest, CatchesWrongGuardVerdict) {
  History h;
  h.events.push_back(Install(1, 1000, 1, 0, 1000));
  HistoryEvent guard;
  guard.kind = HistoryEvent::Kind::kGuard;
  guard.seq = 2;
  guard.at = 20000;
  guard.query = 1;
  guard.region = 1;
  guard.heartbeat_known = true;
  guard.heartbeat = 1000;  // 19s stale against a 2s bound...
  guard.bound_ms = 2000;
  guard.verdict_local = true;  // ...yet the guard claims "fresh enough"
  h.events.push_back(guard);

  OracleReport report = CheckHistory(h);
  ASSERT_NE(FindRule(report, "guard-verdict"), nullptr) << report.Summary();
  EXPECT_EQ(report.guards_checked, 1);
}

TEST(OracleRuleTest, CatchesHeartbeatDivergence) {
  History h;
  h.events.push_back(Install(1, 5000, 1, 0, 5000));
  HistoryEvent guard;
  guard.kind = HistoryEvent::Kind::kGuard;
  guard.seq = 2;
  guard.at = 9000;
  guard.query = 1;
  guard.region = 1;
  guard.heartbeat_known = true;
  guard.heartbeat = 8000;  // install stream only ever published 5000
  guard.bound_ms = 2000;
  guard.verdict_local = true;  // consistent with the claimed 8000
  h.events.push_back(guard);

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "heartbeat-divergence"), nullptr)
      << report.Summary();
  EXPECT_EQ(FindRule(report, "guard-verdict"), nullptr) << report.Summary();
}

TEST(OracleRuleTest, WithdrawsHeartbeatWhileQuarantined) {
  History h;
  h.events.push_back(Install(1, 5000, 1, 0, 5000));
  HistoryEvent health;
  health.kind = HistoryEvent::Kind::kHealth;
  health.seq = 2;
  health.at = 6000;
  health.region = 1;
  health.health_from = RegionHealth::kHealthy;
  health.health_to = RegionHealth::kQuarantined;
  h.events.push_back(health);
  // A guard that still sees a heartbeat after quarantine is lying.
  HistoryEvent guard;
  guard.kind = HistoryEvent::Kind::kGuard;
  guard.seq = 3;
  guard.at = 6500;
  guard.query = 1;
  guard.region = 1;
  guard.heartbeat_known = true;
  guard.heartbeat = 5000;
  guard.bound_ms = 10000;
  guard.verdict_local = true;
  h.events.push_back(guard);

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "heartbeat-divergence"), nullptr)
      << report.Summary();
}

TEST(OracleRuleTest, CatchesCurrencyBoundOverrun) {
  History h;
  h.events.push_back(Install(1, 500, 1, 0, 500));
  h.events.push_back(Commit(2, 10000, 1, {"Books"}));
  // Region never catches up, yet a local serve answers a 1s-bound query.
  h.events.push_back(LocalServe(3, 20000, 1, 1, 500, {0}));
  h.events.push_back(Answer(4, 20000, 1, {"Books"}, {{1000, {0}}}));

  OracleReport report = CheckHistory(h);
  const Violation* v = FindRule(report, "currency-bound");
  ASSERT_NE(v, nullptr) << report.Summary();
  EXPECT_EQ(v->query_id, 1u);
}

TEST(OracleRuleTest, AuthorizedDegradedServeIsNotAViolation) {
  History h;
  h.events.push_back(Install(1, 500, 1, 0, 500));
  h.events.push_back(Commit(2, 10000, 1, {"Books"}));
  HistoryEvent serve = LocalServe(3, 20000, 1, 1, 500, {0});
  serve.degraded = true;
  h.events.push_back(serve);
  HistoryEvent ans = Answer(4, 20000, 1, {"Books"}, {{1000, {0}}});
  ans.degrade_mode = 2;  // DegradeMode::kAlways
  h.events.push_back(ans);

  OracleReport report = CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(OracleRuleTest, CatchesInconsistentClass) {
  History h;
  h.events.push_back(Commit(1, 1000, 1, {"Books"}));
  h.events.push_back(Install(2, 2000, 1, 1, 1500));
  // Txn 2 touches Books again; the region stays at snapshot 1.
  h.events.push_back(Commit(3, 5000, 2, {"Books"}));
  // One class spanning a local Books@1 and a remote Sales@2 copy: txn 2 in
  // (1, 2] touched the older copy's table, so no single snapshot explains
  // the pair.
  h.events.push_back(LocalServe(4, 6000, 1, 1, 1500, {0}));
  h.events.push_back(RemoteServe(5, 6000, 1, {1}));
  h.events.push_back(
      Answer(6, 6000, 1, {"Books", "Sales"}, {{3600000, {0, 1}}}));

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "consistency-class"), nullptr)
      << report.Summary();
}

TEST(OracleRuleTest, MidQueryInstallMakesClassConsistent) {
  // Same shape, but the region installs snapshot 2 while the query is in
  // flight: the local serve may be attributed to the newer snapshot, so the
  // class is explainable and the oracle must stay quiet.
  History h;
  h.events.push_back(Commit(1, 1000, 1, {"Books"}));
  h.events.push_back(Install(2, 2000, 1, 1, 1500));
  h.events.push_back(Commit(3, 5000, 2, {"Books"}));
  h.events.push_back(LocalServe(4, 6000, 1, 1, 1500, {0}));
  h.events.push_back(Install(5, 6000, 1, 2, 5800));
  h.events.push_back(RemoteServe(6, 6000, 1, {1}));
  h.events.push_back(
      Answer(7, 6000, 1, {"Books", "Sales"}, {{3600000, {0, 1}}}));

  OracleReport report = CheckHistory(h);
  EXPECT_EQ(FindRule(report, "consistency-class"), nullptr)
      << report.Summary();
}

TEST(OracleRuleTest, CatchesLocalServeBelowTimelineFloor) {
  History h;
  h.events.push_back(Install(1, 3000, 1, 0, 3000));
  h.events.push_back(LocalServe(2, 9000, 1, 1, 3000, {0}));
  h.events.push_back(
      Answer(3, 9000, 1, {"Books"}, {{3600000, {0}}}, /*floor_ms=*/5000));

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "timeline-floor"), nullptr) << report.Summary();
}

TEST(OracleRuleTest, CatchesTimelineFloorMistracking) {
  History h;
  HistoryEvent mode;
  mode.kind = HistoryEvent::Kind::kSession;
  mode.seq = 1;
  mode.at = 1000;
  mode.session = 7;
  mode.timeordered = true;
  h.events.push_back(mode);
  // First query of the session must run with floor -1; claiming 999 means
  // the engine invented a floor (or leaked one across sessions).
  HistoryEvent ans = Answer(2, 2000, 1, {}, {}, /*floor_ms=*/999);
  ans.session = 7;
  h.events.push_back(ans);

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "timeline-tracking"), nullptr)
      << report.Summary();
}

TEST(OracleRuleTest, CleanHistoryPasses) {
  History h;
  h.events.push_back(Install(1, 500, 1, 0, 500));
  h.events.push_back(Commit(2, 1000, 1, {"Books"}));
  h.events.push_back(Install(3, 4000, 1, 1, 3500));
  HistoryEvent guard;
  guard.kind = HistoryEvent::Kind::kGuard;
  guard.seq = 4;
  guard.at = 5000;
  guard.query = 1;
  guard.region = 1;
  guard.heartbeat_known = true;
  guard.heartbeat = 3500;
  guard.bound_ms = 5000;
  guard.verdict_local = true;
  h.events.push_back(guard);
  h.events.push_back(LocalServe(5, 5000, 1, 1, 3500, {0}));
  h.events.push_back(Answer(6, 5000, 1, {"Books"}, {{5000, {0}}}));

  OracleReport report = CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.answers_checked, 1);
  EXPECT_EQ(report.guards_checked, 1);
  EXPECT_EQ(report.serves_checked, 1);
}

// -- multi-node (fleet) rules -----------------------------------------------------
// Fleet histories carry node tags and route events; each cross-node rule
// gets a minimal synthetic history proving it can fire, plus a clean fleet
// history proving they stay quiet on conforming runs.

HistoryEvent NodeInstall(uint64_t seq, SimTimeMs at, int node, RegionId region,
                         TxnTimestamp as_of, SimTimeMs hb) {
  HistoryEvent ev = Install(seq, at, region, as_of, hb);
  ev.node = node;
  return ev;
}

RouteProbe Probe(int node, RegionId region, SimTimeMs bound, SimTimeMs hb,
                 bool eligible, SimTimeMs floor = -1) {
  RouteProbe p;
  p.node = node;
  p.region = region;
  p.bound_ms = bound;
  p.floor_ms = floor;
  p.heartbeat_known = hb >= 0;
  p.heartbeat = hb;
  p.eligible = eligible;
  return p;
}

HistoryEvent Route(uint64_t seq, SimTimeMs at, uint64_t query, int node,
                   bool backend_tier, std::vector<RouteProbe> probes,
                   int degrade_mode = 0) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kRoute;
  ev.seq = seq;
  ev.at = at;
  ev.query = query;
  ev.node = node;
  ev.backend_tier = backend_tier;
  ev.degrade_mode = degrade_mode;
  ev.probes = std::move(probes);
  return ev;
}

TEST(OracleFleetRuleTest, CatchesForeignNodeRegionEvent) {
  History h;
  h.events.push_back(NodeInstall(1, 500, 1, 101, 0, 500));
  // Node 2 installing into node 1's region: two nodes' streams would blend
  // under every per-region rule, so the binding itself is the violation.
  h.events.push_back(NodeInstall(2, 800, 2, 101, 0, 800));

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "node-region-binding"), nullptr)
      << report.Summary();
}

TEST(OracleFleetRuleTest, CatchesRouteProbeTrustingWithdrawnHeartbeat) {
  // The RCC_FLEET_MUTATE shape: region 201 is quarantined, so its certified
  // heartbeat is withdrawn — yet the route probe still claims one.
  History h;
  h.events.push_back(NodeInstall(1, 5000, 2, 201, 0, 5000));
  HistoryEvent health;
  health.kind = HistoryEvent::Kind::kHealth;
  health.seq = 2;
  health.at = 6000;
  health.region = 201;
  health.node = 2;
  health.health_from = RegionHealth::kHealthy;
  health.health_to = RegionHealth::kQuarantined;
  h.events.push_back(health);
  h.events.push_back(
      Route(3, 7000, 1, 1, false, {Probe(2, 201, 10000, 5000, true)}));

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "route-heartbeat"), nullptr) << report.Summary();
  EXPECT_EQ(report.routes_checked, 1);
}

TEST(OracleFleetRuleTest, CatchesRouteProbeHeartbeatValueDivergence) {
  History h;
  h.events.push_back(NodeInstall(1, 5000, 1, 101, 0, 5000));
  // The probe invents 9000; the install stream only ever published 5000.
  // The claimed value makes the eligibility self-consistent, so only the
  // heartbeat cross-check can notice.
  h.events.push_back(
      Route(2, 10000, 1, 1, false, {Probe(1, 101, 2000, 9000, true)}));

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "route-heartbeat"), nullptr) << report.Summary();
  EXPECT_EQ(FindRule(report, "route-verdict"), nullptr) << report.Summary();
}

TEST(OracleFleetRuleTest, CatchesWrongRouteVerdict) {
  History h;
  h.events.push_back(NodeInstall(1, 1000, 1, 101, 0, 1000));
  // 19s stale against a 2s bound under DEGRADE NONE, yet marked eligible.
  h.events.push_back(
      Route(2, 20000, 1, 1, false, {Probe(1, 101, 2000, 1000, true)}));

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "route-verdict"), nullptr) << report.Summary();
  EXPECT_EQ(FindRule(report, "route-heartbeat"), nullptr) << report.Summary();
}

TEST(OracleFleetRuleTest, AlwaysDegradeMakesAnyStalenessEligible) {
  History h;
  h.events.push_back(NodeInstall(1, 1000, 1, 101, 0, 1000));
  // Same staleness, but the attempt runs under DEGRADE ALWAYS (mode 2): the
  // node may serve stale-flagged, so the eligible mark is correct.
  h.events.push_back(Route(2, 20000, 1, 1, false,
                           {Probe(1, 101, 2000, 1000, true)},
                           /*degrade_mode=*/2));

  OracleReport report = CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(OracleFleetRuleTest, CatchesDispatchToIneligibleNode) {
  History h;
  h.events.push_back(NodeInstall(1, 1000, 1, 101, 0, 1000));
  // The probe's verdict is honest (ineligible) — but the router dispatched
  // to the node anyway.
  h.events.push_back(
      Route(2, 20000, 1, 1, false, {Probe(1, 101, 2000, 1000, false)}));

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "route-choice"), nullptr) << report.Summary();
  EXPECT_EQ(FindRule(report, "route-verdict"), nullptr) << report.Summary();
}

TEST(OracleFleetRuleTest, CatchesServeFromUnroutedNode) {
  History h;
  h.events.push_back(NodeInstall(1, 4000, 2, 201, 0, 3500));
  h.events.push_back(
      Route(2, 5000, 1, 2, false, {Probe(2, 201, 5000, 3500, true)}));
  // Routed to node 2, but node 1 serves and answers.
  HistoryEvent serve = LocalServe(3, 5000, 1, 101, 3500, {0});
  serve.node = 1;
  h.events.push_back(serve);
  HistoryEvent ans = Answer(4, 5000, 1, {"Books"}, {{5000, {0}}});
  ans.node = 1;
  h.events.push_back(ans);

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "route-serve-node"), nullptr) << report.Summary();
}

TEST(OracleFleetRuleTest, CatchesLocalServeOnBackendTierDispatch) {
  History h;
  h.events.push_back(NodeInstall(1, 4000, 1, 101, 0, 3500));
  // Backend tier promises an all-remote plan; a local serve contradicts it.
  h.events.push_back(Route(2, 5000, 1, 1, true, {}));
  HistoryEvent serve = LocalServe(3, 5000, 1, 101, 3500, {0});
  serve.node = 1;
  h.events.push_back(serve);

  OracleReport report = CheckHistory(h);
  EXPECT_NE(FindRule(report, "route-serve-node"), nullptr) << report.Summary();
}

TEST(OracleFleetRuleTest, CleanFleetHistoryPasses) {
  History h;
  h.events.push_back(NodeInstall(1, 500, 1, 101, 0, 500));
  h.events.push_back(NodeInstall(2, 600, 2, 201, 0, 550));
  h.events.push_back(Commit(3, 1000, 1, {"Books"}));
  h.events.push_back(NodeInstall(4, 4000, 1, 101, 1, 3500));
  h.events.push_back(NodeInstall(5, 4200, 2, 201, 1, 3800));
  h.events.push_back(Route(6, 5000, 1, 2, false,
                           {Probe(1, 101, 5000, 3500, true),
                            Probe(2, 201, 5000, 3800, true)}));
  HistoryEvent guard;
  guard.kind = HistoryEvent::Kind::kGuard;
  guard.seq = 7;
  guard.at = 5000;
  guard.query = 1;
  guard.region = 201;
  guard.node = 2;
  guard.heartbeat_known = true;
  guard.heartbeat = 3800;
  guard.bound_ms = 5000;
  guard.verdict_local = true;
  h.events.push_back(guard);
  HistoryEvent serve = LocalServe(8, 5000, 1, 201, 3800, {0});
  serve.node = 2;
  h.events.push_back(serve);
  HistoryEvent ans = Answer(9, 5000, 1, {"Books"}, {{5000, {0}}});
  ans.node = 2;
  h.events.push_back(ans);

  OracleReport report = CheckHistory(h);
  EXPECT_TRUE(report.ok()) << report.Summary();
  EXPECT_EQ(report.routes_checked, 1);
  EXPECT_EQ(report.answers_checked, 1);
}

TEST(HistorySerializationTest, FleetHistoryRoundTripsThroughParse) {
  History h;
  h.seed = 9;
  h.events.push_back(NodeInstall(1, 500, 1, 101, 0, 500));
  // A cache-tier route with a real probe plus a coverage-failure probe
  // (kBackendRegion, withdrawn heartbeat), and a probe-less backend route —
  // every branch of the probes token format.
  RouteProbe coverage_failure;
  coverage_failure.node = 2;
  h.events.push_back(Route(2, 1000, 1, 1, false,
                           {Probe(1, 101, 5000, 400, true), coverage_failure}));
  h.events.push_back(Route(3, 2000, 2, 1, true, {}));

  std::string text = h.Serialize();
  EXPECT_NE(text.find("route "), std::string::npos);
  EXPECT_NE(text.find("tier=backend"), std::string::npos);
  EXPECT_NE(text.find("probes=-"), std::string::npos);
  EXPECT_NE(text.find("node=1"), std::string::npos);

  auto parsed = History::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->events.size(), h.events.size());
  ASSERT_EQ(parsed->events[1].probes.size(), 2u);
  EXPECT_EQ(parsed->events[1].probes[0].heartbeat, 400);
  EXPECT_FALSE(parsed->events[1].probes[1].heartbeat_known);
  EXPECT_EQ(parsed->Serialize(), text);
  EXPECT_EQ(parsed->Digest(), h.Digest());
}

TEST(HistorySerializationTest, ParseRejectsMalformedRouteLines) {
  const std::string header = "rcc.history.v1 seed=1\n";
  // Unknown tier.
  EXPECT_FALSE(History::Parse(header +
                              "route seq=1 at=0 q=1 node=1 tier=wat mode=0 "
                              "probes=-\n")
                   .ok());
  // Probe with too few fields.
  EXPECT_FALSE(History::Parse(header +
                              "route seq=1 at=0 q=1 node=1 tier=cache mode=0 "
                              "probes=1:101:5000\n")
                   .ok());
  // Route lines are strict about the node token — they were born with it,
  // so a missing one is corruption, not a legacy file.
  EXPECT_FALSE(History::Parse(header +
                              "route seq=1 at=0 q=1 tier=cache mode=0 "
                              "probes=-\n")
                   .ok());
}

TEST(HistorySerializationTest, PreFleetLinesParseAsNodeZero) {
  // Histories recorded before the fleet existed have no node tokens; they
  // must parse with node 0 (the single-cache default), not fail.
  const std::string text =
      "rcc.history.v1 seed=1\n"
      "install seq=1 at=0 region=1 kind=initial as_of=0 hb=0 ops=0\n"
      "guard seq=2 at=5000 q=1 region=1 hb=4000 bound=5000 floor=-1 "
      "verdict=local epoch=0\n";
  auto parsed = History::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->events.size(), 2u);
  EXPECT_EQ(parsed->events[0].node, 0);
  EXPECT_EQ(parsed->events[1].node, 0);
}

// -- determinism ------------------------------------------------------------------

TEST(SimRunnerTest, SameSeedSameDigest) {
  SimRunConfig cfg;
  cfg.seed = 12345;
  cfg.faults = FaultMix::kCombined;
  cfg.steps = 50;
  auto a = RunSimulation(cfg);
  auto b = RunSimulation(cfg);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_EQ(a->history.events.size(), b->history.events.size());
  EXPECT_EQ(a->digest, b->digest);
  EXPECT_EQ(a->history.Serialize(), b->history.Serialize());
}

TEST(SimRunnerTest, DifferentSeedDifferentDigest) {
  SimRunConfig cfg;
  cfg.seed = 1;
  cfg.steps = 40;
  auto a = RunSimulation(cfg);
  cfg.seed = 2;
  auto b = RunSimulation(cfg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->digest, b->digest);
}

TEST(SimRunnerTest, HistorySurvivesSerializationAndReplay) {
  SimRunConfig cfg;
  cfg.seed = 5150;
  cfg.faults = FaultMix::kReplication;
  cfg.steps = 40;
  auto run = RunSimulation(cfg);
  ASSERT_TRUE(run.ok());
  // Persist, reload, re-check: the file is the evidence, not the process.
  auto parsed = History::Parse(run->history.Serialize());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->Digest(), run->digest);
  OracleReport replayed = CheckHistory(*parsed);
  EXPECT_EQ(replayed.violations.size(), run->report.violations.size());
  EXPECT_EQ(replayed.answers_checked, run->report.answers_checked);
}

// -- reduced oracle sweep (the full 25-seed matrix lives in sim_seeds_test) ------

TEST(SimRunnerTest, ReducedSweepConformsAcrossFaultMixes) {
  const FaultMix kMixes[] = {FaultMix::kNone, FaultMix::kOutage,
                             FaultMix::kReplication, FaultMix::kCombined,
                             FaultMix::kCombined};
  size_t mutation_catches = 0;
  for (uint64_t seed = 21; seed < 26; ++seed) {
    SimRunConfig cfg;
    cfg.seed = seed;
    cfg.faults = kMixes[seed - 21];
    cfg.workload = seed == 25 ? SimWorkload::kTpcd : SimWorkload::kBookstore;
    cfg.steps = 60;
    auto run = RunSimulation(cfg);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_GT(run->report.answers_checked, 0);
#if defined(RCC_SIM_MUTATE) || defined(RCC_MVCC_MUTATE)
    mutation_catches += run->report.violations.size();
#else
    EXPECT_TRUE(run->report.ok())
        << "seed " << seed << " mix " << FaultMixName(cfg.faults) << "\n"
        << run->report.Summary();
#endif
  }
#if defined(RCC_SIM_MUTATE)
  // The skewed guard must be observable from history alone.
  EXPECT_GE(mutation_catches, 1u);
#elif defined(RCC_MVCC_MUTATE)
  // Reduced sweep only accumulates; the full 25-seed matrix in
  // sim_seeds_test enforces that the stale-heartbeat publish is caught.
#else
  EXPECT_EQ(mutation_catches, 0u);
#endif
}

// -- multi-worker batches (thread-safety of the sink; no digest assertions) ------

TEST(SimRunnerTest, ConcurrentBatchRecordingConforms) {
  HistoryRecorder recorder(99);
  RccSystem sys;
  sys.SetHistorySink(&recorder);
  ASSERT_TRUE(LoadBookstore(&sys, {.books = 100, .reviews_per_book = 2,
                                   .sales_per_book = 2, .seed = 99})
                  .ok());
  ASSERT_TRUE(SetupBookstoreCache(&sys, 8000, 3000).ok());
  sys.AdvanceTo(30000);
  auto session = sys.CreateSession();

  std::vector<std::string> batch;
  for (int i = 0; i < 16; ++i) {
    batch.push_back(
        i % 2 == 0 ? "SELECT isbn, price FROM Books B WHERE B.isbn < 30 "
                     "CURRENCY BOUND 10 SECONDS ON (B)"
                   : "SELECT isbn, stock FROM Books B WHERE B.isbn < 20 "
                     "CURRENCY BOUND 4 SECONDS ON (B)");
  }
  auto results = session->ExecuteBatch(batch, /*workers=*/4);
  for (auto& r : results) {
    EXPECT_TRUE(r.ok());
  }
  sys.AdvanceBy(5000);

  OracleReport report = CheckHistory(recorder.Snapshot());
  EXPECT_EQ(report.answers_checked, 16);
#if !defined(RCC_SIM_MUTATE) && !defined(RCC_MVCC_MUTATE)
  EXPECT_TRUE(report.ok()) << report.Summary();
#endif
  sys.SetHistorySink(nullptr);
}

}  // namespace
}  // namespace sim
}  // namespace rcc
