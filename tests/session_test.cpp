#include <gtest/gtest.h>

#include <chrono>

#include "test_util.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::MustExecute;

TEST(SessionTest, TimeOrderedMarkersToggleMode) {
  BookstoreFixture fx;
  EXPECT_FALSE(fx.session->in_timeordered());
  auto begin = fx.session->Execute("BEGIN TIMEORDERED");
  ASSERT_TRUE(begin.ok());
  EXPECT_TRUE(fx.session->in_timeordered());
  EXPECT_FALSE(begin->message.empty());
  auto end = fx.session->Execute("END TIMEORDERED");
  ASSERT_TRUE(end.ok());
  EXPECT_FALSE(fx.session->in_timeordered());
}

TEST(SessionTest, ParseErrorsSurface) {
  BookstoreFixture fx;
  EXPECT_TRUE(fx.session->Execute("SELEC oops").status().IsParseError());
}

TEST(SessionTest, TimelineFloorAdvancesWithQueries) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(30000);
  ASSERT_TRUE(fx.session->Execute("BEGIN TIMEORDERED").ok());
  EXPECT_EQ(fx.session->timeline_floor(), -1);
  // A tight query reads the back-end: the floor jumps to "now".
  MustExecute(fx.session.get(),
              "SELECT price FROM Books B WHERE B.isbn = 1");
  EXPECT_EQ(fx.session->timeline_floor(), 30000);
}

TEST(SessionTest, TimelinePreventsGoingBackInTime) {
  // Paper §2.3: after reading current data, a later query must not read an
  // older replica, even if its currency bound would allow it.
  BookstoreFixture fx(/*interval_ms=*/10000, /*delay_ms=*/2000);
  fx.sys.AdvanceTo(30000);
  // Local heartbeat lags "now" by at least the delay.
  std::optional<SimTimeMs> local_hb = fx.sys.cache()->LocalHeartbeat(1);
  ASSERT_TRUE(local_hb.has_value());
  ASSERT_LT(*local_hb, 30000);

  ASSERT_TRUE(fx.session->Execute("BEGIN TIMEORDERED").ok());
  // 1. Read current data (back-end): floor = 30000.
  MustExecute(fx.session.get(),
              "SELECT price FROM Books B WHERE B.isbn = 1");
  // 2. Relaxed query: without timeline mode this would use the local view
  //    (bound 1 hour >> staleness), but the replica is older than the floor,
  //    so the guard must route it to the back-end.
  QueryResult r = MustExecute(
      fx.session.get(),
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_EQ(r.stats.switch_remote, 1);
  EXPECT_EQ(r.stats.switch_local, 0);

  // Outside timeline mode the same query goes local.
  ASSERT_TRUE(fx.session->Execute("END TIMEORDERED").ok());
  QueryResult r2 = MustExecute(
      fx.session.get(),
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_EQ(r2.stats.switch_local, 1);
}

TEST(SessionTest, TimelineAllowsLocalWhenReplicaFreshEnough) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(30000);
  ASSERT_TRUE(fx.session->Execute("BEGIN TIMEORDERED").ok());
  // First query itself reads the local view: the floor becomes the local
  // heartbeat, so further local reads of the same region remain allowed.
  QueryResult r1 = MustExecute(
      fx.session.get(),
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_EQ(r1.stats.switch_local, 1);
  QueryResult r2 = MustExecute(
      fx.session.get(),
      "SELECT price FROM Books B WHERE B.isbn = 2 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_EQ(r2.stats.switch_local, 1);
}

TEST(SessionTest, TimelineUsersSeeTheirOwnChanges) {
  // The §2.3 motivation: "users may not even see their own changes unless
  // timeline consistency is specified".
  BookstoreFixture fx(10000, 2000);
  BackendServer* backend = fx.sys.backend();
  fx.sys.AdvanceTo(25000);

  ASSERT_TRUE(fx.session->Execute("BEGIN TIMEORDERED").ok());
  // Writes go to the back-end (and the writer reads its own write through a
  // tight query, pushing the session floor to now).
  const Row* row = backend->table("Books")->Get({Value::Int(3)});
  Row updated = *row;
  updated[2] = Value::Double(55.55);
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.table = "Books";
  op.row = updated;
  ASSERT_TRUE(backend->ExecuteTransaction({op}).ok());
  MustExecute(fx.session.get(), "SELECT price FROM Books B WHERE B.isbn = 3");

  // Later relaxed read in the same session must still see the new price.
  QueryResult later = MustExecute(
      fx.session.get(),
      "SELECT price FROM Books B WHERE B.isbn = 3 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_DOUBLE_EQ(later.rows[0][0].AsDouble(), 55.55);
}

TEST(SessionTest, WithoutTimelineStaleRereadIsPossible) {
  // Contrast case documenting the default behaviour the paper warns about.
  BookstoreFixture fx(10000, 2000);
  BackendServer* backend = fx.sys.backend();
  fx.sys.AdvanceTo(25000);
  const Row* row = backend->table("Books")->Get({Value::Int(3)});
  Row updated = *row;
  double old_price = (*row)[2].AsDouble();
  updated[2] = Value::Double(77.77);
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.table = "Books";
  op.row = updated;
  ASSERT_TRUE(backend->ExecuteTransaction({op}).ok());
  // Current read sees 77.77; relaxed read still sees the stale price.
  QueryResult now = MustExecute(
      fx.session.get(), "SELECT price FROM Books B WHERE B.isbn = 3");
  EXPECT_DOUBLE_EQ(now.rows[0][0].AsDouble(), 77.77);
  QueryResult relaxed = MustExecute(
      fx.session.get(),
      "SELECT price FROM Books B WHERE B.isbn = 3 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_DOUBLE_EQ(relaxed.rows[0][0].AsDouble(), old_price);
}

TEST(SessionTest, ResultMetadataPopulated) {
  BookstoreFixture fx;
  QueryResult r = MustExecute(
      fx.session.get(),
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_FALSE(r.plan_text.empty());
  EXPECT_EQ(r.shape, PlanShape::kAllLocal);
  EXPECT_FALSE(r.constraint.tuples.empty());
  EXPECT_EQ(r.executed_at, fx.sys.Now());
  EXPECT_FALSE(r.ToTable().empty());
}

TEST(SessionTest, ToTableTruncates) {
  BookstoreFixture fx;
  QueryResult r = MustExecute(
      fx.session.get(),
      "SELECT isbn FROM Books B WHERE B.isbn <= 30 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  std::string table = r.ToTable(5);
  EXPECT_NE(table.find("more rows"), std::string::npos);
  EXPECT_NE(table.find("(30 rows)"), std::string::npos);
}

// -- deadlines and shedding ---------------------------------------------------

TEST(SessionTest, SetDeadlineParsesAndClears) {
  BookstoreFixture fx;
  auto set = fx.session->Execute("SET DEADLINE 250");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  EXPECT_NE(set->message.find("deadline 250ms"), std::string::npos);
  auto off = fx.session->Execute("SET DEADLINE = 0;");
  ASSERT_TRUE(off.ok());
  EXPECT_NE(off->message.find("deadline OFF"), std::string::npos);
  // Garbage values are not swallowed as SETs: the parser reports them.
  EXPECT_FALSE(fx.session->Execute("SET DEADLINE soon").ok());
}

TEST(SessionTest, ExpiredDeadlineAnswersTimeoutAndReleasesPins) {
  BookstoreFixture fx;
  // A deadline whose budget was consumed entirely by (simulated) queue
  // wait: expired before the executor pulls its first batch, so the
  // cancellation point at the batch boundary must fire deterministically.
  Session::StatementOptions opts;
  opts.enqueued_at =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1000);
  opts.deadline_ms = 1;
  auto r = fx.session->Execute(
      "SELECT isbn FROM Books B WHERE B.isbn <= 30 "
      "CURRENCY BOUND 1 HOUR ON (B)",
      opts);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsDeadlineExceeded()) << r.status().ToString();
  // The timed-out statement released its snapshot pin on the way out.
  const SnapshotEpochManager& epochs = fx.sys.cache()->epoch_manager();
  EXPECT_EQ(epochs.MinPinnedEpoch(), epochs.current_epoch());
  // A statement-level timeout, not a session-level failure: the session
  // still serves.
  EXPECT_TRUE(fx.session
                  ->Execute("SELECT isbn FROM Books B WHERE B.isbn = 1 "
                            "CURRENCY BOUND 1 HOUR ON (B)")
                  .ok());
}

TEST(SessionTest, UnexpiredDeadlineDoesNotDisturbExecution) {
  BookstoreFixture fx;
  Session::StatementOptions opts;
  opts.deadline_ms = 60000;
  auto r = fx.session->Execute(
      "SELECT isbn FROM Books B WHERE B.isbn <= 30 "
      "CURRENCY BOUND 1 HOUR ON (B)",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 30u);
  EXPECT_EQ(r->stats.deadline_timeouts, 0);
}

TEST(SessionTest, ShedHintServesDegradedLocalWhenModePermits) {
  BookstoreFixture fx(/*interval_ms=*/10000, /*delay_ms=*/2000);
  fx.sys.AdvanceTo(30000);
  // Replica staleness (>= delay, here ~10s at t=30000) exceeds the 5s
  // bound, so the guard routes remote. Under DEGRADE ALWAYS the shed hint
  // may preempt that round-trip with an authorized degraded local serve.
  ASSERT_TRUE(fx.session->Execute("SET DEGRADE ALWAYS").ok());
  Session::StatementOptions opts;
  opts.shed_hint = true;
  auto r = fx.session->Execute(
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 5 SECONDS ON (B)",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.shed_serves, 1);
  EXPECT_EQ(r->stats.degraded_serves, 1);
  EXPECT_EQ(r->stats.switch_local, 1);
  EXPECT_EQ(r->stats.switch_remote, 0);
  EXPECT_TRUE(r->degraded);
  EXPECT_GT(r->staleness_ms, 5000);
}

TEST(SessionTest, ShedHintNeverOverridesStrictMode) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(30000);
  // DEGRADE NONE: the hint must be ignored — guard semantics win and the
  // query takes the remote branch as usual.
  Session::StatementOptions opts;
  opts.shed_hint = true;
  auto r = fx.session->Execute(
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 5 SECONDS ON (B)",
      opts);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->stats.shed_serves, 0);
  EXPECT_EQ(r->stats.switch_remote, 1);
  EXPECT_FALSE(r->degraded);
}

TEST(SessionTest, ShedHintIgnoredWhenReplicaWithinBound) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(30000);
  ASSERT_TRUE(fx.session->Execute("SET DEGRADE ALWAYS").ok());
  // The guard already authorizes the local branch (1h bound), so the serve
  // is an ordinary local serve, not a shed.
  Session::StatementOptions opts;
  opts.shed_hint = true;
  auto r = fx.session->Execute(
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 HOUR ON (B)",
      opts);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->stats.shed_serves, 0);
  EXPECT_EQ(r->stats.switch_local, 1);
  EXPECT_FALSE(r->degraded);
}

}  // namespace
}  // namespace rcc
