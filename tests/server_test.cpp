// Network front end (DESIGN.md §14): wire-protocol framing, the
// connection -> session ownership model, pipelining, backpressure, and
// drain-on-shutdown. Malformed input must always produce a terminal status
// frame and a closed connection — never a crash, a hang, or a leaked pinned
// snapshot epoch. Registered with the `server` and `tsan` ctest labels; the
// asan preset runs it too (no label filter there).

#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "test_util.h"

namespace rcc {
namespace {

using server::Frame;
using server::Opcode;
using server::QueryResponse;
using server::RccClient;
using server::RccServer;
using server::ServerOptions;
using server::StatusFramePayload;
using testing_util::BookstoreFixture;

std::string TestSocketPath(const char* tag) {
  return "/tmp/rcc_server_test_" + std::to_string(getpid()) + "_" + tag +
         ".sock";
}

ServerOptions WithPath(ServerOptions opts, const std::string& path) {
  opts.uds_path = path;
  if (opts.workers == 0) opts.workers = 4;
  return opts;
}

/// Fixture: a bookstore system with an RccServer listening on a UDS.
struct ServerFixture {
  BookstoreFixture book;
  std::string path;
  RccServer server;

  explicit ServerFixture(const char* tag, ServerOptions opts = {})
      : book(),
        path(TestSocketPath(tag)),
        server(&book.sys, WithPath(opts, TestSocketPath(tag))) {
    book.sys.AdvanceTo(30000);  // let both regions refresh once
    EXPECT_TRUE(server.Start().ok());
  }

  ~ServerFixture() { server.Stop(); }

  RccClient Connect() {
    RccClient c;
    EXPECT_TRUE(c.ConnectUds(path).ok());
    return c;
  }

  RccClient ConnectAndHello() {
    RccClient c = Connect();
    auto hello = c.Hello("server_test");
    EXPECT_TRUE(hello.ok()) << hello.status().ToString();
    return c;
  }

  /// Waits for the server to quiesce, then asserts no query left a snapshot
  /// epoch pinned (a pinned epoch would block snapshot reclamation forever).
  void ExpectNoEpochLeak() {
    for (int i = 0; i < 200 && server.in_flight() > 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(server.in_flight(), 0);
    const SnapshotEpochManager& epochs = book.sys.cache()->epoch_manager();
    EXPECT_EQ(epochs.MinPinnedEpoch(), epochs.current_epoch());
  }
};

// -- happy path ---------------------------------------------------------------

TEST(ServerTest, HelloThenQueryRoundTrip) {
  ServerFixture fx("hello");
  RccClient c = fx.Connect();

  auto hello = c.Hello("server_test");
  ASSERT_TRUE(hello.ok()) << hello.status().ToString();
  EXPECT_EQ(hello->version, server::kProtocolVersion);
  EXPECT_GT(hello->session_id, 0u);
  EXPECT_FALSE(hello->banner.empty());

  auto resp = c.Query(
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 MIN ON (B)");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->ok()) << resp->status.message;
  ASSERT_EQ(resp->columns.size(), 1u);
  EXPECT_EQ(resp->columns[0], "price");
  ASSERT_EQ(resp->rows.size(), 1u);
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, TcpLoopbackWorks) {
  BookstoreFixture book;
  book.sys.AdvanceTo(30000);
  ServerOptions opts;
  opts.workers = 2;  // TCP on an ephemeral port, no uds_path
  RccServer srv(&book.sys, opts);
  ASSERT_TRUE(srv.Start().ok());
  ASSERT_GT(srv.port(), 0);

  RccClient c;
  ASSERT_TRUE(c.ConnectTcp("127.0.0.1", srv.port()).ok());
  ASSERT_TRUE(c.Hello("tcp").ok());
  auto resp = c.Query("SELECT count(*) FROM Books B");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->ok());
  ASSERT_EQ(resp->rows.size(), 1u);
  EXPECT_EQ(resp->rows[0][0].AsInt(), 500);
  srv.Stop();
  EXPECT_FALSE(srv.running());
}

TEST(ServerTest, StatementErrorArrivesAsStatusNotDisconnect) {
  ServerFixture fx("error");
  RccClient c = fx.ConnectAndHello();

  auto resp = c.Query("SELECT nope FROM NoSuchTable");
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_FALSE(resp->ok());
  EXPECT_FALSE(resp->status.message.empty());

  // The connection survives a statement-level failure.
  auto again = c.Query("SELECT price FROM Books B WHERE B.isbn = 2");
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_TRUE(again->ok());
}

TEST(ServerTest, DmlExecutesAndIsVisibleToCurrentReads) {
  ServerFixture fx("dml");
  RccClient c = fx.ConnectAndHello();

  auto ins = c.Query(
      "INSERT INTO Books (isbn, title, price, stock) "
      "VALUES (9001, 'wire', 42, 7)");
  ASSERT_TRUE(ins.ok()) << ins.status().ToString();
  ASSERT_TRUE(ins->ok()) << ins->status.message;
  EXPECT_EQ(ins->status.rows_affected, 1);

  // No currency clause: a current read served from the back-end master.
  auto sel = c.Query("SELECT price FROM Books B WHERE B.isbn = 9001");
  ASSERT_TRUE(sel.ok());
  ASSERT_TRUE(sel->ok());
  ASSERT_EQ(sel->rows.size(), 1u);
  EXPECT_EQ(sel->rows[0][0].AsInt(), 42);
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, PreparedStatementsExecuteRepeatedly) {
  ServerFixture fx("prepared");
  RccClient c = fx.ConnectAndHello();

  auto id = c.PrepareStmt(
      "SELECT price FROM Books B WHERE B.isbn = 3 "
      "CURRENCY BOUND 10 MIN ON (B)");
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto first = c.ExecuteStmt(*id);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first->ok());
  auto second = c.ExecuteStmt(*id);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->ok());
  EXPECT_EQ(first->rows, second->rows);

  // Unknown id: a NotFound status, and the connection stays usable.
  auto missing = c.ExecuteStmt(*id + 100);
  ASSERT_TRUE(missing.ok());
  EXPECT_EQ(missing->status.code,
            static_cast<uint16_t>(StatusCode::kNotFound));
  auto after = c.ExecuteStmt(*id);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after->ok());
}

TEST(ServerTest, SetDegradeIsPerConnection) {
  ServerFixture fx("degrade");
  RccClient a = fx.ConnectAndHello();
  RccClient b = fx.ConnectAndHello();

  auto set = a.Set("SET DEGRADE ALWAYS");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_TRUE(set->ok());
  EXPECT_NE(set->status.message.find("degrade mode always"),
            std::string::npos);

  // Connection B's session is untouched: its SET reports its own mode only.
  auto other = b.Set("SET DEGRADE NONE");
  ASSERT_TRUE(other.ok());
  EXPECT_NE(other->status.message.find("degrade mode none"),
            std::string::npos);

  // Both still serve queries.
  EXPECT_TRUE(a.Query("SELECT price FROM Books B WHERE B.isbn = 1")->ok());
  EXPECT_TRUE(b.Query("SELECT price FROM Books B WHERE B.isbn = 1")->ok());
}

TEST(ServerTest, AdvanceVirtualTimeWhileConnectionsOpen) {
  ServerFixture fx("advance");
  RccClient c = fx.ConnectAndHello();
  ASSERT_TRUE(c.Query("SELECT price FROM Books B WHERE B.isbn = 1")->ok());

  fx.server.AdvanceVirtualTime(10000);  // heartbeats and deliveries fire

  auto resp = c.Query(
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 MIN ON (B)");
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok());
  EXPECT_TRUE(fx.server.running());
  fx.ExpectNoEpochLeak();
}

// -- pipelining ---------------------------------------------------------------

TEST(ServerTest, PipelinedQueriesCorrelateBySeq) {
  ServerFixture fx("pipeline");
  RccClient c = fx.ConnectAndHello();

  // Send query / SET / query without reading; the SET is applied on the
  // event loop, queries on workers — responses may arrive in any order but
  // each one's frames are contiguous and tagged with its seq.
  uint32_t q1 = c.NextSeq();
  uint32_t s1 = c.NextSeq();
  uint32_t q2 = c.NextSeq();
  std::string batch;
  server::AppendFrame(&batch, Opcode::kQuery, q1,
                      "SELECT price FROM Books B WHERE B.isbn = 1");
  server::AppendFrame(&batch, Opcode::kSet, s1, "SET TRACE ON");
  server::AppendFrame(&batch, Opcode::kQuery, q2,
                      "SELECT stock FROM Books B WHERE B.isbn = 2");
  ASSERT_TRUE(c.SendRaw(batch).ok());

  std::map<uint32_t, QueryResponse> by_seq;
  for (int i = 0; i < 3; ++i) {
    uint32_t seq = 0;
    auto resp = c.ReadResponse(&seq);
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    by_seq[seq] = std::move(*resp);
  }
  ASSERT_EQ(by_seq.count(q1), 1u);
  ASSERT_EQ(by_seq.count(s1), 1u);
  ASSERT_EQ(by_seq.count(q2), 1u);
  EXPECT_TRUE(by_seq[q1].ok());
  EXPECT_EQ(by_seq[q1].columns[0], "price");
  EXPECT_TRUE(by_seq[s1].ok());
  EXPECT_NE(by_seq[s1].status.message.find("trace ON"), std::string::npos);
  EXPECT_TRUE(by_seq[q2].ok());
  EXPECT_EQ(by_seq[q2].columns[0], "stock");
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, GoodbyeFlushesPipelinedResponsesThenCloses) {
  ServerFixture fx("goodbye");
  RccClient c = fx.ConnectAndHello();

  constexpr int kQueries = 8;
  std::string batch;
  for (int i = 0; i < kQueries; ++i) {
    server::AppendFrame(&batch, Opcode::kQuery, c.NextSeq(),
                        "SELECT price FROM Books B WHERE B.isbn = " +
                            std::to_string(i + 1));
  }
  server::AppendFrame(&batch, Opcode::kGoodbye, c.NextSeq(), "");
  ASSERT_TRUE(c.SendRaw(batch).ok());

  int ok_count = 0;
  for (int i = 0; i < kQueries; ++i) {
    auto resp = c.ReadResponse(nullptr);
    ASSERT_TRUE(resp.ok()) << i << ": " << resp.status().ToString();
    if (resp->ok()) ++ok_count;
  }
  EXPECT_EQ(ok_count, kQueries);
  // After the flush the server closes: clean EOF, not garbage.
  auto eof = c.ReadFrame();
  EXPECT_FALSE(eof.ok());
  fx.ExpectNoEpochLeak();
}

// -- malformed input ----------------------------------------------------------

TEST(ServerTest, QueryBeforeHelloIsAProtocolError) {
  ServerFixture fx("prehello");
  RccClient c = fx.Connect();
  ASSERT_TRUE(c.SendFrame(Opcode::kQuery, 7, "SELECT 1").ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->op, Opcode::kStatus);
  StatusFramePayload status;
  ASSERT_TRUE(server::DecodeStatusPayload(frame->payload, &status).ok());
  EXPECT_EQ(status.code,
            static_cast<uint16_t>(StatusCode::kInvalidArgument));
  EXPECT_NE(status.message.find("HELLO"), std::string::npos);
  EXPECT_FALSE(c.ReadFrame().ok());  // then the server hangs up
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, DuplicateHelloIsAProtocolError) {
  ServerFixture fx("dup_hello");
  RccClient c = fx.ConnectAndHello();
  ASSERT_TRUE(
      c.SendFrame(Opcode::kHello, c.NextSeq(),
                  server::EncodeHelloPayload(server::kProtocolVersion, "again"))
          .ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->op, Opcode::kStatus);
  EXPECT_FALSE(c.ReadFrame().ok());
}

TEST(ServerTest, UnknownOpcodeClosesWithStatusFrame) {
  ServerFixture fx("opcode");
  RccClient c = fx.ConnectAndHello();
  ASSERT_TRUE(c.SendFrame(static_cast<Opcode>(0x7f), 9, "junk").ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->op, Opcode::kStatus);
  StatusFramePayload status;
  ASSERT_TRUE(server::DecodeStatusPayload(frame->payload, &status).ok());
  EXPECT_NE(status.message.find("opcode"), std::string::npos);
  EXPECT_FALSE(c.ReadFrame().ok());
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, ServerSideOpcodeFromClientIsRejected) {
  ServerFixture fx("srv_opcode");
  RccClient c = fx.ConnectAndHello();
  ASSERT_TRUE(c.SendFrame(Opcode::kRows, 3, "").ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->op, Opcode::kStatus);
  EXPECT_FALSE(c.ReadFrame().ok());
}

TEST(ServerTest, OversizedLengthPrefixKillsConnection) {
  ServerFixture fx("oversize");
  RccClient c = fx.ConnectAndHello();
  std::string evil;
  server::PutU32(&evil, 512u << 20);  // claims a 512 MiB frame
  evil.push_back('\x02');
  ASSERT_TRUE(c.SendRaw(evil).ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  ASSERT_EQ(frame->op, Opcode::kStatus);
  StatusFramePayload status;
  ASSERT_TRUE(server::DecodeStatusPayload(frame->payload, &status).ok());
  EXPECT_EQ(status.code,
            static_cast<uint16_t>(StatusCode::kInvalidArgument));
  EXPECT_FALSE(c.ReadFrame().ok());
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, UndersizedLengthPrefixKillsConnection) {
  ServerFixture fx("undersize");
  RccClient c = fx.ConnectAndHello();
  std::string evil;
  server::PutU32(&evil, 2);  // cannot even hold opcode + seq
  evil.append("\x02\x00", 2);
  ASSERT_TRUE(c.SendRaw(evil).ok());
  auto frame = c.ReadFrame();
  ASSERT_TRUE(frame.ok());
  ASSERT_EQ(frame->op, Opcode::kStatus);
  EXPECT_FALSE(c.ReadFrame().ok());
}

TEST(ServerTest, TruncatedFrameThenDisconnectIsHarmless) {
  ServerFixture fx("truncated");
  {
    RccClient c = fx.ConnectAndHello();
    std::string partial;
    server::PutU32(&partial, 100);  // frame promises 100 bytes...
    partial.push_back('\x02');
    partial.append("SELECT", 6);  // ...but the client dies mid-frame
    ASSERT_TRUE(c.SendRaw(partial).ok());
  }  // destructor closes the socket
  // The server shrugs it off; a fresh connection works.
  RccClient again = fx.ConnectAndHello();
  auto resp = again.Query("SELECT price FROM Books B WHERE B.isbn = 1");
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok());
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, MidQueryDisconnectNeverLeaksAPinnedEpoch) {
  ServerFixture fx("hangup");
  for (int round = 0; round < 10; ++round) {
    RccClient c = fx.ConnectAndHello();
    // Fire a batch of queries and hang up without reading a byte: workers
    // finish against a closed connection and must drop their responses and
    // unpin their snapshot epochs.
    std::string batch;
    for (int i = 0; i < 4; ++i) {
      server::AppendFrame(&batch, Opcode::kQuery, c.NextSeq(),
                          "SELECT isbn FROM Books B WHERE B.isbn <= 50 "
                          "CURRENCY BOUND 10 MIN ON (B)");
    }
    ASSERT_TRUE(c.SendRaw(batch).ok());
    c.Close();
  }
  fx.ExpectNoEpochLeak();
  // The engine is still healthy for direct sessions.
  auto direct = fx.book.session->Execute(
      "SELECT price FROM Books B WHERE B.isbn = 1");
  EXPECT_TRUE(direct.ok());
}

// -- overload survivability ---------------------------------------------------

TEST(ServerTest, SlowLorisClientDoesNotStallHealthyConnections) {
  ServerFixture fx("loris");
  RccClient healthy = fx.ConnectAndHello();
  RccClient loris = fx.Connect();

  // The slow client trickles a whole HELLO + query exchange one byte per
  // write. The event loop is non-blocking, so healthy traffic must keep
  // flowing the entire time.
  std::string trickle;
  server::AppendFrame(&trickle, Opcode::kHello, 1,
                      server::EncodeHelloPayload(server::kProtocolVersion,
                                                 "loris"));
  server::AppendFrame(&trickle, Opcode::kQuery, 2,
                      "SELECT price FROM Books B WHERE B.isbn = 1");
  std::atomic<bool> done{false};
  std::thread slow([&] {
    for (char byte : trickle) {
      if (!loris.SendRaw(std::string_view(&byte, 1)).ok()) break;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    done.store(true);
  });
  int healthy_ok = 0;
  while (!done.load()) {
    auto resp = healthy.Query("SELECT price FROM Books B WHERE B.isbn = 2");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp->ok()) << resp->status.message;
    ++healthy_ok;
  }
  slow.join();
  EXPECT_GT(healthy_ok, 0);
  // The trickled frames were valid: the slow client gets real answers too.
  auto hello_frame = loris.ReadFrame();
  ASSERT_TRUE(hello_frame.ok()) << hello_frame.status().ToString();
  EXPECT_EQ(hello_frame->op, Opcode::kHelloOk);
  auto resp = loris.ReadResponse(nullptr);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->ok());
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, MidFrameResetAfterLengthPrefixIsHarmless) {
  ServerFixture fx("midreset");
  for (int round = 0; round < 5; ++round) {
    RccClient c = fx.ConnectAndHello();
    // Promise a frame, deliver only the length prefix (and for later rounds
    // a byte or two of the header), then reset the connection.
    std::string partial;
    server::PutU32(&partial, 64);
    partial.append("\x02\x01", std::min(round, 2));
    ASSERT_TRUE(c.SendRaw(partial).ok());
    c.Close();
  }
  // No worker is wedged waiting for the missing bytes; service continues.
  RccClient again = fx.ConnectAndHello();
  auto resp = again.Query("SELECT price FROM Books B WHERE B.isbn = 1");
  ASSERT_TRUE(resp.ok());
  EXPECT_TRUE(resp->ok());
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, AdmissionLimitRejectsWithRetryableStatusNotDisconnect) {
  ServerOptions opts;
  opts.workers = 1;
  opts.admission_limit = 1;  // one statement in flight; the rest refused
  ServerFixture fx("admission", opts);
  RccClient c = fx.ConnectAndHello();

  constexpr int kQueries = 24;
  std::string batch;
  for (int i = 0; i < kQueries; ++i) {
    server::AppendFrame(&batch, Opcode::kQuery, c.NextSeq(),
                        "SELECT isbn, title, price FROM Books B "
                        "CURRENCY BOUND 10 MIN ON (B)");
  }
  ASSERT_TRUE(c.SendRaw(batch).ok());

  int ok_count = 0;
  int overloaded = 0;
  for (int i = 0; i < kQueries; ++i) {
    auto resp = c.ReadResponse(nullptr);
    ASSERT_TRUE(resp.ok()) << i << ": " << resp.status().ToString();
    if (resp->ok()) {
      ++ok_count;
    } else {
      // Every refusal is the structured retryable kind — never a protocol
      // error, never a hangup.
      ASSERT_EQ(resp->status.code,
                static_cast<uint16_t>(StatusCode::kOverloaded))
          << resp->status.message;
      ++overloaded;
    }
  }
  EXPECT_GT(ok_count, 0);
  EXPECT_GT(overloaded, 0);
  EXPECT_EQ(ok_count + overloaded, kQueries);
  // The connection survived the overload episode. A refusal here is still
  // legal — the last admitted statement's in-flight slot is released just
  // *after* its response enqueues — so follow the status's own contract and
  // retry after backoff.
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    auto after = c.Query("SELECT price FROM Books B WHERE B.isbn = 1");
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    if (after->ok()) {
      recovered = true;
    } else {
      ASSERT_EQ(after->status.code,
                static_cast<uint16_t>(StatusCode::kOverloaded));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  }
  EXPECT_TRUE(recovered);
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, SetDeadlineAndQueryDeadlineRoundTrip) {
  ServerFixture fx("deadline");
  RccClient c = fx.ConnectAndHello();

  auto set = c.Set("SET DEADLINE 5000");
  ASSERT_TRUE(set.ok()) << set.status().ToString();
  ASSERT_TRUE(set->ok());
  EXPECT_NE(set->status.message.find("deadline 5000ms"), std::string::npos);

  // A roomy per-request deadline: the statement completes normally.
  auto resp = c.QueryWithDeadline(
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 MIN ON (B)",
      60000);
  ASSERT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_TRUE(resp->ok()) << resp->status.message;
  ASSERT_EQ(resp->rows.size(), 1u);

  auto off = c.Set("SET DEADLINE 0");
  ASSERT_TRUE(off.ok());
  EXPECT_NE(off->status.message.find("deadline OFF"), std::string::npos);
  fx.ExpectNoEpochLeak();
}

// -- backpressure and shutdown ------------------------------------------------

TEST(ServerTest, BackpressureStreamsLargeResultsThroughTinyQueue) {
  ServerOptions opts;
  opts.max_write_queue_bytes = 2048;  // absurdly small response backlog
  ServerFixture fx("backpressure", opts);
  RccClient c = fx.ConnectAndHello();

  // Pipeline several full-table scans (500 rows each) without reading, then
  // drain. Workers must stall on the bounded queue, not drop or reorder.
  constexpr int kQueries = 5;
  std::string batch;
  for (int i = 0; i < kQueries; ++i) {
    server::AppendFrame(&batch, Opcode::kQuery, c.NextSeq(),
                        "SELECT isbn, title, price, stock FROM Books B "
                        "CURRENCY BOUND 10 MIN ON (B)");
  }
  ASSERT_TRUE(c.SendRaw(batch).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let it stall

  for (int i = 0; i < kQueries; ++i) {
    auto resp = c.ReadResponse(nullptr);
    ASSERT_TRUE(resp.ok()) << i << ": " << resp.status().ToString();
    ASSERT_TRUE(resp->ok()) << resp->status.message;
    EXPECT_EQ(resp->rows.size(), 500u) << "query " << i;
  }
  fx.ExpectNoEpochLeak();
}

TEST(ServerTest, StopDrainsInFlightStatementsAndFlushes) {
  BookstoreFixture book;
  book.sys.AdvanceTo(30000);
  std::string path = TestSocketPath("stop_drain");
  ServerOptions opts;
  opts.uds_path = path;
  opts.workers = 2;
  RccServer srv(&book.sys, opts);
  ASSERT_TRUE(srv.Start().ok());

  RccClient c;
  ASSERT_TRUE(c.ConnectUds(path).ok());
  ASSERT_TRUE(c.Hello("drain").ok());
  constexpr int kQueries = 6;
  std::string batch;
  for (int i = 0; i < kQueries; ++i) {
    server::AppendFrame(&batch, Opcode::kQuery, c.NextSeq(),
                        "SELECT price FROM Books B WHERE B.isbn = " +
                            std::to_string(i + 1));
  }
  ASSERT_TRUE(c.SendRaw(batch).ok());

  // Stop while those are in flight: accepted statements must complete and
  // their responses must be flushed before the socket closes.
  srv.Stop();
  EXPECT_FALSE(srv.running());

  int ok_count = 0;
  for (int i = 0; i < kQueries; ++i) {
    auto resp = c.ReadResponse(nullptr);
    ASSERT_TRUE(resp.ok()) << i << ": " << resp.status().ToString();
    if (resp->ok()) ++ok_count;
  }
  EXPECT_EQ(ok_count, kQueries);
  EXPECT_FALSE(c.ReadFrame().ok());  // EOF after the flush

  // After Stop the engine left concurrent-batch mode: the clock advances.
  const SnapshotEpochManager& epochs = book.sys.cache()->epoch_manager();
  EXPECT_EQ(epochs.MinPinnedEpoch(), epochs.current_epoch());
  book.sys.AdvanceBy(1000);
}

TEST(ServerTest, ManyConcurrentConnections) {
  ServerOptions opts;
  opts.workers = 4;
  ServerFixture fx("many", opts);

  constexpr int kClients = 32;
  std::vector<RccClient> clients;
  clients.reserve(kClients);
  for (int i = 0; i < kClients; ++i) {
    clients.push_back(fx.ConnectAndHello());
  }
  EXPECT_EQ(fx.server.connections_open(), kClients);
  std::atomic<int> failures{0};
  std::vector<std::thread> drivers;
  drivers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    drivers.emplace_back([&clients, &failures, t] {
      for (int i = t; i < kClients; i += 4) {
        for (int q = 0; q < 3; ++q) {
          auto resp = clients[i].Query(
              "SELECT price FROM Books B WHERE B.isbn = " +
              std::to_string(i * 3 + q + 1) + " CURRENCY BOUND 10 MIN ON (B)");
          if (!resp.ok() || !resp->ok()) failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : drivers) t.join();
  EXPECT_EQ(failures.load(), 0);
  fx.ExpectNoEpochLeak();
}

}  // namespace
}  // namespace rcc
