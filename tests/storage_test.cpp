#include <gtest/gtest.h>

#include "storage/table.h"

namespace rcc {
namespace {

// -- Value -----------------------------------------------------------------------

TEST(ValueTest, Types) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(1).is_int());
  EXPECT_TRUE(Value::Double(1.5).is_double());
  EXPECT_TRUE(Value::Str("x").is_string());
  EXPECT_EQ(Value::Int(1).type(), ValueType::kInt64);
}

TEST(ValueTest, CompareNumbersCrossType) {
  EXPECT_EQ(Value::Int(42).Compare(Value::Double(42.0)), 0);
  EXPECT_LT(Value::Int(1).Compare(Value::Double(1.5)), 0);
  EXPECT_GT(Value::Double(2.5).Compare(Value::Int(2)), 0);
}

TEST(ValueTest, NullSortsFirst) {
  EXPECT_LT(Value::Null().Compare(Value::Int(-100)), 0);
  EXPECT_LT(Value::Null().Compare(Value::Str("")), 0);
  EXPECT_EQ(Value::Null().Compare(Value::Null()), 0);
}

TEST(ValueTest, NumbersSortBeforeStrings) {
  EXPECT_LT(Value::Int(999).Compare(Value::Str("0")), 0);
}

TEST(ValueTest, StringCompare) {
  EXPECT_LT(Value::Str("abc").Compare(Value::Str("abd")), 0);
  EXPECT_EQ(Value::Str("abc").Compare(Value::Str("abc")), 0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(-5).ToString(), "-5");
  EXPECT_EQ(Value::Str("hi").ToString(), "'hi'");
}

TEST(ValueTest, HashConsistentWithCrossTypeEquality) {
  EXPECT_EQ(Value::Int(42).Hash(), Value::Double(42.0).Hash());
}

// -- Schema ----------------------------------------------------------------------

TEST(SchemaTest, FindColumnIsCaseInsensitive) {
  Schema s({{"A", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(*s.FindColumn("a"), 0u);
  EXPECT_EQ(*s.FindColumn("B"), 1u);
  EXPECT_FALSE(s.FindColumn("c").has_value());
}

TEST(SchemaTest, Project) {
  Schema s({{"a", ValueType::kInt64},
            {"b", ValueType::kString},
            {"c", ValueType::kDouble}});
  Schema p = s.Project({2, 0});
  ASSERT_EQ(p.num_columns(), 2u);
  EXPECT_EQ(p.column(0).name, "c");
  EXPECT_EQ(p.column(1).name, "a");
}

// -- Table -----------------------------------------------------------------------

class TableTest : public ::testing::Test {
 protected:
  TableTest()
      : table_("t",
               Schema({{"k", ValueType::kInt64},
                       {"v", ValueType::kString},
                       {"n", ValueType::kInt64}}),
               {0}) {}

  Table table_;
};

TEST_F(TableTest, InsertGetDelete) {
  ASSERT_TRUE(table_.Insert({Value::Int(1), Value::Str("a"), Value::Int(10)})
                  .ok());
  ASSERT_TRUE(table_.Insert({Value::Int(2), Value::Str("b"), Value::Int(20)})
                  .ok());
  EXPECT_EQ(table_.num_rows(), 2u);
  const Row* row = table_.Get({Value::Int(1)});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].AsString(), "a");
  EXPECT_TRUE(table_.Delete({Value::Int(1)}).ok());
  EXPECT_EQ(table_.Get({Value::Int(1)}), nullptr);
  EXPECT_TRUE(table_.Delete({Value::Int(1)}).IsNotFound());
}

TEST_F(TableTest, DuplicateInsertFails) {
  ASSERT_TRUE(table_.Insert({Value::Int(1), Value::Str("a"), Value::Int(1)})
                  .ok());
  Status st = table_.Insert({Value::Int(1), Value::Str("b"), Value::Int(2)});
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST_F(TableTest, UpdateReplacesRow) {
  ASSERT_TRUE(table_.Insert({Value::Int(1), Value::Str("a"), Value::Int(1)})
                  .ok());
  ASSERT_TRUE(table_.Update({Value::Int(1), Value::Str("z"), Value::Int(9)})
                  .ok());
  EXPECT_EQ((*table_.Get({Value::Int(1)}))[1].AsString(), "z");
  EXPECT_TRUE(
      table_.Update({Value::Int(5), Value::Str("x"), Value::Int(0)})
          .IsNotFound());
}

TEST_F(TableTest, UpsertInsertsOrReplaces) {
  table_.Upsert({Value::Int(1), Value::Str("a"), Value::Int(1)});
  table_.Upsert({Value::Int(1), Value::Str("b"), Value::Int(2)});
  EXPECT_EQ(table_.num_rows(), 1u);
  EXPECT_EQ((*table_.Get({Value::Int(1)}))[1].AsString(), "b");
}

TEST_F(TableTest, ArityMismatchRejected) {
  EXPECT_FALSE(table_.Insert({Value::Int(1)}).ok());
}

TEST_F(TableTest, ScanInKeyOrder) {
  for (int64_t k : {5, 1, 3, 2, 4}) {
    ASSERT_TRUE(
        table_.Insert({Value::Int(k), Value::Str("x"), Value::Int(k)}).ok());
  }
  std::vector<int64_t> seen;
  table_.Scan([&](const Row& row) {
    seen.push_back(row[0].AsInt());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{1, 2, 3, 4, 5}));
}

TEST_F(TableTest, ScanEarlyStop) {
  for (int64_t k = 1; k <= 10; ++k) {
    ASSERT_TRUE(
        table_.Insert({Value::Int(k), Value::Str("x"), Value::Int(k)}).ok());
  }
  int count = 0;
  table_.Scan([&](const Row&) { return ++count < 3; });
  EXPECT_EQ(count, 3);
}

TEST_F(TableTest, RangeScanInclusiveBounds) {
  for (int64_t k = 1; k <= 10; ++k) {
    ASSERT_TRUE(
        table_.Insert({Value::Int(k), Value::Str("x"), Value::Int(k)}).ok());
  }
  TableKey lo{Value::Int(3)};
  TableKey hi{Value::Int(6)};
  std::vector<int64_t> seen;
  table_.RangeScan(&lo, &hi, [&](const Row& row) {
    seen.push_back(row[0].AsInt());
    return true;
  });
  EXPECT_EQ(seen, (std::vector<int64_t>{3, 4, 5, 6}));
}

TEST_F(TableTest, SecondaryIndexMaintainedAcrossMutations) {
  ASSERT_TRUE(table_.CreateSecondaryIndex("idx_n", {2}).ok());
  for (int64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(table_
                    .Insert({Value::Int(k), Value::Str("x"),
                             Value::Int(100 - k)})
                    .ok());
  }
  const SecondaryIndex* idx = table_.FindIndex("idx_n");
  ASSERT_NE(idx, nullptr);
  EXPECT_EQ(idx->size(), 5u);
  // Update moves the index entry.
  ASSERT_TRUE(table_.Update({Value::Int(1), Value::Str("x"), Value::Int(1)})
                  .ok());
  TableKey lo{Value::Int(1)};
  TableKey hi{Value::Int(1)};
  auto pks = idx->Range(&lo, &hi);
  ASSERT_EQ(pks.size(), 1u);
  EXPECT_EQ(pks[0][0].AsInt(), 1);
  // Delete removes it.
  ASSERT_TRUE(table_.Delete({Value::Int(1)}).ok());
  EXPECT_EQ(idx->Range(&lo, &hi).size(), 0u);
  EXPECT_EQ(idx->size(), 4u);
}

TEST_F(TableTest, IndexBackfillsExistingRows) {
  for (int64_t k = 1; k <= 4; ++k) {
    ASSERT_TRUE(
        table_.Insert({Value::Int(k), Value::Str("x"), Value::Int(k * 2)})
            .ok());
  }
  ASSERT_TRUE(table_.CreateSecondaryIndex("idx_n", {2}).ok());
  EXPECT_EQ(table_.FindIndex("idx_n")->size(), 4u);
  EXPECT_TRUE(table_.CreateSecondaryIndex("idx_n", {2}).code() ==
              StatusCode::kAlreadyExists);
}

// Composite-key table (like Orders: clustered on (o_custkey, o_orderkey)).
class CompositeKeyTest : public ::testing::Test {
 protected:
  CompositeKeyTest()
      : table_("orders",
               Schema({{"ck", ValueType::kInt64},
                       {"ok", ValueType::kInt64},
                       {"price", ValueType::kDouble}}),
               {0, 1}) {
    for (int64_t ck = 1; ck <= 3; ++ck) {
      for (int64_t ok = 1; ok <= 4; ++ok) {
        EXPECT_TRUE(table_
                        .Insert({Value::Int(ck), Value::Int(ok),
                                 Value::Double(ck * 10.0 + ok)})
                        .ok());
      }
    }
  }
  Table table_;
};

TEST_F(CompositeKeyTest, PrefixRangeScan) {
  // All orders of customer 2: prefix bound.
  TableKey lo{Value::Int(2)};
  TableKey hi{Value::Int(2)};
  std::vector<int64_t> oks;
  table_.RangeScan(&lo, &hi, [&](const Row& row) {
    EXPECT_EQ(row[0].AsInt(), 2);
    oks.push_back(row[1].AsInt());
    return true;
  });
  EXPECT_EQ(oks, (std::vector<int64_t>{1, 2, 3, 4}));
}

TEST_F(CompositeKeyTest, FullKeyLookup) {
  const Row* row = table_.Get({Value::Int(3), Value::Int(2)});
  ASSERT_NE(row, nullptr);
  EXPECT_DOUBLE_EQ((*row)[2].AsDouble(), 32.0);
}

TEST_F(CompositeKeyTest, ClearResetsRowsAndIndexes) {
  ASSERT_TRUE(table_.CreateSecondaryIndex("i", {2}).ok());
  table_.Clear();
  EXPECT_EQ(table_.num_rows(), 0u);
  EXPECT_EQ(table_.FindIndex("i")->size(), 0u);
  // Table remains usable.
  EXPECT_TRUE(
      table_.Insert({Value::Int(1), Value::Int(1), Value::Double(1)}).ok());
  EXPECT_EQ(table_.FindIndex("i")->size(), 1u);
}

// Key-ordering property sweep.
class TableKeyOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(TableKeyOrderTest, LexicographicOrderMatchesValueCompare) {
  int n = GetParam();
  TableKeyLess less;
  TableKey a{Value::Int(n)};
  TableKey b{Value::Int(n), Value::Int(0)};
  // A prefix sorts before any extension.
  EXPECT_TRUE(less(a, b));
  EXPECT_FALSE(less(b, a));
  TableKey c{Value::Int(n + 1)};
  EXPECT_TRUE(less(a, c));
  EXPECT_TRUE(less(b, c));
}

INSTANTIATE_TEST_SUITE_P(Keys, TableKeyOrderTest,
                         ::testing::Values(-5, 0, 1, 7, 1000));

}  // namespace
}  // namespace rcc
