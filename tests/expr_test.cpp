#include <gtest/gtest.h>

#include "plan/expr.h"
#include "sql/parser.h"

namespace rcc {
namespace {

/// Parses a standalone expression by wrapping it in a SELECT.
std::unique_ptr<Expr> ParseExpr(const std::string& text) {
  auto stmt = ParseSelect("SELECT 1 FROM t WHERE " + text);
  EXPECT_TRUE(stmt.ok()) << text << ": " << stmt.status().ToString();
  return std::move((*stmt)->where);
}

class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() {
    layout_.Add(0, "a", ValueType::kInt64);
    layout_.Add(0, "b", ValueType::kDouble);
    layout_.Add(1, "c", ValueType::kString);
    aliases_["t"] = 0;
    aliases_["s"] = 1;
    row_ = {Value::Int(10), Value::Double(2.5), Value::Str("hello")};
    scope_.layout = &layout_;
    scope_.row = &row_;
    scope_.aliases = &aliases_;
  }

  Value Eval(const std::string& text) {
    auto expr = ParseExpr(text);
    auto v = EvalExpr(*expr, scope_, nullptr);
    EXPECT_TRUE(v.ok()) << text << ": " << v.status().ToString();
    return v.ok() ? *v : Value::Null();
  }

  bool Pred(const std::string& text) {
    auto expr = ParseExpr(text);
    auto v = EvalPredicate(*expr, scope_, nullptr);
    EXPECT_TRUE(v.ok()) << text;
    return v.ok() && *v;
  }

  RowLayout layout_;
  AliasMap aliases_;
  Row row_;
  EvalScope scope_;
};

TEST_F(ExprEvalTest, ColumnResolution) {
  EXPECT_EQ(Eval("t.a").AsInt(), 10);
  EXPECT_EQ(Eval("a").AsInt(), 10);       // unqualified, unique
  EXPECT_EQ(Eval("s.c").AsString(), "hello");
}

TEST_F(ExprEvalTest, UnresolvedColumnFails) {
  auto expr = ParseExpr("t.zzz");
  EXPECT_FALSE(EvalExpr(*expr, scope_, nullptr).ok());
}

TEST_F(ExprEvalTest, AmbiguousBareColumnFails) {
  RowLayout ambiguous;
  ambiguous.Add(0, "x", ValueType::kInt64);
  ambiguous.Add(1, "x", ValueType::kInt64);
  Row r{Value::Int(1), Value::Int(2)};
  EvalScope s;
  s.layout = &ambiguous;
  s.row = &r;
  s.aliases = &aliases_;
  auto expr = ParseExpr("x = 1");
  EXPECT_FALSE(EvalExpr(*expr, s, nullptr).ok());
}

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("a + 5").AsInt(), 15);
  EXPECT_EQ(Eval("a - 3 * 2").AsInt(), 4);
  EXPECT_DOUBLE_EQ(Eval("a / 4").AsDouble(), 2.5);  // division is double
  EXPECT_DOUBLE_EQ(Eval("b * 2").AsDouble(), 5.0);
  EXPECT_TRUE(Eval("a / 0").is_null());  // division by zero -> NULL
}

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_TRUE(Pred("a = 10"));
  EXPECT_TRUE(Pred("a <> 9"));
  EXPECT_TRUE(Pred("a >= 10"));
  EXPECT_FALSE(Pred("a > 10"));
  EXPECT_TRUE(Pred("b < 3"));
  EXPECT_TRUE(Pred("s.c = 'hello'"));
  EXPECT_TRUE(Pred("a = 10.0"));  // cross-type numeric equality
}

TEST_F(ExprEvalTest, BooleanLogicThreeValued) {
  EXPECT_TRUE(Pred("a = 10 AND b > 2"));
  EXPECT_TRUE(Pred("a = 0 OR b > 2"));
  EXPECT_FALSE(Pred("a = 0 AND b > 2"));
  EXPECT_TRUE(Pred("NOT (a = 0)"));
  // NULL comparisons are unknown; EvalPredicate collapses unknown to false.
  EXPECT_FALSE(Pred("NULL = NULL"));
  EXPECT_FALSE(Pred("a = NULL"));
  EXPECT_FALSE(Pred("NOT (a = NULL)"));  // NOT unknown = unknown
  // unknown AND false = false; unknown OR true = true.
  EXPECT_FALSE(Pred("a = NULL AND a = 0"));
  EXPECT_TRUE(Pred("a = NULL OR a = 10"));
}

TEST_F(ExprEvalTest, Between) {
  EXPECT_TRUE(Pred("a BETWEEN 5 AND 15"));
  EXPECT_TRUE(Pred("a BETWEEN 10 AND 10"));
  EXPECT_FALSE(Pred("a BETWEEN 11 AND 15"));
}

TEST_F(ExprEvalTest, CorrelatedLookupThroughOuterScope) {
  RowLayout inner;
  inner.Add(2, "y", ValueType::kInt64);
  Row inner_row{Value::Int(99)};
  AliasMap inner_aliases;
  inner_aliases["u"] = 2;
  EvalScope inner_scope;
  inner_scope.layout = &inner;
  inner_scope.row = &inner_row;
  inner_scope.aliases = &inner_aliases;
  inner_scope.outer = &scope_;
  // t.a resolves through the outer scope chain.
  auto expr = ParseExpr("u.y > t.a");
  auto v = EvalPredicate(*expr, inner_scope, nullptr);
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(*v);
}

TEST_F(ExprEvalTest, SubqueryWithoutEvaluatorFails) {
  auto expr = ParseExpr("EXISTS (SELECT 1 FROM s)");
  EXPECT_FALSE(EvalExpr(*expr, scope_, nullptr).ok());
}

// -- helpers -----------------------------------------------------------------

TEST(SplitConjunctsTest, FlattensNestedAnds) {
  auto expr = ParseExpr("a = 1 AND b = 2 AND (c = 3 AND d = 4)");
  auto conjs = SplitConjuncts(expr.get());
  EXPECT_EQ(conjs.size(), 4u);
  EXPECT_EQ(SplitConjuncts(nullptr).size(), 0u);
}

TEST(SplitConjunctsTest, OrIsOneConjunct) {
  auto expr = ParseExpr("a = 1 OR b = 2");
  EXPECT_EQ(SplitConjuncts(expr.get()).size(), 1u);
}

TEST(CollectColumnsTest, QualifiedAndSubqueryRefs) {
  AliasMap aliases;
  aliases["t"] = 0;
  aliases["s"] = 1;
  auto expr = ParseExpr(
      "t.a = 1 AND s.b = 2 AND EXISTS (SELECT 1 FROM u WHERE u.x = t.c)");
  std::set<std::string> cols;
  CollectColumnsOf(expr.get(), 0, aliases, &cols);
  EXPECT_EQ(cols.count("a"), 1u);
  EXPECT_EQ(cols.count("c"), 1u);  // correlated ref inside the subquery
  EXPECT_EQ(cols.count("b"), 0u);  // belongs to s
}

TEST(CoverageTest, ExprCoveredByOperands) {
  AliasMap aliases;
  aliases["t"] = 0;
  aliases["s"] = 1;
  auto join = ParseExpr("t.a = s.b");
  EXPECT_TRUE(ExprCoveredByOperands(join.get(), {0, 1}, aliases, false));
  EXPECT_FALSE(ExprCoveredByOperands(join.get(), {0}, aliases, false));
  auto bare = ParseExpr("a = 1");
  EXPECT_TRUE(ExprCoveredByOperands(bare.get(), {0}, aliases, true));
  EXPECT_FALSE(ExprCoveredByOperands(bare.get(), {0}, aliases, false));
  auto sub = ParseExpr("EXISTS (SELECT 1 FROM u)");
  EXPECT_FALSE(ExprCoveredByOperands(sub.get(), {0, 1}, aliases, true));
}

// -- RowLayout ------------------------------------------------------------------

TEST(RowLayoutTest, FindQualifiedAndConcat) {
  RowLayout a;
  a.Add(0, "x", ValueType::kInt64);
  RowLayout b;
  b.Add(1, "y", ValueType::kString);
  RowLayout c = RowLayout::Concat(a, b);
  ASSERT_EQ(c.num_slots(), 2u);
  EXPECT_EQ(*c.Find(0, "x"), 0u);
  EXPECT_EQ(*c.Find(1, "y"), 1u);
  EXPECT_FALSE(c.Find(0, "y").has_value());
  auto unq = c.FindUnqualified("Y");
  ASSERT_TRUE(unq.ok());
  EXPECT_EQ(**unq, 1u);
  EXPECT_FALSE((*c.FindUnqualified("z")).has_value());
}

}  // namespace
}  // namespace rcc
