// The acceptance sweep: 25 oracle-checked seeds spanning every fault mix
// (none / query-channel outage / replication faults / combined) and both
// workloads. In the normal build every seed must replay with zero
// conformance violations; in the mutation builds the same seeds must
// surface at least one — the matched pair is what demonstrates the
// oracle's independence from the engine under test. Three planted bugs:
//  - RCC_SIM_MUTATE: the guard check is skewed by one refresh interval;
//  - RCC_PLANCACHE_MUTATE: the plan-cache key drops the degrade mode, so
//    the runner's SET DEGRADE rotation serves plans cached under the wrong
//    mode (e.g. an ALWAYS-behaving plan on a NONE session — a degraded
//    answer the session never authorized, oracle rule R3);
//  - RCC_MVCC_MUTATE: delivery publishes the batch's data with the *old*
//    heartbeat, so snapshots certify currency bounds the fresh data doesn't
//    satisfy — the oracle's guard/serve heartbeat cross-check disagrees
//    with what its own replay of the delivery schedule derives;
//  - RCC_FLEET_MUTATE: the fleet router's probes on the highest-numbered
//    node fall back to the raw snapshot heartbeat when certification was
//    withdrawn, so quarantined nodes keep receiving dispatches — the
//    oracle's route-heartbeat rule re-derives certified state from the
//    install + health streams and disagrees (fleet runs only).

#include <gtest/gtest.h>

#include "sim/runner.h"

namespace rcc {
namespace sim {
namespace {

struct SeedCase {
  uint64_t seed;
  FaultMix faults;
  SimWorkload workload;
};

class SimSeedMatrixTest : public ::testing::TestWithParam<SeedCase> {};

TEST_P(SimSeedMatrixTest, HistoryConformsToModel) {
  const SeedCase& param = GetParam();
  SimRunConfig cfg;
  cfg.seed = param.seed;
  cfg.faults = param.faults;
  cfg.workload = param.workload;
  cfg.steps = 80;

  auto run = RunSimulation(cfg);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // A vacuous run proves nothing: require real coverage.
  EXPECT_GT(run->report.answers_checked, 0);
  EXPECT_GT(run->report.guards_checked, 0);
  EXPECT_GT(run->report.serves_checked, 0);
  EXPECT_GT(run->commits, 0);
  EXPECT_EQ(run->digest, run->history.Digest());

#if defined(RCC_SIM_MUTATE) || defined(RCC_PLANCACHE_MUTATE) || \
    defined(RCC_MVCC_MUTATE) || defined(RCC_FLEET_MUTATE)
  // Collected across the matrix by the *IsCaughtSomewhere tests below; a
  // single seed need not trip (loose bounds can mask the skew, and a seed's
  // degrade rotation may never cross a cached plan), so no per-seed
  // assertion here.
#else
  EXPECT_TRUE(run->report.ok())
      << "seed " << param.seed << " mix " << FaultMixName(param.faults)
      << " workload " << SimWorkloadName(param.workload) << "\n"
      << run->report.Summary();
#endif
}

std::vector<SeedCase> BuildMatrix() {
  // 25 seeds cycling the four mixes; every fifth runs TPCD instead of the
  // bookstore so both schemas, cache layouts and commit paths are covered.
  const FaultMix kMixes[] = {FaultMix::kNone, FaultMix::kOutage,
                             FaultMix::kReplication, FaultMix::kCombined};
  std::vector<SeedCase> cases;
  for (uint64_t i = 0; i < 25; ++i) {
    SeedCase c;
    c.seed = 1000 + i * 37;
    c.faults = kMixes[i % 4];
    c.workload = i % 5 == 4 ? SimWorkload::kTpcd : SimWorkload::kBookstore;
    cases.push_back(c);
  }
  return cases;
}

#if !defined(RCC_SIM_MUTATE) && !defined(RCC_PLANCACHE_MUTATE) && \
    !defined(RCC_MVCC_MUTATE) && !defined(RCC_FLEET_MUTATE)
TEST(SimSeedMatrixTest, ShedHintsProduceRecordedOracleCleanSheds) {
  // Overload shedding must be *visible* in histories (serve lines carry
  // shed=1) and *sound* (the oracle's R3/R7 rules hold: every shed is a
  // degraded local serve the session's mode authorized). Drive a slice of
  // the matrix with every main-session query carrying the admission
  // layer's shed hint; at that rate the stale-replica windows that make a
  // guard fail while DEGRADE ALWAYS permits a local serve are hit reliably.
  int64_t total_sheds = 0;
  for (uint64_t seed : {1000u, 1037u, 1111u, 1259u}) {
    SimRunConfig cfg;
    cfg.seed = seed;
    cfg.faults = FaultMix::kCombined;
    cfg.steps = 120;
    cfg.shed_percent = 100;
    auto run = RunSimulation(cfg);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->report.ok())
        << "seed " << seed << "\n"
        << run->report.Summary();
    total_sheds += run->shed_serves;
  }
  EXPECT_GT(total_sheds, 0);
}

TEST(SimSeedMatrixTest, FleetMatrixStaysOracleClean) {
  // A slice of the matrix re-run as a three-node fleet: every SELECT goes
  // through the FleetRouter, nodes fault independently, and the four
  // cross-node oracle rules (node-region-binding, route-heartbeat,
  // route-verdict, route-choice / route-serve-node) are in force on top of
  // R1–R7. The slice covers every fault mix; routes_checked > 0 guards
  // against a vacuously green run where nothing was actually dispatched.
  for (const SeedCase& c : BuildMatrix()) {
    if (c.seed % 3 == 2) continue;  // ~2/3 of the matrix, all mixes
    SimRunConfig cfg;
    cfg.seed = c.seed;
    cfg.faults = c.faults;
    cfg.steps = 80;
    cfg.fleet_nodes = 3;
    auto run = RunSimulation(cfg);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_GT(run->report.routes_checked, 0) << "seed " << c.seed;
    EXPECT_GT(run->report.answers_checked, 0) << "seed " << c.seed;
    EXPECT_TRUE(run->report.ok())
        << "seed " << c.seed << " mix " << FaultMixName(c.faults) << "\n"
        << run->report.Summary();
  }
}
#endif

std::string SeedCaseName(const ::testing::TestParamInfo<SeedCase>& info) {
  return std::string("seed") + std::to_string(info.param.seed) + "_" +
         FaultMixName(info.param.faults) + "_" +
         SimWorkloadName(info.param.workload);
}

INSTANTIATE_TEST_SUITE_P(Matrix, SimSeedMatrixTest,
                         ::testing::ValuesIn(BuildMatrix()), SeedCaseName);

#ifdef RCC_SIM_MUTATE
TEST(SimSeedMatrixTest, MutationIsCaughtSomewhere) {
  // Re-run a slice of the matrix and require the skewed guard to show up as
  // conformance violations. With 5s bounds against an 8s/3s region the skew
  // flips verdicts on most stale probes, so "somewhere" is in practice
  // "almost everywhere".
  size_t total = 0;
  for (const SeedCase& c : BuildMatrix()) {
    if (c.seed % 3 != 0 && total > 0) continue;  // keep the mutate run cheap
    SimRunConfig cfg;
    cfg.seed = c.seed;
    cfg.faults = c.faults;
    cfg.workload = c.workload;
    cfg.steps = 80;
    auto run = RunSimulation(cfg);
    ASSERT_TRUE(run.ok());
    total += run->report.violations.size();
  }
  EXPECT_GE(total, 1u);
}
#endif

#ifdef RCC_PLANCACHE_MUTATE
TEST(SimSeedMatrixTest, PlanCacheMutationIsCaughtSomewhere) {
  // The degrade-blind cache key only bites when the runner re-executes a
  // pooled text under a different mode than the one its plan was cached
  // under, *while* remote is unavailable and the replica is stale enough
  // for the modes to disagree — either as an unauthorized stale serve (R3)
  // or as a refusal on an ALWAYS session with certified guards (R6). The
  // coincidence is much sparser than the guard skew's, so this sweep runs
  // the full matrix at 200 steps and requires the oracle to flag at least
  // one seed.
  size_t total = 0;
  for (const SeedCase& c : BuildMatrix()) {
    SimRunConfig cfg;
    cfg.seed = c.seed;
    cfg.faults = c.faults;
    cfg.workload = c.workload;
    cfg.steps = 200;
    auto run = RunSimulation(cfg);
    ASSERT_TRUE(run.ok());
    total += run->report.violations.size();
  }
  EXPECT_GE(total, 1u);
}
#endif

#ifdef RCC_FLEET_MUTATE
TEST(SimSeedMatrixTest, FleetMutationIsCaughtSomewhere) {
  // The mutated probe only lies when the highest-numbered node's
  // certification is withdrawn at route time, i.e. while a poisoned delivery
  // has it quarantined or resyncing — and only replication-fault mixes
  // poison. Queries are ~60% of steps, so any quarantine window of the
  // mutated node that overlaps one routed query is caught by the
  // route-heartbeat rule. Sweep the full 25-seed matrix as three-node fleets
  // and require at least one flagged violation.
  size_t total = 0;
  for (const SeedCase& c : BuildMatrix()) {
    SimRunConfig cfg;
    cfg.seed = c.seed;
    cfg.faults = c.faults;
    cfg.steps = 80;
    cfg.fleet_nodes = 3;
    auto run = RunSimulation(cfg);
    ASSERT_TRUE(run.ok());
    total += run->report.violations.size();
  }
  EXPECT_GE(total, 1u);
}
#endif

#ifdef RCC_MVCC_MUTATE
TEST(SimSeedMatrixTest, MvccMutationIsCaughtSomewhere) {
  // The stale-heartbeat publication only matters when a guard probes or a
  // local serve records a heartbeat *after* a delivery that should have
  // advanced it — the oracle replays the delivery schedule independently and
  // derives the heartbeat each snapshot ought to carry, so any region that
  // receives at least one non-empty batch before being read disagrees. Sweep
  // the full 25-seed matrix and require at least one flagged violation.
  size_t total = 0;
  for (const SeedCase& c : BuildMatrix()) {
    SimRunConfig cfg;
    cfg.seed = c.seed;
    cfg.faults = c.faults;
    cfg.workload = c.workload;
    cfg.steps = 80;
    auto run = RunSimulation(cfg);
    ASSERT_TRUE(run.ok());
    total += run->report.violations.size();
  }
  EXPECT_GE(total, 1u);
}
#endif

}  // namespace
}  // namespace sim
}  // namespace rcc
