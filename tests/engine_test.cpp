#include <gtest/gtest.h>

#include "test_util.h"

namespace rcc {
namespace {

using testing_util::MustExecute;

// -- BackendServer -------------------------------------------------------------

TEST(BackendTest, CreateTableAndLoad) {
  RccSystem sys;
  TableDef def;
  def.name = "T";
  def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
  def.clustered_key = {"k"};
  ASSERT_TRUE(sys.backend()->CreateTable(def).ok());
  EXPECT_EQ(sys.backend()->CreateTable(def).code(),
            StatusCode::kAlreadyExists);
  std::vector<Row> rows;
  for (int64_t i = 1; i <= 10; ++i) {
    rows.push_back({Value::Int(i), Value::Int(i * i)});
  }
  ASSERT_TRUE(sys.backend()->BulkLoad("T", rows).ok());
  EXPECT_EQ(sys.backend()->table("T")->num_rows(), 10u);
  EXPECT_EQ(sys.backend()->catalog().GetStats("T").row_count, 10);
  EXPECT_TRUE(sys.backend()->BulkLoad("nope", rows).IsNotFound());
}

TEST(BackendTest, TransactionsAppendToLogWithTimestamps) {
  RccSystem sys;
  TableDef def;
  def.name = "T";
  def.schema = Schema({{"k", ValueType::kInt64}, {"v", ValueType::kInt64}});
  def.clustered_key = {"k"};
  ASSERT_TRUE(sys.backend()->CreateTable(def).ok());

  sys.AdvanceTo(100);
  RowOp ins;
  ins.kind = RowOp::Kind::kInsert;
  ins.table = "T";
  ins.row = {Value::Int(1), Value::Int(10)};
  auto t1 = sys.backend()->ExecuteTransaction({ins});
  ASSERT_TRUE(t1.ok());

  sys.AdvanceTo(200);
  RowOp upd;
  upd.kind = RowOp::Kind::kUpdate;
  upd.table = "T";
  upd.row = {Value::Int(1), Value::Int(20)};
  auto t2 = sys.backend()->ExecuteTransaction({upd});
  ASSERT_TRUE(t2.ok());
  EXPECT_GT(*t2, *t1);

  const UpdateLog& log = sys.backend()->log();
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.at(0).commit_time, 100);
  EXPECT_EQ(log.at(1).commit_time, 200);
  // Delete fills in the key.
  EXPECT_EQ(log.at(1).ops[0].key.size(), 1u);

  // Failing ops surface.
  RowOp bad;
  bad.kind = RowOp::Kind::kDelete;
  bad.table = "T";
  bad.key = {Value::Int(99)};
  EXPECT_TRUE(sys.backend()->ExecuteTransaction({bad}).status().IsNotFound());
}

TEST(BackendTest, ExecutesQueriesOverBaseTables) {
  testing_util::BookstoreFixture fx;
  auto stmt = ParseSelect("SELECT count(*) FROM Books");
  ASSERT_TRUE(stmt.ok());
  auto result = fx.sys.backend()->ExecuteQuery(**stmt);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows[0][0].AsInt(), 500);
}

// -- CacheDbms setup ---------------------------------------------------------------

TEST(CacheSetupTest, ShadowCopiesSchemaAndStats) {
  testing_util::BookstoreFixture fx;
  const Catalog& shadow = fx.sys.cache()->catalog();
  ASSERT_NE(shadow.FindTable("Books"), nullptr);
  EXPECT_EQ(shadow.GetStats("Books").row_count,
            fx.sys.backend()->catalog().GetStats("Books").row_count);
}

TEST(CacheSetupTest, ViewValidation) {
  testing_util::BookstoreFixture fx;
  ViewDef v;
  v.name = "bad";
  v.source_table = "Missing";
  v.columns = {"x"};
  v.region = 1;
  EXPECT_FALSE(fx.sys.cache()->CreateView(v).ok());

  v.source_table = "Books";
  v.columns = {"isbn", "nosuch"};
  EXPECT_FALSE(fx.sys.cache()->CreateView(v).ok());

  v.columns = {"isbn", "price"};
  v.region = 99;
  EXPECT_FALSE(fx.sys.cache()->CreateView(v).ok());
}

TEST(CacheSetupTest, RegionRedefinitionRejected) {
  testing_util::BookstoreFixture fx;
  RegionDef dup;
  dup.cid = 1;
  dup.update_interval = 1000;
  EXPECT_EQ(fx.sys.cache()->DefineRegion(dup).code(),
            StatusCode::kAlreadyExists);
}

// -- Partitioned selection views -----------------------------------------------

class PartitionedViewTest : public ::testing::Test {
 protected:
  PartitionedViewTest() {
    TpcdConfig config;
    config.scale = 0.005;
    EXPECT_TRUE(LoadTpcd(&sys_, config).ok());
    RegionDef r1;
    r1.cid = 1;
    r1.update_interval = 10000;
    r1.update_delay = 2000;
    RegionDef r2 = r1;
    r2.cid = 2;
    EXPECT_TRUE(sys_.cache()->DefineRegion(r1).ok());
    EXPECT_TRUE(sys_.cache()->DefineRegion(r2).ok());

    // Customer partitioned by nation: low nations cached in R1, high in R2.
    ViewDef low;
    low.name = "cust_low_nation";
    low.source_table = "Customer";
    low.columns = {"c_custkey", "c_name", "c_nationkey", "c_acctbal"};
    low.predicate = {ColumnRange{"c_nationkey", Value::Int(0), Value::Int(11)}};
    low.region = 1;
    EXPECT_TRUE(sys_.cache()->CreateView(low).ok());

    ViewDef high = low;
    high.name = "cust_high_nation";
    high.predicate = {
        ColumnRange{"c_nationkey", Value::Int(12), Value::Int(24)}};
    high.region = 2;
    EXPECT_TRUE(sys_.cache()->CreateView(high).ok());
    session_ = sys_.CreateSession();
  }

  RccSystem sys_;
  std::unique_ptr<Session> session_;
};

TEST_F(PartitionedViewTest, PartitionsSplitTheTable) {
  size_t low = sys_.cache()->view("cust_low_nation")->data().num_rows();
  size_t high = sys_.cache()->view("cust_high_nation")->data().num_rows();
  EXPECT_EQ(low + high, sys_.backend()->table("Customer")->num_rows());
  EXPECT_GT(low, 0u);
  EXPECT_GT(high, 0u);
}

TEST_F(PartitionedViewTest, QueryInsidePartitionUsesIt) {
  QueryResult r = MustExecute(
      session_.get(),
      "SELECT c_custkey FROM Customer C "
      "WHERE C.c_nationkey >= 2 AND C.c_nationkey <= 5 "
      "CURRENCY BOUND 10 MIN ON (C)");
  EXPECT_EQ(r.shape, PlanShape::kAllLocal);
  EXPECT_GT(r.rows.size(), 0u);
  // Cross-check against the back-end.
  QueryResult ground = MustExecute(
      session_.get(),
      "SELECT c_custkey FROM Customer C "
      "WHERE C.c_nationkey >= 2 AND C.c_nationkey <= 5");
  EXPECT_EQ(r.rows.size(), ground.rows.size());
}

TEST_F(PartitionedViewTest, QuerySpanningPartitionsGoesRemote) {
  // No single view subsumes nations 8..16; single-view substitution only
  // (like the prototype), so the query runs remotely.
  QueryResult r = MustExecute(
      session_.get(),
      "SELECT c_custkey FROM Customer C "
      "WHERE C.c_nationkey >= 8 AND C.c_nationkey <= 16 "
      "CURRENCY BOUND 10 MIN ON (C)");
  EXPECT_EQ(r.shape, PlanShape::kRemoteOnly);
}

TEST_F(PartitionedViewTest, QueryWithoutPartitionPredicateGoesRemote) {
  QueryResult r = MustExecute(session_.get(),
                              "SELECT c_custkey FROM Customer C "
                              "WHERE C.c_acctbal > 0 "
                              "CURRENCY BOUND 10 MIN ON (C)");
  EXPECT_EQ(r.shape, PlanShape::kRemoteOnly);
}

TEST_F(PartitionedViewTest, PartitionMaintainedAcrossMovingUpdate) {
  // Move customer 1 from a low nation to a high nation; after propagation
  // the row must migrate between the partitioned views.
  const Row* row = sys_.backend()->table("Customer")->Get({Value::Int(1)});
  ASSERT_NE(row, nullptr);
  Row updated = *row;
  updated[2] = Value::Int(20);  // high partition
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.table = "Customer";
  op.row = updated;
  ASSERT_TRUE(sys_.backend()->ExecuteTransaction({op}).ok());
  sys_.AdvanceTo(15000);  // wakeups at 10s + 2s delay
  EXPECT_EQ(sys_.cache()->view("cust_low_nation")->data().Get(
                {Value::Int(1)}),
            nullptr);
  ASSERT_NE(sys_.cache()->view("cust_high_nation")->data().Get(
                {Value::Int(1)}),
            nullptr);
}

// -- Replica-only mode (traditional replicated database, paper §1) ---------------

class ReplicaOnlyTest : public ::testing::Test {
 protected:
  ReplicaOnlyTest() : fx_(10000, 2000) { fx_.sys.AdvanceTo(30000); }

  Result<QueryPlan> PrepareReplicaOnly(const std::string& sql) {
    auto select = ParseSelect(sql);
    EXPECT_TRUE(select.ok());
    OptimizerOptions opts = fx_.sys.cache()->default_options();
    opts.allow_remote = false;
    return fx_.sys.cache()->Prepare(**select, opts);
  }

  testing_util::BookstoreFixture fx_;
};

TEST_F(ReplicaOnlyTest, RelaxedQueryRunsOnReplica) {
  auto plan = PrepareReplicaOnly(
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 MIN ON (B)");
  ASSERT_TRUE(plan.ok());
  auto outcome = fx_.sys.cache()->ExecutePrepared(*plan);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->stats.switch_local, 1);
}

TEST_F(ReplicaOnlyTest, UnsatisfiableBoundFailsAtCompileTime) {
  // Bound below the region delay: no replica can ever satisfy it and there
  // is no back-end fallback.
  auto plan = PrepareReplicaOnly(
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 SECONDS ON (B)");
  EXPECT_TRUE(plan.status().IsConstraintViolation());
}

TEST_F(ReplicaOnlyTest, StaleReplicaFailsAtRunTime) {
  auto plan = PrepareReplicaOnly(
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 6 SECONDS ON (B)");
  ASSERT_TRUE(plan.ok());
  // Find a moment where staleness exceeds 6s (cycle spans 2..12s).
  CurrencyRegion* region = fx_.sys.cache()->region(1);
  fx_.sys.AdvanceTo(region->local_heartbeat() + 8000);
  auto outcome = fx_.sys.cache()->ExecutePrepared(*plan);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kUnavailable);
}

TEST_F(ReplicaOnlyTest, DefaultTightQueryImpossible) {
  auto plan = PrepareReplicaOnly("SELECT isbn FROM Books B WHERE B.isbn = 1");
  EXPECT_TRUE(plan.status().IsConstraintViolation());
}

}  // namespace
}  // namespace rcc
