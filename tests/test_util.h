#ifndef RCC_TESTS_TEST_UTIL_H_
#define RCC_TESTS_TEST_UTIL_H_

#include <gtest/gtest.h>

#include "core/rcc.h"
#include "workload/bookstore.h"
#include "workload/tpcd.h"

namespace rcc {
namespace testing_util {

/// Executes a SELECT through a session, asserting success.
inline QueryResult MustExecute(Session* session, const std::string& sql) {
  auto result = session->Execute(sql);
  EXPECT_TRUE(result.ok()) << sql << "\n  -> " << result.status().ToString();
  return result.ok() ? std::move(*result) : QueryResult{};
}

/// Optimizes a SELECT, asserting success.
inline QueryPlan MustPrepare(Session* session, const std::string& sql) {
  auto plan = session->Prepare(sql);
  EXPECT_TRUE(plan.ok()) << sql << "\n  -> " << plan.status().ToString();
  if (!plan.ok()) return QueryPlan{};
  return std::move(*plan);
}

/// Single-column integer result values, in row order.
inline std::vector<int64_t> IntColumn(const QueryResult& result,
                                      size_t col = 0) {
  std::vector<int64_t> out;
  for (const Row& row : result.rows) {
    out.push_back(row[col].is_int()
                      ? row[col].AsInt()
                      : static_cast<int64_t>(row[col].AsDouble()));
  }
  return out;
}

/// A tiny fully-wired system over the bookstore schema, with both regions
/// refreshing every `interval_ms` after `delay_ms`.
struct BookstoreFixture {
  RccSystem sys;
  std::unique_ptr<Session> session;

  explicit BookstoreFixture(SimTimeMs interval_ms = 10000,
                            SimTimeMs delay_ms = 2000,
                            BookstoreConfig config = {}) {
    EXPECT_TRUE(LoadBookstore(&sys, config).ok());
    EXPECT_TRUE(SetupBookstoreCache(&sys, interval_ms, delay_ms).ok());
    session = sys.CreateSession();
  }
};

/// TPCD fixture with the paper's cache configuration (Table 4.1).
struct TpcdFixture {
  RccSystem sys;
  std::unique_ptr<Session> session;

  explicit TpcdFixture(double scale = 0.01) {
    TpcdConfig config;
    config.scale = scale;
    EXPECT_TRUE(LoadTpcd(&sys, config).ok());
    EXPECT_TRUE(SetupPaperCache(&sys).ok());
    session = sys.CreateSession();
  }
};

}  // namespace testing_util
}  // namespace rcc

#endif  // RCC_TESTS_TEST_UTIL_H_
