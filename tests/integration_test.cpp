#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/strings.h"
#include "test_util.h"
#include "workload/driver.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::MustExecute;
using testing_util::MustPrepare;
using testing_util::TpcdFixture;

// End-to-end invariant: whatever the virtual time and guard outcome, the
// data sources a plan reads satisfy its C&C constraint — validated against
// the appendix-semantics model interpreting the back-end update log.
class ConstraintInvariantTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ConstraintInvariantTest, AllPlansVerifyAtRandomTimes) {
  BookstoreFixture fx(/*interval_ms=*/8000, /*delay_ms=*/1500);
  // Update traffic so staleness is real.
  StartUpdateTraffic(&fx.sys, /*period_ms=*/700, /*seed=*/GetParam());
  // (bookstore tables unaffected by TPCD updater; generate our own traffic)
  BackendServer* backend = fx.sys.backend();
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    fx.sys.AdvanceBy(rng.Uniform(200, 1500));
    int64_t isbn = rng.Uniform(1, 500);
    const Row* row = backend->table("Books")->Get({Value::Int(isbn)});
    ASSERT_NE(row, nullptr);
    Row updated = *row;
    updated[2] = Value::Double(updated[2].AsDouble() + 1);
    RowOp op;
    op.kind = RowOp::Kind::kUpdate;
    op.table = "Books";
    op.row = updated;
    ASSERT_TRUE(backend->ExecuteTransaction({op}).ok());
  }

  const char* queries[] = {
      "SELECT isbn, price FROM Books B WHERE B.isbn < 50 "
      "CURRENCY BOUND 20 SECONDS ON (B)",
      "SELECT isbn, price FROM Books B WHERE B.isbn < 50 "
      "CURRENCY BOUND 5 SECONDS ON (B)",
      "SELECT isbn, price FROM Books B WHERE B.isbn < 50 "
      "CURRENCY BOUND 1 SECONDS ON (B)",
      "SELECT B.isbn, R.rating FROM Books B, Reviews R "
      "WHERE B.isbn = R.isbn AND B.isbn < 20 "
      "CURRENCY BOUND 15 SECONDS ON (B, R)",
      "SELECT B.isbn, S.amount FROM Books B, Sales S "
      "WHERE B.isbn = S.isbn AND B.isbn < 20 "
      "CURRENCY BOUND 30 SECONDS ON (B), 30 SECONDS ON (S)",
      "SELECT B.isbn FROM Books B WHERE B.isbn < 30",
  };
  for (const char* sql : queries) {
    QueryPlan plan = MustPrepare(fx.session.get(), sql);
    ASSERT_NE(plan.root, nullptr) << sql;
    for (int probe = 0; probe < 6; ++probe) {
      fx.sys.AdvanceBy(rng.Uniform(300, 4000));
      EXPECT_TRUE(fx.session->VerifyConstraint(plan).ok())
          << sql << " at t=" << fx.sys.Now();
      // Executing really works too.
      auto outcome = fx.sys.cache()->ExecutePrepared(plan);
      ASSERT_TRUE(outcome.ok()) << sql;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintInvariantTest,
                         ::testing::Values(11, 22, 33, 44));

TEST(IntegrationTest, WorkloadShiftsWithBound) {
  // Fig 4.2(a) qualitatively: larger bounds -> more local executions.
  TpcdFixture fx(0.005);
  fx.sys.AdvanceTo(30000);
  const char* fmt =
      "SELECT c_custkey FROM Customer C WHERE C.c_acctbal > 1000 "
      "CURRENCY BOUND %lld SECONDS ON (C)";
  double prev = -0.01;
  for (long long bound : {6LL, 10LL, 15LL, 25LL}) {
    auto run = RunUniformWorkload(&fx.sys, StrPrintf(fmt, bound),
                                  /*executions=*/60, /*horizon=*/60000,
                                  /*seed=*/bound);
    ASSERT_TRUE(run.ok());
    EXPECT_GE(run->LocalFraction(), prev - 0.15)
        << "bound " << bound;  // allow sampling noise, but trend upward
    prev = run->LocalFraction();
  }
  // Extremes are exact.
  auto never = RunUniformWorkload(
      &fx.sys,
      "SELECT c_custkey FROM Customer C WHERE C.c_acctbal > 1000 "
      "CURRENCY BOUND 5 SECONDS ON (C)",
      40, 40000, 5);
  ASSERT_TRUE(never.ok());
  EXPECT_EQ(never->local, 0);
  auto always = RunUniformWorkload(
      &fx.sys,
      "SELECT c_custkey FROM Customer C WHERE C.c_acctbal > 1000 "
      "CURRENCY BOUND 60 SECONDS ON (C)",
      40, 40000, 6);
  ASSERT_TRUE(always.ok());
  EXPECT_EQ(always->remote, 0);
}

TEST(IntegrationTest, MeasuredLocalFractionMatchesPFormula) {
  // The measured local fraction of a guarded query tracks the cost model's
  // p = (B - d) / f (paper Eq. (1) / Fig 4.2).
  TpcdFixture fx(0.005);
  fx.sys.AdvanceTo(30000);
  // CR1: f = 15s, d = 5s. B = 12.5s => p = 0.5.
  auto run = RunUniformWorkload(
      &fx.sys,
      "SELECT c_custkey FROM Customer C WHERE C.c_acctbal > 1000 "
      "CURRENCY BOUND 12500 MS ON (C)",
      400, 400000, 7);
  ASSERT_TRUE(run.ok());
  EXPECT_NEAR(run->LocalFraction(), 0.5, 0.12);
}

TEST(IntegrationTest, RemoteQueriesCountedAndRowsMatch) {
  TpcdFixture fx(0.005);
  QueryResult tight = MustExecute(
      fx.session.get(),
      "SELECT c_custkey FROM Customer C WHERE C.c_custkey <= 10");
  EXPECT_EQ(tight.stats.remote_queries, 1);
  EXPECT_EQ(tight.rows.size(), 10u);
  QueryResult relaxed = MustExecute(
      fx.session.get(),
      "SELECT c_custkey FROM Customer C WHERE C.c_custkey <= 10 "
      "CURRENCY BOUND 10 MIN ON (C)");
  EXPECT_EQ(relaxed.stats.remote_queries, 0);
  EXPECT_EQ(relaxed.rows.size(), 10u);
}

TEST(IntegrationTest, InsertDeleteReplicateToViews) {
  BookstoreFixture fx(5000, 1000);
  BackendServer* backend = fx.sys.backend();
  // Insert a new book at t=100.
  fx.sys.AdvanceTo(100);
  RowOp ins;
  ins.kind = RowOp::Kind::kInsert;
  ins.table = "Books";
  ins.row = {Value::Int(9999), Value::Str("New Book"), Value::Double(10.0),
             Value::Int(1)};
  ASSERT_TRUE(backend->ExecuteTransaction({ins}).ok());

  const char* sql =
      "SELECT isbn FROM Books B WHERE B.isbn = 9999 "
      "CURRENCY BOUND 1 HOUR ON (B)";
  QueryResult before = MustExecute(fx.session.get(), sql);
  EXPECT_EQ(before.rows.size(), 0u);  // not yet propagated
  fx.sys.AdvanceTo(7000);             // wakeup at 5s + delay 1s
  QueryResult after = MustExecute(fx.session.get(), sql);
  EXPECT_EQ(after.rows.size(), 1u);

  // Delete it again.
  RowOp del;
  del.kind = RowOp::Kind::kDelete;
  del.table = "Books";
  del.key = {Value::Int(9999)};
  ASSERT_TRUE(backend->ExecuteTransaction({del}).ok());
  fx.sys.AdvanceTo(12000);
  QueryResult gone = MustExecute(fx.session.get(), sql);
  EXPECT_EQ(gone.rows.size(), 0u);
}

TEST(IntegrationTest, MutualConsistencyWithinRegionAlways) {
  // BooksCopy and SalesCopy share region 1: at any point in time they must
  // reflect the same back-end snapshot (paper §3.1 invariant).
  BookstoreFixture fx(6000, 1200);
  BackendServer* backend = fx.sys.backend();
  Rng rng(5);
  for (int round = 0; round < 30; ++round) {
    fx.sys.AdvanceBy(rng.Uniform(500, 2500));
    // Alternate updates to Books and Sales.
    int64_t isbn = rng.Uniform(1, 500);
    const Row* b = backend->table("Books")->Get({Value::Int(isbn)});
    if (b != nullptr) {
      Row upd = *b;
      upd[3] = Value::Int(upd[3].AsInt() + 1);
      RowOp op;
      op.kind = RowOp::Kind::kUpdate;
      op.table = "Books";
      op.row = upd;
      ASSERT_TRUE(backend->ExecuteTransaction({op}).ok());
    }
    const CurrencyRegion* r1 = fx.sys.cache()->region(1);
    ASSERT_NE(r1, nullptr);
    std::vector<semantics::CopyState> copies;
    for (const auto& view : r1->views()) {
      copies.push_back(
          semantics::CopyState{view->def().source_table, r1->as_of()});
    }
    EXPECT_TRUE(semantics::MutuallyConsistent(backend->log(), copies));
  }
}

TEST(IntegrationTest, PaperQ2EndToEnd) {
  // The multi-block Q2 shape: derived table + outer consistency class.
  BookstoreFixture fx(8000, 1500);
  QueryResult r = MustExecute(
      fx.session.get(),
      "SELECT T.isbn, S.amount FROM Sales S, "
      "(SELECT B.isbn AS isbn FROM Books B, Reviews R "
      " WHERE B.isbn = R.isbn AND B.isbn < 10 "
      " CURRENCY BOUND 10 MIN ON (B, R)) T "
      "WHERE S.isbn = T.isbn "
      "CURRENCY BOUND 5 MIN ON (S, T)");
  // Normalized to one class over S, B, R: the three views span two regions,
  // so a local plan cannot satisfy it — but the result itself must be right.
  for (const Row& row : r.rows) {
    EXPECT_LT(row[0].AsInt(), 10);
  }
  ASSERT_EQ(r.constraint.tuples.size(), 1u);
  EXPECT_EQ(r.constraint.tuples[0].bound_ms, 5 * 60000);
}

TEST(IntegrationTest, StaleViewDetectedByVerifier) {
  // Sanity-check the verifier itself: an unguarded (ablation) plan over a
  // stale view must FAIL verification once updates outpace the bound.
  BookstoreFixture fx(/*interval_ms=*/50000, /*delay_ms=*/1000);
  BackendServer* backend = fx.sys.backend();
  fx.sys.AdvanceTo(2000);
  const Row* b = backend->table("Books")->Get({Value::Int(1)});
  Row upd = *b;
  upd[2] = Value::Double(1.23);
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.table = "Books";
  op.row = upd;
  ASSERT_TRUE(backend->ExecuteTransaction({op}).ok());
  fx.sys.AdvanceTo(30000);  // no delivery yet (interval 50s)

  auto select = ParseSelect(
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 5 SECONDS ON (B)");
  ASSERT_TRUE(select.ok());
  OptimizerOptions opts = fx.sys.cache()->default_options();
  opts.enable_currency_guards = false;  // unsound ablation mode
  auto plan = fx.sys.cache()->Prepare(**select, opts);
  ASSERT_TRUE(plan.ok());
  Status verdict = fx.session->VerifyConstraint(*plan);
  EXPECT_TRUE(verdict.IsConstraintViolation()) << verdict.ToString();
  // The guarded plan for the same query verifies fine.
  QueryPlan guarded = MustPrepare(
      fx.session.get(),
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 5 SECONDS ON (B)");
  EXPECT_TRUE(fx.session->VerifyConstraint(guarded).ok());
}

}  // namespace
}  // namespace rcc
