// Fault injection and resilience on the cache↔back-end link: the injector,
// the retry/timeout/breaker policy, and graceful degradation to local views
// (DegradeMode), including the timeline-consistency floor and the
// outage-survival thresholds enforced as acceptance criteria.

#include <gtest/gtest.h>

#include "backend/fault_injector.h"
#include "exec/remote_policy.h"
#include "test_util.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::MustExecute;

// -- FaultInjector ------------------------------------------------------------

TEST(FaultInjectorTest, ExplicitOutageWindows) {
  FaultInjectorConfig config;
  config.outages = {{1000, 2000}, {5000, 5500}};
  VirtualClock clock;
  FaultInjector injector(config, &clock);
  EXPECT_FALSE(injector.InOutage(999));
  EXPECT_TRUE(injector.InOutage(1000));
  EXPECT_TRUE(injector.InOutage(1999));
  EXPECT_FALSE(injector.InOutage(2000));
  EXPECT_TRUE(injector.InOutage(5250));
  EXPECT_FALSE(injector.InOutage(10000));
}

TEST(FaultInjectorTest, PeriodicOutageSchedule) {
  FaultInjectorConfig config;
  config.outage_period_ms = 20000;
  config.outage_down_ms = 6000;  // 30% down
  VirtualClock clock;
  FaultInjector injector(config, &clock);
  EXPECT_TRUE(injector.InOutage(0));
  EXPECT_TRUE(injector.InOutage(5999));
  EXPECT_FALSE(injector.InOutage(6000));
  EXPECT_FALSE(injector.InOutage(19999));
  EXPECT_TRUE(injector.InOutage(20000));
  EXPECT_TRUE(injector.InOutage(25999));
  EXPECT_FALSE(injector.InOutage(26000));
}

TEST(FaultInjectorTest, OutagePreemptsInnerCall) {
  FaultInjectorConfig config;
  config.outages = {{0, 10000}};
  VirtualClock clock;
  FaultInjector injector(config, &clock);
  int inner_calls = 0;
  SelectStmt stmt;
  RemoteAttempt attempt = injector.Execute(stmt, [&](const SelectStmt&) {
    ++inner_calls;
    return Result<RemoteResult>(RemoteResult{});
  });
  EXPECT_EQ(inner_calls, 0);
  EXPECT_TRUE(attempt.status.IsUnavailable());
  EXPECT_EQ(injector.injected_errors(), 1);
  EXPECT_EQ(injector.attempts(), 1);
}

TEST(FaultInjectorTest, TransientErrorsAndSpikes) {
  FaultInjectorConfig config;
  config.base_latency_ms = 2;
  config.transient_error_probability = 1.0;
  VirtualClock clock;
  FaultInjector injector(config, &clock);
  SelectStmt stmt;
  auto inner = [](const SelectStmt&) {
    return Result<RemoteResult>(RemoteResult{});
  };
  EXPECT_TRUE(injector.Execute(stmt, inner).status.IsUnavailable());
  EXPECT_EQ(injector.injected_errors(), 1);

  FaultInjectorConfig spiky;
  spiky.base_latency_ms = 2;
  spiky.spike_probability = 1.0;
  spiky.spike_latency_ms = 5000;
  FaultInjector slow(spiky, &clock);
  RemoteAttempt attempt = slow.Execute(stmt, inner);
  EXPECT_TRUE(attempt.status.ok());
  EXPECT_EQ(attempt.latency_ms, 5002);
  EXPECT_EQ(slow.injected_spikes(), 1);
}

TEST(FaultInjectorTest, SameSeedSameFaultSchedule) {
  FaultInjectorConfig config;
  config.seed = 99;
  config.latency_jitter_ms = 10;
  config.transient_error_probability = 0.4;
  config.spike_probability = 0.2;
  config.spike_latency_ms = 500;
  VirtualClock clock;
  FaultInjector a(config, &clock);
  FaultInjector b(config, &clock);
  SelectStmt stmt;
  auto inner = [](const SelectStmt&) {
    return Result<RemoteResult>(RemoteResult{});
  };
  for (int i = 0; i < 50; ++i) {
    RemoteAttempt ra = a.Execute(stmt, inner);
    RemoteAttempt rb = b.Execute(stmt, inner);
    EXPECT_EQ(ra.status.ok(), rb.status.ok()) << "attempt " << i;
    EXPECT_EQ(ra.latency_ms, rb.latency_ms) << "attempt " << i;
  }
}

// -- ResilientRemoteExecutor --------------------------------------------------

class PolicyTest : public ::testing::Test {
 protected:
  /// Builds an executor whose Wait advances the virtual clock (as the real
  /// wiring does via the simulation scheduler).
  ResilientRemoteExecutor MakeExecutor(RemotePolicy policy,
                                       RemoteAttemptFn attempt) {
    return ResilientRemoteExecutor(
        policy, std::move(attempt), &clock_,
        [this](SimTimeMs delta) { clock_.AdvanceBy(delta); });
  }

  VirtualClock clock_;
  ExecStats stats_;
  SelectStmt stmt_;
};

TEST_F(PolicyTest, FirstAttemptSuccessHasNoRetries) {
  RemotePolicy policy;
  auto exec = MakeExecutor(policy, [](const SelectStmt&) {
    RemoteAttempt a;
    a.latency_ms = 2;
    return a;
  });
  EXPECT_TRUE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_EQ(stats_.remote_retries, 0);
  EXPECT_EQ(clock_.Now(), 2);  // waited only the attempt latency
}

TEST_F(PolicyTest, RetriesThenSucceeds) {
  RemotePolicy policy;
  policy.backoff_base_ms = 50;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter_ms = 0;
  int calls = 0;
  auto exec = MakeExecutor(policy, [&](const SelectStmt&) {
    RemoteAttempt a;
    a.latency_ms = 2;
    if (++calls <= 2) a.status = Status::Unavailable("flaky");
    return a;
  });
  EXPECT_TRUE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats_.remote_retries, 2);
  // 3 attempts of 2ms plus backoffs 50*2^1 = 100 and 50*2^2 = 200.
  EXPECT_EQ(clock_.Now(), 306);
  EXPECT_EQ(exec.consecutive_failures(), 0);
}

TEST_F(PolicyTest, BackoffFollowsDocumentedSchedule) {
  // Regression for a doc/code mismatch: the policy contract promises the
  // delay before retry i (1-based) is base * multiplier^i, but the executor
  // used to compute base * multiplier^(i-1). With jitter off, each delay is
  // exactly the documented value.
  RemotePolicy policy;
  policy.max_retries = 3;
  policy.backoff_base_ms = 100;
  policy.backoff_multiplier = 3.0;
  policy.backoff_jitter_ms = 0;
  policy.breaker_threshold = 0;
  std::vector<SimTimeMs> waits;
  ResilientRemoteExecutor exec(
      policy,
      [](const SelectStmt&) {
        RemoteAttempt a;
        a.status = Status::Unavailable("down");
        return a;
      },
      &clock_, [&](SimTimeMs delta) { waits.push_back(delta); });
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_EQ(waits[0], 300);   // 100 * 3^1
  EXPECT_EQ(waits[1], 900);   // 100 * 3^2
  EXPECT_EQ(waits[2], 2700);  // 100 * 3^3
}

TEST_F(PolicyTest, BackoffJitterIsSeedDeterministic) {
  // Same seed -> identical jittered delays; the documented schedule is the
  // lower edge of each jitter window.
  RemotePolicy policy;
  policy.max_retries = 2;
  policy.backoff_base_ms = 100;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter_ms = 50;
  policy.breaker_threshold = 0;
  policy.seed = 1234;
  auto failing = [](const SelectStmt&) {
    RemoteAttempt a;
    a.status = Status::Unavailable("down");
    return a;
  };
  std::vector<SimTimeMs> first;
  std::vector<SimTimeMs> second;
  {
    ResilientRemoteExecutor exec(policy, failing, &clock_,
                                 [&](SimTimeMs d) { first.push_back(d); });
    EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  }
  {
    ResilientRemoteExecutor exec(policy, failing, &clock_,
                                 [&](SimTimeMs d) { second.push_back(d); });
    EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  }
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first, second);
  EXPECT_GE(first[0], 200);  // 100 * 2^1 + [0, 50]
  EXPECT_LE(first[0], 250);
  EXPECT_GE(first[1], 400);  // 100 * 2^2 + [0, 50]
  EXPECT_LE(first[1], 450);
}

TEST_F(PolicyTest, BackoffGrowsExponentiallyWithBoundedJitter) {
  RemotePolicy policy;
  policy.max_retries = 3;
  policy.backoff_base_ms = 50;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter_ms = 50;
  policy.breaker_threshold = 0;
  std::vector<SimTimeMs> waits;
  ResilientRemoteExecutor exec(
      policy,
      [](const SelectStmt&) {
        RemoteAttempt a;
        a.status = Status::Unavailable("down");
        return a;
      },
      &clock_, [&](SimTimeMs delta) { waits.push_back(delta); });
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  // Waits: 3 backoffs (attempt latency is 0 here, so no attempt waits).
  ASSERT_EQ(waits.size(), 3u);
  EXPECT_GE(waits[0], 100);
  EXPECT_LE(waits[0], 150);
  EXPECT_GE(waits[1], 200);
  EXPECT_LE(waits[1], 250);
  EXPECT_GE(waits[2], 400);
  EXPECT_LE(waits[2], 450);
}

TEST_F(PolicyTest, SlowAttemptsCountAsTimeouts) {
  RemotePolicy policy;
  policy.timeout_ms = 1000;
  policy.max_retries = 1;
  policy.backoff_base_ms = 50;
  policy.backoff_jitter_ms = 0;
  policy.breaker_threshold = 0;
  auto exec = MakeExecutor(policy, [](const SelectStmt&) {
    RemoteAttempt a;
    a.latency_ms = 5000;  // back-end answers, but far too late
    return a;
  });
  Result<RemoteResult> r = exec.Execute(stmt_, &stats_);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_EQ(stats_.remote_timeouts, 2);
  EXPECT_EQ(stats_.remote_retries, 1);
  // The caller waits timeout_ms per attempt, never the full latency.
  EXPECT_EQ(clock_.Now(), 1000 + 100 + 1000);
}

TEST_F(PolicyTest, BreakerOpensFailsFastAndRecovers) {
  RemotePolicy policy;
  policy.max_retries = 0;
  policy.breaker_threshold = 2;
  policy.breaker_cooldown_ms = 5000;
  int calls = 0;
  bool healthy = false;
  auto exec = MakeExecutor(policy, [&](const SelectStmt&) {
    ++calls;
    RemoteAttempt a;
    a.latency_ms = 1;
    if (!healthy) a.status = Status::Unavailable("down");
    return a;
  });
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());  // streak 1
  EXPECT_FALSE(exec.breaker_open());
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());  // streak 2 -> opens
  EXPECT_TRUE(exec.breaker_open());
  EXPECT_EQ(exec.breaker_opens(), 1);
  EXPECT_EQ(stats_.breaker_opens, 1);

  // Open breaker fails fast: the link is not touched.
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_EQ(calls, 2);

  // After the cooldown the next call goes through (half-open probe).
  clock_.AdvanceBy(6000);
  EXPECT_FALSE(exec.breaker_open());
  healthy = true;
  EXPECT_TRUE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(exec.consecutive_failures(), 0);
}

TEST_F(PolicyTest, BreakerCooldownBoundaryIsClosed) {
  // The breaker is open strictly *before* open-until: a query arriving at
  // exactly the cooldown deadline must reach the link again, not fail fast.
  RemotePolicy policy;
  policy.max_retries = 0;
  policy.breaker_threshold = 1;
  policy.breaker_cooldown_ms = 5000;
  int calls = 0;
  auto exec = MakeExecutor(policy, [&](const SelectStmt&) {
    ++calls;
    RemoteAttempt a;
    a.status = Status::Unavailable("down");
    return a;
  });
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());  // opens at threshold 1
  ASSERT_TRUE(exec.breaker_open());
  SimTimeMs opened_at = clock_.Now();

  // One tick before the deadline: still fast-failing, the link is untouched.
  clock_.AdvanceTo(opened_at + 4999);
  EXPECT_TRUE(exec.breaker_open());
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_EQ(calls, 1);

  // At exactly the deadline the breaker reads closed and the attempt is made.
  clock_.AdvanceTo(opened_at + 5000);
  EXPECT_FALSE(exec.breaker_open());
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_EQ(calls, 2);
}

TEST_F(PolicyTest, FailureStreakRebuildsFromZeroAfterCooldown) {
  // Opening the breaker forgets the streak: after the cooldown, re-opening
  // requires a full threshold of *new* consecutive failures — pre-cooldown
  // failures must not carry over.
  RemotePolicy policy;
  policy.max_retries = 0;
  policy.breaker_threshold = 3;
  policy.breaker_cooldown_ms = 5000;
  int calls = 0;
  auto exec = MakeExecutor(policy, [&](const SelectStmt&) {
    ++calls;
    RemoteAttempt a;
    a.status = Status::Unavailable("down");
    return a;
  });
  for (int i = 0; i < 3; ++i) EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_TRUE(exec.breaker_open());
  EXPECT_EQ(exec.breaker_opens(), 1);
  EXPECT_EQ(exec.consecutive_failures(), 0);

  clock_.AdvanceBy(5000);
  EXPECT_FALSE(exec.breaker_open());
  // Two fresh failures: below the threshold, so the breaker stays closed.
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_FALSE(exec.breaker_open());
  EXPECT_EQ(exec.consecutive_failures(), 2);
  // The third completes a brand-new streak and re-opens.
  EXPECT_FALSE(exec.Execute(stmt_, &stats_).ok());
  EXPECT_TRUE(exec.breaker_open());
  EXPECT_EQ(exec.breaker_opens(), 2);
  EXPECT_EQ(calls, 6);  // every non-fast-fail call reached the link
}

// -- Graceful degradation through the full system -----------------------------

/// An injector config that makes the back-end unreachable forever.
FaultInjectorConfig PermanentOutage() {
  FaultInjectorConfig config;
  config.outages = {{0, 1000000000}};
  return config;
}

class DegradeTest : public ::testing::Test {
 protected:
  // f = 10s, d = 2s: replica staleness sweeps 2s..12s (+1s heartbeat
  // quantum); deliveries land at k*10000 + 2000.
  DegradeTest() : fx_(10000, 2000) { fx_.sys.AdvanceTo(35000); }

  /// Moves virtual time to where the Books replica is exactly `staleness_ms`
  /// stale (staleness_ms must be >= 4000 so the target is reachable from any
  /// phase of the delivery cycle without another delivery intervening).
  SimTimeMs AdvanceToStaleness(SimTimeMs staleness_ms) {
    CurrencyRegion* region = fx_.sys.cache()->region(1);
    SimTimeMs hb = region->local_heartbeat();
    SimTimeMs target = hb + staleness_ms;
    while (target < fx_.sys.Now()) {
      // Already past that staleness in this cycle: step forward until the
      // next delivery refreshes the heartbeat, then re-aim.
      fx_.sys.AdvanceTo(fx_.sys.Now() + 1000);
      SimTimeMs refreshed = region->local_heartbeat();
      if (refreshed != hb) {
        hb = refreshed;
        target = hb + staleness_ms;
      }
    }
    fx_.sys.AdvanceTo(target);
    EXPECT_EQ(region->local_heartbeat(), hb);
    return hb;
  }

  static constexpr const char* kBoundedQuery =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 6 SECONDS ON (B)";

  BookstoreFixture fx_;
};

TEST_F(DegradeTest, SetDegradeStatement) {
  Session* s = fx_.session.get();
  EXPECT_EQ(s->degrade_mode(), DegradeMode::kNone);
  QueryResult r = MustExecute(s, "SET DEGRADE BOUNDED");
  EXPECT_EQ(s->degrade_mode(), DegradeMode::kBounded);
  EXPECT_NE(r.message.find("bounded"), std::string::npos);
  MustExecute(s, "set degrade = always;");
  EXPECT_EQ(s->degrade_mode(), DegradeMode::kAlways);
  MustExecute(s, "SET DEGRADE=NONE");
  EXPECT_EQ(s->degrade_mode(), DegradeMode::kNone);
  // Unknown values are not swallowed: they fall through to the SQL parser.
  EXPECT_FALSE(s->Execute("SET DEGRADE SOMETIMES").ok());
  EXPECT_EQ(s->degrade_mode(), DegradeMode::kNone);
}

TEST_F(DegradeTest, VanillaOutageFailsStaleQueryButLocalStillServes) {
  fx_.sys.cache()->SetFaultInjector(PermanentOutage());
  AdvanceToStaleness(8000);  // guard fails -> remote branch -> outage
  auto stale = fx_.session->Execute(kBoundedQuery);
  ASSERT_FALSE(stale.ok());
  EXPECT_TRUE(stale.status().IsUnavailable());

  // A query whose replica is within bound never touches the link: the cache
  // keeps serving through the outage.
  fx_.sys.AdvanceTo(42500);  // just after the delivery at 42000
  QueryResult fresh = MustExecute(fx_.session.get(), kBoundedQuery);
  EXPECT_EQ(fresh.stats.switch_local, 1);
  EXPECT_FALSE(fresh.degraded);
}

TEST_F(DegradeTest, BoundedDegradeServesAfterDeliveryDuringBackoff) {
  fx_.sys.cache()->SetFaultInjector(PermanentOutage());
  RemotePolicy policy;
  policy.timeout_ms = 1000;
  policy.max_retries = 3;
  policy.backoff_base_ms = 2000;
  policy.backoff_multiplier = 1.0;
  policy.backoff_jitter_ms = 0;
  policy.breaker_threshold = 0;
  fx_.sys.cache()->SetRemotePolicy(policy);
  MustExecute(fx_.session.get(), "SET DEGRADE BOUNDED");

  SimTimeMs hb = AdvanceToStaleness(8000);
  // 8s stale > 6s bound -> remote; every attempt hits the outage, but the
  // ~6s retry budget straddles the next replication delivery (hb + 12000),
  // so the degrade re-probe finds the replica back within bound.
  QueryResult r = MustExecute(fx_.session.get(), kBoundedQuery);
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.advisory.IsStaleOk());
  EXPECT_GT(r.staleness_ms, 0);
  EXPECT_LE(r.staleness_ms, 6000);
  EXPECT_EQ(r.stats.remote_retries, 3);
  EXPECT_EQ(r.stats.degraded_serves, 1);
  // Truthful switch accounting (regression): the guard directed the query at
  // the remote branch, but the rows were finally served locally — so this is
  // an attempted remote switch and a local serve, not a remote one.
  EXPECT_EQ(r.stats.switch_remote_attempted, 1);
  EXPECT_EQ(r.stats.switch_remote, 0);
  EXPECT_EQ(r.stats.switch_local, 1);
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 1);
  // The serve really read the refreshed replica, not the one from arrival.
  SimTimeMs hb_after = fx_.sys.cache()->region(1)->local_heartbeat();
  EXPECT_GT(hb_after, hb);
  EXPECT_EQ(r.staleness_ms, fx_.sys.Now() - hb_after);
}

TEST_F(DegradeTest, BoundedDegradeFailsWhenStillOutOfBound) {
  // No retry policy: the single attempt fails instantly, the re-probe sees
  // the same 8s staleness, and bounded mode refuses to serve.
  fx_.sys.cache()->SetFaultInjector(PermanentOutage());
  MustExecute(fx_.session.get(), "SET DEGRADE BOUNDED");
  AdvanceToStaleness(8000);
  auto r = fx_.session->Execute(kBoundedQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsUnavailable());
  EXPECT_NE(r.status().message().find("cannot degrade"), std::string::npos);
}

TEST_F(DegradeTest, AlwaysDegradeServesBeyondBoundWithExactStaleness) {
  fx_.sys.cache()->SetFaultInjector(PermanentOutage());
  MustExecute(fx_.session.get(), "SET DEGRADE ALWAYS");
  AdvanceToStaleness(8000);
  QueryResult r = MustExecute(fx_.session.get(), kBoundedQuery);
  EXPECT_TRUE(r.degraded);
  EXPECT_TRUE(r.advisory.IsStaleOk());
  EXPECT_EQ(r.staleness_ms, 8000);  // beyond the 6s bound, reported exactly
  EXPECT_NE(r.advisory.message().find("8000"), std::string::npos);
  ASSERT_EQ(r.rows.size(), 1u);
}

TEST_F(DegradeTest, TimeOrderedFloorBlocksStaleDegrade) {
  Session* s = fx_.session.get();
  MustExecute(s, "BEGIN TIMEORDERED");
  AdvanceToStaleness(8000);
  // Healthy link: the stale-guard query runs remotely and lifts the floor to
  // the back-end snapshot time ("now").
  QueryResult remote = MustExecute(s, kBoundedQuery);
  EXPECT_EQ(remote.stats.switch_remote, 1);
  EXPECT_EQ(s->timeline_floor(), fx_.sys.Now());

  // Now the link dies. Even DEGRADE ALWAYS must not serve the replica: its
  // heartbeat is below what this session has already seen.
  fx_.sys.cache()->SetFaultInjector(PermanentOutage());
  MustExecute(s, "SET DEGRADE ALWAYS");
  auto r = s->Execute(kBoundedQuery);
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsConstraintViolation());
  EXPECT_NE(r.status().message().find("timeline floor"), std::string::npos);
}

TEST_F(DegradeTest, TimeOrderedFloorHoldsAcrossDegradedServes) {
  Session* s = fx_.session.get();
  MustExecute(s, "BEGIN TIMEORDERED");
  fx_.sys.AdvanceTo(42500);  // fresh: delivery at 42000
  QueryResult local = MustExecute(s, kBoundedQuery);
  EXPECT_EQ(local.stats.switch_local, 1);
  SimTimeMs floor = s->timeline_floor();
  EXPECT_EQ(floor, fx_.sys.cache()->region(1)->local_heartbeat());

  // Degraded serve from the same replica snapshot: heartbeat == floor is
  // allowed, and the floor never regresses.
  fx_.sys.cache()->SetFaultInjector(PermanentOutage());
  MustExecute(s, "SET DEGRADE ALWAYS");
  AdvanceToStaleness(8000);
  QueryResult r = MustExecute(s, kBoundedQuery);
  EXPECT_TRUE(r.degraded);
  EXPECT_EQ(r.staleness_ms, 8000);
  EXPECT_EQ(s->timeline_floor(), floor);
}

TEST_F(DegradeTest, BreakerTripsAcrossQueriesAndRecovers) {
  fx_.sys.cache()->SetFaultInjector(PermanentOutage());
  RemotePolicy policy;
  policy.max_retries = 0;
  policy.breaker_threshold = 2;
  policy.breaker_cooldown_ms = 5000;
  fx_.sys.cache()->SetRemotePolicy(policy);
  const char* query =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 3 SECONDS ON (B)";

  AdvanceToStaleness(5000);  // > 3s bound -> remote
  EXPECT_FALSE(fx_.session->Execute(query).ok());  // streak 1
  EXPECT_FALSE(fx_.session->Execute(query).ok());  // streak 2 -> opens
  ResilientRemoteExecutor* exec = fx_.sys.cache()->remote_policy();
  ASSERT_NE(exec, nullptr);
  EXPECT_TRUE(exec->breaker_open());
  EXPECT_EQ(exec->breaker_opens(), 1);
  EXPECT_EQ(fx_.sys.cache_stats().breaker_opens, 1);

  // Fail-fast: the third query never reaches the injector.
  int64_t attempts = fx_.sys.cache()->fault_injector()->attempts();
  EXPECT_FALSE(fx_.session->Execute(query).ok());
  EXPECT_EQ(fx_.sys.cache()->fault_injector()->attempts(), attempts);

  // Link heals, cooldown expires: service resumes.
  fx_.sys.cache()->ClearFaultInjector();
  fx_.sys.AdvanceBy(6000);
  AdvanceToStaleness(5000);
  QueryResult r = MustExecute(fx_.session.get(), query);
  EXPECT_EQ(r.stats.remote_queries, 1);
  EXPECT_FALSE(r.degraded);
}

TEST_F(DegradeTest, OutageWindowsNeverCrashTheCache) {
  // Satellite (e): queries arriving while the guard flips to remote inside
  // an outage window must degrade per policy or fail cleanly — never crash —
  // and a time-ordered session's floor must stay monotone throughout.
  FaultInjectorConfig faults;
  faults.outage_period_ms = 20000;
  faults.outage_down_ms = 6000;
  faults.transient_error_probability = 0.15;
  fx_.sys.cache()->SetFaultInjector(faults);
  RemotePolicy policy;
  policy.timeout_ms = 1000;
  policy.max_retries = 3;
  policy.backoff_base_ms = 250;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter_ms = 50;
  fx_.sys.cache()->SetRemotePolicy(policy);
  Session* s = fx_.session.get();
  MustExecute(s, "SET DEGRADE BOUNDED");
  MustExecute(s, "BEGIN TIMEORDERED");

  int ok = 0;
  int clean_failures = 0;
  SimTimeMs last_floor = -1;
  for (int i = 0; i < 120; ++i) {
    SimTimeMs arrival = 60000 + static_cast<SimTimeMs>(i) * 777;
    if (arrival > fx_.sys.Now()) fx_.sys.AdvanceTo(arrival);
    auto r = s->Execute(kBoundedQuery);
    if (r.ok()) {
      ++ok;
      if (r->degraded) {
        EXPECT_GT(r->staleness_ms, 0);
        EXPECT_LE(r->staleness_ms, 6000);
      }
    } else {
      // Only the two sanctioned failure modes, with a message.
      EXPECT_TRUE(r.status().IsUnavailable() ||
                  r.status().IsConstraintViolation())
          << r.status().ToString();
      EXPECT_FALSE(r.status().message().empty());
      ++clean_failures;
    }
    EXPECT_GE(s->timeline_floor(), last_floor);
    last_floor = s->timeline_floor();
  }
  EXPECT_EQ(ok + clean_failures, 120);
  EXPECT_GT(ok, clean_failures);  // the cache mostly rides out the outages
  const ExecStats& total = fx_.sys.cache_stats();
  EXPECT_GT(total.remote_retries, 0);
  EXPECT_GT(fx_.sys.cache()->fault_injector()->injected_errors(), 0);
}

TEST_F(DegradeTest, CumulativeStatsAccumulateAcrossQueries) {
  fx_.sys.cache()->SetFaultInjector(PermanentOutage());
  MustExecute(fx_.session.get(), "SET DEGRADE ALWAYS");
  AdvanceToStaleness(8000);
  MustExecute(fx_.session.get(), kBoundedQuery);
  MustExecute(fx_.session.get(), kBoundedQuery);
  const ExecStats& total = fx_.sys.cache_stats();
  EXPECT_EQ(total.degraded_serves, 2);
  EXPECT_EQ(total.degraded_staleness_ms, 8000);
  EXPECT_GE(total.max_seen_heartbeat, 0);
  fx_.sys.cache()->ResetCumulativeStats();
  EXPECT_EQ(fx_.sys.cache_stats().degraded_serves, 0);
}

// -- Acceptance thresholds (ISSUE): resilient vs vanilla under 30% outage ----

TEST(FaultThresholdTest, ResilientPolicySurvivesOutagesVanillaDoesNot) {
  // Scripted 30% outage (20s period, 6s down) + 20% transient errors.
  // Bound 5s over f=10s/d=2s: ~30% of arrivals can be answered locally.
  FaultInjectorConfig faults;
  faults.outage_period_ms = 20000;
  faults.outage_down_ms = 6000;
  faults.transient_error_probability = 0.2;

  const char* query =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 5 SECONDS ON (B)";
  constexpr int kQueries = 250;
  constexpr SimTimeMs kStart = 60000;
  constexpr SimTimeMs kStep = 997;

  // Resilient system: retries with backoff + bounded degradation.
  BookstoreFixture resilient(10000, 2000);
  resilient.sys.cache()->SetFaultInjector(faults);
  RemotePolicy policy;
  policy.timeout_ms = 1000;
  // ~3.5s retry budget (backoffs 500/1000/2000): shorter than a full outage,
  // so queries arriving early in an outage window must fall back to bounded
  // degradation.
  policy.max_retries = 3;
  policy.backoff_base_ms = 250;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter_ms = 50;
  policy.breaker_threshold = 0;  // measure pure retry+degrade behaviour
  resilient.sys.cache()->SetRemotePolicy(policy);
  MustExecute(resilient.session.get(), "SET DEGRADE BOUNDED");

  int resilient_ok = 0;
  int unsatisfiable = 0;
  int degraded_serves = 0;
  for (int i = 0; i < kQueries; ++i) {
    SimTimeMs arrival = kStart + static_cast<SimTimeMs>(i) * kStep;
    if (arrival > resilient.sys.Now()) resilient.sys.AdvanceTo(arrival);
    auto r = resilient.session->Execute(query);
    if (r.ok()) {
      ++resilient_ok;
      if (r->degraded) {
        ++degraded_serves;
        // Every degraded answer reports its real, nonzero staleness.
        SimTimeMs hb = resilient.sys.cache()->region(1)->local_heartbeat();
        EXPECT_EQ(r->staleness_ms, resilient.sys.Now() - hb);
        EXPECT_GT(r->staleness_ms, 0);
        EXPECT_LE(r->staleness_ms, 5000);
        EXPECT_TRUE(r->advisory.IsStaleOk());
      }
      continue;
    }
    // A failure is acceptable only if the bound was genuinely unsatisfiable
    // when the query gave up: replica out of bound (bounded mode re-checked
    // it) and the back-end unreachable.
    SimTimeMs now = resilient.sys.Now();
    SimTimeMs hb = resilient.sys.cache()->region(1)->local_heartbeat();
    EXPECT_GT(now - hb, 5000) << r.status().ToString();
    ++unsatisfiable;
  }
  int satisfiable = kQueries - unsatisfiable;
  ASSERT_GT(satisfiable, 0);
  double resilient_rate =
      static_cast<double>(resilient_ok) / static_cast<double>(satisfiable);
  EXPECT_GE(resilient_rate, 0.99);
  EXPECT_GT(degraded_serves, 0);
  EXPECT_GT(resilient.sys.cache_stats().remote_retries, 0);

  // Vanilla system: same faults, single bare attempt, no degradation.
  BookstoreFixture vanilla(10000, 2000);
  vanilla.sys.cache()->SetFaultInjector(faults);
  int vanilla_ok = 0;
  for (int i = 0; i < kQueries; ++i) {
    SimTimeMs arrival = kStart + static_cast<SimTimeMs>(i) * kStep;
    if (arrival > vanilla.sys.Now()) vanilla.sys.AdvanceTo(arrival);
    if (vanilla.session->Execute(query).ok()) ++vanilla_ok;
  }
  double vanilla_rate =
      static_cast<double>(vanilla_ok) / static_cast<double>(kQueries);
  EXPECT_LT(vanilla_rate, 0.75);

  // The whole point, end to end: resilience closes most of the gap.
  double resilient_overall =
      static_cast<double>(resilient_ok) / static_cast<double>(kQueries);
  EXPECT_GT(resilient_overall, vanilla_rate + 0.15);
}

}  // namespace
}  // namespace rcc
