// Concurrent execution engine: the worker pool, the region reader–writer
// locks, the deterministic batch API (serial == pooled), the shared timeline
// floor, and the unknown-heartbeat guard semantics. Registered with the
// `tsan` ctest label: the tsan preset runs exactly these tests under
// ThreadSanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <shared_mutex>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "exec/executor.h"
#include "plan/plan_cache.h"
#include "replication/fault_injector.h"
#include "replication/health.h"
#include "test_util.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::MustExecute;

// -- ThreadPool ---------------------------------------------------------------

TEST(ThreadPoolTest, RunsEveryTaskAndBlocksUntilDone) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.Run(std::move(tasks));
  // Run is a barrier: by the time it returns, every task has executed.
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 5; ++round) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 20; ++i) {
      tasks.push_back([&counter] { counter.fetch_add(1); });
    }
    pool.Run(std::move(tasks));
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmittedWorkDrainsOnDestruction) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    // The destructor joins after draining the queue.
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, DefaultWorkersIsPositive) {
  EXPECT_GE(ThreadPool::DefaultWorkers(), 1);
  ThreadPool degenerate(0);  // clamped to one worker, still functional
  std::atomic<int> counter{0};
  degenerate.Run({[&counter] { counter.fetch_add(1); }});
  EXPECT_EQ(counter.load(), 1);
}

// -- deterministic batch execution -------------------------------------------

/// The mixed workload used by the equivalence tests: guarded point lookups
/// (guards pass -> local), a guarded range scan, and tight-bound queries
/// that must go remote.
std::vector<std::string> MixedBatch() {
  std::vector<std::string> sqls;
  for (int i = 1; i <= 12; ++i) {
    sqls.push_back("SELECT price FROM Books B WHERE B.isbn = " +
                   std::to_string(i) + " CURRENCY BOUND 10 MIN ON (B)");
  }
  sqls.push_back(
      "SELECT isbn FROM Books B WHERE B.isbn <= 40 "
      "CURRENCY BOUND 10 MIN ON (B)");
  sqls.push_back(
      "SELECT rating FROM Reviews R WHERE R.isbn = 3 "
      "CURRENCY BOUND 10 MIN ON (R)");
  // Current reads: the guard cannot pass, the back-end serves them.
  sqls.push_back("SELECT price FROM Books B WHERE B.isbn = 5");
  sqls.push_back("SELECT stock FROM Books B WHERE B.isbn = 8");
  return sqls;
}

void ExpectSameResults(const std::vector<Result<QueryResult>>& a,
                       const std::vector<Result<QueryResult>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok()) << i << ": " << a[i].status().ToString();
    ASSERT_TRUE(b[i].ok()) << i << ": " << b[i].status().ToString();
    EXPECT_EQ(a[i]->rows, b[i]->rows) << "row mismatch at query " << i;
    EXPECT_EQ(a[i]->shape, b[i]->shape) << "plan shape at query " << i;
    EXPECT_EQ(a[i]->stats.switch_local, b[i]->stats.switch_local) << i;
    EXPECT_EQ(a[i]->stats.switch_remote, b[i]->stats.switch_remote) << i;
    EXPECT_EQ(a[i]->stats.rows_returned, b[i]->stats.rows_returned) << i;
    EXPECT_EQ(a[i]->executed_at, b[i]->executed_at) << i;
  }
}

TEST(ConcurrentBatchTest, PooledMatchesSerialExactly) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  std::vector<std::string> sqls = MixedBatch();

  ConcurrentBatchOptions serial;
  serial.workers = 1;
  auto baseline = fx.sys.ExecuteConcurrent(sqls, serial);

  ConcurrentBatchOptions pooled;
  pooled.workers = 4;
  auto concurrent = fx.sys.ExecuteConcurrent(sqls, pooled);
  ExpectSameResults(baseline, concurrent);

  pooled.workers = 8;
  auto wide = fx.sys.ExecuteConcurrent(sqls, pooled);
  ExpectSameResults(baseline, wide);
}

TEST(ConcurrentBatchTest, BatchMatchesPlainSessionLoop) {
  // The batch API must agree with the ordinary serial Session on a system
  // advanced to the same instant (no remote policy installed, so the serial
  // path does not move the clock either).
  BookstoreFixture serial_fx;
  serial_fx.sys.AdvanceTo(30000);
  BookstoreFixture batch_fx;
  batch_fx.sys.AdvanceTo(30000);

  std::vector<std::string> sqls = MixedBatch();
  auto batched = batch_fx.sys.ExecuteConcurrent(
      sqls, ConcurrentBatchOptions{.workers = 4});
  ASSERT_EQ(batched.size(), sqls.size());
  for (size_t i = 0; i < sqls.size(); ++i) {
    QueryResult expected = MustExecute(serial_fx.session.get(), sqls[i]);
    ASSERT_TRUE(batched[i].ok()) << sqls[i];
    EXPECT_EQ(batched[i]->rows, expected.rows) << sqls[i];
    EXPECT_EQ(batched[i]->shape, expected.shape) << sqls[i];
  }
}

TEST(ConcurrentBatchTest, RepeatedPooledRunsAreDeterministic) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  std::vector<std::string> sqls = MixedBatch();
  ConcurrentBatchOptions opts;
  opts.workers = 4;
  auto first = fx.sys.ExecuteConcurrent(sqls, opts);
  for (int round = 0; round < 3; ++round) {
    auto again = fx.sys.ExecuteConcurrent(sqls, opts);
    ExpectSameResults(first, again);
  }
}

TEST(ConcurrentBatchTest, ParseAndPlanErrorsLandInTheirSlot) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  std::vector<std::string> sqls = {
      "SELECT price FROM Books B WHERE B.isbn = 1",
      "SELECT FROM nonsense !!",
      "SELECT price FROM NoSuchTable T WHERE T.x = 1",
      "SELECT price FROM Books B WHERE B.isbn = 2",
  };
  auto results =
      fx.sys.ExecuteConcurrent(sqls, ConcurrentBatchOptions{.workers = 4});
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_FALSE(results[1].ok());
  EXPECT_FALSE(results[2].ok());
  EXPECT_TRUE(results[3].ok());
}

TEST(ConcurrentBatchTest, InterleavedBatchesAndDeliveries) {
  // The intended usage loop: advance the simulation (deliveries fire, on the
  // driving thread), then run a pooled batch at the frozen instant. Under
  // TSan this exercises the full guard-probe / view-scan / delivery surface.
  BookstoreFixture fx(/*interval_ms=*/4000, /*delay_ms=*/1000);
  std::vector<std::string> sqls = MixedBatch();
  ConcurrentBatchOptions opts;
  opts.workers = 4;
  for (int tick = 0; tick < 6; ++tick) {
    fx.sys.AdvanceBy(3000);
    MustExecute(fx.session.get(),
                "UPDATE Books SET price = price + 1 WHERE isbn <= 6");
    auto results = fx.sys.ExecuteConcurrent(sqls, opts);
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_TRUE(results[i].ok())
          << "tick " << tick << " query " << i << ": "
          << results[i].status().ToString();
    }
  }
}

// -- session batch + timeline floor -------------------------------------------

TEST(ConcurrentBatchTest, SessionBatchSharesTimelineFloor) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  ASSERT_TRUE(fx.session->Execute("BEGIN TIMEORDERED").ok());
  EXPECT_EQ(fx.session->timeline_floor(), -1);

  std::vector<std::string> relaxed;
  for (int i = 1; i <= 8; ++i) {
    relaxed.push_back("SELECT price FROM Books B WHERE B.isbn = " +
                      std::to_string(i) + " CURRENCY BOUND 10 MIN ON (B)");
  }
  auto results = fx.session->ExecuteBatch(relaxed, /*workers=*/4);
  SimTimeMs max_seen = -1;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok());
    if (r->stats.max_seen_heartbeat > max_seen) {
      max_seen = r->stats.max_seen_heartbeat;
    }
  }
  // The floor ends at the maximum snapshot any query of the batch observed —
  // the same value a serial run in any order would produce.
  EXPECT_GT(max_seen, 0);
  EXPECT_EQ(fx.session->timeline_floor(), max_seen);

  // A current read raises the floor to "now"; afterwards the same relaxed
  // batch must refuse the (older) local replicas and serve remotely.
  MustExecute(fx.session.get(), "SELECT price FROM Books B WHERE B.isbn = 1");
  EXPECT_EQ(fx.session->timeline_floor(), 30000);
  auto pinned = fx.session->ExecuteBatch(relaxed, /*workers=*/4);
  for (const auto& r : pinned) {
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->stats.switch_local, 0);
    EXPECT_GE(r->stats.switch_remote, 1);
  }
  EXPECT_EQ(fx.session->timeline_floor(), 30000);
}

// -- unknown-heartbeat guard semantics ---------------------------------------

TEST(ConcurrencyTest, GuardFailsExplicitlyOnUnknownHeartbeat) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  QueryPlan plan = testing_util::MustPrepare(
      fx.session.get(),
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 MIN ON (B)");

  ExecStats stats;
  ExecContext ctx = fx.sys.cache()->MakeExecContext(&stats);
  // Simulate a region whose heartbeat was never installed: the guard must
  // fail explicitly (counted) and route to the remote branch, not treat the
  // region as "synced at time 0" or as maximally stale by accident.
  ctx.local_heartbeat = [](RegionId) { return std::optional<SimTimeMs>{}; };
  auto executed = ExecutePlan(plan, &ctx);
  ASSERT_TRUE(executed.ok()) << executed.status().ToString();
  EXPECT_GE(stats.guard_unknown_region, 1);
  EXPECT_EQ(stats.switch_local, 0);
  EXPECT_GE(stats.switch_remote, 1);
}

TEST(ConcurrencyTest, DegradeRefusesUnknownStaleness) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  QueryPlan plan = testing_util::MustPrepare(
      fx.session.get(),
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 MIN ON (B)");

  ExecStats stats;
  ExecContext ctx = fx.sys.cache()->MakeExecContext(&stats);
  ctx.degrade = DegradeMode::kAlways;
  ctx.local_heartbeat = [](RegionId) { return std::optional<SimTimeMs>{}; };
  ctx.remote_executor = [](const SelectStmt&) -> Result<RemoteResult> {
    return Status::Unavailable("link down");
  };
  // Remote fails and the replica's staleness is unknown: even ALWAYS mode
  // has nothing safe to serve — the query must fail, not hand out data of
  // unknowable currency.
  auto executed = ExecutePlan(plan, &ctx);
  ASSERT_FALSE(executed.ok());
  EXPECT_NE(executed.status().ToString().find("no local heartbeat"),
            std::string::npos)
      << executed.status().ToString();
}

// -- raw lock/heartbeat contention (TSan surface) -----------------------------

TEST(ConcurrencyTest, RegionPublishAndPinContentionSmoke) {
  // Readers pin an epoch and scan the current snapshot lock-free while a
  // writer clones the view, applies ops and publishes successor snapshots —
  // the exact interleaving the MVCC engine produces, in miniature. The
  // assertions are minimal; the point is a clean TSan/ASan report.
  TableDef items;
  items.name = "Items";
  items.schema = Schema({{"id", ValueType::kInt64},
                         {"cat", ValueType::kInt64},
                         {"price", ValueType::kDouble}});
  items.clustered_key = {"id"};
  ViewDef def;
  def.name = "items_copy";
  def.source_table = "Items";
  def.columns = {"id", "cat", "price"};
  def.region = 1;
  auto view_or = MaterializedView::Create(def, items);
  ASSERT_TRUE(view_or.ok());
  RegionDef region_def;
  region_def.cid = 1;
  CurrencyRegion region(region_def);
  region.AddView(std::move(*view_or));

  constexpr int kWriterOps = 400;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kWriterOps; ++i) {
      region.PublishUpdate(
          [&](const RegionSnapshot& cur, RegionSnapshot* next) {
            auto clone = cur.views[0]->Clone();
            RowOp op;
            op.kind = RowOp::Kind::kInsert;
            op.table = "Items";
            op.row = {Value::Int(i), Value::Int(i % 4),
                      Value::Double(i * 1.0)};
            clone->ApplyOp(op);
            if (i % 3 == 0 && i > 0) {
              RowOp upd;
              upd.kind = RowOp::Kind::kUpdate;
              upd.table = "Items";
              upd.key = {Value::Int(i - 1)};
              upd.row = {Value::Int(i + kWriterOps), Value::Int(1),
                         Value::Double(0.5)};
              clone->ApplyOp(upd);
            }
            next->views[0] = std::move(clone);
            next->heartbeat = i * 10;
            return true;
          });
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      SimTimeMs last_hb = 0;
      while (!done.load()) {
        SnapshotPin pin(region.epochs());
        const RegionSnapshot* snap = pin.Acquire(&region);
        size_t rows = 0;
        snap->views[0]->data().Scan([&rows](const Row&) {
          ++rows;
          return true;
        });
        // A snapshot is internally coherent and publication is monotonic.
        EXPECT_LE(rows, 2u * kWriterOps);
        EXPECT_GE(snap->epoch, last_epoch);
        EXPECT_GE(snap->heartbeat, last_hb);
        last_epoch = snap->epoch;
        last_hb = snap->heartbeat;
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();
  // AddView published epoch 1; every writer iteration published once more.
  EXPECT_EQ(region.delivery_epoch(), static_cast<uint64_t>(kWriterOps) + 1);
}

// -- plan cache under contention ----------------------------------------------

TEST(ConcurrencyTest, PlanCacheHammerDuringInvalidations) {
  // N session-like threads look up and insert plans over a small template
  // pool with rotating degrade modes while an invalidator thread plays the
  // role of Deliver/quarantine health transitions (OnHealthChange bumps the
  // cache version). Two properties under TSan:
  //  - no torn reads: every hit's entry is internally consistent — its
  //    created_degrade tag equals the mode the key was looked up under;
  //  - entries published around an invalidation never resurface (the
  //    version guard), so a hit's entry version always matches a version
  //    the cache actually had.
  PlanCache cache;
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  const DegradeMode kModes[] = {DegradeMode::kNone, DegradeMode::kBounded,
                                DegradeMode::kAlways};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};

  std::thread invalidator([&] {
    while (!stop.load(std::memory_order_acquire)) {
      cache.Invalidate();
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> sessions;
  for (int t = 0; t < kThreads; ++t) {
    sessions.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        DegradeMode mode = kModes[(t + i) % 3];
        std::string sql = "SELECT a FROM t" + std::to_string(i % 7) +
                          " WHERE a = " + std::to_string(i % 13);
        auto looked = cache.Lookup(sql, mode, false);
        if (looked.hit.has_value()) {
#ifndef RCC_PLANCACHE_MUTATE
          if (looked.hit->entry->created_degrade != mode) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
#endif
        } else if (looked.norm.ok) {
          auto entry = std::make_shared<PlanCacheEntry>();
          entry->parameterized = true;
          entry->created_degrade = mode;
          cache.Insert(looked.norm, sql, mode, false, std::move(entry),
                       looked.version_at_lookup);
        }
      }
    });
  }
  for (std::thread& s : sessions) s.join();
  stop.store(true, std::memory_order_release);
  invalidator.join();

  EXPECT_EQ(torn.load(), 0)
      << "a lookup under one degrade mode returned a plan created under "
         "another";
  EXPECT_EQ(cache.hits() + cache.misses(),
            static_cast<int64_t>(kThreads) * kIters);
  EXPECT_GT(cache.invalidations(), 0);
}

TEST(ConcurrencyTest, ConcurrentSessionsShareCacheAcrossHealthTransitions) {
  // Whole-engine version: concurrent batches execute a fixed query pool (the
  // plan-cache sweet spot) while deliveries land between batches and a
  // poisoned batch quarantines region 1 mid-run. Quarantined regions must
  // refuse local serves even when the query text is cached; after resync the
  // pool serves locally again. Runs under TSan via the `tsan` label.
  BookstoreFixture fx(5000, 1000);
  fx.sys.AdvanceTo(12000);

  std::vector<std::string> sqls;
  for (int i = 0; i < 6; ++i) {
    sqls.push_back("SELECT isbn, price FROM Books WHERE isbn = " +
                   std::to_string(1 + i) +
                   " CURRENCY BOUND 60 SEC ON (Books)");
  }
  ConcurrentBatchOptions opts;
  opts.workers = 4;

  auto run_pool = [&](bool expect_local) {
    auto results = fx.sys.ExecuteConcurrent(sqls, opts);
    for (auto& r : results) {
      ASSERT_TRUE(r.ok()) << r.status().ToString();
      if (expect_local) {
        EXPECT_EQ(r->stats.switch_local, 1);
      } else {
        EXPECT_EQ(r->stats.switch_local, 0)
            << "local serve from a quarantined region";
      }
    }
  };

  run_pool(/*expect_local=*/true);

  // Poison the next delivery: region 1 quarantines, its certified heartbeat
  // is withdrawn, and the health transition invalidates cached plans.
  ReplicationFaultConfig faults;
  faults.poison_probability = 1.0;
  fx.sys.cache()->SetReplicationFaults(faults);
  MustExecute(fx.session.get(), "UPDATE Books SET price = 12 WHERE isbn = 1");
  fx.sys.AdvanceBy(7000);
  ASSERT_EQ(fx.sys.cache()->RegionHealthOf(1), RegionHealth::kQuarantined);
  run_pool(/*expect_local=*/false);

  // Resync heals the region; the pool goes local again.
  fx.sys.cache()->ClearReplicationFaults();
  fx.sys.AdvanceBy(20000);
  ASSERT_EQ(fx.sys.cache()->RegionHealthOf(1), RegionHealth::kHealthy);
  run_pool(/*expect_local=*/true);
}

TEST(ConcurrencyTest, SetDegradeRacesExecuteBatchWithoutTearing) {
  // Regression for the network front end's interleaving: one connection's
  // SET DEGRADE / SET TRACE control frames are applied on the server's event
  // loop while the same Session's queries run on pool workers. The session
  // mode fields are atomics; each query must observe exactly one mode, and
  // the timeline floor must only ever ratchet upward. Runs under TSan via
  // the `tsan` label — a plain-field Session makes this a data race.
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  Session* session = fx.session.get();

  std::vector<std::string> sqls;
  for (int i = 1; i <= 6; ++i) {
    sqls.push_back("SELECT price FROM Books B WHERE B.isbn = " +
                   std::to_string(i) + " CURRENCY BOUND 10 MIN ON (B)");
  }

  std::atomic<bool> stop{false};
  std::atomic<int> batch_failures{0};
  std::thread executor([&] {
    for (int round = 0; round < 30 && !stop.load(); ++round) {
      auto results = session->ExecuteBatch(sqls, 4);
      for (auto& r : results) {
        if (!r.ok()) batch_failures.fetch_add(1);
      }
    }
    stop.store(true);
  });
  std::thread degrade_toggler([&] {
    bool bounded = false;
    while (!stop.load()) {
      auto r = session->Execute(bounded ? "SET DEGRADE BOUNDED"
                                        : "SET DEGRADE NONE");
      EXPECT_TRUE(r.ok());
      bounded = !bounded;
    }
  });
  std::thread trace_toggler([&] {
    bool on = false;
    while (!stop.load()) {
      auto r = session->Execute(on ? "SET TRACE ON" : "SET TRACE OFF");
      EXPECT_TRUE(r.ok());
      on = !on;
      // Concurrent readers of the mode accessors (what the server's status
      // paths do) must also be race-free.
      (void)session->degrade_mode();
      (void)session->trace_enabled();
      (void)session->timeline_floor();
    }
  });
  executor.join();
  degrade_toggler.join();
  trace_toggler.join();
  EXPECT_EQ(batch_failures.load(), 0);
}

TEST(ConcurrencyTest, TimelineFloorNeverRegressesUnderConcurrentRaises) {
  // The floor update is a CAS-max: a slow worker publishing an *older*
  // snapshot time after a faster one must not drag the floor backwards.
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  Session* session = fx.session.get();
  ASSERT_TRUE(session->Execute("BEGIN TIMEORDERED").ok());

  std::vector<std::string> sqls;
  for (int i = 1; i <= 8; ++i) {
    sqls.push_back("SELECT price FROM Books B WHERE B.isbn = " +
                   std::to_string(i) + " CURRENCY BOUND 10 MIN ON (B)");
  }
  SimTimeMs last_floor = -1;
  for (int round = 0; round < 5; ++round) {
    auto results = session->ExecuteBatch(sqls, 4);
    for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
    SimTimeMs floor = session->timeline_floor();
    EXPECT_GE(floor, last_floor) << "timeline floor regressed";
    last_floor = floor;
    fx.sys.AdvanceBy(5000);  // deliveries land; later batches see newer data
  }
  EXPECT_GT(last_floor, -1);
  ASSERT_TRUE(session->Execute("END TIMEORDERED").ok());
}

TEST(ConcurrencyTest, NestedConcurrentBatchKeepsOuterModeCounted) {
  // The server holds concurrent-batch mode for its lifetime; a nested
  // Begin/End pair (Session::ExecuteBatch does one internally) must not
  // switch the engine back to serial mode underneath it. Counted semantics:
  // only the outermost End leaves the mode.
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  CacheDbms* cache = fx.sys.cache();

  cache->BeginConcurrentBatch();  // the "server" enters for its lifetime
  EXPECT_TRUE(cache->in_concurrent_batch());
  auto results = fx.session->ExecuteBatch(
      {"SELECT price FROM Books B WHERE B.isbn = 1",
       "SELECT price FROM Books B WHERE B.isbn = 2"},
      2);
  for (auto& r : results) ASSERT_TRUE(r.ok()) << r.status().ToString();
  // With a bool flag the nested End above would already have cleared it.
  EXPECT_TRUE(cache->in_concurrent_batch());
  cache->EndConcurrentBatch();
  EXPECT_FALSE(cache->in_concurrent_batch());
}

}  // namespace
}  // namespace rcc
