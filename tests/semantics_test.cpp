#include <gtest/gtest.h>

#include "semantics/model.h"
#include "semantics/resolver.h"
#include "sql/parser.h"

namespace rcc {
namespace {

Catalog MakeBookstoreCatalog() {
  Catalog cat;
  TableDef books;
  books.name = "Books";
  books.schema = Schema({{"isbn", ValueType::kInt64},
                         {"title", ValueType::kString},
                         {"price", ValueType::kDouble}});
  books.clustered_key = {"isbn"};
  EXPECT_TRUE(cat.AddTable(books).ok());

  TableDef reviews;
  reviews.name = "Reviews";
  reviews.schema = Schema({{"isbn", ValueType::kInt64},
                           {"review_id", ValueType::kInt64},
                           {"rating", ValueType::kInt64}});
  reviews.clustered_key = {"isbn", "review_id"};
  EXPECT_TRUE(cat.AddTable(reviews).ok());

  TableDef sales;
  sales.name = "Sales";
  sales.schema = Schema({{"sale_id", ValueType::kInt64},
                         {"isbn", ValueType::kInt64},
                         {"year", ValueType::kInt64}});
  sales.clustered_key = {"sale_id"};
  EXPECT_TRUE(cat.AddTable(sales).ok());
  return cat;
}

ResolvedQuery MustResolve(const Catalog& cat, const std::string& sql) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << sql << ": " << stmt.status().ToString();
  auto rq = ResolveQuery(**stmt, cat);
  EXPECT_TRUE(rq.ok()) << sql << ": " << rq.status().ToString();
  return std::move(*rq);
}

// -- resolution --------------------------------------------------------------

TEST(ResolverTest, AssignsOperandIds) {
  Catalog cat = MakeBookstoreCatalog();
  ResolvedQuery rq = MustResolve(
      cat, "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn");
  ASSERT_EQ(rq.operands.size(), 2u);
  EXPECT_EQ(rq.operands[0].alias, "B");
  EXPECT_EQ(rq.operands[0].table->name, "Books");
  EXPECT_EQ(rq.operands[1].alias, "R");
  EXPECT_EQ(rq.stmt->from[0].resolved_operand, 0u);
  EXPECT_EQ(rq.stmt->from[1].resolved_operand, 1u);
}

TEST(ResolverTest, UnknownTableFails) {
  Catalog cat = MakeBookstoreCatalog();
  auto stmt = ParseSelect("SELECT * FROM Nothing");
  auto rq = ResolveQuery(**stmt, cat);
  EXPECT_TRUE(rq.status().IsNotFound());
}

TEST(ResolverTest, DuplicateAliasFails) {
  Catalog cat = MakeBookstoreCatalog();
  auto stmt = ParseSelect("SELECT * FROM Books B, Reviews B");
  EXPECT_FALSE(ResolveQuery(**stmt, cat).ok());
}

TEST(ResolverTest, UnknownCurrencyTargetFails) {
  Catalog cat = MakeBookstoreCatalog();
  auto stmt =
      ParseSelect("SELECT * FROM Books B CURRENCY BOUND 1 MIN ON (Z)");
  EXPECT_FALSE(ResolveQuery(**stmt, cat).ok());
}

TEST(ResolverTest, DefaultConstraintIsTight) {
  // No currency clause: bound 0, all inputs in one consistency class
  // (traditional semantics, paper 3.2.1).
  Catalog cat = MakeBookstoreCatalog();
  ResolvedQuery rq = MustResolve(
      cat, "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn");
  EXPECT_TRUE(rq.used_default_constraint);
  ASSERT_EQ(rq.constraint.tuples.size(), 1u);
  EXPECT_EQ(rq.constraint.tuples[0].bound_ms, 0);
  EXPECT_EQ(rq.constraint.tuples[0].operands.size(), 2u);
  EXPECT_TRUE(rq.constraint.RequiresConsistent(0, 1));
}

TEST(ResolverTest, E1SingleClass) {
  Catalog cat = MakeBookstoreCatalog();
  ResolvedQuery rq = MustResolve(
      cat,
      "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn "
      "CURRENCY BOUND 10 MIN ON (B, R)");
  EXPECT_FALSE(rq.used_default_constraint);
  ASSERT_EQ(rq.constraint.tuples.size(), 1u);
  EXPECT_EQ(rq.constraint.tuples[0].bound_ms, 600000);
  EXPECT_TRUE(rq.constraint.RequiresConsistent(0, 1));
}

TEST(ResolverTest, E2SeparateClasses) {
  Catalog cat = MakeBookstoreCatalog();
  ResolvedQuery rq = MustResolve(
      cat,
      "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn "
      "CURRENCY BOUND 10 MIN ON (B), 30 MIN ON (R)");
  ASSERT_EQ(rq.constraint.tuples.size(), 2u);
  EXPECT_FALSE(rq.constraint.RequiresConsistent(0, 1));
  EXPECT_EQ(rq.constraint.BoundFor(0), 600000);
  EXPECT_EQ(rq.constraint.BoundFor(1), 1800000);
}

TEST(ResolverTest, GroupingColumnsPreserved) {
  Catalog cat = MakeBookstoreCatalog();
  ResolvedQuery rq = MustResolve(
      cat,
      "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn "
      "CURRENCY BOUND 10 MIN ON (B, R) BY B.isbn");
  ASSERT_EQ(rq.constraint.tuples.size(), 1u);
  EXPECT_EQ(rq.constraint.tuples[0].by_columns,
            (std::vector<std::string>{"B.isbn"}));
}

TEST(ResolverTest, PaperQ2DerivedTableMerging) {
  // Paper 2.2 Q2: outer clause "5 min on (S, T)" with T a derived table
  // over B and R carrying "10 min on (B, R)". The least restrictive
  // normalized constraint is "5 min on (S, B, R)".
  Catalog cat = MakeBookstoreCatalog();
  ResolvedQuery rq = MustResolve(
      cat,
      "SELECT T.isbn FROM Sales S, "
      "(SELECT B.isbn AS isbn FROM Books B, Reviews R "
      " WHERE B.isbn = R.isbn CURRENCY BOUND 10 MIN ON (B, R)) T "
      "WHERE S.isbn = T.isbn "
      "CURRENCY BOUND 5 MIN ON (S, T)");
  ASSERT_EQ(rq.operands.size(), 3u);  // S, B, R
  ASSERT_EQ(rq.constraint.tuples.size(), 1u);
  EXPECT_EQ(rq.constraint.tuples[0].bound_ms, 5 * 60000);
  EXPECT_EQ(rq.constraint.tuples[0].operands.size(), 3u);
}

TEST(ResolverTest, PaperQ3SubqueryClassSpansBlocks) {
  // Paper 2.2 Q3: the subquery's clause adds B to S's consistency class;
  // since the outer clause makes B and R consistent, B, R, S form a single
  // class.
  Catalog cat = MakeBookstoreCatalog();
  ResolvedQuery rq = MustResolve(
      cat,
      "SELECT * FROM Books B, Reviews R "
      "WHERE B.isbn = R.isbn AND EXISTS ("
      " SELECT 1 FROM Sales S WHERE S.isbn = B.isbn "
      " CURRENCY BOUND 10 MIN ON (S, B)) "
      "CURRENCY BOUND 10 MIN ON (B, R)");
  ASSERT_EQ(rq.operands.size(), 3u);
  ASSERT_EQ(rq.constraint.tuples.size(), 1u);
  EXPECT_EQ(rq.constraint.tuples[0].operands.size(), 3u);
}

TEST(ResolverTest, LogicalViewExpansion) {
  Catalog cat = MakeBookstoreCatalog();
  ASSERT_TRUE(cat.AddLogicalView(
                     "BookSales",
                     "SELECT B.isbn AS isbn FROM Books B, Sales S "
                     "WHERE B.isbn = S.isbn CURRENCY BOUND 2 MIN ON (B, S)")
                  .ok());
  ResolvedQuery rq = MustResolve(
      cat,
      "SELECT V.isbn FROM BookSales V WHERE V.isbn > 3 "
      "CURRENCY BOUND 1 MIN ON (V)");
  // V expands to Books + Sales; the outer 1-min bound merges with the view
  // body's 2-min bound, keeping the minimum.
  ASSERT_EQ(rq.operands.size(), 2u);
  ASSERT_EQ(rq.constraint.tuples.size(), 1u);
  EXPECT_EQ(rq.constraint.tuples[0].bound_ms, 60000);
  EXPECT_EQ(rq.constraint.tuples[0].operands.size(), 2u);
}

TEST(ResolverTest, PartialClauseLeavesOthersTight) {
  Catalog cat = MakeBookstoreCatalog();
  ResolvedQuery rq = MustResolve(
      cat,
      "SELECT * FROM Books B, Reviews R WHERE B.isbn = R.isbn "
      "CURRENCY BOUND 10 MIN ON (B)");
  // R gets the tight default (bound 0).
  EXPECT_EQ(rq.constraint.BoundFor(0), 600000);
  EXPECT_EQ(rq.constraint.BoundFor(1), 0);
}

// -- normalization unit tests -----------------------------------------------------

CcTuple Tuple(SimTimeMs bound, std::initializer_list<InputOperandId> ops) {
  CcTuple t;
  t.bound_ms = bound;
  t.operands = ops;
  return t;
}

TEST(NormalizeTest, MergeOverlappingKeepsMinBound) {
  CcConstraint raw;
  raw.tuples = {Tuple(100, {0, 1}), Tuple(50, {1, 2}), Tuple(500, {3})};
  NormalizedConstraint n = NormalizeConstraint(raw, 4);
  ASSERT_EQ(n.tuples.size(), 2u);
  EXPECT_EQ(n.BoundFor(0), 50);
  EXPECT_EQ(n.BoundFor(2), 50);
  EXPECT_EQ(n.BoundFor(3), 500);
  EXPECT_TRUE(n.RequiresConsistent(0, 2));
  EXPECT_FALSE(n.RequiresConsistent(0, 3));
}

TEST(NormalizeTest, TransitiveMergeChain) {
  CcConstraint raw;
  raw.tuples = {Tuple(10, {0, 1}), Tuple(20, {1, 2}), Tuple(30, {2, 3}),
                Tuple(40, {3, 4})};
  NormalizedConstraint n = NormalizeConstraint(raw, 5);
  ASSERT_EQ(n.tuples.size(), 1u);
  EXPECT_EQ(n.tuples[0].bound_ms, 10);
  EXPECT_EQ(n.tuples[0].operands.size(), 5u);
}

TEST(NormalizeTest, DisjointTuplesStayDisjoint) {
  CcConstraint raw;
  raw.tuples = {Tuple(10, {0}), Tuple(20, {1})};
  NormalizedConstraint n = NormalizeConstraint(raw, 2);
  EXPECT_EQ(n.tuples.size(), 2u);
}

TEST(NormalizeTest, UncoveredOperandsShareTightDefault) {
  CcConstraint raw;
  raw.tuples = {Tuple(10, {0})};
  NormalizedConstraint n = NormalizeConstraint(raw, 3);
  ASSERT_EQ(n.tuples.size(), 2u);
  EXPECT_EQ(n.BoundFor(1), 0);
  EXPECT_EQ(n.BoundFor(2), 0);
  EXPECT_TRUE(n.RequiresConsistent(1, 2));
}

TEST(NormalizeTest, GroupingColumnsSurviveOnlyIdenticalMerge) {
  CcConstraint raw;
  CcTuple a = Tuple(10, {0, 1});
  a.by_columns = {"B.isbn"};
  CcTuple b = Tuple(20, {1, 2});
  b.by_columns = {"B.isbn"};
  raw.tuples = {a, b};
  NormalizedConstraint n = NormalizeConstraint(raw, 3);
  ASSERT_EQ(n.tuples.size(), 1u);
  EXPECT_EQ(n.tuples[0].by_columns, (std::vector<std::string>{"B.isbn"}));

  CcConstraint raw2;
  CcTuple c = Tuple(20, {1, 2});
  c.by_columns = {"R.isbn"};
  raw2.tuples = {a, c};
  NormalizedConstraint n2 = NormalizeConstraint(raw2, 3);
  ASSERT_EQ(n2.tuples.size(), 1u);
  EXPECT_TRUE(n2.tuples[0].by_columns.empty());  // dropped: tighter, safe
}

TEST(NormalizeTest, EmptyConstraintIsAllDefault) {
  NormalizedConstraint n = NormalizeConstraint(CcConstraint{}, 3);
  ASSERT_EQ(n.tuples.size(), 1u);
  EXPECT_EQ(n.tuples[0].bound_ms, 0);
  EXPECT_EQ(n.tuples[0].operands.size(), 3u);
}

// Randomized property: normalized tuples are disjoint and bounds never
// exceed the minimum of any raw tuple covering the operand.
class NormalizePropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(NormalizePropertyTest, DisjointAndMinBound) {
  uint64_t seed = GetParam();
  CcConstraint raw;
  uint64_t state = seed * 2654435761u + 1;
  auto next = [&]() { return state = state * 6364136223846793005ULL + 13; };
  uint32_t num_ops = 6;
  for (int t = 0; t < 5; ++t) {
    CcTuple tuple;
    tuple.bound_ms = static_cast<SimTimeMs>(next() % 1000);
    int size = 1 + static_cast<int>(next() % 3);
    for (int i = 0; i < size; ++i) {
      tuple.operands.insert(static_cast<InputOperandId>(next() % num_ops));
    }
    raw.tuples.push_back(std::move(tuple));
  }
  NormalizedConstraint n = NormalizeConstraint(raw, num_ops);
  // Disjoint:
  std::set<InputOperandId> seen;
  for (const CcTuple& t : n.tuples) {
    for (InputOperandId op : t.operands) {
      EXPECT_EQ(seen.count(op), 0u) << "operand in two normalized tuples";
      seen.insert(op);
    }
  }
  // Covers all operands:
  EXPECT_EQ(seen.size(), num_ops);
  // Bound <= min of raw tuples covering the operand:
  for (InputOperandId op = 0; op < num_ops; ++op) {
    for (const CcTuple& t : raw.tuples) {
      if (t.operands.count(op) > 0) {
        EXPECT_LE(n.BoundFor(op), t.bound_ms);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizePropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

// -- appendix model ------------------------------------------------------------

CommittedTxn Touch(TxnTimestamp id, SimTimeMs at, const std::string& table) {
  CommittedTxn txn;
  txn.id = id;
  txn.commit_time = at;
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.table = table;
  txn.ops.push_back(std::move(op));
  return txn;
}

class ModelTest : public ::testing::Test {
 protected:
  ModelTest() {
    log_.Append(Touch(1, 100, "A"));
    log_.Append(Touch(2, 200, "B"));
    log_.Append(Touch(3, 300, "A"));
    log_.Append(Touch(4, 400, "B"));
  }
  UpdateLog log_;
};

TEST_F(ModelTest, XTime) {
  EXPECT_EQ(semantics::XTime(log_, "A", 4), 300);
  EXPECT_EQ(semantics::XTime(log_, "A", 2), 100);
  EXPECT_EQ(semantics::XTime(log_, "B", 1), 0);
  EXPECT_EQ(semantics::XTime(log_, "C", 4), 0);
}

TEST_F(ModelTest, StalePoint) {
  // Copy of A as of txn 1: first later modification of A is txn 3 @300.
  auto sp = semantics::StalePoint(log_, "A", 1);
  ASSERT_TRUE(sp.has_value());
  EXPECT_EQ(*sp, 300);
  // Copy of A as of txn 3: not stale.
  EXPECT_FALSE(semantics::StalePoint(log_, "A", 3).has_value());
  EXPECT_FALSE(semantics::StalePoint(log_, "A", 4).has_value());
}

TEST_F(ModelTest, CurrencyGrowsFromStalePoint) {
  EXPECT_EQ(semantics::CurrencyOf(log_, "A", 1, 450), 150);
  EXPECT_EQ(semantics::CurrencyOf(log_, "A", 1, 300), 0);
  EXPECT_EQ(semantics::CurrencyOf(log_, "A", 3, 10000), 0);  // fresh
}

TEST_F(ModelTest, MutualConsistency) {
  using semantics::CopyState;
  // A@1 and B@2: between txn1 and txn2 nothing touched A -> consistent.
  EXPECT_TRUE(semantics::MutuallyConsistent(
      log_, {CopyState{"A", 1}, CopyState{"B", 2}}));
  // A@1 and B@4: txn3 touched A in (1,4] -> not consistent.
  EXPECT_FALSE(semantics::MutuallyConsistent(
      log_, {CopyState{"A", 1}, CopyState{"B", 4}}));
  // Equal as_of is always consistent.
  EXPECT_TRUE(semantics::MutuallyConsistent(
      log_, {CopyState{"A", 3}, CopyState{"B", 3}}));
  EXPECT_TRUE(semantics::MutuallyConsistent(log_, {}));
}

TEST_F(ModelTest, DeltaConsistencyDistance) {
  using semantics::CopyState;
  // Distance between consistent copies is 0.
  EXPECT_EQ(semantics::Distance(log_, CopyState{"A", 1}, CopyState{"B", 2}),
            0);
  // A@1 vs B@4: xtime(B@4)=400; A@1 went stale at 300 -> distance 100.
  EXPECT_EQ(semantics::Distance(log_, CopyState{"A", 1}, CopyState{"B", 4}),
            100);
  // Symmetric.
  EXPECT_EQ(semantics::Distance(log_, CopyState{"B", 4}, CopyState{"A", 1}),
            100);
}

TEST_F(ModelTest, GroupDistanceIsMaxPairwise) {
  using semantics::CopyState;
  SimTimeMs d = semantics::GroupDistance(
      log_, {CopyState{"A", 1}, CopyState{"B", 4}, CopyState{"B", 2}});
  EXPECT_EQ(d, 100);
}

}  // namespace
}  // namespace rcc
