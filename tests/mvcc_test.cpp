// Epoch-published MVCC region snapshots: pinned readers keep bit-identical
// pre-batch views while deliveries publish successors; data, heartbeat,
// as_of and health travel in one immutable snapshot; retired snapshots are
// reclaimed only once no pin can reach them; and a delivery to one region is
// never blocked by a scan of another. Registered with the `repl` and `tsan`
// labels: the tsan preset runs the threaded tests under ThreadSanitizer, and
// the asan preset makes any read of a prematurely reclaimed snapshot fatal.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "replication/agent.h"
#include "replication/heartbeat.h"
#include "replication/region.h"
#include "replication/snapshot.h"

namespace rcc {
namespace {

TableDef ItemsDef() {
  TableDef def;
  def.name = "Items";
  def.schema = Schema({{"id", ValueType::kInt64},
                       {"cat", ValueType::kInt64},
                       {"price", ValueType::kDouble}});
  def.clustered_key = {"id"};
  return def;
}

ViewDef FullView(RegionId region = 1, const std::string& name = "items_copy") {
  ViewDef v;
  v.name = name;
  v.source_table = "Items";
  v.columns = {"id", "cat", "price"};
  v.region = region;
  return v;
}

Row ItemRow(int64_t id, int64_t cat, double price) {
  return {Value::Int(id), Value::Int(cat), Value::Double(price)};
}

RowOp InsertOp(int64_t id, int64_t cat, double price) {
  RowOp op;
  op.kind = RowOp::Kind::kInsert;
  op.table = "Items";
  op.row = ItemRow(id, cat, price);
  return op;
}

/// Every row of every view of the snapshot, serialized — the bit-identity
/// probe for pinned readers.
std::vector<std::string> DumpViews(const RegionSnapshot& snap) {
  std::vector<std::string> out;
  for (const auto& view : snap.views) {
    view->data().Scan([&](const Row& row) {
      out.push_back(RowToString(row));
      return true;
    });
  }
  return out;
}

/// Mirrors AgentTest in replication_test.cpp: one region with a full view of
/// Items, driven by a real DistributionAgent over a simulated schedule.
class MvccAgentTest : public ::testing::Test {
 protected:
  MvccAgentTest() : sched_(&clock_), items_(ItemsDef()) {}

  void Setup(SimTimeMs f, SimTimeMs d, SimTimeMs hb_interval = 1000) {
    RegionDef def;
    def.cid = 1;
    def.update_interval = f;
    def.update_delay = d;
    def.heartbeat_interval = hb_interval;
    region_ = std::make_unique<CurrencyRegion>(def);
    auto view = MaterializedView::Create(FullView(), items_);
    ASSERT_TRUE(view.ok());
    region_->AddView(std::move(*view));
    agent_ = std::make_unique<DistributionAgent>(region_.get(), &log_,
                                                 &heartbeat_, &sched_);
    agent_->Start(f);
    sched_.SchedulePeriodic(hb_interval, hb_interval, [this](SimTimeMs now) {
      heartbeat_.Beat(1, now);
    });
  }

  void Commit(SimTimeMs at, int64_t id, double price) {
    sched_.RunUntil(at);
    CommittedTxn txn;
    txn.id = ++last_ts_;
    txn.commit_time = at;
    txn.ops.push_back(InsertOp(id, 0, price));
    log_.Append(std::move(txn));
  }

  VirtualClock clock_;
  SimulationScheduler sched_;
  TableDef items_;
  UpdateLog log_;
  HeartbeatStore heartbeat_;
  std::unique_ptr<CurrencyRegion> region_;
  std::unique_ptr<DistributionAgent> agent_;
  TxnTimestamp last_ts_ = 0;
};

TEST_F(MvccAgentTest, PinnedReaderKeepsPreBatchViewsBitIdentical) {
  Setup(/*f=*/10000, /*d=*/5000);
  Commit(1000, 1, 1.0);
  sched_.RunUntil(15000);  // first delivery applied and published

  SnapshotPin pin(region_->epochs());
  const RegionSnapshot* pinned = pin.Acquire(region_.get());
  std::vector<std::string> before = DumpViews(*pinned);
  SimTimeMs hb_before = pinned->heartbeat;
  TxnTimestamp as_of_before = pinned->as_of;
  ASSERT_EQ(pinned->views[0]->data().num_rows(), 1u);

  Commit(16000, 2, 2.0);
  sched_.RunUntil(25000);  // second delivery published a successor snapshot

  // A fresh pin sees the new batch...
  SnapshotPin fresh_pin(region_->epochs());
  const RegionSnapshot* fresh = fresh_pin.Acquire(region_.get());
  EXPECT_EQ(fresh->views[0]->data().num_rows(), 2u);
  EXPECT_GT(fresh->epoch, pinned->epoch);
  EXPECT_GT(fresh->as_of, as_of_before);

  // ...while the pinned snapshot still reads bit-identical pre-batch state:
  // same rows, same heartbeat, same as_of. The delivery cloned the view it
  // touched instead of mutating it in place.
  EXPECT_EQ(DumpViews(*pinned), before);
  EXPECT_EQ(pinned->heartbeat, hb_before);
  EXPECT_EQ(pinned->as_of, as_of_before);
  EXPECT_EQ(pinned->views[0]->data().num_rows(), 1u);
}

TEST_F(MvccAgentTest, PostPublishReaderSeesHeartbeatCoveringTheBatch) {
  Setup(/*f=*/10000, /*d=*/5000, /*hb=*/1000);
  Commit(1000, 1, 1.0);
  Commit(9000, 2, 2.0);
  sched_.RunUntil(15000);  // wakeup at 10000, delivery at 15000

  SnapshotPin pin(region_->epochs());
  const RegionSnapshot* snap = pin.Acquire(region_.get());
  // Data and heartbeat travel in one snapshot: a reader that sees the batch
  // rows also sees a heartbeat at least as new as every commit in the batch
  // (the wakeup captured the global beat after both commits).
  EXPECT_EQ(snap->views[0]->data().num_rows(), 2u);
  EXPECT_GE(snap->heartbeat, 9000);
  ASSERT_TRUE(snap->certified_heartbeat().has_value());
  EXPECT_EQ(snap->as_of, 2);
}

TEST(SnapshotReclaimTest, RetiredSnapshotsSurviveWhilePinned) {
  RegionDef def;
  def.cid = 1;
  CurrencyRegion region(def);
  TableDef items = ItemsDef();
  auto view = MaterializedView::Create(FullView(), items);
  ASSERT_TRUE(view.ok());
  region.AddView(std::move(*view));
  region.PublishUpdate([](const RegionSnapshot& cur, RegionSnapshot* next) {
    auto clone = cur.views[0]->Clone();
    clone->ApplyOp(InsertOp(1, 0, 1.0));
    next->views[0] = std::move(clone);
    return true;
  });

  auto pin = std::make_unique<SnapshotPin>(region.epochs());
  const RegionSnapshot* pinned = pin->Acquire(&region);
  ASSERT_EQ(pinned->views[0]->data().num_rows(), 1u);

  for (int i = 0; i < 5; ++i) {
    region.PublishUpdate([&](const RegionSnapshot& cur, RegionSnapshot* next) {
      auto clone = cur.views[0]->Clone();
      clone->ApplyOp(InsertOp(100 + i, 0, 1.0));
      next->views[0] = std::move(clone);
      return true;
    });
  }
  // Every superseded snapshot retired, none reclaimed — the pin can still
  // reach them all.
  EXPECT_GE(region.retired_count(), 5u);
  // The pinned snapshot is fully readable (a premature reclaim is a
  // use-after-free the asan preset turns fatal).
  EXPECT_EQ(pinned->views[0]->data().num_rows(), 1u);
  EXPECT_NE(pinned->views[0]->data().Get({Value::Int(1)}), nullptr);

  // Release the pin: the next publish reclaims the whole retired backlog.
  pin.reset();
  region.set_local_heartbeat(123);
  EXPECT_EQ(region.retired_count(), 0u);
  EXPECT_EQ(region.view("items_copy")->data().num_rows(), 6u);
}

TEST(MvccHammerTest, PinPublishHammerAcrossHealthTransitionsAndResync) {
  // A writer loops delivery-style CoW publishes, health walks
  // (SUSPECT → QUARANTINED) and resync-style rebuilds (data + heartbeat +
  // HEALTHY in one snapshot) while readers pin and scan continuously. Every
  // snapshot a reader observes must be internally coherent; publication must
  // be monotonic per reader.
  TableDef items = ItemsDef();
  Table master("Items", items.schema, {0});
  for (int64_t i = 1; i <= 50; ++i) {
    ASSERT_TRUE(master.Insert(ItemRow(i, i % 4, i * 1.0)).ok());
  }
  RegionDef def;
  def.cid = 1;
  CurrencyRegion region(def);
  auto view = MaterializedView::Create(FullView(), items);
  ASSERT_TRUE(view.ok());
  region.AddView(std::move(*view));

  constexpr int kWriterSteps = 300;
  std::atomic<bool> done{false};
  std::thread writer([&] {
    for (int i = 0; i < kWriterSteps; ++i) {
      switch (i % 6) {
        case 0:
        case 1:  // delivery: clone-touched-view + heartbeat, one publish
          region.PublishUpdate(
              [&](const RegionSnapshot& cur, RegionSnapshot* next) {
                auto clone = cur.views[0]->Clone();
                clone->ApplyOp(InsertOp(1000 + i, i % 4, i * 1.0));
                next->views[0] = std::move(clone);
                next->heartbeat = cur.heartbeat + 10;
                return true;
              });
          break;
        case 2:
          region.set_health(RegionHealth::kSuspect);
          break;
        case 3:
          region.set_health(RegionHealth::kQuarantined);
          break;
        case 4:  // resync: rebuild + restored heartbeat + HEALTHY, one publish
          region.PublishUpdate(
              [&](const RegionSnapshot& cur, RegionSnapshot* next) {
                auto rebuilt = cur.views[0]->Clone();
                rebuilt->PopulateFrom(master);
                next->views[0] = std::move(rebuilt);
                next->heartbeat = cur.heartbeat + 10;
                next->health = RegionHealth::kHealthy;
                return true;
              });
          break;
        default:
          region.set_local_heartbeat(region.local_heartbeat() + 1);
          break;
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&] {
      uint64_t last_epoch = 0;
      while (!done.load()) {
        SnapshotPin pin(region.epochs());
        const RegionSnapshot* snap = pin.Acquire(&region);
        // Internal coherence: the health gate and the heartbeat are the
        // same version — a quarantined snapshot never certifies.
        if (!HeartbeatValid(snap->health)) {
          EXPECT_FALSE(snap->certified_heartbeat().has_value());
        } else {
          EXPECT_TRUE(snap->certified_heartbeat().has_value());
        }
        ASSERT_EQ(snap->views.size(), 1u);
        size_t rows = 0;
        snap->views[0]->data().Scan([&rows](const Row&) {
          ++rows;
          return true;
        });
        EXPECT_LE(rows, 50u + kWriterSteps);
        EXPECT_GE(snap->epoch, last_epoch);
        last_epoch = snap->epoch;
      }
    });
  }
  writer.join();
  for (std::thread& r : readers) r.join();
  EXPECT_EQ(region.health(), RegionHealth::kHealthy);
  // Snapshots retired by the writer's final publishes may outlive the run if
  // a reader still had them pinned at that moment; reclamation happens on
  // the next publish, so one more — now that every pin is released — must
  // drain the backlog completely.
  region.set_local_heartbeat(region.local_heartbeat() + 1);
  EXPECT_EQ(region.retired_count(), 0u);
}

TEST(MvccConcurrencyTest, DeliveryToUntouchedRegionNotBlockedByUnrelatedScan) {
  // Regression for the exclusive delivery lock: ExecutePrepared used to take
  // a shared lock on EVERY region for the whole query, so a delivery to
  // region B waited for a scan of region A to drain. Under MVCC the reader
  // holds a pin (regions share one epoch manager, as in CacheDbms) while
  // region B publishes — if the publish blocked on the pin, this test would
  // deadlock rather than pass.
  TableDef items = ItemsDef();
  auto epochs = std::make_shared<SnapshotEpochManager>();
  RegionDef def_a;
  def_a.cid = 1;
  RegionDef def_b;
  def_b.cid = 2;
  CurrencyRegion region_a(def_a, epochs);
  CurrencyRegion region_b(def_b, epochs);
  auto view_a = MaterializedView::Create(FullView(1, "a_copy"), items);
  auto view_b = MaterializedView::Create(FullView(2, "b_copy"), items);
  ASSERT_TRUE(view_a.ok());
  ASSERT_TRUE(view_b.ok());
  region_a.AddView(std::move(*view_a));
  region_b.AddView(std::move(*view_b));

  std::mutex mu;
  std::condition_variable cv;
  bool pinned = false;
  bool delivered = false;
  std::thread reader([&] {
    SnapshotPin pin(epochs.get());
    const RegionSnapshot* snap = pin.Acquire(&region_a);
    size_t rows = snap->views[0]->data().num_rows();
    {
      std::lock_guard<std::mutex> l(mu);
      pinned = true;
    }
    cv.notify_all();
    // Scan "in progress": keep the pin until the delivery has published.
    {
      std::unique_lock<std::mutex> l(mu);
      cv.wait(l, [&] { return delivered; });
    }
    // Region B's publish never touched the pinned region-A snapshot.
    EXPECT_EQ(snap->views[0]->data().num_rows(), rows);
  });

  {
    std::unique_lock<std::mutex> l(mu);
    cv.wait(l, [&] { return pinned; });
  }
  // Deliver to region B while the region-A pin is live. Completing here at
  // all — without waiting for the reader — is the regression assertion.
  bool published = region_b.PublishUpdate(
      [](const RegionSnapshot& cur, RegionSnapshot* next) {
        auto clone = cur.views[0]->Clone();
        clone->ApplyOp(InsertOp(7, 0, 7.0));
        next->views[0] = std::move(clone);
        next->heartbeat = 42;
        return true;
      });
  EXPECT_TRUE(published);
  EXPECT_EQ(region_b.view("b_copy")->data().num_rows(), 1u);
  EXPECT_EQ(region_b.local_heartbeat(), 42);
  {
    std::lock_guard<std::mutex> l(mu);
    delivered = true;
  }
  cv.notify_all();
  reader.join();
}

}  // namespace
}  // namespace rcc
