#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace rcc {
namespace {

TableDef CustomerDef() {
  TableDef def;
  def.name = "Customer";
  def.schema = Schema({{"c_custkey", ValueType::kInt64},
                       {"c_name", ValueType::kString},
                       {"c_acctbal", ValueType::kDouble}});
  def.clustered_key = {"c_custkey"};
  return def;
}

TEST(CatalogTest, TableRoundTrip) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(CustomerDef()).ok());
  EXPECT_NE(cat.FindTable("customer"), nullptr);
  EXPECT_NE(cat.FindTable("CUSTOMER"), nullptr);
  EXPECT_EQ(cat.FindTable("orders"), nullptr);
  EXPECT_EQ(cat.AddTable(CustomerDef()).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(cat.TableNames().size(), 1u);
}

TEST(CatalogTest, BadClusteredKeyRejected) {
  Catalog cat;
  TableDef def = CustomerDef();
  def.clustered_key = {"nope"};
  EXPECT_FALSE(cat.AddTable(def).ok());
}

TEST(CatalogTest, RegionRoundTrip) {
  Catalog cat;
  RegionDef r;
  r.cid = 3;
  r.update_interval = 1000;
  r.update_delay = 100;
  ASSERT_TRUE(cat.AddRegion(r).ok());
  ASSERT_NE(cat.FindRegion(3), nullptr);
  EXPECT_EQ(cat.FindRegion(3)->update_interval, 1000);
  EXPECT_EQ(cat.AddRegion(r).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(cat.AllRegions().size(), 1u);
}

TEST(CatalogTest, BackendRegionIdReserved) {
  Catalog cat;
  RegionDef r;
  r.cid = kBackendRegion;
  EXPECT_FALSE(cat.AddRegion(r).ok());
}

TEST(CatalogTest, ViewRequiresSourceAndKeyColumns) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(CustomerDef()).ok());
  RegionDef r;
  r.cid = 1;
  ASSERT_TRUE(cat.AddRegion(r).ok());

  ViewDef v;
  v.name = "v1";
  v.source_table = "Customer";
  v.columns = {"c_name"};  // missing clustered key
  v.region = 1;
  EXPECT_FALSE(cat.AddView(v).ok());

  v.columns = {"c_custkey", "c_name"};
  EXPECT_TRUE(cat.AddView(v).ok());
  ASSERT_NE(cat.FindView("V1"), nullptr);
  EXPECT_EQ(cat.ViewsOnTable("customer").size(), 1u);
  EXPECT_EQ(cat.AllViews().size(), 1u);

  auto schema = cat.ViewSchema(*cat.FindView("v1"));
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ(schema->num_columns(), 2u);
  EXPECT_EQ(schema->column(1).name, "c_name");
}

TEST(CatalogTest, ViewInUnknownRegionRejected) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(CustomerDef()).ok());
  ViewDef v;
  v.name = "v1";
  v.source_table = "Customer";
  v.columns = {"c_custkey"};
  v.region = 77;
  EXPECT_TRUE(cat.AddView(v).IsNotFound());
}

TEST(CatalogTest, LogicalViews) {
  Catalog cat;
  ASSERT_TRUE(cat.AddTable(CustomerDef()).ok());
  ASSERT_TRUE(cat.AddLogicalView("rich", "SELECT * FROM Customer").ok());
  ASSERT_NE(cat.FindLogicalView("RICH"), nullptr);
  // Name collisions with tables are rejected.
  EXPECT_FALSE(cat.AddLogicalView("Customer", "SELECT 1 FROM Customer").ok());
}

TEST(CatalogTest, StatsDefaultEmpty) {
  Catalog cat;
  EXPECT_EQ(cat.GetStats("nothing").row_count, 0);
}

// -- statistics -------------------------------------------------------------

TEST(StatsTest, ComputeTableStats) {
  Table t("t",
          Schema({{"k", ValueType::kInt64}, {"v", ValueType::kDouble}}), {0});
  for (int64_t i = 1; i <= 100; ++i) {
    ASSERT_TRUE(
        t.Insert({Value::Int(i), Value::Double((i % 10) * 1.0)}).ok());
  }
  TableStats stats = ComputeTableStats(t);
  EXPECT_EQ(stats.row_count, 100);
  EXPECT_EQ(stats.columns.at("k").distinct_count, 100);
  EXPECT_EQ(stats.columns.at("v").distinct_count, 10);
  EXPECT_EQ(stats.columns.at("k").min.AsInt(), 1);
  EXPECT_EQ(stats.columns.at("k").max.AsInt(), 100);
}

TEST(StatsTest, EqSelectivity) {
  TableStats stats;
  stats.row_count = 100;
  stats.columns["c"] = ColumnStats{Value::Int(0), Value::Int(9), 10};
  EXPECT_DOUBLE_EQ(stats.EqSelectivity("c"), 0.1);
  EXPECT_DOUBLE_EQ(stats.EqSelectivity("missing"), 0.1);  // default guess
}

TEST(StatsTest, RangeSelectivityUniform) {
  TableStats stats;
  stats.row_count = 100;
  stats.columns["c"] = ColumnStats{Value::Double(0), Value::Double(100), 100};
  Value lo = Value::Double(25);
  Value hi = Value::Double(75);
  EXPECT_NEAR(stats.RangeSelectivity("c", &lo, &hi), 0.5, 1e-9);
  EXPECT_NEAR(stats.RangeSelectivity("c", &lo, nullptr), 0.75, 1e-9);
  EXPECT_NEAR(stats.RangeSelectivity("c", nullptr, &hi), 0.75, 1e-9);
  EXPECT_NEAR(stats.RangeSelectivity("c", nullptr, nullptr), 1.0, 1e-9);
  // Out-of-domain ranges clamp.
  Value below = Value::Double(-50);
  EXPECT_NEAR(stats.RangeSelectivity("c", nullptr, &below), 0.0, 1e-9);
}

TEST(StatsTest, EstimatedPagesAtLeastOne) {
  TableStats stats;
  stats.row_count = 1;
  stats.avg_row_bytes = 10;
  EXPECT_DOUBLE_EQ(stats.EstimatedPages(8192), 1.0);
  stats.row_count = 10000;
  stats.avg_row_bytes = 100;
  EXPECT_NEAR(stats.EstimatedPages(8192), 10000 * 100 / 8192.0, 1e-9);
}

}  // namespace
}  // namespace rcc
