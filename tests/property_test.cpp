// Cross-cutting correctness properties tying the executed system back to
// the paper's formal model:
//  1. snapshot exactness — a relaxed read served locally returns *exactly*
//     the master data as of the region's snapshot H_{as_of}, reconstructed
//     independently by replaying the update log;
//  2. staleness never exceeds the bound for any executed plan, across random
//     schedules (guards + compile-time pruning together);
//  3. failure injection — when replication stalls, guards degrade service
//     to the back-end rather than violating bounds.

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/strings.h"
#include "test_util.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::MustExecute;

class SnapshotExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotExactnessTest, LocalReadEqualsMasterAsOfRegionSnapshot) {
  BookstoreFixture fx(/*interval_ms=*/7000, /*delay_ms=*/1500);
  BackendServer* backend = fx.sys.backend();

  // Capture the pristine prices (H0).
  std::map<int64_t, double> prices;
  backend->table("Books")->Scan([&](const Row& row) {
    prices[row[0].AsInt()] = row[2].AsDouble();
    return true;
  });

  // Random update schedule, recording each committed price change.
  struct Change {
    TxnTimestamp id;
    int64_t isbn;
    double price;
  };
  std::vector<Change> changes;
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    fx.sys.AdvanceBy(rng.Uniform(100, 1200));
    int64_t isbn = rng.Uniform(1, 200);
    const Row* row = backend->table("Books")->Get({Value::Int(isbn)});
    ASSERT_NE(row, nullptr);
    Row updated = *row;
    double price = static_cast<double>(rng.Uniform(100, 99999)) / 100.0;
    updated[2] = Value::Double(price);
    RowOp op;
    op.kind = RowOp::Kind::kUpdate;
    op.table = "Books";
    op.row = std::move(updated);
    auto ts = backend->ExecuteTransaction({op});
    ASSERT_TRUE(ts.ok());
    changes.push_back({*ts, isbn, price});
  }

  // At several random points, run a relaxed local read of all prices and
  // compare with the reconstruction at the region's as_of.
  auto plan = fx.session->Prepare(
      "SELECT isbn, price FROM Books B WHERE B.isbn <= 200 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  ASSERT_TRUE(plan.ok());
  for (int probe = 0; probe < 5; ++probe) {
    fx.sys.AdvanceBy(rng.Uniform(1000, 9000));
    auto outcome = fx.sys.cache()->ExecutePrepared(*plan);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->stats.switch_local, 1);  // 1h bound: always local

    TxnTimestamp as_of = fx.sys.cache()->region(1)->as_of();
    // Reconstruct expected prices: H0 + all changes with id <= as_of.
    std::map<int64_t, double> expected = prices;
    for (const Change& c : changes) {
      if (c.id <= as_of) expected[c.isbn] = c.price;
    }
    ASSERT_EQ(outcome->result.rows.size(), 200u);
    for (const Row& row : outcome->result.rows) {
      int64_t isbn = row[0].AsInt();
      EXPECT_DOUBLE_EQ(row[1].AsDouble(), expected[isbn])
          << "isbn " << isbn << " at as_of " << as_of;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotExactnessTest,
                         ::testing::Values(101, 202, 303));

// -- staleness-never-exceeds-bound across random schedules ------------------------

class BoundComplianceTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundComplianceTest, ExecutedSourcesAlwaysWithinBound) {
  int bound_s = GetParam();
  BookstoreFixture fx(/*interval_ms=*/9000, /*delay_ms=*/2000);
  BackendServer* backend = fx.sys.backend();
  Rng rng(static_cast<uint64_t>(bound_s) * 7 + 1);

  std::string sql = StrPrintf(
      "SELECT isbn, price FROM Books B WHERE B.isbn <= 100 "
      "CURRENCY BOUND %d SECONDS ON (B)",
      bound_s);
  auto plan_or = fx.session->Prepare(sql);
  if (!plan_or.ok()) {
    // Bound below the delay with no local option is impossible only in
    // replica-only mode; with fallback the plan must exist.
    FAIL() << plan_or.status().ToString();
  }
  QueryPlan plan = std::move(*plan_or);

  for (int i = 0; i < 50; ++i) {
    fx.sys.AdvanceBy(rng.Uniform(200, 2500));
    // Churn the master so staleness is observable.
    const Row* row = backend->table("Books")->Get(
        {Value::Int(rng.Uniform(1, 100))});
    Row updated = *row;
    updated[2] = Value::Double(updated[2].AsDouble() + 0.25);
    RowOp op;
    op.kind = RowOp::Kind::kUpdate;
    op.table = "Books";
    op.row = std::move(updated);
    ASSERT_TRUE(backend->ExecuteTransaction({op}).ok());

    // The verifier computes, per appendix semantics, the staleness of every
    // source the plan would read now.
    EXPECT_TRUE(fx.session->VerifyConstraint(plan).ok())
        << "bound " << bound_s << "s violated at t=" << fx.sys.Now();
    auto outcome = fx.sys.cache()->ExecutePrepared(plan);
    ASSERT_TRUE(outcome.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, BoundComplianceTest,
                         ::testing::Values(1, 3, 5, 8, 12, 30));

// -- failure injection: replication stall ---------------------------------------

TEST(FailureInjectionTest, StalledReplicationDegradesToBackend) {
  BookstoreFixture fx(/*interval_ms=*/5000, /*delay_ms=*/1000);
  fx.sys.AdvanceTo(20000);
  const char* sql =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 SECONDS ON (B)";
  // Healthy: local.
  QueryResult healthy = MustExecute(fx.session.get(), sql);
  EXPECT_EQ(healthy.stats.switch_local, 1);

  // Stall: freeze the region's heartbeat (as if the agent died) and advance
  // time well past the bound. Guards must fail and route to the back-end;
  // results stay correct and within bound.
  CurrencyRegion* region = fx.sys.cache()->region(1);
  SimTimeMs frozen = region->local_heartbeat();
  fx.sys.AdvanceBy(30000);
  region->set_local_heartbeat(frozen);  // undo any delivery that happened
  QueryResult stalled = MustExecute(fx.session.get(), sql);
  EXPECT_EQ(stalled.stats.switch_remote, 1);
  EXPECT_EQ(stalled.rows.size(), 1u);

  // Plan-level verification agrees.
  auto plan = fx.session->Prepare(sql);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(fx.session->VerifyConstraint(*plan).ok());
}

TEST(FailureInjectionTest, RecoveryRestoresLocalService) {
  BookstoreFixture fx(5000, 1000);
  fx.sys.AdvanceTo(20000);
  CurrencyRegion* region = fx.sys.cache()->region(1);
  SimTimeMs frozen = region->local_heartbeat();
  fx.sys.AdvanceBy(25000);
  region->set_local_heartbeat(frozen);
  const char* sql =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 SECONDS ON (B)";
  EXPECT_EQ(MustExecute(fx.session.get(), sql).stats.switch_remote, 1);
  // "Recovery": the next delivery cycle catches the region up again.
  fx.sys.AdvanceBy(7000);
  EXPECT_EQ(MustExecute(fx.session.get(), sql).stats.switch_local, 1);
}

}  // namespace
}  // namespace rcc
