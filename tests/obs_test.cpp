// Observability subsystem tests: metrics registry semantics and JSON schema,
// per-query traces through SET TRACE, EXPLAIN / EXPLAIN ANALYZE rendering
// (including the golden-file check for the default preset), and the
// disabled-path contract (no SET TRACE -> no trace object at all).

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <string>

#include "backend/fault_injector.h"
#include "exec/remote_policy.h"
#include "obs/explain.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "test_util.h"

namespace rcc {
namespace {

using obs::TraceEventKind;
using testing_util::BookstoreFixture;
using testing_util::MustExecute;

// -- Metrics registry ---------------------------------------------------------

TEST(MetricsTest, CounterSemantics) {
  obs::Counter c;
  EXPECT_EQ(c.value(), 0);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.value(), 42);
  c.Reset();
  EXPECT_EQ(c.value(), 0);
}

TEST(MetricsTest, GaugeSetAndMax) {
  obs::Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Max(1.0);  // lower than current: no-op
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.Max(7.0);
  EXPECT_DOUBLE_EQ(g.value(), 7.0);
}

TEST(MetricsTest, HistogramBucketsAndOverflow) {
  obs::Histogram h({1.0, 10.0});
  h.Observe(0.5);    // bucket 0 (<= 1)
  h.Observe(1.0);    // bucket 0 (bounds are inclusive)
  h.Observe(5.0);    // bucket 1 (<= 10)
  h.Observe(100.0);  // overflow bucket
  EXPECT_EQ(h.count(), 4);
  EXPECT_DOUBLE_EQ(h.sum(), 106.5);
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(2), 1);  // i == bounds().size() is overflow
  h.Reset();
  EXPECT_EQ(h.count(), 0);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_EQ(h.bucket_count(2), 0);
}

TEST(MetricsTest, RegistryReturnsStablePointersAcrossReset) {
  obs::MetricsRegistry reg;
  obs::Counter* c = reg.counter("rcc.test.counter");
  obs::Gauge* g = reg.gauge("rcc.test.gauge");
  obs::Histogram* h = reg.histogram("rcc.test.hist", {1.0});
  EXPECT_EQ(reg.counter("rcc.test.counter"), c);
  EXPECT_EQ(reg.gauge("rcc.test.gauge"), g);
  EXPECT_EQ(reg.histogram("rcc.test.hist"), h);  // bounds ignored on reuse
  c->Add(3);
  g->Set(1.5);
  h->Observe(0.5);
  reg.Reset();
  // Same pointers, zeroed values.
  EXPECT_EQ(reg.counter("rcc.test.counter"), c);
  EXPECT_EQ(c->value(), 0);
  EXPECT_DOUBLE_EQ(g->value(), 0.0);
  EXPECT_EQ(h->count(), 0);
}

TEST(MetricsTest, ToJsonMatchesDocumentedSchema) {
  obs::MetricsRegistry reg;
  reg.counter("rcc.test.hits")->Add(7);
  reg.gauge("rcc.test.qps")->Set(123.5);
  reg.histogram("rcc.test.lat_ms", {1.0, 10.0})->Observe(3.0);
  std::string json = reg.ToJson();
  // Schema marker and the three instrument sections (DESIGN.md §9).
  EXPECT_NE(json.find("\"schema\": \"rcc.metrics.v1\""), std::string::npos);
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"rcc.test.hits\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"rcc.test.qps\": 123.5"), std::string::npos);
  // Histogram shape: count/sum plus buckets with upper bounds and +inf.
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"le\""), std::string::npos);
  EXPECT_NE(json.find("+inf"), std::string::npos);
  // Balanced braces (cheap well-formedness check without a JSON parser).
  int depth = 0;
  for (char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

// -- System-level metrics -----------------------------------------------------

TEST(SystemMetricsTest, QueriesFeedTheSystemRegistry) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(35000);
  for (int i = 0; i < 3; ++i) {
    MustExecute(fx.session.get(),
                "SELECT isbn FROM Books B WHERE B.isbn = 1 "
                "CURRENCY BOUND 10 MIN ON (B)");
  }
  obs::MetricsRegistry& m = fx.sys.metrics();
  EXPECT_EQ(m.counter("rcc.cache.queries")->value(), 3);
  EXPECT_EQ(m.counter("rcc.switch.local")->value(), 3);
  EXPECT_EQ(m.counter("rcc.switch.remote")->value(), 0);
  // Every guard probe lands in the latency histogram.
  EXPECT_EQ(m.histogram("rcc.guard.probe_ms")->count(), 3);
  EXPECT_EQ(m.histogram("rcc.cache.query_run_ms")->count(), 3);
  // Replication deliveries during warm-up were observed.
  EXPECT_GT(m.counter("rcc.replication.deliveries")->value(), 0);
  // The dump carries the documented schema and the live instrument names.
  std::string json = m.ToJson();
  EXPECT_NE(json.find("rcc.metrics.v1"), std::string::npos);
  EXPECT_NE(json.find("rcc.cache.queries"), std::string::npos);
  EXPECT_NE(json.find("rcc.guard.probe_ms"), std::string::npos);
}

// -- Per-query traces (SET TRACE) ---------------------------------------------

TEST(TraceTest, SetTraceAttachesTraceWithGuardEvents) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(35000);
  Session* s = fx.session.get();
  MustExecute(s, "SET TRACE ON");
  QueryResult r = MustExecute(s,
                              "SELECT isbn FROM Books B WHERE B.isbn = 1 "
                              "CURRENCY BOUND 10 MIN ON (B)");
  ASSERT_NE(r.trace, nullptr);
  ASSERT_GE(r.trace->events().size(), 2u);
  const obs::TraceEvent* probe = r.trace->FirstOf(TraceEventKind::kGuardProbe);
  ASSERT_NE(probe, nullptr);
  EXPECT_NE(probe->detail.find("heartbeat="), std::string::npos);
  EXPECT_NE(probe->detail.find("bound="), std::string::npos);
  EXPECT_NE(probe->detail.find("verdict=local"), std::string::npos);
  const obs::TraceEvent* decision =
      r.trace->FirstOf(TraceEventKind::kSwitchDecision);
  ASSERT_NE(decision, nullptr);
  EXPECT_EQ(decision->detail, "local");

  MustExecute(s, "SET TRACE OFF");
  QueryResult off = MustExecute(s,
                                "SELECT isbn FROM Books B WHERE B.isbn = 1 "
                                "CURRENCY BOUND 10 MIN ON (B)");
  // Disabled-path contract: no trace object is ever allocated.
  EXPECT_EQ(off.trace, nullptr);
}

TEST(TraceTest, SetTraceStatementParsing) {
  BookstoreFixture fx;
  Session* s = fx.session.get();
  EXPECT_FALSE(s->trace_enabled());
  QueryResult r = MustExecute(s, "SET TRACE ON");
  EXPECT_TRUE(s->trace_enabled());
  EXPECT_NE(r.message.find("ON"), std::string::npos);
  MustExecute(s, "set trace = off;");
  EXPECT_FALSE(s->trace_enabled());
  // Unknown values fall through to the SQL parser and fail there.
  EXPECT_FALSE(s->Execute("SET TRACE MAYBE").ok());
}

// -- EXPLAIN / EXPLAIN ANALYZE ------------------------------------------------

class ExplainTest : public ::testing::Test {
 protected:
  ExplainTest() : fx_(10000, 2000) { fx_.sys.AdvanceTo(35000); }

  static constexpr const char* kQuery =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 6 SECONDS ON (B)";

  BookstoreFixture fx_;
};

TEST_F(ExplainTest, ExplainRendersPlanWithoutExecuting) {
  int64_t queries_before =
      fx_.sys.metrics().counter("rcc.cache.queries")->value();
  QueryResult r =
      MustExecute(fx_.session.get(), std::string("EXPLAIN ") + kQuery);
  EXPECT_TRUE(r.rows.empty());
  EXPECT_NE(r.message.find("plan shape:"), std::string::npos);
  EXPECT_NE(r.message.find("est cost:"), std::string::npos);
  EXPECT_NE(r.message.find("local:"), std::string::npos);
  EXPECT_NE(r.message.find("remote:"), std::string::npos);
  EXPECT_NE(r.message.find("est_p_local="), std::string::npos);
  // Plain EXPLAIN never executes the query.
  EXPECT_EQ(r.stats.guard_evaluations, 0);
  EXPECT_EQ(fx_.sys.metrics().counter("rcc.cache.queries")->value(),
            queries_before);
}

TEST_F(ExplainTest, ExplainAnalyzeShowsGuardVerdictAndChosenBranch) {
  QueryResult r = MustExecute(fx_.session.get(),
                              std::string("EXPLAIN ANALYZE ") + kQuery);
  ASSERT_NE(r.trace, nullptr);
  // Executed for real: rows came back and the guard ran.
  EXPECT_FALSE(r.rows.empty());
  EXPECT_GE(r.stats.guard_evaluations, 1);
  // The rendering shows the probe (heartbeat, bound, verdict), the branch
  // decision with its estimate, and the stats block.
  EXPECT_NE(r.message.find("guard_probe"), std::string::npos);
  EXPECT_NE(r.message.find("heartbeat="), std::string::npos);
  EXPECT_NE(r.message.find("bound="), std::string::npos);
  EXPECT_NE(r.message.find("verdict="), std::string::npos);
  EXPECT_NE(r.message.find("-- guards --"), std::string::npos);
  EXPECT_NE(r.message.find("est_p_local="), std::string::npos);
  EXPECT_NE(r.message.find("actual:"), std::string::npos);
  EXPECT_NE(r.message.find("-- stats --"), std::string::npos);
}

TEST_F(ExplainTest, ExplainAnalyzeTracesRetryAndDegradeUnderOutage) {
  FaultInjectorConfig outage;
  outage.outages = {{0, 1000000000}};
  fx_.sys.cache()->SetFaultInjector(outage);
  RemotePolicy policy;
  policy.timeout_ms = 500;
  policy.max_retries = 2;
  policy.backoff_base_ms = 100;
  policy.backoff_multiplier = 2.0;
  policy.backoff_jitter_ms = 0;
  policy.breaker_threshold = 0;
  fx_.sys.cache()->SetRemotePolicy(policy);
  MustExecute(fx_.session.get(), "SET DEGRADE ALWAYS");

  // Age the replica past the 6s bound so the guard sends the query remote,
  // where the permanent outage forces retries and then a degraded serve.
  CurrencyRegion* region = fx_.sys.cache()->region(1);
  fx_.sys.AdvanceTo(region->local_heartbeat() + 8000);
  QueryResult r = MustExecute(fx_.session.get(),
                              std::string("EXPLAIN ANALYZE ") + kQuery);
  ASSERT_NE(r.trace, nullptr);
  EXPECT_TRUE(r.degraded);
  // Guard verdict was "stale", the switch went remote, the link was retried,
  // and the query was finally served degraded from the local view.
  EXPECT_NE(r.message.find("verdict=stale"), std::string::npos);
  EXPECT_NE(r.message.find("actual: remote"), std::string::npos);
  EXPECT_GE(r.trace->CountOf(TraceEventKind::kRemoteAttempt), 2);
  EXPECT_GE(r.trace->CountOf(TraceEventKind::kRemoteBackoff), 1);
  ASSERT_EQ(r.trace->CountOf(TraceEventKind::kDegradedServe), 1);
  const obs::TraceEvent* degrade =
      r.trace->FirstOf(TraceEventKind::kDegradedServe);
  EXPECT_NE(degrade->detail.find("staleness="), std::string::npos);
  EXPECT_NE(r.message.find("degraded_serve"), std::string::npos);
  // Stats block reflects the truthful accounting: the remote branch was
  // attempted but the serve was local.
  EXPECT_EQ(r.stats.switch_remote_attempted, 1);
  EXPECT_EQ(r.stats.switch_remote, 0);
  EXPECT_EQ(r.stats.switch_local, 1);
}

// -- Golden file --------------------------------------------------------------

/// Replaces every run of digits (optionally followed by a fractional part)
/// with `#`, so the golden file is stable across cost-model and timing
/// tweaks while still pinning the overall EXPLAIN structure.
std::string NormalizeNumbers(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size();) {
    if (std::isdigit(static_cast<unsigned char>(s[i]))) {
      while (i < s.size() &&
             (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.')) {
        ++i;
      }
      out += '#';
    } else {
      out += s[i++];
    }
  }
  return out;
}

TEST_F(ExplainTest, GoldenExplainSwitchUnion) {
  QueryResult r =
      MustExecute(fx_.session.get(), std::string("EXPLAIN ") + kQuery);
  std::string normalized = NormalizeNumbers(r.message);

  std::string golden_path =
      std::string(RCC_TESTS_GOLDEN_DIR) + "/explain_switch_union.golden";
  std::FILE* f = std::fopen(golden_path.c_str(), "r");
  ASSERT_NE(f, nullptr) << "missing golden file " << golden_path;
  std::string golden;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) golden.append(buf, n);
  std::fclose(f);

  EXPECT_EQ(normalized, golden)
      << "normalized EXPLAIN output drifted from " << golden_path
      << "\n-- actual (normalized) --\n"
      << normalized;
}

}  // namespace
}  // namespace rcc
