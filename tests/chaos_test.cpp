// Network chaos suite (DESIGN.md §15): a seeded fault injector sits between
// RccClient and its socket — partial writes, one-byte trickle sends, short
// reads, delays, mid-frame resets and connect refusals — while the client's
// retry layer (reconnect + HELLO replay + bounded backoff + SELECT-only
// resend) keeps the conversation alive. The survivability contract under
// test: every request issued through QueryWithRetry ends in rows or a
// well-formed statement status — never a protocol error, a hang, or a
// leaked pinned snapshot epoch. Registered under the `chaos` ctest label
// (and `server`/`tsan`), so `ctest --preset chaos[-tsan]` runs exactly this
// battery.

#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "server/chaos.h"
#include "server/client.h"
#include "server/server.h"
#include "server/wire.h"
#include "test_util.h"

namespace rcc {
namespace {

using server::AggressiveChaosOptions;
using server::ChaosOptions;
using server::QueryResponse;
using server::RccClient;
using server::RccServer;
using server::ServerOptions;
using testing_util::BookstoreFixture;

std::string ChaosSocketPath(const char* tag) {
  return "/tmp/rcc_chaos_test_" + std::to_string(getpid()) + "_" + tag +
         ".sock";
}

ServerOptions ChaosServerOptions(ServerOptions opts, const std::string& path) {
  opts.uds_path = path;
  if (opts.workers == 0) opts.workers = 4;
  return opts;
}

struct ChaosFixture {
  BookstoreFixture book;
  std::string path;
  RccServer server;

  explicit ChaosFixture(const char* tag, ServerOptions opts = {})
      : book(),
        path(ChaosSocketPath(tag)),
        server(&book.sys, ChaosServerOptions(opts, ChaosSocketPath(tag))) {
    book.sys.AdvanceTo(30000);  // let both regions refresh once
    EXPECT_TRUE(server.Start().ok());
  }

  ~ChaosFixture() { server.Stop(); }

  RccClient ConnectWithChaos(const ChaosOptions& chaos) {
    RccClient c;
    c.EnableChaos(chaos);
    // The first dial may be chaos-refused; QueryWithRetry recovers from a
    // dead connection on its own as long as the endpoint is remembered, so
    // only repeated refusals at setup are worth retrying here.
    for (int attempt = 0; attempt < 16; ++attempt) {
      if (c.ConnectUds(path).ok()) break;
    }
    EXPECT_TRUE(c.connected());
    auto hello = c.Hello("chaos-test");
    EXPECT_TRUE(hello.ok()) << hello.status().ToString();
    return c;
  }

  void ExpectNoEpochLeak() {
    for (int i = 0; i < 200 && server.in_flight() > 0; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    EXPECT_EQ(server.in_flight(), 0);
    const SnapshotEpochManager& epochs = book.sys.cache()->epoch_manager();
    EXPECT_EQ(epochs.MinPinnedEpoch(), epochs.current_epoch());
  }
};

// The headline chaos run: an aggressive everything-on fault mix while a
// client issues a few hundred SELECTs through the retry layer. Every
// outcome must be structured — rows, or a well-formed error status the
// server chose to send (e.g. Overloaded under admission pressure). Any
// transport failure surviving the retry budget fails the test, as does a
// framing error (those surface as InvalidArgument from the decoder).
TEST(ChaosTest, AggressiveFaultMixEveryRequestAnswered) {
  ChaosFixture fx("aggressive");
  const char* queries[] = {
      "SELECT price FROM Books B WHERE B.isbn = 1",
      "SELECT isbn, title FROM Books B WHERE B.isbn = 7",
      "SELECT price FROM Books B WHERE B.isbn = 3 CURRENCY BOUND 10 MIN ON "
      "(B)",
      "SELECT COUNT(*) FROM Books B",
  };
  for (uint64_t seed : {0xFA17u, 1u, 42u}) {
    RccClient c = fx.ConnectWithChaos(AggressiveChaosOptions(seed));
    int answered = 0;
    for (int i = 0; i < 120; ++i) {
      auto resp = c.QueryWithRetry(queries[i % 4]);
      ASSERT_TRUE(resp.ok())
          << "seed " << seed << " request " << i << ": transport failure "
          << resp.status().ToString();
      // A statement-level error is an acceptable answer only if it is one
      // of the structured retryable statuses the overload layer emits; this
      // workload never trips those gates (no admission limit configured),
      // so in practice every answer carries rows.
      if (resp->ok()) ++answered;
    }
    EXPECT_GT(answered, 0) << "seed " << seed;
  }
  fx.ExpectNoEpochLeak();
}

// Mid-frame resets are the harshest fault: the server may observe half a
// frame, the client may lose a response it already half-read. The retry
// layer must reconnect (fresh decoder, HELLO replay) and resend. With
// reset_prob cranked up, reconnects and replays must actually happen —
// otherwise the test is vacuous.
TEST(ChaosTest, MidFrameResetsForceReconnectAndReplay) {
  ChaosFixture fx("resets");
  ChaosOptions chaos;
  chaos.seed = 0xC0FFEE;
  chaos.reset_prob = 0.15;
  chaos.partial_write_prob = 0.5;
  RccClient c = fx.ConnectWithChaos(chaos);
  server::RetryOptions retry;
  retry.max_attempts = 10;
  int rows_seen = 0;
  for (int i = 0; i < 80; ++i) {
    auto resp =
        c.QueryWithRetry("SELECT price FROM Books B WHERE B.isbn = 2", retry);
    ASSERT_TRUE(resp.ok()) << "request " << i << ": "
                           << resp.status().ToString();
    ASSERT_TRUE(resp->ok()) << resp->status.message;
    rows_seen += static_cast<int>(resp->rows.size());
  }
  EXPECT_EQ(rows_seen, 80);
  EXPECT_GT(c.reconnects(), 0);
  EXPECT_GT(c.replays(), 0);
  fx.ExpectNoEpochLeak();
}

// Short reads and delays fragment and coalesce the server's response
// stream arbitrarily; the client-side FrameDecoder must reassemble exact
// frames from any byte-boundary slicing without a single retry.
TEST(ChaosTest, ShortReadsNeverCorruptFraming) {
  ChaosFixture fx("shortread");
  ChaosOptions chaos;
  chaos.seed = 7;
  chaos.short_read_prob = 0.9;
  chaos.delay_prob = 0.2;
  chaos.max_delay_us = 500;
  RccClient c = fx.ConnectWithChaos(chaos);
  for (int i = 0; i < 40; ++i) {
    auto resp = c.Query("SELECT isbn, title, price FROM Books B");
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_TRUE(resp->ok());
    EXPECT_FALSE(resp->rows.empty());
  }
  EXPECT_EQ(c.reconnects(), 0);
  fx.ExpectNoEpochLeak();
}

// Replaying DML after a reconnect could commit twice on the back-end, so
// the retry entry point refuses anything but SELECT/EXPLAIN outright.
TEST(ChaosTest, RetryRefusesNonIdempotentStatements) {
  ChaosFixture fx("dml");
  RccClient c = fx.ConnectWithChaos(ChaosOptions{});  // chaos disabled
  auto ins = c.QueryWithRetry(
      "INSERT INTO Books (isbn, title, price) VALUES (99999, 'x', 1)");
  ASSERT_FALSE(ins.ok());
  EXPECT_EQ(ins.status().code(), StatusCode::kInvalidArgument)
      << ins.status().ToString();
  auto upd = c.QueryWithRetry("UPDATE Books SET price = 1 WHERE isbn = 1");
  EXPECT_FALSE(upd.ok());
  // The connection itself is untouched by the refusals.
  auto sel = c.QueryWithRetry("SELECT price FROM Books B WHERE B.isbn = 1");
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_TRUE(sel->ok());
}

// Overload + chaos together: a one-worker server with a tiny admission
// limit, hammered through the fault injector. The acceptance bar from the
// issue: every admitted request is answered with rows or a structured
// retryable status — zero protocol errors, zero hung connections, zero
// leaked pins.
TEST(ChaosTest, OverloadPlusChaosYieldsOnlyStructuredOutcomes) {
  ServerOptions opts;
  opts.workers = 1;
  opts.admission_limit = 2;
  ChaosFixture fx("overload", opts);
  ChaosOptions chaos;
  chaos.seed = 0xBEEF;
  chaos.partial_write_prob = 0.3;
  chaos.short_read_prob = 0.3;
  chaos.delay_prob = 0.1;
  chaos.max_delay_us = 300;
  RccClient c = fx.ConnectWithChaos(chaos);
  int rows = 0;
  int overloaded = 0;
  for (int i = 0; i < 60; ++i) {
    auto resp = c.QueryWithRetry("SELECT COUNT(*) FROM Books B");
    ASSERT_TRUE(resp.ok()) << "request " << i << ": "
                           << resp.status().ToString();
    if (resp->ok()) {
      ++rows;
    } else {
      ASSERT_EQ(resp->status.code,
                static_cast<uint16_t>(StatusCode::kOverloaded))
          << resp->status.message;
      ++overloaded;
    }
  }
  EXPECT_EQ(rows + overloaded, 60);
  EXPECT_GT(rows, 0);
  fx.ExpectNoEpochLeak();
}

}  // namespace
}  // namespace rcc
