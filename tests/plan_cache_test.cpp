// Parameterized plan cache (src/plan/plan_cache.*) and its session wiring:
// key anatomy (degrade mode and timeordered flag are part of the key, typed
// literal slots), two-level L1/L2 lookup, versioned invalidation, LRU
// eviction, value-bound entries, and the session fast path (hit skips the
// front end, EXPLAIN shows "plan: cached", parameterized reuse binds fresh
// literals).
//
// The stale-plan-across-degrade regression lives here. Under the
// RCC_PLANCACHE_MUTATE build the cache key drops the degrade mode, so a plan
// created under SET DEGRADE NONE is served under ALWAYS and vice versa; the
// strict assertions below invert to prove the planted bug actually manifests
// through this exact surface (and sim_seeds_test proves the conformance
// oracle catches its behavioural consequences).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "backend/fault_injector.h"
#include "plan/plan_cache.h"
#include "replication/fault_injector.h"
#include "replication/health.h"
#include "test_util.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::IntColumn;
using testing_util::MustExecute;

// ---------------------------------------------------------------------------
// PlanCache unit tests (no engine: entries with null plans are fine, the
// cache never dereferences them).
// ---------------------------------------------------------------------------

std::shared_ptr<PlanCacheEntry> DummyEntry(
    DegradeMode mode = DegradeMode::kNone, bool parameterized = true) {
  auto e = std::make_shared<PlanCacheEntry>();
  e->parameterized = parameterized;
  e->created_degrade = mode;
  return e;
}

TEST(PlanCacheUnitTest, ExactTextHitThenNormalizedHit) {
  PlanCache cache;
  auto miss = cache.Lookup("SELECT a FROM t WHERE a = 1",
                           DegradeMode::kNone, false);
  EXPECT_FALSE(miss.hit.has_value());
  ASSERT_TRUE(miss.norm.ok);
  ASSERT_EQ(miss.norm.slots.size(), 1u);
  cache.Insert(miss.norm, "SELECT a FROM t WHERE a = 1", DegradeMode::kNone,
               false, DummyEntry(), miss.version_at_lookup);

  // L1: byte-identical text, captured params returned without lexing.
  auto l1 = cache.Lookup("SELECT a FROM t WHERE a = 1",
                         DegradeMode::kNone, false);
  ASSERT_TRUE(l1.hit.has_value());
  ASSERT_EQ(l1.hit->params.size(), 1u);
  EXPECT_EQ(l1.hit->params[0], Value::Int(1));

  // L2: same template, different literal and spelling; the new literal
  // becomes the bind parameter.
  auto l2 = cache.Lookup("select a from t where a = 42",
                         DegradeMode::kNone, false);
  ASSERT_TRUE(l2.hit.has_value());
  ASSERT_EQ(l2.hit->params.size(), 1u);
  EXPECT_EQ(l2.hit->params[0], Value::Int(42));

  EXPECT_EQ(cache.hits(), 2);
  EXPECT_EQ(cache.misses(), 1);
}

// The bugfix regression at the key level: a plan created under one degrade
// mode must never surface under another.
TEST(PlanCacheUnitTest, DegradeModeIsPartOfTheKey) {
  PlanCache cache;
  auto miss = cache.Lookup("SELECT a FROM t", DegradeMode::kNone, false);
  cache.Insert(miss.norm, "SELECT a FROM t", DegradeMode::kNone, false,
               DummyEntry(DegradeMode::kNone), miss.version_at_lookup);
  ASSERT_TRUE(cache.Lookup("SELECT a FROM t", DegradeMode::kNone, false)
                  .hit.has_value());

  auto other = cache.Lookup("SELECT a FROM t", DegradeMode::kAlways, false);
  auto bounded = cache.Lookup("SELECT a FROM t", DegradeMode::kBounded, false);
#ifdef RCC_PLANCACHE_MUTATE
  // Planted-bug build: the key drops the mode, so the NONE-created plan IS
  // served under ALWAYS/BOUNDED. This inversion proves the mutation is live.
  ASSERT_TRUE(other.hit.has_value());
  ASSERT_TRUE(bounded.hit.has_value());
  EXPECT_EQ(other.hit->entry->created_degrade, DegradeMode::kNone);
#else
  EXPECT_FALSE(other.hit.has_value())
      << "a plan cached under SET DEGRADE NONE must not be served under "
         "ALWAYS: degrade mode changes run-time behaviour";
  EXPECT_FALSE(bounded.hit.has_value());
#endif
}

TEST(PlanCacheUnitTest, TimeorderedFlagIsPartOfTheKey) {
  PlanCache cache;
  auto miss = cache.Lookup("SELECT a FROM t", DegradeMode::kNone, false);
  cache.Insert(miss.norm, "SELECT a FROM t", DegradeMode::kNone, false,
               DummyEntry(), miss.version_at_lookup);
  ASSERT_TRUE(cache.Lookup("SELECT a FROM t", DegradeMode::kNone, false)
                  .hit.has_value());
  // Same text inside BEGIN TIMEORDERED is a different key: timeline floors
  // change what the guard accepts.
  EXPECT_FALSE(cache.Lookup("SELECT a FROM t", DegradeMode::kNone, true)
                   .hit.has_value());
}

TEST(PlanCacheUnitTest, InvalidateDropsEntriesLazily) {
  PlanCache cache;
  auto miss = cache.Lookup("SELECT a FROM t WHERE a = 1",
                           DegradeMode::kNone, false);
  cache.Insert(miss.norm, "SELECT a FROM t WHERE a = 1", DegradeMode::kNone,
               false, DummyEntry(), miss.version_at_lookup);
  EXPECT_EQ(cache.size(), 2u);  // one L1 + one L2 entry

  uint64_t v = cache.version();
  cache.Invalidate();
  EXPECT_GT(cache.version(), v);
  EXPECT_EQ(cache.invalidations(), 1);

  // Stale entries are detected (and erased) on the next lookup.
  auto after = cache.Lookup("SELECT a FROM t WHERE a = 1",
                            DegradeMode::kNone, false);
  EXPECT_FALSE(after.hit.has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(PlanCacheUnitTest, InsertRefusedWhenVersionMovedDuringOptimization) {
  PlanCache cache;
  auto miss = cache.Lookup("SELECT a FROM t", DegradeMode::kNone, false);
  // A catalog / statistics change lands while the caller is optimizing...
  cache.Invalidate();
  // ...so the plan built against the old world must not be published.
  cache.Insert(miss.norm, "SELECT a FROM t", DegradeMode::kNone, false,
               DummyEntry(), miss.version_at_lookup);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup("SELECT a FROM t", DegradeMode::kNone, false)
                   .hit.has_value());
}

TEST(PlanCacheUnitTest, ValueBoundEntryOnlyMatchesIdenticalValues) {
  PlanCache cache;
  auto miss = cache.Lookup("SELECT a FROM t WHERE a = 7",
                           DegradeMode::kNone, false);
  auto entry = DummyEntry(DegradeMode::kNone, /*parameterized=*/false);
  entry->creation_values = {Value::Int(7)};
  cache.Insert(miss.norm, "SELECT a FROM t WHERE a = 7", DegradeMode::kNone,
               false, std::move(entry), miss.version_at_lookup);

  // Identical value: hit (binding 7 is identical to the literal the plan was
  // optimized with).
  ASSERT_TRUE(cache.Lookup("SELECT a FROM t WHERE a = 7",
                           DegradeMode::kNone, false)
                  .hit.has_value());
  // Same template, different value: the value-bound plan must not be reused.
  EXPECT_FALSE(cache.Lookup("SELECT a FROM t WHERE a = 8",
                            DegradeMode::kNone, false)
                   .hit.has_value());
}

TEST(PlanCacheUnitTest, LruEvictsLeastRecentlyUsedTemplate) {
  PlanCache::Config cfg;
  cfg.shards = 1;
  cfg.capacity_per_shard = 2;
  PlanCache cache(cfg);
  // Lookups use a fresh literal each time so they always miss L1 and
  // exercise the L2 (template) level, whose LRU this test pins down.
  auto text = [](int t, int lit) {
    return "SELECT a FROM t" + std::to_string(t) +
           " WHERE a = " + std::to_string(lit);
  };
  for (int t : {1, 2}) {
    auto m = cache.Lookup(text(t, 1), DegradeMode::kNone, false);
    cache.Insert(m.norm, text(t, 1), DegradeMode::kNone, false, DummyEntry(),
                 m.version_at_lookup);
  }
  // Touch template 1 so template 2 is the LRU victim.
  ASSERT_TRUE(
      cache.Lookup(text(1, 9), DegradeMode::kNone, false).hit.has_value());
  auto m3 = cache.Lookup(text(3, 1), DegradeMode::kNone, false);
  cache.Insert(m3.norm, text(3, 1), DegradeMode::kNone, false, DummyEntry(),
               m3.version_at_lookup);
  EXPECT_TRUE(
      cache.Lookup(text(1, 8), DegradeMode::kNone, false).hit.has_value());
  EXPECT_TRUE(
      cache.Lookup(text(3, 8), DegradeMode::kNone, false).hit.has_value());
  EXPECT_FALSE(
      cache.Lookup(text(2, 8), DegradeMode::kNone, false).hit.has_value());
}

// ---------------------------------------------------------------------------
// Session fast-path behaviour.
// ---------------------------------------------------------------------------

TEST(PlanCacheSessionTest, SecondExecutionHitsCacheWithSameRows) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  PlanCache& pc = fx.sys.cache()->plan_cache();
  const std::string q =
      "SELECT isbn, price FROM Books B WHERE B.isbn = 2 "
      "CURRENCY BOUND 10 MIN ON (B)";

  int64_t hits0 = pc.hits(), misses0 = pc.misses();
  QueryResult first = MustExecute(fx.session.get(), q);
  EXPECT_EQ(pc.misses(), misses0 + 1);
  EXPECT_EQ(pc.hits(), hits0);

  QueryResult second = MustExecute(fx.session.get(), q);
  EXPECT_EQ(pc.hits(), hits0 + 1);
  EXPECT_EQ(pc.misses(), misses0 + 1);
  ASSERT_EQ(first.rows.size(), second.rows.size());
  EXPECT_EQ(IntColumn(first), IntColumn(second));
  EXPECT_EQ(first.shape, second.shape);
}

TEST(PlanCacheSessionTest, ParameterizedReuseBindsFreshLiterals) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  PlanCache& pc = fx.sys.cache()->plan_cache();
  auto query = [](int isbn) {
    return "SELECT isbn FROM Books B WHERE B.isbn = " + std::to_string(isbn) +
           " CURRENCY BOUND 10 MIN ON (B)";
  };

  QueryResult r1 = MustExecute(fx.session.get(), query(1));
  EXPECT_EQ(IntColumn(r1), std::vector<int64_t>{1});

  // Different literal, same template: an L2 hit must bind the new value and
  // return the row for isbn 2, not a stale re-run of isbn 1.
  int64_t hits0 = pc.hits();
  QueryResult r2 = MustExecute(fx.session.get(), query(2));
  EXPECT_EQ(pc.hits(), hits0 + 1);
  EXPECT_EQ(IntColumn(r2), std::vector<int64_t>{2});

  QueryResult r3 = MustExecute(fx.session.get(), query(3));
  EXPECT_EQ(IntColumn(r3), std::vector<int64_t>{3});
}

TEST(PlanCacheSessionTest, ExplainMarksCachedPlans) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  const std::string q =
      "EXPLAIN SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 MIN ON (B)";
  QueryResult first = MustExecute(fx.session.get(), q);
  EXPECT_EQ(first.message.find("plan: cached"), std::string::npos);
  QueryResult second = MustExecute(fx.session.get(), q);
  EXPECT_NE(second.message.find("plan: cached"), std::string::npos)
      << second.message;
}

TEST(PlanCacheSessionTest, ViewSetChangeInvalidatesCachedPlans) {
  BookstoreFixture fx;
  fx.sys.AdvanceTo(30000);
  PlanCache& pc = fx.sys.cache()->plan_cache();
  const std::string q =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 CURRENCY BOUND 10 MIN ON (B)";
  MustExecute(fx.session.get(), q);
  MustExecute(fx.session.get(), q);
  int64_t inval0 = pc.invalidations();

  // Any view-set change bumps the cache version; the cached plan for q is
  // stale (it may now have a better — or no longer valid — local option).
  ViewDef extra;
  extra.name = "BooksCopy2";
  extra.source_table = "Books";
  extra.columns = {"isbn", "title", "price", "stock"};
  extra.region = 1;
  ASSERT_TRUE(fx.sys.cache()->CreateView(extra).ok());
  EXPECT_GT(pc.invalidations(), inval0);

  int64_t misses0 = pc.misses();
  MustExecute(fx.session.get(), q);  // must re-optimize, not reuse
  EXPECT_EQ(pc.misses(), misses0 + 1);
}

// ---------------------------------------------------------------------------
// The stale-plan-across-degrade regression (behavioural, through the
// session). Fixture mirrors fault_test's DegradeTest: f = 10s, d = 2s,
// deliveries at k*10000 + 2000; a permanent back-end outage forces every
// guard failure into the degrade policy instead of remote execution.
// ---------------------------------------------------------------------------

class PlanCacheDegradeTest : public ::testing::Test {
 protected:
  PlanCacheDegradeTest() : fx_(10000, 2000) {
    fx_.sys.AdvanceTo(35000);
    FaultInjectorConfig outage;
    outage.outages = {{0, 1000000000}};
    fx_.sys.cache()->SetFaultInjector(outage);
  }

  /// Moves virtual time to where the Books replica is exactly `staleness_ms`
  /// stale (see fault_test.cpp).
  SimTimeMs AdvanceToStaleness(SimTimeMs staleness_ms) {
    CurrencyRegion* region = fx_.sys.cache()->region(1);
    SimTimeMs hb = region->local_heartbeat();
    SimTimeMs target = hb + staleness_ms;
    while (target < fx_.sys.Now()) {
      fx_.sys.AdvanceTo(fx_.sys.Now() + 1000);
      SimTimeMs refreshed = region->local_heartbeat();
      if (refreshed != hb) {
        hb = refreshed;
        target = hb + staleness_ms;
      }
    }
    fx_.sys.AdvanceTo(target);
    EXPECT_EQ(region->local_heartbeat(), hb);
    return hb;
  }

  static constexpr const char* kBoundedQuery =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 6 SECONDS ON (B)";

  BookstoreFixture fx_;
};

// Direction 1: a plan cached under ALWAYS (degraded serve authorized) must
// not be served after SET DEGRADE NONE — NONE must refuse the stale replica.
TEST_F(PlanCacheDegradeTest, AlwaysPlanIsNotServedUnderNone) {
  Session* s = fx_.session.get();
  MustExecute(s, "SET DEGRADE ALWAYS");
  AdvanceToStaleness(8000);  // 8s > the 6s bound; remote is down

  QueryResult degraded = MustExecute(s, kBoundedQuery);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_EQ(degraded.staleness_ms, 8000);
  // Warm the cache under ALWAYS with a second (hit) execution.
  QueryResult again = MustExecute(s, kBoundedQuery);
  EXPECT_TRUE(again.degraded);

  MustExecute(s, "SET DEGRADE NONE");
  auto refused = s->Execute(kBoundedQuery);
#ifdef RCC_PLANCACHE_MUTATE
  // Planted bug: the degrade-blind key serves the ALWAYS-created plan, so the
  // out-of-bound answer sails through a session that forbade degradation.
  ASSERT_TRUE(refused.ok());
  EXPECT_TRUE(refused->degraded);
#else
  ASSERT_FALSE(refused.ok())
      << "NONE session was served a degraded answer from an ALWAYS-cached "
         "plan";
  EXPECT_TRUE(refused.status().IsUnavailable())
      << refused.status().ToString();
#endif
}

// Direction 2: a plan cached under NONE must not pin ALWAYS to refusal.
TEST_F(PlanCacheDegradeTest, NonePlanIsNotServedUnderAlways) {
  Session* s = fx_.session.get();
  AdvanceToStaleness(8000);

  auto refused = s->Execute(kBoundedQuery);  // NONE: refuse, but plan caches
  ASSERT_FALSE(refused.ok());

  MustExecute(s, "SET DEGRADE ALWAYS");
  auto served = s->Execute(kBoundedQuery);
#ifdef RCC_PLANCACHE_MUTATE
  // Planted bug: the NONE-created plan is found under ALWAYS and still
  // behaves as NONE — the session authorized degradation and is refused.
  ASSERT_FALSE(served.ok());
#else
  ASSERT_TRUE(served.ok()) << served.status().ToString();
  EXPECT_TRUE(served->degraded);
  EXPECT_EQ(served->staleness_ms, 8000);
#endif
}

TEST_F(PlanCacheDegradeTest, BoundedAndAlwaysAreDistinctKeys) {
  Session* s = fx_.session.get();
  AdvanceToStaleness(8000);
  PlanCache& pc = fx_.sys.cache()->plan_cache();

  MustExecute(s, "SET DEGRADE ALWAYS");
  QueryResult r = MustExecute(s, kBoundedQuery);
  EXPECT_TRUE(r.degraded);

  // BOUNDED at 8s over a 6s bound: out of bound, must refuse — even though
  // the ALWAYS plan for the identical text is cached.
  MustExecute(s, "SET DEGRADE BOUNDED");
  [[maybe_unused]] int64_t misses0 = pc.misses();
  auto bounded = s->Execute(kBoundedQuery);
#ifdef RCC_PLANCACHE_MUTATE
  ASSERT_TRUE(bounded.ok());  // bug: ALWAYS plan served under BOUNDED
#else
  EXPECT_EQ(pc.misses(), misses0 + 1);  // distinct key -> fresh optimization
  ASSERT_FALSE(bounded.ok());
  EXPECT_TRUE(bounded.status().IsUnavailable());
#endif
}

// ---------------------------------------------------------------------------
// Quarantine: a region health change invalidates cached plans, and a query
// whose text is cached still refuses to serve a quarantined region.
// ---------------------------------------------------------------------------

TEST(PlanCacheSessionTest, QuarantinedRegionRefusesUnderCachedText) {
  BookstoreFixture fx(10000, 2000);
  fx.sys.AdvanceTo(35000);
  Session* s = fx.session.get();
  PlanCache& pc = fx.sys.cache()->plan_cache();
  const std::string q =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 CURRENCY BOUND 60 SEC ON (B)";

  // Healthy: serves locally; second run is a cache hit.
  QueryResult healthy = MustExecute(s, q);
  EXPECT_EQ(healthy.stats.switch_local, 1);
  MustExecute(s, q);
  EXPECT_GE(pc.hits(), 1);

  // Poison the next delivery into region 1 and cut the back-end off so a
  // remote fallback cannot mask a wrongly-served local branch.
  ReplicationFaultConfig faults;
  faults.poison_probability = 1.0;
  fx.sys.cache()->SetReplicationFaults(faults);
  QueryResult upd =
      MustExecute(s, "UPDATE Books SET price = 11 WHERE isbn = 1");
  EXPECT_EQ(upd.rows_affected, 1);
  int64_t inval0 = pc.invalidations();
  fx.sys.AdvanceBy(13000);
  ASSERT_EQ(fx.sys.cache()->RegionHealthOf(1), RegionHealth::kQuarantined);
  // The HEALTHY -> QUARANTINED transition invalidated cached plans (the
  // optimizer must now price region 1 remote-only).
  EXPECT_GT(pc.invalidations(), inval0);

  FaultInjectorConfig outage;
  outage.outages = {{0, 1000000000}};
  fx.sys.cache()->SetFaultInjector(outage);
  auto refused = s->Execute(q);
  ASSERT_FALSE(refused.ok())
      << "cached text served a quarantined region: " << refused->plan_text;
  fx.sys.cache()->ClearFaultInjector();

  // With the back end up again the same text answers remotely.
  QueryResult remote = MustExecute(s, q);
  EXPECT_EQ(remote.stats.switch_local, 0);
  EXPECT_EQ(IntColumn(remote), std::vector<int64_t>{1});
}

}  // namespace
}  // namespace rcc
