// SQL DML through the session: inserts/updates/deletes are forwarded to the
// back-end as one transaction (paper §3 item 5) and reach the cached views
// through normal replication.

#include <gtest/gtest.h>

#include "test_util.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::MustExecute;

class DmlTest : public ::testing::Test {
 protected:
  DmlTest() : fx_(5000, 1000) {}

  QueryResult Run(const std::string& sql) {
    return MustExecute(fx_.session.get(), sql);
  }

  BookstoreFixture fx_;
};

TEST_F(DmlTest, InsertSingleRow) {
  QueryResult r = Run(
      "INSERT INTO Books (isbn, title, price, stock) "
      "VALUES (9001, 'Inserted', 12.5, 3)");
  EXPECT_EQ(r.rows_affected, 1);
  EXPECT_NE(r.message.find("committed as txn"), std::string::npos);
  const Row* row = fx_.sys.backend()->table("Books")->Get({Value::Int(9001)});
  ASSERT_NE(row, nullptr);
  EXPECT_EQ((*row)[1].AsString(), "Inserted");
}

TEST_F(DmlTest, InsertMultipleRowsAndPartialColumns) {
  QueryResult r = Run(
      "INSERT INTO Books (isbn, title) VALUES (9002, 'A'), (9003, 'B')");
  EXPECT_EQ(r.rows_affected, 2);
  const Row* row = fx_.sys.backend()->table("Books")->Get({Value::Int(9002)});
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE((*row)[2].is_null());  // unlisted price is NULL
}

TEST_F(DmlTest, InsertErrors) {
  // Duplicate key fails (surfacing the back-end error) ...
  EXPECT_FALSE(fx_.session
                   ->Execute("INSERT INTO Books (isbn, title) "
                             "VALUES (1, 'dup')")
                   .ok());
  // ... as do arity mismatches and unknown tables/columns.
  EXPECT_FALSE(
      fx_.session->Execute("INSERT INTO Books (isbn) VALUES (1, 2)").ok());
  EXPECT_FALSE(
      fx_.session->Execute("INSERT INTO Nope (a) VALUES (1)").ok());
  EXPECT_FALSE(
      fx_.session->Execute("INSERT INTO Books (zzz) VALUES (1)").ok());
}

TEST_F(DmlTest, UpdateWithPredicateAndExpression) {
  QueryResult r = Run("UPDATE Books SET price = price + 100 WHERE isbn <= 3");
  EXPECT_EQ(r.rows_affected, 3);
  // Current read sees the change immediately.
  QueryResult fresh = Run("SELECT price FROM Books B WHERE B.isbn = 1");
  QueryResult relaxed = Run(
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_DOUBLE_EQ(fresh.rows[0][0].AsDouble(),
                   relaxed.rows[0][0].AsDouble() + 100.0);
  // After a refresh cycle the cached view catches up.
  fx_.sys.AdvanceTo(7000);
  QueryResult later = Run(
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_DOUBLE_EQ(later.rows[0][0].AsDouble(), fresh.rows[0][0].AsDouble());
}

TEST_F(DmlTest, UpdateNoMatchesAffectsZero) {
  QueryResult r = Run("UPDATE Books SET stock = 0 WHERE isbn = 123456");
  EXPECT_EQ(r.rows_affected, 0);
}

TEST_F(DmlTest, DeleteWithPredicate) {
  QueryResult r = Run("DELETE FROM Books WHERE isbn >= 499");
  EXPECT_EQ(r.rows_affected, 2);  // 499, 500
  EXPECT_EQ(fx_.sys.backend()->table("Books")->num_rows(), 498u);
  // Replicates to the view.
  fx_.sys.AdvanceTo(7000);
  QueryResult count = Run(
      "SELECT count(*) FROM Books B CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_EQ(count.rows[0][0].AsInt(), 498);
}

TEST_F(DmlTest, DmlIsOneTransaction) {
  size_t before = fx_.sys.backend()->log().size();
  Run("UPDATE Books SET stock = stock + 1 WHERE isbn <= 10");
  EXPECT_EQ(fx_.sys.backend()->log().size(), before + 1);
  EXPECT_EQ(fx_.sys.backend()->log().at(before).ops.size(), 10u);
}

TEST_F(DmlTest, WriterSeesOwnWriteUnderTimeline) {
  fx_.sys.AdvanceTo(12000);
  ASSERT_TRUE(fx_.session->Execute("BEGIN TIMEORDERED").ok());
  Run("UPDATE Books SET price = 77.25 WHERE isbn = 9");
  // The write itself advances nothing in the session; a tight read does.
  Run("SELECT price FROM Books B WHERE B.isbn = 9");
  QueryResult relaxed = Run(
      "SELECT price FROM Books B WHERE B.isbn = 9 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_DOUBLE_EQ(relaxed.rows[0][0].AsDouble(), 77.25);
}

TEST_F(DmlTest, KeyChangingUpdateReplicatesWithoutOrphans) {
  // End-to-end regression: an UPDATE that rewrites the clustered key must
  // (a) move the row at the back-end (delete old image + insert new) and
  // (b) replicate as delete-by-pre-image-key, so the cached view does not
  // keep an orphaned copy of the old row.
  fx_.sys.AdvanceTo(12000);
  QueryResult r = Run("UPDATE Books SET isbn = 9100 WHERE isbn = 7");
  EXPECT_EQ(r.rows_affected, 1);

  const Table* master = fx_.sys.backend()->table("Books");
  EXPECT_EQ(master->Get({Value::Int(7)}), nullptr);
  ASSERT_NE(master->Get({Value::Int(9100)}), nullptr);

  // Let the region deliver the change (interval 5s + delay 1s).
  fx_.sys.AdvanceBy(10000);
  auto copy = fx_.sys.cache()->view("BooksCopy");
  ASSERT_NE(copy, nullptr);
  EXPECT_EQ(copy->data().Get({Value::Int(7)}), nullptr)
      << "pre-image row orphaned in the cached view";
  EXPECT_NE(copy->data().Get({Value::Int(9100)}), nullptr);
  EXPECT_EQ(copy->data().num_rows(), master->num_rows());
}

TEST_F(DmlTest, ParserRejectsMalformedDml) {
  EXPECT_FALSE(fx_.session->Execute("INSERT Books VALUES (1)").ok());
  EXPECT_FALSE(fx_.session->Execute("UPDATE Books price = 1").ok());
  EXPECT_FALSE(fx_.session->Execute("DELETE Books").ok());
}

}  // namespace
}  // namespace rcc
