#include <gtest/gtest.h>

#include <algorithm>

#include "common/strings.h"
#include "optimizer/cost_model.h"
#include "optimizer/view_matching.h"
#include "plan/plan_cache.h"
#include "test_util.h"

namespace rcc {
namespace {

using testing_util::MustPrepare;
using testing_util::TpcdFixture;

// -- p-formula (paper Eq. (1)) ---------------------------------------------------

TEST(PFormulaTest, PiecewiseCases) {
  // B <= d: never local.
  EXPECT_DOUBLE_EQ(EstimateLocalProbability(5, 5, 100), 0.0);
  EXPECT_DOUBLE_EQ(EstimateLocalProbability(3, 5, 100), 0.0);
  // d < B <= d+f: linear.
  EXPECT_DOUBLE_EQ(EstimateLocalProbability(55, 5, 100), 0.5);
  EXPECT_DOUBLE_EQ(EstimateLocalProbability(105, 5, 100), 1.0);
  // B > d+f: always local.
  EXPECT_DOUBLE_EQ(EstimateLocalProbability(500, 5, 100), 1.0);
  // Continuous propagation (f=0): step function.
  EXPECT_DOUBLE_EQ(EstimateLocalProbability(6, 5, 0), 1.0);
  EXPECT_DOUBLE_EQ(EstimateLocalProbability(5, 5, 0), 0.0);
}

struct PCase {
  SimTimeMs bound;
  SimTimeMs delay;
  SimTimeMs interval;
};

class PFormulaSweep : public ::testing::TestWithParam<PCase> {};

TEST_P(PFormulaSweep, MonotoneAndBounded) {
  const PCase& c = GetParam();
  double p = EstimateLocalProbability(c.bound, c.delay, c.interval);
  EXPECT_GE(p, 0.0);
  EXPECT_LE(p, 1.0);
  // Monotone in the bound:
  EXPECT_LE(p, EstimateLocalProbability(c.bound + 10, c.delay, c.interval));
  // Anti-monotone in the delay:
  EXPECT_GE(p, EstimateLocalProbability(c.bound, c.delay + 10, c.interval));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PFormulaSweep,
    ::testing::Values(PCase{0, 5, 100}, PCase{10, 5, 100}, PCase{50, 5, 100},
                      PCase{104, 5, 100}, PCase{106, 5, 100},
                      PCase{10, 0, 100}, PCase{10, 5, 0},
                      PCase{10000, 5000, 15000}, PCase{1, 1, 1}));

TEST(CostTest, SwitchUnionExpectedCost) {
  CostParams costs;
  costs.guard_ms = 0.5;
  EXPECT_DOUBLE_EQ(SwitchUnionCost(1.0, 10, 100, costs), 10.5);
  EXPECT_DOUBLE_EQ(SwitchUnionCost(0.0, 10, 100, costs), 100.5);
  EXPECT_DOUBLE_EQ(SwitchUnionCost(0.5, 10, 100, costs), 55.5);
}

TEST(CostTest, SwitchUnionOutageChargesBurnedRetries) {
  // Regression: the degraded branch must charge the retry rounds burned
  // against the dead link before giving up, not just guard + local. The old
  // formula priced outages as nearly-free local serves, so raising the
  // outage rate *lowered* the modelled remote cost and biased plans toward
  // remote branches exactly when the link was least reliable.
  CostParams costs;
  costs.guard_ms = 0.5;
  costs.remote_retry_ms = 2.0;
  costs.remote_rtt_ms = 8.0;
  costs.remote_retry_rounds = 3.0;

  // o = 1: every remote serve degrades after burning the full retry budget.
  //   c = p*local + (1-p)*(rounds*(retry+rtt) + guard + local) + guard
  costs.remote_outage_rate = 1.0;
  EXPECT_DOUBLE_EQ(SwitchUnionCost(0.5, 90, 100, costs),
                   0.5 * 90 + 0.5 * (3 * 10 + 0.5 + 90) + 0.5);

  // With a degraded branch at least as expensive as a healthy serve, cost is
  // monotone non-decreasing in the outage rate.
  double prev = -1;
  for (double o = 0.0; o <= 1.0; o += 0.1) {
    costs.remote_outage_rate = o;
    double c = SwitchUnionCost(0.5, 90, 100, costs);
    EXPECT_GE(c, prev) << "outage rate " << o;
    prev = c;
  }

  // Healthy link (o = 0): the retry budget must not leak into the cost.
  costs.remote_outage_rate = 0.0;
  costs.remote_retry_rounds = 50.0;
  EXPECT_DOUBLE_EQ(SwitchUnionCost(0.5, 10, 100, costs), 55.5);
}

TEST(CostTest, AccessPathCosts) {
  CostParams costs;
  TableStats stats;
  stats.row_count = 100000;
  stats.avg_row_bytes = 64;
  double full = FullScanCost(stats, costs);
  double narrow = ClusteredRangeCost(stats, 10, costs);
  double index = SecondaryIndexCost(10, costs);
  EXPECT_LT(narrow, full);
  EXPECT_LT(index, full);
  // A secondary index fetching nearly everything is worse than scanning.
  EXPECT_GT(SecondaryIndexCost(100000, costs), full);
}

// -- bounds extraction & view matching --------------------------------------------

std::unique_ptr<Expr> Where(const std::string& pred) {
  auto stmt = ParseSelect("SELECT 1 FROM t WHERE " + pred);
  EXPECT_TRUE(stmt.ok());
  return std::move((*stmt)->where);
}

class BoundsTest : public ::testing::Test {
 protected:
  BoundsTest() : schema_({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}) {
    aliases_["t"] = 0;
  }
  std::map<std::string, RangeBound> Extract(const std::string& pred) {
    expr_ = Where(pred);
    conjuncts_ = SplitConjuncts(expr_.get());
    return ExtractBounds(conjuncts_, 0, aliases_, schema_);
  }
  Schema schema_;
  AliasMap aliases_;
  std::unique_ptr<Expr> expr_;
  std::vector<const Expr*> conjuncts_;
};

TEST_F(BoundsTest, RangeAndEquality) {
  auto bounds = Extract("t.a >= 5 AND t.a < 10 AND t.b = 3");
  ASSERT_EQ(bounds.count("a"), 1u);
  EXPECT_EQ(bounds["a"].lo->AsInt(), 5);
  EXPECT_FALSE(bounds["a"].lo_strict);
  EXPECT_EQ(bounds["a"].hi->AsInt(), 10);
  EXPECT_TRUE(bounds["a"].hi_strict);
  EXPECT_TRUE(bounds["b"].has_eq);
}

TEST_F(BoundsTest, MirroredLiteralComparison) {
  auto bounds = Extract("5 <= t.a AND 10 > t.a");
  EXPECT_EQ(bounds["a"].lo->AsInt(), 5);
  EXPECT_EQ(bounds["a"].hi->AsInt(), 10);
  EXPECT_TRUE(bounds["a"].hi_strict);
}

TEST_F(BoundsTest, TightensAcrossConjuncts) {
  auto bounds = Extract("t.a >= 5 AND t.a >= 8 AND t.a <= 20 AND t.a <= 12");
  EXPECT_EQ(bounds["a"].lo->AsInt(), 8);
  EXPECT_EQ(bounds["a"].hi->AsInt(), 12);
}

TEST_F(BoundsTest, IgnoresJoinPredicates) {
  auto bounds = Extract("t.a = t.b");
  EXPECT_TRUE(bounds.empty());
}

TEST_F(BoundsTest, BareColumnsMatchSchema) {
  auto bounds = Extract("a > 3 AND zzz > 4");
  EXPECT_EQ(bounds.count("a"), 1u);
  EXPECT_EQ(bounds.count("zzz"), 0u);
}

TEST(RangeSubsumptionTest, Cases) {
  ColumnRange view_range{"a", Value::Int(0), Value::Int(100)};
  std::map<std::string, RangeBound> bounds;
  // No bound on the column: the query may select outside the view.
  EXPECT_FALSE(RangeSubsumed(view_range, bounds));
  bounds["a"].lo = Value::Int(10);
  bounds["a"].hi = Value::Int(90);
  EXPECT_TRUE(RangeSubsumed(view_range, bounds));
  bounds["a"].lo = Value::Int(-5);
  EXPECT_FALSE(RangeSubsumed(view_range, bounds));
  // Half-open view ranges.
  ColumnRange lower_only{"a", Value::Int(0), std::nullopt};
  bounds["a"].lo = Value::Int(10);
  bounds["a"].hi.reset();
  EXPECT_TRUE(RangeSubsumed(lower_only, bounds));
}

// -- plan choice on the paper's TPCD setup ------------------------------------------

class PlanChoiceTest : public ::testing::Test {
 protected:
  PlanChoiceTest() : fx_(0.01) {
    // Run past a few refresh cycles so guards are in steady state.
    fx_.sys.AdvanceTo(40000);
  }

  PlanShape ShapeOf(const std::string& sql) {
    QueryPlan plan = MustPrepare(fx_.session.get(), sql);
    if (plan.root == nullptr) return PlanShape::kRemoteOnly;
    return plan.Shape();
  }

  TpcdFixture fx_;
};

TEST_F(PlanChoiceTest, Q1DefaultGoesRemote) {
  // Paper Q1/Q2: no currency clause -> remote (tight default).
  EXPECT_EQ(ShapeOf("SELECT c_name FROM Customer C WHERE C.c_custkey = 1"),
            PlanShape::kRemoteOnly);
}

TEST_F(PlanChoiceTest, Q3ConsistencyAcrossRegionsForcesRemote) {
  // Views satisfy the bounds but live in different regions: consistency
  // cannot be guaranteed locally (paper Q3 -> plan 1).
  EXPECT_EQ(
      ShapeOf("SELECT C.c_name, O.o_totalprice FROM Customer C, Orders O "
              "WHERE O.o_custkey = C.c_custkey AND C.c_custkey = 5 "
              "CURRENCY BOUND 10 MIN ON (C, O)"),
      PlanShape::kRemoteOnly);
}

TEST_F(PlanChoiceTest, Q4MixedPlan) {
  // Paper Q4: consistency relaxed; Customer bound below CR1's delay (5s) so
  // cust never usable locally, Orders relaxed -> mixed plan (plan 4).
  EXPECT_EQ(
      ShapeOf("SELECT C.c_name, O.o_totalprice FROM Customer C, Orders O "
              "WHERE O.o_custkey = C.c_custkey AND C.c_custkey = 5 "
              "CURRENCY BOUND 3 SECONDS ON (C), 10 MIN ON (O)"),
      PlanShape::kMixed);
}

TEST_F(PlanChoiceTest, Q5AllLocal) {
  // Paper Q5: both bounds relaxed, separate classes -> both views usable.
  EXPECT_EQ(
      ShapeOf("SELECT C.c_name, O.o_totalprice FROM Customer C, Orders O "
              "WHERE O.o_custkey = C.c_custkey AND C.c_custkey = 5 "
              "CURRENCY BOUND 10 MIN ON (C), 10 MIN ON (O)"),
      PlanShape::kAllLocal);
}

TEST_F(PlanChoiceTest, Q6SelectiveRangePrefersRemoteIndex) {
  // Paper Q6: highly selective range on c_acctbal; the back-end has a
  // secondary index, the cached view does not -> remote wins even though
  // the view satisfies the currency bound.
  EXPECT_EQ(
      ShapeOf("SELECT c_custkey, c_acctbal FROM Customer C "
              "WHERE C.c_acctbal > 9995 "
              "CURRENCY BOUND 10 MIN ON (C)"),
      PlanShape::kRemoteOnly);
}

TEST_F(PlanChoiceTest, StatisticsRefreshInvalidatesCachedPlans) {
  // Regression: a Statistics refresh that flips the Eq. 1 winner must bump
  // the plan-cache version — otherwise the stale Q6 remote plan keeps being
  // served from the cache after the local view became the winner.
  Session* s = fx_.session.get();
  PlanCache& pc = fx_.sys.cache()->plan_cache();
  const std::string q6 =
      "SELECT c_custkey, c_acctbal FROM Customer C WHERE C.c_acctbal > 9995 "
      "CURRENCY BOUND 10 MIN ON (C)";
  QueryResult before = testing_util::MustExecute(s, q6);
  EXPECT_EQ(before.shape, PlanShape::kRemoteOnly);
  int64_t hits0 = pc.hits();
  testing_util::MustExecute(s, q6);
  EXPECT_EQ(pc.hits(), hits0 + 1);  // the plan is now served from the cache

  // Refresh: balances collapsed into a narrow band, so `> 9995` is no longer
  // selective and the back-end index loses its advantage.
  TableStats stats = fx_.sys.cache()->catalog().GetStats("Customer");
  auto col = stats.columns.find("c_acctbal");
  ASSERT_NE(col, stats.columns.end());
  col->second.min = Value::Double(9990.0);
  int64_t inval0 = pc.invalidations();
  ASSERT_TRUE(fx_.sys.cache()->UpdateStatistics("Customer", stats).ok());
  EXPECT_GT(pc.invalidations(), inval0);

  QueryResult after = testing_util::MustExecute(s, q6);
  EXPECT_EQ(after.shape, PlanShape::kAllLocal)
      << "stale cached plan survived a statistics refresh that changed the "
         "Eq. 1 winner";
}

TEST_F(PlanChoiceTest, Q7WideRangePrefersLocalScan) {
  // Paper Q7: widening the range erodes the index advantage -> local view.
  EXPECT_EQ(
      ShapeOf("SELECT c_custkey, c_acctbal FROM Customer C "
              "WHERE C.c_acctbal > 1000 "
              "CURRENCY BOUND 10 MIN ON (C)"),
      PlanShape::kAllLocal);
}

TEST_F(PlanChoiceTest, BoundBelowDelayDiscardsLocalAtCompileTime) {
  QueryPlan plan = MustPrepare(
      fx_.session.get(),
      "SELECT c_name FROM Customer C WHERE C.c_custkey = 1 "
      "CURRENCY BOUND 4 SECONDS ON (C)");  // CR1 delay is 5s
  EXPECT_EQ(plan.Shape(), PlanShape::kRemoteOnly);
  // No guard in the plan at all: the check happened at compile time.
  EXPECT_EQ(plan.DescribeTree().find("SwitchUnion"), std::string::npos);
}

TEST_F(PlanChoiceTest, DeliveredPropertySatisfiesConstraint) {
  QueryPlan plan = MustPrepare(
      fx_.session.get(),
      "SELECT C.c_name, O.o_totalprice FROM Customer C, Orders O "
      "WHERE O.o_custkey = C.c_custkey AND C.c_custkey = 5 "
      "CURRENCY BOUND 10 MIN ON (C), 10 MIN ON (O)");
  ASSERT_NE(plan.root, nullptr);
  EXPECT_TRUE(plan.root->delivered.Satisfies(plan.resolved.constraint));
}

TEST_F(PlanChoiceTest, ViewMatchingDisabledForcesRemote) {
  auto select = ParseSelect(
      "SELECT c_name FROM Customer C WHERE C.c_custkey = 1 "
      "CURRENCY BOUND 10 MIN ON (C)");
  ASSERT_TRUE(select.ok());
  OptimizerOptions opts = fx_.sys.cache()->default_options();
  opts.enable_view_matching = false;
  auto plan = fx_.sys.cache()->Prepare(**select, opts);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->Shape(), PlanShape::kRemoteOnly);
}

TEST_F(PlanChoiceTest, GuardsDisabledUsesBareLocalScan) {
  auto select = ParseSelect(
      "SELECT c_name FROM Customer C WHERE C.c_custkey = 1 "
      "CURRENCY BOUND 10 MIN ON (C)");
  ASSERT_TRUE(select.ok());
  OptimizerOptions opts = fx_.sys.cache()->default_options();
  opts.enable_currency_guards = false;
  auto plan = fx_.sys.cache()->Prepare(**select, opts);
  ASSERT_TRUE(plan.ok());
  std::string tree = plan->DescribeTree();
  EXPECT_EQ(tree.find("SwitchUnion"), std::string::npos);
  EXPECT_NE(tree.find("cust_prj"), std::string::npos);
}

TEST_F(PlanChoiceTest, EveryLocalAccessIsGuarded) {
  // Paper: "every local data access is protected by a currency guard".
  QueryPlan plan = MustPrepare(
      fx_.session.get(),
      "SELECT C.c_name, O.o_totalprice FROM Customer C, Orders O "
      "WHERE O.o_custkey = C.c_custkey AND C.c_custkey = 5 "
      "CURRENCY BOUND 10 MIN ON (C), 10 MIN ON (O)");
  // Walk the tree: every kLocalScan of a view must be under a SwitchUnion.
  std::function<void(const PhysicalOp&, bool)> walk =
      [&](const PhysicalOp& op, bool guarded) {
        if (op.kind == PhysOpKind::kLocalScan && op.target.is_view) {
          EXPECT_TRUE(guarded) << "unguarded view scan of " << op.target.name;
        }
        bool next = guarded || op.kind == PhysOpKind::kSwitchUnion;
        for (const auto& c : op.children) walk(*c, next);
      };
  walk(*plan.root, false);
}


// Selectivity sweep across the Q6/Q7 regime: there must be exactly one
// crossover point — remote (back-end index) for selective predicates,
// flipping once to local (view scan) as the range widens, never back.
class SelectivitySweepTest : public ::testing::Test {};

TEST_F(SelectivitySweepTest, SingleCrossoverFromRemoteToLocal) {
  TpcdFixture fx(0.02);
  fx.sys.AdvanceTo(40000);
  // Thresholds from most selective (acctbal close to the max ~10000) down.
  bool seen_local = false;
  int flips = 0;
  PlanShape prev = PlanShape::kRemoteOnly;
  bool first = true;
  for (int threshold : {9990, 9900, 9500, 9000, 8000, 6000, 4000, 2000, 0}) {
    auto plan = MustPrepare(
        fx.session.get(),
        StrPrintf("SELECT c_custkey, c_acctbal FROM Customer C "
                  "WHERE C.c_acctbal > %d CURRENCY BOUND 10 MIN ON (C)",
                  threshold));
    ASSERT_NE(plan.root, nullptr);
    PlanShape shape = plan.Shape();
    EXPECT_TRUE(shape == PlanShape::kRemoteOnly ||
                shape == PlanShape::kAllLocal);
    if (!first && shape != prev) ++flips;
    if (shape == PlanShape::kAllLocal) seen_local = true;
    if (seen_local) {
      // Once local wins it stays local as the range keeps widening.
      EXPECT_EQ(shape, PlanShape::kAllLocal) << "threshold " << threshold;
    }
    prev = shape;
    first = false;
  }
  EXPECT_TRUE(seen_local);
  EXPECT_LE(flips, 1);
  // And the most selective end must be remote (the paper's Q6).
}

// Bound sweep on a join: as the Customer bound crosses CR1's delay, the plan
// moves monotonically remote-ward: all-local -> mixed -> (never back).
TEST_F(SelectivitySweepTest, BoundSweepMovesPlanMonotonically) {
  TpcdFixture fx(0.01);
  fx.sys.AdvanceTo(40000);
  auto rank = [](PlanShape s) {
    switch (s) {
      case PlanShape::kAllLocal: return 0;
      case PlanShape::kMixed: return 1;
      case PlanShape::kLocalJoinRemoteFetches: return 2;
      case PlanShape::kRemoteOnly: return 2;
    }
    return 3;
  };
  int prev_rank = -1;
  // Sweep the Customer bound downward; Orders stays relaxed.
  for (int bound_s : {600, 60, 20, 8, 4, 1}) {
    auto plan = MustPrepare(
        fx.session.get(),
        StrPrintf("SELECT C.c_name, O.o_totalprice FROM Customer C, Orders O "
                  "WHERE C.c_custkey = 5 AND O.o_custkey = C.c_custkey "
                  "CURRENCY BOUND %d SECONDS ON (C), 10 MIN ON (O)",
                  bound_s));
    ASSERT_NE(plan.root, nullptr);
    int r = rank(plan.Shape());
    EXPECT_GE(r, prev_rank) << "bound " << bound_s << "s moved plan back "
                            << "toward local";
    prev_rank = std::max(prev_rank, r);
  }
}

TEST_F(PlanChoiceTest, BackendEstimateReasonable) {
  auto select =
      ParseSelect("SELECT c_name FROM Customer C WHERE C.c_custkey = 1");
  ASSERT_TRUE(select.ok());
  auto est = EstimateBackendQuery(**select, fx_.sys.cache()->catalog(),
                                  fx_.sys.cache()->costs());
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->cost, 0.0);
  EXPECT_NEAR(est->rows, 1.0, 2.0);
}

}  // namespace
}  // namespace rcc
