#include <gtest/gtest.h>

#include <algorithm>

#include "test_util.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::IntColumn;
using testing_util::MustExecute;

// All queries here use a relaxed bound so they run against the cached views
// (fresh at t=0, so local results equal the master data), unless stated.

class ExecTest : public ::testing::Test {
 protected:
  ExecTest() : fx_(10000, 2000) {}

  QueryResult Run(const std::string& sql) {
    return MustExecute(fx_.session.get(), sql);
  }

  BookstoreFixture fx_;
};

TEST_F(ExecTest, PointLookup) {
  QueryResult r = Run(
      "SELECT isbn, title FROM Books B WHERE B.isbn = 7 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 7);
  EXPECT_EQ(r.shape, PlanShape::kAllLocal);
}

TEST_F(ExecTest, RangePredicate) {
  QueryResult r = Run(
      "SELECT isbn FROM Books B WHERE B.isbn >= 10 AND B.isbn <= 15 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{10, 11, 12, 13, 14, 15}));
}

TEST_F(ExecTest, LocalAndRemoteAgree) {
  // At t=0 the views are fresh: a local plan and a forced-remote plan (tight
  // default) must return identical results.
  const char* base =
      "SELECT B.isbn, B.price FROM Books B WHERE B.price > 100 ";
  QueryResult remote = Run(base);
  QueryResult local =
      Run(std::string(base) + "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_EQ(remote.shape, PlanShape::kRemoteOnly);
  EXPECT_EQ(local.shape, PlanShape::kAllLocal);
  ASSERT_EQ(remote.rows.size(), local.rows.size());
  auto key = [](const Row& row) { return row[0].AsInt(); };
  std::vector<int64_t> a;
  std::vector<int64_t> b;
  for (const Row& row : remote.rows) a.push_back(key(row));
  for (const Row& row : local.rows) b.push_back(key(row));
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

TEST_F(ExecTest, JoinLocalViews) {
  QueryResult r = Run(
      "SELECT B.isbn, R.review_id, R.rating FROM Books B, Reviews R "
      "WHERE B.isbn = R.isbn AND B.isbn <= 3 "
      "CURRENCY BOUND 1 HOUR ON (B), 1 HOUR ON (R)");
  EXPECT_EQ(r.shape, PlanShape::kAllLocal);
  ASSERT_GT(r.rows.size(), 0u);
  for (const Row& row : r.rows) {
    EXPECT_LE(row[0].AsInt(), 3);
  }
}

TEST_F(ExecTest, OrderByAscDesc) {
  QueryResult r = Run(
      "SELECT isbn FROM Books B WHERE B.isbn <= 5 ORDER BY isbn DESC "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{5, 4, 3, 2, 1}));
}

TEST_F(ExecTest, AggregatesGlobal) {
  QueryResult r = Run(
      "SELECT count(*) AS n, min(isbn) AS lo, max(isbn) AS hi "
      "FROM Books B CURRENCY BOUND 1 HOUR ON (B)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 500);
  EXPECT_EQ(r.rows[0][1].AsInt(), 1);
  EXPECT_EQ(r.rows[0][2].AsInt(), 500);
}

TEST_F(ExecTest, AggregatesGroupBy) {
  QueryResult r = Run(
      "SELECT R.rating, count(*) AS n FROM Reviews R "
      "GROUP BY R.rating ORDER BY R.rating "
      "CURRENCY BOUND 1 HOUR ON (R)");
  ASSERT_EQ(r.rows.size(), 5u);  // ratings 1..5
  int64_t total = 0;
  for (const Row& row : r.rows) total += row[1].AsInt();
  // Equals total review count.
  QueryResult all = Run(
      "SELECT count(*) FROM Reviews R CURRENCY BOUND 1 HOUR ON (R)");
  EXPECT_EQ(total, all.rows[0][0].AsInt());
}

TEST_F(ExecTest, AvgAndSum) {
  QueryResult r = Run(
      "SELECT sum(R.rating) AS s, avg(R.rating) AS a, count(R.rating) AS c "
      "FROM Reviews R CURRENCY BOUND 1 HOUR ON (R)");
  ASSERT_EQ(r.rows.size(), 1u);
  double sum = static_cast<double>(r.rows[0][0].AsInt());
  double avg = r.rows[0][1].AsDouble();
  double cnt = static_cast<double>(r.rows[0][2].AsInt());
  EXPECT_NEAR(avg, sum / cnt, 1e-9);
}

TEST_F(ExecTest, EmptyAggregateYieldsOneRow) {
  QueryResult r = Run(
      "SELECT count(*) FROM Books B WHERE B.isbn > 100000 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].AsInt(), 0);
}

TEST_F(ExecTest, ExistsCorrelatedSubquery) {
  // Books with at least one sale in 2003 (paper Q3 shape).
  QueryResult with_sales = Run(
      "SELECT B.isbn FROM Books B "
      "WHERE B.isbn <= 20 AND EXISTS ("
      " SELECT 1 FROM Sales S WHERE S.isbn = B.isbn AND S.year = 2003 "
      " CURRENCY BOUND 1 HOUR ON (S)) "
      "CURRENCY BOUND 1 HOUR ON (B)");
  // Validate against a remote join-based ground truth.
  QueryResult ground = Run(
      "SELECT B.isbn, count(*) FROM Books B, Sales S "
      "WHERE S.isbn = B.isbn AND S.year = 2003 AND B.isbn <= 20 "
      "GROUP BY B.isbn");
  EXPECT_EQ(with_sales.rows.size(), ground.rows.size());
}

TEST_F(ExecTest, InSubquery) {
  QueryResult r = Run(
      "SELECT B.isbn FROM Books B "
      "WHERE B.isbn IN (SELECT S.isbn FROM Sales S WHERE S.year = 2002) "
      "AND B.isbn <= 10");
  for (int64_t isbn : IntColumn(r)) {
    EXPECT_LE(isbn, 10);
  }
  // Cross-check one membership with a direct count.
  if (!r.rows.empty()) {
    int64_t isbn = r.rows[0][0].AsInt();
    QueryResult n = Run(
        "SELECT count(*) FROM Sales S WHERE S.isbn = " +
        std::to_string(isbn) + " AND S.year = 2002");
    EXPECT_GT(n.rows[0][0].AsInt(), 0);
  }
}

TEST_F(ExecTest, DerivedTable) {
  QueryResult r = Run(
      "SELECT T.isbn FROM (SELECT B.isbn AS isbn FROM Books B "
      " WHERE B.isbn <= 4 CURRENCY BOUND 1 HOUR ON (B)) T "
      "WHERE T.isbn > 1");
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{2, 3, 4}));
}

TEST_F(ExecTest, HavingFiltersGroups) {
  QueryResult r = Run(
      "SELECT R.rating, count(*) AS n FROM Reviews R "
      "GROUP BY R.rating HAVING count(*) > 100 ORDER BY R.rating "
      "CURRENCY BOUND 1 HOUR ON (R)");
  QueryResult all = Run(
      "SELECT R.rating, count(*) AS n FROM Reviews R "
      "GROUP BY R.rating ORDER BY R.rating "
      "CURRENCY BOUND 1 HOUR ON (R)");
  // Having keeps exactly the groups whose count exceeds the threshold.
  size_t expected = 0;
  for (const Row& row : all.rows) {
    if (row[1].AsInt() > 100) ++expected;
  }
  EXPECT_EQ(r.rows.size(), expected);
  for (const Row& row : r.rows) {
    EXPECT_GT(row[1].AsInt(), 100);
  }
}

TEST_F(ExecTest, HavingWithHiddenAggregate) {
  // The HAVING aggregate (min) is not in the select list: a hidden slot.
  QueryResult r = Run(
      "SELECT R.rating, count(*) AS n FROM Reviews R "
      "GROUP BY R.rating HAVING min(R.isbn) = 1 "
      "CURRENCY BOUND 1 HOUR ON (R)");
  // Only the output columns of the select list survive.
  EXPECT_EQ(r.layout.num_slots(), 2u);
  for (const Row& row : r.rows) {
    // Verify group membership: rating groups containing isbn 1.
    QueryResult probe = Run(
        "SELECT count(*) FROM Reviews R WHERE R.isbn = 1 AND R.rating = " +
        row[0].ToString());
    EXPECT_GT(probe.rows[0][0].AsInt(), 0);
  }
}

TEST_F(ExecTest, HavingWithoutGroupingRejected) {
  auto result = fx_.session->Execute(
      "SELECT isbn FROM Books B WHERE B.isbn = 1 HAVING isbn > 0");
  EXPECT_FALSE(result.ok());
}

TEST_F(ExecTest, SelectDistinct) {
  QueryResult dup = Run(
      "SELECT R.rating FROM Reviews R WHERE R.isbn <= 10 "
      "CURRENCY BOUND 1 HOUR ON (R)");
  QueryResult distinct = Run(
      "SELECT DISTINCT R.rating FROM Reviews R WHERE R.isbn <= 10 "
      "CURRENCY BOUND 1 HOUR ON (R)");
  EXPECT_GT(dup.rows.size(), distinct.rows.size());
  std::set<int64_t> unique;
  for (const Row& row : dup.rows) unique.insert(row[0].AsInt());
  EXPECT_EQ(distinct.rows.size(), unique.size());
}

TEST_F(ExecTest, ProjectionExpressions) {
  QueryResult r = Run(
      "SELECT B.isbn * 2 + 1 AS x FROM Books B WHERE B.isbn <= 3 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_EQ(IntColumn(r), (std::vector<int64_t>{3, 5, 7}));
}

TEST_F(ExecTest, GuardSwitchesToRemoteWhenStale) {
  // Make the view stale relative to a tight-ish bound: advance past several
  // refresh cycles, then ask for <= 1s currency. delay=2000 > 1s, so the
  // optimizer won't even consider the local view.
  fx_.sys.AdvanceTo(60000);
  QueryResult r = Run(
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 SECONDS ON (B)");
  EXPECT_EQ(r.shape, PlanShape::kRemoteOnly);
}

TEST_F(ExecTest, GuardFallsBackAtRunTime) {
  // Bound between delay and delay+interval: the plan keeps both branches and
  // decides at run time. Freeze replication by never advancing the clock
  // past deliveries, then advance far: local heartbeat lags, guard fails.
  QueryResult fresh = Run(
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 8 SECONDS ON (B)");
  EXPECT_EQ(fresh.shape, PlanShape::kAllLocal);
  EXPECT_EQ(fresh.stats.switch_local, 1);

  // Stop heartbeat deliveries from advancing by jumping between agent
  // deliveries: right after t=10s wakeup + 2s delay, data reflects t=10s.
  // At t=19.9s staleness is 9.9s > 8s -> remote branch.
  fx_.sys.AdvanceTo(19900);
  QueryResult stale = MustExecute(
      fx_.session.get(),
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 8 SECONDS ON (B)");
  EXPECT_EQ(stale.stats.switch_remote, 1);
  EXPECT_EQ(stale.rows.size(), 1u);
}

TEST_F(ExecTest, StaleReadsSeeOldData) {
  // Update a book at the back-end; a relaxed read still sees the old price
  // until the agent delivers, then sees the new one.
  BackendServer* backend = fx_.sys.backend();
  const Row* master = backend->table("Books")->Get({Value::Int(1)});
  ASSERT_NE(master, nullptr);
  double old_price = (*master)[2].AsDouble();

  fx_.sys.AdvanceTo(500);
  Row updated = *master;
  updated[2] = Value::Double(old_price + 111.0);
  RowOp op;
  op.kind = RowOp::Kind::kUpdate;
  op.table = "Books";
  op.row = updated;
  ASSERT_TRUE(backend->ExecuteTransaction({op}).ok());

  const char* sql =
      "SELECT price FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 HOUR ON (B)";
  QueryResult before = Run(sql);
  EXPECT_DOUBLE_EQ(before.rows[0][0].AsDouble(), old_price);

  // Tight query sees the new value immediately.
  QueryResult current = Run("SELECT price FROM Books B WHERE B.isbn = 1");
  EXPECT_DOUBLE_EQ(current.rows[0][0].AsDouble(), old_price + 111.0);

  // After a full refresh cycle (wakeup at 10s + delay 2s) the relaxed read
  // catches up.
  fx_.sys.AdvanceTo(13000);
  QueryResult after = Run(sql);
  EXPECT_DOUBLE_EQ(after.rows[0][0].AsDouble(), old_price + 111.0);
}

TEST_F(ExecTest, RemoteParameterizedInnerJoin) {
  // Join where the inner is local (clustered prefix seek on Reviews);
  // verifies parameterized seeks produce the same rows as a hash join.
  QueryResult seek = Run(
      "SELECT B.isbn, R.review_id FROM Books B, Reviews R "
      "WHERE B.isbn = R.isbn AND B.isbn = 9 "
      "CURRENCY BOUND 1 HOUR ON (B), 1 HOUR ON (R)");
  QueryResult ground = Run(
      "SELECT R.review_id, count(*) FROM Reviews R WHERE R.isbn = 9 "
      "GROUP BY R.review_id");
  EXPECT_EQ(seek.rows.size(), ground.rows.size());
}

TEST_F(ExecTest, SelectStar) {
  QueryResult r = Run(
      "SELECT * FROM Books B WHERE B.isbn = 2 CURRENCY BOUND 1 HOUR ON (B)");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.layout.num_slots(), 4u);
}


TEST_F(ExecTest, CoLocatedViewsSatisfyConsistencyWithOneGuard) {
  // BooksCopy and SalesCopy share region 1: a consistency class over both
  // CAN be satisfied locally — by a single SwitchUnion guarding the joined
  // unit (the delivered property keeps the operands together).
  QueryResult r = Run(
      "SELECT B.isbn, S.amount FROM Books B, Sales S "
      "WHERE B.isbn = S.isbn AND B.isbn <= 5 "
      "CURRENCY BOUND 10 MIN ON (B, S)");
  EXPECT_EQ(r.shape, PlanShape::kAllLocal);
  // Exactly one guard decision for the whole class.
  EXPECT_EQ(r.stats.switch_local + r.stats.switch_remote, 1);
  // Ground truth from the back-end.
  QueryResult ground = Run(
      "SELECT B.isbn, S.amount FROM Books B, Sales S "
      "WHERE B.isbn = S.isbn AND B.isbn <= 5");
  EXPECT_EQ(r.rows.size(), ground.rows.size());
}

TEST_F(ExecTest, CrossRegionClassCannotUseOneGuard) {
  // Books (R1) with Reviews (R2): same query shape, but the class spans
  // regions, so only the back-end can guarantee a shared snapshot.
  QueryResult r = Run(
      "SELECT B.isbn, R.rating FROM Books B, Reviews R "
      "WHERE B.isbn = R.isbn AND B.isbn <= 5 "
      "CURRENCY BOUND 10 MIN ON (B, R)");
  EXPECT_EQ(r.shape, PlanShape::kRemoteOnly);
}

TEST_F(ExecTest, GuardBoundaryIsStrict) {
  // The guard predicate is Heartbeat > now - B (strict): staleness == B
  // fails, staleness == B - 1ms passes.
  CurrencyRegion* region = fx_.sys.cache()->region(1);
  SimTimeMs hb = region->local_heartbeat();
  const char* sql =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 7 SECONDS ON (B)";
  fx_.sys.clock()->AdvanceTo(hb + 7000);  // staleness exactly == bound
  QueryResult at_bound = Run(sql);
  EXPECT_EQ(at_bound.stats.switch_remote, 1);

  // Re-prime a fresh system state one millisecond earlier.
  region->set_local_heartbeat(fx_.sys.Now() - 6999);
  QueryResult inside = Run(sql);
  EXPECT_EQ(inside.stats.switch_local, 1);
  region->set_local_heartbeat(hb);
}
TEST_F(ExecTest, PhaseTimingsPopulated) {
  QueryResult r = Run(
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  EXPECT_GE(r.stats.setup_ms, 0.0);
  EXPECT_GT(r.stats.setup_ms + r.stats.run_ms + r.stats.shutdown_ms, 0.0);
}

}  // namespace
}  // namespace rcc
