// Consistency-property algebra unit tests, followed by the cross-cutting
// system properties tying the executed system back to the paper's formal
// model (snapshot exactness, bound compliance, replication-stall
// degradation).

#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "common/strings.h"
#include "plan/properties.h"
#include "test_util.h"

namespace rcc {
namespace {

using testing_util::BookstoreFixture;
using testing_util::MustExecute;

NormalizedConstraint Required(
    std::vector<std::pair<SimTimeMs, std::set<InputOperandId>>> classes) {
  NormalizedConstraint n;
  for (auto& [bound, ops] : classes) {
    CcTuple t;
    t.bound_ms = bound;
    t.operands = std::move(ops);
    n.tuples.push_back(std::move(t));
  }
  return n;
}

TEST(ConsistencyPropertyTest, LeafAndUniform) {
  ConsistencyProperty leaf = ConsistencyProperty::Leaf(3, 7);
  ASSERT_EQ(leaf.groups().size(), 1u);
  EXPECT_EQ(leaf.groups()[0].region, 3);
  EXPECT_EQ(leaf.AllOperands(), (std::set<InputOperandId>{7}));

  ConsistencyProperty uni =
      ConsistencyProperty::Uniform(kBackendRegion, {1, 2, 3});
  EXPECT_EQ(uni.groups().size(), 1u);
  EXPECT_EQ(uni.AllOperands().size(), 3u);
}

TEST(ConsistencyPropertyTest, JoinMergesSameRegion) {
  // Paper: "If they have two tuples with the same region id, the input sets
  // of the two tuples are merged."
  ConsistencyProperty a = ConsistencyProperty::Leaf(1, 0);
  ConsistencyProperty b = ConsistencyProperty::Leaf(1, 1);
  ConsistencyProperty joined = ConsistencyProperty::Join(a, b);
  ASSERT_EQ(joined.groups().size(), 1u);
  EXPECT_EQ(joined.groups()[0].operands.size(), 2u);
}

TEST(ConsistencyPropertyTest, JoinKeepsDistinctRegionsApart) {
  ConsistencyProperty a = ConsistencyProperty::Leaf(1, 0);
  ConsistencyProperty b = ConsistencyProperty::Leaf(2, 1);
  ConsistencyProperty joined = ConsistencyProperty::Join(a, b);
  EXPECT_EQ(joined.groups().size(), 2u);
  EXPECT_FALSE(joined.IsConflicting());
}

TEST(ConsistencyPropertyTest, ConflictingWhenOperandInTwoRegions) {
  // Paper's conflicting example: a join of two projection views of the same
  // table T from different regions delivers {<R1,T>, <R2,T>}.
  ConsistencyProperty a = ConsistencyProperty::Leaf(1, 0);
  ConsistencyProperty b = ConsistencyProperty::Leaf(2, 0);
  ConsistencyProperty joined = ConsistencyProperty::Join(a, b);
  EXPECT_TRUE(joined.IsConflicting());
  // Conflicting properties satisfy nothing and violate everything.
  NormalizedConstraint req = Required({{1000, {0}}});
  EXPECT_FALSE(joined.Satisfies(req));
  EXPECT_TRUE(joined.Violates(req));
}

TEST(ConsistencyPropertyTest, SwitchUnionKeepsOperandsConsistentInAllChildren) {
  // Local child: both operands in region 1; remote child: both at the
  // back-end. They stay together, under a fresh dynamic region.
  RegionId dyn = kDynamicRegionBase;
  ConsistencyProperty local = ConsistencyProperty::Uniform(1, {0, 1});
  ConsistencyProperty remote =
      ConsistencyProperty::Uniform(kBackendRegion, {0, 1});
  ConsistencyProperty sw =
      ConsistencyProperty::SwitchUnion({local, remote}, &dyn);
  ASSERT_EQ(sw.groups().size(), 1u);
  EXPECT_GE(sw.groups()[0].region, kDynamicRegionBase);
  EXPECT_EQ(sw.groups()[0].operands.size(), 2u);
  EXPECT_EQ(dyn, kDynamicRegionBase + 1);
}

TEST(ConsistencyPropertyTest, SwitchUnionSplitsWhenOneChildSplits) {
  // One child keeps {0,1} together, the other splits them: the output can
  // only guarantee singleton groups.
  RegionId dyn = kDynamicRegionBase;
  ConsistencyProperty together = ConsistencyProperty::Uniform(1, {0, 1});
  ConsistencyProperty split = ConsistencyProperty::Join(
      ConsistencyProperty::Leaf(2, 0), ConsistencyProperty::Leaf(3, 1));
  ConsistencyProperty sw =
      ConsistencyProperty::SwitchUnion({together, split}, &dyn);
  EXPECT_EQ(sw.groups().size(), 2u);
  for (const auto& g : sw.groups()) {
    EXPECT_EQ(g.operands.size(), 1u);
  }
}

TEST(ConsistencyPropertyTest, DynamicGroupsNeverMergeAcrossSwitchUnions) {
  RegionId dyn = kDynamicRegionBase;
  ConsistencyProperty sw1 = ConsistencyProperty::SwitchUnion(
      {ConsistencyProperty::Leaf(1, 0),
       ConsistencyProperty::Leaf(kBackendRegion, 0)},
      &dyn);
  ConsistencyProperty sw2 = ConsistencyProperty::SwitchUnion(
      {ConsistencyProperty::Leaf(1, 1),
       ConsistencyProperty::Leaf(kBackendRegion, 1)},
      &dyn);
  ConsistencyProperty joined = ConsistencyProperty::Join(sw1, sw2);
  // Two independently-guarded accesses cannot be promised consistent even
  // when their views share a region: the guards may disagree.
  EXPECT_EQ(joined.groups().size(), 2u);
  NormalizedConstraint req = Required({{1000, {0, 1}}});
  EXPECT_FALSE(joined.Satisfies(req));
}

// -- satisfaction rule -------------------------------------------------------

TEST(SatisfactionTest, ClassContainedInGroupSatisfies) {
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0, 1, 2});
  EXPECT_TRUE(p.Satisfies(Required({{10, {0, 1}}, {20, {2}}})));
}

TEST(SatisfactionTest, ClassSpanningGroupsFails) {
  ConsistencyProperty p = ConsistencyProperty::Join(
      ConsistencyProperty::Uniform(1, {0}), ConsistencyProperty::Uniform(
                                                2, {1}));
  EXPECT_FALSE(p.Satisfies(Required({{10, {0, 1}}})));
}

TEST(SatisfactionTest, EmptyConstraintAlwaysSatisfied) {
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0});
  EXPECT_TRUE(p.Satisfies(NormalizedConstraint{}));
}

// -- violation rule (partial plans) ----------------------------------------------

TEST(ViolationTest, GroupIntersectingTwoClassesViolates) {
  // Paper: a delivered group that intersects more than one required class
  // can never be fixed by adding more operators above.
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0, 1});
  NormalizedConstraint req = Required({{10, {0}}, {20, {1}}});
  EXPECT_TRUE(p.Violates(req));
}

TEST(ViolationTest, PartialCoverageDoesNotViolate) {
  // Group covering part of one class: fine for a partial plan.
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0});
  NormalizedConstraint req = Required({{10, {0, 1}}});
  EXPECT_FALSE(p.Violates(req));
  // ... even though a complete plan would not satisfy it yet.
  EXPECT_FALSE(p.Satisfies(req));
}

TEST(ViolationTest, SatisfiedImpliesNotViolated) {
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0, 1});
  NormalizedConstraint req = Required({{10, {0, 1}}});
  EXPECT_TRUE(p.Satisfies(req));
  EXPECT_FALSE(p.Violates(req));
}

TEST(PropertyToStringTest, ReadableRendering) {
  ConsistencyProperty p = ConsistencyProperty::Join(
      ConsistencyProperty::Leaf(kBackendRegion, 0),
      ConsistencyProperty::Leaf(2, 1));
  std::string s = p.ToString();
  EXPECT_NE(s.find("backend"), std::string::npos);
  EXPECT_NE(s.find("R2"), std::string::npos);
}

// -- snapshot exactness across random schedules -----------------------------------
// A relaxed read served locally returns *exactly* the master data as of the
// region's snapshot H_{as_of}, reconstructed independently by replaying the
// update log.

class SnapshotExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotExactnessTest, LocalReadEqualsMasterAsOfRegionSnapshot) {
  BookstoreFixture fx(/*interval_ms=*/7000, /*delay_ms=*/1500);
  BackendServer* backend = fx.sys.backend();

  // Capture the pristine prices (H0).
  std::map<int64_t, double> prices;
  backend->table("Books")->Scan([&](const Row& row) {
    prices[row[0].AsInt()] = row[2].AsDouble();
    return true;
  });

  // Random update schedule, recording each committed price change.
  struct Change {
    TxnTimestamp id;
    int64_t isbn;
    double price;
  };
  std::vector<Change> changes;
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    fx.sys.AdvanceBy(rng.Uniform(100, 1200));
    int64_t isbn = rng.Uniform(1, 200);
    const Row* row = backend->table("Books")->Get({Value::Int(isbn)});
    ASSERT_NE(row, nullptr);
    Row updated = *row;
    double price = static_cast<double>(rng.Uniform(100, 99999)) / 100.0;
    updated[2] = Value::Double(price);
    RowOp op;
    op.kind = RowOp::Kind::kUpdate;
    op.table = "Books";
    op.row = std::move(updated);
    auto ts = backend->ExecuteTransaction({op});
    ASSERT_TRUE(ts.ok());
    changes.push_back({*ts, isbn, price});
  }

  // At several random points, run a relaxed local read of all prices and
  // compare with the reconstruction at the region's as_of.
  auto plan = fx.session->Prepare(
      "SELECT isbn, price FROM Books B WHERE B.isbn <= 200 "
      "CURRENCY BOUND 1 HOUR ON (B)");
  ASSERT_TRUE(plan.ok());
  for (int probe = 0; probe < 5; ++probe) {
    fx.sys.AdvanceBy(rng.Uniform(1000, 9000));
    auto outcome = fx.sys.cache()->ExecutePrepared(*plan);
    ASSERT_TRUE(outcome.ok());
    ASSERT_EQ(outcome->stats.switch_local, 1);  // 1h bound: always local

    TxnTimestamp as_of = fx.sys.cache()->region(1)->as_of();
    // Reconstruct expected prices: H0 + all changes with id <= as_of.
    std::map<int64_t, double> expected = prices;
    for (const Change& c : changes) {
      if (c.id <= as_of) expected[c.isbn] = c.price;
    }
    ASSERT_EQ(outcome->result.rows.size(), 200u);
    for (const Row& row : outcome->result.rows) {
      int64_t isbn = row[0].AsInt();
      EXPECT_DOUBLE_EQ(row[1].AsDouble(), expected[isbn])
          << "isbn " << isbn << " at as_of " << as_of;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotExactnessTest,
                         ::testing::Values(101, 202, 303));

// -- staleness-never-exceeds-bound across random schedules ------------------------

class BoundComplianceTest : public ::testing::TestWithParam<int> {};

TEST_P(BoundComplianceTest, ExecutedSourcesAlwaysWithinBound) {
  int bound_s = GetParam();
  BookstoreFixture fx(/*interval_ms=*/9000, /*delay_ms=*/2000);
  BackendServer* backend = fx.sys.backend();
  Rng rng(static_cast<uint64_t>(bound_s) * 7 + 1);

  std::string sql = StrPrintf(
      "SELECT isbn, price FROM Books B WHERE B.isbn <= 100 "
      "CURRENCY BOUND %d SECONDS ON (B)",
      bound_s);
  auto plan_or = fx.session->Prepare(sql);
  if (!plan_or.ok()) {
    // Bound below the delay with no local option is impossible only in
    // replica-only mode; with fallback the plan must exist.
    FAIL() << plan_or.status().ToString();
  }
  QueryPlan plan = std::move(*plan_or);

  for (int i = 0; i < 50; ++i) {
    fx.sys.AdvanceBy(rng.Uniform(200, 2500));
    // Churn the master so staleness is observable.
    const Row* row = backend->table("Books")->Get(
        {Value::Int(rng.Uniform(1, 100))});
    Row updated = *row;
    updated[2] = Value::Double(updated[2].AsDouble() + 0.25);
    RowOp op;
    op.kind = RowOp::Kind::kUpdate;
    op.table = "Books";
    op.row = std::move(updated);
    ASSERT_TRUE(backend->ExecuteTransaction({op}).ok());

    // The verifier computes, per appendix semantics, the staleness of every
    // source the plan would read now.
    EXPECT_TRUE(fx.session->VerifyConstraint(plan).ok())
        << "bound " << bound_s << "s violated at t=" << fx.sys.Now();
    auto outcome = fx.sys.cache()->ExecutePrepared(plan);
    ASSERT_TRUE(outcome.ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, BoundComplianceTest,
                         ::testing::Values(1, 3, 5, 8, 12, 30));

// -- failure injection: replication stall ---------------------------------------

TEST(FailureInjectionTest, StalledReplicationDegradesToBackend) {
  BookstoreFixture fx(/*interval_ms=*/5000, /*delay_ms=*/1000);
  fx.sys.AdvanceTo(20000);
  const char* sql =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 SECONDS ON (B)";
  // Healthy: local.
  QueryResult healthy = MustExecute(fx.session.get(), sql);
  EXPECT_EQ(healthy.stats.switch_local, 1);

  // Stall: freeze the region's heartbeat (as if the agent died) and advance
  // time well past the bound. Guards must fail and route to the back-end;
  // results stay correct and within bound.
  CurrencyRegion* region = fx.sys.cache()->region(1);
  SimTimeMs frozen = region->local_heartbeat();
  fx.sys.AdvanceBy(30000);
  region->set_local_heartbeat(frozen);  // undo any delivery that happened
  QueryResult stalled = MustExecute(fx.session.get(), sql);
  EXPECT_EQ(stalled.stats.switch_remote, 1);
  EXPECT_EQ(stalled.rows.size(), 1u);

  // Plan-level verification agrees.
  auto plan = fx.session->Prepare(sql);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(fx.session->VerifyConstraint(*plan).ok());
}

TEST(FailureInjectionTest, RecoveryRestoresLocalService) {
  BookstoreFixture fx(5000, 1000);
  fx.sys.AdvanceTo(20000);
  CurrencyRegion* region = fx.sys.cache()->region(1);
  SimTimeMs frozen = region->local_heartbeat();
  fx.sys.AdvanceBy(25000);
  region->set_local_heartbeat(frozen);
  const char* sql =
      "SELECT isbn FROM Books B WHERE B.isbn = 1 "
      "CURRENCY BOUND 10 SECONDS ON (B)";
  EXPECT_EQ(MustExecute(fx.session.get(), sql).stats.switch_remote, 1);
  // "Recovery": the next delivery cycle catches the region up again.
  fx.sys.AdvanceBy(7000);
  EXPECT_EQ(MustExecute(fx.session.get(), sql).stats.switch_local, 1);
}

}  // namespace
}  // namespace rcc
