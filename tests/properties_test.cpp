#include <gtest/gtest.h>

#include "plan/properties.h"

namespace rcc {
namespace {

NormalizedConstraint Required(
    std::vector<std::pair<SimTimeMs, std::set<InputOperandId>>> classes) {
  NormalizedConstraint n;
  for (auto& [bound, ops] : classes) {
    CcTuple t;
    t.bound_ms = bound;
    t.operands = std::move(ops);
    n.tuples.push_back(std::move(t));
  }
  return n;
}

TEST(ConsistencyPropertyTest, LeafAndUniform) {
  ConsistencyProperty leaf = ConsistencyProperty::Leaf(3, 7);
  ASSERT_EQ(leaf.groups().size(), 1u);
  EXPECT_EQ(leaf.groups()[0].region, 3);
  EXPECT_EQ(leaf.AllOperands(), (std::set<InputOperandId>{7}));

  ConsistencyProperty uni =
      ConsistencyProperty::Uniform(kBackendRegion, {1, 2, 3});
  EXPECT_EQ(uni.groups().size(), 1u);
  EXPECT_EQ(uni.AllOperands().size(), 3u);
}

TEST(ConsistencyPropertyTest, JoinMergesSameRegion) {
  // Paper: "If they have two tuples with the same region id, the input sets
  // of the two tuples are merged."
  ConsistencyProperty a = ConsistencyProperty::Leaf(1, 0);
  ConsistencyProperty b = ConsistencyProperty::Leaf(1, 1);
  ConsistencyProperty joined = ConsistencyProperty::Join(a, b);
  ASSERT_EQ(joined.groups().size(), 1u);
  EXPECT_EQ(joined.groups()[0].operands.size(), 2u);
}

TEST(ConsistencyPropertyTest, JoinKeepsDistinctRegionsApart) {
  ConsistencyProperty a = ConsistencyProperty::Leaf(1, 0);
  ConsistencyProperty b = ConsistencyProperty::Leaf(2, 1);
  ConsistencyProperty joined = ConsistencyProperty::Join(a, b);
  EXPECT_EQ(joined.groups().size(), 2u);
  EXPECT_FALSE(joined.IsConflicting());
}

TEST(ConsistencyPropertyTest, ConflictingWhenOperandInTwoRegions) {
  // Paper's conflicting example: a join of two projection views of the same
  // table T from different regions delivers {<R1,T>, <R2,T>}.
  ConsistencyProperty a = ConsistencyProperty::Leaf(1, 0);
  ConsistencyProperty b = ConsistencyProperty::Leaf(2, 0);
  ConsistencyProperty joined = ConsistencyProperty::Join(a, b);
  EXPECT_TRUE(joined.IsConflicting());
  // Conflicting properties satisfy nothing and violate everything.
  NormalizedConstraint req = Required({{1000, {0}}});
  EXPECT_FALSE(joined.Satisfies(req));
  EXPECT_TRUE(joined.Violates(req));
}

TEST(ConsistencyPropertyTest, SwitchUnionKeepsOperandsConsistentInAllChildren) {
  // Local child: both operands in region 1; remote child: both at the
  // back-end. They stay together, under a fresh dynamic region.
  RegionId dyn = kDynamicRegionBase;
  ConsistencyProperty local = ConsistencyProperty::Uniform(1, {0, 1});
  ConsistencyProperty remote =
      ConsistencyProperty::Uniform(kBackendRegion, {0, 1});
  ConsistencyProperty sw =
      ConsistencyProperty::SwitchUnion({local, remote}, &dyn);
  ASSERT_EQ(sw.groups().size(), 1u);
  EXPECT_GE(sw.groups()[0].region, kDynamicRegionBase);
  EXPECT_EQ(sw.groups()[0].operands.size(), 2u);
  EXPECT_EQ(dyn, kDynamicRegionBase + 1);
}

TEST(ConsistencyPropertyTest, SwitchUnionSplitsWhenOneChildSplits) {
  // One child keeps {0,1} together, the other splits them: the output can
  // only guarantee singleton groups.
  RegionId dyn = kDynamicRegionBase;
  ConsistencyProperty together = ConsistencyProperty::Uniform(1, {0, 1});
  ConsistencyProperty split = ConsistencyProperty::Join(
      ConsistencyProperty::Leaf(2, 0), ConsistencyProperty::Leaf(3, 1));
  ConsistencyProperty sw =
      ConsistencyProperty::SwitchUnion({together, split}, &dyn);
  EXPECT_EQ(sw.groups().size(), 2u);
  for (const auto& g : sw.groups()) {
    EXPECT_EQ(g.operands.size(), 1u);
  }
}

TEST(ConsistencyPropertyTest, DynamicGroupsNeverMergeAcrossSwitchUnions) {
  RegionId dyn = kDynamicRegionBase;
  ConsistencyProperty sw1 = ConsistencyProperty::SwitchUnion(
      {ConsistencyProperty::Leaf(1, 0),
       ConsistencyProperty::Leaf(kBackendRegion, 0)},
      &dyn);
  ConsistencyProperty sw2 = ConsistencyProperty::SwitchUnion(
      {ConsistencyProperty::Leaf(1, 1),
       ConsistencyProperty::Leaf(kBackendRegion, 1)},
      &dyn);
  ConsistencyProperty joined = ConsistencyProperty::Join(sw1, sw2);
  // Two independently-guarded accesses cannot be promised consistent even
  // when their views share a region: the guards may disagree.
  EXPECT_EQ(joined.groups().size(), 2u);
  NormalizedConstraint req = Required({{1000, {0, 1}}});
  EXPECT_FALSE(joined.Satisfies(req));
}

// -- satisfaction rule -------------------------------------------------------

TEST(SatisfactionTest, ClassContainedInGroupSatisfies) {
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0, 1, 2});
  EXPECT_TRUE(p.Satisfies(Required({{10, {0, 1}}, {20, {2}}})));
}

TEST(SatisfactionTest, ClassSpanningGroupsFails) {
  ConsistencyProperty p = ConsistencyProperty::Join(
      ConsistencyProperty::Uniform(1, {0}), ConsistencyProperty::Uniform(
                                                2, {1}));
  EXPECT_FALSE(p.Satisfies(Required({{10, {0, 1}}})));
}

TEST(SatisfactionTest, EmptyConstraintAlwaysSatisfied) {
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0});
  EXPECT_TRUE(p.Satisfies(NormalizedConstraint{}));
}

// -- violation rule (partial plans) ----------------------------------------------

TEST(ViolationTest, GroupIntersectingTwoClassesViolates) {
  // Paper: a delivered group that intersects more than one required class
  // can never be fixed by adding more operators above.
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0, 1});
  NormalizedConstraint req = Required({{10, {0}}, {20, {1}}});
  EXPECT_TRUE(p.Violates(req));
}

TEST(ViolationTest, PartialCoverageDoesNotViolate) {
  // Group covering part of one class: fine for a partial plan.
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0});
  NormalizedConstraint req = Required({{10, {0, 1}}});
  EXPECT_FALSE(p.Violates(req));
  // ... even though a complete plan would not satisfy it yet.
  EXPECT_FALSE(p.Satisfies(req));
}

TEST(ViolationTest, SatisfiedImpliesNotViolated) {
  ConsistencyProperty p = ConsistencyProperty::Uniform(1, {0, 1});
  NormalizedConstraint req = Required({{10, {0, 1}}});
  EXPECT_TRUE(p.Satisfies(req));
  EXPECT_FALSE(p.Violates(req));
}

TEST(PropertyToStringTest, ReadableRendering) {
  ConsistencyProperty p = ConsistencyProperty::Join(
      ConsistencyProperty::Leaf(kBackendRegion, 0),
      ConsistencyProperty::Leaf(2, 1));
  std::string s = p.ToString();
  EXPECT_NE(s.find("backend"), std::string::npos);
  EXPECT_NE(s.find("R2"), std::string::npos);
}

}  // namespace
}  // namespace rcc
