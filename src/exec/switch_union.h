#ifndef RCC_EXEC_SWITCH_UNION_H_
#define RCC_EXEC_SWITCH_UNION_H_

#include <memory>

#include "exec/exec_context.h"

namespace rcc {

/// The paper's SwitchUnion with a currency guard (§3.2.3): child 0 is the
/// local branch (guarded local view access), child 1 the remote branch. At
/// Open, the guard — equivalent to
///   EXISTS (SELECT 1 FROM Heartbeat_R WHERE TimeStamp > getdate() - B)
/// — probes the region's local heartbeat; if the local data is fresh enough
/// the local branch is opened, otherwise the remote branch. Only the chosen
/// branch is touched.
class SwitchUnionIterator : public RowIterator {
 public:
  SwitchUnionIterator(const PhysicalOp& op, ExecContext* ctx,
                      std::unique_ptr<RowIterator> local,
                      std::unique_ptr<RowIterator> remote)
      : op_(op),
        ctx_(ctx),
        local_(std::move(local)),
        remote_(std::move(remote)) {}

  Status Open(const EvalScope* outer) override;
  Result<bool> Next(Row* out) override;
  /// Forwards to the chosen branch with ONE heartbeat acquire-load per batch
  /// (vs per row for Next): the currency decision is fixed at Open, so the
  /// per-batch probe only detects *withdrawal* of certification (the region
  /// quarantined mid-drain) — see CheckCertificationHeld.
  Result<bool> NextBatch(RowBatch* out, size_t max_rows) override;
  Status Close() override;
  const RowLayout& layout() const override { return op_.layout; }

  /// Evaluates the currency guard against the context (exposed for tests and
  /// for cost-model validation): true = local branch qualifies.
  static bool EvaluateGuard(const PhysicalOp& op, ExecContext* ctx);

 private:
  /// Remote branch failed at Open: per ctx->degrade, re-probe the guard and
  /// serve the local branch (flagged stale via ExecStats) or propagate
  /// `remote_error`. The timeline floor is enforced in every mode.
  Status DegradeToLocal(const EvalScope* outer, Status remote_error);

  /// Overload shedding (ctx->shed_hint): before opening the remote branch,
  /// checks whether the degraded-local ladder would *permit* serving local
  /// right now — same rules as DegradeToLocal (degrade mode, certified
  /// heartbeat, pipeline health, timeline floor, currency bound), just
  /// evaluated non-fatally. Returns true and fills the probe values when a
  /// shed serve is allowed; false means "execute remote normally". Never
  /// turns a permitted statement into a refusal.
  bool ShedEligible(SimTimeMs* hb, SimTimeMs* staleness, bool* within_bound);

  /// Serves the local branch as a pre-emptive shed (degraded + shed flags,
  /// kShedServe trace, shed serve audit record), pinning later re-opens to
  /// the local branch exactly like a failure-driven degrade.
  Status ShedServeLocal(const EvalScope* outer, SimTimeMs hb,
                        SimTimeMs staleness, bool within_bound);

  /// When serving the local branch: one acquire-load of the region's
  /// certified heartbeat. Refuses only if certification was *withdrawn*
  /// (nullopt — quarantine/resync started mid-drain); growing staleness
  /// never aborts a drain, because the snapshot certified at Open cannot
  /// change under the drain (serial mode never re-enters the scheduler;
  /// concurrent batches hold the region data locks shared).
  Status CheckCertificationHeld();

  const PhysicalOp& op_;
  ExecContext* ctx_;
  std::unique_ptr<RowIterator> local_;
  std::unique_ptr<RowIterator> remote_;
  RowIterator* chosen_ = nullptr;
  /// Guard outcome, evaluated once per execution and cached across re-opens
  /// (inner side of nested-loop joins): all probes must read the same branch
  /// or one operand's rows could mix snapshots. -1 = not yet evaluated.
  int cached_decision_ = -1;
  /// True once the remote branch opened successfully; blocks a later
  /// degraded switch to the local branch (snapshot mixing).
  bool served_remote_ = false;
};

}  // namespace rcc

#endif  // RCC_EXEC_SWITCH_UNION_H_
