#ifndef RCC_EXEC_AUDIT_H_
#define RCC_EXEC_AUDIT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "replication/health.h"
#include "semantics/constraint.h"
#include "txn/update_log.h"

namespace rcc {

/// Execution-audit observations. The engine reports, through a HistorySink,
/// every externally meaningful event of a run: back-end commits, replication
/// installs, health transitions, currency-guard probes, the branch that
/// actually served each query, and the final answer. The simulation
/// harness's HistoryRecorder (src/sim/history.h) implements the sink and
/// turns the stream into a replayable history that the conformance oracle
/// checks against the formal C&C model — independently of the guard and
/// optimizer code that produced the events. Everything recorded is virtual
/// time or logical state, never wall-clock, so a recorded run is
/// bit-reproducible from its seed.

/// One currency-guard probe: the inputs the guard saw and the verdict it
/// reached. The oracle re-derives the verdict from the inputs (and the
/// inputs from the install stream), so a skewed guard comparison is caught
/// even when the served data happens to be fresh.
struct GuardObservation {
  uint64_t query_id = 0;
  /// Cache node the probe ran on (fleet topology); 0 = the only node of a
  /// single-cache system. Stamped by NodeTaggingSink, never by the engine —
  /// a CacheDbms has no idea it is part of a fleet.
  int node = 0;
  RegionId region = kBackendRegion;
  SimTimeMs at = 0;
  /// The certified heartbeat the guard read; heartbeat_known = false when
  /// the region was unknown or its pipeline withdrew the heartbeat.
  bool heartbeat_known = false;
  SimTimeMs heartbeat = -1;
  SimTimeMs bound_ms = 0;
  /// Session timeline floor in effect (< 0 = timeline mode off).
  SimTimeMs floor_ms = -1;
  /// true = the guard routed the query at the local branch.
  bool verdict_local = false;
  /// Publication epoch of the region snapshot the probe read (0 when the
  /// engine layer doesn't version reads).
  uint64_t epoch = 0;
};

/// One serving decision: a set of input operands was answered from a local
/// region replica or from a back-end fetch. Recorded at most once per
/// iterator execution (correlated re-fetches of a remote subquery are
/// attributed to the first fetch; see DESIGN.md §11).
struct ServeObservation {
  uint64_t query_id = 0;
  /// Serving cache node (see GuardObservation::node).
  int node = 0;
  SimTimeMs at = 0;
  /// true = local view branch; false = remote (back-end) fetch.
  bool local = false;
  /// true = served past a failed remote branch under SET DEGRADE.
  bool degraded = false;
  /// true = this degraded serve was a pre-emptive overload shed: the guard
  /// chose remote, but admission-layer pressure redirected the statement
  /// down the (permitted) degraded-local branch before any remote attempt.
  /// Always implies `degraded`; the oracle treats shed serves under exactly
  /// the same currency rules as failure-driven degraded serves.
  bool shed = false;
  /// Serving currency region; kBackendRegion for remote fetches.
  RegionId region = kBackendRegion;
  /// The region heartbeat claimed at serve time (local serves only).
  bool heartbeat_known = false;
  SimTimeMs heartbeat = -1;
  /// Publication epoch of the pinned region snapshot the rows came from
  /// (local serves only; 0 = unversioned). All local serves of one region
  /// within one query must carry the same epoch — the MVCC pin makes the
  /// paper's one-snapshot-per-consistency-class property structural, and the
  /// oracle checks it.
  uint64_t epoch = 0;
  /// Input operands whose rows this serve produced.
  std::vector<InputOperandId> operands;
};

/// One completed query (successful or failed), carrying everything the
/// oracle needs to evaluate the query's C&C constraint against the serve
/// events recorded under the same query_id.
struct AnswerObservation {
  uint64_t query_id = 0;
  /// Cache node that produced the answer (see GuardObservation::node).
  int node = 0;
  /// Issuing session tag (0 = anonymous caller).
  uint64_t session = 0;
  SimTimeMs at = 0;
  bool ok = false;
  /// DegradeMode the query ran under, as its enum integer.
  int degrade_mode = 0;
  /// Timeline floor the query started from (< 0 = timeline mode off).
  SimTimeMs floor_before = -1;
  /// Highest source snapshot time the query observed (-1 = none).
  SimTimeMs max_seen_heartbeat = -1;
  /// true when at least one branch served degraded (stale-flagged).
  bool degraded = false;
  SimTimeMs degraded_staleness_ms = 0;
  int64_t rows = 0;
  /// Base-table name per InputOperandId (index = operand id).
  std::vector<std::string> operand_tables;
  /// The normalized constraint, flattened: (bound_ms, consistency class).
  std::vector<std::pair<SimTimeMs, std::vector<InputOperandId>>> tuples;
  /// Failure text when !ok.
  std::string error;
};

/// One replication install: the region's data was atomically replaced or
/// extended to reflect back-end snapshot `as_of`, and `heartbeat` was
/// published. Initial region definition, delivery batches and resyncs all
/// install; the oracle derives every region's state timeline from these.
struct InstallObservation {
  enum class Kind { kInitial, kDelivery, kResync };
  Kind kind = Kind::kDelivery;
  /// Cache node owning the region (see GuardObservation::node).
  int node = 0;
  RegionId region = kBackendRegion;
  SimTimeMs at = 0;
  /// Back-end snapshot (last applied transaction id) after the install.
  TxnTimestamp as_of = 0;
  /// Local heartbeat value after the install.
  SimTimeMs heartbeat = 0;
  /// Row ops applied by the batch (0 for initial population / resync).
  int64_t ops = 0;
};

/// One fleet-router eligibility probe: what the router saw when it asked
/// whether `node` could satisfy a constraint tuple over `region` at route
/// time. The oracle re-derives the certified heartbeat from the install and
/// health streams and recomputes the eligibility verdict, so a router that
/// trusts a withdrawn heartbeat (the RCC_FLEET_MUTATE planted bug) is caught
/// even when the node's own guards later refuse to serve.
struct RouteProbe {
  int node = 0;
  /// Region the probed view lives in; kBackendRegion when the probe failed
  /// on view coverage (the node materializes no view over a constrained
  /// operand, so there is no region to certify).
  RegionId region = kBackendRegion;
  SimTimeMs bound_ms = 0;
  /// Session timeline floor at route time (< 0 = timeline mode off).
  SimTimeMs floor_ms = -1;
  /// The certified heartbeat the router read (LocalHeartbeat semantics:
  /// known = false when the region is unknown, never synced, or its
  /// replication pipeline withdrew certification).
  bool heartbeat_known = false;
  SimTimeMs heartbeat = -1;
  /// The router's verdict for this probe. A node is eligible for the query
  /// only if every one of its probes is.
  bool eligible = false;
};

/// One routing decision of the fleet front end: the chosen node (or the
/// backend tier), the degrade mode the attempt runs under, and every
/// per-node probe that fed the choice. A query that falls through records a
/// fresh route observation per attempt, each under its own query id.
struct RouteObservation {
  uint64_t query_id = 0;
  SimTimeMs at = 0;
  /// Node the statement was dispatched to.
  int node = 0;
  /// true = no cache node was eligible (or all eligible ones failed) and the
  /// statement ran as an all-remote plan against the backend.
  bool backend_tier = false;
  /// DegradeMode of the attempt, as its enum integer.
  int degrade_mode = 0;
  std::vector<RouteProbe> probes;
};

/// Receiver of the audit stream. Implementations must be thread-safe:
/// queries of a concurrent batch report from worker threads (commits,
/// installs and health transitions only ever arrive from the simulation
/// thread). All hooks are no-ops in spirit — they must not affect engine
/// behaviour.
class HistorySink {
 public:
  virtual ~HistorySink() = default;

  /// Allocates a query id; every subsequent observation of that query
  /// carries it.
  virtual uint64_t BeginQuery(SimTimeMs at) = 0;

  virtual void OnGuardProbe(const GuardObservation& obs) = 0;
  virtual void OnServe(const ServeObservation& obs) = 0;
  virtual void OnAnswer(const AnswerObservation& obs) = 0;

  /// A back-end commit (the formal model's xtime source).
  virtual void OnCommit(const CommittedTxn& txn, SimTimeMs at) = 0;
  virtual void OnInstall(const InstallObservation& obs) = 0;
  /// `node` identifies the cache node owning the region (0 = single-cache
  /// system); the default keeps single-node call sites unchanged.
  virtual void OnHealth(RegionId region, RegionHealth from, RegionHealth to,
                        SimTimeMs at, int node = 0) = 0;

  /// A fleet-router dispatch decision. Default no-op: single-node systems
  /// never route, and pre-fleet sinks need no override.
  virtual void OnRoute(const RouteObservation& obs) { (void)obs; }

  /// A session toggled timeline mode; `timeordered` = the new state. Entering
  /// timeline mode resets the session's floor, so the oracle restarts its
  /// monotonicity tracking here.
  virtual void OnSessionMode(uint64_t session, bool timeordered,
                             SimTimeMs at) = 0;
};

/// Stamps a fixed node id onto every observation before forwarding to an
/// inner sink. The fleet wraps each CacheDbms's sink in one of these, so
/// node identity flows into histories without the engine knowing about
/// fleets: a CacheDbms records exactly as it always did, and the wrapper
/// owns the topology fact. BeginQuery forwards untouched — query ids are
/// fleet-global so one routed statement's guard/serve/answer events
/// correlate across nodes. Thread-safety is inherited from the inner sink
/// (the wrapper itself is stateless beyond the immutable node id).
class NodeTaggingSink : public HistorySink {
 public:
  NodeTaggingSink(HistorySink* inner, int node) : inner_(inner), node_(node) {}

  uint64_t BeginQuery(SimTimeMs at) override { return inner_->BeginQuery(at); }

  void OnGuardProbe(const GuardObservation& obs) override {
    GuardObservation tagged = obs;
    tagged.node = node_;
    inner_->OnGuardProbe(tagged);
  }
  void OnServe(const ServeObservation& obs) override {
    ServeObservation tagged = obs;
    tagged.node = node_;
    inner_->OnServe(tagged);
  }
  void OnAnswer(const AnswerObservation& obs) override {
    AnswerObservation tagged = obs;
    tagged.node = node_;
    inner_->OnAnswer(tagged);
  }
  void OnCommit(const CommittedTxn& txn, SimTimeMs at) override {
    inner_->OnCommit(txn, at);  // commits are backend-global, not per-node
  }
  void OnInstall(const InstallObservation& obs) override {
    InstallObservation tagged = obs;
    tagged.node = node_;
    inner_->OnInstall(tagged);
  }
  void OnHealth(RegionId region, RegionHealth from, RegionHealth to,
                SimTimeMs at, int node = 0) override {
    (void)node;
    inner_->OnHealth(region, from, to, at, node_);
  }
  void OnRoute(const RouteObservation& obs) override {
    inner_->OnRoute(obs);  // routes carry their own node (the chosen one)
  }
  void OnSessionMode(uint64_t session, bool timeordered,
                     SimTimeMs at) override {
    inner_->OnSessionMode(session, timeordered, at);
  }

  int node() const { return node_; }

 private:
  HistorySink* inner_;
  int node_;
};

}  // namespace rcc

#endif  // RCC_EXEC_AUDIT_H_
