#ifndef RCC_EXEC_AUDIT_H_
#define RCC_EXEC_AUDIT_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "replication/health.h"
#include "semantics/constraint.h"
#include "txn/update_log.h"

namespace rcc {

/// Execution-audit observations. The engine reports, through a HistorySink,
/// every externally meaningful event of a run: back-end commits, replication
/// installs, health transitions, currency-guard probes, the branch that
/// actually served each query, and the final answer. The simulation
/// harness's HistoryRecorder (src/sim/history.h) implements the sink and
/// turns the stream into a replayable history that the conformance oracle
/// checks against the formal C&C model — independently of the guard and
/// optimizer code that produced the events. Everything recorded is virtual
/// time or logical state, never wall-clock, so a recorded run is
/// bit-reproducible from its seed.

/// One currency-guard probe: the inputs the guard saw and the verdict it
/// reached. The oracle re-derives the verdict from the inputs (and the
/// inputs from the install stream), so a skewed guard comparison is caught
/// even when the served data happens to be fresh.
struct GuardObservation {
  uint64_t query_id = 0;
  RegionId region = kBackendRegion;
  SimTimeMs at = 0;
  /// The certified heartbeat the guard read; heartbeat_known = false when
  /// the region was unknown or its pipeline withdrew the heartbeat.
  bool heartbeat_known = false;
  SimTimeMs heartbeat = -1;
  SimTimeMs bound_ms = 0;
  /// Session timeline floor in effect (< 0 = timeline mode off).
  SimTimeMs floor_ms = -1;
  /// true = the guard routed the query at the local branch.
  bool verdict_local = false;
  /// Publication epoch of the region snapshot the probe read (0 when the
  /// engine layer doesn't version reads).
  uint64_t epoch = 0;
};

/// One serving decision: a set of input operands was answered from a local
/// region replica or from a back-end fetch. Recorded at most once per
/// iterator execution (correlated re-fetches of a remote subquery are
/// attributed to the first fetch; see DESIGN.md §11).
struct ServeObservation {
  uint64_t query_id = 0;
  SimTimeMs at = 0;
  /// true = local view branch; false = remote (back-end) fetch.
  bool local = false;
  /// true = served past a failed remote branch under SET DEGRADE.
  bool degraded = false;
  /// true = this degraded serve was a pre-emptive overload shed: the guard
  /// chose remote, but admission-layer pressure redirected the statement
  /// down the (permitted) degraded-local branch before any remote attempt.
  /// Always implies `degraded`; the oracle treats shed serves under exactly
  /// the same currency rules as failure-driven degraded serves.
  bool shed = false;
  /// Serving currency region; kBackendRegion for remote fetches.
  RegionId region = kBackendRegion;
  /// The region heartbeat claimed at serve time (local serves only).
  bool heartbeat_known = false;
  SimTimeMs heartbeat = -1;
  /// Publication epoch of the pinned region snapshot the rows came from
  /// (local serves only; 0 = unversioned). All local serves of one region
  /// within one query must carry the same epoch — the MVCC pin makes the
  /// paper's one-snapshot-per-consistency-class property structural, and the
  /// oracle checks it.
  uint64_t epoch = 0;
  /// Input operands whose rows this serve produced.
  std::vector<InputOperandId> operands;
};

/// One completed query (successful or failed), carrying everything the
/// oracle needs to evaluate the query's C&C constraint against the serve
/// events recorded under the same query_id.
struct AnswerObservation {
  uint64_t query_id = 0;
  /// Issuing session tag (0 = anonymous caller).
  uint64_t session = 0;
  SimTimeMs at = 0;
  bool ok = false;
  /// DegradeMode the query ran under, as its enum integer.
  int degrade_mode = 0;
  /// Timeline floor the query started from (< 0 = timeline mode off).
  SimTimeMs floor_before = -1;
  /// Highest source snapshot time the query observed (-1 = none).
  SimTimeMs max_seen_heartbeat = -1;
  /// true when at least one branch served degraded (stale-flagged).
  bool degraded = false;
  SimTimeMs degraded_staleness_ms = 0;
  int64_t rows = 0;
  /// Base-table name per InputOperandId (index = operand id).
  std::vector<std::string> operand_tables;
  /// The normalized constraint, flattened: (bound_ms, consistency class).
  std::vector<std::pair<SimTimeMs, std::vector<InputOperandId>>> tuples;
  /// Failure text when !ok.
  std::string error;
};

/// One replication install: the region's data was atomically replaced or
/// extended to reflect back-end snapshot `as_of`, and `heartbeat` was
/// published. Initial region definition, delivery batches and resyncs all
/// install; the oracle derives every region's state timeline from these.
struct InstallObservation {
  enum class Kind { kInitial, kDelivery, kResync };
  Kind kind = Kind::kDelivery;
  RegionId region = kBackendRegion;
  SimTimeMs at = 0;
  /// Back-end snapshot (last applied transaction id) after the install.
  TxnTimestamp as_of = 0;
  /// Local heartbeat value after the install.
  SimTimeMs heartbeat = 0;
  /// Row ops applied by the batch (0 for initial population / resync).
  int64_t ops = 0;
};

/// Receiver of the audit stream. Implementations must be thread-safe:
/// queries of a concurrent batch report from worker threads (commits,
/// installs and health transitions only ever arrive from the simulation
/// thread). All hooks are no-ops in spirit — they must not affect engine
/// behaviour.
class HistorySink {
 public:
  virtual ~HistorySink() = default;

  /// Allocates a query id; every subsequent observation of that query
  /// carries it.
  virtual uint64_t BeginQuery(SimTimeMs at) = 0;

  virtual void OnGuardProbe(const GuardObservation& obs) = 0;
  virtual void OnServe(const ServeObservation& obs) = 0;
  virtual void OnAnswer(const AnswerObservation& obs) = 0;

  /// A back-end commit (the formal model's xtime source).
  virtual void OnCommit(const CommittedTxn& txn, SimTimeMs at) = 0;
  virtual void OnInstall(const InstallObservation& obs) = 0;
  virtual void OnHealth(RegionId region, RegionHealth from, RegionHealth to,
                        SimTimeMs at) = 0;

  /// A session toggled timeline mode; `timeordered` = the new state. Entering
  /// timeline mode resets the session's floor, so the oracle restarts its
  /// monotonicity tracking here.
  virtual void OnSessionMode(uint64_t session, bool timeordered,
                             SimTimeMs at) = 0;
};

}  // namespace rcc

#endif  // RCC_EXEC_AUDIT_H_
