#ifndef RCC_EXEC_ITERATORS_H_
#define RCC_EXEC_ITERATORS_H_

#include <memory>

#include "exec/exec_context.h"

namespace rcc {

/// Builds the iterator tree for a physical plan. `aliases` is the alias map
/// of the block the plan belongs to (subquery plans pass their own).
Result<std::unique_ptr<RowIterator>> BuildIterator(const PhysicalOp& op,
                                                   ExecContext* ctx,
                                                   const AliasMap* aliases);

/// Creates the evaluator for nested EXISTS/IN subqueries, backed by
/// ctx->subplans. EXISTS returns 1/0; IN returns 1, 0, or NULL per SQL.
SubqueryEvaluator MakeSubqueryEvaluator(ExecContext* ctx);

}  // namespace rcc

#endif  // RCC_EXEC_ITERATORS_H_
