#include "exec/remote.h"

#include <functional>
#include <set>

#include "common/strings.h"

namespace rcc {

namespace {

/// Applies `fn` to every expression position of `stmt` (select items, WHERE,
/// GROUP BY, HAVING, ORDER BY) and recurses into derived tables in FROM.
/// Expression-nested subqueries (EXISTS/IN) are handled by the expression
/// walkers themselves.
Status ForEachStmtExpr(SelectStmt* stmt,
                       const std::function<Status(Expr*)>& fn) {
  for (auto& item : stmt->items) RCC_RETURN_NOT_OK(fn(item.expr.get()));
  RCC_RETURN_NOT_OK(fn(stmt->where.get()));
  for (auto& g : stmt->group_by) RCC_RETURN_NOT_OK(fn(g.get()));
  RCC_RETURN_NOT_OK(fn(stmt->having.get()));
  for (auto& o : stmt->order_by) RCC_RETURN_NOT_OK(fn(o.expr.get()));
  for (auto& ref : stmt->from) {
    if (ref.subquery) {
      RCC_RETURN_NOT_OK(ForEachStmtExpr(ref.subquery.get(), fn));
    }
  }
  return Status::OK();
}

/// Collects the FROM aliases of `stmt` and all nested blocks (these must NOT
/// be parameterized away).
void CollectOwnAliases(const SelectStmt& stmt, std::set<std::string>* out) {
  for (const TableRef& ref : stmt.from) {
    out->insert(ToLower(ref.alias));
    if (ref.subquery) CollectOwnAliases(*ref.subquery, out);
  }
  std::function<Status(Expr*)> walk = [&](Expr* e) -> Status {
    if (e == nullptr) return Status::OK();
    if (e->subquery) CollectOwnAliases(*e->subquery, out);
    RCC_RETURN_NOT_OK(walk(e->left.get()));
    RCC_RETURN_NOT_OK(walk(e->right.get()));
    for (const auto& a : e->args) RCC_RETURN_NOT_OK(walk(a.get()));
    return Status::OK();
  };
  // const_cast is safe: `walk` never mutates, it only needs the mutable
  // signature that ForEachStmtExpr shares with the substitution pass.
  ForEachStmtExpr(const_cast<SelectStmt*>(&stmt), walk);
}

/// Replaces column refs resolvable in the outer scope with literals.
Status SubstituteExpr(Expr* e, const std::set<std::string>& own,
                      const EvalScope& outer) {
  if (e == nullptr) return Status::OK();
  if (e->kind == ExprKind::kColumnRef) {
    bool is_own =
        !e->table.empty() ? own.count(ToLower(e->table)) > 0 : true;
    if (is_own) return Status::OK();
    auto v = EvalExpr(*e, outer, nullptr);
    if (!v.ok()) {
      return Status::Internal("cannot parameterize outer reference " +
                              e->ToString() + ": " + v.status().ToString());
    }
    e->kind = ExprKind::kLiteral;
    e->literal = std::move(v).value();
    e->table.clear();
    e->column.clear();
    return Status::OK();
  }
  RCC_RETURN_NOT_OK(SubstituteExpr(e->left.get(), own, outer));
  RCC_RETURN_NOT_OK(SubstituteExpr(e->right.get(), own, outer));
  for (auto& a : e->args) {
    RCC_RETURN_NOT_OK(SubstituteExpr(a.get(), own, outer));
  }
  if (e->subquery != nullptr) {
    // Nested blocks share the same "own" alias universe (already collected
    // recursively). All their expression positions carry potential outer
    // references, not only WHERE and the select list.
    RCC_RETURN_NOT_OK(ForEachStmtExpr(
        e->subquery.get(),
        [&](Expr* sub) { return SubstituteExpr(sub, own, outer); }));
  }
  return Status::OK();
}

/// Replaces kParam markers with literals from `params` (recursing into
/// EXISTS/IN subqueries like SubstituteExpr does).
Status BindParamsInExpr(Expr* e, const std::vector<Value>& params) {
  if (e == nullptr) return Status::OK();
  if (e->kind == ExprKind::kParam) {
    if (e->param_index >= params.size()) {
      return Status::Internal("parameter ?" + std::to_string(e->param_index) +
                              " has no bound value");
    }
    e->kind = ExprKind::kLiteral;
    e->literal = params[e->param_index];
    e->literal_offset = Expr::kNoOffset;
    return Status::OK();
  }
  RCC_RETURN_NOT_OK(BindParamsInExpr(e->left.get(), params));
  RCC_RETURN_NOT_OK(BindParamsInExpr(e->right.get(), params));
  for (auto& a : e->args) {
    RCC_RETURN_NOT_OK(BindParamsInExpr(a.get(), params));
  }
  if (e->subquery != nullptr) {
    RCC_RETURN_NOT_OK(ForEachStmtExpr(
        e->subquery.get(),
        [&](Expr* sub) { return BindParamsInExpr(sub, params); }));
  }
  return Status::OK();
}

}  // namespace

bool StmtHasParams(const SelectStmt& stmt) {
  bool found = false;
  std::function<Status(Expr*)> walk = [&](Expr* e) -> Status {
    if (e == nullptr || found) return Status::OK();
    if (e->kind == ExprKind::kParam) {
      found = true;
      return Status::OK();
    }
    RCC_RETURN_NOT_OK(walk(e->left.get()));
    RCC_RETURN_NOT_OK(walk(e->right.get()));
    for (const auto& a : e->args) RCC_RETURN_NOT_OK(walk(a.get()));
    if (e->subquery != nullptr) {
      RCC_RETURN_NOT_OK(ForEachStmtExpr(e->subquery.get(), walk));
    }
    return Status::OK();
  };
  // const_cast is safe: `walk` never mutates (see CollectOwnAliases).
  ForEachStmtExpr(const_cast<SelectStmt*>(&stmt), walk);
  return found;
}

Status BindStmtParams(SelectStmt* stmt, const std::vector<Value>& params) {
  return ForEachStmtExpr(
      stmt, [&](Expr* e) { return BindParamsInExpr(e, params); });
}

Result<std::unique_ptr<SelectStmt>> ParameterizeStmt(const SelectStmt& stmt,
                                                     const EvalScope& outer) {
  auto clone = CloneSelectStmt(stmt);
  std::set<std::string> own;
  CollectOwnAliases(*clone, &own);
  // Correlated outer references may sit in any expression position of the
  // cloned statement — WHERE and the select list, but also GROUP BY, HAVING,
  // ORDER BY and derived tables; all of them ship to the back-end and must be
  // self-contained.
  RCC_RETURN_NOT_OK(ForEachStmtExpr(
      clone.get(), [&](Expr* e) { return SubstituteExpr(e, own, outer); }));
  return clone;
}

Status RemoteQueryIterator::Open(const EvalScope* outer) {
  rows_.clear();
  pos_ = 0;
  if (!ctx_->remote_executor) {
    return Status::Internal("no remote executor configured");
  }
  // Substitute outer references before shipping (possibly correlated).
  const SelectStmt* stmt = op_.remote_stmt.get();
  std::unique_ptr<SelectStmt> parameterized;
  if (outer != nullptr && outer->row != nullptr) {
    RCC_ASSIGN_OR_RETURN(parameterized,
                         ParameterizeStmt(*op_.remote_stmt, *outer));
    stmt = parameterized.get();
  }
  // Plan-cache parameter markers must be rewritten to this execution's
  // values before the statement leaves the process.
  if (StmtHasParams(*stmt)) {
    if (ctx_->params == nullptr) {
      return Status::Internal("remote statement has unbound parameters");
    }
    if (parameterized == nullptr) {
      parameterized = CloneSelectStmt(*stmt);
      stmt = parameterized.get();
    }
    RCC_RETURN_NOT_OK(BindStmtParams(parameterized.get(), *ctx_->params));
  }
  Result<RemoteResult> result = ctx_->remote_executor(*stmt);
  if (!result.ok()) return result.status();
  if (ctx_->stats != nullptr) {
    ++ctx_->stats->remote_queries;
    // A remote fetch reads the latest back-end snapshot.
    SimTimeMs now = ctx_->clock != nullptr ? ctx_->clock->Now() : 0;
    if (now > ctx_->stats->max_seen_heartbeat) {
      ctx_->stats->max_seen_heartbeat = now;
    }
  }
  if (ctx_->trace != nullptr && ctx_->clock != nullptr) {
    ctx_->trace->Record(obs::TraceEventKind::kRemoteFetch, ctx_->clock->Now(),
                        StrPrintf("rows=%zu", result->rows.size()));
  }
  if (result->layout.num_slots() != op_.layout.num_slots()) {
    return Status::Internal(
        "remote result shape mismatch: got " +
        std::to_string(result->layout.num_slots()) + " columns, expected " +
        std::to_string(op_.layout.num_slots()));
  }
  rows_ = std::move(result->rows);
  if (ctx_->history != nullptr && !recorded_) {
    recorded_ = true;
    ServeObservation obs;
    obs.query_id = ctx_->history_query_id;
    obs.at = ctx_->clock != nullptr ? ctx_->clock->Now() : 0;
    obs.local = false;
    obs.degraded = false;
    obs.region = kBackendRegion;
    obs.heartbeat_known = false;
    obs.operands.assign(op_.remote_operands.begin(),
                        op_.remote_operands.end());
    ctx_->history->OnServe(obs);
  }
  return Status::OK();
}

Result<bool> RemoteQueryIterator::Next(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

Result<bool> RemoteQueryIterator::NextBatch(RowBatch* out, size_t max_rows) {
  out->Clear();
  while (pos_ < rows_.size() && out->rows.size() < max_rows) {
    out->rows.push_back(rows_[pos_++]);
  }
  return !out->rows.empty();
}

Status RemoteQueryIterator::Close() {
  rows_.clear();
  pos_ = 0;
  return Status::OK();
}

}  // namespace rcc
