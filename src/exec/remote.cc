#include "exec/remote.h"

#include <functional>
#include <set>

#include "common/strings.h"

namespace rcc {

namespace {

/// Collects the FROM aliases of `stmt` and all nested blocks (these must NOT
/// be parameterized away).
void CollectOwnAliases(const SelectStmt& stmt, std::set<std::string>* out) {
  for (const TableRef& ref : stmt.from) {
    out->insert(ToLower(ref.alias));
    if (ref.subquery) CollectOwnAliases(*ref.subquery, out);
  }
  std::function<void(const Expr*)> walk = [&](const Expr* e) {
    if (e == nullptr) return;
    if (e->subquery) CollectOwnAliases(*e->subquery, out);
    walk(e->left.get());
    walk(e->right.get());
    for (const auto& a : e->args) walk(a.get());
  };
  walk(stmt.where.get());
  for (const auto& item : stmt.items) walk(item.expr.get());
}

/// Replaces column refs resolvable in the outer scope with literals.
Status SubstituteExpr(Expr* e, const std::set<std::string>& own,
                      const EvalScope& outer) {
  if (e == nullptr) return Status::OK();
  if (e->kind == ExprKind::kColumnRef) {
    bool is_own =
        !e->table.empty() ? own.count(ToLower(e->table)) > 0 : true;
    if (is_own) return Status::OK();
    auto v = EvalExpr(*e, outer, nullptr);
    if (!v.ok()) {
      return Status::Internal("cannot parameterize outer reference " +
                              e->ToString() + ": " + v.status().ToString());
    }
    e->kind = ExprKind::kLiteral;
    e->literal = std::move(v).value();
    e->table.clear();
    e->column.clear();
    return Status::OK();
  }
  RCC_RETURN_NOT_OK(SubstituteExpr(e->left.get(), own, outer));
  RCC_RETURN_NOT_OK(SubstituteExpr(e->right.get(), own, outer));
  for (auto& a : e->args) {
    RCC_RETURN_NOT_OK(SubstituteExpr(a.get(), own, outer));
  }
  if (e->subquery != nullptr) {
    // Nested blocks share the same "own" alias universe (already collected
    // recursively).
    SelectStmt* s = e->subquery.get();
    if (s->where) RCC_RETURN_NOT_OK(SubstituteExpr(s->where.get(), own, outer));
    for (auto& item : s->items) {
      RCC_RETURN_NOT_OK(SubstituteExpr(item.expr.get(), own, outer));
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::unique_ptr<SelectStmt>> ParameterizeStmt(const SelectStmt& stmt,
                                                     const EvalScope& outer) {
  auto clone = CloneSelectStmt(stmt);
  std::set<std::string> own;
  CollectOwnAliases(*clone, &own);
  if (clone->where) {
    RCC_RETURN_NOT_OK(SubstituteExpr(clone->where.get(), own, outer));
  }
  for (auto& item : clone->items) {
    RCC_RETURN_NOT_OK(SubstituteExpr(item.expr.get(), own, outer));
  }
  for (auto& ref : clone->from) {
    if (ref.subquery && ref.subquery->where) {
      RCC_RETURN_NOT_OK(
          SubstituteExpr(ref.subquery->where.get(), own, outer));
    }
  }
  return clone;
}

Status RemoteQueryIterator::Open(const EvalScope* outer) {
  rows_.clear();
  pos_ = 0;
  if (!ctx_->remote_executor) {
    return Status::Internal("no remote executor configured");
  }
  Result<RemoteResult> result = Status::OK();
  if (outer != nullptr && outer->row != nullptr) {
    // Possibly correlated: substitute outer references before shipping.
    RCC_ASSIGN_OR_RETURN(auto stmt, ParameterizeStmt(*op_.remote_stmt, *outer));
    result = ctx_->remote_executor(*stmt);
  } else {
    result = ctx_->remote_executor(*op_.remote_stmt);
  }
  if (!result.ok()) return result.status();
  if (ctx_->stats != nullptr) {
    ++ctx_->stats->remote_queries;
    // A remote fetch reads the latest back-end snapshot.
    SimTimeMs now = ctx_->clock != nullptr ? ctx_->clock->Now() : 0;
    if (now > ctx_->stats->max_seen_heartbeat) {
      ctx_->stats->max_seen_heartbeat = now;
    }
  }
  if (result->layout.num_slots() != op_.layout.num_slots()) {
    return Status::Internal(
        "remote result shape mismatch: got " +
        std::to_string(result->layout.num_slots()) + " columns, expected " +
        std::to_string(op_.layout.num_slots()));
  }
  rows_ = std::move(result->rows);
  return Status::OK();
}

Result<bool> RemoteQueryIterator::Next(Row* out) {
  if (pos_ >= rows_.size()) return false;
  *out = rows_[pos_++];
  return true;
}

Status RemoteQueryIterator::Close() {
  rows_.clear();
  pos_ = 0;
  return Status::OK();
}

}  // namespace rcc
