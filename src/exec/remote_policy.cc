#include "exec/remote_policy.h"

#include <algorithm>
#include <string>

#include "common/strings.h"

namespace rcc {

Result<RemoteResult> ResilientRemoteExecutor::Execute(const SelectStmt& stmt,
                                                      ExecStats* stats,
                                                      obs::QueryTrace* trace,
                                                      Deadline deadline) {
  if (breaker_open()) {
    if (trace != nullptr) {
      trace->Record(obs::TraceEventKind::kBreakerFastFail, clock_->Now(),
                    "back-end marked down until " +
                        FormatSimTime(breaker_open_until_));
    }
    return Status::Unavailable(
        "circuit breaker open: back-end marked down until " +
        FormatSimTime(breaker_open_until_));
  }

  Status last = Status::Unavailable("remote query not attempted");
  for (int attempt = 0; attempt <= policy_.max_retries; ++attempt) {
    // Cancellation point: a statement past its real-time deadline neither
    // attempts nor backs off again — its worker is needed back.
    if (deadline.expired()) {
      if (stats != nullptr) ++stats->deadline_timeouts;
      return Status::DeadlineExceeded(
          StrPrintf("statement deadline expired before remote attempt %d",
                    attempt + 1));
    }
    if (attempt > 0) {
      // Exponential backoff + jitter before retry `attempt`: the delay is
      // backoff_base_ms * backoff_multiplier^attempt (1-based retry index,
      // matching the RemotePolicy contract — the first retry already waits a
      // full multiplier step beyond the base).
      double scaled = static_cast<double>(policy_.backoff_base_ms);
      for (int i = 0; i < attempt; ++i) scaled *= policy_.backoff_multiplier;
      SimTimeMs delay = static_cast<SimTimeMs>(scaled);
      if (policy_.backoff_jitter_ms > 0) {
        delay += rng_.Uniform(0, policy_.backoff_jitter_ms);
      }
      if (trace != nullptr) {
        trace->Record(obs::TraceEventKind::kRemoteBackoff, clock_->Now(),
                      StrPrintf("retry=%d delay=%s", attempt,
                                FormatSimTime(delay).c_str()));
      }
      Wait(delay);
      if (stats != nullptr) ++stats->remote_retries;
    }

    if (trace != nullptr) {
      trace->Record(obs::TraceEventKind::kRemoteAttempt, clock_->Now(),
                    StrPrintf("attempt=%d", attempt + 1));
    }
    RemoteAttempt result = attempt_(stmt);
    // The caller never waits longer than the timeout for one attempt.
    Wait(std::min(result.latency_ms, policy_.timeout_ms));
    if (result.status.ok() && result.latency_ms > policy_.timeout_ms) {
      last = Status::Unavailable(
          "remote attempt timed out after " +
          FormatSimTime(policy_.timeout_ms) + " (back-end took " +
          FormatSimTime(result.latency_ms) + ")");
      if (stats != nullptr) ++stats->remote_timeouts;
      if (trace != nullptr) {
        trace->Record(obs::TraceEventKind::kRemoteTimeout, clock_->Now(),
                      StrPrintf("attempt=%d timeout=%s backend_took=%s",
                                attempt + 1,
                                FormatSimTime(policy_.timeout_ms).c_str(),
                                FormatSimTime(result.latency_ms).c_str()));
      }
    } else if (!result.status.ok()) {
      last = result.status;
    } else {
      consecutive_failures_ = 0;
      return std::move(result.data);
    }

    if (policy_.breaker_threshold > 0 &&
        ++consecutive_failures_ >= policy_.breaker_threshold) {
      breaker_open_until_ = clock_->Now() + policy_.breaker_cooldown_ms;
      consecutive_failures_ = 0;
      ++breaker_opens_;
      if (stats != nullptr) ++stats->breaker_opens;
      if (trace != nullptr) {
        trace->Record(obs::TraceEventKind::kBreakerOpen, clock_->Now(),
                      "cooldown until " + FormatSimTime(breaker_open_until_));
      }
      // Opening the breaker abandons the remaining retries: the link is
      // considered down, not flaky.
      break;
    }
  }
  return last;
}

}  // namespace rcc
