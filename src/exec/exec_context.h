#ifndef RCC_EXEC_EXEC_CONTEXT_H_
#define RCC_EXEC_EXEC_CONTEXT_H_

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/clock.h"
#include "exec/audit.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "plan/physical.h"
#include "replication/health.h"
#include "storage/table.h"

namespace rcc {

class SnapshotPin;

/// Rows returned by a remote (back-end) query, in the remote select-list
/// order.
struct RemoteResult {
  RowLayout layout;
  std::vector<Row> rows;
};

/// How a query may degrade when its remote branch fails and the local view
/// misses (or meets) the currency bound (paper §1: "return the data but with
/// an error code" instead of failing outright).
enum class DegradeMode {
  /// Never degrade: a remote-branch failure fails the query.
  kNone,
  /// Serve the local view only if a guard re-probe shows it satisfies the
  /// currency bound (the bound may have become satisfiable while the retry
  /// policy waited out back-end failures).
  kBounded,
  /// Serve the local view even beyond the bound, annotated with how stale it
  /// is. The timeline-consistency floor is still enforced.
  kAlways,
};

std::string_view DegradeModeName(DegradeMode mode);

/// A real-time (steady-clock) statement deadline. Unlike the currency
/// machinery — which runs entirely on the virtual clock — cancellation is
/// about wall time a client has already waited, so it uses real time. The
/// default (time_point::max) means "no deadline" and costs one compare per
/// check.
struct Deadline {
  std::chrono::steady_clock::time_point at =
      std::chrono::steady_clock::time_point::max();

  static Deadline None() { return Deadline(); }
  static Deadline After(std::chrono::steady_clock::time_point start,
                        int64_t ms) {
    Deadline d;
    d.at = start + std::chrono::milliseconds(ms);
    return d;
  }

  bool armed() const {
    return at != std::chrono::steady_clock::time_point::max();
  }
  /// True once the deadline has passed. Cancellation points (executor batch
  /// boundaries, remote retry-loop iterations) poll this.
  bool expired() const {
    return armed() && std::chrono::steady_clock::now() >= at;
  }
};

/// Per-query execution counters. Phase timings are real (steady-clock) time
/// because the currency-guard overhead experiments (paper Tables 4.4/4.5)
/// measure actual executor work; everything currency-related runs on the
/// virtual clock instead.
struct ExecStats {
  int64_t rows_returned = 0;
  int64_t remote_queries = 0;
  int64_t guard_evaluations = 0;
  /// SwitchUnion serving branches, counted by where the rows actually came
  /// from: a query that chose remote but degraded to its local view counts
  /// in switch_local (plus degraded_serves), not switch_remote.
  int64_t switch_local = 0;
  int64_t switch_remote = 0;
  /// Guard decisions that directed the query at the remote branch, whether or
  /// not the remote branch ended up serving (the pre-degradation decision).
  int64_t switch_remote_attempted = 0;
  /// Resilience-policy events on the cache↔back-end link.
  int64_t remote_retries = 0;
  int64_t remote_timeouts = 0;
  int64_t breaker_opens = 0;
  /// Queries answered from a local view after the remote branch failed.
  int64_t degraded_serves = 0;
  /// Degraded serves taken *pre-emptively* under overload pressure: the
  /// guard chose remote, but the shed hint redirected the statement down the
  /// degraded-local branch (only when the degrade mode and timeline floor
  /// permit — see SwitchUnionIterator). A subset of degraded_serves.
  int64_t shed_serves = 0;
  /// Statements cancelled at a batch boundary or retry-loop iteration
  /// because their real-time deadline expired.
  int64_t deadline_timeouts = 0;
  /// Guard probes against a region with no known local heartbeat (region
  /// undefined, or defined mid-run and never synced): the guard fails
  /// explicitly instead of treating the region as stale-since-time-0.
  int64_t guard_unknown_region = 0;
  /// Guard probes that found the region quarantined or resyncing (its
  /// replication pipeline invalidated the heartbeat). A subset of
  /// guard_unknown_region — broken out so operators can tell "never synced"
  /// from "taken out of service".
  int64_t guard_quarantined_region = 0;
  /// Largest staleness (virtual ms) among this object's degraded serves;
  /// 0 when none happened.
  SimTimeMs degraded_staleness_ms = 0;
  /// Executor phases, milliseconds of real time.
  double setup_ms = 0;
  double run_ms = 0;
  double shutdown_ms = 0;
  /// Highest snapshot timestamp (virtual time) among the data sources the
  /// query actually read: local branches contribute their region's local
  /// heartbeat, remote fetches the current virtual time. Drives timeline
  /// consistency (paper §2.3). -1 when no source was touched.
  SimTimeMs max_seen_heartbeat = -1;

  void Reset() { *this = ExecStats(); }
  /// Accumulates another stats object: counters and phase timings sum (both
  /// are additive real costs), degraded_staleness_ms and max_seen_heartbeat
  /// max-merge.
  void Accumulate(const ExecStats& other);
};

/// Everything an iterator tree needs at run time. The engine layer (cache /
/// back-end) fills in the callbacks; exec stays independent of it.
struct ExecContext {
  /// Resolves a scan target to its storage. Returns nullptr when unknown.
  std::function<const Table*(const ScanTarget&)> table_provider;

  /// Ships a statement to the back-end server (cache side only).
  std::function<Result<RemoteResult>(const SelectStmt&)> remote_executor;

  /// The local heartbeat timestamp of a currency region: the currency guard
  /// input (paper §3.2.3). nullopt = unknown (region undefined, never
  /// synced, or quarantined — the engine layer returns the *certified*
  /// heartbeat, which a quarantined replication pipeline withdraws), which
  /// guards treat as "cannot certify freshness" rather than as maximal
  /// staleness.
  std::function<std::optional<SimTimeMs>(RegionId)> local_heartbeat;

  /// Replication-pipeline health of a currency region, for stats and trace
  /// payloads (the freshness decision itself rides on local_heartbeat).
  /// Null when the engine layer doesn't track health (back-end mode,
  /// hand-built test contexts): guards then omit health from their output.
  std::function<RegionHealth(RegionId)> region_health;

  /// MVCC snapshot hooks (null in hand-built test contexts and back-end
  /// mode, where reads are not versioned). The engine layer wires all four
  /// to one SnapshotPin so a query reads each region at a single published
  /// version:
  ///  - region_epoch: publication epoch of the snapshot this query is pinned
  ///    to for the region (0 = unversioned); recorded in guard/serve audit
  ///    observations so the oracle can check one-snapshot-per-serve
  ///    structurally.
  ///  - refresh_region: re-reads the region's current snapshot (guard probes
  ///    and degrade re-probes), a no-op once the query has served local rows
  ///    from the region — served data stays on its snapshot.
  ///  - note_local_serve: marks the region's pinned snapshot as served-from,
  ///    freezing refresh_region for it.
  std::function<uint64_t(RegionId)> region_epoch;
  std::function<void(RegionId)> refresh_region;
  std::function<void(RegionId)> note_local_serve;

  /// Owning anchor for the SnapshotPin behind the hooks above; releases the
  /// pinned epoch (allowing snapshot reclamation) when the last copy of the
  /// context and its callbacks dies.
  std::shared_ptr<SnapshotPin> snapshot_pin;

  const VirtualClock* clock = nullptr;
  ExecStats* stats = nullptr;

  /// Degradation policy for remote-branch failures (see DegradeMode).
  DegradeMode degrade = DegradeMode::kNone;

  /// Real-time deadline for this statement; default = none. Checked at
  /// executor batch boundaries and inside the remote retry loop, so a
  /// timed-out statement frees its worker (and snapshot pin) within one
  /// batch boundary instead of running to completion.
  Deadline deadline;

  /// Overload-shedding hint from the admission layer: when true, a
  /// SwitchUnion whose guard chose the remote branch first *tries* the
  /// degraded-local ladder (same permission checks as a remote failure —
  /// degrade mode, quarantine, timeline floor, currency bound) and serves
  /// local if allowed, falling back to normal remote execution if not.
  /// Never weakens guard semantics; it only re-orders which permitted
  /// branch is preferred under pressure.
  bool shed_hint = false;

  /// Plans for nested EXISTS/IN subqueries, keyed by AST node.
  const std::map<const SelectStmt*, SubPlan>* subplans = nullptr;

  /// Timeline-consistency floor (paper §2.3): when >= 0, currency guards
  /// additionally require the region's heartbeat to be at least this value,
  /// so a session never reads data older than what it has already seen.
  SimTimeMs timeline_floor_ms = -1;

  /// Per-query structured trace; null = tracing disabled. Every recording
  /// site is gated on this pointer, so the disabled path costs one compare.
  obs::QueryTrace* trace = nullptr;

  /// Real-time guard-probe latency histogram (paper Table 4.4 overhead);
  /// null = not measured. Resolved once per query by the engine layer so the
  /// probe itself never takes the registry lock.
  obs::Histogram* guard_probe_hist = nullptr;

  /// Execution-audit sink (simulation harness); null = not recording. Guard
  /// probes and serving decisions report here under `history_query_id`, the
  /// id the engine layer obtained from HistorySink::BeginQuery.
  HistorySink* history = nullptr;
  uint64_t history_query_id = 0;

  /// Bind values for kParam nodes in the plan (plan-cache reuse); null when
  /// the plan was built fresh from literals.
  const std::vector<Value>* params = nullptr;
};

/// A batch of rows moved between operators in one virtual call (vectorized
/// execution). Rows are moved in, not copied; `rows` keeps its capacity
/// across Clear() so steady-state batches don't reallocate.
struct RowBatch {
  std::vector<Row> rows;

  void Clear() { rows.clear(); }
  bool empty() const { return rows.empty(); }
  size_t size() const { return rows.size(); }
};

/// Volcano-style iterator. Open may be called again after Close (inner sides
/// of nested-loop joins re-open per outer row, with the outer row's scope).
class RowIterator {
 public:
  virtual ~RowIterator() = default;

  /// `outer` supplies bindings for correlated/parameterized references; may
  /// be nullptr at the plan root.
  virtual Status Open(const EvalScope* outer) = 0;
  /// Produces the next row; returns false at end of stream.
  virtual Result<bool> Next(Row* out) = 0;
  /// Produces up to `max_rows` rows into `out` (cleared first). Returns
  /// false exactly when the stream is exhausted AND the batch is empty —
  /// never true with an empty batch, so callers may loop on the return
  /// value alone. The default shim loops Next(), so row-at-a-time operators
  /// compose with batch-at-a-time callers unchanged; hot operators override
  /// it natively.
  virtual Result<bool> NextBatch(RowBatch* out, size_t max_rows);
  virtual Status Close() = 0;

  /// Row shape produced by this iterator.
  virtual const RowLayout& layout() const = 0;
};

}  // namespace rcc

#endif  // RCC_EXEC_EXEC_CONTEXT_H_
