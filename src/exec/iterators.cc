#include "exec/iterators.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>

#include "common/logging.h"
#include "common/strings.h"
#include "exec/remote.h"
#include "exec/switch_union.h"

namespace rcc {

namespace {

/// Concatenated string key for hash tables; numeric values render uniformly
/// so cross-type equality (INT 42 vs DOUBLE 42.0) hashes identically, in
/// line with Value::Compare.
std::string HashKeyOf(const std::vector<Value>& vals, bool* has_null) {
  std::string key;
  for (const Value& v : vals) {
    if (v.is_null()) *has_null = true;
    key += v.ToString();
    key += '\x1f';
  }
  return key;
}

/// Common base handling the op/ctx/aliases triple and residual evaluation.
class IterBase : public RowIterator {
 public:
  IterBase(const PhysicalOp& op, ExecContext* ctx, const AliasMap* aliases)
      : op_(op), ctx_(ctx), aliases_(aliases),
        subq_(MakeSubqueryEvaluator(ctx)) {}

  const RowLayout& layout() const override { return op_.layout; }

 protected:
  /// Builds the scope for a row of this operator's output.
  EvalScope ScopeFor(const Row& row, const EvalScope* outer) const {
    EvalScope s;
    s.layout = &op_.layout;
    s.row = &row;
    s.aliases = aliases_;
    s.outer = outer;
    s.params = ctx_->params;
    return s;
  }

  Result<bool> PassesResidual(const Row& row, const EvalScope* outer) const {
    if (op_.residual == nullptr) return true;
    EvalScope scope = ScopeFor(row, outer);
    return EvalPredicate(*op_.residual, scope, &subq_);
  }

  const PhysicalOp& op_;
  ExecContext* ctx_;
  const AliasMap* aliases_;
  SubqueryEvaluator subq_;
};

// -- Scan ---------------------------------------------------------------------

class ScanIterator : public IterBase {
 public:
  using IterBase::IterBase;

  Status Open(const EvalScope* outer) override {
    outer_ = outer;
    table_ = ctx_->table_provider(op_.target);
    if (table_ == nullptr) {
      return Status::NotFound("scan target '" + op_.target.name +
                              "' not available");
    }
    if (table_->schema().num_columns() != op_.layout.num_slots()) {
      return Status::Internal("scan layout mismatch for " + op_.target.name);
    }
    // Evaluate (possibly parameterized) seek bounds.
    lo_.clear();
    hi_.clear();
    EvalScope seek_scope;
    seek_scope.aliases = aliases_;
    seek_scope.outer = outer;
    seek_scope.params = ctx_->params;
    for (const auto& e : op_.seek_lo) {
      RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, outer ? *outer : seek_scope,
                                             &subq_));
      lo_.push_back(std::move(v));
    }
    for (const auto& e : op_.seek_hi) {
      RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, outer ? *outer : seek_scope,
                                             &subq_));
      hi_.push_back(std::move(v));
    }

    if (!op_.index_name.empty()) {
      const SecondaryIndex* index = table_->FindIndex(op_.index_name);
      if (index == nullptr) {
        return Status::NotFound("index '" + op_.index_name + "' not on " +
                                op_.target.name);
      }
      pks_ = index->Range(lo_.empty() ? nullptr : &lo_,
                          hi_.empty() ? nullptr : &hi_);
      pk_pos_ = 0;
      use_index_ = true;
    } else {
      use_index_ = false;
      it_ = lo_.empty() ? table_->rows().begin()
                        : table_->rows().lower_bound(lo_);
      end_ = table_->rows().end();
    }
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      RCC_ASSIGN_OR_RETURN(const Row* candidate, NextCandidate());
      if (candidate == nullptr) return false;
      RCC_ASSIGN_OR_RETURN(bool ok, PassesResidual(*candidate, outer_));
      if (ok) {
        *out = *candidate;
        return true;
      }
    }
  }

  Result<bool> NextBatch(RowBatch* out, size_t max_rows) override {
    out->Clear();
    while (out->rows.size() < max_rows) {
      RCC_ASSIGN_OR_RETURN(const Row* candidate, NextCandidate());
      if (candidate == nullptr) break;
      RCC_ASSIGN_OR_RETURN(bool ok, PassesResidual(*candidate, outer_));
      if (ok) out->rows.push_back(*candidate);
    }
    return !out->rows.empty();
  }

  Status Close() override {
    table_ = nullptr;
    pks_.clear();
    return Status::OK();
  }

 private:
  /// Advances to the next stored row in range; nullptr at end of scan. The
  /// residual is applied by the callers (shared by Next and NextBatch).
  Result<const Row*> NextCandidate() {
    while (true) {
      if (use_index_) {
        if (pk_pos_ >= pks_.size()) return nullptr;
        const Row* candidate = table_->Get(pks_[pk_pos_++]);
        if (candidate == nullptr) continue;  // index raced storage (unused)
        return candidate;
      }
      if (it_ == end_) return nullptr;
      if (!hi_.empty() && Table::ExceedsUpper(it_->first, hi_)) return nullptr;
      const Row* candidate = &it_->second;
      ++it_;
      return candidate;
    }
  }

  const EvalScope* outer_ = nullptr;
  const Table* table_ = nullptr;
  TableKey lo_;
  TableKey hi_;
  bool use_index_ = false;
  std::vector<TableKey> pks_;
  size_t pk_pos_ = 0;
  std::map<TableKey, Row, TableKeyLess>::const_iterator it_;
  std::map<TableKey, Row, TableKeyLess>::const_iterator end_;
};

// -- Filter / Project ---------------------------------------------------------

class FilterIterator : public IterBase {
 public:
  FilterIterator(const PhysicalOp& op, ExecContext* ctx,
                 const AliasMap* aliases, std::unique_ptr<RowIterator> child)
      : IterBase(op, ctx, aliases), child_(std::move(child)) {}

  Status Open(const EvalScope* outer) override {
    outer_ = outer;
    buf_.Clear();
    buf_pos_ = 0;
    return child_->Open(outer);
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      // Drain any batch buffer first so Next and NextBatch can interleave.
      if (buf_pos_ < buf_.rows.size()) {
        Row row = std::move(buf_.rows[buf_pos_++]);
        RCC_ASSIGN_OR_RETURN(bool ok, PassesResidual(row, outer_));
        if (!ok) continue;
        *out = std::move(row);
        return true;
      }
      Row row;
      RCC_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
      if (!more) return false;
      RCC_ASSIGN_OR_RETURN(bool ok, PassesResidual(row, outer_));
      if (ok) {
        *out = std::move(row);
        return true;
      }
    }
  }

  Result<bool> NextBatch(RowBatch* out, size_t max_rows) override {
    out->Clear();
    while (out->rows.size() < max_rows) {
      if (buf_pos_ >= buf_.rows.size()) {
        RCC_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&buf_, max_rows));
        buf_pos_ = 0;
        if (!more) break;
      }
      while (buf_pos_ < buf_.rows.size() && out->rows.size() < max_rows) {
        Row& row = buf_.rows[buf_pos_++];
        RCC_ASSIGN_OR_RETURN(bool ok, PassesResidual(row, outer_));
        if (ok) out->rows.push_back(std::move(row));
      }
    }
    return !out->rows.empty();
  }

  Status Close() override {
    buf_.Clear();
    buf_pos_ = 0;
    return child_->Close();
  }

 private:
  std::unique_ptr<RowIterator> child_;
  const EvalScope* outer_ = nullptr;
  RowBatch buf_;
  size_t buf_pos_ = 0;
};

class ProjectIterator : public IterBase {
 public:
  ProjectIterator(const PhysicalOp& op, ExecContext* ctx,
                  const AliasMap* aliases, std::unique_ptr<RowIterator> child)
      : IterBase(op, ctx, aliases), child_(std::move(child)) {}

  Status Open(const EvalScope* outer) override {
    outer_ = outer;
    seen_.clear();
    buf_.Clear();
    buf_pos_ = 0;
    return child_->Open(outer);
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      Row row;
      // Drain any batch buffer first so Next and NextBatch can interleave.
      if (buf_pos_ < buf_.rows.size()) {
        row = std::move(buf_.rows[buf_pos_++]);
      } else {
        RCC_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
        if (!more) return false;
      }
      RCC_ASSIGN_OR_RETURN(bool keep, ProjectRow(row, out));
      if (keep) return true;
    }
  }

  Result<bool> NextBatch(RowBatch* out, size_t max_rows) override {
    out->Clear();
    Row result;
    while (out->rows.size() < max_rows) {
      if (buf_pos_ >= buf_.rows.size()) {
        RCC_ASSIGN_OR_RETURN(bool more, child_->NextBatch(&buf_, max_rows));
        buf_pos_ = 0;
        if (!more) break;
      }
      while (buf_pos_ < buf_.rows.size() && out->rows.size() < max_rows) {
        RCC_ASSIGN_OR_RETURN(bool keep,
                             ProjectRow(buf_.rows[buf_pos_++], &result));
        if (keep) out->rows.push_back(std::move(result));
      }
    }
    return !out->rows.empty();
  }

  Status Close() override {
    seen_.clear();
    buf_.Clear();
    buf_pos_ = 0;
    return child_->Close();
  }

 private:
  /// Projects one input row; false = dropped as a DISTINCT duplicate.
  Result<bool> ProjectRow(const Row& row, Row* out) {
    EvalScope scope;
    scope.layout = &child_->layout();
    scope.row = &row;
    scope.aliases = aliases_;
    scope.outer = outer_;
    scope.params = ctx_->params;
    Row result;
    result.reserve(op_.exprs.size());
    for (const auto& e : op_.exprs) {
      RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, scope, &subq_));
      result.push_back(std::move(v));
    }
    if (op_.distinct) {
      bool ignore = false;
      std::string key = HashKeyOf(result, &ignore);
      if (!seen_.insert(std::move(key)).second) return false;  // duplicate
    }
    *out = std::move(result);
    return true;
  }

  std::unique_ptr<RowIterator> child_;
  const EvalScope* outer_ = nullptr;
  std::set<std::string> seen_;  // DISTINCT bookkeeping
  RowBatch buf_;
  size_t buf_pos_ = 0;
};

// -- Joins --------------------------------------------------------------------

class NestedLoopJoinIterator : public IterBase {
 public:
  NestedLoopJoinIterator(const PhysicalOp& op, ExecContext* ctx,
                         const AliasMap* aliases,
                         std::unique_ptr<RowIterator> outer_child,
                         std::unique_ptr<RowIterator> inner_child)
      : IterBase(op, ctx, aliases),
        outer_child_(std::move(outer_child)),
        inner_child_(std::move(inner_child)) {}

  Status Open(const EvalScope* outer) override {
    outer_ = outer;
    have_left_ = false;
    inner_open_ = false;
    return outer_child_->Open(outer);
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (!have_left_) {
        RCC_ASSIGN_OR_RETURN(bool more, outer_child_->Next(&left_row_));
        if (!more) return false;
        have_left_ = true;
        left_scope_.layout = &outer_child_->layout();
        left_scope_.row = &left_row_;
        left_scope_.aliases = aliases_;
        left_scope_.outer = outer_;
        left_scope_.params = ctx_->params;
        if (inner_open_) RCC_RETURN_NOT_OK(inner_child_->Close());
        RCC_RETURN_NOT_OK(inner_child_->Open(&left_scope_));
        inner_open_ = true;
      }
      Row right_row;
      RCC_ASSIGN_OR_RETURN(bool more, inner_child_->Next(&right_row));
      if (!more) {
        have_left_ = false;
        continue;
      }
      Row combined = left_row_;
      combined.insert(combined.end(), right_row.begin(), right_row.end());
      RCC_ASSIGN_OR_RETURN(bool ok, PassesResidual(combined, outer_));
      if (ok) {
        *out = std::move(combined);
        return true;
      }
    }
  }

  Status Close() override {
    Status st = outer_child_->Close();
    if (inner_open_) {
      Status st2 = inner_child_->Close();
      inner_open_ = false;
      if (st.ok()) st = st2;
    }
    have_left_ = false;
    return st;
  }

 private:
  std::unique_ptr<RowIterator> outer_child_;
  std::unique_ptr<RowIterator> inner_child_;
  const EvalScope* outer_ = nullptr;
  Row left_row_;
  EvalScope left_scope_;
  bool have_left_ = false;
  bool inner_open_ = false;
};

class HashJoinIterator : public IterBase {
 public:
  HashJoinIterator(const PhysicalOp& op, ExecContext* ctx,
                   const AliasMap* aliases,
                   std::unique_ptr<RowIterator> probe_child,
                   std::unique_ptr<RowIterator> build_child)
      : IterBase(op, ctx, aliases),
        probe_child_(std::move(probe_child)),
        build_child_(std::move(build_child)) {}

  Status Open(const EvalScope* outer) override {
    outer_ = outer;
    table_.clear();
    matches_ = nullptr;
    match_pos_ = 0;
    // Build side = right child, keys in exprs2.
    RCC_RETURN_NOT_OK(build_child_->Open(outer));
    Row row;
    while (true) {
      RCC_ASSIGN_OR_RETURN(bool more, build_child_->Next(&row));
      if (!more) break;
      EvalScope scope;
      scope.layout = &build_child_->layout();
      scope.row = &row;
      scope.aliases = aliases_;
      scope.outer = outer_;
      scope.params = ctx_->params;
      std::vector<Value> keys;
      keys.reserve(op_.exprs2.size());
      for (const auto& e : op_.exprs2) {
        RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, scope, &subq_));
        keys.push_back(std::move(v));
      }
      bool has_null = false;
      std::string key = HashKeyOf(keys, &has_null);
      if (has_null) continue;  // NULL keys never join
      table_[key].push_back(row);
    }
    RCC_RETURN_NOT_OK(build_child_->Close());
    return probe_child_->Open(outer);
  }

  Result<bool> Next(Row* out) override {
    while (true) {
      if (matches_ != nullptr && match_pos_ < matches_->size()) {
        Row combined = probe_row_;
        const Row& right = (*matches_)[match_pos_++];
        combined.insert(combined.end(), right.begin(), right.end());
        RCC_ASSIGN_OR_RETURN(bool ok, PassesResidual(combined, outer_));
        if (!ok) continue;
        *out = std::move(combined);
        return true;
      }
      RCC_ASSIGN_OR_RETURN(bool more, probe_child_->Next(&probe_row_));
      if (!more) return false;
      EvalScope scope;
      scope.layout = &probe_child_->layout();
      scope.row = &probe_row_;
      scope.aliases = aliases_;
      scope.outer = outer_;
      scope.params = ctx_->params;
      std::vector<Value> keys;
      keys.reserve(op_.exprs.size());
      for (const auto& e : op_.exprs) {
        RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, scope, &subq_));
        keys.push_back(std::move(v));
      }
      bool has_null = false;
      std::string key = HashKeyOf(keys, &has_null);
      if (has_null) continue;
      auto it = table_.find(key);
      matches_ = it == table_.end() ? nullptr : &it->second;
      match_pos_ = 0;
    }
  }

  Status Close() override {
    table_.clear();
    matches_ = nullptr;
    return probe_child_->Close();
  }

 private:
  std::unique_ptr<RowIterator> probe_child_;
  std::unique_ptr<RowIterator> build_child_;
  const EvalScope* outer_ = nullptr;
  std::unordered_map<std::string, std::vector<Row>> table_;
  Row probe_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_pos_ = 0;
};

// -- Sort ---------------------------------------------------------------------

class SortIterator : public IterBase {
 public:
  SortIterator(const PhysicalOp& op, ExecContext* ctx, const AliasMap* aliases,
               std::unique_ptr<RowIterator> child)
      : IterBase(op, ctx, aliases), child_(std::move(child)) {}

  Status Open(const EvalScope* outer) override {
    rows_.clear();
    pos_ = 0;
    RCC_RETURN_NOT_OK(child_->Open(outer));
    Row row;
    std::vector<std::pair<std::vector<Value>, Row>> keyed;
    while (true) {
      RCC_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
      if (!more) break;
      EvalScope scope = ScopeFor(row, outer);
      std::vector<Value> keys;
      for (const auto& sk : op_.sort_keys) {
        RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*sk.expr, scope, &subq_));
        keys.push_back(std::move(v));
      }
      keyed.emplace_back(std::move(keys), row);
    }
    RCC_RETURN_NOT_OK(child_->Close());
    std::stable_sort(keyed.begin(), keyed.end(),
                     [this](const auto& a, const auto& b) {
                       for (size_t i = 0; i < op_.sort_keys.size(); ++i) {
                         int c = a.first[i].Compare(b.first[i]);
                         if (c == 0) continue;
                         return op_.sort_keys[i].descending ? c > 0 : c < 0;
                       }
                       return false;
                     });
    rows_.reserve(keyed.size());
    for (auto& kv : keyed) rows_.push_back(std::move(kv.second));
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= rows_.size()) return false;
    *out = rows_[pos_++];
    return true;
  }

  Status Close() override {
    rows_.clear();
    return Status::OK();
  }

 private:
  std::unique_ptr<RowIterator> child_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
};

// -- Aggregation --------------------------------------------------------------

struct AggState {
  int64_t count = 0;
  double sum = 0;
  bool sum_is_int = true;
  int64_t isum = 0;
  Value min;
  Value max;
  bool seen = false;
};

class HashAggregateIterator : public IterBase {
 public:
  HashAggregateIterator(const PhysicalOp& op, ExecContext* ctx,
                        const AliasMap* aliases,
                        std::unique_ptr<RowIterator> child)
      : IterBase(op, ctx, aliases), child_(std::move(child)) {}

  Status Open(const EvalScope* outer) override {
    groups_.clear();
    order_.clear();
    pos_ = 0;
    RCC_RETURN_NOT_OK(child_->Open(outer));
    Row row;
    while (true) {
      RCC_ASSIGN_OR_RETURN(bool more, child_->Next(&row));
      if (!more) break;
      EvalScope scope;
      scope.layout = &child_->layout();
      scope.row = &row;
      scope.aliases = aliases_;
      scope.outer = outer;
      scope.params = ctx_->params;
      std::vector<Value> keys;
      for (const auto& e : op_.exprs) {
        RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*e, scope, &subq_));
        keys.push_back(std::move(v));
      }
      bool ignore = false;
      std::string key = HashKeyOf(keys, &ignore);
      auto it = groups_.find(key);
      if (it == groups_.end()) {
        it = groups_.emplace(key, GroupState{}).first;
        it->second.keys = keys;
        it->second.aggs.resize(op_.aggs.size());
        order_.push_back(key);
      }
      RCC_RETURN_NOT_OK(Update(&it->second, scope));
    }
    RCC_RETURN_NOT_OK(child_->Close());
    // Global aggregate over empty input still yields one row.
    if (groups_.empty() && op_.exprs.empty()) {
      GroupState g;
      g.aggs.resize(op_.aggs.size());
      groups_.emplace("", std::move(g));
      order_.push_back("");
    }
    return Status::OK();
  }

  Result<bool> Next(Row* out) override {
    if (pos_ >= order_.size()) return false;
    const GroupState& g = groups_[order_[pos_++]];
    Row result = g.keys;
    for (size_t i = 0; i < op_.aggs.size(); ++i) {
      result.push_back(Finalize(op_.aggs[i], g.aggs[i]));
    }
    *out = std::move(result);
    return true;
  }

  Status Close() override {
    groups_.clear();
    order_.clear();
    return Status::OK();
  }

 private:
  struct GroupState {
    std::vector<Value> keys;
    std::vector<AggState> aggs;
  };

  Status Update(GroupState* g, const EvalScope& scope) {
    for (size_t i = 0; i < op_.aggs.size(); ++i) {
      const AggItem& item = op_.aggs[i];
      AggState& st = g->aggs[i];
      if (item.star) {
        ++st.count;
        continue;
      }
      RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*item.arg, scope, &subq_));
      if (v.is_null()) continue;  // aggregates ignore NULLs
      ++st.count;
      if (v.is_numeric()) {
        st.sum += v.AsDouble();
        if (v.is_int()) {
          st.isum += v.AsInt();
        } else {
          st.sum_is_int = false;
        }
      }
      if (!st.seen || v.Compare(st.min) < 0) st.min = v;
      if (!st.seen || st.max.Compare(v) < 0) st.max = v;
      st.seen = true;
    }
    return Status::OK();
  }

  static Value Finalize(const AggItem& item, const AggState& st) {
    if (item.func == "count") return Value::Int(st.count);
    if (item.func == "sum") {
      if (st.count == 0) return Value::Null();
      return st.sum_is_int ? Value::Int(st.isum) : Value::Double(st.sum);
    }
    if (item.func == "avg") {
      if (st.count == 0) return Value::Null();
      return Value::Double(st.sum / static_cast<double>(st.count));
    }
    if (item.func == "min") return st.seen ? st.min : Value::Null();
    if (item.func == "max") return st.seen ? st.max : Value::Null();
    return Value::Null();
  }

  std::unique_ptr<RowIterator> child_;
  std::map<std::string, GroupState> groups_;
  std::vector<std::string> order_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::unique_ptr<RowIterator>> BuildIterator(const PhysicalOp& op,
                                                   ExecContext* ctx,
                                                   const AliasMap* aliases) {
  // A derived-table subtree resolves names in its own block's scope.
  if (op.own_aliases != nullptr) aliases = op.own_aliases.get();
  switch (op.kind) {
    case PhysOpKind::kLocalScan:
      return std::unique_ptr<RowIterator>(
          new ScanIterator(op, ctx, aliases));
    case PhysOpKind::kRemoteQuery:
      return std::unique_ptr<RowIterator>(new RemoteQueryIterator(op, ctx));
    case PhysOpKind::kFilter: {
      RCC_ASSIGN_OR_RETURN(auto child,
                           BuildIterator(*op.children[0], ctx, aliases));
      return std::unique_ptr<RowIterator>(
          new FilterIterator(op, ctx, aliases, std::move(child)));
    }
    case PhysOpKind::kProject: {
      RCC_ASSIGN_OR_RETURN(auto child,
                           BuildIterator(*op.children[0], ctx, aliases));
      return std::unique_ptr<RowIterator>(
          new ProjectIterator(op, ctx, aliases, std::move(child)));
    }
    case PhysOpKind::kNestedLoopJoin: {
      RCC_ASSIGN_OR_RETURN(auto left,
                           BuildIterator(*op.children[0], ctx, aliases));
      RCC_ASSIGN_OR_RETURN(auto right,
                           BuildIterator(*op.children[1], ctx, aliases));
      return std::unique_ptr<RowIterator>(new NestedLoopJoinIterator(
          op, ctx, aliases, std::move(left), std::move(right)));
    }
    case PhysOpKind::kHashJoin: {
      RCC_ASSIGN_OR_RETURN(auto left,
                           BuildIterator(*op.children[0], ctx, aliases));
      RCC_ASSIGN_OR_RETURN(auto right,
                           BuildIterator(*op.children[1], ctx, aliases));
      return std::unique_ptr<RowIterator>(new HashJoinIterator(
          op, ctx, aliases, std::move(left), std::move(right)));
    }
    case PhysOpKind::kSort: {
      RCC_ASSIGN_OR_RETURN(auto child,
                           BuildIterator(*op.children[0], ctx, aliases));
      return std::unique_ptr<RowIterator>(
          new SortIterator(op, ctx, aliases, std::move(child)));
    }
    case PhysOpKind::kHashAggregate: {
      RCC_ASSIGN_OR_RETURN(auto child,
                           BuildIterator(*op.children[0], ctx, aliases));
      return std::unique_ptr<RowIterator>(
          new HashAggregateIterator(op, ctx, aliases, std::move(child)));
    }
    case PhysOpKind::kSwitchUnion: {
      RCC_ASSIGN_OR_RETURN(auto local,
                           BuildIterator(*op.children[0], ctx, aliases));
      RCC_ASSIGN_OR_RETURN(auto remote,
                           BuildIterator(*op.children[1], ctx, aliases));
      return std::unique_ptr<RowIterator>(new SwitchUnionIterator(
          op, ctx, std::move(local), std::move(remote)));
    }
  }
  return Status::Internal("unknown physical operator");
}

SubqueryEvaluator MakeSubqueryEvaluator(ExecContext* ctx) {
  return [ctx](const SelectStmt& subquery, const EvalScope& scope,
               const Value* probe) -> Result<Value> {
    if (ctx->subplans == nullptr) {
      return Status::NotSupported("no subquery plans registered");
    }
    auto it = ctx->subplans->find(&subquery);
    if (it == ctx->subplans->end()) {
      return Status::Internal("subquery plan missing");
    }
    const SubPlan& sub = it->second;
    RCC_ASSIGN_OR_RETURN(auto iter,
                         BuildIterator(*sub.root, ctx, &sub.aliases));
    RCC_RETURN_NOT_OK(iter->Open(&scope));
    Row row;
    Value result = Value::Int(0);
    bool saw_null = false;
    while (true) {
      RCC_ASSIGN_OR_RETURN(bool more, iter->Next(&row));
      if (!more) break;
      if (probe == nullptr) {
        result = Value::Int(1);  // EXISTS
        break;
      }
      if (row.empty()) continue;
      if (row[0].is_null()) {
        saw_null = true;
        continue;
      }
      if (probe->Compare(row[0]) == 0) {
        result = Value::Int(1);
        break;
      }
    }
    RCC_RETURN_NOT_OK(iter->Close());
    if (probe != nullptr && result.AsInt() == 0 && saw_null) {
      return Value::Null();
    }
    return result;
  };
}

}  // namespace rcc
