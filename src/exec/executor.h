#ifndef RCC_EXEC_EXECUTOR_H_
#define RCC_EXEC_EXECUTOR_H_

#include <vector>

#include "exec/exec_context.h"

namespace rcc {

/// A fully materialized query result.
struct ExecutedQuery {
  RowLayout layout;
  std::vector<Row> rows;
};

/// Executes an optimized plan: instantiates the iterator tree (setup phase),
/// drains it (run phase), and tears it down (shutdown phase). Phase timings
/// land in ctx->stats — they are what the currency-guard overhead
/// experiments (paper Tables 4.4/4.5) report.
Result<ExecutedQuery> ExecutePlan(const QueryPlan& plan, ExecContext* ctx);

}  // namespace rcc

#endif  // RCC_EXEC_EXECUTOR_H_
