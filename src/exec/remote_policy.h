#ifndef RCC_EXEC_REMOTE_POLICY_H_
#define RCC_EXEC_REMOTE_POLICY_H_

#include <functional>

#include "common/rng.h"
#include "exec/exec_context.h"

namespace rcc {

/// One observed attempt against the back-end query channel. Unlike the plain
/// remote-executor callback this carries the attempt's simulated latency, so
/// a policy layer can decide whether the caller would have given up waiting.
struct RemoteAttempt {
  Status status;            // outcome of the attempt
  RemoteResult data;        // valid only when status.ok()
  SimTimeMs latency_ms = 0; // virtual time the attempt took
};

/// Produces one attempt; fault injectors and transports implement this.
using RemoteAttemptFn = std::function<RemoteAttempt(const SelectStmt&)>;

/// Advances simulated time by `delta` ms while the policy waits (on an
/// attempt, or between retries). Wiring this to the simulation scheduler lets
/// replication deliveries land *during* the wait — which is what makes a
/// degraded local serve able to satisfy its bound after an outage.
using WaitFn = std::function<void(SimTimeMs delta)>;

/// Knobs of the resilient remote-execution policy. All times are virtual ms.
struct RemotePolicy {
  /// An attempt whose latency exceeds this is abandoned and counted as a
  /// timeout (the caller only ever waits timeout_ms for it).
  SimTimeMs timeout_ms = 1000;
  /// Retries after the first attempt.
  int max_retries = 3;
  /// Exponential backoff: the delay before retry i (1-based, so the first
  /// retry already backs off a full multiplier step) is
  /// backoff_base_ms * backoff_multiplier^i + uniform[0, backoff_jitter_ms].
  SimTimeMs backoff_base_ms = 100;
  double backoff_multiplier = 2.0;
  SimTimeMs backoff_jitter_ms = 50;
  /// Circuit breaker: after this many consecutive failed attempts the
  /// back-end is marked down for breaker_cooldown_ms and calls fail fast
  /// without touching the link. 0 disables the breaker.
  int breaker_threshold = 5;
  SimTimeMs breaker_cooldown_ms = 5000;
  /// Seed of the backoff-jitter RNG (deterministic experiments).
  uint64_t seed = 0x5EEDu;
};

/// Wraps a remote attempt function with per-query timeout, bounded retries
/// with exponential backoff + jitter, and a circuit breaker. Breaker state
/// persists across queries, so one instance should live as long as the
/// cache↔back-end link it protects.
class ResilientRemoteExecutor {
 public:
  /// `clock` must outlive the executor; `wait` may be null (no simulated
  /// waiting — retries then happen at one instant of virtual time).
  ResilientRemoteExecutor(RemotePolicy policy, RemoteAttemptFn attempt,
                          const VirtualClock* clock, WaitFn wait = nullptr)
      : policy_(policy),
        attempt_(std::move(attempt)),
        clock_(clock),
        wait_(std::move(wait)),
        rng_(policy.seed) {}

  ResilientRemoteExecutor(const ResilientRemoteExecutor&) = delete;
  ResilientRemoteExecutor& operator=(const ResilientRemoteExecutor&) = delete;

  /// Executes `stmt` under the policy. Retry/timeout/breaker events are
  /// recorded into `stats` and, per event with its virtual timestamp, into
  /// `trace` when non-null. `deadline` is the statement's real-time
  /// cancellation deadline: each retry-loop iteration is a cancellation
  /// point, so an expired statement stops retrying (and backing off)
  /// immediately instead of riding out the whole retry budget.
  Result<RemoteResult> Execute(const SelectStmt& stmt, ExecStats* stats,
                               obs::QueryTrace* trace = nullptr,
                               Deadline deadline = Deadline::None());

  /// Replaces the attempt function (e.g. when a fault injector is added to
  /// an already-wired link).
  void set_attempt(RemoteAttemptFn attempt) { attempt_ = std::move(attempt); }

  /// True while the breaker holds calls off the link at the current time.
  bool breaker_open() const {
    return breaker_open_until_ >= 0 && clock_->Now() < breaker_open_until_;
  }
  /// Times the breaker opened since construction.
  int64_t breaker_opens() const { return breaker_opens_; }
  int consecutive_failures() const { return consecutive_failures_; }

  /// Closes the breaker and forgets the failure streak (manual reset).
  void ResetBreaker() {
    breaker_open_until_ = -1;
    consecutive_failures_ = 0;
  }

  const RemotePolicy& policy() const { return policy_; }

 private:
  /// Simulates waiting for `delta` ms.
  void Wait(SimTimeMs delta) {
    if (wait_ && delta > 0) wait_(delta);
  }

  RemotePolicy policy_;
  RemoteAttemptFn attempt_;
  const VirtualClock* clock_;
  WaitFn wait_;
  Rng rng_;
  int consecutive_failures_ = 0;
  /// Virtual time until which the breaker is open; -1 = closed.
  SimTimeMs breaker_open_until_ = -1;
  int64_t breaker_opens_ = 0;
};

}  // namespace rcc

#endif  // RCC_EXEC_REMOTE_POLICY_H_
