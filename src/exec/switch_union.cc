#include "exec/switch_union.h"

namespace rcc {

bool SwitchUnionIterator::EvaluateGuard(const PhysicalOp& op,
                                        ExecContext* ctx) {
  // Heartbeat_R.TimeStamp > now - B  <=>  the region reflects a snapshot no
  // older than the currency bound.
  SimTimeMs hb = ctx->local_heartbeat(op.guard_region);
  SimTimeMs now = ctx->clock->Now();
  if (ctx->stats != nullptr) ++ctx->stats->guard_evaluations;
  bool fresh_enough = hb > now - op.guard_bound_ms;
  // Timeline consistency: never fall behind what the session already saw.
  if (ctx->timeline_floor_ms >= 0 && hb < ctx->timeline_floor_ms) {
    fresh_enough = false;
  }
  return fresh_enough;
}

Status SwitchUnionIterator::Open(const EvalScope* outer) {
  if (cached_decision_ < 0) {
    bool local_ok = EvaluateGuard(op_, ctx_);
    if (!local_ok && !op_.remote_fallback_allowed) {
      // Replica-only mode: report instead of silently serving stale data or
      // forwarding to the back-end (paper §1, "return the data but with an
      // error code" / "abort the request").
      return Status::Unavailable(
          "local replica of region " + std::to_string(op_.guard_region) +
          " is staler than the currency bound and remote fallback is "
          "disabled");
    }
    cached_decision_ = local_ok ? 1 : 0;
    if (ctx_->stats != nullptr) {
      if (local_ok) {
        ++ctx_->stats->switch_local;
        SimTimeMs hb = ctx_->local_heartbeat(op_.guard_region);
        if (hb > ctx_->stats->max_seen_heartbeat) {
          ctx_->stats->max_seen_heartbeat = hb;
        }
      } else {
        ++ctx_->stats->switch_remote;
      }
    }
  }
  chosen_ = cached_decision_ == 1 ? local_.get() : remote_.get();
  return chosen_->Open(outer);
}

Result<bool> SwitchUnionIterator::Next(Row* out) {
  return chosen_->Next(out);
}

Status SwitchUnionIterator::Close() {
  if (chosen_ == nullptr) return Status::OK();
  Status st = chosen_->Close();
  chosen_ = nullptr;
  return st;
}

}  // namespace rcc
