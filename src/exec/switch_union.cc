#include "exec/switch_union.h"

#include <chrono>
#include <optional>
#include <string>

#include "common/strings.h"

namespace rcc {

namespace {

#ifdef RCC_SIM_MUTATE
/// Mutation smoke test (build with -DRCC_SIM_MUTATE=ON): the guard accepts
/// heartbeats one refresh interval older than the bound allows. The
/// conformance oracle must flag runs of this build; if it doesn't, the
/// oracle is vacuous.
constexpr SimTimeMs kSimMutateSkewMs = 15000;
#endif

/// Reports a serving decision to the audit sink, attributing the operands
/// delivered by `branch` to `region` (kBackendRegion = remote fetch).
void RecordServe(ExecContext* ctx, const PhysicalOp& branch, RegionId region,
                 bool local, bool degraded,
                 std::optional<SimTimeMs> heartbeat, bool shed = false) {
  if (ctx->history == nullptr) return;
  ServeObservation obs;
  obs.query_id = ctx->history_query_id;
  obs.at = ctx->clock != nullptr ? ctx->clock->Now() : 0;
  obs.local = local;
  obs.degraded = degraded;
  obs.shed = shed;
  obs.region = region;
  obs.heartbeat_known = heartbeat.has_value();
  obs.heartbeat = heartbeat.value_or(-1);
  if (local && ctx->region_epoch) obs.epoch = ctx->region_epoch(region);
  for (InputOperandId oid : branch.delivered.AllOperands()) {
    obs.operands.push_back(oid);
  }
  ctx->history->OnServe(obs);
}

}  // namespace

bool SwitchUnionIterator::EvaluateGuard(const PhysicalOp& op,
                                        ExecContext* ctx) {
  // Heartbeat_R.TimeStamp > now - B  <=>  the region reflects a snapshot no
  // older than the currency bound. The heartbeat is one atomic acquire-load
  // (see CurrencyRegion::local_heartbeat), so concurrent delivery installs
  // can never be observed torn — the probe is race-free by construction.
  std::chrono::steady_clock::time_point t0;
  if (ctx->guard_probe_hist != nullptr) t0 = std::chrono::steady_clock::now();
  // Advance the query's pinned snapshot of the region to the current
  // published version so the probe judges the replica as it stands *now* —
  // a no-op once the query has served local rows from the region (served
  // data stays on its snapshot; see ExecContext::refresh_region).
  if (ctx->refresh_region) ctx->refresh_region(op.guard_region);
  std::optional<SimTimeMs> hb_opt = ctx->local_heartbeat(op.guard_region);
  // Health is advisory (stats, trace, EXPLAIN ANALYZE): the refusal itself
  // rides on the certified heartbeat turning nullopt, so engines that don't
  // track health still get correct guard verdicts.
  std::optional<RegionHealth> health;
  if (ctx->region_health) health = ctx->region_health(op.guard_region);
  if (ctx->stats != nullptr) ++ctx->stats->guard_evaluations;
  SimTimeMs now = ctx->clock->Now();
  bool fresh_enough;
  if (!hb_opt.has_value()) {
    // Unknown region (undefined, or defined mid-run and never synced): the
    // guard cannot certify any freshness, so the local branch never
    // qualifies — explicitly, not via a fake "stale since time 0" value.
    if (ctx->stats != nullptr) {
      ++ctx->stats->guard_unknown_region;
      if (health.has_value() && !HeartbeatValid(*health)) {
        ++ctx->stats->guard_quarantined_region;
      }
    }
    fresh_enough = false;
  } else {
    SimTimeMs hb = *hb_opt;
#ifdef RCC_SIM_MUTATE
    fresh_enough = hb + kSimMutateSkewMs > now - op.guard_bound_ms;
#else
    fresh_enough = hb > now - op.guard_bound_ms;
#endif
    // Timeline consistency: never fall behind what the session already saw.
    if (ctx->timeline_floor_ms >= 0 && hb < ctx->timeline_floor_ms) {
      fresh_enough = false;
    }
  }
  if (ctx->guard_probe_hist != nullptr) {
    ctx->guard_probe_hist->Observe(
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }
  if (ctx->trace != nullptr) {
    std::string hb_str =
        hb_opt.has_value() ? FormatSimTime(*hb_opt) : std::string("unknown");
    std::string detail =
        StrPrintf("region=%d heartbeat=%s bound=%s floor=%s verdict=%s",
                  op.guard_region, hb_str.c_str(),
                  FormatSimTime(op.guard_bound_ms).c_str(),
                  FormatSimTime(ctx->timeline_floor_ms).c_str(),
                  fresh_enough ? "local" : "stale");
    if (health.has_value()) {
      detail += StrPrintf(" health=%s",
                          std::string(RegionHealthName(*health)).c_str());
    }
    ctx->trace->Record(obs::TraceEventKind::kGuardProbe, now,
                       std::move(detail), op.guard_region);
  }
  if (ctx->history != nullptr) {
    GuardObservation gobs;
    gobs.query_id = ctx->history_query_id;
    gobs.region = op.guard_region;
    gobs.at = now;
    gobs.heartbeat_known = hb_opt.has_value();
    gobs.heartbeat = hb_opt.value_or(-1);
    gobs.bound_ms = op.guard_bound_ms;
    gobs.floor_ms = ctx->timeline_floor_ms;
    gobs.verdict_local = fresh_enough;
    if (ctx->region_epoch) gobs.epoch = ctx->region_epoch(op.guard_region);
    ctx->history->OnGuardProbe(gobs);
  }
  return fresh_enough;
}

Status SwitchUnionIterator::Open(const EvalScope* outer) {
  if (cached_decision_ < 0) {
    bool local_ok = EvaluateGuard(op_, ctx_);
    if (!local_ok && !op_.remote_fallback_allowed) {
      // Replica-only mode: report instead of silently serving stale data or
      // forwarding to the back-end (paper §1, "return the data but with an
      // error code" / "abort the request").
      return Status::Unavailable(
          "local replica of region " + std::to_string(op_.guard_region) +
          " is staler than the currency bound and remote fallback is "
          "disabled");
    }
    cached_decision_ = local_ok ? 1 : 0;
    if (ctx_->stats != nullptr) {
      if (local_ok) {
        // The local branch is the final serving branch: a local open failure
        // is a hard error, never a silent re-route.
        ++ctx_->stats->switch_local;
        // The guard passed, so the heartbeat is necessarily known.
        SimTimeMs hb = ctx_->local_heartbeat(op_.guard_region).value_or(0);
        if (hb > ctx_->stats->max_seen_heartbeat) {
          ctx_->stats->max_seen_heartbeat = hb;
        }
      } else {
        // Only an *attempt* so far — the remote branch may still fail and
        // degrade back to local; switch_remote is counted when the remote
        // branch actually opens and serves.
        ++ctx_->stats->switch_remote_attempted;
      }
    }
    if (ctx_->trace != nullptr) {
      ctx_->trace->Record(obs::TraceEventKind::kSwitchDecision,
                          ctx_->clock->Now(), local_ok ? "local" : "remote",
                          op_.guard_region);
    }
    if (local_ok) {
      // Freeze the pinned snapshot: from here on every probe and row of this
      // query reads the region at exactly this published version.
      if (ctx_->note_local_serve) ctx_->note_local_serve(op_.guard_region);
      RecordServe(ctx_, *op_.children[0], op_.guard_region,
                  /*local=*/true, /*degraded=*/false,
                  ctx_->local_heartbeat(op_.guard_region));
    } else {
      // Overload shedding: under admission pressure, prefer the (permitted)
      // degraded-local branch over a remote round-trip. Eligibility runs the
      // exact DegradeToLocal ladder; when it says no, the statement executes
      // remote exactly as without the hint — shedding can only re-order
      // permitted branches, never manufacture a refusal or stretch a bound.
      SimTimeMs hb = -1;
      SimTimeMs staleness = 0;
      bool within_bound = false;
      if (ShedEligible(&hb, &staleness, &within_bound)) {
        return ShedServeLocal(outer, hb, staleness, within_bound);
      }
    }
  }
  chosen_ = cached_decision_ == 1 ? local_.get() : remote_.get();
  Status st = chosen_->Open(outer);
  if (!st.ok() && chosen_ == remote_.get()) {
    return DegradeToLocal(outer, std::move(st));
  }
  if (st.ok() && chosen_ == remote_.get() && !served_remote_) {
    served_remote_ = true;
    // Now the remote branch truly serves this execution; count it once, not
    // per re-open (inner side of a nested-loop join re-opens the iterator).
    if (ctx_->stats != nullptr) ++ctx_->stats->switch_remote;
  }
  return st;
}

bool SwitchUnionIterator::ShedEligible(SimTimeMs* hb_out,
                                       SimTimeMs* staleness_out,
                                       bool* within_bound_out) {
  if (!ctx_->shed_hint || local_ == nullptr) return false;
  // The ladder's permission checks, evaluated non-fatally. The guard probe
  // that routed us remote ran a moment ago on the same pinned snapshot, so
  // no extra refresh is needed — the re-read below observes the identical
  // published version the (recorded) probe judged.
  if (ctx_->degrade == DegradeMode::kNone) return false;
  if (served_remote_) return false;
  std::optional<SimTimeMs> hb_opt = ctx_->local_heartbeat(op_.guard_region);
  // Unknown or withdrawn heartbeat (never synced, quarantined, resyncing):
  // the replica's staleness is uncertifiable, so there is nothing safe to
  // shed to — same rule that makes DegradeToLocal refuse here.
  if (!hb_opt.has_value()) return false;
  if (ctx_->region_health &&
      !HeartbeatValid(ctx_->region_health(op_.guard_region))) {
    return false;
  }
  SimTimeMs hb = *hb_opt;
  SimTimeMs now = ctx_->clock->Now();
  // The timeline floor is never relaxed — not by SET DEGRADE ALWAYS, and
  // not by overload either.
  if (ctx_->timeline_floor_ms >= 0 && hb < ctx_->timeline_floor_ms) {
    return false;
  }
  bool within_bound = hb > now - op_.guard_bound_ms;
  // Past the bound, only kAlways may serve stale-flagged data (paper §1);
  // kBounded sheds solely within the bound, which the guard verdict already
  // ruled out on this snapshot.
  if (!within_bound && ctx_->degrade != DegradeMode::kAlways) return false;
  *hb_out = hb;
  *staleness_out = now - hb;
  *within_bound_out = within_bound;
  return true;
}

Status SwitchUnionIterator::ShedServeLocal(const EvalScope* outer,
                                           SimTimeMs hb, SimTimeMs staleness,
                                           bool within_bound) {
  // Mirror of the DegradeToLocal serve block, with the shed flag raised:
  // later re-opens (inner side of nested-loop joins) stick to the local
  // branch so all probes read one snapshot.
  cached_decision_ = 1;
  if (ctx_->stats != nullptr) {
    ++ctx_->stats->degraded_serves;
    ++ctx_->stats->shed_serves;
    // The guard directed the statement remote (already counted in
    // switch_remote_attempted), but the local branch serves it.
    ++ctx_->stats->switch_local;
    if (staleness > ctx_->stats->degraded_staleness_ms) {
      ctx_->stats->degraded_staleness_ms = staleness;
    }
    if (hb > ctx_->stats->max_seen_heartbeat) {
      ctx_->stats->max_seen_heartbeat = hb;
    }
  }
  if (ctx_->trace != nullptr) {
    ctx_->trace->Record(
        obs::TraceEventKind::kShedServe, ctx_->clock->Now(),
        StrPrintf("region=%d staleness=%s within_bound=%s",
                  op_.guard_region, FormatSimTime(staleness).c_str(),
                  within_bound ? "yes" : "no"),
        op_.guard_region);
  }
  if (ctx_->note_local_serve) ctx_->note_local_serve(op_.guard_region);
  RecordServe(ctx_, *op_.children[0], op_.guard_region,
              /*local=*/true, /*degraded=*/true, hb, /*shed=*/true);
  chosen_ = local_.get();
  return chosen_->Open(outer);
}

Status SwitchUnionIterator::DegradeToLocal(const EvalScope* outer,
                                           Status remote_error) {
  if (ctx_->degrade == DegradeMode::kNone || local_ == nullptr) {
    return remote_error;
  }
  if (served_remote_) {
    // An earlier probe of this execution already produced remote rows;
    // switching branches mid-join would mix snapshots within one operand.
    return remote_error;
  }
  // Re-probe the guard: the retry policy may have waited through a
  // replication delivery, so the local view can be fresher than at the first
  // probe (possibly even within the bound again). Re-pin to the current
  // published snapshot first so the re-probe and the rows it certifies are
  // one version.
  if (ctx_->refresh_region) ctx_->refresh_region(op_.guard_region);
  std::optional<SimTimeMs> hb_opt = ctx_->local_heartbeat(op_.guard_region);
  if (ctx_->stats != nullptr) ++ctx_->stats->guard_evaluations;
  if (!hb_opt.has_value()) {
    if (ctx_->region_health) {
      RegionHealth health = ctx_->region_health(op_.guard_region);
      if (!HeartbeatValid(health)) {
        // Quarantined/resyncing: the replication pipeline withdrew the
        // heartbeat, so even SET DEGRADE ALWAYS refuses — the replica may be
        // mid-rebuild and its staleness bound is unknowable.
        if (ctx_->stats != nullptr) {
          ++ctx_->stats->guard_unknown_region;
          ++ctx_->stats->guard_quarantined_region;
        }
        return Status::Unavailable(
            "cannot degrade: region " + std::to_string(op_.guard_region) +
            " is " + std::string(RegionHealthName(health)) +
            " (replication pipeline invalidated its heartbeat); remote "
            "branch failed with: " +
            remote_error.ToString());
      }
    }
    // No local heartbeat was ever installed: the replica's staleness is
    // unknown, so there is nothing safe to degrade to in any mode.
    if (ctx_->stats != nullptr) ++ctx_->stats->guard_unknown_region;
    return Status::Unavailable(
        "cannot degrade: region " + std::to_string(op_.guard_region) +
        " has no local heartbeat (never synced), staleness unknown; remote "
        "branch failed with: " +
        remote_error.ToString());
  }
  SimTimeMs hb = *hb_opt;
  SimTimeMs now = ctx_->clock->Now();
  SimTimeMs staleness = now - hb;
  bool within_bound = hb > now - op_.guard_bound_ms;
  // The timeline-consistency floor is never relaxed, not even in kAlways
  // mode: serving data older than what the session already saw would break
  // the §2.3 contract outright rather than merely stretch a bound.
  if (ctx_->timeline_floor_ms >= 0 && hb < ctx_->timeline_floor_ms) {
    return Status::ConstraintViolation(
        "cannot degrade: local replica of region " +
        std::to_string(op_.guard_region) + " (heartbeat " +
        FormatSimTime(hb) + ") is older than the session timeline floor " +
        FormatSimTime(ctx_->timeline_floor_ms) +
        "; remote branch failed with: " + remote_error.ToString());
  }
  if (!within_bound && ctx_->degrade == DegradeMode::kBounded) {
    return Status::Unavailable(
        "cannot degrade within bound: local replica of region " +
        std::to_string(op_.guard_region) + " is " + FormatSimTime(staleness) +
        " stale, bound is " + FormatSimTime(op_.guard_bound_ms) +
        "; remote branch failed with: " + remote_error.ToString());
  }
  // Serve the local view, flagged stale (the paper's "return the data but
  // with an error code"). Later re-opens (inner side of nested-loop joins)
  // must stick to the local branch so all probes read one snapshot.
  cached_decision_ = 1;
  if (ctx_->stats != nullptr) {
    ++ctx_->stats->degraded_serves;
    // The query was directed at the remote branch (switch_remote_attempted)
    // but is finally served by the local one; record the serving branch
    // truthfully instead of leaving it counted as a remote switch.
    ++ctx_->stats->switch_local;
    if (staleness > ctx_->stats->degraded_staleness_ms) {
      ctx_->stats->degraded_staleness_ms = staleness;
    }
    if (hb > ctx_->stats->max_seen_heartbeat) {
      ctx_->stats->max_seen_heartbeat = hb;
    }
  }
  if (ctx_->trace != nullptr) {
    ctx_->trace->Record(
        obs::TraceEventKind::kDegradedServe, now,
        StrPrintf("region=%d staleness=%s within_bound=%s remote_error=%s",
                  op_.guard_region, FormatSimTime(staleness).c_str(),
                  within_bound ? "yes" : "no",
                  remote_error.ToString().c_str()),
        op_.guard_region);
  }
  if (ctx_->note_local_serve) ctx_->note_local_serve(op_.guard_region);
  RecordServe(ctx_, *op_.children[0], op_.guard_region,
              /*local=*/true, /*degraded=*/true, hb);
  chosen_ = local_.get();
  return chosen_->Open(outer);
}

Status SwitchUnionIterator::CheckCertificationHeld() {
  if (chosen_ != local_.get() || !ctx_->local_heartbeat) return Status::OK();
  if (ctx_->local_heartbeat(op_.guard_region).has_value()) return Status::OK();
  if (ctx_->stats != nullptr) {
    ++ctx_->stats->guard_unknown_region;
    if (ctx_->region_health &&
        !HeartbeatValid(ctx_->region_health(op_.guard_region))) {
      ++ctx_->stats->guard_quarantined_region;
    }
  }
  return Status::Unavailable(
      "region " + std::to_string(op_.guard_region) +
      " withdrew its heartbeat certification while the local branch was "
      "being drained (quarantine/resync)");
}

Result<bool> SwitchUnionIterator::Next(Row* out) {
  RCC_RETURN_NOT_OK(CheckCertificationHeld());
  return chosen_->Next(out);
}

Result<bool> SwitchUnionIterator::NextBatch(RowBatch* out, size_t max_rows) {
  // One probe per batch instead of per row — the whole point of the batch
  // protocol for guarded plans.
  RCC_RETURN_NOT_OK(CheckCertificationHeld());
  return chosen_->NextBatch(out, max_rows);
}

Status SwitchUnionIterator::Close() {
  if (chosen_ == nullptr) return Status::OK();
  Status st = chosen_->Close();
  chosen_ = nullptr;
  return st;
}

}  // namespace rcc
