#include "exec/exec_context.h"

#include <algorithm>

namespace rcc {

std::string_view DegradeModeName(DegradeMode mode) {
  switch (mode) {
    case DegradeMode::kNone:
      return "none";
    case DegradeMode::kBounded:
      return "bounded";
    case DegradeMode::kAlways:
      return "always";
  }
  return "unknown";
}

void ExecStats::Accumulate(const ExecStats& other) {
  rows_returned += other.rows_returned;
  remote_queries += other.remote_queries;
  guard_evaluations += other.guard_evaluations;
  switch_local += other.switch_local;
  switch_remote += other.switch_remote;
  switch_remote_attempted += other.switch_remote_attempted;
  remote_retries += other.remote_retries;
  remote_timeouts += other.remote_timeouts;
  breaker_opens += other.breaker_opens;
  degraded_serves += other.degraded_serves;
  shed_serves += other.shed_serves;
  deadline_timeouts += other.deadline_timeouts;
  guard_unknown_region += other.guard_unknown_region;
  guard_quarantined_region += other.guard_quarantined_region;
  degraded_staleness_ms = std::max(degraded_staleness_ms,
                                   other.degraded_staleness_ms);
  // Phase timings are additive real-time costs, exactly like the counters:
  // batch-accumulated stats must report the total executor time spent, not
  // silently zero it (ExecuteConcurrent callers sum per-query objects).
  setup_ms += other.setup_ms;
  run_ms += other.run_ms;
  shutdown_ms += other.shutdown_ms;
  // The timeline-consistency floor input (paper §2.3): the merged object must
  // reflect the newest snapshot either side has seen, or sessions that
  // accumulate per-query stats would lose their floor.
  max_seen_heartbeat = std::max(max_seen_heartbeat, other.max_seen_heartbeat);
}

Result<bool> RowIterator::NextBatch(RowBatch* out, size_t max_rows) {
  out->Clear();
  Row row;
  while (out->rows.size() < max_rows) {
    RCC_ASSIGN_OR_RETURN(bool has, Next(&row));
    if (!has) break;
    out->rows.push_back(std::move(row));
  }
  return !out->rows.empty();
}

}  // namespace rcc
