#include "exec/exec_context.h"

#include <algorithm>

namespace rcc {

std::string_view DegradeModeName(DegradeMode mode) {
  switch (mode) {
    case DegradeMode::kNone:
      return "none";
    case DegradeMode::kBounded:
      return "bounded";
    case DegradeMode::kAlways:
      return "always";
  }
  return "unknown";
}

void ExecStats::Accumulate(const ExecStats& other) {
  rows_returned += other.rows_returned;
  remote_queries += other.remote_queries;
  guard_evaluations += other.guard_evaluations;
  switch_local += other.switch_local;
  switch_remote += other.switch_remote;
  remote_retries += other.remote_retries;
  remote_timeouts += other.remote_timeouts;
  breaker_opens += other.breaker_opens;
  degraded_serves += other.degraded_serves;
  guard_unknown_region += other.guard_unknown_region;
  degraded_staleness_ms = std::max(degraded_staleness_ms,
                                   other.degraded_staleness_ms);
  // The timeline-consistency floor input (paper §2.3): the merged object must
  // reflect the newest snapshot either side has seen, or sessions that
  // accumulate per-query stats would lose their floor.
  max_seen_heartbeat = std::max(max_seen_heartbeat, other.max_seen_heartbeat);
}

}  // namespace rcc
