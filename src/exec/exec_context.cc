#include "exec/exec_context.h"

namespace rcc {

void ExecStats::Accumulate(const ExecStats& other) {
  rows_returned += other.rows_returned;
  remote_queries += other.remote_queries;
  guard_evaluations += other.guard_evaluations;
  switch_local += other.switch_local;
  switch_remote += other.switch_remote;
}

}  // namespace rcc
