#ifndef RCC_EXEC_REMOTE_H_
#define RCC_EXEC_REMOTE_H_

#include <memory>

#include "exec/exec_context.h"

namespace rcc {

/// Substitutes outer-scope column references in `stmt` with literal values
/// from `outer`, producing a self-contained statement that can be shipped to
/// the back-end (correlated remote queries / parameterized remote branches
/// of index nested-loop joins). References to the statement's own tables are
/// left untouched.
Result<std::unique_ptr<SelectStmt>> ParameterizeStmt(const SelectStmt& stmt,
                                                     const EvalScope& outer);

/// True when any expression position of `stmt` (recursively) contains a
/// kParam node — i.e. the statement came out of a plan-cache parameterized
/// plan and must have values bound before it can ship to the back-end.
bool StmtHasParams(const SelectStmt& stmt);

/// Replaces every kParam node in `stmt` with the literal value
/// `params[param_index]`. The back-end never sees parameter markers.
Status BindStmtParams(SelectStmt* stmt, const std::vector<Value>& params);

/// Executes a statement at the back-end server and streams the result. The
/// fetch happens at Open; re-opening (per outer row) re-executes, so a
/// correlated remote branch pays one remote round trip per probe — which the
/// cost model charges for.
class RemoteQueryIterator : public RowIterator {
 public:
  RemoteQueryIterator(const PhysicalOp& op, ExecContext* ctx)
      : op_(op), ctx_(ctx) {}

  Status Open(const EvalScope* outer) override;
  Result<bool> Next(Row* out) override;
  Result<bool> NextBatch(RowBatch* out, size_t max_rows) override;
  Status Close() override;
  const RowLayout& layout() const override { return op_.layout; }

 private:
  const PhysicalOp& op_;
  ExecContext* ctx_;
  std::vector<Row> rows_;
  size_t pos_ = 0;
  /// Audit: the serve is reported once per iterator; correlated re-opens
  /// re-fetch but are attributed to the first fetch (DESIGN.md §11).
  bool recorded_ = false;
};

}  // namespace rcc

#endif  // RCC_EXEC_REMOTE_H_
