#include "exec/executor.h"

#include <chrono>

#include "exec/iterators.h"

namespace rcc {

namespace {

double MsSince(std::chrono::steady_clock::time_point start) {
  auto d = std::chrono::steady_clock::now() - start;
  return std::chrono::duration<double, std::milli>(d).count();
}

}  // namespace

Result<ExecutedQuery> ExecutePlan(const QueryPlan& plan, ExecContext* ctx) {
  ctx->subplans = &plan.subplans;

  // Setup phase: instantiate the executable tree and bind resources.
  auto t0 = std::chrono::steady_clock::now();
  RCC_ASSIGN_OR_RETURN(auto iter, BuildIterator(*plan.root, ctx,
                                                &plan.aliases));
  RCC_RETURN_NOT_OK(iter->Open(nullptr));
  double setup_ms = MsSince(t0);

  // Run phase: drain the tree batch-at-a-time (vectorized operators produce
  // natively; row-at-a-time operators go through the NextBatch shim). Every
  // batch boundary is a cancellation point: a statement whose real-time
  // deadline has passed stops here, frees its worker, and lets the context
  // (and with it the snapshot pin) unwind — it never runs to completion
  // just because it already started.
  constexpr size_t kDrainBatchRows = 256;
  auto t1 = std::chrono::steady_clock::now();
  ExecutedQuery out;
  out.layout = iter->layout();
  RowBatch batch;
  while (true) {
    if (ctx->deadline.expired()) {
      if (ctx->stats != nullptr) {
        ctx->stats->deadline_timeouts += 1;
        ctx->stats->run_ms += MsSince(t1);
      }
      (void)iter->Close();
      return Status::DeadlineExceeded(
          "statement deadline expired at executor batch boundary");
    }
    RCC_ASSIGN_OR_RETURN(bool more, iter->NextBatch(&batch, kDrainBatchRows));
    if (!more) break;
    for (Row& row : batch.rows) out.rows.push_back(std::move(row));
  }
  double run_ms = MsSince(t1);

  // Shutdown phase.
  auto t2 = std::chrono::steady_clock::now();
  RCC_RETURN_NOT_OK(iter->Close());
  iter.reset();
  double shutdown_ms = MsSince(t2);

  if (ctx->stats != nullptr) {
    ctx->stats->rows_returned += static_cast<int64_t>(out.rows.size());
    ctx->stats->setup_ms += setup_ms;
    ctx->stats->run_ms += run_ms;
    ctx->stats->shutdown_ms += shutdown_ms;
  }
  return out;
}

}  // namespace rcc
