#include "sim/runner.h"

#include <iterator>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "core/session.h"
#include "fleet/fleet.h"
#include "workload/bookstore.h"
#include "workload/tpcd.h"

namespace rcc {
namespace sim {

namespace {

/// Bookstore statement pool: mixed tight/loose bounds, same-region and
/// cross-region consistency classes, multi-tuple constraints, and an
/// unguarded query. Regions refresh every 8s with 3s delay, so heartbeat lag
/// swings between 3s and 11s — tight bounds flip between local and remote
/// across a run, which is exactly the behaviour the oracle must certify.
const char* kBookstoreQueries[] = {
    "SELECT isbn, price FROM Books B WHERE B.isbn < 40 "
    "CURRENCY BOUND 5 SECONDS ON (B)",
    "SELECT isbn, price FROM Books B WHERE B.isbn < 60 "
    "CURRENCY BOUND 20 SECONDS ON (B)",
    "SELECT isbn, stock FROM Books B WHERE B.isbn < 25 "
    "CURRENCY BOUND 2 SECONDS ON (B)",
    "SELECT isbn, price FROM Books B WHERE B.isbn < 80 "
    "CURRENCY BOUND 1 HOUR ON (B)",
    "SELECT B.isbn, S.amount FROM Books B, Sales S "
    "WHERE B.isbn = S.isbn AND B.isbn < 15 "
    "CURRENCY BOUND 15 SECONDS ON (B, S)",
    "SELECT B.isbn, R.rating FROM Books B, Reviews R "
    "WHERE B.isbn = R.isbn AND B.isbn < 15 "
    "CURRENCY BOUND 12 SECONDS ON (B, R)",
    "SELECT B.isbn, S.amount FROM Books B, Sales S "
    "WHERE B.isbn = S.isbn AND B.isbn < 12 "
    "CURRENCY BOUND 30 SECONDS ON (B), 6 SECONDS ON (S)",
    "SELECT isbn FROM Books B WHERE B.isbn < 30",
};

/// TPCD pool over the paper's cache (CR1 15s/5s, CR2 10s/5s). The (C, O)
/// class is cross-region, so its plan must go all-remote to be consistent.
const char* kTpcdQueries[] = {
    "SELECT c_custkey FROM Customer C WHERE c_acctbal > 1000 "
    "CURRENCY BOUND 10 SECONDS ON (C)",
    "SELECT c_custkey FROM Customer C WHERE c_acctbal > 9000 "
    "CURRENCY BOUND 60 SECONDS ON (C)",
    "SELECT o_orderkey, o_totalprice FROM Orders O WHERE O.o_custkey < 40 "
    "CURRENCY BOUND 8 SECONDS ON (O)",
    "SELECT C.c_custkey, O.o_totalprice FROM Customer C, Orders O "
    "WHERE C.c_custkey = O.o_custkey AND C.c_custkey < 20 "
    "CURRENCY BOUND 25 SECONDS ON (C, O)",
    "SELECT C.c_custkey, O.o_totalprice FROM Customer C, Orders O "
    "WHERE C.c_custkey = O.o_custkey AND C.c_custkey < 15 "
    "CURRENCY BOUND 40 SECONDS ON (C), 12 SECONDS ON (O)",
    "SELECT c_custkey FROM Customer C WHERE C.c_custkey < 10",
};

Status ArmFaults(RccSystem* sys, const SimRunConfig& config) {
  bool outage = config.faults == FaultMix::kOutage ||
                config.faults == FaultMix::kCombined;
  bool replication = config.faults == FaultMix::kReplication ||
                     config.faults == FaultMix::kCombined;
  if (outage) {
    // Query channel down 30% of the time; the resilient policy rides the
    // short outages out and the degrade modes absorb the rest.
    FaultInjectorConfig fi;
    fi.seed = config.seed ^ 0xFA17ABCDu;
    fi.outage_period_ms = 20000;
    fi.outage_down_ms = 6000;
    fi.base_latency_ms = 2;
    fi.transient_error_probability = 0.05;
    sys->cache()->SetFaultInjector(fi);
    RemotePolicy policy;
    policy.timeout_ms = 400;
    policy.max_retries = 2;
    policy.backoff_base_ms = 200;
    policy.backoff_jitter_ms = 60;
    policy.breaker_threshold = 4;
    policy.breaker_cooldown_ms = 4000;
    policy.seed = config.seed ^ 0x5EED51u;
    sys->cache()->SetRemotePolicy(policy);
  }
  if (replication) {
    ReplicationFaultConfig rf;
    rf.seed = config.seed ^ 0x7E911u;
    rf.drop_probability = 0.15;
    rf.delay_probability = 0.2;
    rf.delay_ms = 9000;
    rf.duplicate_probability = 0.1;
    rf.stall_probability = 0.08;
    rf.stall_wakeups = 2;
    rf.poison_probability = 0.02;
    sys->cache()->SetReplicationFaults(rf);
  }
  return Status::OK();
}

/// Heterogeneous node specs, cycled for fleets larger than three: a
/// complete node at the default cadence, a fast partial node (no Reviews —
/// review-constrained queries must route around it), and a slow complete
/// node whose delivered currency misses tight bounds most of the time.
fleet::FleetConfig BuildFleetConfig(const SimRunConfig& config) {
  fleet::FleetConfig fc;
  fc.seed = config.seed;
  for (int i = 0; i < config.fleet_nodes; ++i) {
    fleet::FleetNodeConfig n;
    switch (i % 3) {
      case 0:
        n.update_interval = 8000;
        n.update_delay = 3000;
        break;
      case 1:
        n.update_interval = 4000;
        n.update_delay = 1500;
        n.reviews = false;
        break;
      default:
        n.update_interval = 12000;
        n.update_delay = 5000;
        break;
    }
    fc.nodes.push_back(n);
  }
  return fc;
}

/// The single-node fault schedules, armed per node with node-distinct seeds
/// so outages and delivery faults hit the fleet asynchronously. Poison is
/// boosted: node quarantines (and the router routing around them) are the
/// point of the fleet run.
Status ArmFleetFaults(fleet::FleetSystem* fleet, const SimRunConfig& config) {
  bool outage = config.faults == FaultMix::kOutage ||
                config.faults == FaultMix::kCombined;
  bool replication = config.faults == FaultMix::kReplication ||
                     config.faults == FaultMix::kCombined;
  for (int node = 1; node <= fleet->node_count(); ++node) {
    if (outage) {
      FaultInjectorConfig fi;
      fi.seed =
          config.seed ^ 0xFA17ABCDu ^ (static_cast<uint64_t>(node) << 17);
      fi.outage_period_ms = 20000;
      fi.outage_down_ms = 6000;
      fi.base_latency_ms = 2;
      fi.transient_error_probability = 0.05;
      fleet->node(node)->SetFaultInjector(fi);
      RemotePolicy policy;
      policy.timeout_ms = 400;
      policy.max_retries = 2;
      policy.backoff_base_ms = 200;
      policy.backoff_jitter_ms = 60;
      policy.breaker_threshold = 4;
      policy.breaker_cooldown_ms = 4000;
      policy.seed = config.seed ^ 0x5EED51u ^ static_cast<uint64_t>(node);
      fleet->node(node)->SetRemotePolicy(policy);
    }
    if (replication) {
      ReplicationFaultConfig rf;
      rf.seed = config.seed ^ 0x7E911u ^ (static_cast<uint64_t>(node) << 9);
      rf.drop_probability = 0.15;
      rf.delay_probability = 0.2;
      rf.delay_ms = 9000;
      rf.duplicate_probability = 0.1;
      rf.stall_probability = 0.08;
      rf.stall_wakeups = 2;
      rf.poison_probability = 0.05;
      fleet->SetNodeReplicationFaults(node, rf);
    }
  }
  return Status::OK();
}

/// The fleet counterpart of RunSimulation: same seeded statement schedule
/// and step mix, but every plain SELECT goes through the FleetRouter, nodes
/// fault independently, and the recorded history carries route events for
/// the oracle's cross-node rules. Serial batches become three sequential
/// routed queries — the router owns dispatch, so the batch executor's
/// concurrent-batch contract does not apply here.
Result<SimRunOutcome> RunFleetSimulation(const SimRunConfig& config) {
  // The recorder must outlive the system (raw sink pointers).
  HistoryRecorder recorder(config.seed);
  fleet::FleetSystem fleet(BuildFleetConfig(config));
  // Before regions exist, so initial populations are on record.
  fleet.SetHistorySink(&recorder);

  BookstoreConfig w;
  w.books = 120;
  w.reviews_per_book = 2;
  w.sales_per_book = 3;
  w.seed = config.seed * 977 + 11;
  RCC_RETURN_NOT_OK(fleet.LoadBookstore(w));
  RCC_RETURN_NOT_OK(fleet.SetupBookstore());
  RCC_RETURN_NOT_OK(ArmFleetFaults(&fleet, config));

  std::unique_ptr<Session> main_session = fleet.CreateSession();
  std::unique_ptr<Session> time_session = fleet.CreateSession();

  // Steady state: a few full refresh cycles on the slowest node.
  fleet.AdvanceTo(30000);

  Rng rng(config.seed * 0x9E3779B9u + 1);
  SimRunOutcome out;
  int64_t next_sale_id = 1000000;
  const int64_t pool_size = static_cast<int64_t>(std::size(kBookstoreQueries));
  auto pick = [&]() { return kBookstoreQueries[rng.Uniform(0, pool_size - 1)]; };

  {
    static const char* kInitModes[] = {"SET DEGRADE = NONE",
                                       "SET DEGRADE = BOUNDED",
                                       "SET DEGRADE = ALWAYS"};
    ++out.statements;
    (void)main_session->Execute(kInitModes[rng.Uniform(0, 2)]);
  }

  for (int step = 0; step < config.steps; ++step) {
    fleet.AdvanceBy(rng.Uniform(300, 2600));
    int64_t roll = rng.Uniform(0, 99);
    if (roll < 45) {
      ++out.statements;
      Session::StatementOptions sopts;
      sopts.shed_hint =
          rng.Uniform(0, 99) < static_cast<int64_t>(config.shed_percent);
      (void)main_session->Execute(pick(), sopts);
    } else if (roll < 60) {
      ++out.statements;
      (void)time_session->Execute(pick());
    } else if (roll < 72) {
      ++out.statements;
      switch (rng.Uniform(0, 2)) {
        case 0:
          (void)main_session->Execute(StrPrintf(
              "UPDATE Books SET price = price + 1 WHERE isbn <= %lld",
              static_cast<long long>(rng.Uniform(2, 12))));
          break;
        case 1:
          (void)main_session->Execute(StrPrintf(
              "UPDATE Reviews SET rating = %lld WHERE isbn = %lld",
              static_cast<long long>(rng.Uniform(1, 5)),
              static_cast<long long>(rng.Uniform(1, 100))));
          break;
        default:
          (void)main_session->Execute(StrPrintf(
              "INSERT INTO Sales (sale_id, isbn, year, amount) "
              "VALUES (%lld, %lld, 2004, 9.99)",
              static_cast<long long>(next_sale_id++),
              static_cast<long long>(rng.Uniform(1, 100))));
          break;
      }
    } else if (roll < 80) {
      ++out.statements;
      static const char* kModes[] = {"SET DEGRADE = NONE",
                                     "SET DEGRADE = BOUNDED",
                                     "SET DEGRADE = ALWAYS"};
      (void)main_session->Execute(kModes[rng.Uniform(0, 2)]);
    } else if (roll < 83) {
      // Statistics churn on every node: the router prices per-node plans, so
      // each node's plan cache must survive re-optimization independently.
      for (int node = 1; node <= fleet.node_count(); ++node) {
        (void)fleet.node(node)->UpdateStatistics(
            "Books", fleet.node(node)->catalog().GetStats("Books"));
      }
    } else if (roll < 92) {
      for (int i = 0; i < 3; ++i) {
        ++out.statements;
        (void)main_session->Execute(pick());
      }
    } else {
      ++out.statements;
      (void)time_session->Execute(time_session->in_timeordered()
                                      ? "END TIMEORDERED"
                                      : "BEGIN TIMEORDERED");
    }
  }
  // Drain: let in-flight deliveries land so histories end at a quiet point.
  fleet.AdvanceBy(15000);

  out.history = recorder.Snapshot();
  out.digest = out.history.Digest();
  out.report = CheckHistory(out.history);
  for (const HistoryEvent& ev : out.history.events) {
    if (ev.kind == HistoryEvent::Kind::kCommit) ++out.commits;
    if (ev.kind == HistoryEvent::Kind::kServe && ev.shed) ++out.shed_serves;
    if (ev.kind == HistoryEvent::Kind::kRoute) ++out.routes;
    if (ev.kind == HistoryEvent::Kind::kAnswer) {
      ++(ev.ok ? out.answered : out.failed);
    }
  }
  fleet.SetHistorySink(nullptr);
  return out;
}

}  // namespace

const char* FaultMixName(FaultMix mix) {
  switch (mix) {
    case FaultMix::kNone:
      return "none";
    case FaultMix::kOutage:
      return "outage";
    case FaultMix::kReplication:
      return "replication";
    case FaultMix::kCombined:
      return "combined";
  }
  return "?";
}

const char* SimWorkloadName(SimWorkload workload) {
  switch (workload) {
    case SimWorkload::kBookstore:
      return "bookstore";
    case SimWorkload::kTpcd:
      return "tpcd";
  }
  return "?";
}

Result<SimRunOutcome> RunSimulation(const SimRunConfig& config) {
  if (config.fleet_nodes >= 2) return RunFleetSimulation(config);
  // The recorder must outlive the system (the system holds a raw pointer to
  // it until destruction).
  HistoryRecorder recorder(config.seed);
  SystemConfig sys_cfg;
  sys_cfg.seed = config.seed;
  RccSystem sys(sys_cfg);
  // Before any region exists, so their initial population is on record.
  sys.SetHistorySink(&recorder);

  bool bookstore = config.workload == SimWorkload::kBookstore;
  if (bookstore) {
    BookstoreConfig w;
    w.books = 120;
    w.reviews_per_book = 2;
    w.sales_per_book = 3;
    w.seed = config.seed * 977 + 11;
    RCC_RETURN_NOT_OK(LoadBookstore(&sys, w));
    RCC_RETURN_NOT_OK(SetupBookstoreCache(&sys, /*refresh_interval_ms=*/8000,
                                          /*delay_ms=*/3000));
  } else {
    TpcdConfig w;
    w.scale = 0.004;  // 600 customers / 6,000 orders
    w.seed = config.seed * 977 + 11;
    RCC_RETURN_NOT_OK(LoadTpcd(&sys, w));
    RCC_RETURN_NOT_OK(SetupPaperCache(&sys));
    // Continuous seeded update stream; the bookstore run uses inline DML
    // instead, so both commit paths are exercised across the seed matrix.
    StartUpdateTraffic(&sys, /*period_ms=*/1200, config.seed ^ 0x0DDB411u);
  }
  RCC_RETURN_NOT_OK(ArmFaults(&sys, config));

  std::unique_ptr<Session> main_session = sys.CreateSession();
  std::unique_ptr<Session> time_session = sys.CreateSession();

  const char* const* pool = bookstore ? kBookstoreQueries : kTpcdQueries;
  int64_t pool_size = bookstore
                          ? static_cast<int64_t>(std::size(kBookstoreQueries))
                          : static_cast<int64_t>(std::size(kTpcdQueries));

  // Steady state: a few full refresh cycles.
  sys.AdvanceTo(bookstore ? 30000 : 65000);

  Rng rng(config.seed * 0x9E3779B9u + 1);
  SimRunOutcome out;
  int64_t next_sale_id = 1000000;
  auto pick = [&]() { return pool[rng.Uniform(0, pool_size - 1)]; };

  // Sessions arrive with a configured degrade policy, not always the
  // default: draw the starting mode per run. This also seeds the plan cache
  // with pool plans created under varied modes, which is what gives the
  // oracle a shot at a degrade-blind cache key (RCC_PLANCACHE_MUTATE): a
  // run that warms up under ALWAYS and later rotates to NONE would serve
  // degraded answers the session never authorized.
  {
    static const char* kInitModes[] = {"SET DEGRADE = NONE",
                                       "SET DEGRADE = BOUNDED",
                                       "SET DEGRADE = ALWAYS"};
    ++out.statements;
    (void)main_session->Execute(kInitModes[rng.Uniform(0, 2)]);
  }

  for (int step = 0; step < config.steps; ++step) {
    sys.AdvanceBy(rng.Uniform(300, 2600));
    int64_t roll = rng.Uniform(0, 99);
    if (roll < 45) {
      ++out.statements;
      // A seeded fraction of queries carries the admission layer's shed
      // hint, exactly as RccServer sets it under queue pressure. The hint
      // is advisory: the guard ladder still decides, so histories must stay
      // oracle-clean at any shed rate.
      Session::StatementOptions sopts;
      sopts.shed_hint = rng.Uniform(0, 99) <
                        static_cast<int64_t>(config.shed_percent);
      (void)main_session->Execute(pick(), sopts);
    } else if (roll < 60) {
      ++out.statements;
      (void)time_session->Execute(pick());
    } else if (roll < 72) {
      ++out.statements;
      if (bookstore) {
        switch (rng.Uniform(0, 2)) {
          case 0:
            (void)main_session->Execute(StrPrintf(
                "UPDATE Books SET price = price + 1 WHERE isbn <= %lld",
                static_cast<long long>(rng.Uniform(2, 12))));
            break;
          case 1:
            (void)main_session->Execute(StrPrintf(
                "UPDATE Reviews SET rating = %lld WHERE isbn = %lld",
                static_cast<long long>(rng.Uniform(1, 5)),
                static_cast<long long>(rng.Uniform(1, 100))));
            break;
          default:
            (void)main_session->Execute(StrPrintf(
                "INSERT INTO Sales (sale_id, isbn, year, amount) "
                "VALUES (%lld, %lld, 2004, 9.99)",
                static_cast<long long>(next_sale_id++),
                static_cast<long long>(rng.Uniform(1, 100))));
            break;
        }
      } else {
        // TPCD commits come from the update-traffic stream; spend the step
        // on another query so the statement rate stays comparable.
        (void)main_session->Execute(pick());
      }
    } else if (roll < 80) {
      ++out.statements;
      static const char* kModes[] = {"SET DEGRADE = NONE",
                                     "SET DEGRADE = BOUNDED",
                                     "SET DEGRADE = ALWAYS"};
      (void)main_session->Execute(kModes[rng.Uniform(0, 2)]);
    } else if (roll < 83) {
      // Statistics refresh (an ANALYZE tick): re-publishes the current stats
      // for a hot table. Content-identical, so plan choices are unchanged —
      // but it bumps the plan-cache version, forcing re-optimization and
      // re-publication of pooled plans under the *current* session modes.
      // This is the churn that makes a degrade-blind cache key (the
      // RCC_PLANCACHE_MUTATE planted bug) observable to the oracle: plans
      // re-created under ALWAYS get served after the mode rotates away.
      const char* table = bookstore ? "Books" : "Customer";
      (void)sys.cache()->UpdateStatistics(
          table, sys.cache()->catalog().GetStats(table));
    } else if (roll < 92) {
      // Serial batch under the concurrent-batch contract (workers=1 keeps
      // the history deterministic; multi-worker runs are covered by tests
      // that don't assert on digests).
      std::vector<std::string> batch = {pick(), pick(), pick()};
      out.statements += static_cast<int64_t>(batch.size());
      (void)main_session->ExecuteBatch(batch, /*workers=*/1);
    } else {
      ++out.statements;
      (void)time_session->Execute(time_session->in_timeordered()
                                      ? "END TIMEORDERED"
                                      : "BEGIN TIMEORDERED");
    }
  }
  // Drain: let in-flight deliveries land so histories end at a quiet point.
  sys.AdvanceBy(15000);

  out.history = recorder.Snapshot();
  out.digest = out.history.Digest();
  out.report = CheckHistory(out.history);
  for (const HistoryEvent& ev : out.history.events) {
    if (ev.kind == HistoryEvent::Kind::kCommit) ++out.commits;
    if (ev.kind == HistoryEvent::Kind::kServe && ev.shed) ++out.shed_serves;
    if (ev.kind == HistoryEvent::Kind::kAnswer) {
      ++(ev.ok ? out.answered : out.failed);
    }
  }
  sys.SetHistorySink(nullptr);
  return out;
}

}  // namespace sim
}  // namespace rcc
