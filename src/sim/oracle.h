#ifndef RCC_SIM_ORACLE_H_
#define RCC_SIM_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/history.h"

namespace rcc {
namespace sim {

/// One conformance violation: a recorded behaviour the formal C&C model
/// (src/semantics/) does not permit.
struct Violation {
  /// Which rule fired: "guard-verdict", "heartbeat-divergence",
  /// "currency-bound", "consistency-class", "timeline-floor",
  /// "timeline-tracking", "node-region-binding", "route-heartbeat",
  /// "route-verdict", "route-choice", "route-serve-node".
  std::string rule;
  uint64_t query_id = 0;
  /// Sequence number of the event the violation anchors to.
  uint64_t seq = 0;
  std::string detail;

  std::string ToString() const;
};

/// What the oracle checked and what it found. `ok()` is the pass criterion
/// of every simulation seed.
struct OracleReport {
  int64_t answers_checked = 0;
  int64_t guards_checked = 0;
  int64_t serves_checked = 0;
  /// Fleet-router dispatch decisions re-derived (0 on single-node runs).
  int64_t routes_checked = 0;
  /// Answered operands with no serve record (unguarded scans, zero-table
  /// statements): skipped, not violated — reported so a vacuously green run
  /// is visible as such.
  int64_t operands_uncovered = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

/// Replays a recorded history against the paper's formal semantics,
/// independently of the engine code that produced it. The oracle derives
/// every input from the event stream itself — region snapshots from install
/// events, the update history from commit events, session floors from
/// answers — and re-checks, per query:
///
///  R1 guard-verdict: the guard's routing decision matches the model's
///     `heartbeat > now − bound` rule (plus the timeline floor) applied to
///     the recorded inputs. Catches a skewed or inverted guard comparison
///     even when the data served happens to be fresh.
///  R2 heartbeat-divergence: the heartbeat a guard or serve claims to have
///     read equals the heartbeat the install stream last published for that
///     region — withdrawn while the derived health is quarantined/resyncing.
///  R3 currency-bound: per served operand, staleness under
///     semantics::CurrencyOf at serve time is within the constraint's bound,
///     unless the serve was explicitly degraded under SET DEGRADE ALWAYS.
///  R4 consistency-class: every multi-operand consistency class is
///     attributable to a single snapshot (semantics::MutuallyConsistent); a
///     local serve may take any snapshot its region installed between serve
///     and answer (mid-query deliveries landing during policy waits).
///  R5 timeline: per time-ordered session, query floors track the session's
///     high-water snapshot exactly and no local serve reads below the floor.
///
/// Multi-node (fleet) histories get four more rules. R1–R7 already hold
/// per-node for free: region ids are fleet-unique, so per-region state never
/// mixes nodes. The cross-node rules pin the topology and the router:
///
///  node-region-binding: a region has exactly one owning node — every
///     install/health/guard/local-serve event (and every route probe) naming
///     a region carries the node that first installed it. Catches
///     misattributed events before any per-region rule silently blends two
///     nodes' streams.
///  route-heartbeat: the certified heartbeat a route probe claims equals the
///     one derived from the probed region's install + health streams at
///     route time — withdrawn (unknown) while quarantined/resyncing. Unlike
///     the guard-side R2 there is no pinned-claim allowance: the router
///     reads the *current* certified state, never an MVCC pin. This is the
///     rule that catches RCC_FLEET_MUTATE (a router trusting a withdrawn
///     heartbeat).
///  route-verdict: each probe's eligibility bit recomputes from its recorded
///     inputs — heartbeat known, not below the timeline floor, and within
///     bound (or any staleness under DEGRADE ALWAYS, where the node may
///     serve stale-flagged).
///  route-choice: a cache-tier dispatch went to a node all of whose probes
///     were eligible.
///  route-serve-node: every guard/serve/answer event of a routed query
///     carries the routed node, and a backend-tier dispatch serves no local
///     branch.
///
/// The oracle assumes answers of a time-ordered session are serial (the
/// harness never runs a time-ordered session on a multi-worker batch).
OracleReport CheckHistory(const History& history);

}  // namespace sim
}  // namespace rcc

#endif  // RCC_SIM_ORACLE_H_
