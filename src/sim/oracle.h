#ifndef RCC_SIM_ORACLE_H_
#define RCC_SIM_ORACLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sim/history.h"

namespace rcc {
namespace sim {

/// One conformance violation: a recorded behaviour the formal C&C model
/// (src/semantics/) does not permit.
struct Violation {
  /// Which rule fired: "guard-verdict", "heartbeat-divergence",
  /// "currency-bound", "consistency-class", "timeline-floor",
  /// "timeline-tracking".
  std::string rule;
  uint64_t query_id = 0;
  /// Sequence number of the event the violation anchors to.
  uint64_t seq = 0;
  std::string detail;

  std::string ToString() const;
};

/// What the oracle checked and what it found. `ok()` is the pass criterion
/// of every simulation seed.
struct OracleReport {
  int64_t answers_checked = 0;
  int64_t guards_checked = 0;
  int64_t serves_checked = 0;
  /// Answered operands with no serve record (unguarded scans, zero-table
  /// statements): skipped, not violated — reported so a vacuously green run
  /// is visible as such.
  int64_t operands_uncovered = 0;
  std::vector<Violation> violations;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

/// Replays a recorded history against the paper's formal semantics,
/// independently of the engine code that produced it. The oracle derives
/// every input from the event stream itself — region snapshots from install
/// events, the update history from commit events, session floors from
/// answers — and re-checks, per query:
///
///  R1 guard-verdict: the guard's routing decision matches the model's
///     `heartbeat > now − bound` rule (plus the timeline floor) applied to
///     the recorded inputs. Catches a skewed or inverted guard comparison
///     even when the data served happens to be fresh.
///  R2 heartbeat-divergence: the heartbeat a guard or serve claims to have
///     read equals the heartbeat the install stream last published for that
///     region — withdrawn while the derived health is quarantined/resyncing.
///  R3 currency-bound: per served operand, staleness under
///     semantics::CurrencyOf at serve time is within the constraint's bound,
///     unless the serve was explicitly degraded under SET DEGRADE ALWAYS.
///  R4 consistency-class: every multi-operand consistency class is
///     attributable to a single snapshot (semantics::MutuallyConsistent); a
///     local serve may take any snapshot its region installed between serve
///     and answer (mid-query deliveries landing during policy waits).
///  R5 timeline: per time-ordered session, query floors track the session's
///     high-water snapshot exactly and no local serve reads below the floor.
///
/// The oracle assumes answers of a time-ordered session are serial (the
/// harness never runs a time-ordered session on a multi-worker batch).
OracleReport CheckHistory(const History& history);

}  // namespace sim
}  // namespace rcc

#endif  // RCC_SIM_ORACLE_H_
