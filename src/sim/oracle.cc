#include "sim/oracle.h"

#include <algorithm>
#include <functional>
#include <map>
#include <utility>

#include "common/strings.h"
#include "exec/exec_context.h"
#include "semantics/model.h"

namespace rcc {
namespace sim {

namespace {

/// Per-region state derived from the install/health event stream — the
/// oracle's independent reconstruction of what each replica reflected.
struct RegionState {
  bool known = false;
  TxnTimestamp as_of = kInitialTimestamp;
  bool hb_known = false;
  SimTimeMs hb = -1;
  RegionHealth health = RegionHealth::kHealthy;

  bool certified() const {
    return known && hb_known && HeartbeatValid(health);
  }
};

/// A serve buffered until its query's answer event arrives (which carries
/// the constraint). `candidates` starts with the region snapshot at serve
/// time and grows with every snapshot the region installs before the answer:
/// in serial mode the retry policy advances the scheduler mid-query, so the
/// rows of a local serve may legitimately come from any of those snapshots.
struct ServeRec {
  HistoryEvent ev;
  TxnTimestamp as_of_at_serve = kInitialTimestamp;
  std::vector<TxnTimestamp> candidates;
};

struct PendingQuery {
  std::vector<ServeRec> serves;
  /// Guard probes observed for this query (R6): a refusal is only
  /// unjustifiable when at least one guard probed a certified local branch
  /// and none of them saw a withdrawn heartbeat.
  int guard_probes = 0;
  bool guards_all_known = true;
  /// Heartbeat values this query validly claimed per region, as
  /// (hb_known, hb) pairs. Under MVCC a query that has served local rows
  /// stays pinned to that region snapshot, so a later probe may re-see a
  /// heartbeat the install stream has since superseded — acceptable exactly
  /// when the query itself claimed it before (the first claim per region
  /// must match the install stream).
  std::map<RegionId, std::vector<std::pair<bool, SimTimeMs>>> claimed;
  /// First local-serve snapshot epoch per region (structural R4): every
  /// local serve of one region within one query must come from the same
  /// published snapshot.
  std::map<RegionId, uint64_t> serve_epoch;
  /// Fleet dispatch decision for this query, when a route event preceded
  /// its guard/serve/answer events (route-serve-node).
  bool routed = false;
  int route_node = 0;
  bool route_backend = false;
};

struct SessionState {
  bool timeordered = false;
  SimTimeMs floor = -1;
};

/// Tries every combination of per-serve snapshot candidates (one choice per
/// serve — operands produced by one serve share its snapshot) against
/// semantics::MutuallyConsistent. Capped: the candidate sets are tiny (one
/// entry plus mid-query installs), so the cap only guards degenerate input.
bool AnyChoiceConsistent(
    const UpdateLog& log,
    const std::vector<std::pair<const ServeRec*, std::vector<std::string>>>&
        groups) {
  int budget = 256;
  std::vector<semantics::CopyState> copies;
  std::function<bool(size_t)> rec = [&](size_t i) -> bool {
    if (budget-- <= 0) return false;
    if (i == groups.size()) return semantics::MutuallyConsistent(log, copies);
    for (TxnTimestamp as_of : groups[i].first->candidates) {
      size_t mark = copies.size();
      for (const std::string& table : groups[i].second) {
        copies.push_back({table, as_of});
      }
      if (rec(i + 1)) return true;
      copies.resize(mark);
    }
    return false;
  };
  return rec(0);
}

}  // namespace

std::string Violation::ToString() const {
  return StrPrintf("[%s] query=%llu seq=%llu: %s", rule.c_str(),
                   static_cast<unsigned long long>(query_id),
                   static_cast<unsigned long long>(seq), detail.c_str());
}

std::string OracleReport::Summary() const {
  std::string out = StrPrintf(
      "oracle: %lld answers, %lld guards, %lld serves, %lld routes checked; "
      "%lld operands uncovered; %zu violations",
      static_cast<long long>(answers_checked),
      static_cast<long long>(guards_checked),
      static_cast<long long>(serves_checked),
      static_cast<long long>(routes_checked),
      static_cast<long long>(operands_uncovered), violations.size());
  for (const Violation& v : violations) {
    out += "\n  " + v.ToString();
  }
  return out;
}

OracleReport CheckHistory(const History& history) {
  OracleReport report;
  UpdateLog shadow;
  TxnTimestamp latest = kInitialTimestamp;
  std::map<RegionId, RegionState> regions;
  std::map<uint64_t, PendingQuery> pending;
  std::map<uint64_t, SessionState> sessions;
  /// Node that first installed each region (node-region-binding). Region ids
  /// are fleet-unique by construction, so one owner per region is the
  /// topology invariant every cross-node rule rests on.
  std::map<RegionId, int> region_owner;

  auto violate = [&report](const char* rule, uint64_t query, uint64_t seq,
                           std::string detail) {
    Violation v;
    v.rule = rule;
    v.query_id = query;
    v.seq = seq;
    v.detail = std::move(detail);
    report.violations.push_back(std::move(v));
  };

  // First event naming a (non-backend) region binds it to that node; every
  // later event must agree. kBackendRegion is shared by construction (remote
  // fetches and coverage-failure probes from any node) and is skipped.
  auto check_owner = [&](RegionId region, int node, uint64_t query,
                         uint64_t seq) {
    if (region == kBackendRegion) return;
    auto [it, first] = region_owner.emplace(region, node);
    if (!first && it->second != node) {
      violate("node-region-binding", query, seq,
              StrPrintf("region %d event from node %d, but node %d owns the "
                        "region",
                        static_cast<int>(region), node, it->second));
    }
  };

  for (const HistoryEvent& ev : history.events) {
    switch (ev.kind) {
      case HistoryEvent::Kind::kCommit: {
        // Shadow update history: one skeletal op per touched table is all the
        // semantics functions consult (they ask *which* tables a transaction
        // modified, never the row images).
        CommittedTxn txn;
        txn.id = ev.txn;
        txn.commit_time = ev.at;
        for (const std::string& table : ev.tables) {
          RowOp op;
          op.table = table;
          txn.ops.push_back(std::move(op));
        }
        shadow.Append(std::move(txn));
        latest = ev.txn;
        break;
      }
      case HistoryEvent::Kind::kInstall: {
        check_owner(ev.region, ev.node, 0, ev.seq);
        RegionState& r = regions[ev.region];
        r.known = true;
        r.as_of = ev.as_of;
        r.hb_known = ev.heartbeat_known;
        r.hb = ev.heartbeat;
        // R4 allowance: a mid-query install becomes a snapshot candidate for
        // every in-flight local serve of this region.
        for (auto& [qid, pq] : pending) {
          for (ServeRec& s : pq.serves) {
            if (s.ev.local && s.ev.region == ev.region) {
              s.candidates.push_back(ev.as_of);
            }
          }
        }
        break;
      }
      case HistoryEvent::Kind::kHealth:
        check_owner(ev.region, ev.node, 0, ev.seq);
        regions[ev.region].health = ev.health_to;
        break;
      case HistoryEvent::Kind::kSession: {
        SessionState& s = sessions[ev.session];
        s.timeordered = ev.timeordered;
        s.floor = -1;
        break;
      }
      case HistoryEvent::Kind::kGuard: {
        ++report.guards_checked;
        PendingQuery& gq = pending[ev.query];
        check_owner(ev.region, ev.node, ev.query, ev.seq);
        if (gq.routed && ev.node != gq.route_node) {
          violate("route-serve-node", ev.query, ev.seq,
                  StrPrintf("guard probe ran on node %d, query was routed to "
                            "node %d",
                            ev.node, gq.route_node));
        }
        // R2: the heartbeat the guard claims must be the one the install
        // stream last published — withdrawn while quarantined/resyncing —
        // or one this query already validly claimed for the region: once the
        // query has served local rows, its MVCC pin freezes the region at
        // that snapshot, so a later probe legitimately re-sees the pinned
        // heartbeat past newer installs. The first claim per (query, region)
        // has no precedent, so it must match the install stream — a frozen
        // publication (the mvcc-mutate bug) is still caught on every fresh
        // query.
        auto rit = regions.find(ev.region);
        bool derived_known = rit != regions.end() && rit->second.certified();
        auto& claims = gq.claimed[ev.region];
        bool matches_current =
            derived_known == ev.heartbeat_known &&
            (!derived_known || rit->second.hb == ev.heartbeat);
        bool matches_prior = false;
        for (const auto& [known, hb] : claims) {
          if (known == ev.heartbeat_known && (!known || hb == ev.heartbeat)) {
            matches_prior = true;
            break;
          }
        }
        if (!matches_current && !matches_prior) {
          if (derived_known != ev.heartbeat_known) {
            violate("heartbeat-divergence", ev.query, ev.seq,
                    StrPrintf("guard saw heartbeat_known=%d for region %d, "
                              "install stream says %d",
                              ev.heartbeat_known ? 1 : 0,
                              static_cast<int>(ev.region),
                              derived_known ? 1 : 0));
          } else {
            violate("heartbeat-divergence", ev.query, ev.seq,
                    StrPrintf("guard saw heartbeat %lld for region %d, install "
                              "stream published %lld",
                              static_cast<long long>(ev.heartbeat),
                              static_cast<int>(ev.region),
                              static_cast<long long>(rit->second.hb)));
          }
        } else {
          claims.emplace_back(ev.heartbeat_known, ev.heartbeat);
        }
        ++gq.guard_probes;
        if (!ev.heartbeat_known) gq.guards_all_known = false;
        // R1: re-derive the verdict from the recorded inputs with the
        // model's rule: heartbeat > now − bound, floored by the timeline.
        bool expected = ev.heartbeat_known &&
                        ev.heartbeat > ev.at - ev.bound_ms &&
                        !(ev.floor_ms >= 0 && ev.heartbeat < ev.floor_ms);
        if (expected != ev.verdict_local) {
          violate(
              "guard-verdict", ev.query, ev.seq,
              StrPrintf("guard routed %s but hb=%lld bound=%lld now=%lld "
                        "floor=%lld requires %s",
                        ev.verdict_local ? "local" : "remote",
                        static_cast<long long>(ev.heartbeat),
                        static_cast<long long>(ev.bound_ms),
                        static_cast<long long>(ev.at),
                        static_cast<long long>(ev.floor_ms),
                        expected ? "local" : "remote"));
        }
        break;
      }
      case HistoryEvent::Kind::kServe: {
        ++report.serves_checked;
        PendingQuery& sq = pending[ev.query];
        if (ev.local) check_owner(ev.region, ev.node, ev.query, ev.seq);
        if (sq.routed) {
          if (ev.node != sq.route_node) {
            violate("route-serve-node", ev.query, ev.seq,
                    StrPrintf("serve from node %d, query was routed to "
                              "node %d",
                              ev.node, sq.route_node));
          }
          if (sq.route_backend && ev.local) {
            violate("route-serve-node", ev.query, ev.seq,
                    "local serve on a backend-tier dispatch");
          }
        }
        // R7 (structural): an overload shed is by definition a pre-emptive
        // *degraded local* serve — a shed flag on a remote fetch or on an
        // un-degraded serve means the engine shed outside the degrade
        // ladder, i.e. outside the currency rules R3 holds degraded serves
        // to.
        if (ev.shed && (!ev.degraded || !ev.local)) {
          violate("shed-shape", ev.query, ev.seq,
                  StrPrintf("shed serve must be a degraded local serve "
                            "(local=%d degraded=%d)",
                            ev.local ? 1 : 0, ev.degraded ? 1 : 0));
        }
        ServeRec rec;
        rec.ev = ev;
        if (ev.local) {
          auto rit = regions.find(ev.region);
          bool derived_known = rit != regions.end() && rit->second.certified();
          // R2 (serve side), with the same pinned-claim allowance as the
          // guard check above.
          auto& claims = sq.claimed[ev.region];
          bool matches_current = derived_known && rit->second.hb == ev.heartbeat;
          bool matches_prior = false;
          for (const auto& [known, hb] : claims) {
            if (known && hb == ev.heartbeat) {
              matches_prior = true;
              break;
            }
          }
          if (ev.heartbeat_known && !matches_current && !matches_prior) {
            violate("heartbeat-divergence", ev.query, ev.seq,
                    StrPrintf("serve claims heartbeat %lld for region %d, "
                              "install stream says %s",
                              static_cast<long long>(ev.heartbeat),
                              static_cast<int>(ev.region),
                              derived_known
                                  ? std::to_string(rit->second.hb).c_str()
                                  : "unknown"));
          } else if (ev.heartbeat_known) {
            claims.emplace_back(true, ev.heartbeat);
          }
          // Structural R4: the MVCC pin guarantees every local serve of one
          // region within one query reads the same published snapshot — the
          // recorded epochs must agree (0 = engine without versioned reads;
          // skipped).
          if (ev.epoch != 0) {
            auto [eit, first] = sq.serve_epoch.emplace(ev.region, ev.epoch);
            if (!first && eit->second != ev.epoch) {
              violate("snapshot-epoch", ev.query, ev.seq,
                      StrPrintf("local serve from region %d snapshot epoch "
                                "%llu, but an earlier serve of this query "
                                "read epoch %llu",
                                static_cast<int>(ev.region),
                                static_cast<unsigned long long>(ev.epoch),
                                static_cast<unsigned long long>(eit->second)));
            }
          }
          rec.as_of_at_serve =
              rit != regions.end() ? rit->second.as_of : kInitialTimestamp;
        } else {
          // A remote fetch reads the back-end's current snapshot.
          rec.as_of_at_serve = latest;
        }
        rec.candidates.push_back(rec.as_of_at_serve);
        if (ev.local) {
          // A pinned serve may carry rows from a snapshot the region
          // published before the current install: any snapshot an earlier
          // local serve of this (query, region) could have read is a
          // candidate here too.
          for (const ServeRec& prev : sq.serves) {
            if (!prev.ev.local || prev.ev.region != ev.region) continue;
            for (TxnTimestamp c : prev.candidates) {
              if (std::find(rec.candidates.begin(), rec.candidates.end(), c) ==
                  rec.candidates.end()) {
                rec.candidates.push_back(c);
              }
            }
          }
        }
        sq.serves.push_back(std::move(rec));
        break;
      }
      case HistoryEvent::Kind::kRoute: {
        ++report.routes_checked;
        PendingQuery& rq = pending[ev.query];
        rq.routed = true;
        rq.route_node = ev.node;
        rq.route_backend = ev.backend_tier;
        for (const RouteProbe& p : ev.probes) {
          check_owner(p.region, p.node, ev.query, ev.seq);
          // route-heartbeat: the router reads the region's *current*
          // certified heartbeat — no MVCC pin allowance, unlike the guard's
          // R2. A probe claiming a heartbeat the install/health streams have
          // withdrawn is the planted RCC_FLEET_MUTATE bug.
          if (p.region != kBackendRegion) {
            auto rit = regions.find(p.region);
            bool derived_known =
                rit != regions.end() && rit->second.certified();
            if (derived_known != p.heartbeat_known) {
              violate("route-heartbeat", ev.query, ev.seq,
                      StrPrintf("probe of node %d region %d claims "
                                "heartbeat_known=%d, install/health streams "
                                "say %d",
                                p.node, static_cast<int>(p.region),
                                p.heartbeat_known ? 1 : 0,
                                derived_known ? 1 : 0));
            } else if (derived_known && rit->second.hb != p.heartbeat) {
              violate("route-heartbeat", ev.query, ev.seq,
                      StrPrintf("probe of node %d region %d claims heartbeat "
                                "%lld, install stream published %lld",
                                p.node, static_cast<int>(p.region),
                                static_cast<long long>(p.heartbeat),
                                static_cast<long long>(rit->second.hb)));
            }
          }
          // route-verdict: eligibility recomputes from the probe's recorded
          // inputs. Under DEGRADE ALWAYS any certified staleness is
          // eligible (the node may serve stale-flagged); otherwise the
          // guard's own within-bound rule applies.
          bool expected =
              p.heartbeat_known &&
              !(p.floor_ms >= 0 && p.heartbeat < p.floor_ms) &&
              (p.heartbeat > ev.at - p.bound_ms ||
               ev.degrade_mode == static_cast<int>(DegradeMode::kAlways));
          if (expected != p.eligible) {
            violate("route-verdict", ev.query, ev.seq,
                    StrPrintf("probe of node %d region %d marked %s but "
                              "hb_known=%d hb=%lld bound=%lld floor=%lld "
                              "now=%lld mode=%d requires %s",
                              p.node, static_cast<int>(p.region),
                              p.eligible ? "eligible" : "ineligible",
                              p.heartbeat_known ? 1 : 0,
                              static_cast<long long>(p.heartbeat),
                              static_cast<long long>(p.bound_ms),
                              static_cast<long long>(p.floor_ms),
                              static_cast<long long>(ev.at), ev.degrade_mode,
                              expected ? "eligible" : "ineligible"));
          }
          // route-choice: a cache-tier dispatch requires every probe of the
          // chosen node eligible.
          if (!ev.backend_tier && p.node == ev.node && !p.eligible) {
            violate("route-choice", ev.query, ev.seq,
                    StrPrintf("dispatched to node %d whose probe of region "
                              "%d was ineligible",
                              ev.node, static_cast<int>(p.region)));
          }
        }
        break;
      }
      case HistoryEvent::Kind::kAnswer: {
        ++report.answers_checked;
        PendingQuery pq;
        auto pit = pending.find(ev.query);
        if (pit != pending.end()) {
          pq = std::move(pit->second);
          pending.erase(pit);
        }
        if (pq.routed && ev.node != pq.route_node) {
          violate("route-serve-node", ev.query, ev.seq,
                  StrPrintf("answer from node %d, query was routed to node %d",
                            ev.node, pq.route_node));
        }
        // The final serving branch per operand (a degraded serve supersedes
        // the failed remote attempt it replaced).
        std::map<InputOperandId, const ServeRec*> source;
        for (const ServeRec& s : pq.serves) {
          for (InputOperandId oid : s.ev.operands) source[oid] = &s;
        }
        if (ev.ok) {
          for (const auto& [bound, tuple_ops] : ev.tuples) {
            std::vector<std::pair<const ServeRec*, std::vector<std::string>>>
                groups;
            size_t covered = 0;
            for (InputOperandId oid : tuple_ops) {
              auto sit = source.find(oid);
              if (sit == source.end() || oid >= ev.tables.size()) {
                ++report.operands_uncovered;
                continue;
              }
              ++covered;
              const ServeRec& s = *sit->second;
              // R3: staleness of the serving snapshot, measured by the
              // formal model at serve time, within the tuple's bound —
              // unless the engine explicitly served stale under ALWAYS.
              SimTimeMs staleness = semantics::CurrencyOf(
                  shadow, ev.tables[oid], s.as_of_at_serve, s.ev.at);
              if (staleness > bound) {
                bool authorized =
                    s.ev.degraded &&
                    ev.degrade_mode == static_cast<int>(DegradeMode::kAlways);
                if (!authorized) {
                  violate("currency-bound", ev.query, ev.seq,
                          StrPrintf(
                              "operand %u (%s) served %lldms stale at t=%lld, "
                              "bound %lldms, degraded=%d mode=%d",
                              static_cast<unsigned>(oid),
                              ev.tables[oid].c_str(),
                              static_cast<long long>(staleness),
                              static_cast<long long>(s.ev.at),
                              static_cast<long long>(bound),
                              s.ev.degraded ? 1 : 0, ev.degrade_mode));
                }
              }
              bool grouped = false;
              for (auto& [serve, tables] : groups) {
                if (serve == &s) {
                  tables.push_back(ev.tables[oid]);
                  grouped = true;
                  break;
                }
              }
              if (!grouped) groups.push_back({&s, {ev.tables[oid]}});
            }
            // R4: the whole class must be attributable to one snapshot.
            if (covered >= 2 && !AnyChoiceConsistent(shadow, groups)) {
              violate("consistency-class", ev.query, ev.seq,
                      StrPrintf("no snapshot assignment makes the %zu-operand "
                                "class (bound %lldms) mutually consistent",
                                covered, static_cast<long long>(bound)));
            }
          }
          // R5 (serve side): no local serve below the query's floor.
          if (ev.floor_ms >= 0) {
            for (const ServeRec& s : pq.serves) {
              if (s.ev.local && s.ev.heartbeat_known &&
                  s.ev.heartbeat < ev.floor_ms) {
                violate("timeline-floor", ev.query, s.ev.seq,
                        StrPrintf("local serve at heartbeat %lld below the "
                                  "session floor %lld",
                                  static_cast<long long>(s.ev.heartbeat),
                                  static_cast<long long>(ev.floor_ms)));
              }
            }
          }
        } else {
          // R6: availability side of the degrade contract. SET DEGRADE
          // ALWAYS guarantees an answer whenever the plan probed at least
          // one guard and every probed region held a certified heartbeat —
          // the engine can always fall back to the certified local branch
          // and annotate the staleness. A refusal in that state means the
          // query executed under some *other* session's policy (the
          // stale-plan-across-degrade-modes bug: a plan cached under
          // DEGRADE NONE served on an ALWAYS session). Withdrawn heartbeats
          // (quarantine/resync) and guard-less remote-only plans refuse
          // legitimately, as do non-Unavailable failures (parse errors...).
          if (ev.degrade_mode == static_cast<int>(DegradeMode::kAlways) &&
              !ev.timeordered && pq.guard_probes > 0 && pq.guards_all_known &&
              ev.error.rfind("Unavailable", 0) == 0 &&
              ev.error.find("quarantin") == std::string::npos) {
            violate("degrade-refusal", ev.query, ev.seq,
                    StrPrintf("refused under DEGRADE ALWAYS with %d certified "
                              "guard probe(s): %s",
                              pq.guard_probes, ev.error.c_str()));
          }
        }
        // R5 (session side): a time-ordered session's floor must track its
        // high-water snapshot exactly, monotonically. Assumes the session's
        // queries are serial (the harness guarantees it).
        auto sit = sessions.find(ev.session);
        if (sit != sessions.end() && sit->second.timeordered) {
          if (ev.floor_ms != sit->second.floor) {
            violate("timeline-tracking", ev.query, ev.seq,
                    StrPrintf("query ran with floor %lld, session high-water "
                              "is %lld",
                              static_cast<long long>(ev.floor_ms),
                              static_cast<long long>(sit->second.floor)));
          }
          if (ev.ok && ev.max_seen_heartbeat > sit->second.floor) {
            sit->second.floor = ev.max_seen_heartbeat;
          }
        }
        break;
      }
    }
  }
  return report;
}

}  // namespace sim
}  // namespace rcc
