#ifndef RCC_SIM_RUNNER_H_
#define RCC_SIM_RUNNER_H_

#include <cstdint>

#include "common/result.h"
#include "sim/history.h"
#include "sim/oracle.h"

namespace rcc {
namespace sim {

/// Which fault injectors a simulation run arms.
enum class FaultMix {
  kNone,         // clean run: replication lag is the only staleness source
  kOutage,       // periodic query-channel outages + resilient remote policy
  kReplication,  // delivery drops/delays/duplicates/stalls/poison
  kCombined,     // both of the above
};

const char* FaultMixName(FaultMix mix);

enum class SimWorkload {
  kBookstore,  // paper §2 schema: Books/Reviews/Sales, inline DML
  kTpcd,       // paper §4 schema: Customer/Orders, scheduler update traffic
};

const char* SimWorkloadName(SimWorkload workload);

/// One deterministic simulation run. Everything random derives from `seed`
/// (workload data, statement schedule, fault schedules), so the same config
/// always produces the byte-identical history.
struct SimRunConfig {
  uint64_t seed = 1;
  FaultMix faults = FaultMix::kNone;
  SimWorkload workload = SimWorkload::kBookstore;
  /// Scheduled steps; each step advances virtual time and issues one
  /// statement, batch, mode toggle or DML.
  int steps = 80;
  /// Percent [0,100] of main-session queries issued with an overload shed
  /// hint (as the network server's admission layer would under queue
  /// pressure). Sheds serve degraded-local only when the guard ladder
  /// permits, so the oracle must stay violation-free at any rate.
  int shed_percent = 25;
  /// >= 2 runs the fleet simulation instead: that many heterogeneous cache
  /// nodes behind one backend, every SELECT dispatched by the FleetRouter,
  /// per-node fault injection, and the multi-node oracle rules in force.
  /// The fleet path is bookstore-only (a TPCD `workload` is mapped to
  /// bookstore). 0 or 1 is the unchanged single-node run.
  int fleet_nodes = 0;
};

struct SimRunOutcome {
  History history;
  OracleReport report;
  /// history.Digest(), precomputed — the seed-stability fingerprint.
  uint64_t digest = 0;
  /// Statements issued / answers that succeeded / answers that failed
  /// (fault mixes are expected to fail some under DEGRADE NONE).
  int64_t statements = 0;
  int64_t answered = 0;
  int64_t failed = 0;
  /// Back-end commits recorded (DML + update traffic).
  int64_t commits = 0;
  /// Serves that took the shed (degraded-local under overload) branch.
  int64_t shed_serves = 0;
  /// Fleet-router dispatch decisions recorded (0 on single-node runs).
  int64_t routes = 0;
};

/// Builds a system, records its full audit history while driving a seeded
/// mixed workload (relaxed/strict queries, DML, SET DEGRADE, serial batches,
/// time-ordered phases) under the configured fault mix, then replays the
/// history through the conformance oracle. Errors only on setup failure —
/// query failures are part of the recorded behaviour, not errors.
Result<SimRunOutcome> RunSimulation(const SimRunConfig& config);

}  // namespace sim
}  // namespace rcc

#endif  // RCC_SIM_RUNNER_H_
