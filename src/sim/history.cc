#include "sim/history.h"

#include <cstdlib>

#include "common/strings.h"

namespace rcc {
namespace sim {

namespace {

const char kHeader[] = "rcc.history.v1";

std::string JoinStrings(const std::vector<std::string>& parts) {
  if (parts.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += '|';
    out += parts[i];
  }
  return out;
}

std::string JoinOperands(const std::vector<InputOperandId>& ids) {
  if (ids.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ids[i]);
  }
  return out;
}

std::string FormatHb(bool known, SimTimeMs hb) {
  return known ? std::to_string(static_cast<long long>(hb))
               : std::string("none");
}

/// Error text is embedded as one token: whitespace becomes '_' (lossy but
/// one-way — the oracle never interprets error text, it only surfaces it).
std::string SanitizeText(const std::string& text) {
  if (text.empty()) return "-";
  std::string out = text;
  for (char& c : out) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') c = '_';
  }
  return out;
}

/// Route probes, one `|`-separated token per probe:
/// `node:region:bound:floor:hb:eligible` with `none` for a withdrawn
/// heartbeat. "-" = no probes (an unconstrained statement).
std::string JoinProbes(const std::vector<RouteProbe>& probes) {
  if (probes.empty()) return "-";
  std::string out;
  for (size_t i = 0; i < probes.size(); ++i) {
    const RouteProbe& p = probes[i];
    if (i > 0) out += '|';
    out += std::to_string(p.node);
    out += ':';
    out += std::to_string(static_cast<int>(p.region));
    out += ':';
    out += std::to_string(static_cast<long long>(p.bound_ms));
    out += ':';
    out += std::to_string(static_cast<long long>(p.floor_ms));
    out += ':';
    out += FormatHb(p.heartbeat_known, p.heartbeat);
    out += ':';
    out += p.eligible ? '1' : '0';
  }
  return out;
}

const char* InstallKindName(InstallObservation::Kind kind) {
  switch (kind) {
    case InstallObservation::Kind::kInitial:
      return "initial";
    case InstallObservation::Kind::kDelivery:
      return "delivery";
    case InstallObservation::Kind::kResync:
      return "resync";
  }
  return "?";
}

void AppendEventLine(const HistoryEvent& ev, std::string* out) {
  char buf[256];
  auto add = [out](const char* s) { *out += s; };
  switch (ev.kind) {
    case HistoryEvent::Kind::kCommit:
      std::snprintf(buf, sizeof(buf), "commit seq=%llu at=%lld txn=%lld",
                    static_cast<unsigned long long>(ev.seq),
                    static_cast<long long>(ev.at),
                    static_cast<long long>(ev.txn));
      add(buf);
      *out += " tables=" + JoinStrings(ev.tables);
      break;
    case HistoryEvent::Kind::kInstall:
      std::snprintf(buf, sizeof(buf),
                    "install seq=%llu at=%lld region=%d kind=%s as_of=%lld",
                    static_cast<unsigned long long>(ev.seq),
                    static_cast<long long>(ev.at), static_cast<int>(ev.region),
                    InstallKindName(ev.install_kind),
                    static_cast<long long>(ev.as_of));
      add(buf);
      *out += " hb=" + FormatHb(ev.heartbeat_known, ev.heartbeat);
      std::snprintf(buf, sizeof(buf), " ops=%lld node=%d",
                    static_cast<long long>(ev.ops), ev.node);
      add(buf);
      break;
    case HistoryEvent::Kind::kHealth:
      std::snprintf(buf, sizeof(buf),
                    "health seq=%llu at=%lld region=%d from=%d to=%d node=%d",
                    static_cast<unsigned long long>(ev.seq),
                    static_cast<long long>(ev.at), static_cast<int>(ev.region),
                    static_cast<int>(ev.health_from),
                    static_cast<int>(ev.health_to), ev.node);
      add(buf);
      break;
    case HistoryEvent::Kind::kSession:
      std::snprintf(buf, sizeof(buf),
                    "session seq=%llu at=%lld session=%llu timeordered=%d",
                    static_cast<unsigned long long>(ev.seq),
                    static_cast<long long>(ev.at),
                    static_cast<unsigned long long>(ev.session),
                    ev.timeordered ? 1 : 0);
      add(buf);
      break;
    case HistoryEvent::Kind::kGuard:
      std::snprintf(buf, sizeof(buf), "guard seq=%llu at=%lld q=%llu region=%d",
                    static_cast<unsigned long long>(ev.seq),
                    static_cast<long long>(ev.at),
                    static_cast<unsigned long long>(ev.query),
                    static_cast<int>(ev.region));
      add(buf);
      *out += " hb=" + FormatHb(ev.heartbeat_known, ev.heartbeat);
      std::snprintf(buf, sizeof(buf),
                    " bound=%lld floor=%lld verdict=%s epoch=%llu node=%d",
                    static_cast<long long>(ev.bound_ms),
                    static_cast<long long>(ev.floor_ms),
                    ev.verdict_local ? "local" : "stale",
                    static_cast<unsigned long long>(ev.epoch), ev.node);
      add(buf);
      break;
    case HistoryEvent::Kind::kServe:
      std::snprintf(
          buf, sizeof(buf),
          "serve seq=%llu at=%lld q=%llu region=%d local=%d degraded=%d "
          "shed=%d",
          static_cast<unsigned long long>(ev.seq),
          static_cast<long long>(ev.at),
          static_cast<unsigned long long>(ev.query),
          static_cast<int>(ev.region), ev.local ? 1 : 0, ev.degraded ? 1 : 0,
          ev.shed ? 1 : 0);
      add(buf);
      *out += " hb=" + FormatHb(ev.heartbeat_known, ev.heartbeat);
      std::snprintf(buf, sizeof(buf), " epoch=%llu node=%d",
                    static_cast<unsigned long long>(ev.epoch), ev.node);
      add(buf);
      *out += " operands=" + JoinOperands(ev.operands);
      break;
    case HistoryEvent::Kind::kAnswer: {
      std::snprintf(buf, sizeof(buf),
                    "answer seq=%llu at=%lld q=%llu session=%llu ok=%d "
                    "mode=%d floor=%lld seen=%lld degraded=%d dstale=%lld "
                    "rows=%lld",
                    static_cast<unsigned long long>(ev.seq),
                    static_cast<long long>(ev.at),
                    static_cast<unsigned long long>(ev.query),
                    static_cast<unsigned long long>(ev.session),
                    ev.ok ? 1 : 0, ev.degrade_mode,
                    static_cast<long long>(ev.floor_ms),
                    static_cast<long long>(ev.max_seen_heartbeat),
                    ev.degraded ? 1 : 0,
                    static_cast<long long>(ev.degraded_staleness_ms),
                    static_cast<long long>(ev.rows));
      add(buf);
      *out += " tables=" + JoinStrings(ev.tables);
      *out += " tuples=";
      if (ev.tuples.empty()) {
        *out += '-';
      } else {
        for (size_t i = 0; i < ev.tuples.size(); ++i) {
          if (i > 0) *out += ';';
          *out += std::to_string(static_cast<long long>(ev.tuples[i].first));
          *out += ':';
          *out += JoinOperands(ev.tuples[i].second);
        }
      }
      *out += " error=" + SanitizeText(ev.error);
      std::snprintf(buf, sizeof(buf), " node=%d", ev.node);
      add(buf);
      break;
    }
    case HistoryEvent::Kind::kRoute:
      std::snprintf(buf, sizeof(buf),
                    "route seq=%llu at=%lld q=%llu node=%d tier=%s mode=%d",
                    static_cast<unsigned long long>(ev.seq),
                    static_cast<long long>(ev.at),
                    static_cast<unsigned long long>(ev.query), ev.node,
                    ev.backend_tier ? "backend" : "cache", ev.degrade_mode);
      add(buf);
      *out += " probes=" + JoinProbes(ev.probes);
      break;
  }
  *out += '\n';
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// key=value tokens of one line, keyed lookup with loud failure.
class TokenMap {
 public:
  static Result<TokenMap> FromLine(const std::string& line) {
    TokenMap map;
    std::vector<std::string> tokens = Split(line, ' ');
    if (tokens.empty()) return Status::InvalidArgument("empty history line");
    map.kind_ = tokens[0];
    for (size_t i = 1; i < tokens.size(); ++i) {
      const std::string& tok = tokens[i];
      if (tok.empty()) continue;
      size_t eq = tok.find('=');
      if (eq == std::string::npos) {
        return Status::InvalidArgument("malformed history token: " + tok);
      }
      map.values_.emplace_back(tok.substr(0, eq), tok.substr(eq + 1));
    }
    return map;
  }

  const std::string& kind() const { return kind_; }

  Result<std::string> Get(const std::string& key) const {
    for (const auto& [k, v] : values_) {
      if (k == key) return v;
    }
    return Status::InvalidArgument("history line missing key " + key);
  }

  Result<int64_t> GetInt(const std::string& key) const {
    RCC_ASSIGN_OR_RETURN(std::string v, Get(key));
    return static_cast<int64_t>(std::strtoll(v.c_str(), nullptr, 10));
  }

  Result<uint64_t> GetUint(const std::string& key) const {
    RCC_ASSIGN_OR_RETURN(std::string v, Get(key));
    return static_cast<uint64_t>(std::strtoull(v.c_str(), nullptr, 10));
  }

  /// Lenient integer lookup for tokens added after v1 shipped (`node=`):
  /// pre-fleet histories parse with the single-node default instead of
  /// failing, so recorded evidence never goes stale on a schema extension.
  int64_t GetIntOr(const std::string& key, int64_t fallback) const {
    for (const auto& [k, v] : values_) {
      if (k == key) {
        return static_cast<int64_t>(std::strtoll(v.c_str(), nullptr, 10));
      }
    }
    return fallback;
  }

 private:
  std::string kind_;
  std::vector<std::pair<std::string, std::string>> values_;
};

std::vector<std::string> ParseStrings(const std::string& joined) {
  if (joined == "-") return {};
  return Split(joined, '|');
}

std::vector<InputOperandId> ParseOperands(const std::string& joined) {
  std::vector<InputOperandId> out;
  if (joined == "-") return out;
  for (const std::string& piece : Split(joined, ',')) {
    out.push_back(
        static_cast<InputOperandId>(std::strtoul(piece.c_str(), nullptr, 10)));
  }
  return out;
}

Result<bool> ParseHb(const TokenMap& map, SimTimeMs* hb) {
  RCC_ASSIGN_OR_RETURN(std::string v, map.Get("hb"));
  if (v == "none") {
    *hb = -1;
    return false;
  }
  *hb = static_cast<SimTimeMs>(std::strtoll(v.c_str(), nullptr, 10));
  return true;
}

/// One serialized route probe (`node:region:bound:floor:hb:eligible`).
/// Route lines are new with the fleet schema, so parsing is strict — there
/// is no legacy shape to stay lenient for.
Result<RouteProbe> ParseProbe(const std::string& piece) {
  std::vector<std::string> fields = Split(piece, ':');
  if (fields.size() != 6) {
    return Status::InvalidArgument("malformed route probe: " + piece);
  }
  RouteProbe p;
  p.node = static_cast<int>(std::strtol(fields[0].c_str(), nullptr, 10));
  p.region =
      static_cast<RegionId>(std::strtol(fields[1].c_str(), nullptr, 10));
  p.bound_ms =
      static_cast<SimTimeMs>(std::strtoll(fields[2].c_str(), nullptr, 10));
  p.floor_ms =
      static_cast<SimTimeMs>(std::strtoll(fields[3].c_str(), nullptr, 10));
  if (fields[4] == "none") {
    p.heartbeat_known = false;
    p.heartbeat = -1;
  } else {
    p.heartbeat_known = true;
    p.heartbeat =
        static_cast<SimTimeMs>(std::strtoll(fields[4].c_str(), nullptr, 10));
  }
  if (fields[5] != "0" && fields[5] != "1") {
    return Status::InvalidArgument("malformed route probe verdict: " + piece);
  }
  p.eligible = fields[5] == "1";
  return p;
}

Result<HistoryEvent> ParseEventLine(const std::string& line) {
  RCC_ASSIGN_OR_RETURN(TokenMap map, TokenMap::FromLine(line));
  HistoryEvent ev;
  RCC_ASSIGN_OR_RETURN(ev.seq, map.GetUint("seq"));
  RCC_ASSIGN_OR_RETURN(ev.at, map.GetInt("at"));
  const std::string& kind = map.kind();
  if (kind == "commit") {
    ev.kind = HistoryEvent::Kind::kCommit;
    RCC_ASSIGN_OR_RETURN(ev.txn, map.GetInt("txn"));
    RCC_ASSIGN_OR_RETURN(std::string tables, map.Get("tables"));
    ev.tables = ParseStrings(tables);
  } else if (kind == "install") {
    ev.kind = HistoryEvent::Kind::kInstall;
    RCC_ASSIGN_OR_RETURN(int64_t region, map.GetInt("region"));
    ev.region = static_cast<RegionId>(region);
    RCC_ASSIGN_OR_RETURN(std::string k, map.Get("kind"));
    if (k == "initial") {
      ev.install_kind = InstallObservation::Kind::kInitial;
    } else if (k == "delivery") {
      ev.install_kind = InstallObservation::Kind::kDelivery;
    } else if (k == "resync") {
      ev.install_kind = InstallObservation::Kind::kResync;
    } else {
      return Status::InvalidArgument("unknown install kind: " + k);
    }
    RCC_ASSIGN_OR_RETURN(ev.as_of, map.GetInt("as_of"));
    RCC_ASSIGN_OR_RETURN(ev.heartbeat_known, ParseHb(map, &ev.heartbeat));
    RCC_ASSIGN_OR_RETURN(ev.ops, map.GetInt("ops"));
    ev.node = static_cast<int>(map.GetIntOr("node", 0));
  } else if (kind == "health") {
    ev.kind = HistoryEvent::Kind::kHealth;
    RCC_ASSIGN_OR_RETURN(int64_t region, map.GetInt("region"));
    ev.region = static_cast<RegionId>(region);
    RCC_ASSIGN_OR_RETURN(int64_t from, map.GetInt("from"));
    RCC_ASSIGN_OR_RETURN(int64_t to, map.GetInt("to"));
    ev.health_from = static_cast<RegionHealth>(from);
    ev.health_to = static_cast<RegionHealth>(to);
    ev.node = static_cast<int>(map.GetIntOr("node", 0));
  } else if (kind == "session") {
    ev.kind = HistoryEvent::Kind::kSession;
    RCC_ASSIGN_OR_RETURN(ev.session, map.GetUint("session"));
    RCC_ASSIGN_OR_RETURN(int64_t on, map.GetInt("timeordered"));
    ev.timeordered = on != 0;
  } else if (kind == "guard") {
    ev.kind = HistoryEvent::Kind::kGuard;
    RCC_ASSIGN_OR_RETURN(ev.query, map.GetUint("q"));
    RCC_ASSIGN_OR_RETURN(int64_t region, map.GetInt("region"));
    ev.region = static_cast<RegionId>(region);
    RCC_ASSIGN_OR_RETURN(ev.heartbeat_known, ParseHb(map, &ev.heartbeat));
    RCC_ASSIGN_OR_RETURN(ev.bound_ms, map.GetInt("bound"));
    RCC_ASSIGN_OR_RETURN(ev.floor_ms, map.GetInt("floor"));
    RCC_ASSIGN_OR_RETURN(std::string verdict, map.Get("verdict"));
    ev.verdict_local = verdict == "local";
    RCC_ASSIGN_OR_RETURN(ev.epoch, map.GetUint("epoch"));
    ev.node = static_cast<int>(map.GetIntOr("node", 0));
  } else if (kind == "serve") {
    ev.kind = HistoryEvent::Kind::kServe;
    RCC_ASSIGN_OR_RETURN(ev.query, map.GetUint("q"));
    RCC_ASSIGN_OR_RETURN(int64_t region, map.GetInt("region"));
    ev.region = static_cast<RegionId>(region);
    RCC_ASSIGN_OR_RETURN(int64_t local, map.GetInt("local"));
    ev.local = local != 0;
    RCC_ASSIGN_OR_RETURN(int64_t degraded, map.GetInt("degraded"));
    ev.degraded = degraded != 0;
    RCC_ASSIGN_OR_RETURN(int64_t shed, map.GetInt("shed"));
    ev.shed = shed != 0;
    RCC_ASSIGN_OR_RETURN(ev.heartbeat_known, ParseHb(map, &ev.heartbeat));
    RCC_ASSIGN_OR_RETURN(ev.epoch, map.GetUint("epoch"));
    RCC_ASSIGN_OR_RETURN(std::string operands, map.Get("operands"));
    ev.operands = ParseOperands(operands);
    ev.node = static_cast<int>(map.GetIntOr("node", 0));
  } else if (kind == "answer") {
    ev.kind = HistoryEvent::Kind::kAnswer;
    RCC_ASSIGN_OR_RETURN(ev.query, map.GetUint("q"));
    RCC_ASSIGN_OR_RETURN(ev.session, map.GetUint("session"));
    RCC_ASSIGN_OR_RETURN(int64_t ok, map.GetInt("ok"));
    ev.ok = ok != 0;
    RCC_ASSIGN_OR_RETURN(int64_t mode, map.GetInt("mode"));
    ev.degrade_mode = static_cast<int>(mode);
    RCC_ASSIGN_OR_RETURN(ev.floor_ms, map.GetInt("floor"));
    RCC_ASSIGN_OR_RETURN(ev.max_seen_heartbeat, map.GetInt("seen"));
    RCC_ASSIGN_OR_RETURN(int64_t degraded, map.GetInt("degraded"));
    ev.degraded = degraded != 0;
    RCC_ASSIGN_OR_RETURN(ev.degraded_staleness_ms, map.GetInt("dstale"));
    RCC_ASSIGN_OR_RETURN(ev.rows, map.GetInt("rows"));
    RCC_ASSIGN_OR_RETURN(std::string tables, map.Get("tables"));
    ev.tables = ParseStrings(tables);
    RCC_ASSIGN_OR_RETURN(std::string tuples, map.Get("tuples"));
    if (tuples != "-") {
      for (const std::string& piece : Split(tuples, ';')) {
        size_t colon = piece.find(':');
        if (colon == std::string::npos) {
          return Status::InvalidArgument("malformed tuple: " + piece);
        }
        SimTimeMs bound = static_cast<SimTimeMs>(
            std::strtoll(piece.substr(0, colon).c_str(), nullptr, 10));
        ev.tuples.emplace_back(bound, ParseOperands(piece.substr(colon + 1)));
      }
    }
    RCC_ASSIGN_OR_RETURN(std::string error, map.Get("error"));
    if (error != "-") ev.error = error;
    ev.node = static_cast<int>(map.GetIntOr("node", 0));
  } else if (kind == "route") {
    ev.kind = HistoryEvent::Kind::kRoute;
    RCC_ASSIGN_OR_RETURN(ev.query, map.GetUint("q"));
    RCC_ASSIGN_OR_RETURN(int64_t node, map.GetInt("node"));
    ev.node = static_cast<int>(node);
    RCC_ASSIGN_OR_RETURN(std::string tier, map.Get("tier"));
    if (tier == "cache") {
      ev.backend_tier = false;
    } else if (tier == "backend") {
      ev.backend_tier = true;
    } else {
      return Status::InvalidArgument("unknown route tier: " + tier);
    }
    RCC_ASSIGN_OR_RETURN(int64_t mode, map.GetInt("mode"));
    ev.degrade_mode = static_cast<int>(mode);
    RCC_ASSIGN_OR_RETURN(std::string probes, map.Get("probes"));
    if (probes != "-") {
      for (const std::string& piece : Split(probes, '|')) {
        RCC_ASSIGN_OR_RETURN(RouteProbe p, ParseProbe(piece));
        ev.probes.push_back(p);
      }
    }
  } else {
    return Status::InvalidArgument("unknown history event kind: " + kind);
  }
  return ev;
}

}  // namespace

std::string History::Serialize() const {
  std::string out = std::string(kHeader) + " seed=" + std::to_string(seed);
  out += '\n';
  for (const HistoryEvent& ev : events) AppendEventLine(ev, &out);
  return out;
}

Result<History> History::Parse(const std::string& text) {
  History h;
  bool saw_header = false;
  for (const std::string& line : Split(text, '\n')) {
    if (line.empty()) continue;
    if (!saw_header) {
      RCC_ASSIGN_OR_RETURN(TokenMap map, TokenMap::FromLine(line));
      if (map.kind() != kHeader) {
        return Status::InvalidArgument("not a history file: bad header");
      }
      RCC_ASSIGN_OR_RETURN(h.seed, map.GetUint("seed"));
      saw_header = true;
      continue;
    }
    RCC_ASSIGN_OR_RETURN(HistoryEvent ev, ParseEventLine(line));
    h.events.push_back(std::move(ev));
  }
  if (!saw_header) return Status::InvalidArgument("empty history file");
  return h;
}

uint64_t History::Digest() const {
  // FNV-1a 64.
  std::string text = Serialize();
  uint64_t hash = 1469598103934665603ULL;
  for (unsigned char c : text) {
    hash ^= static_cast<uint64_t>(c);
    hash *= 1099511628211ULL;
  }
  return hash;
}

void HistoryRecorder::Append(HistoryEvent ev) {
  std::lock_guard<std::mutex> lock(mutex_);
  ev.seq = next_seq_++;
  history_.events.push_back(std::move(ev));
}

uint64_t HistoryRecorder::BeginQuery(SimTimeMs at) {
  (void)at;
  std::lock_guard<std::mutex> lock(mutex_);
  return next_query_++;
}

void HistoryRecorder::OnGuardProbe(const GuardObservation& obs) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kGuard;
  ev.at = obs.at;
  ev.node = obs.node;
  ev.query = obs.query_id;
  ev.region = obs.region;
  ev.heartbeat_known = obs.heartbeat_known;
  ev.heartbeat = obs.heartbeat;
  ev.bound_ms = obs.bound_ms;
  ev.floor_ms = obs.floor_ms;
  ev.verdict_local = obs.verdict_local;
  ev.epoch = obs.epoch;
  Append(std::move(ev));
}

void HistoryRecorder::OnServe(const ServeObservation& obs) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kServe;
  ev.at = obs.at;
  ev.node = obs.node;
  ev.query = obs.query_id;
  ev.region = obs.region;
  ev.local = obs.local;
  ev.degraded = obs.degraded;
  ev.shed = obs.shed;
  ev.heartbeat_known = obs.heartbeat_known;
  ev.heartbeat = obs.heartbeat;
  ev.epoch = obs.epoch;
  ev.operands = obs.operands;
  Append(std::move(ev));
}

void HistoryRecorder::OnAnswer(const AnswerObservation& obs) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kAnswer;
  ev.at = obs.at;
  ev.node = obs.node;
  ev.query = obs.query_id;
  ev.session = obs.session;
  ev.ok = obs.ok;
  ev.degrade_mode = obs.degrade_mode;
  ev.floor_ms = obs.floor_before;
  ev.max_seen_heartbeat = obs.max_seen_heartbeat;
  ev.degraded = obs.degraded;
  ev.degraded_staleness_ms = obs.degraded_staleness_ms;
  ev.rows = obs.rows;
  ev.tables = obs.operand_tables;
  ev.tuples = obs.tuples;
  ev.error = obs.error;
  Append(std::move(ev));
}

void HistoryRecorder::OnCommit(const CommittedTxn& txn, SimTimeMs at) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kCommit;
  ev.at = at;
  ev.txn = txn.id;
  // Distinct tables touched, in first-op order (the oracle's shadow log only
  // needs which tables each commit invalidates, not the row images).
  for (const RowOp& op : txn.ops) {
    bool seen = false;
    for (const std::string& t : ev.tables) {
      if (t == op.table) {
        seen = true;
        break;
      }
    }
    if (!seen) ev.tables.push_back(op.table);
  }
  Append(std::move(ev));
}

void HistoryRecorder::OnInstall(const InstallObservation& obs) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kInstall;
  ev.at = obs.at;
  ev.node = obs.node;
  ev.region = obs.region;
  ev.install_kind = obs.kind;
  ev.as_of = obs.as_of;
  ev.heartbeat_known = true;
  ev.heartbeat = obs.heartbeat;
  ev.ops = obs.ops;
  Append(std::move(ev));
}

void HistoryRecorder::OnHealth(RegionId region, RegionHealth from,
                               RegionHealth to, SimTimeMs at, int node) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kHealth;
  ev.at = at;
  ev.node = node;
  ev.region = region;
  ev.health_from = from;
  ev.health_to = to;
  Append(std::move(ev));
}

void HistoryRecorder::OnRoute(const RouteObservation& obs) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kRoute;
  ev.at = obs.at;
  ev.node = obs.node;
  ev.query = obs.query_id;
  ev.backend_tier = obs.backend_tier;
  ev.degrade_mode = obs.degrade_mode;
  ev.probes = obs.probes;
  Append(std::move(ev));
}

void HistoryRecorder::OnSessionMode(uint64_t session, bool timeordered,
                                    SimTimeMs at) {
  HistoryEvent ev;
  ev.kind = HistoryEvent::Kind::kSession;
  ev.at = at;
  ev.session = session;
  ev.timeordered = timeordered;
  Append(std::move(ev));
}

History HistoryRecorder::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_;
}

size_t HistoryRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return history_.events.size();
}

}  // namespace sim
}  // namespace rcc
