#ifndef RCC_SIM_HISTORY_H_
#define RCC_SIM_HISTORY_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "exec/audit.h"

namespace rcc {
namespace sim {

/// One recorded audit event. A flat tagged struct (only the fields of the
/// active kind are meaningful) keeps the history trivially serializable and
/// replayable without a class hierarchy. `seq` is the global record order —
/// the oracle's notion of time *within* one virtual-clock instant (a serial
/// query's guard probe, mid-query deliveries landing while the retry policy
/// waits, and the final answer may all share one virtual timestamp, but
/// their sequence numbers preserve causality).
struct HistoryEvent {
  enum class Kind {
    kCommit,   // back-end commit (xtime source)
    kInstall,  // replication install (initial population / delivery / resync)
    kHealth,   // region health transition
    kSession,  // session toggled timeline mode
    kGuard,    // currency-guard probe
    kServe,    // a branch served operands
    kAnswer,   // query completed
    kRoute,    // fleet-router dispatch decision
  };

  Kind kind = Kind::kCommit;
  uint64_t seq = 0;
  SimTimeMs at = 0;

  // kInstall / kHealth / kGuard / kServe / kAnswer: owning/serving cache
  // node; kRoute: the chosen node. 0 = the single cache of a non-fleet
  // system (and the value parsed from pre-fleet histories, whose lines have
  // no node token).
  int node = 0;

  // kCommit: txn id + touched tables. kAnswer: operand base tables
  // (index = InputOperandId).
  TxnTimestamp txn = 0;
  std::vector<std::string> tables;

  // kInstall / kHealth / kGuard / kServe.
  RegionId region = kBackendRegion;

  // kInstall.
  InstallObservation::Kind install_kind = InstallObservation::Kind::kDelivery;
  TxnTimestamp as_of = 0;
  int64_t ops = 0;

  // kInstall / kGuard / kServe: heartbeat observed/published.
  bool heartbeat_known = false;
  SimTimeMs heartbeat = -1;

  // kHealth.
  RegionHealth health_from = RegionHealth::kHealthy;
  RegionHealth health_to = RegionHealth::kHealthy;

  // kSession / kAnswer.
  uint64_t session = 0;
  bool timeordered = false;

  // kGuard / kServe / kAnswer.
  uint64_t query = 0;
  SimTimeMs bound_ms = 0;
  SimTimeMs floor_ms = -1;
  bool verdict_local = false;
  // kGuard / kServe: publication epoch of the pinned region snapshot the
  // probe read / the rows came from (0 = unversioned reads).
  uint64_t epoch = 0;

  // kServe.
  bool local = false;
  bool degraded = false;
  /// Pre-emptive overload shed (implies degraded): the guard chose remote
  /// but admission pressure redirected the serve to the permitted
  /// degraded-local branch.
  bool shed = false;
  std::vector<InputOperandId> operands;

  // kAnswer.
  bool ok = false;
  int degrade_mode = 0;  // also kRoute: mode of the routed attempt
  SimTimeMs max_seen_heartbeat = -1;
  SimTimeMs degraded_staleness_ms = 0;
  int64_t rows = 0;
  std::vector<std::pair<SimTimeMs, std::vector<InputOperandId>>> tuples;
  std::string error;

  // kRoute.
  bool backend_tier = false;
  std::vector<RouteProbe> probes;
};

/// A seed-stamped, replayable execution history. Everything in it is virtual
/// time or logical state — no wall-clock, no pointers — so two runs of the
/// same seed produce byte-identical serializations (the determinism
/// regression rides on Digest()).
struct History {
  uint64_t seed = 0;
  std::vector<HistoryEvent> events;

  /// Line-based `rcc.history.v1` text form: one `key=value` token line per
  /// event, first line `rcc.history.v1 seed=<seed>`. Round-trips through
  /// Parse().
  std::string Serialize() const;

  /// Parses a Serialize()d history. Unknown line kinds or malformed tokens
  /// fail loudly — a history file is evidence, not best-effort input.
  static Result<History> Parse(const std::string& text);

  /// FNV-1a 64 over Serialize(): the run's identity for seed-stability
  /// checks.
  uint64_t Digest() const;
};

/// The HistorySink implementation: appends every observation to an in-memory
/// history under a mutex (queries of a concurrent batch report from worker
/// threads; commits, installs and health transitions only ever arrive from
/// the simulation thread).
class HistoryRecorder : public HistorySink {
 public:
  explicit HistoryRecorder(uint64_t seed) { history_.seed = seed; }

  uint64_t BeginQuery(SimTimeMs at) override;
  void OnGuardProbe(const GuardObservation& obs) override;
  void OnServe(const ServeObservation& obs) override;
  void OnAnswer(const AnswerObservation& obs) override;
  void OnCommit(const CommittedTxn& txn, SimTimeMs at) override;
  void OnInstall(const InstallObservation& obs) override;
  void OnHealth(RegionId region, RegionHealth from, RegionHealth to,
                SimTimeMs at, int node = 0) override;
  void OnRoute(const RouteObservation& obs) override;
  void OnSessionMode(uint64_t session, bool timeordered, SimTimeMs at) override;

  /// Copy of the history recorded so far.
  History Snapshot() const;

  size_t event_count() const;

 private:
  /// Stamps seq and appends under the lock.
  void Append(HistoryEvent ev);

  mutable std::mutex mutex_;
  History history_;
  uint64_t next_seq_ = 1;
  uint64_t next_query_ = 1;
};

}  // namespace sim
}  // namespace rcc

#endif  // RCC_SIM_HISTORY_H_
