#ifndef RCC_SERVER_CHAOS_H_
#define RCC_SERVER_CHAOS_H_

#include <cstdint>
#include <string_view>

#include "common/fault_config.h"
#include "common/status.h"

namespace rcc {
namespace server {

/// Seeded network-fault layer between RccClient and its socket. Every fault
/// decision is drawn from one deterministic PRNG stream, so a failing chaos
/// run is reproducible from its seed alone. The injector never corrupts
/// bytes — it only re-times and truncates syscalls (partial writes, short
/// reads, delays that force frame coalescing on the peer) or kills the
/// transport (mid-frame resets, connect refusals); the protocol layer above
/// must survive all of that with framing intact.
struct ChaosOptions {
  uint64_t seed = 0xFA17;
  /// Probability a connect() attempt is refused outright (simulated
  /// listener overload / SYN drop).
  double connect_refusal_prob = 0.0;
  /// Probability one send() is split at a random boundary (partial write).
  double partial_write_prob = 0.0;
  /// Probability a whole send() trickles out one byte at a time with a
  /// delay between bytes (slow-loris behaviour toward the server).
  double trickle_prob = 0.0;
  /// Probability one recv() is capped at a single byte (short read; the
  /// peer's frames arrive arbitrarily fragmented).
  double short_read_prob = 0.0;
  /// Probability an op is delayed first. Delays also coalesce frames: the
  /// peer's next read observes several frames in one buffer.
  double delay_prob = 0.0;
  int max_delay_us = 2000;
  /// Probability the connection is reset mid-send — possibly between the
  /// length prefix and the body of a frame.
  double reset_prob = 0.0;
  /// Scheduled outages (shared vocabulary with the replication fault
  /// layer). Connect attempts are mapped onto the schedule's timeline one
  /// tick per attempt, so outage windows hit deterministic attempt ranges.
  FaultScheduleConfig schedule;
  int64_t schedule_tick_ms = 10;
};

/// An aggressive everything-on mix for tests: every fault class enabled at
/// rates high enough that a few hundred requests exercise all of them.
ChaosOptions AggressiveChaosOptions(uint64_t seed);

class ChaosInjector {
 public:
  ChaosInjector() = default;
  explicit ChaosInjector(const ChaosOptions& opts);

  bool enabled() const { return enabled_; }

  /// True when this connect attempt should fail (refusal roll or scheduled
  /// outage window).
  bool RefuseConnect();

  /// Writes `bytes` fully, applying partial writes, trickle and resets.
  /// A simulated reset shuts the socket down and reports Unavailable.
  Status Send(int fd, std::string_view bytes);

  /// recv() with chaos: optional delay, optionally capped at one byte.
  /// Same return convention as recv(2).
  ssize_t Recv(int fd, char* buf, size_t len);

 private:
  uint64_t NextRand();
  bool Roll(double prob);
  void MaybeDelay();

  bool enabled_ = false;
  ChaosOptions opts_;
  uint64_t state_ = 0;
  int64_t connect_attempts_ = 0;
};

}  // namespace server
}  // namespace rcc

#endif  // RCC_SERVER_CHAOS_H_
