#ifndef RCC_SERVER_WIRE_H_
#define RCC_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "plan/expr.h"
#include "storage/schema.h"

namespace rcc {
namespace server {

/// The rcc.wire.v1 protocol (DESIGN.md §14): a stream of length-prefixed
/// binary frames, identical in both directions. All integers are
/// little-endian; doubles are IEEE-754 bit patterns.
///
///   frame := u32 len | u8 opcode | u32 seq | payload[len - 5]
///
/// `len` counts everything after the length field (opcode + seq + payload),
/// so the smallest legal frame has len == 5. `seq` is a client-chosen
/// request number; every response frame for that request echoes it, which is
/// what makes pipelining (several requests in flight on one connection)
/// unambiguous. A request's response frames are contiguous on the wire and
/// always end with one kStatus frame — the terminal frame carrying the full
/// Status (code + message) or the success summary.
constexpr uint16_t kProtocolVersion = 1;

/// Frames with len below this cannot carry opcode + seq.
constexpr uint32_t kMinFrameLen = 5;

enum class Opcode : uint8_t {
  // client -> server
  kHello = 0x01,    ///< u16 version, str client_name. Must be the first frame.
  kQuery = 0x02,    ///< str sql — one-shot statement (SELECT/DML/EXPLAIN/...).
  kPrepare = 0x03,  ///< str sql — register a statement, returns kPrepareOk.
  kExecute = 0x04,  ///< u32 stmt_id — run a prepared statement.
  kSet = 0x05,      ///< str "SET ..." — control frame, applied out-of-band.
  kGoodbye = 0x06,  ///< empty — flush pending responses, then close.
  /// u32 deadline_ms, str sql — kQuery with a per-request deadline carried
  /// in-band. The budget starts at server-side admission (enqueue), so queue
  /// wait counts against it; 0 means "no per-request override" and falls
  /// back to SET DEADLINE / the server default.
  kQueryDeadline = 0x07,
  // server -> client
  kHelloOk = 0x81,     ///< u16 version, u64 session_id, str banner.
  kRowsHeader = 0x82,  ///< u32 ncols, ncols x { str name, u8 value_type }.
  kRows = 0x83,        ///< u32 nrows, nrows x row (tagged values).
  kStatus = 0x84,      ///< terminal status (see StatusFramePayload).
  kPrepareOk = 0x85,   ///< u32 stmt_id.
};

/// True for opcodes a client may send.
bool IsClientOpcode(uint8_t op);

/// One decoded frame.
struct Frame {
  Opcode op = Opcode::kStatus;
  uint32_t seq = 0;
  std::string payload;
};

/// Payload of the terminal kStatus frame: the operation status (the
/// Result<QueryResult> error chain collapses to code + message) plus the
/// success-side summary fields a client needs without parsing rows.
struct StatusFramePayload {
  uint16_t code = 0;  ///< StatusCode of the operation (0 == OK).
  std::string message;
  bool degraded = false;
  int64_t staleness_ms = 0;
  int64_t rows_affected = 0;
  int64_t executed_at = 0;
  /// StaleOk advisory text ("" when none) — paper §1's "data plus error
  /// code" contract survives the wire.
  std::string advisory;

  bool ok() const { return code == 0; }
};

// -- byte-level writers ------------------------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU16(std::string* out, uint16_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI64(std::string* out, int64_t v);
void PutF64(std::string* out, double v);
/// u32 length + raw bytes.
void PutStr(std::string* out, std::string_view s);

/// Appends one whole frame (length prefix included) to `out`.
void AppendFrame(std::string* out, Opcode op, uint32_t seq,
                 std::string_view payload);

// -- byte-level reader -------------------------------------------------------

/// Cursor over a payload. Every getter returns false (and poisons the
/// reader) on underrun, so decoders end with one `ok()` check.
class WireReader {
 public:
  explicit WireReader(std::string_view buf) : buf_(buf) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool I64(int64_t* v);
  bool F64(double* v);
  bool Str(std::string* v);

  bool ok() const { return ok_; }
  bool AtEnd() const { return pos_ == buf_.size(); }

 private:
  bool Take(size_t n, const char** p);
  std::string_view buf_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// -- frame assembly ----------------------------------------------------------

/// Incremental frame parser fed from a socket. Shared by the server's
/// connection reader and the blocking client.
class FrameDecoder {
 public:
  explicit FrameDecoder(size_t max_frame_bytes) : max_(max_frame_bytes) {}

  void Feed(const char* data, size_t n) { buf_.append(data, n); }

  enum class Next {
    kFrame,     ///< *out holds the next complete frame
    kNeedMore,  ///< no complete frame buffered yet
    kError,     ///< protocol violation (oversized/undersized length prefix)
  };

  /// Pops the next complete frame. On kError, `*error` describes the
  /// violation; the stream is unrecoverable (framing is lost).
  Next Pop(Frame* out, std::string* error);

  size_t buffered_bytes() const { return buf_.size() - consumed_; }

 private:
  size_t max_;
  std::string buf_;
  size_t consumed_ = 0;
};

// -- typed payload encode/decode --------------------------------------------

std::string EncodeHelloPayload(uint16_t version, std::string_view client_name);
Status DecodeHelloPayload(std::string_view payload, uint16_t* version,
                          std::string* client_name);

std::string EncodeHelloOkPayload(uint16_t version, uint64_t session_id,
                                 std::string_view banner);
Status DecodeHelloOkPayload(std::string_view payload, uint16_t* version,
                            uint64_t* session_id, std::string* banner);

/// Column names and value types of a result set.
std::string EncodeRowsHeaderPayload(const RowLayout& layout);
Status DecodeRowsHeaderPayload(std::string_view payload,
                               std::vector<std::string>* names,
                               std::vector<uint8_t>* types);

/// Encodes rows [begin, end) of `rows` as one kRows payload. Values are
/// tagged with their ValueType, so heterogeneous columns survive.
std::string EncodeRowsPayload(const std::vector<Row>& rows, size_t begin,
                              size_t end);
Status DecodeRowsPayload(std::string_view payload, std::vector<Row>* rows);

std::string EncodeStatusPayload(const StatusFramePayload& status);
Status DecodeStatusPayload(std::string_view payload, StatusFramePayload* out);

std::string EncodeQueryDeadlinePayload(uint32_t deadline_ms,
                                       std::string_view sql);
Status DecodeQueryDeadlinePayload(std::string_view payload,
                                  uint32_t* deadline_ms, std::string* sql);

}  // namespace server
}  // namespace rcc

#endif  // RCC_SERVER_WIRE_H_
