#include "server/server.h"

#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <sys/ioctl.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>

#include "common/strings.h"

namespace rcc {
namespace server {

namespace {

/// How many rows one kRows frame carries. Chunking keeps any single frame
/// far below max_frame_bytes and lets slow clients stream large results.
constexpr size_t kRowsPerFrame = 256;

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

/// First keyword of a statement, lower-cased ASCII.
std::string FirstWord(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() &&
         std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < sql.size() &&
         (std::isalnum(static_cast<unsigned char>(sql[j])) || sql[j] == '_')) {
    ++j;
  }
  return ToLower(std::string_view(sql).substr(i, j - i));
}

/// DML mutates the back-end master tables that remote branches scan, so it
/// needs the engine exclusively; everything else shares.
bool NeedsExclusiveEngine(const std::string& first_word) {
  return first_word == "insert" || first_word == "update" ||
         first_word == "delete";
}

StatusFramePayload StatusFromResult(const Result<QueryResult>& result) {
  StatusFramePayload out;
  if (!result.ok()) {
    out.code = static_cast<uint16_t>(result.status().code());
    out.message = result.status().message();
    return out;
  }
  const QueryResult& qr = *result;
  out.message = qr.message;
  out.degraded = qr.degraded;
  out.staleness_ms = qr.staleness_ms;
  out.rows_affected = qr.rows_affected;
  out.executed_at = qr.executed_at;
  if (!qr.advisory.ok()) out.advisory = qr.advisory.ToString();
  return out;
}

}  // namespace

/// Per-connection state. The event loop owns the socket and read side; the
/// write queue is shared with workers under `mu`. The Session is used by one
/// worker at a time per statement, but pipelined statements of one
/// connection may overlap — which is exactly the interleaving the Session's
/// atomic control state is specified for.
struct RccServer::Connection {
  explicit Connection(size_t max_frame_bytes) : decoder(max_frame_bytes) {}

  int fd = -1;
  uint64_t id = 0;
  FrameDecoder decoder;
  std::unique_ptr<Session> session;
  bool hello_done = false;

  /// Prepared statements: id -> SQL text. Executing re-enters through the
  /// plan cache, whose L1 exact-text tier makes re-execution skip even the
  /// lexer. Guarded by `mu` (kPrepare runs on a worker).
  std::map<uint32_t, std::string> prepared;
  uint32_t next_stmt_id = 1;

  std::mutex mu;
  std::condition_variable write_cv;
  std::deque<std::string> outq;
  size_t outq_bytes = 0;
  size_t front_offset = 0;
  /// Close once outq flushes (goodbye or protocol error).
  bool close_after_flush = false;

  std::atomic<bool> closed{false};
  std::atomic<int> in_flight{0};
  /// Event-loop-only: whether EPOLLOUT is currently registered.
  bool epollout_armed = false;
};

RccServer::RccServer(RccSystem* system, ServerOptions options)
    : system_(system), opts_(std::move(options)) {}

RccServer::~RccServer() { Stop(); }

Status RccServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::AlreadyExists("server already running");
  }
  stopping_.store(false, std::memory_order_release);

  // Listening socket: UDS when a path is given, loopback TCP otherwise.
  if (!opts_.uds_path.empty()) {
    sockaddr_un addr{};
    if (opts_.uds_path.size() >= sizeof(addr.sun_path)) {
      return Status::InvalidArgument("uds path too long: " + opts_.uds_path);
    }
    listen_fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
    unlink(opts_.uds_path.c_str());
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, opts_.uds_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status st = Status::Internal("bind " + opts_.uds_path + ": " +
                                   strerror(errno));
      close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
  } else {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
    int one = 1;
    setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(opts_.port);
    if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      Status st = Status::Internal("bind port " + std::to_string(opts_.port) +
                                   ": " + strerror(errno));
      close(listen_fd_);
      listen_fd_ = -1;
      return st;
    }
    sockaddr_in bound{};
    socklen_t blen = sizeof(bound);
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
    bound_port_ = ntohs(bound.sin_port);
  }
  if (listen(listen_fd_, 4096) != 0 || !SetNonBlocking(listen_fd_)) {
    Status st = Status::Internal("listen: " + std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }

  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  if (epoll_fd_ < 0 || wake_fd_ < 0) {
    if (epoll_fd_ >= 0) close(epoll_fd_);
    if (wake_fd_ >= 0) close(wake_fd_);
    close(listen_fd_);
    listen_fd_ = epoll_fd_ = wake_fd_ = -1;
    return Status::Internal("epoll/eventfd setup failed");
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);

  // Instruments (stable pointers; recording is lock-free afterwards).
  obs::MetricsRegistry& m = system_->metrics();
  inst_.connections_total = m.counter("rcc.server.connections_total");
  inst_.frames_rx = m.counter("rcc.server.frames_rx");
  inst_.frames_tx = m.counter("rcc.server.frames_tx");
  inst_.bytes_rx = m.counter("rcc.server.bytes_rx");
  inst_.bytes_tx = m.counter("rcc.server.bytes_tx");
  inst_.queries = m.counter("rcc.server.queries");
  inst_.prepares = m.counter("rcc.server.prepares");
  inst_.executes = m.counter("rcc.server.executes");
  inst_.sets = m.counter("rcc.server.sets");
  inst_.protocol_errors = m.counter("rcc.server.protocol_errors");
  inst_.accept_rejected = m.counter("rcc.server.accept_rejected");
  inst_.backpressure_stalls = m.counter("rcc.server.backpressure_stalls");
  inst_.dropped_responses = m.counter("rcc.server.dropped_responses");
  inst_.overload_rejected = m.counter("rcc.server.overload_rejected");
  inst_.deadline_timeouts = m.counter("rcc.server.deadline_timeouts");
  inst_.shed_statements = m.counter("rcc.server.shed_statements");
  inst_.connections_open = m.gauge("rcc.server.connections_open");
  inst_.in_flight = m.gauge("rcc.server.in_flight");
  inst_.statement_ms = m.histogram("rcc.server.statement_ms");
  inst_.queue_delay_ms = m.histogram("rcc.server.queue_delay_ms");

  // The engine serves every connection under the concurrent-batch contract:
  // frozen virtual clock, epoch-pinned snapshot reads, serialized remote
  // channel. Nested Begin/End (e.g. a Session::ExecuteBatch dispatched by a
  // driver) must not unfreeze the server, hence the counted semantics.
  system_->cache()->BeginConcurrentBatch();

  int workers = opts_.workers > 0 ? opts_.workers : ThreadPool::DefaultWorkers();
  pool_ = std::make_unique<ThreadPool>(workers);
  // Admission defaults to a small multiple of the worker count: deep enough
  // to absorb bursts, shallow enough that queue delay stays bounded by a
  // few statement times rather than growing without limit.
  admission_limit_ =
      opts_.admission_limit > 0 ? opts_.admission_limit : workers * 16;
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void RccServer::Stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  stopping_.store(true, std::memory_order_release);
  WakeLoop();

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(opts_.drain_timeout_ms);

  // Phase 1: let dispatched statements finish (their responses enqueue).
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_until(lock, deadline, [this] {
      return in_flight_.load(std::memory_order_acquire) == 0;
    });
  }
  // Phase 2: the event loop keeps flushing write queues; it exits once every
  // queue is empty (or the deadline passes), closing all sockets.
  {
    std::unique_lock<std::mutex> lock(drain_mu_);
    drain_cv_.wait_until(lock, deadline, [this] {
      return !running_.load(std::memory_order_acquire);
    });
  }
  running_.store(false, std::memory_order_release);
  WakeLoop();
  if (io_thread_.joinable()) io_thread_.join();

  // Workers are idle (in_flight drained) or blocked on closed connections;
  // Shutdown drains deterministically — queued tasks run, they observe
  // closed connections and drop their responses.
  if (pool_ != nullptr) {
    pool_->Shutdown();
    pool_.reset();
  }

  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  if (wake_fd_ >= 0) close(wake_fd_);
  listen_fd_ = epoll_fd_ = wake_fd_ = -1;
  if (!opts_.uds_path.empty()) unlink(opts_.uds_path.c_str());

  system_->cache()->EndConcurrentBatch();
}

void RccServer::AdvanceVirtualTime(SimTimeMs delta) {
  // Exclusive engine access quiesces every in-flight statement; the
  // scheduler and clock are then safe to run single-threaded.
  std::unique_lock<std::shared_mutex> lock(engine_mu_);
  system_->cache()->EndConcurrentBatch();
  system_->AdvanceBy(delta);
  system_->cache()->BeginConcurrentBatch();
}

void RccServer::WakeLoop() {
  if (wake_fd_ >= 0) {
    uint64_t one = 1;
    ssize_t ignored = write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

void RccServer::NotifyWritable(const std::shared_ptr<Connection>& conn) {
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    pending_writable_.push_back(conn);
  }
  WakeLoop();
}

void RccServer::EventLoop() {
  std::vector<epoll_event> events(256);
  bool draining = false;
  for (;;) {
    // Stop() flips running_ off once the drain deadline passes — force exit.
    if (!running_.load(std::memory_order_acquire)) break;
    if (stopping_.load(std::memory_order_acquire) && !draining) {
      // Stop accepting; existing queues keep flushing below.
      if (listen_fd_ >= 0) {
        epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, listen_fd_, nullptr);
      }
      draining = true;
    }
    if (draining) {
      bool all_flushed = in_flight_.load(std::memory_order_acquire) == 0;
      if (all_flushed) {
        for (auto& [fd, conn] : conns_) {
          // Requests a client sent before we stopped accepting may still sit
          // unread in the socket buffer (level-triggered EPOLLIN will hand
          // them to us next iteration) — closing now would RST them away.
          int unread = 0;
          if (ioctl(fd, FIONREAD, &unread) == 0 && unread > 0) {
            all_flushed = false;
            break;
          }
          std::lock_guard<std::mutex> lock(conn->mu);
          if (!conn->outq.empty()) {
            all_flushed = false;
            break;
          }
        }
      }
      if (all_flushed) break;
    }

    int n = epoll_wait(epoll_fd_, events.data(),
                       static_cast<int>(events.size()), 50);
    if (n < 0 && errno != EINTR) break;

    // Arm EPOLLOUT for connections workers just wrote to.
    std::vector<std::shared_ptr<Connection>> writable;
    {
      std::lock_guard<std::mutex> lock(pending_mu_);
      writable.swap(pending_writable_);
    }
    for (const auto& conn : writable) {
      if (conn->closed.load(std::memory_order_acquire)) continue;
      // Try an eager flush first; only arm EPOLLOUT when the socket is full.
      HandleWritable(conn);
    }

    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        uint64_t junk;
        while (read(wake_fd_, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      if (fd == listen_fd_) {
        HandleAccept();
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      std::shared_ptr<Connection> conn = it->second;
      if (events[i].events & (EPOLLHUP | EPOLLERR)) {
        CloseConnection(conn);
        continue;
      }
      if (events[i].events & EPOLLOUT) HandleWritable(conn);
      if (events[i].events & EPOLLIN) HandleReadable(conn);
    }
  }

  // Loop exit: force-close every connection (queues are flushed or the
  // drain deadline passed and Stop() re-woke us with running_ false).
  std::vector<std::shared_ptr<Connection>> leftover;
  leftover.reserve(conns_.size());
  for (auto& [fd, conn] : conns_) leftover.push_back(conn);
  for (const auto& conn : leftover) CloseConnection(conn);
  {
    std::lock_guard<std::mutex> lock(drain_mu_);
    running_.store(false, std::memory_order_release);
  }
  drain_cv_.notify_all();
}

void RccServer::HandleAccept() {
  for (;;) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: back to epoll
    if (static_cast<int>(conns_.size()) >= opts_.max_connections ||
        stopping_.load(std::memory_order_acquire)) {
      inst_.accept_rejected->Add();
      close(fd);
      continue;
    }
    SetNonBlocking(fd);
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>(opts_.max_frame_bytes);
    conn->fd = fd;
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conns_[fd] = conn;
    connections_open_.fetch_add(1, std::memory_order_relaxed);
    inst_.connections_total->Add();
    inst_.connections_open->Set(static_cast<double>(conns_.size()));
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
  }
}

void RccServer::HandleReadable(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  char buf[64 * 1024];
  for (;;) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      inst_.bytes_rx->Add(n);
      conn->decoder.Feed(buf, static_cast<size_t>(n));
      if (static_cast<ssize_t>(sizeof(buf)) > n) break;  // drained socket
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Peer closed (or hard error) — possibly mid-frame or with statements
    // still in flight; workers notice via conn->closed and drop responses.
    CloseConnection(conn);
    return;
  }
  DrainFrames(conn);
}

void RccServer::DrainFrames(const std::shared_ptr<Connection>& conn) {
  for (;;) {
    if (conn->closed.load(std::memory_order_acquire)) return;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->close_after_flush) return;  // error already sent; drop rest
    }
    Frame frame;
    std::string error;
    FrameDecoder::Next next = conn->decoder.Pop(&frame, &error);
    if (next == FrameDecoder::Next::kNeedMore) return;
    if (next == FrameDecoder::Next::kError) {
      ProtocolError(conn, 0, error);
      return;
    }
    inst_.frames_rx->Add();
    DispatchFrame(conn, std::move(frame));
  }
}

void RccServer::DispatchFrame(const std::shared_ptr<Connection>& conn,
                              Frame frame) {
  if (!IsClientOpcode(static_cast<uint8_t>(frame.op))) {
    ProtocolError(conn, frame.seq,
                  "unknown opcode " +
                      std::to_string(static_cast<unsigned>(frame.op)));
    return;
  }
  if (!conn->hello_done && frame.op != Opcode::kHello) {
    ProtocolError(conn, frame.seq, "first frame must be HELLO");
    return;
  }
  switch (frame.op) {
    case Opcode::kHello: {
      if (conn->hello_done) {
        ProtocolError(conn, frame.seq, "duplicate HELLO");
        return;
      }
      uint16_t version;
      std::string client_name;
      Status st = DecodeHelloPayload(frame.payload, &version, &client_name);
      if (!st.ok()) {
        ProtocolError(conn, frame.seq, st.message());
        return;
      }
      if (version != kProtocolVersion) {
        ProtocolError(conn, frame.seq,
                      "unsupported protocol version " +
                          std::to_string(version));
        return;
      }
      conn->session = system_->CreateSession();
      if (router_ != nullptr) conn->session->set_router(router_);
      conn->hello_done = true;
      std::string out;
      AppendFrame(&out, Opcode::kHelloOk, frame.seq,
                  EncodeHelloOkPayload(kProtocolVersion, conn->session->id(),
                                       "rcc-server/1 (relaxed C&C cache)"));
      if (EnqueueDirect(conn, std::move(out))) inst_.frames_tx->Add();
      return;
    }
    case Opcode::kSet: {
      // Control frames are applied inline on the event loop — out-of-band
      // of any queued or in-flight statements of this connection, which is
      // the interleaving Session's atomic control state exists for. Only
      // SET is allowed here; statements must use kQuery.
      if (FirstWord(frame.payload) != "set") {
        ProtocolError(conn, frame.seq, "SET frame must carry a SET statement");
        return;
      }
      inst_.sets->Add();
      std::shared_lock<std::shared_mutex> engine(engine_mu_);
      Result<QueryResult> result = conn->session->Execute(frame.payload);
      engine.unlock();
      SendStatus(conn, frame.seq, StatusFromResult(result));
      return;
    }
    case Opcode::kQuery:
    case Opcode::kQueryDeadline:
    case Opcode::kExecute: {
      std::string sql;
      int64_t deadline_ms = 0;
      if (frame.op == Opcode::kExecute) {
        uint32_t stmt_id;
        WireReader r(frame.payload);
        if (!r.U32(&stmt_id) || !r.AtEnd()) {
          ProtocolError(conn, frame.seq, "malformed EXECUTE payload");
          return;
        }
        bool found = false;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          auto it = conn->prepared.find(stmt_id);
          if (it != conn->prepared.end()) {
            sql = it->second;
            found = true;
          }
        }
        if (!found) {
          StatusFramePayload status;
          status.code = static_cast<uint16_t>(StatusCode::kNotFound);
          status.message =
              "unknown prepared statement id " + std::to_string(stmt_id);
          SendStatus(conn, frame.seq, status);
          return;
        }
        inst_.executes->Add();
      } else if (frame.op == Opcode::kQueryDeadline) {
        uint32_t wire_deadline = 0;
        Status st =
            DecodeQueryDeadlinePayload(frame.payload, &wire_deadline, &sql);
        if (!st.ok()) {
          ProtocolError(conn, frame.seq, st.message());
          return;
        }
        deadline_ms = wire_deadline;
        inst_.queries->Add();
      } else {
        sql = std::move(frame.payload);
        inst_.queries->Add();
      }
      // Admission control: past the limit, answer Overloaded right here on
      // the event loop — a structured, retryable refusal, not a disconnect.
      // Cheaper for both sides than queueing work that the queue-delay check
      // would refuse at pickup anyway.
      if (in_flight_.load(std::memory_order_acquire) >= admission_limit_) {
        inst_.overload_rejected->Add();
        StatusFramePayload status;
        status.code = static_cast<uint16_t>(StatusCode::kOverloaded);
        status.message = "admission queue full (" +
                         std::to_string(admission_limit_) +
                         " statements in flight); retry after backoff";
        SendStatus(conn, frame.seq, status);
        return;
      }
      conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      inst_.in_flight->Set(in_flight_.load(std::memory_order_relaxed));
      uint32_t seq = frame.seq;
      auto enqueued_at = std::chrono::steady_clock::now();
      bool accepted = pool_->Submit([this, conn, seq, deadline_ms, enqueued_at,
                                     sql = std::move(sql)]() mutable {
        RunStatement(conn, seq, std::move(sql), deadline_ms, enqueued_at);
      });
      if (!accepted) {
        conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        StatusFramePayload status;
        status.code = static_cast<uint16_t>(StatusCode::kUnavailable);
        status.message = "server shutting down";
        SendStatus(conn, seq, status);
      }
      return;
    }
    case Opcode::kPrepare: {
      inst_.prepares->Add();
      conn->in_flight.fetch_add(1, std::memory_order_acq_rel);
      in_flight_.fetch_add(1, std::memory_order_acq_rel);
      uint32_t seq = frame.seq;
      bool accepted =
          pool_->Submit([this, conn, seq, sql = std::move(frame.payload)] {
            RunPrepare(conn, seq, sql);
          });
      if (!accepted) {
        conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        StatusFramePayload status;
        status.code = static_cast<uint16_t>(StatusCode::kUnavailable);
        status.message = "server shutting down";
        SendStatus(conn, seq, status);
      }
      return;
    }
    case Opcode::kGoodbye: {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->close_after_flush = true;
      NotifyWritable(conn);
      return;
    }
    default:
      ProtocolError(conn, frame.seq, "server-side opcode from client");
      return;
  }
}

void RccServer::RunStatement(
    const std::shared_ptr<Connection>& conn, uint32_t seq, std::string sql,
    int64_t deadline_ms, std::chrono::steady_clock::time_point enqueued_at) {
  auto t0 = std::chrono::steady_clock::now();
  const int64_t queue_delay_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(t0 - enqueued_at)
          .count();
  inst_.queue_delay_ms->Observe(static_cast<double>(queue_delay_ms));

  // Second admission gate, at pickup: a statement that waited past the
  // queue-delay bound is refused rather than executed — running it now only
  // deepens the backlog that delayed it, and its client has likely timed
  // out or retried already. Same structured, retryable refusal as at
  // dispatch; the connection stays open.
  if (opts_.max_queue_delay_ms > 0 &&
      queue_delay_ms > opts_.max_queue_delay_ms) {
    inst_.overload_rejected->Add();
    StatusFramePayload status;
    status.code = static_cast<uint16_t>(StatusCode::kOverloaded);
    status.message = "admission queue delay " +
                     std::to_string(queue_delay_ms) + "ms exceeds " +
                     std::to_string(opts_.max_queue_delay_ms) +
                     "ms; retry after backoff";
    std::string out;
    AppendFrame(&out, Opcode::kStatus, seq, EncodeStatusPayload(status));
    if (EnqueueResponse(conn, std::move(out))) {
      inst_.frames_tx->Add();
    } else {
      inst_.dropped_responses->Add();
    }
    FinishStatement(conn);
    inst_.in_flight->Set(in_flight_.load(std::memory_order_relaxed));
    return;
  }

  Session::StatementOptions sopts;
  sopts.enqueued_at = enqueued_at;
  sopts.deadline_ms = deadline_ms;
  sopts.default_deadline_ms = opts_.default_deadline_ms;
  // C&C-aware shedding: under queue pressure, ask the executor to prefer
  // the degraded-local branch — it serves only when the statement's
  // currency bound and timeline floor permit (guard semantics intact),
  // trading an authorized bounded-staleness answer for a remote round-trip.
  sopts.shed_hint = opts_.shed_queue_delay_ms > 0 &&
                    queue_delay_ms > opts_.shed_queue_delay_ms;

  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    if (conn->closed.load(std::memory_order_acquire)) {
      return Status::Unavailable("connection closed");
    }
    if (NeedsExclusiveEngine(FirstWord(sql))) {
      std::unique_lock<std::shared_mutex> engine(engine_mu_);
      return conn->session->Execute(sql, sopts);
    }
    std::shared_lock<std::shared_mutex> engine(engine_mu_);
    return conn->session->Execute(sql, sopts);
  }();
  inst_.statement_ms->Observe(
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - t0)
          .count());
  if (result.ok()) {
    if (result->stats.shed_serves > 0) inst_.shed_statements->Add();
  } else if (result.status().IsDeadlineExceeded()) {
    inst_.deadline_timeouts->Add();
  }

  // Serialize the whole response as one contiguous chunk: header, row
  // frames, terminal status. Contiguity per request keeps pipelined
  // responses of one connection from interleaving.
  std::string out;
  size_t frames = 0;
  if (result.ok() && !result->layout.slots().empty()) {
    AppendFrame(&out, Opcode::kRowsHeader, seq,
                EncodeRowsHeaderPayload(result->layout));
    ++frames;
    const std::vector<Row>& rows = result->rows;
    for (size_t i = 0; i < rows.size(); i += kRowsPerFrame) {
      size_t end = std::min(rows.size(), i + kRowsPerFrame);
      AppendFrame(&out, Opcode::kRows, seq, EncodeRowsPayload(rows, i, end));
      ++frames;
    }
  }
  AppendFrame(&out, Opcode::kStatus, seq,
              EncodeStatusPayload(StatusFromResult(result)));
  ++frames;
  if (EnqueueResponse(conn, std::move(out))) {
    inst_.frames_tx->Add(static_cast<int64_t>(frames));
  } else {
    inst_.dropped_responses->Add();
  }

  FinishStatement(conn);
  inst_.in_flight->Set(in_flight_.load(std::memory_order_relaxed));
}

/// Decrements both in-flight counters and re-notifies the event loop when
/// the connection is waiting to close-after-flush (the close condition
/// includes in_flight == 0, and nothing else would re-trigger it).
void RccServer::FinishStatement(const std::shared_ptr<Connection>& conn) {
  conn->in_flight.fetch_sub(1, std::memory_order_acq_rel);
  if (in_flight_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
  // Checked strictly after the decrement: a goodbye processed in between
  // sees in_flight > 0 and skips closing, so the notify below is the only
  // close trigger left and must not be missed.
  bool flush_close = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    flush_close = conn->close_after_flush;
  }
  if (flush_close) NotifyWritable(conn);
}

void RccServer::RunPrepare(const std::shared_ptr<Connection>& conn,
                           uint32_t seq, std::string sql) {
  StatusFramePayload status;
  uint32_t stmt_id = 0;
  {
    std::shared_lock<std::shared_mutex> engine(engine_mu_);
    // Prepared statements are SELECT-shaped (Session::Prepare contract);
    // validation here means kExecute can only fail at run time for
    // engine-side reasons, never parse errors.
    Result<QueryPlan> plan = conn->session->Prepare(sql);
    if (!plan.ok()) {
      status.code = static_cast<uint16_t>(plan.status().code());
      status.message = plan.status().message();
    }
  }
  std::string out;
  if (status.ok()) {
    std::lock_guard<std::mutex> lock(conn->mu);
    stmt_id = conn->next_stmt_id++;
    conn->prepared[stmt_id] = std::move(sql);
    std::string payload;
    PutU32(&payload, stmt_id);
    AppendFrame(&out, Opcode::kPrepareOk, seq, payload);
  } else {
    AppendFrame(&out, Opcode::kStatus, seq, EncodeStatusPayload(status));
  }
  if (EnqueueResponse(conn, std::move(out))) {
    inst_.frames_tx->Add();
  } else {
    inst_.dropped_responses->Add();
  }
  FinishStatement(conn);
}

bool RccServer::EnqueueResponse(const std::shared_ptr<Connection>& conn,
                                std::string bytes) {
  std::unique_lock<std::mutex> lock(conn->mu);
  // Backpressure: a response that would overflow the queue waits for the
  // client to drain. An empty queue always accepts (a single response may
  // legitimately exceed the bound; it streams out in socket-sized pieces).
  bool stalled = false;
  while (!conn->closed.load(std::memory_order_acquire) &&
         conn->outq_bytes > 0 &&
         conn->outq_bytes + bytes.size() > opts_.max_write_queue_bytes) {
    if (!stalled) {
      stalled = true;
      inst_.backpressure_stalls->Add();
    }
    conn->write_cv.wait_for(lock, std::chrono::milliseconds(50));
  }
  if (conn->closed.load(std::memory_order_acquire)) return false;
  conn->outq_bytes += bytes.size();
  conn->outq.push_back(std::move(bytes));
  lock.unlock();
  NotifyWritable(conn);
  return true;
}

bool RccServer::EnqueueDirect(const std::shared_ptr<Connection>& conn,
                              std::string bytes) {
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed.load(std::memory_order_acquire)) return false;
    conn->outq_bytes += bytes.size();
    conn->outq.push_back(std::move(bytes));
    // A client pipelining control frames without ever reading responses
    // would grow this queue without bound (the event loop cannot block on
    // backpressure — it is the flusher). Past twice the configured bound the
    // client is abusive: flush what fits and hang up.
    if (conn->outq_bytes > opts_.max_write_queue_bytes * 2) {
      conn->close_after_flush = true;
    }
  }
  NotifyWritable(conn);
  return true;
}

void RccServer::SendStatus(const std::shared_ptr<Connection>& conn,
                           uint32_t seq, const StatusFramePayload& status) {
  std::string out;
  AppendFrame(&out, Opcode::kStatus, seq, EncodeStatusPayload(status));
  if (EnqueueDirect(conn, std::move(out))) inst_.frames_tx->Add();
}

void RccServer::ProtocolError(const std::shared_ptr<Connection>& conn,
                              uint32_t seq, const std::string& message) {
  inst_.protocol_errors->Add();
  StatusFramePayload status;
  status.code = static_cast<uint16_t>(StatusCode::kInvalidArgument);
  status.message = "protocol error: " + message;
  std::string out;
  AppendFrame(&out, Opcode::kStatus, seq, EncodeStatusPayload(status));
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closed.load(std::memory_order_acquire)) return;
    conn->outq_bytes += out.size();
    conn->outq.push_back(std::move(out));
    conn->close_after_flush = true;
  }
  inst_.frames_tx->Add();
  NotifyWritable(conn);
}

void RccServer::HandleWritable(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.load(std::memory_order_acquire)) return;
  bool want_more = false;
  bool close_now = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    while (!conn->outq.empty()) {
      const std::string& front = conn->outq.front();
      size_t remaining = front.size() - conn->front_offset;
      ssize_t n = send(conn->fd, front.data() + conn->front_offset, remaining,
                       MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          want_more = true;
        } else {
          close_now = true;  // broken pipe etc.
        }
        break;
      }
      inst_.bytes_tx->Add(n);
      conn->front_offset += static_cast<size_t>(n);
      if (conn->front_offset < front.size()) {
        want_more = true;  // short write: socket buffer full
        break;
      }
      conn->outq_bytes -= front.size();
      conn->front_offset = 0;
      conn->outq.pop_front();
    }
    // A flush-then-close (goodbye / protocol error) must also wait out this
    // connection's in-flight statements: their responses have not been
    // enqueued yet. Workers re-notify after their final decrement.
    if (conn->outq.empty() && conn->close_after_flush &&
        conn->in_flight.load(std::memory_order_acquire) == 0) {
      close_now = true;
    }
  }
  conn->write_cv.notify_all();
  if (close_now) {
    CloseConnection(conn);
    return;
  }
  if (want_more != conn->epollout_armed) {
    epoll_event ev{};
    ev.events = EPOLLIN | (want_more ? static_cast<uint32_t>(EPOLLOUT) : 0u);
    ev.data.fd = conn->fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev) == 0) {
      conn->epollout_armed = want_more;
    }
  }
}

void RccServer::CloseConnection(const std::shared_ptr<Connection>& conn) {
  if (conn->closed.exchange(true, std::memory_order_acq_rel)) return;
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  close(conn->fd);
  conns_.erase(conn->fd);
  connections_open_.fetch_sub(1, std::memory_order_relaxed);
  inst_.connections_open->Set(static_cast<double>(conns_.size()));
  // Unblock any worker waiting out backpressure on this connection; it will
  // observe closed and drop its response. The Session (and any prepared
  // statements) die with the last shared_ptr, i.e. after in-flight
  // statements complete — never under a running query.
  conn->write_cv.notify_all();
}

}  // namespace server
}  // namespace rcc
