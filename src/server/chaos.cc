#include "server/chaos.h"

#include <errno.h>
#include <sys/socket.h>

#include <chrono>
#include <cstring>
#include <thread>

namespace rcc {
namespace server {

ChaosOptions AggressiveChaosOptions(uint64_t seed) {
  ChaosOptions opts;
  opts.seed = seed;
  opts.connect_refusal_prob = 0.1;
  opts.partial_write_prob = 0.3;
  opts.trickle_prob = 0.05;
  opts.short_read_prob = 0.3;
  opts.delay_prob = 0.1;
  opts.max_delay_us = 500;
  opts.reset_prob = 0.02;
  return opts;
}

ChaosInjector::ChaosInjector(const ChaosOptions& opts)
    : enabled_(true), opts_(opts), state_(opts.seed) {}

uint64_t ChaosInjector::NextRand() {
  // splitmix64: tiny, seedable, plenty for fault rolls.
  state_ += 0x9e3779b97f4a7c15ull;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

bool ChaosInjector::Roll(double prob) {
  if (prob <= 0.0) return false;
  return static_cast<double>(NextRand() >> 11) * 0x1.0p-53 < prob;
}

void ChaosInjector::MaybeDelay() {
  if (!Roll(opts_.delay_prob) || opts_.max_delay_us <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(
      static_cast<int64_t>(NextRand() % static_cast<uint64_t>(
                                            opts_.max_delay_us) +
                           1)));
}

bool ChaosInjector::RefuseConnect() {
  if (!enabled_) return false;
  // Map attempts onto the outage schedule's timeline, one tick per attempt:
  // attempt k "happens at" k * tick ms, so every outage window covers a
  // deterministic, seed-independent range of attempts.
  int64_t at = connect_attempts_++ * opts_.schedule_tick_ms;
  if (InOutageAt(opts_.schedule, at)) return true;
  return Roll(opts_.connect_refusal_prob);
}

Status ChaosInjector::Send(int fd, std::string_view bytes) {
  size_t off = 0;
  const bool trickle = Roll(opts_.trickle_prob);
  while (off < bytes.size()) {
    if (Roll(opts_.reset_prob)) {
      // Mid-frame reset: the peer sees EOF at an arbitrary byte boundary —
      // possibly after the length prefix, before the body.
      shutdown(fd, SHUT_RDWR);
      return Status::Unavailable("chaos: connection reset mid-send after " +
                                 std::to_string(off) + " bytes");
    }
    MaybeDelay();
    size_t chunk = bytes.size() - off;
    if (trickle) {
      chunk = 1;
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    } else if (Roll(opts_.partial_write_prob)) {
      chunk = 1 + static_cast<size_t>(NextRand() % chunk);
    }
    ssize_t n = send(fd, bytes.data() + off, chunk, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("send: " + std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

ssize_t ChaosInjector::Recv(int fd, char* buf, size_t len) {
  MaybeDelay();
  size_t cap = len;
  if (Roll(opts_.short_read_prob)) cap = 1;
  return recv(fd, buf, cap, 0);
}

}  // namespace server
}  // namespace rcc
