#include "server/wire.h"

#include <cstring>

#include "storage/value.h"

namespace rcc {
namespace server {

bool IsClientOpcode(uint8_t op) {
  switch (static_cast<Opcode>(op)) {
    case Opcode::kHello:
    case Opcode::kQuery:
    case Opcode::kPrepare:
    case Opcode::kExecute:
    case Opcode::kSet:
    case Opcode::kGoodbye:
    case Opcode::kQueryDeadline:
      return true;
    default:
      return false;
  }
}

// -- writers -----------------------------------------------------------------

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU16(std::string* out, uint16_t v) {
  char b[2];
  std::memcpy(b, &v, 2);
  out->append(b, 2);
}

void PutU32(std::string* out, uint32_t v) {
  char b[4];
  std::memcpy(b, &v, 4);
  out->append(b, 4);
}

void PutU64(std::string* out, uint64_t v) {
  char b[8];
  std::memcpy(b, &v, 8);
  out->append(b, 8);
}

void PutI64(std::string* out, int64_t v) {
  PutU64(out, static_cast<uint64_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, 8);
  PutU64(out, bits);
}

void PutStr(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s.data(), s.size());
}

void AppendFrame(std::string* out, Opcode op, uint32_t seq,
                 std::string_view payload) {
  PutU32(out, static_cast<uint32_t>(kMinFrameLen + payload.size()));
  PutU8(out, static_cast<uint8_t>(op));
  PutU32(out, seq);
  out->append(payload.data(), payload.size());
}

// -- reader ------------------------------------------------------------------

bool WireReader::Take(size_t n, const char** p) {
  if (!ok_ || buf_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *p = buf_.data() + pos_;
  pos_ += n;
  return true;
}

bool WireReader::U8(uint8_t* v) {
  const char* p;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool WireReader::U16(uint16_t* v) {
  const char* p;
  if (!Take(2, &p)) return false;
  std::memcpy(v, p, 2);
  return true;
}

bool WireReader::U32(uint32_t* v) {
  const char* p;
  if (!Take(4, &p)) return false;
  std::memcpy(v, p, 4);
  return true;
}

bool WireReader::U64(uint64_t* v) {
  const char* p;
  if (!Take(8, &p)) return false;
  std::memcpy(v, p, 8);
  return true;
}

bool WireReader::I64(int64_t* v) {
  uint64_t u;
  if (!U64(&u)) return false;
  *v = static_cast<int64_t>(u);
  return true;
}

bool WireReader::F64(double* v) {
  uint64_t bits;
  if (!U64(&bits)) return false;
  std::memcpy(v, &bits, 8);
  return true;
}

bool WireReader::Str(std::string* v) {
  uint32_t n;
  if (!U32(&n)) return false;
  const char* p;
  if (!Take(n, &p)) return false;
  v->assign(p, n);
  return true;
}

// -- frame assembly ----------------------------------------------------------

FrameDecoder::Next FrameDecoder::Pop(Frame* out, std::string* error) {
  // Compact once the consumed prefix dominates the buffer, so a long-lived
  // connection does not grow its read buffer without bound.
  if (consumed_ > 0 && consumed_ * 2 >= buf_.size()) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
  const size_t avail = buf_.size() - consumed_;
  if (avail < 4) return Next::kNeedMore;
  uint32_t len;
  std::memcpy(&len, buf_.data() + consumed_, 4);
  if (len < kMinFrameLen) {
    *error = "frame length " + std::to_string(len) + " below minimum " +
             std::to_string(kMinFrameLen);
    return Next::kError;
  }
  if (len > max_) {
    *error = "frame length " + std::to_string(len) +
             " exceeds maximum frame size " + std::to_string(max_);
    return Next::kError;
  }
  if (avail - 4 < len) return Next::kNeedMore;
  const char* p = buf_.data() + consumed_ + 4;
  out->op = static_cast<Opcode>(static_cast<uint8_t>(p[0]));
  std::memcpy(&out->seq, p + 1, 4);
  out->payload.assign(p + 5, len - kMinFrameLen);
  consumed_ += 4 + static_cast<size_t>(len);
  return Next::kFrame;
}

// -- typed payloads ----------------------------------------------------------

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed ") + what +
                                 " payload");
}

void PutValue(std::string* out, const Value& v) {
  PutU8(out, static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      PutI64(out, v.AsInt());
      break;
    case ValueType::kDouble:
      PutF64(out, v.AsDouble());
      break;
    case ValueType::kString:
      PutStr(out, v.AsString());
      break;
  }
}

bool GetValue(WireReader* r, Value* out) {
  uint8_t tag;
  if (!r->U8(&tag)) return false;
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *out = Value::Null();
      return true;
    case ValueType::kInt64: {
      int64_t v;
      if (!r->I64(&v)) return false;
      *out = Value::Int(v);
      return true;
    }
    case ValueType::kDouble: {
      double v;
      if (!r->F64(&v)) return false;
      *out = Value::Double(v);
      return true;
    }
    case ValueType::kString: {
      std::string v;
      if (!r->Str(&v)) return false;
      *out = Value::Str(std::move(v));
      return true;
    }
  }
  return false;
}

}  // namespace

std::string EncodeHelloPayload(uint16_t version, std::string_view client_name) {
  std::string out;
  PutU16(&out, version);
  PutStr(&out, client_name);
  return out;
}

Status DecodeHelloPayload(std::string_view payload, uint16_t* version,
                          std::string* client_name) {
  WireReader r(payload);
  if (!r.U16(version) || !r.Str(client_name) || !r.AtEnd()) {
    return Malformed("hello");
  }
  return Status::OK();
}

std::string EncodeHelloOkPayload(uint16_t version, uint64_t session_id,
                                 std::string_view banner) {
  std::string out;
  PutU16(&out, version);
  PutU64(&out, session_id);
  PutStr(&out, banner);
  return out;
}

Status DecodeHelloOkPayload(std::string_view payload, uint16_t* version,
                            uint64_t* session_id, std::string* banner) {
  WireReader r(payload);
  if (!r.U16(version) || !r.U64(session_id) || !r.Str(banner) || !r.AtEnd()) {
    return Malformed("hello-ok");
  }
  return Status::OK();
}

std::string EncodeRowsHeaderPayload(const RowLayout& layout) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(layout.num_slots()));
  for (size_t i = 0; i < layout.num_slots(); ++i) {
    PutStr(&out, layout.schema().columns()[i].name);
    PutU8(&out, static_cast<uint8_t>(layout.schema().columns()[i].type));
  }
  return out;
}

Status DecodeRowsHeaderPayload(std::string_view payload,
                               std::vector<std::string>* names,
                               std::vector<uint8_t>* types) {
  WireReader r(payload);
  uint32_t n;
  if (!r.U32(&n)) return Malformed("rows-header");
  names->clear();
  types->clear();
  for (uint32_t i = 0; i < n; ++i) {
    std::string name;
    uint8_t type;
    if (!r.Str(&name) || !r.U8(&type)) return Malformed("rows-header");
    names->push_back(std::move(name));
    types->push_back(type);
  }
  if (!r.AtEnd()) return Malformed("rows-header");
  return Status::OK();
}

std::string EncodeRowsPayload(const std::vector<Row>& rows, size_t begin,
                              size_t end) {
  std::string out;
  PutU32(&out, static_cast<uint32_t>(end - begin));
  for (size_t i = begin; i < end; ++i) {
    PutU32(&out, static_cast<uint32_t>(rows[i].size()));
    for (const Value& v : rows[i]) PutValue(&out, v);
  }
  return out;
}

Status DecodeRowsPayload(std::string_view payload, std::vector<Row>* rows) {
  WireReader r(payload);
  uint32_t nrows;
  if (!r.U32(&nrows)) return Malformed("rows");
  for (uint32_t i = 0; i < nrows; ++i) {
    uint32_t ncols;
    if (!r.U32(&ncols)) return Malformed("rows");
    Row row;
    row.reserve(ncols);
    for (uint32_t c = 0; c < ncols; ++c) {
      Value v;
      if (!GetValue(&r, &v)) return Malformed("rows");
      row.push_back(std::move(v));
    }
    rows->push_back(std::move(row));
  }
  if (!r.AtEnd()) return Malformed("rows");
  return Status::OK();
}

std::string EncodeStatusPayload(const StatusFramePayload& status) {
  std::string out;
  PutU16(&out, status.code);
  PutU8(&out, status.degraded ? 1 : 0);
  PutI64(&out, status.staleness_ms);
  PutI64(&out, status.rows_affected);
  PutI64(&out, status.executed_at);
  PutStr(&out, status.message);
  PutStr(&out, status.advisory);
  return out;
}

Status DecodeStatusPayload(std::string_view payload, StatusFramePayload* out) {
  WireReader r(payload);
  uint8_t degraded;
  if (!r.U16(&out->code) || !r.U8(&degraded) || !r.I64(&out->staleness_ms) ||
      !r.I64(&out->rows_affected) || !r.I64(&out->executed_at) ||
      !r.Str(&out->message) || !r.Str(&out->advisory) || !r.AtEnd()) {
    return Malformed("status");
  }
  out->degraded = degraded != 0;
  return Status::OK();
}

std::string EncodeQueryDeadlinePayload(uint32_t deadline_ms,
                                       std::string_view sql) {
  std::string out;
  PutU32(&out, deadline_ms);
  PutStr(&out, sql);
  return out;
}

Status DecodeQueryDeadlinePayload(std::string_view payload,
                                  uint32_t* deadline_ms, std::string* sql) {
  WireReader r(payload);
  if (!r.U32(deadline_ms) || !r.Str(sql) || !r.AtEnd()) {
    return Malformed("query-deadline");
  }
  return Status::OK();
}

}  // namespace server
}  // namespace rcc
