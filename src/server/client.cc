#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "common/strings.h"

namespace rcc {
namespace server {

namespace {

/// First keyword of a statement, lower-cased ASCII (idempotence check for
/// QueryWithRetry).
std::string FirstKeyword(const std::string& sql) {
  size_t i = 0;
  while (i < sql.size() && std::isspace(static_cast<unsigned char>(sql[i]))) {
    ++i;
  }
  size_t j = i;
  while (j < sql.size() &&
         (std::isalnum(static_cast<unsigned char>(sql[j])) || sql[j] == '_')) {
    ++j;
  }
  return ToLower(std::string_view(sql).substr(i, j - i));
}

}  // namespace

RccClient::RccClient(RccClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_seq_(other.next_seq_),
      decoder_(std::move(other.decoder_)),
      chaos_(std::move(other.chaos_)),
      endpoint_(other.endpoint_),
      host_or_path_(std::move(other.host_or_path_)),
      port_(other.port_),
      hello_name_(std::move(other.hello_name_)),
      reconnects_(other.reconnects_),
      replays_(other.replays_) {}

RccClient& RccClient::operator=(RccClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_seq_ = other.next_seq_;
    decoder_ = std::move(other.decoder_);
    chaos_ = std::move(other.chaos_);
    endpoint_ = other.endpoint_;
    host_or_path_ = std::move(other.host_or_path_);
    port_ = other.port_;
    hello_name_ = std::move(other.hello_name_);
    reconnects_ = other.reconnects_;
    replays_ = other.replays_;
  }
  return *this;
}

Status RccClient::ConnectTcp(const std::string& host, uint16_t port) {
  Close();
  endpoint_ = Endpoint::kTcp;
  host_or_path_ = host;
  port_ = port;
  decoder_ = FrameDecoder(64u << 20);
  if (chaos_.enabled() && chaos_.RefuseConnect()) {
    return Status::Unavailable("chaos: connect refused");
  }
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Unavailable("connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status RccClient::ConnectUds(const std::string& path) {
  Close();
  endpoint_ = Endpoint::kUds;
  host_or_path_ = path;
  decoder_ = FrameDecoder(64u << 20);
  if (chaos_.enabled() && chaos_.RefuseConnect()) {
    return Status::Unavailable("chaos: connect refused");
  }
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("uds path too long: " + path);
  }
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st =
        Status::Unavailable("connect " + path + ": " + strerror(errno));
    Close();
    return st;
  }
  return Status::OK();
}

void RccClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status RccClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  if (chaos_.enabled()) return chaos_.Send(fd_, bytes);
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("send: " + std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RccClient::SendFrame(Opcode op, uint32_t seq,
                            std::string_view payload) {
  std::string out;
  AppendFrame(&out, op, seq, payload);
  return SendRaw(out);
}

Result<Frame> RccClient::ReadFrame() {
  if (fd_ < 0) return Status::Unavailable("not connected");
  char buf[64 * 1024];
  for (;;) {
    Frame frame;
    std::string error;
    switch (decoder_.Pop(&frame, &error)) {
      case FrameDecoder::Next::kFrame:
        return frame;
      case FrameDecoder::Next::kError:
        return Status::InvalidArgument("protocol error: " + error);
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    ssize_t n = chaos_.enabled() ? chaos_.Recv(fd_, buf, sizeof(buf))
                                 : recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::NotFound("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv: " + std::string(strerror(errno)));
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

Result<QueryResponse> RccClient::ReadResponse(uint32_t* seq_out) {
  QueryResponse resp;
  bool any = false;
  uint32_t seq = 0;
  for (;;) {
    RCC_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (any && frame.seq != seq) {
      // Responses are contiguous per request by protocol contract.
      return Status::Internal("interleaved response frames (seq " +
                              std::to_string(frame.seq) + " inside " +
                              std::to_string(seq) + ")");
    }
    seq = frame.seq;
    any = true;
    switch (frame.op) {
      case Opcode::kRowsHeader:
        RCC_RETURN_NOT_OK(DecodeRowsHeaderPayload(
            frame.payload, &resp.columns, &resp.column_types));
        break;
      case Opcode::kRows:
        RCC_RETURN_NOT_OK(DecodeRowsPayload(frame.payload, &resp.rows));
        break;
      case Opcode::kStatus:
        RCC_RETURN_NOT_OK(DecodeStatusPayload(frame.payload, &resp.status));
        if (seq_out != nullptr) *seq_out = seq;
        return resp;
      case Opcode::kPrepareOk: {
        // Surfaced through ReadResponse for uniformity: the id rides in
        // rows_affected.
        WireReader r(frame.payload);
        uint32_t id;
        if (!r.U32(&id) || !r.AtEnd()) {
          return Status::InvalidArgument("malformed PREPARE_OK");
        }
        resp.status.rows_affected = id;
        if (seq_out != nullptr) *seq_out = seq;
        return resp;
      }
      default:
        return Status::Internal("unexpected response opcode " +
                                std::to_string(static_cast<unsigned>(
                                    frame.op)));
    }
  }
}

Result<HelloReply> RccClient::Hello(const std::string& client_name) {
  hello_name_ = client_name;
  RCC_RETURN_NOT_OK(SendFrame(Opcode::kHello, NextSeq(),
                              EncodeHelloPayload(kProtocolVersion,
                                                 client_name)));
  RCC_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.op == Opcode::kStatus) {
    StatusFramePayload status;
    RCC_RETURN_NOT_OK(DecodeStatusPayload(frame.payload, &status));
    return Status(static_cast<StatusCode>(status.code), status.message);
  }
  if (frame.op != Opcode::kHelloOk) {
    return Status::Internal("expected HELLO_OK");
  }
  HelloReply reply;
  RCC_RETURN_NOT_OK(DecodeHelloOkPayload(frame.payload, &reply.version,
                                         &reply.session_id, &reply.banner));
  return reply;
}

Result<QueryResponse> RccClient::RoundTrip(Opcode op,
                                           std::string_view payload) {
  uint32_t seq = NextSeq();
  RCC_RETURN_NOT_OK(SendFrame(op, seq, payload));
  uint32_t got = 0;
  RCC_ASSIGN_OR_RETURN(QueryResponse resp, ReadResponse(&got));
  if (got != seq) {
    return Status::Internal("response for seq " + std::to_string(got) +
                            ", expected " + std::to_string(seq));
  }
  return resp;
}

Result<QueryResponse> RccClient::Query(const std::string& sql) {
  return RoundTrip(Opcode::kQuery, sql);
}

Result<QueryResponse> RccClient::QueryWithDeadline(const std::string& sql,
                                                   uint32_t deadline_ms) {
  return RoundTrip(Opcode::kQueryDeadline,
                   EncodeQueryDeadlinePayload(deadline_ms, sql));
}

Status RccClient::Reconnect() {
  Status st = endpoint_ == Endpoint::kTcp ? ConnectTcp(host_or_path_, port_)
                                          : ConnectUds(host_or_path_);
  if (!st.ok()) return st;
  if (!hello_name_.empty()) {
    Result<HelloReply> hello = Hello(hello_name_);
    if (!hello.ok()) {
      Close();
      return hello.status();
    }
  }
  ++reconnects_;
  return Status::OK();
}

Result<QueryResponse> RccClient::QueryWithRetry(const std::string& sql,
                                                const RetryOptions& retry) {
  const std::string keyword = FirstKeyword(sql);
  if (keyword != "select" && keyword != "explain") {
    return Status::InvalidArgument(
        "QueryWithRetry replays requests and requires an idempotent "
        "SELECT/EXPLAIN statement; got '" +
        keyword + "'");
  }
  if (endpoint_ == Endpoint::kNone) {
    return Status::Unavailable("never connected; nothing to redial");
  }
  Status last = Status::Unavailable("no attempts made");
  int backoff_ms = retry.base_backoff_ms;
  for (int attempt = 0; attempt < retry.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff_ms));
      backoff_ms = std::min(backoff_ms * 2, retry.max_backoff_ms);
    }
    if (!connected()) {
      Status rc = Reconnect();
      if (!rc.ok()) {
        last = rc;
        continue;
      }
      if (attempt > 0) ++replays_;
    } else if (attempt > 0) {
      // The previous attempt failed on a live fd (reset mid-exchange): the
      // stream's framing is unrecoverable, so redial before replaying.
      Status rc = Reconnect();
      if (!rc.ok()) {
        last = rc;
        continue;
      }
      ++replays_;
    }
    Result<QueryResponse> resp = Query(sql);
    // A well-formed error status (Overloaded, DeadlineExceeded, ...) is an
    // answer, not a transport failure — return it to the caller untouched.
    if (resp.ok()) return resp;
    last = resp.status();
    Close();
  }
  return last;
}

Result<QueryResponse> RccClient::Set(const std::string& stmt) {
  return RoundTrip(Opcode::kSet, stmt);
}

Result<uint32_t> RccClient::PrepareStmt(const std::string& sql) {
  RCC_ASSIGN_OR_RETURN(QueryResponse resp,
                       RoundTrip(Opcode::kPrepare, sql));
  if (!resp.ok()) {
    return Status(static_cast<StatusCode>(resp.status.code),
                  resp.status.message);
  }
  return static_cast<uint32_t>(resp.status.rows_affected);
}

Result<QueryResponse> RccClient::ExecuteStmt(uint32_t stmt_id) {
  std::string payload;
  PutU32(&payload, stmt_id);
  return RoundTrip(Opcode::kExecute, payload);
}

Status RccClient::Goodbye() {
  return SendFrame(Opcode::kGoodbye, NextSeq(), {});
}

}  // namespace server
}  // namespace rcc
