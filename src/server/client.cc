#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace rcc {
namespace server {

RccClient::RccClient(RccClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_seq_(other.next_seq_),
      decoder_(std::move(other.decoder_)) {}

RccClient& RccClient::operator=(RccClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    next_seq_ = other.next_seq_;
    decoder_ = std::move(other.decoder_);
  }
  return *this;
}

Status RccClient::ConnectTcp(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address: " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st = Status::Unavailable("connect " + host + ":" +
                                    std::to_string(port) + ": " +
                                    strerror(errno));
    Close();
    return st;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status RccClient::ConnectUds(const std::string& path) {
  Close();
  sockaddr_un addr{};
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("uds path too long: " + path);
  }
  fd_ = socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status st =
        Status::Unavailable("connect " + path + ": " + strerror(errno));
    Close();
    return st;
  }
  return Status::OK();
}

void RccClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status RccClient::SendRaw(std::string_view bytes) {
  if (fd_ < 0) return Status::Unavailable("not connected");
  size_t off = 0;
  while (off < bytes.size()) {
    ssize_t n =
        send(fd_, bytes.data() + off, bytes.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("send: " + std::string(strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Status RccClient::SendFrame(Opcode op, uint32_t seq,
                            std::string_view payload) {
  std::string out;
  AppendFrame(&out, op, seq, payload);
  return SendRaw(out);
}

Result<Frame> RccClient::ReadFrame() {
  if (fd_ < 0) return Status::Unavailable("not connected");
  char buf[64 * 1024];
  for (;;) {
    Frame frame;
    std::string error;
    switch (decoder_.Pop(&frame, &error)) {
      case FrameDecoder::Next::kFrame:
        return frame;
      case FrameDecoder::Next::kError:
        return Status::InvalidArgument("protocol error: " + error);
      case FrameDecoder::Next::kNeedMore:
        break;
    }
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::NotFound("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Unavailable("recv: " + std::string(strerror(errno)));
    }
    decoder_.Feed(buf, static_cast<size_t>(n));
  }
}

Result<QueryResponse> RccClient::ReadResponse(uint32_t* seq_out) {
  QueryResponse resp;
  bool any = false;
  uint32_t seq = 0;
  for (;;) {
    RCC_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
    if (any && frame.seq != seq) {
      // Responses are contiguous per request by protocol contract.
      return Status::Internal("interleaved response frames (seq " +
                              std::to_string(frame.seq) + " inside " +
                              std::to_string(seq) + ")");
    }
    seq = frame.seq;
    any = true;
    switch (frame.op) {
      case Opcode::kRowsHeader:
        RCC_RETURN_NOT_OK(DecodeRowsHeaderPayload(
            frame.payload, &resp.columns, &resp.column_types));
        break;
      case Opcode::kRows:
        RCC_RETURN_NOT_OK(DecodeRowsPayload(frame.payload, &resp.rows));
        break;
      case Opcode::kStatus:
        RCC_RETURN_NOT_OK(DecodeStatusPayload(frame.payload, &resp.status));
        if (seq_out != nullptr) *seq_out = seq;
        return resp;
      case Opcode::kPrepareOk: {
        // Surfaced through ReadResponse for uniformity: the id rides in
        // rows_affected.
        WireReader r(frame.payload);
        uint32_t id;
        if (!r.U32(&id) || !r.AtEnd()) {
          return Status::InvalidArgument("malformed PREPARE_OK");
        }
        resp.status.rows_affected = id;
        if (seq_out != nullptr) *seq_out = seq;
        return resp;
      }
      default:
        return Status::Internal("unexpected response opcode " +
                                std::to_string(static_cast<unsigned>(
                                    frame.op)));
    }
  }
}

Result<HelloReply> RccClient::Hello(const std::string& client_name) {
  RCC_RETURN_NOT_OK(SendFrame(Opcode::kHello, NextSeq(),
                              EncodeHelloPayload(kProtocolVersion,
                                                 client_name)));
  RCC_ASSIGN_OR_RETURN(Frame frame, ReadFrame());
  if (frame.op == Opcode::kStatus) {
    StatusFramePayload status;
    RCC_RETURN_NOT_OK(DecodeStatusPayload(frame.payload, &status));
    return Status(static_cast<StatusCode>(status.code), status.message);
  }
  if (frame.op != Opcode::kHelloOk) {
    return Status::Internal("expected HELLO_OK");
  }
  HelloReply reply;
  RCC_RETURN_NOT_OK(DecodeHelloOkPayload(frame.payload, &reply.version,
                                         &reply.session_id, &reply.banner));
  return reply;
}

Result<QueryResponse> RccClient::RoundTrip(Opcode op,
                                           std::string_view payload) {
  uint32_t seq = NextSeq();
  RCC_RETURN_NOT_OK(SendFrame(op, seq, payload));
  uint32_t got = 0;
  RCC_ASSIGN_OR_RETURN(QueryResponse resp, ReadResponse(&got));
  if (got != seq) {
    return Status::Internal("response for seq " + std::to_string(got) +
                            ", expected " + std::to_string(seq));
  }
  return resp;
}

Result<QueryResponse> RccClient::Query(const std::string& sql) {
  return RoundTrip(Opcode::kQuery, sql);
}

Result<QueryResponse> RccClient::Set(const std::string& stmt) {
  return RoundTrip(Opcode::kSet, stmt);
}

Result<uint32_t> RccClient::PrepareStmt(const std::string& sql) {
  RCC_ASSIGN_OR_RETURN(QueryResponse resp,
                       RoundTrip(Opcode::kPrepare, sql));
  if (!resp.ok()) {
    return Status(static_cast<StatusCode>(resp.status.code),
                  resp.status.message);
  }
  return static_cast<uint32_t>(resp.status.rows_affected);
}

Result<QueryResponse> RccClient::ExecuteStmt(uint32_t stmt_id) {
  std::string payload;
  PutU32(&payload, stmt_id);
  return RoundTrip(Opcode::kExecute, payload);
}

Status RccClient::Goodbye() {
  return SendFrame(Opcode::kGoodbye, NextSeq(), {});
}

}  // namespace server
}  // namespace rcc
