#ifndef RCC_SERVER_CLIENT_H_
#define RCC_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "server/chaos.h"
#include "server/wire.h"

namespace rcc {
namespace server {

/// One decoded response: result-set shape + rows (empty for row-less
/// statements) and the terminal status frame. A transport-level failure is
/// reported through the Result<> wrapper; a statement-level failure arrives
/// as a well-formed response whose `status.ok()` is false — the data-vs-
/// error split the wire protocol preserves end to end.
struct QueryResponse {
  std::vector<std::string> columns;
  std::vector<uint8_t> column_types;  ///< ValueType per column.
  std::vector<Row> rows;
  StatusFramePayload status;

  bool ok() const { return status.ok(); }
};

struct HelloReply {
  uint16_t version = 0;
  uint64_t session_id = 0;
  std::string banner;
};

/// Bounded exponential backoff for QueryWithRetry.
struct RetryOptions {
  int max_attempts = 6;
  int base_backoff_ms = 5;
  int max_backoff_ms = 250;
};

/// Blocking client for the rcc.wire.v1 protocol. Used by tests and the
/// saturation bench; it doubles as the reference protocol implementation.
/// One instance is one connection — not thread-safe; drive it from one
/// thread (the bench opens many clients instead).
///
/// Two layers:
///  * Convenience calls (Hello/Query/PrepareStmt/ExecuteStmt/Set) —
///    synchronous request/response.
///  * Raw frame calls (SendFrame/SendRaw/ReadFrame/ReadResponse) for
///    pipelining and for protocol tests that need to send garbage.
class RccClient {
 public:
  RccClient() = default;
  ~RccClient() { Close(); }

  RccClient(const RccClient&) = delete;
  RccClient& operator=(const RccClient&) = delete;
  RccClient(RccClient&& other) noexcept;
  RccClient& operator=(RccClient&& other) noexcept;

  Status ConnectTcp(const std::string& host, uint16_t port);
  Status ConnectUds(const std::string& path);
  void Close();
  bool connected() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Sends HELLO and waits for HELLO_OK.
  Result<HelloReply> Hello(const std::string& client_name);

  /// One-shot statement: sends kQuery, reads frames until the terminal
  /// status.
  Result<QueryResponse> Query(const std::string& sql);

  /// One-shot statement with a per-request deadline (kQueryDeadline). The
  /// server starts the budget at admission, so queue wait counts; an
  /// expired statement answers a DeadlineExceeded status, not a disconnect.
  Result<QueryResponse> QueryWithDeadline(const std::string& sql,
                                          uint32_t deadline_ms);

  /// One-shot SELECT with transport-failure recovery: on a connection-level
  /// error (never on a well-formed error status), reconnects with bounded
  /// exponential backoff, replays the HELLO handshake, and resends the
  /// request. Replay is safe only for idempotent statements, so anything
  /// but SELECT/EXPLAIN is refused up front — a replayed DML could commit
  /// twice on the back-end.
  Result<QueryResponse> QueryWithRetry(const std::string& sql,
                                       const RetryOptions& retry = {});

  /// Routes this client's socket traffic through a seeded fault injector
  /// (see ChaosOptions). Call before Connect*.
  void EnableChaos(const ChaosOptions& opts) { chaos_ = ChaosInjector(opts); }

  /// Successful re-connections made by QueryWithRetry.
  int64_t reconnects() const { return reconnects_; }
  /// Requests resent after a reconnect.
  int64_t replays() const { return replays_; }

  /// Registers a prepared statement; returns its id.
  Result<uint32_t> PrepareStmt(const std::string& sql);
  /// Runs a prepared statement.
  Result<QueryResponse> ExecuteStmt(uint32_t stmt_id);

  /// Sends a SET control frame ("SET DEGRADE ...", "SET TRACE ...").
  Result<QueryResponse> Set(const std::string& stmt);

  /// Flushes pending responses server-side and half-closes politely.
  Status Goodbye();

  // -- raw layer -------------------------------------------------------------

  uint32_t NextSeq() { return next_seq_++; }
  Status SendFrame(Opcode op, uint32_t seq, std::string_view payload);
  /// Writes arbitrary bytes — protocol tests craft malformed frames here.
  Status SendRaw(std::string_view bytes);
  /// Blocks for the next complete frame. NotFound on clean EOF.
  Result<Frame> ReadFrame();
  /// Reads one request's response frames (header/rows/status) and returns
  /// the assembled QueryResponse; `*seq_out` reports which request it
  /// belongs to (pipelining).
  Result<QueryResponse> ReadResponse(uint32_t* seq_out);

 private:
  Result<QueryResponse> RoundTrip(Opcode op, std::string_view payload);
  /// Re-dials the remembered endpoint and repeats HELLO. Discards the old
  /// decoder state — a reset may have left half a frame buffered.
  Status Reconnect();

  int fd_ = -1;
  uint32_t next_seq_ = 1;
  FrameDecoder decoder_{64u << 20};
  ChaosInjector chaos_;

  /// Endpoint + handshake memory for Reconnect().
  enum class Endpoint { kNone, kTcp, kUds };
  Endpoint endpoint_ = Endpoint::kNone;
  std::string host_or_path_;
  uint16_t port_ = 0;
  std::string hello_name_;
  int64_t reconnects_ = 0;
  int64_t replays_ = 0;
};

}  // namespace server
}  // namespace rcc

#endif  // RCC_SERVER_CLIENT_H_
