#ifndef RCC_SERVER_SERVER_H_
#define RCC_SERVER_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "core/rcc.h"
#include "server/wire.h"

namespace rcc {

class StatementRouter;

namespace server {

struct ServerOptions {
  /// Non-empty: listen on a UNIX-domain socket at this path (unlinked and
  /// re-created by Start). Empty: TCP on 127.0.0.1.
  std::string uds_path;
  /// TCP port (ignored for UDS); 0 binds an ephemeral port — read the
  /// actual one back with RccServer::port().
  uint16_t port = 0;
  /// Worker threads executing statements; 0 picks ThreadPool::DefaultWorkers.
  int workers = 0;
  /// Accepted connections beyond this are closed immediately.
  int max_connections = 10000;
  /// Frames whose length prefix exceeds this kill the connection.
  size_t max_frame_bytes = 8u << 20;
  /// Per-connection response backlog. A worker whose response would overflow
  /// it blocks (backpressure) until the client drains or disconnects.
  size_t max_write_queue_bytes = 4u << 20;
  /// Real-time budget Stop() spends draining in-flight statements and
  /// flushing response queues before force-closing.
  int64_t drain_timeout_ms = 10000;

  /// -- overload survivability --------------------------------------------

  /// Admission limit: statements executing or queued on the worker pool
  /// beyond this are answered immediately with a retryable Overloaded
  /// status (the connection stays open). 0 picks workers * 16.
  int admission_limit = 0;
  /// A statement whose admission-queue wait exceeds this by worker pickup
  /// is answered Overloaded instead of executed — it would only add to the
  /// backlog that delayed it. 0 disables the check.
  int64_t max_queue_delay_ms = 0;
  /// Queue wait beyond which statements run with a shed hint: the executor
  /// prefers the degraded-local plan branch when (and only when) the
  /// statement's currency bound and timeline floor permit it. 0 disables.
  int64_t shed_queue_delay_ms = 0;
  /// Server-wide default statement deadline (real ms), overridable per
  /// session (SET DEADLINE) and per request (kQueryDeadline). 0 = none.
  int64_t default_deadline_ms = 0;
};

/// The network front end: accepts client connections on one async epoll
/// event loop (accept + read + write, all non-blocking) and multiplexes
/// decoded statements onto a worker ThreadPool running the ordinary
/// `Session` engine. Each connection owns exactly one Session, so degrade
/// mode, SET TRACE, and the timeline-consistency floor are per-client state,
/// exactly as the paper's model assumes (DESIGN.md §14).
///
/// Engine contract: Start() puts the cache into concurrent-batch mode
/// (frozen virtual clock, epoch-pinned snapshot reads, serialized remote
/// channel) for the server's whole lifetime; Stop() ends it. While the
/// server is running, do not call RccSystem::ExecuteConcurrent or the
/// scheduler directly from outside — use AdvanceVirtualTime(), which
/// quiesces queries first. SELECT-shaped statements run concurrently under
/// a shared engine lock; DML takes it exclusively (writes mutate the
/// back-end master tables that remote branches scan).
class RccServer {
 public:
  explicit RccServer(RccSystem* system, ServerOptions options = {});
  ~RccServer();

  RccServer(const RccServer&) = delete;
  RccServer& operator=(const RccServer&) = delete;

  /// Binds, listens, spawns the event loop and the worker pool. Fails (and
  /// leaves the server stopped) if the socket cannot be bound.
  Status Start();

  /// Drain-on-shutdown: stops accepting, lets in-flight statements finish,
  /// flushes every connection's response queue (bounded by
  /// drain_timeout_ms), then closes all connections and joins the event
  /// loop and workers. Idempotent.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Installs a fleet router on every *subsequently accepted* connection's
  /// Session: plain SELECTs dispatch across the fleet, everything else runs
  /// on the anchor as before. Call before Start. The caller keeps ownership
  /// and must also hold the fleet in concurrent-batch mode for the server's
  /// lifetime (FleetSystem::BeginConcurrentBatch) — Start only freezes the
  /// anchor cache.
  void SetRouter(StatementRouter* router) { router_ = router; }

  /// Bound TCP port (valid after Start; 0 for UDS servers).
  uint16_t port() const { return bound_port_; }

  int connections_open() const {
    return connections_open_.load(std::memory_order_relaxed);
  }
  /// Statements currently executing or queued on the worker pool.
  int in_flight() const { return in_flight_.load(std::memory_order_relaxed); }

  /// Test/driver hook: quiesces statement execution (exclusive engine
  /// lock), leaves concurrent-batch mode, runs the discrete-event scheduler
  /// forward by `delta` virtual ms (heartbeats and deliveries fire), then
  /// refreezes. Safe while connections are open.
  void AdvanceVirtualTime(SimTimeMs delta);

 private:
  struct Connection;

  void EventLoop();
  void HandleAccept();
  void HandleReadable(const std::shared_ptr<Connection>& conn);
  void HandleWritable(const std::shared_ptr<Connection>& conn);
  /// Decodes and dispatches every complete frame buffered on `conn`.
  void DrainFrames(const std::shared_ptr<Connection>& conn);
  void DispatchFrame(const std::shared_ptr<Connection>& conn, Frame frame);
  /// Runs one statement on a worker and enqueues its response frames.
  /// `deadline_ms` is the per-request wire override (0 = none);
  /// `enqueued_at` anchors both the deadline budget and the admission
  /// queue-delay check.
  void RunStatement(const std::shared_ptr<Connection>& conn, uint32_t seq,
                    std::string sql, int64_t deadline_ms,
                    std::chrono::steady_clock::time_point enqueued_at);
  void RunPrepare(const std::shared_ptr<Connection>& conn, uint32_t seq,
                  std::string sql);
  /// Statement-done bookkeeping shared by RunStatement/RunPrepare.
  void FinishStatement(const std::shared_ptr<Connection>& conn);

  /// Appends one contiguous chunk of response bytes to the connection's
  /// write queue, blocking for backpressure. False if the connection closed.
  /// Worker threads only — the event loop must use EnqueueDirect.
  bool EnqueueResponse(const std::shared_ptr<Connection>& conn,
                       std::string bytes);
  /// Non-blocking enqueue for responses built on the event loop itself
  /// (HELLO_OK, SET status): never waits, disconnects clients whose queue
  /// runs away. False if the connection closed.
  bool EnqueueDirect(const std::shared_ptr<Connection>& conn,
                     std::string bytes);
  /// Sends a kStatus error frame and closes the connection after flushing.
  void ProtocolError(const std::shared_ptr<Connection>& conn, uint32_t seq,
                     const std::string& message);
  void SendStatus(const std::shared_ptr<Connection>& conn, uint32_t seq,
                  const StatusFramePayload& status);
  /// I/O-thread-only: closes the socket and releases the connection. Safe
  /// to call twice.
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Worker -> event loop: this connection has bytes to write.
  void NotifyWritable(const std::shared_ptr<Connection>& conn);
  void WakeLoop();

  RccSystem* system_;
  ServerOptions opts_;
  /// Fleet dispatch for connection sessions; nullptr = single-cache system.
  StatementRouter* router_ = nullptr;

  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  uint16_t bound_port_ = 0;

  std::thread io_thread_;
  std::unique_ptr<ThreadPool> pool_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  /// Statements run under this lock: shared for reads/control, exclusive
  /// for DML and AdvanceVirtualTime.
  std::shared_mutex engine_mu_;

  /// I/O-thread-owned map of live connections.
  std::map<int, std::shared_ptr<Connection>> conns_;
  std::atomic<int> connections_open_{0};
  std::atomic<uint64_t> next_conn_id_{1};

  /// Connections with freshly queued output, handed to the event loop.
  std::mutex pending_mu_;
  std::vector<std::shared_ptr<Connection>> pending_writable_;

  /// Admission limit resolved at Start (options value or workers * 16).
  int admission_limit_ = 0;

  /// Drain accounting for Stop().
  std::atomic<int> in_flight_{0};
  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  /// rcc.server.* instruments, resolved once at Start.
  struct Instruments {
    obs::Counter* connections_total = nullptr;
    obs::Counter* frames_rx = nullptr;
    obs::Counter* frames_tx = nullptr;
    obs::Counter* bytes_rx = nullptr;
    obs::Counter* bytes_tx = nullptr;
    obs::Counter* queries = nullptr;
    obs::Counter* prepares = nullptr;
    obs::Counter* executes = nullptr;
    obs::Counter* sets = nullptr;
    obs::Counter* protocol_errors = nullptr;
    obs::Counter* accept_rejected = nullptr;
    obs::Counter* backpressure_stalls = nullptr;
    obs::Counter* dropped_responses = nullptr;
    /// Statements refused with Overloaded (at dispatch or at pickup).
    obs::Counter* overload_rejected = nullptr;
    /// Statements answered DeadlineExceeded.
    obs::Counter* deadline_timeouts = nullptr;
    /// Statements that took the degraded-local shed branch.
    obs::Counter* shed_statements = nullptr;
    obs::Gauge* connections_open = nullptr;
    obs::Gauge* in_flight = nullptr;
    obs::Histogram* statement_ms = nullptr;
    /// Admission-queue wait (dispatch to worker pickup), real ms.
    obs::Histogram* queue_delay_ms = nullptr;
  } inst_;
};

}  // namespace server
}  // namespace rcc

#endif  // RCC_SERVER_SERVER_H_
