#ifndef RCC_BACKEND_FAULT_INJECTOR_H_
#define RCC_BACKEND_FAULT_INJECTOR_H_

#include <vector>

#include "common/fault_config.h"
#include "common/rng.h"
#include "exec/remote_policy.h"

namespace rcc {

/// Configuration of the cache↔back-end link faults. Everything is driven by
/// the shared virtual clock and a seeded RNG, so a fault schedule is exactly
/// reproducible. The seed and outage schedule are the shared
/// FaultScheduleConfig knobs (common/fault_config.h), so the query-path and
/// replication-path injectors can script the same outage.
struct FaultInjectorConfig : FaultScheduleConfig {
  /// Nominal round-trip latency of a healthy attempt.
  SimTimeMs base_latency_ms = 2;
  /// Uniform extra latency in [0, latency_jitter_ms] per attempt.
  SimTimeMs latency_jitter_ms = 0;
  /// Probability that an attempt suffers a latency spike of spike_latency_ms
  /// on top of the base latency (models a slow, overloaded back-end).
  double spike_probability = 0.0;
  SimTimeMs spike_latency_ms = 0;
  /// Probability that an attempt fails transiently (dropped packet, broken
  /// connection); independent of outage windows.
  double transient_error_probability = 0.0;
};

/// Wraps the remote-executor callback and injects latency spikes, transient
/// errors, and hard outage windows per the config. Stateless apart from the
/// RNG stream and counters; one injector models one link.
class FaultInjector {
 public:
  /// `clock` must outlive the injector.
  FaultInjector(FaultInjectorConfig config, const VirtualClock* clock)
      : config_(std::move(config)), clock_(clock), rng_(config_.seed) {}

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Runs one attempt of `stmt` against `inner` with faults applied.
  RemoteAttempt Execute(
      const SelectStmt& stmt,
      const std::function<Result<RemoteResult>(const SelectStmt&)>& inner);

  /// Adapts this injector + a plain remote executor into an attempt function
  /// for ResilientRemoteExecutor. The injector must outlive the returned
  /// callable.
  RemoteAttemptFn Wrap(
      std::function<Result<RemoteResult>(const SelectStmt&)> inner);

  /// True when `now` falls into an outage (explicit window or periodic).
  bool InOutage(SimTimeMs now) const;

  int64_t attempts() const { return attempts_; }
  int64_t injected_errors() const { return injected_errors_; }
  int64_t injected_spikes() const { return injected_spikes_; }

  const FaultInjectorConfig& config() const { return config_; }

 private:
  FaultInjectorConfig config_;
  const VirtualClock* clock_;
  Rng rng_;
  int64_t attempts_ = 0;
  int64_t injected_errors_ = 0;
  int64_t injected_spikes_ = 0;
};

}  // namespace rcc

#endif  // RCC_BACKEND_FAULT_INJECTOR_H_
