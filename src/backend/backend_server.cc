#include "backend/backend_server.h"

#include "common/strings.h"
#include "semantics/resolver.h"

namespace rcc {

Status BackendServer::CreateTable(const TableDef& def) {
  RCC_RETURN_NOT_OK(catalog_.AddTable(def));
  std::vector<size_t> key =
      Catalog::ResolveColumns(def.schema, def.clustered_key);
  auto table = std::make_unique<Table>(def.name, def.schema, std::move(key));
  for (const IndexDef& idx : def.secondary_indexes) {
    std::vector<size_t> cols = Catalog::ResolveColumns(def.schema, idx.columns);
    RCC_RETURN_NOT_OK(table->CreateSecondaryIndex(idx.name, std::move(cols)));
  }
  tables_[ToLower(def.name)] = std::move(table);
  return Status::OK();
}

Status BackendServer::BulkLoad(const std::string& table_name,
                               const std::vector<Row>& rows) {
  Table* table = mutable_table(table_name);
  if (table == nullptr) {
    return Status::NotFound("table " + table_name + " not found");
  }
  for (const Row& row : rows) {
    RCC_RETURN_NOT_OK(table->Insert(row));
  }
  return RefreshStats(table_name);
}

Status BackendServer::RefreshStats(const std::string& table_name) {
  const Table* table = this->table(table_name);
  if (table == nullptr) {
    return Status::NotFound("table " + table_name + " not found");
  }
  catalog_.SetStats(table_name, ComputeTableStats(*table));
  return Status::OK();
}

Result<TxnTimestamp> BackendServer::ExecuteTransaction(
    std::vector<RowOp> ops) {
  // Apply to master tables first (strict 2PL with a single writer collapses
  // to immediate application); abort-free by validating before applying.
  for (RowOp& op : ops) {
    Table* table = mutable_table(op.table);
    if (table == nullptr) {
      return Status::NotFound("table " + op.table + " not found");
    }
    switch (op.kind) {
      case RowOp::Kind::kInsert:
        RCC_RETURN_NOT_OK(table->Insert(op.row));
        op.key = table->KeyOf(op.row);
        break;
      case RowOp::Kind::kUpdate: {
        // The logged key is the *pre-image* primary key: replicas use it to
        // find the row this update replaces. Writers that didn't set it are
        // declaring the key unchanged; a key-changing update is applied as
        // delete(old) + insert(new) at the master.
        TableKey new_key = table->KeyOf(op.row);
        if (op.key.empty()) op.key = new_key;
        if (op.key != new_key) {
          if (table->Get(op.key) == nullptr) {
            return Status::NotFound("update pre-image not found in " +
                                    op.table);
          }
          RCC_RETURN_NOT_OK(table->Delete(op.key));
          RCC_RETURN_NOT_OK(table->Insert(op.row));
        } else {
          RCC_RETURN_NOT_OK(table->Update(op.row));
        }
        break;
      }
      case RowOp::Kind::kDelete:
        RCC_RETURN_NOT_OK(table->Delete(op.key));
        break;
    }
  }
  CommittedTxn txn;
  txn.commit_time = clock_->Now();
  txn.id = oracle_.NextCommit(txn.commit_time);
  txn.ops = std::move(ops);
  TxnTimestamp id = txn.id;
  if (commit_observer_) commit_observer_(txn);
  log_.Append(std::move(txn));
  return id;
}

Result<ExecutedQuery> BackendServer::ExecuteQuery(const SelectStmt& stmt) {
  RCC_ASSIGN_OR_RETURN(ResolvedQuery resolved, ResolveQuery(stmt, catalog_));
  OptimizerOptions opts;
  opts.mode = PlanMode::kBackend;
  opts.costs = costs_;
  RCC_ASSIGN_OR_RETURN(QueryPlan plan,
                       Optimize(std::move(resolved), catalog_, opts));

  ExecContext ctx;
  ctx.table_provider = [this](const ScanTarget& target) -> const Table* {
    return target.is_view ? nullptr : table(target.name);
  };
  // The back-end has no currency regions; back-end plans never carry guards.
  ctx.local_heartbeat = [](RegionId) { return std::optional<SimTimeMs>{}; };
  ctx.clock = clock_;
  ctx.stats = &stats_;
  return ExecutePlan(plan, &ctx);
}

Result<RemoteResult> BackendServer::ExecuteRemote(const SelectStmt& stmt) {
  RCC_ASSIGN_OR_RETURN(ExecutedQuery result, ExecuteQuery(stmt));
  RemoteResult out;
  out.layout = std::move(result.layout);
  out.rows = std::move(result.rows);
  return out;
}

void BackendServer::RegisterRegionHeartbeat(const RegionDef& region,
                                            SimulationScheduler* scheduler) {
  heartbeat_.Beat(region.cid, clock_->Now());
  RegionId cid = region.cid;
  scheduler->SchedulePeriodic(
      clock_->Now() + region.heartbeat_interval, region.heartbeat_interval,
      [this, cid](SimTimeMs now) { heartbeat_.Beat(cid, now); });
}

const Table* BackendServer::table(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

Table* BackendServer::mutable_table(std::string_view name) {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : it->second.get();
}

}  // namespace rcc
