#include "backend/fault_injector.h"

#include <utility>

namespace rcc {

bool FaultInjector::InOutage(SimTimeMs now) const {
  return InOutageAt(config_, now);
}

RemoteAttempt FaultInjector::Execute(
    const SelectStmt& stmt,
    const std::function<Result<RemoteResult>(const SelectStmt&)>& inner) {
  ++attempts_;
  RemoteAttempt out;
  out.latency_ms = config_.base_latency_ms;
  if (config_.latency_jitter_ms > 0) {
    out.latency_ms += rng_.Uniform(0, config_.latency_jitter_ms);
  }
  if (config_.spike_probability > 0 &&
      rng_.NextDouble() < config_.spike_probability) {
    out.latency_ms += config_.spike_latency_ms;
    ++injected_spikes_;
  }
  SimTimeMs now = clock_->Now();
  if (InOutage(now)) {
    ++injected_errors_;
    out.status = Status::Unavailable("injected outage: back-end unreachable at " +
                                     FormatSimTime(now));
    return out;
  }
  if (config_.transient_error_probability > 0 &&
      rng_.NextDouble() < config_.transient_error_probability) {
    ++injected_errors_;
    out.status =
        Status::Unavailable("injected transient back-end error at " +
                            FormatSimTime(now));
    return out;
  }
  Result<RemoteResult> result = inner(stmt);
  if (!result.ok()) {
    out.status = result.status();
    return out;
  }
  out.data = std::move(result).value();
  return out;
}

RemoteAttemptFn FaultInjector::Wrap(
    std::function<Result<RemoteResult>(const SelectStmt&)> inner) {
  return [this, inner = std::move(inner)](const SelectStmt& stmt) {
    return Execute(stmt, inner);
  };
}

}  // namespace rcc
