#ifndef RCC_BACKEND_BACKEND_SERVER_H_
#define RCC_BACKEND_BACKEND_SERVER_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "exec/executor.h"
#include "optimizer/optimizer.h"
#include "replication/heartbeat.h"
#include "txn/oracle.h"
#include "txn/update_log.h"

namespace rcc {

/// The back-end database server: owner of the master data, the commit
/// history (update log), and the global heartbeat table. All update
/// transactions run here; the cache forwards queries it cannot (or should
/// not) answer locally.
class BackendServer {
 public:
  BackendServer(VirtualClock* clock, CostParams costs)
      : clock_(clock), costs_(costs) {}

  BackendServer(const BackendServer&) = delete;
  BackendServer& operator=(const BackendServer&) = delete;

  /// -- schema & loading ------------------------------------------------------

  /// Creates a base table with its clustered key and secondary indexes.
  Status CreateTable(const TableDef& def);

  /// Loads initial rows (the H0 snapshot; not logged) and computes exact
  /// statistics for the catalog.
  Status BulkLoad(const std::string& table_name, const std::vector<Row>& rows);

  /// Recomputes and stores statistics for a table (after ad-hoc loading).
  Status RefreshStats(const std::string& table_name);

  /// -- transactions -----------------------------------------------------------

  /// Applies an update transaction to the master tables at the current
  /// virtual time, assigns it a commit timestamp, and appends it to the
  /// update log for replication.
  Result<TxnTimestamp> ExecuteTransaction(std::vector<RowOp> ops);

  /// Observes every committed transaction (the formal model's xtime events),
  /// invoked after commit, before the txn is visible to replication pulls.
  /// Single slot; pass nullptr to clear. Must not call back into the server.
  using CommitObserver = std::function<void(const CommittedTxn&)>;
  void set_commit_observer(CommitObserver observer) {
    commit_observer_ = std::move(observer);
  }

  /// -- queries -----------------------------------------------------------------

  /// Plans (back-end mode: base tables + indexes only) and executes a query.
  Result<ExecutedQuery> ExecuteQuery(const SelectStmt& stmt);

  /// Adapter used as the cache's remote executor.
  Result<RemoteResult> ExecuteRemote(const SelectStmt& stmt);

  /// -- heartbeats ---------------------------------------------------------------

  /// Registers a currency region's heartbeat row and schedules its beats.
  void RegisterRegionHeartbeat(const RegionDef& region,
                               SimulationScheduler* scheduler);

  /// -- accessors ------------------------------------------------------------------
  const Catalog& catalog() const { return catalog_; }
  Catalog& mutable_catalog() { return catalog_; }
  const UpdateLog& log() const { return log_; }
  const HeartbeatStore& heartbeat() const { return heartbeat_; }
  HeartbeatStore& mutable_heartbeat() { return heartbeat_; }
  const TimestampOracle& oracle() const { return oracle_; }
  VirtualClock* clock() const { return clock_; }

  /// Master storage for a table; nullptr when unknown.
  const Table* table(std::string_view name) const;
  Table* mutable_table(std::string_view name);

  /// Cumulative executor statistics of all queries run at the back-end.
  const ExecStats& stats() const { return stats_; }
  void ResetStats() { stats_.Reset(); }

 private:
  VirtualClock* clock_;
  CostParams costs_;
  Catalog catalog_;
  std::map<std::string, std::unique_ptr<Table>> tables_;  // lower-case name
  TimestampOracle oracle_;
  UpdateLog log_;
  HeartbeatStore heartbeat_;
  ExecStats stats_;
  CommitObserver commit_observer_;
};

}  // namespace rcc

#endif  // RCC_BACKEND_BACKEND_SERVER_H_
