#ifndef RCC_PLAN_PHYSICAL_H_
#define RCC_PLAN_PHYSICAL_H_

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "plan/expr.h"
#include "plan/properties.h"
#include "semantics/resolver.h"

namespace rcc {

/// Physical operator kinds. The engine goes directly from the resolved AST
/// to physical plans; the "logical" exploration step of a Cascades-style
/// optimizer is replaced by systematic enumeration of placements and join
/// orders (see optimizer/), which produces the same plan space the paper's
/// experiments exercise.
enum class PhysOpKind {
  /// Scan of a cache materialized view or a back-end base table, with an
  /// optional (possibly parameterized) range on the clustered key or on a
  /// secondary index, plus a residual predicate.
  kLocalScan,
  /// A query shipped to the back-end server.
  kRemoteQuery,
  kFilter,
  kProject,
  /// Nested-loop join; the inner child may carry parameterized seek bounds
  /// referencing outer columns (index nested-loop join).
  kNestedLoopJoin,
  kHashJoin,
  kSort,
  kHashAggregate,
  /// The paper's dynamic-plan operator: child 0 is the local branch, child 1
  /// the remote branch; a currency guard on `guard_region` picks one at open.
  kSwitchUnion,
};

std::string_view PhysOpKindName(PhysOpKind kind);

/// What a kLocalScan reads.
struct ScanTarget {
  /// True: a cache materialized view; false: a back-end base table.
  bool is_view = false;
  std::string name;
};

/// Sort key.
struct SortKey {
  std::unique_ptr<Expr> expr;
  bool descending = false;
};

/// One aggregate of a kHashAggregate ("count", "sum", "avg", "min", "max").
struct AggItem {
  std::string func;
  std::unique_ptr<Expr> arg;  // null for COUNT(*)
  bool star = false;
  std::string out_name;
};

/// A node of a physical plan tree. A tagged struct (like the AST): only the
/// fields for `kind` are meaningful.
struct PhysicalOp {
  PhysOpKind kind = PhysOpKind::kLocalScan;
  std::vector<std::unique_ptr<PhysicalOp>> children;
  /// Shape of the rows this operator produces.
  RowLayout layout;

  // -- kLocalScan ----------------------------------------------------------
  ScanTarget target;
  InputOperandId operand = kInvalidOperand;
  /// Secondary index name; empty = clustered key.
  std::string index_name;
  /// Seek bounds: one expression per leading key column; evaluated at open
  /// time (literals, or outer-column refs for index nested-loop joins).
  std::vector<std::unique_ptr<Expr>> seek_lo;
  std::vector<std::unique_ptr<Expr>> seek_hi;
  /// Residual predicate applied to each scanned row (also used as the filter
  /// predicate of kFilter and the join predicate of kNestedLoopJoin).
  std::unique_ptr<Expr> residual;

  // -- kRemoteQuery ----------------------------------------------------------
  /// Statement shipped to the back-end. May contain references to outer
  /// columns, substituted with literals per execution (correlated remote).
  std::unique_ptr<SelectStmt> remote_stmt;
  std::set<InputOperandId> remote_operands;

  // -- kProject --------------------------------------------------------------
  std::vector<std::unique_ptr<Expr>> exprs;   // also: left hash-join keys
  std::vector<std::unique_ptr<Expr>> exprs2;  // right hash-join keys
  /// kProject only: drop duplicate output rows (SELECT DISTINCT).
  bool distinct = false;

  // -- kHashAggregate ----------------------------------------------------------
  std::vector<AggItem> aggs;  // group keys live in `exprs`

  // -- kSort -------------------------------------------------------------------
  std::vector<SortKey> sort_keys;

  // -- kSwitchUnion --------------------------------------------------------
  RegionId guard_region = kBackendRegion;
  SimTimeMs guard_bound_ms = 0;
  /// False in replica-only mode (OptimizerOptions::allow_remote = false): a
  /// failing guard is a run-time constraint violation, not a fallback.
  bool remote_fallback_allowed = true;
  /// Optimizer estimate of the probability the guard passes (paper Eq. (1));
  /// -1 when not estimated. EXPLAIN compares it against the actual decision.
  double est_local_p = -1;

  // -- estimates & properties (filled by the optimizer) ---------------------
  double est_rows = 0;
  double est_cost = 0;
  ConsistencyProperty delivered;

  /// Set on the root of a derived-table (nested block) subtree: expressions
  /// in this subtree resolve against the nested block's alias map, not the
  /// enclosing block's.
  std::shared_ptr<AliasMap> own_aliases;

  /// Multi-line indented plan rendering for tests/diagnostics.
  std::string DescribeTree(int indent = 0) const;
  /// One-line summary of this node.
  std::string Describe() const;
};

/// Plan for a nested (EXISTS/IN) subquery, keyed by its AST node.
struct SubPlan {
  std::unique_ptr<PhysicalOp> root;
  AliasMap aliases;
};

/// Coarse plan shapes used by the experiments (paper Fig. 4.1).
enum class PlanShape {
  /// Single remote query computing everything at the back-end (plan 1).
  kRemoteOnly,
  /// Local join over remote base-table fetches, no local views (plan 2).
  kLocalJoinRemoteFetches,
  /// Mix of guarded local views and remote fetches (plan 4).
  kMixed,
  /// All data from guarded local views (plans 3/5).
  kAllLocal,
};

std::string_view PlanShapeName(PlanShape shape);

/// A complete optimized query: the operator tree, the (outer block's) alias
/// map, subquery plans, and the normalized constraint the plan satisfies.
struct QueryPlan {
  std::unique_ptr<PhysicalOp> root;
  AliasMap aliases;
  std::map<const SelectStmt*, SubPlan> subplans;
  ResolvedQuery resolved;
  double est_cost = 0;

  /// Classifies the plan tree into the paper's coarse shapes.
  PlanShape Shape() const;

  std::string DescribeTree() const;
};

}  // namespace rcc

#endif  // RCC_PLAN_PHYSICAL_H_
