#include "plan/expr.h"

#include <cmath>

#include "common/strings.h"

namespace rcc {

void RowLayout::Add(InputOperandId operand, std::string column,
                    ValueType type) {
  BoundColumn bc;
  bc.operand = operand;
  bc.column = column;
  slots_.push_back(std::move(bc));
  std::vector<Column> cols = schema_.columns();
  cols.push_back(Column{std::move(column), type});
  schema_ = Schema(std::move(cols));
}

std::optional<size_t> RowLayout::Find(InputOperandId operand,
                                      std::string_view column) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].operand == operand &&
        EqualsIgnoreCase(slots_[i].column, column)) {
      return i;
    }
  }
  return std::nullopt;
}

Result<std::optional<size_t>> RowLayout::FindUnqualified(
    std::string_view column) const {
  std::optional<size_t> found;
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (EqualsIgnoreCase(slots_[i].column, column)) {
      if (found.has_value()) {
        return Status::InvalidArgument("ambiguous column reference '" +
                                       std::string(column) + "'");
      }
      found = i;
    }
  }
  return found;
}

RowLayout RowLayout::Concat(const RowLayout& left, const RowLayout& right) {
  RowLayout out = left;
  for (size_t i = 0; i < right.slots_.size(); ++i) {
    out.Add(right.slots_[i].operand, right.slots_[i].column,
            right.schema_.column(i).type);
  }
  return out;
}

std::string RowLayout::ToString() const {
  std::string out = "[";
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out += ", ";
    if (slots_[i].operand != kInvalidOperand) {
      out += "#" + std::to_string(slots_[i].operand) + ".";
    }
    out += slots_[i].column;
  }
  out += "]";
  return out;
}

namespace {

/// Resolves a column reference, walking outward through enclosing scopes for
/// correlated references.
Result<Value> ResolveColumn(const Expr& expr, const EvalScope& scope) {
  for (const EvalScope* s = &scope; s != nullptr; s = s->outer) {
    if (s->layout == nullptr || s->row == nullptr) continue;
    if (!expr.table.empty()) {
      if (s->aliases != nullptr) {
        auto it = s->aliases->find(ToLower(expr.table));
        if (it != s->aliases->end()) {
          auto slot = s->layout->Find(it->second, expr.column);
          if (slot) return (*s->row)[*slot];
          // The alias is in scope but the column is not in this layout —
          // keep walking outward (shadowing is not supported).
        }
      }
    } else {
      RCC_ASSIGN_OR_RETURN(auto slot, s->layout->FindUnqualified(expr.column));
      if (slot) return (*s->row)[*slot];
    }
  }
  return Status::NotFound("unresolved column reference '" + expr.ToString() +
                          "'");
}

Result<Value> EvalBinary(const Expr& expr, const EvalScope& scope,
                         const SubqueryEvaluator* subq) {
  // AND/OR get short-circuit, three-valued handling.
  if (expr.op == BinaryOp::kAnd || expr.op == BinaryOp::kOr) {
    RCC_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.left, scope, subq));
    bool is_and = expr.op == BinaryOp::kAnd;
    if (!l.is_null()) {
      bool lb = l.AsInt() != 0;
      if (is_and && !lb) return Value::Int(0);
      if (!is_and && lb) return Value::Int(1);
    }
    RCC_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.right, scope, subq));
    if (l.is_null() || r.is_null()) {
      // unknown AND true = unknown; unknown OR false = unknown, etc.
      if (!r.is_null()) {
        bool rb = r.AsInt() != 0;
        if (is_and && !rb) return Value::Int(0);
        if (!is_and && rb) return Value::Int(1);
      }
      return Value::Null();
    }
    bool rb = r.AsInt() != 0;
    return Value::Int(rb ? 1 : 0);
  }

  RCC_ASSIGN_OR_RETURN(Value l, EvalExpr(*expr.left, scope, subq));
  RCC_ASSIGN_OR_RETURN(Value r, EvalExpr(*expr.right, scope, subq));

  switch (expr.op) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      if (l.is_null() || r.is_null()) return Value::Null();
      int c = l.Compare(r);
      bool v = false;
      switch (expr.op) {
        case BinaryOp::kEq: v = c == 0; break;
        case BinaryOp::kNe: v = c != 0; break;
        case BinaryOp::kLt: v = c < 0; break;
        case BinaryOp::kLe: v = c <= 0; break;
        case BinaryOp::kGt: v = c > 0; break;
        case BinaryOp::kGe: v = c >= 0; break;
        default: break;
      }
      return Value::Int(v ? 1 : 0);
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      if (l.is_null() || r.is_null()) return Value::Null();
      if (!l.is_numeric() || !r.is_numeric()) {
        return Status::InvalidArgument("arithmetic on non-numeric values");
      }
      if (l.is_int() && r.is_int() && expr.op != BinaryOp::kDiv) {
        int64_t a = l.AsInt();
        int64_t b = r.AsInt();
        switch (expr.op) {
          case BinaryOp::kAdd: return Value::Int(a + b);
          case BinaryOp::kSub: return Value::Int(a - b);
          case BinaryOp::kMul: return Value::Int(a * b);
          default: break;
        }
      }
      double a = l.AsDouble();
      double b = r.AsDouble();
      switch (expr.op) {
        case BinaryOp::kAdd: return Value::Double(a + b);
        case BinaryOp::kSub: return Value::Double(a - b);
        case BinaryOp::kMul: return Value::Double(a * b);
        case BinaryOp::kDiv:
          if (b == 0) return Value::Null();
          return Value::Double(a / b);
        default: break;
      }
      break;
    }
    default:
      break;
  }
  return Status::Internal("unhandled binary operator");
}

}  // namespace

Result<Value> EvalExpr(const Expr& expr, const EvalScope& scope,
                       const SubqueryEvaluator* subq) {
  switch (expr.kind) {
    case ExprKind::kLiteral:
      return expr.literal;
    case ExprKind::kParam: {
      for (const EvalScope* s = &scope; s != nullptr; s = s->outer) {
        if (s->params == nullptr) continue;
        if (expr.param_index >= s->params->size()) break;
        return (*s->params)[expr.param_index];
      }
      return Status::Internal("parameter ?" +
                              std::to_string(expr.param_index) +
                              " not bound at execution");
    }
    case ExprKind::kColumnRef:
      return ResolveColumn(expr, scope);
    case ExprKind::kBinary:
      return EvalBinary(expr, scope, subq);
    case ExprKind::kNot: {
      RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(*expr.right, scope, subq));
      if (v.is_null()) return Value::Null();
      return Value::Int(v.AsInt() != 0 ? 0 : 1);
    }
    case ExprKind::kFuncCall:
      // Aggregates are computed by the aggregation operator; reaching here
      // means a scalar context referenced an aggregate.
      return Status::NotSupported("function '" + expr.func +
                                  "' outside aggregation context");
    case ExprKind::kExists:
    case ExprKind::kInSubquery: {
      if (subq == nullptr || !(*subq)) {
        return Status::NotSupported("subquery evaluation not available here");
      }
      if (expr.kind == ExprKind::kExists) {
        return (*subq)(*expr.subquery, scope, nullptr);
      }
      RCC_ASSIGN_OR_RETURN(Value probe, EvalExpr(*expr.left, scope, subq));
      if (probe.is_null()) return Value::Null();
      return (*subq)(*expr.subquery, scope, &probe);
    }
  }
  return Status::Internal("unhandled expression kind");
}

Result<bool> EvalPredicate(const Expr& expr, const EvalScope& scope,
                           const SubqueryEvaluator* subq) {
  RCC_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, scope, subq));
  if (v.is_null()) return false;
  if (v.is_numeric()) return v.AsDouble() != 0;
  return Status::InvalidArgument("predicate did not evaluate to a boolean");
}

std::vector<const Expr*> SplitConjuncts(const Expr* expr) {
  std::vector<const Expr*> out;
  if (expr == nullptr) return out;
  if (expr->kind == ExprKind::kBinary && expr->op == BinaryOp::kAnd) {
    auto l = SplitConjuncts(expr->left.get());
    auto r = SplitConjuncts(expr->right.get());
    out.insert(out.end(), l.begin(), l.end());
    out.insert(out.end(), r.begin(), r.end());
    return out;
  }
  out.push_back(expr);
  return out;
}

void CollectColumnsOf(const Expr* expr, InputOperandId operand,
                      const AliasMap& aliases,
                      std::set<std::string>* columns) {
  if (expr == nullptr) return;
  if (expr->kind == ExprKind::kColumnRef) {
    if (!expr->table.empty()) {
      auto it = aliases.find(ToLower(expr->table));
      if (it != aliases.end() && it->second == operand) {
        columns->insert(ToLower(expr->column));
      }
    } else {
      // Bare reference: conservatively attribute to every operand (the
      // caller intersects with the operand's real schema later).
      columns->insert(ToLower(expr->column));
    }
    return;
  }
  CollectColumnsOf(expr->left.get(), operand, aliases, columns);
  CollectColumnsOf(expr->right.get(), operand, aliases, columns);
  for (const auto& a : expr->args) {
    CollectColumnsOf(a.get(), operand, aliases, columns);
  }
  // Correlated references inside subqueries also pull columns of the outer
  // operand.
  if (expr->subquery != nullptr) {
    const SelectStmt& s = *expr->subquery;
    CollectColumnsOf(s.where.get(), operand, aliases, columns);
    for (const auto& item : s.items) {
      CollectColumnsOf(item.expr.get(), operand, aliases, columns);
    }
  }
}

bool ExprCoveredByOperands(const Expr* expr,
                           const std::set<InputOperandId>& operands,
                           const AliasMap& aliases, bool allow_bare) {
  if (expr == nullptr) return true;
  if (expr->kind == ExprKind::kColumnRef) {
    if (expr->table.empty()) return allow_bare;
    auto it = aliases.find(ToLower(expr->table));
    return it != aliases.end() && operands.count(it->second) > 0;
  }
  if (expr->subquery != nullptr) return false;  // keep subqueries at the top
  if (expr->left && !ExprCoveredByOperands(expr->left.get(), operands, aliases,
                                           allow_bare)) {
    return false;
  }
  if (expr->right && !ExprCoveredByOperands(expr->right.get(), operands,
                                            aliases, allow_bare)) {
    return false;
  }
  for (const auto& a : expr->args) {
    if (!ExprCoveredByOperands(a.get(), operands, aliases, allow_bare)) {
      return false;
    }
  }
  return true;
}

}  // namespace rcc
