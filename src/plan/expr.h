#ifndef RCC_PLAN_EXPR_H_
#define RCC_PLAN_EXPR_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "semantics/constraint.h"
#include "sql/ast.h"
#include "storage/schema.h"

namespace rcc {

/// Identifies one output slot of an operator: which input operand the value
/// came from and the column's name in that operand's base table. Computed
/// (projection) columns use operand kInvalidOperand and their output alias.
struct BoundColumn {
  InputOperandId operand = kInvalidOperand;
  std::string column;
};

/// The row shape produced by a physical operator: a schema plus the operand
/// provenance of every slot, so expressions can be resolved by
/// (alias → operand, column) lookup at any level of the plan.
class RowLayout {
 public:
  RowLayout() = default;

  void Add(InputOperandId operand, std::string column, ValueType type);

  size_t num_slots() const { return slots_.size(); }
  const std::vector<BoundColumn>& slots() const { return slots_; }
  const Schema& schema() const { return schema_; }

  /// Slot holding (operand, column); nullopt if absent.
  std::optional<size_t> Find(InputOperandId operand,
                             std::string_view column) const;
  /// Slot by bare column name; error if ambiguous, nullopt if absent.
  Result<std::optional<size_t>> FindUnqualified(std::string_view column) const;

  /// Concatenation (join output = left slots then right slots).
  static RowLayout Concat(const RowLayout& left, const RowLayout& right);

  std::string ToString() const;

 private:
  std::vector<BoundColumn> slots_;
  Schema schema_;
};

/// Name-resolution scope for one block: alias → operand id. Derived-table
/// aliases are not included (their columns surface through inner operands).
using AliasMap = std::map<std::string, InputOperandId>;  // lower-cased alias

/// Evaluation context: the current row in its layout, the block's alias map,
/// and the enclosing scope for correlated column references.
struct EvalScope {
  const RowLayout* layout = nullptr;
  const Row* row = nullptr;
  const AliasMap* aliases = nullptr;
  const EvalScope* outer = nullptr;
  /// Execution-time values for kParam nodes (plan-cache reuse); resolved by
  /// walking the scope chain outward, like column references.
  const std::vector<Value>* params = nullptr;
};

/// Callback used to evaluate nested EXISTS / IN subqueries; installed by the
/// executor (the plan for the subquery lives in the enclosing physical op).
/// `probe` is the left-hand value for IN, nullptr for EXISTS.
using SubqueryEvaluator =
    std::function<Result<Value>(const SelectStmt& subquery,
                                const EvalScope& scope, const Value* probe)>;

/// Evaluates an AST expression against a row. Comparison/boolean operators
/// follow SQL three-valued logic collapsed to NULL-is-unknown; EvalPredicate
/// treats unknown as false.
Result<Value> EvalExpr(const Expr& expr, const EvalScope& scope,
                       const SubqueryEvaluator* subquery_eval);

/// Predicate form: NULL/unknown evaluates to false.
Result<bool> EvalPredicate(const Expr& expr, const EvalScope& scope,
                           const SubqueryEvaluator* subquery_eval);

/// Splits a predicate into its conjuncts (flattening nested ANDs).
std::vector<const Expr*> SplitConjuncts(const Expr* expr);

/// Collects the column names of `operand` referenced anywhere in `expr`,
/// resolving qualifiers through `aliases` (bare names resolve to `operand`
/// only when unambiguous within `layout_hint` — pass nullptr to collect all
/// bare names too).
void CollectColumnsOf(const Expr* expr, InputOperandId operand,
                      const AliasMap& aliases,
                      std::set<std::string>* columns);

/// True when every column reference in `expr` resolves within `operands`
/// (via `aliases`); used to decide which conjuncts can be pushed into a
/// single-table access or a remote unit query. Bare column references are
/// accepted only if `allow_bare` is set.
bool ExprCoveredByOperands(const Expr* expr,
                           const std::set<InputOperandId>& operands,
                           const AliasMap& aliases, bool allow_bare);

}  // namespace rcc

#endif  // RCC_PLAN_EXPR_H_
