#include "plan/properties.h"

#include <algorithm>

namespace rcc {

ConsistencyProperty ConsistencyProperty::Leaf(RegionId region,
                                              InputOperandId op) {
  ConsistencyProperty p;
  Group g;
  g.region = region;
  g.operands.insert(op);
  p.groups_.push_back(std::move(g));
  return p;
}

ConsistencyProperty ConsistencyProperty::Uniform(
    RegionId region, const std::set<InputOperandId>& ops) {
  ConsistencyProperty p;
  Group g;
  g.region = region;
  g.operands = ops;
  p.groups_.push_back(std::move(g));
  return p;
}

ConsistencyProperty ConsistencyProperty::Join(const ConsistencyProperty& a,
                                              const ConsistencyProperty& b) {
  ConsistencyProperty out = a;
  for (const Group& gb : b.groups_) {
    bool merged = false;
    for (Group& ga : out.groups_) {
      if (ga.region == gb.region) {
        ga.operands.insert(gb.operands.begin(), gb.operands.end());
        merged = true;
        break;
      }
    }
    if (!merged) out.groups_.push_back(gb);
  }
  return out;
}

ConsistencyProperty ConsistencyProperty::SwitchUnion(
    const std::vector<ConsistencyProperty>& children,
    RegionId* next_dynamic_id) {
  ConsistencyProperty out;
  if (children.empty()) return out;

  // Two operands stay together iff they share a group in every child.
  std::set<InputOperandId> ops = children[0].AllOperands();
  // Partition refinement: start with the first child's groups restricted to
  // `ops`, then split by each subsequent child.
  std::vector<std::set<InputOperandId>> parts;
  for (const Group& g : children[0].groups()) parts.push_back(g.operands);
  for (size_t c = 1; c < children.size(); ++c) {
    std::vector<std::set<InputOperandId>> next;
    for (const auto& part : parts) {
      for (const Group& g : children[c].groups()) {
        std::set<InputOperandId> inter;
        std::set_intersection(part.begin(), part.end(), g.operands.begin(),
                              g.operands.end(),
                              std::inserter(inter, inter.begin()));
        if (!inter.empty()) next.push_back(std::move(inter));
      }
    }
    parts = std::move(next);
  }
  for (auto& part : parts) {
    Group g;
    g.region = (*next_dynamic_id)++;
    g.operands = std::move(part);
    out.groups_.push_back(std::move(g));
  }
  return out;
}

std::set<InputOperandId> ConsistencyProperty::AllOperands() const {
  std::set<InputOperandId> out;
  for (const Group& g : groups_) {
    out.insert(g.operands.begin(), g.operands.end());
  }
  return out;
}

bool ConsistencyProperty::IsConflicting() const {
  for (size_t i = 0; i < groups_.size(); ++i) {
    for (size_t j = i + 1; j < groups_.size(); ++j) {
      if (groups_[i].region == groups_[j].region) continue;
      for (InputOperandId op : groups_[i].operands) {
        if (groups_[j].operands.count(op) > 0) return true;
      }
    }
  }
  return false;
}

bool ConsistencyProperty::Satisfies(
    const NormalizedConstraint& required) const {
  if (IsConflicting()) return false;
  for (const CcTuple& tuple : required.tuples) {
    if (tuple.operands.empty()) continue;
    bool contained = false;
    for (const Group& g : groups_) {
      if (std::includes(g.operands.begin(), g.operands.end(),
                        tuple.operands.begin(), tuple.operands.end())) {
        contained = true;
        break;
      }
    }
    if (!contained) return false;
  }
  return true;
}

bool ConsistencyProperty::Violates(
    const NormalizedConstraint& required) const {
  if (IsConflicting()) return true;
  for (const Group& g : groups_) {
    int classes_hit = 0;
    for (const CcTuple& tuple : required.tuples) {
      bool hit = std::any_of(
          g.operands.begin(), g.operands.end(),
          [&](InputOperandId op) { return tuple.operands.count(op) > 0; });
      if (hit) ++classes_hit;
      if (classes_hit > 1) return true;
    }
  }
  return false;
}

std::string ConsistencyProperty::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < groups_.size(); ++i) {
    if (i > 0) out += ", ";
    const Group& g = groups_[i];
    out += "<";
    if (g.region == kBackendRegion) {
      out += "backend";
    } else if (g.region >= kDynamicRegionBase) {
      out += "dyn" + std::to_string(g.region - kDynamicRegionBase);
    } else {
      out += "R" + std::to_string(g.region);
    }
    out += ", {";
    bool first = true;
    for (InputOperandId op : g.operands) {
      if (!first) out += ",";
      out += std::to_string(op);
      first = false;
    }
    out += "}>";
  }
  out += "}";
  return out;
}

}  // namespace rcc
