#ifndef RCC_PLAN_PLAN_CACHE_H_
#define RCC_PLAN_PLAN_CACHE_H_

#include <atomic>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "catalog/catalog.h"
#include "exec/exec_context.h"
#include "obs/metrics.h"
#include "plan/physical.h"

namespace rcc {

/// One literal stripped out of the query text during normalization.
struct ParamSlot {
  /// Byte offset of the literal's token in the original text; matches
  /// Expr::literal_offset when the statement is parsed with
  /// ParseOptions::record_literal_offsets.
  size_t offset = 0;
  /// The literal's value in this particular query text.
  Value value;
};

/// Literal-stripped query text plus the extracted parameter slots.
///
/// Normalization rules (the cache-key anatomy, DESIGN.md §12):
///  - literal tokens become *typed* slots `?<n>i` / `?<n>f` / `?<n>s`, so
///    `SELECT 1`, `SELECT 1.0` and `SELECT '1'` normalize to distinct
///    templates (a plan built for an int literal is never reused for a
///    string);
///  - NULL is a keyword, not a literal token: it stays as text and is never
///    parameterized;
///  - identifiers are lowercased, whitespace is canonicalized;
///  - once the token CURRENCY is seen, slotting stops for the rest of the
///    statement: currency-clause bounds select the C&C constraint and hence
///    the plan, so they must stay in the key verbatim. (Conservative — any
///    literal after a currency clause also stays in the key, which only
///    reduces sharing, never correctness.)
struct NormalizedSql {
  bool ok = false;  // false: lexing failed; caller falls back to a full parse
  std::string text;
  std::vector<ParamSlot> slots;
};

NormalizedSql NormalizeSql(std::string_view sql);

/// An immutable cached plan. The QueryPlan is shared by every concurrent
/// execution (execution only reads it); all mutation (ParameterizePlan)
/// happens before the entry is published to the cache.
struct PlanCacheEntry {
  std::shared_ptr<const QueryPlan> plan;
  /// True: the plan is value-generic — every slot literal was rewritten to a
  /// kParam and no value-dependent planning decision (partial-view match,
  /// provenance-less seek bound) survives. False: value-bound — the entry
  /// only matches queries whose slot values equal creation_values exactly.
  bool parameterized = false;
  /// Slot values the plan was built from (also the params to bind when a
  /// value-bound entry hits: binding identical values is identical to the
  /// literals the plan was optimized with).
  std::vector<Value> creation_values;
  /// Degrade mode the plan was created under. The cache key includes the
  /// mode, so on every legitimate hit this equals the session's current
  /// mode; executing with it is what makes the RCC_PLANCACHE_MUTATE build
  /// (key drops the mode) an observable stale-plan bug for the sim oracle.
  DegradeMode created_degrade = DegradeMode::kNone;
  bool created_timeordered = false;
  /// PlanCache version at creation; the entry is dead once the cache's
  /// version moves (catalog / statistics / view-set / region-health change).
  uint64_t version = 0;
};

/// A successful lookup: the entry plus the parameter values to bind for this
/// query text (slot order).
struct PlanCacheHit {
  std::shared_ptr<const PlanCacheEntry> entry;
  std::vector<Value> params;
};

/// Rewrites plan literals that came from parameter slots into kParam nodes
/// (matched by source byte offset) and decides reuse eligibility.
struct ParameterizeOutcome {
  /// Safe for value-generic reuse (see PlanCacheEntry::parameterized).
  bool parameterized = false;
  /// Literal sites rewritten to kParam (a slot can match several clones:
  /// seek bound + residual + remote branch).
  size_t rewritten = 0;
};
ParameterizeOutcome ParameterizePlan(QueryPlan* plan,
                                     const std::vector<ParamSlot>& slots,
                                     const Catalog& catalog);

/// Sharded LRU plan cache with two levels and versioned invalidation.
///
///  - L1: exact raw text (+ context) -> entry + captured params. A hit skips
///    even the lexer — the common case for fixed query pools.
///  - L2: normalized template (+ context) -> entry. A hit costs one lex pass;
///    the slot values become the bind parameters.
///
/// The context suffix is (degrade mode, timeordered flag): the same SQL under
/// SET DEGRADE NONE and ALWAYS are *different* cache keys, because degrade
/// mode changes run-time behavior (refusal vs degraded serve). Invalidation
/// is a single version bump: entries are validated lazily on lookup and
/// dropped when their version is stale.
///
/// Thread safety: shards carry their own mutexes; entries are immutable
/// shared_ptrs, so a hit handed to one session stays valid while another
/// session invalidates or evicts.
class PlanCache {
 public:
  struct Config {
    size_t shards = 8;
    size_t capacity_per_shard = 128;
  };

  PlanCache() : PlanCache(Config{}) {}
  explicit PlanCache(Config cfg);

  struct LookupResult {
    std::optional<PlanCacheHit> hit;
    /// Filled when normalization ran (every L1 miss); reused by Insert so
    /// the miss path lexes exactly once.
    NormalizedSql norm;
    /// Cache version observed at lookup time; Insert refuses to publish a
    /// plan if the version moved while the caller was optimizing.
    uint64_t version_at_lookup = 0;
  };

  LookupResult Lookup(std::string_view sql, DegradeMode degrade,
                      bool timeordered);

  /// Publishes a freshly built plan under both levels. `norm` and
  /// `version_at_lookup` come from the Lookup that missed.
  void Insert(const NormalizedSql& norm, std::string_view raw_sql,
              DegradeMode degrade, bool timeordered,
              std::shared_ptr<PlanCacheEntry> entry,
              uint64_t version_at_lookup);

  /// Drops every cached plan (lazily): catalog, statistics, view-set or
  /// region-health changes call this.
  void Invalidate();

  uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

  int64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  int64_t misses() const { return misses_.load(std::memory_order_relaxed); }
  int64_t invalidations() const {
    return invalidations_.load(std::memory_order_relaxed);
  }
  /// Live entries across both levels (diagnostics; takes every shard lock).
  size_t size() const;

  /// Optional registry-backed instruments (hit/miss/invalidation counters,
  /// lookup latency histogram in ms).
  void SetInstruments(obs::Counter* hits, obs::Counter* misses,
                      obs::Counter* invalidations, obs::Histogram* lookup_ms);

 private:
  struct L2Node {
    std::shared_ptr<const PlanCacheEntry> entry;
    std::list<std::string>::iterator lru;
  };
  struct L1Node {
    std::shared_ptr<const PlanCacheEntry> entry;
    std::vector<Value> params;
    std::list<std::string>::iterator lru;
  };
  template <typename Node>
  struct Shard {
    std::mutex mu;
    std::unordered_map<std::string, Node> map;
    std::list<std::string> lru;  // front = most recent
  };

  static std::string MakeKey(std::string_view text, DegradeMode degrade,
                             bool timeordered);
  size_t ShardOf(std::string_view key) const;

  Config cfg_;
  std::vector<std::unique_ptr<Shard<L1Node>>> l1_;
  std::vector<std::unique_ptr<Shard<L2Node>>> l2_;
  std::atomic<uint64_t> version_{1};
  std::atomic<int64_t> hits_{0};
  std::atomic<int64_t> misses_{0};
  std::atomic<int64_t> invalidations_{0};
  obs::Counter* hits_counter_ = nullptr;
  obs::Counter* misses_counter_ = nullptr;
  obs::Counter* invalidations_counter_ = nullptr;
  obs::Histogram* lookup_ms_ = nullptr;
};

}  // namespace rcc

#endif  // RCC_PLAN_PLAN_CACHE_H_
