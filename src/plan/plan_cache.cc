#include "plan/plan_cache.h"

#include <chrono>
#include <functional>

#include "common/strings.h"
#include "sql/lexer.h"

namespace rcc {

namespace {

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

char SlotTypeChar(TokenType t) {
  switch (t) {
    case TokenType::kInt:
      return 'i';
    case TokenType::kDouble:
      return 'f';
    default:
      return 's';
  }
}

}  // namespace

NormalizedSql NormalizeSql(std::string_view sql) {
  NormalizedSql out;
  auto tokens = Tokenize(sql);
  if (!tokens.ok()) return out;  // ok stays false; caller takes the slow path
  out.text.reserve(sql.size());
  bool currency_seen = false;
  for (const Token& t : *tokens) {
    if (t.type == TokenType::kEnd) break;
    if (!out.text.empty()) out.text.push_back(' ');
    switch (t.type) {
      case TokenType::kInt:
      case TokenType::kDouble:
      case TokenType::kString: {
        if (!currency_seen) {
          out.text.push_back('?');
          out.text += std::to_string(out.slots.size());
          out.text.push_back(SlotTypeChar(t.type));
          ParamSlot slot;
          slot.offset = t.offset;
          slot.value = t.type == TokenType::kInt ? Value::Int(t.int_value)
                       : t.type == TokenType::kDouble
                           ? Value::Double(t.double_value)
                           : Value::Str(t.text);
          out.slots.push_back(std::move(slot));
        } else if (t.type == TokenType::kString) {
          out.text.push_back('\'');
          out.text += t.text;
          out.text.push_back('\'');
        } else {
          out.text += t.text;
        }
        break;
      }
      case TokenType::kIdent: {
        std::string lower = ToLower(t.text);
        if (lower == "currency") currency_seen = true;
        out.text += lower;
        break;
      }
      default:
        out.text += t.text;
        break;
    }
  }
  out.ok = true;
  return out;
}

// ---------------------------------------------------------------------------
// ParameterizePlan

namespace {

struct RewriteState {
  // offset -> slot index
  std::unordered_map<size_t, size_t> by_offset;
  std::vector<size_t> matched;
  size_t rewritten = 0;
};

void RewriteStmt(SelectStmt* s, RewriteState* st);

void RewriteExpr(Expr* e, RewriteState* st) {
  if (e == nullptr) return;
  if (e->kind == ExprKind::kLiteral && e->literal_offset != Expr::kNoOffset) {
    auto it = st->by_offset.find(e->literal_offset);
    if (it != st->by_offset.end()) {
      e->kind = ExprKind::kParam;
      e->param_index = it->second;
      ++st->matched[it->second];
      ++st->rewritten;
    }
  }
  RewriteExpr(e->left.get(), st);
  RewriteExpr(e->right.get(), st);
  for (auto& a : e->args) RewriteExpr(a.get(), st);
  if (e->subquery) RewriteStmt(e->subquery.get(), st);
}

void RewriteStmt(SelectStmt* s, RewriteState* st) {
  if (s == nullptr) return;
  for (auto& item : s->items) RewriteExpr(item.expr.get(), st);
  for (auto& ref : s->from) {
    if (ref.subquery) RewriteStmt(ref.subquery.get(), st);
  }
  RewriteExpr(s->where.get(), st);
  for (auto& g : s->group_by) RewriteExpr(g.get(), st);
  RewriteExpr(s->having.get(), st);
  for (auto& o : s->order_by) RewriteExpr(o.expr.get(), st);
}

void RewriteOp(PhysicalOp* op, RewriteState* st) {
  if (op == nullptr) return;
  for (auto& e : op->seek_lo) RewriteExpr(e.get(), st);
  for (auto& e : op->seek_hi) RewriteExpr(e.get(), st);
  RewriteExpr(op->residual.get(), st);
  if (op->remote_stmt) RewriteStmt(op->remote_stmt.get(), st);
  for (auto& e : op->exprs) RewriteExpr(e.get(), st);
  for (auto& e : op->exprs2) RewriteExpr(e.get(), st);
  for (auto& a : op->aggs) RewriteExpr(a.arg.get(), st);
  for (auto& k : op->sort_keys) RewriteExpr(k.expr.get(), st);
  for (auto& c : op->children) RewriteOp(c.get(), st);
}

/// True when `e` contains a literal with no recorded source position. After
/// rewriting, such a node in a seek bound means the optimizer synthesized it
/// from something we can't tie to a slot — reuse with other values would keep
/// a stale seek, so the entry must stay value-bound.
bool HasProvenancelessLiteral(const Expr* e) {
  if (e == nullptr) return false;
  if (e->kind == ExprKind::kLiteral && e->literal_offset == Expr::kNoOffset) {
    return true;
  }
  if (HasProvenancelessLiteral(e->left.get())) return true;
  if (HasProvenancelessLiteral(e->right.get())) return true;
  for (const auto& a : e->args) {
    if (HasProvenancelessLiteral(a.get())) return true;
  }
  return false;
}

/// Value-dependent planning survives in two places: seek bounds whose
/// literals lack provenance, and scans of *partial* materialized views
/// (matched because this query's literal range fit the view's column range —
/// a different value could select outside the view).
bool ValueGenericOp(const PhysicalOp* op, const Catalog& catalog) {
  if (op == nullptr) return true;
  for (const auto& e : op->seek_lo) {
    if (HasProvenancelessLiteral(e.get())) return false;
  }
  for (const auto& e : op->seek_hi) {
    if (HasProvenancelessLiteral(e.get())) return false;
  }
  if (op->kind == PhysOpKind::kLocalScan && op->target.is_view) {
    const ViewDef* def = catalog.FindView(op->target.name);
    if (def == nullptr || !def->predicate.empty()) return false;
  }
  for (const auto& c : op->children) {
    if (!ValueGenericOp(c.get(), catalog)) return false;
  }
  return true;
}

}  // namespace

ParameterizeOutcome ParameterizePlan(QueryPlan* plan,
                                     const std::vector<ParamSlot>& slots,
                                     const Catalog& catalog) {
  ParameterizeOutcome out;
  RewriteState st;
  st.matched.assign(slots.size(), 0);
  for (size_t i = 0; i < slots.size(); ++i) st.by_offset[slots[i].offset] = i;
  RewriteOp(plan->root.get(), &st);
  for (auto& [stmt, sub] : plan->subplans) {
    (void)stmt;
    RewriteOp(sub.root.get(), &st);
  }
  out.rewritten = st.rewritten;

  // Eligibility for value-generic reuse: every slot surfaced in the plan
  // (an unmatched slot means its value was absorbed into a planning
  // decision), and no value-dependent structure survives.
  bool all_matched = true;
  for (size_t m : st.matched) {
    if (m == 0) all_matched = false;
  }
  bool generic = ValueGenericOp(plan->root.get(), catalog);
  for (const auto& [stmt, sub] : plan->subplans) {
    (void)stmt;
    if (!ValueGenericOp(sub.root.get(), catalog)) generic = false;
  }
  out.parameterized = all_matched && generic;
  return out;
}

// ---------------------------------------------------------------------------
// PlanCache

PlanCache::PlanCache(Config cfg) : cfg_(cfg) {
  if (cfg_.shards == 0) cfg_.shards = 1;
  if (cfg_.capacity_per_shard == 0) cfg_.capacity_per_shard = 1;
  l1_.reserve(cfg_.shards);
  l2_.reserve(cfg_.shards);
  for (size_t i = 0; i < cfg_.shards; ++i) {
    l1_.push_back(std::make_unique<Shard<L1Node>>());
    l2_.push_back(std::make_unique<Shard<L2Node>>());
  }
}

std::string PlanCache::MakeKey(std::string_view text, DegradeMode degrade,
                               bool timeordered) {
  std::string key(text);
  key.push_back('\x1f');
#ifdef RCC_PLANCACHE_MUTATE
  // Planted bug (conformance-oracle target): the degrade mode is dropped
  // from the key, so a plan created under SET DEGRADE NONE collides with —
  // and is served under — ALWAYS/BOUNDED, and vice versa.
  (void)degrade;
  key.push_back('x');
#else
  switch (degrade) {
    case DegradeMode::kNone:
      key.push_back('n');
      break;
    case DegradeMode::kBounded:
      key.push_back('b');
      break;
    case DegradeMode::kAlways:
      key.push_back('a');
      break;
  }
#endif
  key.push_back(timeordered ? 't' : '-');
  return key;
}

size_t PlanCache::ShardOf(std::string_view key) const {
  return std::hash<std::string_view>{}(key) % cfg_.shards;
}

PlanCache::LookupResult PlanCache::Lookup(std::string_view sql,
                                          DegradeMode degrade,
                                          bool timeordered) {
  const double start_ms = lookup_ms_ != nullptr ? NowMs() : 0;
  LookupResult out;
  out.version_at_lookup = version();

  auto record_hit = [&](std::shared_ptr<const PlanCacheEntry> entry,
                        std::vector<Value> params) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    if (hits_counter_ != nullptr) hits_counter_->Add(1);
    if (lookup_ms_ != nullptr) lookup_ms_->Observe(NowMs() - start_ms);
    out.hit = PlanCacheHit{std::move(entry), std::move(params)};
  };
  auto record_miss = [&]() {
    misses_.fetch_add(1, std::memory_order_relaxed);
    if (misses_counter_ != nullptr) misses_counter_->Add(1);
    if (lookup_ms_ != nullptr) lookup_ms_->Observe(NowMs() - start_ms);
  };

  // L1: exact raw text. The common case for fixed query pools; skips the
  // lexer entirely.
  const std::string l1_key = MakeKey(sql, degrade, timeordered);
  {
    Shard<L1Node>& shard = *l1_[ShardOf(l1_key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(l1_key);
    if (it != shard.map.end()) {
      if (it->second.entry->version == out.version_at_lookup) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
        record_hit(it->second.entry, it->second.params);
        return out;
      }
      shard.lru.erase(it->second.lru);
      shard.map.erase(it);
    }
  }

  // L2: normalized template.
  out.norm = NormalizeSql(sql);
  if (!out.norm.ok) {
    record_miss();
    return out;
  }
  const std::string l2_key = MakeKey(out.norm.text, degrade, timeordered);
  std::shared_ptr<const PlanCacheEntry> entry;
  {
    Shard<L2Node>& shard = *l2_[ShardOf(l2_key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(l2_key);
    if (it != shard.map.end()) {
      if (it->second.entry->version == out.version_at_lookup) {
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
        entry = it->second.entry;
      } else {
        shard.lru.erase(it->second.lru);
        shard.map.erase(it);
      }
    }
  }
  if (entry == nullptr) {
    record_miss();
    return out;
  }
  std::vector<Value> params;
  params.reserve(out.norm.slots.size());
  for (const ParamSlot& s : out.norm.slots) params.push_back(s.value);
  if (!entry->parameterized) {
    // Value-bound: only an exact value match may reuse the plan. Types
    // already agree (the template's typed slots force it); compare values.
    if (params.size() != entry->creation_values.size()) {
      record_miss();
      return out;
    }
    for (size_t i = 0; i < params.size(); ++i) {
      if (params[i].type() != entry->creation_values[i].type() ||
          params[i].Compare(entry->creation_values[i]) != 0) {
        record_miss();
        return out;
      }
    }
  }
  // Promote to L1 so the next identical text skips the lexer.
  {
    Shard<L1Node>& shard = *l1_[ShardOf(l1_key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(l1_key);
    if (inserted) {
      shard.lru.push_front(l1_key);
      it->second.lru = shard.lru.begin();
      it->second.entry = entry;
      it->second.params = params;
      if (shard.map.size() > cfg_.capacity_per_shard) {
        shard.map.erase(shard.lru.back());
        shard.lru.pop_back();
      }
    } else {
      it->second.entry = entry;
      it->second.params = params;
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
    }
  }
  record_hit(std::move(entry), std::move(params));
  return out;
}

void PlanCache::Insert(const NormalizedSql& norm, std::string_view raw_sql,
                       DegradeMode degrade, bool timeordered,
                       std::shared_ptr<PlanCacheEntry> entry,
                       uint64_t version_at_lookup) {
  if (!norm.ok || entry == nullptr) return;
  // The catalog moved while this plan was being built: it may already be
  // stale, so execute it but never publish it.
  if (version() != version_at_lookup) return;
  entry->version = version_at_lookup;
  std::shared_ptr<const PlanCacheEntry> frozen = std::move(entry);

  const std::string l2_key = MakeKey(norm.text, degrade, timeordered);
  {
    Shard<L2Node>& shard = *l2_[ShardOf(l2_key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(l2_key);
    if (inserted) {
      shard.lru.push_front(l2_key);
      it->second.lru = shard.lru.begin();
    } else {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
    }
    it->second.entry = frozen;
    if (shard.map.size() > cfg_.capacity_per_shard) {
      shard.map.erase(shard.lru.back());
      shard.lru.pop_back();
    }
  }

  std::vector<Value> params;
  params.reserve(norm.slots.size());
  for (const ParamSlot& s : norm.slots) params.push_back(s.value);
  const std::string l1_key = MakeKey(raw_sql, degrade, timeordered);
  {
    Shard<L1Node>& shard = *l1_[ShardOf(l1_key)];
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(l1_key);
    if (inserted) {
      shard.lru.push_front(l1_key);
      it->second.lru = shard.lru.begin();
    } else {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru);
    }
    it->second.entry = frozen;
    it->second.params = std::move(params);
    if (shard.map.size() > cfg_.capacity_per_shard) {
      shard.map.erase(shard.lru.back());
      shard.lru.pop_back();
    }
  }
}

void PlanCache::Invalidate() {
  version_.fetch_add(1, std::memory_order_acq_rel);
  invalidations_.fetch_add(1, std::memory_order_relaxed);
  if (invalidations_counter_ != nullptr) invalidations_counter_->Add(1);
}

size_t PlanCache::size() const {
  size_t n = 0;
  for (const auto& s : l1_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->map.size();
  }
  for (const auto& s : l2_) {
    std::lock_guard<std::mutex> lock(s->mu);
    n += s->map.size();
  }
  return n;
}

void PlanCache::SetInstruments(obs::Counter* hits, obs::Counter* misses,
                               obs::Counter* invalidations,
                               obs::Histogram* lookup_ms) {
  hits_counter_ = hits;
  misses_counter_ = misses;
  invalidations_counter_ = invalidations;
  lookup_ms_ = lookup_ms;
}

}  // namespace rcc
