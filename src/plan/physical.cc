#include "plan/physical.h"

#include "common/strings.h"

namespace rcc {

std::string_view PhysOpKindName(PhysOpKind kind) {
  switch (kind) {
    case PhysOpKind::kLocalScan:
      return "Scan";
    case PhysOpKind::kRemoteQuery:
      return "RemoteQuery";
    case PhysOpKind::kFilter:
      return "Filter";
    case PhysOpKind::kProject:
      return "Project";
    case PhysOpKind::kNestedLoopJoin:
      return "NestedLoopJoin";
    case PhysOpKind::kHashJoin:
      return "HashJoin";
    case PhysOpKind::kSort:
      return "Sort";
    case PhysOpKind::kHashAggregate:
      return "HashAggregate";
    case PhysOpKind::kSwitchUnion:
      return "SwitchUnion";
  }
  return "?";
}

std::string_view PlanShapeName(PlanShape shape) {
  switch (shape) {
    case PlanShape::kRemoteOnly:
      return "remote-only";
    case PlanShape::kLocalJoinRemoteFetches:
      return "local-join-remote-fetches";
    case PlanShape::kMixed:
      return "mixed";
    case PlanShape::kAllLocal:
      return "all-local";
  }
  return "?";
}

std::string PhysicalOp::Describe() const {
  std::string out(PhysOpKindName(kind));
  switch (kind) {
    case PhysOpKind::kLocalScan: {
      out += " " + target.name;
      if (!index_name.empty()) out += " index=" + index_name;
      if (!seek_lo.empty() || !seek_hi.empty()) out += " seek";
      if (residual) out += " residual=" + residual->ToString();
      break;
    }
    case PhysOpKind::kRemoteQuery:
      out += " [" + remote_stmt->ToString() + "]";
      break;
    case PhysOpKind::kFilter:
    case PhysOpKind::kNestedLoopJoin:
      if (residual) out += " pred=" + residual->ToString();
      break;
    case PhysOpKind::kHashJoin: {
      out += " keys=";
      for (size_t i = 0; i < exprs.size(); ++i) {
        if (i > 0) out += ",";
        out += exprs[i]->ToString() + "=" + exprs2[i]->ToString();
      }
      if (residual) out += " residual=" + residual->ToString();
      break;
    }
    case PhysOpKind::kSwitchUnion:
      out += StrPrintf(" guard(region=%d, bound=%lldms)", guard_region,
                       static_cast<long long>(guard_bound_ms));
      break;
    default:
      break;
  }
  out += StrPrintf("  {rows=%.0f cost=%.3f}", est_rows, est_cost);
  return out;
}

std::string PhysicalOp::DescribeTree(int indent) const {
  std::string out(static_cast<size_t>(indent) * 2, ' ');
  out += Describe();
  out += "\n";
  for (const auto& child : children) {
    out += child->DescribeTree(indent + 1);
  }
  return out;
}

namespace {

void CountLeaves(const PhysicalOp& op, int* switch_unions, int* bare_remotes,
                 int* bare_scans, bool under_switch = false) {
  if (op.kind == PhysOpKind::kSwitchUnion) {
    ++*switch_unions;
    for (const auto& c : op.children) {
      CountLeaves(*c, switch_unions, bare_remotes, bare_scans, true);
    }
    return;
  }
  if (op.kind == PhysOpKind::kRemoteQuery) {
    if (!under_switch) ++*bare_remotes;
    return;
  }
  if (op.kind == PhysOpKind::kLocalScan) {
    if (!under_switch) ++*bare_scans;
    return;
  }
  for (const auto& c : op.children) {
    CountLeaves(*c, switch_unions, bare_remotes, bare_scans, under_switch);
  }
}

}  // namespace

PlanShape QueryPlan::Shape() const {
  int switch_unions = 0;
  int bare_remotes = 0;
  int bare_scans = 0;
  CountLeaves(*root, &switch_unions, &bare_remotes, &bare_scans);
  if (switch_unions == 0) {
    // No guarded local access at all.
    if (bare_remotes <= 1 && bare_scans == 0) return PlanShape::kRemoteOnly;
    return PlanShape::kLocalJoinRemoteFetches;
  }
  if (bare_remotes > 0) return PlanShape::kMixed;
  return PlanShape::kAllLocal;
}

std::string QueryPlan::DescribeTree() const { return root->DescribeTree(); }

}  // namespace rcc
