#ifndef RCC_PLAN_PROPERTIES_H_
#define RCC_PLAN_PROPERTIES_H_

#include <set>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "semantics/constraint.h"

namespace rcc {

/// Region ids >= kDynamicRegionBase denote the *dynamic* output of a
/// SwitchUnion: at run time the rows come either from the local region or
/// from the back-end, so the only safe static guarantee is "the operands
/// under this SwitchUnion are mutually consistent with each other" — which a
/// fresh region id expresses (it never merges with any other group).
inline constexpr RegionId kDynamicRegionBase = 1 << 20;

/// The *delivered consistency property* of a (partial) physical plan: a set
/// of tuples <Ri, Si> where Si is the set of input operands of the current
/// expression that belong to currency region Ri (paper §3.2.2).
class ConsistencyProperty {
 public:
  struct Group {
    RegionId region = kBackendRegion;
    std::set<InputOperandId> operands;
  };

  ConsistencyProperty() = default;

  /// Property of a leaf access: one operand served from one region (the
  /// back-end region for remote fetches).
  static ConsistencyProperty Leaf(RegionId region, InputOperandId op);

  /// Property of a multi-operand access served from one region/source (e.g.
  /// a remote query computing a join: all its operands come from the same
  /// back-end snapshot).
  static ConsistencyProperty Uniform(RegionId region,
                                     const std::set<InputOperandId>& ops);

  /// Join combine: union of the groups; groups with the same region id merge
  /// (paper: "If they have two tuples with the same region id, the input
  /// sets of the two tuples are merged").
  static ConsistencyProperty Join(const ConsistencyProperty& a,
                                  const ConsistencyProperty& b);

  /// SwitchUnion combine: "we can only guarantee that two input operands are
  /// consistent if they are consistent in all children". Operands consistent
  /// in every child form a group tagged with a fresh dynamic region id drawn
  /// from `next_dynamic_id` (incremented).
  static ConsistencyProperty SwitchUnion(
      const std::vector<ConsistencyProperty>& children,
      RegionId* next_dynamic_id);

  const std::vector<Group>& groups() const { return groups_; }

  /// All operands covered by this property.
  std::set<InputOperandId> AllOperands() const;

  /// Conflicting property: some operand appears in two groups with different
  /// region ids (paper's "Conflicting consistency property" definition; can
  /// arise from joining two projection views of one table from different
  /// regions).
  bool IsConflicting() const;

  /// Consistency satisfaction rule (complete plans): not conflicting, and
  /// every required consistency class is contained in some delivered group.
  bool Satisfies(const NormalizedConstraint& required) const;

  /// Consistency violation rule (partial plans): conflicting, or some
  /// delivered group intersects more than one required class — such a plan
  /// can never be extended into a satisfying one and is discarded early.
  bool Violates(const NormalizedConstraint& required) const;

  std::string ToString() const;

 private:
  std::vector<Group> groups_;
};

}  // namespace rcc

#endif  // RCC_PLAN_PROPERTIES_H_
