#ifndef RCC_TXN_UPDATE_LOG_H_
#define RCC_TXN_UPDATE_LOG_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "storage/table.h"
#include "txn/oracle.h"

namespace rcc {

/// A single row modification inside a committed transaction.
struct RowOp {
  enum class Kind { kInsert, kUpdate, kDelete };

  Kind kind = Kind::kInsert;
  /// Master table the op applies to.
  std::string table;
  /// Full new row for insert/update; unused for delete.
  Row row;
  /// The *source* primary key the op addresses: the deleted row's key for
  /// kDelete, the pre-image key for kUpdate (filled in by the back-end when
  /// the transaction executes; it differs from KeyOf(row) when the update
  /// changes a clustered-key column), derivable from `row` for kInsert.
  TableKey key;
};

/// A committed update transaction, as shipped to replicas. Transactional
/// replication applies these one at a time, in commit order, which is what
/// makes all views served by the same distribution agent mutually consistent
/// (paper §3.1).
struct CommittedTxn {
  TxnTimestamp id = kInitialTimestamp;
  /// Virtual time at which the transaction committed on the back-end.
  SimTimeMs commit_time = 0;
  std::vector<RowOp> ops;
};

/// Append-only log of committed transactions on the back-end; distribution
/// agents each track their own read position.
class UpdateLog {
 public:
  UpdateLog() = default;

  UpdateLog(const UpdateLog&) = delete;
  UpdateLog& operator=(const UpdateLog&) = delete;

  /// Appends a committed transaction. Ids must be increasing.
  void Append(CommittedTxn txn);

  size_t size() const { return txns_.size(); }
  const CommittedTxn& at(size_t i) const { return txns_[i]; }

  /// Index of the first transaction with commit_time > t, i.e. the log
  /// position an agent snapshotting at time t replicates up to.
  size_t UpperBoundByCommitTime(SimTimeMs t) const;

  /// Timestamp of the last transaction at or before log position `pos`
  /// (kInitialTimestamp when pos == 0).
  TxnTimestamp TimestampAtPosition(size_t pos) const;

 private:
  std::vector<CommittedTxn> txns_;
};

}  // namespace rcc

#endif  // RCC_TXN_UPDATE_LOG_H_
