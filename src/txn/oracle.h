#ifndef RCC_TXN_ORACLE_H_
#define RCC_TXN_ORACLE_H_

#include <cstdint>

#include "common/clock.h"

namespace rcc {

/// Monotonically increasing commit timestamp, one per update transaction.
/// Matches the paper's appendix model where "the DBMS assigns [committed
/// transactions] an integer id—a timestamp—in increasing order".
using TxnTimestamp = uint64_t;

/// Sentinel for "no transaction" / the initial database state H0.
inline constexpr TxnTimestamp kInitialTimestamp = 0;

/// Issues commit timestamps and remembers both the logical timestamp and the
/// virtual commit time of the most recent transaction.
class TimestampOracle {
 public:
  TimestampOracle() = default;

  /// Assigns the next commit timestamp, recording the commit virtual time.
  TxnTimestamp NextCommit(SimTimeMs commit_time) {
    last_commit_time_ = commit_time;
    return ++last_;
  }

  TxnTimestamp last_committed() const { return last_; }
  SimTimeMs last_commit_time() const { return last_commit_time_; }

 private:
  TxnTimestamp last_ = kInitialTimestamp;
  SimTimeMs last_commit_time_ = 0;
};

}  // namespace rcc

#endif  // RCC_TXN_ORACLE_H_
