#include "txn/update_log.h"

#include <algorithm>

#include "common/logging.h"

namespace rcc {

void UpdateLog::Append(CommittedTxn txn) {
  RCC_CHECK(txns_.empty() || txn.id > txns_.back().id,
            "update log timestamps must be increasing");
  RCC_CHECK(txns_.empty() || txn.commit_time >= txns_.back().commit_time,
            "update log commit times must be non-decreasing");
  txns_.push_back(std::move(txn));
}

size_t UpdateLog::UpperBoundByCommitTime(SimTimeMs t) const {
  auto it = std::upper_bound(
      txns_.begin(), txns_.end(), t,
      [](SimTimeMs lhs, const CommittedTxn& rhs) { return lhs < rhs.commit_time; });
  return static_cast<size_t>(it - txns_.begin());
}

TxnTimestamp UpdateLog::TimestampAtPosition(size_t pos) const {
  if (pos == 0) return kInitialTimestamp;
  RCC_CHECK(pos <= txns_.size(), "log position out of range");
  return txns_[pos - 1].id;
}

}  // namespace rcc
