#ifndef RCC_COMMON_RNG_H_
#define RCC_COMMON_RNG_H_

#include <cstdint>

namespace rcc {

/// Deterministic xorshift64* generator. Used by workload generators and the
/// query-arrival simulator so every experiment is reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL)
      : state_(seed ? seed : 0x9E3779B97F4A7C15ULL) {}

  /// Next raw 64-bit value.
  uint64_t Next() {
    state_ ^= state_ >> 12;
    state_ ^= state_ << 25;
    state_ ^= state_ >> 27;
    return state_ * 0x2545F4914F6CDD1DULL;
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t Uniform(int64_t lo, int64_t hi) {
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(Next() % span);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace rcc

#endif  // RCC_COMMON_RNG_H_
