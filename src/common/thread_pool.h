#ifndef RCC_COMMON_THREAD_POOL_H_
#define RCC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rcc {

/// A fixed pool of worker threads executing submitted tasks FIFO. Used by the
/// concurrent query-execution layer (`RccSystem::ExecuteConcurrent`) to run
/// read-only sessions in parallel between virtual-clock ticks.
///
/// Tasks must not throw (the library is exception-free) and must not submit
/// further tasks into the same pool from within a task (no nesting — a query
/// is one task).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Joins all workers; pending tasks are still executed before shutdown.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task (fire-and-forget).
  void Submit(std::function<void()> task);

  /// Runs `tasks` across the pool and blocks until every one has finished.
  /// Tasks may complete in any order; callers that need ordered results
  /// should write into pre-sized slots indexed by task.
  void Run(std::vector<std::function<void()>> tasks);

  /// Number of worker threads a caller should default to on this machine.
  static int DefaultWorkers();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace rcc

#endif  // RCC_COMMON_THREAD_POOL_H_
