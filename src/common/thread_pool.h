#ifndef RCC_COMMON_THREAD_POOL_H_
#define RCC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace rcc {

/// A fixed pool of worker threads executing submitted tasks FIFO. Used by the
/// concurrent query-execution layer (`RccSystem::ExecuteConcurrent`) and the
/// network front end (`server::RccServer`) to run read-only sessions in
/// parallel between virtual-clock ticks.
///
/// Tasks must not throw (the library is exception-free) and must not submit
/// further tasks into the same pool from within a task (no nesting — a query
/// is one task).
///
/// Shutdown semantics are deterministic: every task accepted by Submit runs
/// exactly once — Shutdown (and the destructor) drain the queue before
/// joining — and once shutdown has begun Submit rejects instead of
/// enqueueing, so no task can be accepted and then silently dropped. Callers
/// that want to abandon queued work ask explicitly with CancelPending.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Equivalent to Shutdown(): drains pending tasks, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues one task (fire-and-forget). Returns false — without
  /// enqueueing — once Shutdown has begun: an accepted task is guaranteed
  /// to run, a rejected one is guaranteed not to have been.
  bool Submit(std::function<void()> task);

  /// Runs `tasks` across the pool and blocks until every one has finished.
  /// Tasks may complete in any order; callers that need ordered results
  /// should write into pre-sized slots indexed by task.
  void Run(std::vector<std::function<void()>> tasks);

  /// Stops accepting new tasks, waits for the queue to drain and every
  /// worker to finish, then joins them. Idempotent; safe to call before the
  /// destructor (which then does nothing).
  void Shutdown();

  /// Removes tasks that are queued but not yet started and returns how many
  /// were discarded. The pool stays usable. This is the explicit
  /// "reject queued work" escape hatch for force-stop paths.
  size_t CancelPending();

  /// Number of worker threads a caller should default to on this machine.
  static int DefaultWorkers();

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
};

}  // namespace rcc

#endif  // RCC_COMMON_THREAD_POOL_H_
