#ifndef RCC_COMMON_STATUS_H_
#define RCC_COMMON_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace rcc {

/// Error categories used across the library. The set mirrors the failure
/// modes of the paper's system: parse errors for the extended SQL grammar,
/// constraint violations when a C&C requirement cannot be met, and the usual
/// engine-internal categories.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kParseError,
  /// A query's currency/consistency constraint cannot be satisfied by any
  /// available plan or data source (e.g. timeline-consistency conflicts).
  kConstraintViolation,
  kNotSupported,
  kInternal,
  kUnavailable,
  /// Advisory, not an error: a query was answered from local data that
  /// misses (or only barely meets) its currency bound because the back-end
  /// was unreachable — the paper's "return the data but with an error code"
  /// contract (§1). Carried alongside a result, never returned as the
  /// operation status of a failed call.
  kStaleOk,
  /// A statement's deadline expired before it finished; the work was
  /// cancelled at a batch boundary and its snapshot pin released. Retryable
  /// by the client (with a fresh deadline). Deliberately distinct from
  /// kUnavailable: the conformance oracle's degrade-refusal rule keys on
  /// Unavailable refusals, and a timeout is not a currency refusal.
  kDeadlineExceeded,
  /// The server's admission queue is over its configured limit or queue
  /// delay; the statement was rejected before execution. Retryable after
  /// backoff — an overloaded server sheds load, it does not disconnect.
  kOverloaded,
};

/// Returns a short human-readable name such as "ParseError".
std::string_view StatusCodeName(StatusCode code);

/// Arrow/RocksDB-style status object. Library code never throws; fallible
/// operations return Status or Result<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ConstraintViolation(std::string msg) {
    return Status(StatusCode::kConstraintViolation, std::move(msg));
  }
  static Status NotSupported(std::string msg) {
    return Status(StatusCode::kNotSupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status StaleOk(std::string msg) {
    return Status(StatusCode::kStaleOk, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Overloaded(std::string msg) {
    return Status(StatusCode::kOverloaded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsParseError() const { return code_ == StatusCode::kParseError; }
  bool IsConstraintViolation() const {
    return code_ == StatusCode::kConstraintViolation;
  }
  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsStaleOk() const { return code_ == StatusCode::kStaleOk; }
  bool IsDeadlineExceeded() const {
    return code_ == StatusCode::kDeadlineExceeded;
  }
  bool IsOverloaded() const { return code_ == StatusCode::kOverloaded; }

  /// Renders "<Code>: <message>" (or "OK").
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Propagates a non-OK Status from the enclosing function.
#define RCC_RETURN_NOT_OK(expr)              \
  do {                                       \
    ::rcc::Status _st = (expr);              \
    if (!_st.ok()) return _st;               \
  } while (false)

}  // namespace rcc

#endif  // RCC_COMMON_STATUS_H_
