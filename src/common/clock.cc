#include "common/clock.h"

#include <cstdio>
#include <memory>

namespace rcc {

void VirtualClock::AdvanceTo(SimTimeMs t) {
  if (t > now_) now_ = t;
}

void SimulationScheduler::ScheduleAt(SimTimeMs at,
                                     std::function<void(SimTimeMs)> fn,
                                     CancelToken cancel) {
  SimEvent ev;
  ev.at = at < clock_->Now() ? clock_->Now() : at;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  ev.cancel = std::move(cancel);
  queue_.push(std::move(ev));
}

void SimulationScheduler::SchedulePeriodic(SimTimeMs first, SimTimeMs period,
                                           std::function<void(SimTimeMs)> fn,
                                           CancelToken cancel) {
  // The wrapper reschedules itself after each firing; the cancel token rides
  // along on every rescheduled event, so cancellation also ends the series.
  auto wrapper = std::make_shared<std::function<void(SimTimeMs)>>();
  auto body = fn;
  *wrapper = [this, period, body, wrapper, cancel](SimTimeMs now) {
    body(now);
    ScheduleAt(now + period, *wrapper, cancel);
  };
  ScheduleAt(first, *wrapper, cancel);
}

void SimulationScheduler::RunUntil(SimTimeMs t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    SimEvent ev = queue_.top();
    queue_.pop();
    clock_->AdvanceTo(ev.at);
    if (ev.cancel != nullptr && ev.cancel->load(std::memory_order_acquire)) {
      continue;
    }
    ev.fn(clock_->Now());
  }
  clock_->AdvanceTo(t);
}

std::string FormatSimTime(SimTimeMs t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld.%03llds",
                static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  return buf;
}

}  // namespace rcc
