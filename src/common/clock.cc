#include "common/clock.h"

#include <cstdio>
#include <memory>

namespace rcc {

void VirtualClock::AdvanceTo(SimTimeMs t) {
  if (t > now_) now_ = t;
}

void SimulationScheduler::ScheduleAt(SimTimeMs at,
                                     std::function<void(SimTimeMs)> fn) {
  SimEvent ev;
  ev.at = at < clock_->Now() ? clock_->Now() : at;
  ev.seq = next_seq_++;
  ev.fn = std::move(fn);
  queue_.push(std::move(ev));
}

void SimulationScheduler::SchedulePeriodic(SimTimeMs first, SimTimeMs period,
                                           std::function<void(SimTimeMs)> fn) {
  // The wrapper reschedules itself after each firing.
  auto wrapper = std::make_shared<std::function<void(SimTimeMs)>>();
  auto body = fn;
  *wrapper = [this, period, body, wrapper](SimTimeMs now) {
    body(now);
    ScheduleAt(now + period, *wrapper);
  };
  ScheduleAt(first, *wrapper);
}

void SimulationScheduler::RunUntil(SimTimeMs t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    SimEvent ev = queue_.top();
    queue_.pop();
    clock_->AdvanceTo(ev.at);
    ev.fn(clock_->Now());
  }
  clock_->AdvanceTo(t);
}

std::string FormatSimTime(SimTimeMs t) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%lld.%03llds",
                static_cast<long long>(t / 1000),
                static_cast<long long>(t % 1000));
  return buf;
}

}  // namespace rcc
