#ifndef RCC_COMMON_LOGGING_H_
#define RCC_COMMON_LOGGING_H_

#include <cstdio>
#include <cstdlib>

namespace rcc {

/// Internal invariant check: aborts with a message when violated. Used for
/// conditions that indicate a bug in the library, never for user errors
/// (those surface as Status).
#define RCC_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "RCC_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, (msg));                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

#ifndef NDEBUG
#define RCC_DCHECK(cond, msg) RCC_CHECK(cond, msg)
#else
#define RCC_DCHECK(cond, msg) \
  do {                        \
  } while (false)
#endif

}  // namespace rcc

#endif  // RCC_COMMON_LOGGING_H_
