#ifndef RCC_COMMON_RESULT_H_
#define RCC_COMMON_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "common/status.h"

namespace rcc {

/// Value-or-Status, in the style of arrow::Result. A Result is either OK and
/// holds a T, or holds a non-OK Status. Accessing the value of a failed
/// Result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from a non-OK status (failure). Constructing a
  /// Result from an OK status is a bug (OK-without-value would make ok()
  /// false while status().ok() is true, so error propagation would silently
  /// return OK); the status is coerced to an Internal error so the mistake
  /// surfaces deterministically in every build type.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ =
          Status::Internal("Result constructed from OK status without a value");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  /// Returns the held value; only valid when ok().
  T& value() & {
    assert(ok());
    return *value_;
  }
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

  /// Returns the value, or `fallback` when this Result holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_{Status::OK()};
};

/// Evaluates `expr` (a Result<T>), propagating its error; on success binds
/// the value to `lhs`. `lhs` may include a declaration, e.g.
///   RCC_ASSIGN_OR_RETURN(auto plan, Optimize(q));
#define RCC_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value();

#define RCC_ASSIGN_OR_RETURN_CONCAT_(a, b) a##b
#define RCC_ASSIGN_OR_RETURN_CONCAT(a, b) RCC_ASSIGN_OR_RETURN_CONCAT_(a, b)

#define RCC_ASSIGN_OR_RETURN(lhs, expr) \
  RCC_ASSIGN_OR_RETURN_IMPL(            \
      RCC_ASSIGN_OR_RETURN_CONCAT(_rcc_result_, __LINE__), lhs, expr)

}  // namespace rcc

#endif  // RCC_COMMON_RESULT_H_
