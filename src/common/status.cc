#include "common/status.h"

namespace rcc {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kConstraintViolation:
      return "ConstraintViolation";
    case StatusCode::kNotSupported:
      return "NotSupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kStaleOk:
      return "StaleOk";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kOverloaded:
      return "Overloaded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace rcc
