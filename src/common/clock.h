#ifndef RCC_COMMON_CLOCK_H_
#define RCC_COMMON_CLOCK_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <string>
#include <vector>

namespace rcc {

/// Simulated time in milliseconds since simulation start. All
/// replication/heartbeat/currency arithmetic in the library uses this type so
/// that experiments (e.g. the Fig. 4.2 workload-shift curves) are
/// deterministic and independent of wall-clock speed.
using SimTimeMs = int64_t;

/// A virtual clock. The paper's prototype measures currency against
/// wall-clock time on SQL Server machines; we substitute a discrete virtual
/// clock that replication agents, heartbeats, and queries share.
class VirtualClock {
 public:
  VirtualClock() = default;

  /// Current virtual time.
  SimTimeMs Now() const { return now_; }

  /// Advances the clock; time never moves backwards.
  void AdvanceTo(SimTimeMs t);
  void AdvanceBy(SimTimeMs delta) { AdvanceTo(now_ + delta); }

 private:
  SimTimeMs now_ = 0;
};

/// Shared flag that cancels scheduled events. Owners hand the same token to
/// every event they schedule; setting it to true makes pending events no-ops
/// and stops periodic events from rescheduling. shared_ptr ownership means
/// the flag outlives both the owner and the queue, so a cancelled event
/// never touches freed memory (the DistributionAgent::Stop() contract).
using CancelToken = std::shared_ptr<std::atomic<bool>>;

inline CancelToken MakeCancelToken() {
  return std::make_shared<std::atomic<bool>>(false);
}

/// A single scheduled simulation event.
struct SimEvent {
  SimTimeMs at = 0;
  /// Tie-break so that events scheduled earlier fire first at equal times.
  uint64_t seq = 0;
  std::function<void(SimTimeMs)> fn;
  /// When set and true at fire time, the event is skipped (and, for periodic
  /// events, not rescheduled).
  CancelToken cancel;
};

/// Minimal discrete-event scheduler driving the replication simulator.
/// Events are callbacks; periodic events re-schedule themselves.
class SimulationScheduler {
 public:
  explicit SimulationScheduler(VirtualClock* clock) : clock_(clock) {}

  SimulationScheduler(const SimulationScheduler&) = delete;
  SimulationScheduler& operator=(const SimulationScheduler&) = delete;

  /// Schedules `fn` to run at absolute virtual time `at` (clamped to now).
  /// A non-null `cancel` token set to true before the event fires turns the
  /// firing into a no-op.
  void ScheduleAt(SimTimeMs at, std::function<void(SimTimeMs)> fn,
                  CancelToken cancel = nullptr);

  /// Schedules `fn` every `period` ms, first firing at `first`. A non-null
  /// `cancel` token set to true stops the series: the pending firing is
  /// skipped and nothing further is rescheduled.
  void SchedulePeriodic(SimTimeMs first, SimTimeMs period,
                        std::function<void(SimTimeMs)> fn,
                        CancelToken cancel = nullptr);

  /// Runs all events with timestamp <= t, advancing the clock through each
  /// event time and finally to t itself.
  void RunUntil(SimTimeMs t);

  /// Number of events currently pending.
  size_t pending() const { return queue_.size(); }

  VirtualClock* clock() const { return clock_; }

 private:
  struct EventCompare {
    bool operator()(const SimEvent& a, const SimEvent& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  VirtualClock* clock_;
  uint64_t next_seq_ = 0;
  std::priority_queue<SimEvent, std::vector<SimEvent>, EventCompare> queue_;
};

/// Formats a SimTimeMs as seconds with millisecond precision, e.g. "12.345s".
std::string FormatSimTime(SimTimeMs t);

}  // namespace rcc

#endif  // RCC_COMMON_CLOCK_H_
