#ifndef RCC_COMMON_STRINGS_H_
#define RCC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rcc {

/// Lower-cases ASCII characters; SQL identifiers/keywords are
/// case-insensitive in our dialect.
std::string ToLower(std::string_view s);

/// True if two strings are equal ignoring ASCII case.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character, trimming surrounding whitespace from each
/// piece; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace rcc

#endif  // RCC_COMMON_STRINGS_H_
