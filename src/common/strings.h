#ifndef RCC_COMMON_STRINGS_H_
#define RCC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rcc {

/// Branchless ASCII-only lowercase of one byte. Deliberately NOT
/// `std::tolower`: that is locale-dependent (keyword recognition must not
/// change when the host process runs under tr_TR or a Latin-1 locale) and
/// UB for negative `char` values, which high-bit bytes inside UTF-8 string
/// literals produce on signed-char platforms. Bytes outside 'A'..'Z' —
/// including everything >= 0x80 — pass through unchanged.
inline char AsciiToLowerChar(char c) {
  unsigned char u = static_cast<unsigned char>(c);
  return static_cast<char>(
      u | ((static_cast<unsigned>(u - 'A') < 26u) << 5));
}

/// Lower-cases ASCII characters only; SQL identifiers/keywords are
/// case-insensitive in our dialect, and non-ASCII bytes (e.g. inside string
/// literals) are preserved byte-for-byte.
std::string ToLower(std::string_view s);

/// True if two strings are equal ignoring ASCII case (non-ASCII bytes must
/// match exactly).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits on a single character, trimming surrounding whitespace from each
/// piece; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

/// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace rcc

#endif  // RCC_COMMON_STRINGS_H_
