#ifndef RCC_COMMON_FAULT_CONFIG_H_
#define RCC_COMMON_FAULT_CONFIG_H_

#include <cstdint>
#include <vector>

#include "common/clock.h"

namespace rcc {

/// A hard-outage window [start_ms, end_ms) in virtual time.
struct OutageWindow {
  SimTimeMs start_ms = 0;
  SimTimeMs end_ms = 0;
};

/// Knobs shared by every fault injector in the system (the query-path
/// FaultInjector and the replication-path ReplicationFaultInjector both
/// inherit from this): a seed for the deterministic RNG stream and the
/// outage schedule, explicit and periodic. Factoring them here keeps the
/// two injectors from drifting apart — an experiment can script the same
/// outage against both links from one description.
struct FaultScheduleConfig {
  uint64_t seed = 0xFA17u;
  /// Explicit outage windows (sorted or not; checked linearly).
  std::vector<OutageWindow> outages;
  /// Periodic outage schedule: when outage_period_ms > 0, the link is down
  /// during the first outage_down_ms of every period (e.g. period 20s, down
  /// 6s = a scripted 30% outage).
  SimTimeMs outage_period_ms = 0;
  SimTimeMs outage_down_ms = 0;
};

/// True when `now` falls into an outage (explicit window or periodic) of
/// `schedule`. The single implementation both injectors call.
inline bool InOutageAt(const FaultScheduleConfig& schedule, SimTimeMs now) {
  for (const OutageWindow& w : schedule.outages) {
    if (now >= w.start_ms && now < w.end_ms) return true;
  }
  if (schedule.outage_period_ms > 0 && schedule.outage_down_ms > 0) {
    if (now % schedule.outage_period_ms < schedule.outage_down_ms) return true;
  }
  return false;
}

}  // namespace rcc

#endif  // RCC_COMMON_FAULT_CONFIG_H_
