#include "common/thread_pool.h"

#include <memory>

namespace rcc {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Per-call completion state, shared with the wrapped tasks so overlapping
  // Run calls (from different threads) each wait on their own batch only.
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = tasks.size();
  for (std::function<void()>& task : tasks) {
    Submit([barrier, body = std::move(task)] {
      body();
      std::lock_guard<std::mutex> lock(barrier->mu);
      if (--barrier->remaining == 0) barrier->cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(barrier->mu);
  barrier->cv.wait(lock, [&] { return barrier->remaining == 0; });
}

int ThreadPool::DefaultWorkers() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rcc
