#include "common/thread_pool.h"

#include <memory>

namespace rcc {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
}

size_t ThreadPool::CancelPending() {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = queue_.size();
  queue_.clear();
  return dropped;
}

bool ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // After shutdown begins, workers may already have observed an empty
    // queue and exited — a task enqueued now could never run. Reject it
    // instead of accepting-and-dropping.
    if (stop_) return false;
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
  return true;
}

void ThreadPool::Run(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  // Per-call completion state, shared with the wrapped tasks so overlapping
  // Run calls (from different threads) each wait on their own batch only.
  struct Barrier {
    std::mutex mu;
    std::condition_variable cv;
    size_t remaining;
  };
  auto barrier = std::make_shared<Barrier>();
  barrier->remaining = tasks.size();
  for (std::function<void()>& task : tasks) {
    std::function<void()> wrapped = [barrier, body = std::move(task)] {
      body();
      std::lock_guard<std::mutex> lock(barrier->mu);
      if (--barrier->remaining == 0) barrier->cv.notify_all();
    };
    // Pool shutting down: run inline so Run's contract (every task
    // executes exactly once) still holds for the caller.
    if (!Submit(wrapped)) wrapped();
  }
  std::unique_lock<std::mutex> lock(barrier->mu);
  barrier->cv.wait(lock, [&] { return barrier->remaining == 0; });
}

int ThreadPool::DefaultWorkers() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace rcc
