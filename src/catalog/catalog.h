#ifndef RCC_CATALOG_CATALOG_H_
#define RCC_CATALOG_CATALOG_H_

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/statistics.h"
#include "common/clock.h"
#include "common/result.h"
#include "storage/schema.h"

namespace rcc {

/// Identifier of a currency region ("cid" in the paper's catalog columns).
using RegionId = int32_t;

/// Reserved region for data fetched from the back-end server: always current
/// and mutually consistent within one query execution.
inline constexpr RegionId kBackendRegion = 0;

/// Secondary-index definition (by column names).
struct IndexDef {
  std::string name;
  std::vector<std::string> columns;
};

/// Definition of a base table (on the back-end; shadowed on the cache).
struct TableDef {
  std::string name;
  Schema schema;
  /// Clustered (primary) key column names.
  std::vector<std::string> clustered_key;
  std::vector<IndexDef> secondary_indexes;
};

/// An inclusive range restriction on one column, used for materialized-view
/// predicates and for predicate subsumption during view matching.
struct ColumnRange {
  std::string column;
  std::optional<Value> lo;
  std::optional<Value> hi;
};

/// Definition of a materialized view on the cache DBMS. Views are selections
/// and projections of a single back-end table (paper §3 item 2), kept up to
/// date by transactional replication, and assigned to one currency region.
struct ViewDef {
  std::string name;
  std::string source_table;
  /// Projected columns (must include the source's clustered key so the view
  /// can be maintained incrementally).
  std::vector<std::string> columns;
  /// Conjunction of column ranges; empty = whole table.
  std::vector<ColumnRange> predicate;
  RegionId region = kBackendRegion;
  std::vector<IndexDef> secondary_indexes;
};

/// Currency-region metadata: the three catalog columns the prototype added
/// (cid, update_interval, update_delay; paper §3.1) plus the heartbeat rate.
struct RegionDef {
  RegionId cid = 0;
  /// How often the distribution agent propagates updates (f), ms.
  SimTimeMs update_interval = 0;
  /// Delay for an update to reach the cache (d), ms.
  SimTimeMs update_delay = 0;
  /// How often the region's heartbeat row is touched at the back-end, ms.
  SimTimeMs heartbeat_interval = 1000;
};

/// Schema + statistics + region metadata shared by the back-end and cache.
/// Mutations (AddTable/AddView/AddRegion/SetStats) are single-threaded setup
/// operations; once the system is configured, catalogs are read-only and the
/// const accessors are safe to call from concurrent query workers
/// (DESIGN.md §8).
class Catalog {
 public:
  Catalog() = default;

  /// Move-only (catalogs are large; copying is almost always a bug).
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;
  Catalog(Catalog&&) = default;
  Catalog& operator=(Catalog&&) = default;

  /// -- Tables ------------------------------------------------------------
  Status AddTable(TableDef def);
  const TableDef* FindTable(std::string_view name) const;
  std::vector<std::string> TableNames() const;

  /// -- Materialized views (cache side) ------------------------------------
  Status AddView(ViewDef def);
  const ViewDef* FindView(std::string_view name) const;
  /// All views whose source is `table_name`.
  std::vector<const ViewDef*> ViewsOnTable(std::string_view table_name) const;
  std::vector<const ViewDef*> AllViews() const;

  /// -- Logical views ---------------------------------------------------------
  /// A logical (non-materialized) view: a named SELECT that the resolver
  /// expands in place, exercising the paper's view-expansion step of
  /// constraint normalization. Stored as text so the catalog stays
  /// independent of the SQL front-end.
  Status AddLogicalView(std::string name, std::string sql);
  /// The view's SELECT text, or nullptr.
  const std::string* FindLogicalView(std::string_view name) const;

  /// -- Currency regions ----------------------------------------------------
  Status AddRegion(RegionDef def);
  const RegionDef* FindRegion(RegionId cid) const;
  std::vector<RegionDef> AllRegions() const;

  /// -- Statistics ----------------------------------------------------------
  void SetStats(const std::string& table_name, TableStats stats);
  /// Statistics for a base table; empty stats if unknown.
  const TableStats& GetStats(std::string_view table_name) const;

  /// Resolves the clustered-key column positions for a table definition.
  static std::vector<size_t> ResolveColumns(
      const Schema& schema, const std::vector<std::string>& names);

  /// Schema of a view = projection of the source table's schema.
  Result<Schema> ViewSchema(const ViewDef& view) const;

 private:
  std::map<std::string, TableDef> tables_;  // lower-case name -> def
  std::map<std::string, ViewDef> views_;
  std::map<std::string, std::string> logical_views_;
  std::map<RegionId, RegionDef> regions_;
  std::map<std::string, TableStats> stats_;
  TableStats empty_stats_;
};

}  // namespace rcc

#endif  // RCC_CATALOG_CATALOG_H_
