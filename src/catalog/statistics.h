#ifndef RCC_CATALOG_STATISTICS_H_
#define RCC_CATALOG_STATISTICS_H_

#include <map>
#include <optional>
#include <string>

#include "storage/table.h"

namespace rcc {

/// Per-column statistics: value bounds and distinct count, enough for the
/// uniform-distribution selectivity estimates the optimizer uses.
struct ColumnStats {
  Value min;
  Value max;
  int64_t distinct_count = 1;
};

/// Table-level statistics. The cache DBMS keeps the *back-end's* statistics
/// on its shadow tables (paper §3 item 1), so optimization on the cache sees
/// the same cardinalities the back-end would.
struct TableStats {
  int64_t row_count = 0;
  /// Average row width in bytes; drives page-count and transfer estimates.
  double avg_row_bytes = 64.0;
  std::map<std::string, ColumnStats> columns;

  /// Estimated pages at `page_bytes` bytes per page (>= 1).
  double EstimatedPages(double page_bytes = 8192.0) const;

  /// Selectivity of `col = literal` (1/distinct, clamped to [0,1]).
  double EqSelectivity(const std::string& column) const;

  /// Selectivity of an inclusive range predicate over `column`; open bounds
  /// are allowed. Assumes a uniform distribution between min and max.
  double RangeSelectivity(const std::string& column, const Value* lo,
                          const Value* hi) const;
};

/// Computes exact statistics by scanning a table (used when loading data into
/// the back-end; the cache imports the result).
TableStats ComputeTableStats(const Table& table);

}  // namespace rcc

#endif  // RCC_CATALOG_STATISTICS_H_
