#include "catalog/catalog.h"

#include "common/logging.h"
#include "common/strings.h"

namespace rcc {

Status Catalog::AddTable(TableDef def) {
  std::string key = ToLower(def.name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("table " + def.name + " already exists");
  }
  for (const std::string& c : def.clustered_key) {
    if (!def.schema.FindColumn(c)) {
      return Status::InvalidArgument("clustered key column " + c +
                                     " not in schema of " + def.name);
    }
  }
  tables_.emplace(std::move(key), std::move(def));
  return Status::OK();
}

const TableDef* Catalog::FindTable(std::string_view name) const {
  auto it = tables_.find(ToLower(name));
  return it == tables_.end() ? nullptr : &it->second;
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [key, def] : tables_) out.push_back(def.name);
  return out;
}

Status Catalog::AddView(ViewDef def) {
  std::string key = ToLower(def.name);
  if (views_.count(key) > 0) {
    return Status::AlreadyExists("view " + def.name + " already exists");
  }
  const TableDef* src = FindTable(def.source_table);
  if (src == nullptr) {
    return Status::NotFound("view source table " + def.source_table +
                            " not found");
  }
  for (const std::string& c : def.columns) {
    if (!src->schema.FindColumn(c)) {
      return Status::InvalidArgument("view column " + c + " not in " +
                                     def.source_table);
    }
  }
  // The view must carry the source clustered key for incremental maintenance.
  for (const std::string& kc : src->clustered_key) {
    bool found = false;
    for (const std::string& c : def.columns) {
      if (EqualsIgnoreCase(c, kc)) {
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("view " + def.name +
                                     " must project clustered key column " +
                                     kc);
    }
  }
  if (regions_.count(def.region) == 0) {
    return Status::NotFound("currency region " + std::to_string(def.region) +
                            " not defined");
  }
  views_.emplace(std::move(key), std::move(def));
  return Status::OK();
}

const ViewDef* Catalog::FindView(std::string_view name) const {
  auto it = views_.find(ToLower(name));
  return it == views_.end() ? nullptr : &it->second;
}

std::vector<const ViewDef*> Catalog::ViewsOnTable(
    std::string_view table_name) const {
  std::vector<const ViewDef*> out;
  for (const auto& [key, view] : views_) {
    if (EqualsIgnoreCase(view.source_table, table_name)) {
      out.push_back(&view);
    }
  }
  return out;
}

std::vector<const ViewDef*> Catalog::AllViews() const {
  std::vector<const ViewDef*> out;
  out.reserve(views_.size());
  for (const auto& [key, view] : views_) out.push_back(&view);
  return out;
}

Status Catalog::AddLogicalView(std::string name, std::string sql) {
  std::string key = ToLower(name);
  if (logical_views_.count(key) > 0 || tables_.count(key) > 0) {
    return Status::AlreadyExists("name " + name + " already in use");
  }
  logical_views_.emplace(std::move(key), std::move(sql));
  return Status::OK();
}

const std::string* Catalog::FindLogicalView(std::string_view name) const {
  auto it = logical_views_.find(ToLower(name));
  return it == logical_views_.end() ? nullptr : &it->second;
}

Status Catalog::AddRegion(RegionDef def) {
  if (def.cid == kBackendRegion) {
    return Status::InvalidArgument(
        "region id 0 is reserved for the back-end");
  }
  if (regions_.count(def.cid) > 0) {
    return Status::AlreadyExists("region " + std::to_string(def.cid) +
                                 " already exists");
  }
  regions_.emplace(def.cid, def);
  return Status::OK();
}

const RegionDef* Catalog::FindRegion(RegionId cid) const {
  auto it = regions_.find(cid);
  return it == regions_.end() ? nullptr : &it->second;
}

std::vector<RegionDef> Catalog::AllRegions() const {
  std::vector<RegionDef> out;
  out.reserve(regions_.size());
  for (const auto& [cid, def] : regions_) out.push_back(def);
  return out;
}

void Catalog::SetStats(const std::string& table_name, TableStats stats) {
  stats_[ToLower(table_name)] = std::move(stats);
}

const TableStats& Catalog::GetStats(std::string_view table_name) const {
  auto it = stats_.find(ToLower(table_name));
  return it == stats_.end() ? empty_stats_ : it->second;
}

std::vector<size_t> Catalog::ResolveColumns(
    const Schema& schema, const std::vector<std::string>& names) {
  std::vector<size_t> out;
  out.reserve(names.size());
  for (const std::string& n : names) {
    auto idx = schema.FindColumn(n);
    RCC_CHECK(idx.has_value(), "column not found during resolution");
    out.push_back(*idx);
  }
  return out;
}

Result<Schema> Catalog::ViewSchema(const ViewDef& view) const {
  const TableDef* src = FindTable(view.source_table);
  if (src == nullptr) {
    return Status::NotFound("source table " + view.source_table);
  }
  std::vector<Column> cols;
  for (const std::string& c : view.columns) {
    auto idx = src->schema.FindColumn(c);
    if (!idx) return Status::NotFound("column " + c);
    cols.push_back(src->schema.column(*idx));
  }
  return Schema(std::move(cols));
}

}  // namespace rcc
