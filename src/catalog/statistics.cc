#include "catalog/statistics.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace rcc {

double TableStats::EstimatedPages(double page_bytes) const {
  double pages = static_cast<double>(row_count) * avg_row_bytes / page_bytes;
  return pages < 1.0 ? 1.0 : pages;
}

double TableStats::EqSelectivity(const std::string& column) const {
  auto it = columns.find(column);
  if (it == columns.end() || it->second.distinct_count <= 0) return 0.1;
  double sel = 1.0 / static_cast<double>(it->second.distinct_count);
  return std::clamp(sel, 0.0, 1.0);
}

double TableStats::RangeSelectivity(const std::string& column, const Value* lo,
                                    const Value* hi) const {
  auto it = columns.find(column);
  if (it == columns.end()) return 0.3;  // default guess
  const ColumnStats& cs = it->second;
  if (!cs.min.is_numeric() || !cs.max.is_numeric()) return 0.3;
  double mn = cs.min.AsDouble();
  double mx = cs.max.AsDouble();
  if (mx <= mn) return 1.0;
  double a = lo && lo->is_numeric() ? std::max(lo->AsDouble(), mn) : mn;
  double b = hi && hi->is_numeric() ? std::min(hi->AsDouble(), mx) : mx;
  if (b < a) return 0.0;
  return std::clamp((b - a) / (mx - mn), 0.0, 1.0);
}

TableStats ComputeTableStats(const Table& table) {
  TableStats stats;
  stats.row_count = static_cast<int64_t>(table.num_rows());
  const Schema& schema = table.schema();

  std::vector<std::set<std::string>> distinct(schema.num_columns());
  std::vector<Value> mins(schema.num_columns());
  std::vector<Value> maxs(schema.num_columns());
  std::vector<bool> seen(schema.num_columns(), false);
  double total_bytes = 0;

  table.Scan([&](const Row& row) {
    for (size_t c = 0; c < schema.num_columns(); ++c) {
      const Value& v = row[c];
      if (v.is_null()) continue;
      if (!seen[c]) {
        mins[c] = v;
        maxs[c] = v;
        seen[c] = true;
      } else {
        if (v.Compare(mins[c]) < 0) mins[c] = v;
        if (maxs[c].Compare(v) < 0) maxs[c] = v;
      }
      distinct[c].insert(v.ToString());
      total_bytes += v.is_string() ? 16.0 + v.AsString().size() : 8.0;
    }
    return true;
  });

  if (stats.row_count > 0) {
    stats.avg_row_bytes = total_bytes / static_cast<double>(stats.row_count);
  }
  for (size_t c = 0; c < schema.num_columns(); ++c) {
    ColumnStats cs;
    if (seen[c]) {
      cs.min = mins[c];
      cs.max = maxs[c];
      cs.distinct_count = static_cast<int64_t>(distinct[c].size());
    }
    stats.columns[schema.column(c).name] = cs;
  }
  return stats;
}

}  // namespace rcc
