#include "workload/tpcd.h"

#include "common/rng.h"
#include "common/strings.h"

namespace rcc {

int64_t TpcdCustomerCount(const TpcdConfig& config) {
  return static_cast<int64_t>(150000.0 * config.scale);
}

Status LoadTpcd(RccSystem* system, const TpcdConfig& config) {
  BackendServer* backend = system->backend();

  TableDef customer;
  customer.name = "Customer";
  customer.schema = Schema({
      {"c_custkey", ValueType::kInt64},
      {"c_name", ValueType::kString},
      {"c_nationkey", ValueType::kInt64},
      {"c_acctbal", ValueType::kDouble},
  });
  customer.clustered_key = {"c_custkey"};
  customer.secondary_indexes.push_back(
      IndexDef{"idx_customer_acctbal", {"c_acctbal"}});
  RCC_RETURN_NOT_OK(backend->CreateTable(customer));

  TableDef orders;
  orders.name = "Orders";
  orders.schema = Schema({
      {"o_custkey", ValueType::kInt64},
      {"o_orderkey", ValueType::kInt64},
      {"o_totalprice", ValueType::kDouble},
      {"o_orderdate", ValueType::kInt64},  // yyyymmdd
  });
  orders.clustered_key = {"o_custkey", "o_orderkey"};
  RCC_RETURN_NOT_OK(backend->CreateTable(orders));

  Rng rng(config.seed);
  int64_t customers = TpcdCustomerCount(config);
  std::vector<Row> crows;
  std::vector<Row> orows;
  crows.reserve(static_cast<size_t>(customers));
  int64_t orderkey = 1;
  for (int64_t ck = 1; ck <= customers; ++ck) {
    double acctbal =
        -999.99 + static_cast<double>(rng.Uniform(0, 1099998)) / 100.0;
    crows.push_back(Row{
        Value::Int(ck),
        Value::Str(StrPrintf("Customer#%09lld", static_cast<long long>(ck))),
        Value::Int(rng.Uniform(0, 24)),
        Value::Double(acctbal),
    });
    // Paper: customers have 10 orders on average. Vary 5..15.
    int64_t n = rng.Uniform(config.orders_per_customer - 5,
                            config.orders_per_customer + 5);
    for (int64_t i = 0; i < n; ++i) {
      int64_t year = rng.Uniform(1992, 1998);
      int64_t month = rng.Uniform(1, 12);
      int64_t day = rng.Uniform(1, 28);
      orows.push_back(Row{
          Value::Int(ck),
          Value::Int(orderkey++),
          Value::Double(static_cast<double>(rng.Uniform(100, 500000)) / 100.0),
          Value::Int(year * 10000 + month * 100 + day),
      });
    }
  }
  RCC_RETURN_NOT_OK(backend->BulkLoad("Customer", crows));
  RCC_RETURN_NOT_OK(backend->BulkLoad("Orders", orows));
  return system->cache()->CreateShadow();
}

Status SetupPaperCache(RccSystem* system) {
  // Paper Table 4.1 (seconds -> ms): CR1 interval 15 delay 5; CR2 10/5.
  RegionDef cr1;
  cr1.cid = 1;
  cr1.update_interval = 15000;
  cr1.update_delay = 5000;
  cr1.heartbeat_interval = 1000;
  RegionDef cr2;
  cr2.cid = 2;
  cr2.update_interval = 10000;
  cr2.update_delay = 5000;
  cr2.heartbeat_interval = 1000;
  return SetupPaperCacheWithRegions(system, cr1, cr2);
}

Status SetupPaperCacheWithRegions(RccSystem* system, const RegionDef& cr1,
                                  const RegionDef& cr2) {
  CacheDbms* cache = system->cache();
  RCC_RETURN_NOT_OK(cache->DefineRegion(cr1));
  RCC_RETURN_NOT_OK(cache->DefineRegion(cr2));

  ViewDef cust_prj;
  cust_prj.name = "cust_prj";
  cust_prj.source_table = "Customer";
  cust_prj.columns = {"c_custkey", "c_name", "c_nationkey", "c_acctbal"};
  cust_prj.region = cr1.cid;
  RCC_RETURN_NOT_OK(cache->CreateView(cust_prj));

  ViewDef orders_prj;
  orders_prj.name = "orders_prj";
  orders_prj.source_table = "Orders";
  orders_prj.columns = {"o_custkey", "o_orderkey", "o_totalprice"};
  orders_prj.region = cr2.cid;
  return cache->CreateView(orders_prj);
}

void StartUpdateTraffic(RccSystem* system, SimTimeMs period_ms,
                        uint64_t seed) {
  auto rng = std::make_shared<Rng>(seed);
  BackendServer* backend = system->backend();
  system->scheduler()->SchedulePeriodic(
      system->Now() + period_ms, period_ms, [backend, rng](SimTimeMs) {
        const Table* customer = backend->table("Customer");
        if (customer == nullptr || customer->num_rows() == 0) return;
        int64_t customers = static_cast<int64_t>(customer->num_rows());
        int64_t ck = rng->Uniform(1, customers);
        const Row* row = customer->Get(TableKey{Value::Int(ck)});
        if (row == nullptr) return;
        Row updated = *row;
        updated[3] = Value::Double(updated[3].AsDouble() + 1.0);
        RowOp op;
        op.kind = RowOp::Kind::kUpdate;
        op.table = "Customer";
        op.row = std::move(updated);
        std::vector<RowOp> ops;
        ops.push_back(std::move(op));
        // Also touch one order of that customer when present.
        const Table* orders = backend->table("Orders");
        if (orders != nullptr) {
          const Row* orow = nullptr;
          TableKey lo{Value::Int(ck)};
          orders->RangeScan(&lo, &lo, [&](const Row& r) {
            orow = &r;
            return false;
          });
          if (orow != nullptr) {
            Row oupd = *orow;
            oupd[2] = Value::Double(oupd[2].AsDouble() + 0.5);
            RowOp oop;
            oop.kind = RowOp::Kind::kUpdate;
            oop.table = "Orders";
            oop.row = std::move(oupd);
            ops.push_back(std::move(oop));
          }
        }
        auto st = backend->ExecuteTransaction(std::move(ops));
        (void)st;
      });
}

}  // namespace rcc
