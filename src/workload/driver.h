#ifndef RCC_WORKLOAD_DRIVER_H_
#define RCC_WORKLOAD_DRIVER_H_

#include <string>

#include "core/system.h"

namespace rcc {

/// Result of repeatedly executing a guarded query over virtual time.
struct WorkloadRunResult {
  int64_t executions = 0;
  int64_t local = 0;   // SwitchUnion decisions that stayed local
  int64_t remote = 0;  // decisions that went to the back-end
  int64_t rows = 0;

  double LocalFraction() const {
    int64_t total = local + remote;
    return total == 0 ? 0.0 : static_cast<double>(local) /
                                  static_cast<double>(total);
  }
};

/// Executes `sql` `executions` times with query start times uniformly
/// distributed over [start, start + horizon) in virtual time (the Fig. 4.2
/// setup: "query start time is uniformly distributed"), advancing the
/// simulation between queries so heartbeats and agents run. The plan is
/// prepared once and re-executed, like a cached prepared statement.
Result<WorkloadRunResult> RunUniformWorkload(RccSystem* system,
                                             const std::string& sql,
                                             int64_t executions,
                                             SimTimeMs horizon,
                                             uint64_t seed = 1);

}  // namespace rcc

#endif  // RCC_WORKLOAD_DRIVER_H_
