#include "workload/bookstore.h"

#include "common/rng.h"
#include "common/strings.h"

namespace rcc {

Status LoadBookstore(RccSystem* system, const BookstoreConfig& config) {
  BackendServer* backend = system->backend();

  TableDef books;
  books.name = "Books";
  books.schema = Schema({
      {"isbn", ValueType::kInt64},
      {"title", ValueType::kString},
      {"price", ValueType::kDouble},
      {"stock", ValueType::kInt64},
  });
  books.clustered_key = {"isbn"};
  books.secondary_indexes.push_back(IndexDef{"idx_books_price", {"price"}});
  RCC_RETURN_NOT_OK(backend->CreateTable(books));

  TableDef reviews;
  reviews.name = "Reviews";
  reviews.schema = Schema({
      {"isbn", ValueType::kInt64},
      {"review_id", ValueType::kInt64},
      {"rating", ValueType::kInt64},
  });
  reviews.clustered_key = {"isbn", "review_id"};
  RCC_RETURN_NOT_OK(backend->CreateTable(reviews));

  TableDef sales;
  sales.name = "Sales";
  sales.schema = Schema({
      {"sale_id", ValueType::kInt64},
      {"isbn", ValueType::kInt64},
      {"year", ValueType::kInt64},
      {"amount", ValueType::kDouble},
  });
  sales.clustered_key = {"sale_id"};
  sales.secondary_indexes.push_back(IndexDef{"idx_sales_isbn", {"isbn"}});
  RCC_RETURN_NOT_OK(backend->CreateTable(sales));

  Rng rng(config.seed);
  std::vector<Row> brows;
  std::vector<Row> rrows;
  std::vector<Row> srows;
  int64_t review_id = 1;
  int64_t sale_id = 1;
  for (int64_t isbn = 1; isbn <= config.books; ++isbn) {
    brows.push_back(Row{
        Value::Int(isbn),
        Value::Str(StrPrintf("Book %lld", static_cast<long long>(isbn))),
        Value::Double(static_cast<double>(rng.Uniform(500, 15000)) / 100.0),
        Value::Int(rng.Uniform(0, 200)),
    });
    int64_t nr = rng.Uniform(1, 2L * config.reviews_per_book - 1);
    for (int64_t r = 0; r < nr; ++r) {
      rrows.push_back(Row{Value::Int(isbn), Value::Int(review_id++),
                          Value::Int(rng.Uniform(1, 5))});
    }
    int64_t ns = rng.Uniform(0, 2L * config.sales_per_book);
    for (int64_t s = 0; s < ns; ++s) {
      srows.push_back(Row{
          Value::Int(sale_id++),
          Value::Int(isbn),
          Value::Int(rng.Uniform(2001, 2004)),
          Value::Double(static_cast<double>(rng.Uniform(500, 15000)) / 100.0),
      });
    }
  }
  RCC_RETURN_NOT_OK(backend->BulkLoad("Books", brows));
  RCC_RETURN_NOT_OK(backend->BulkLoad("Reviews", rrows));
  RCC_RETURN_NOT_OK(backend->BulkLoad("Sales", srows));
  return system->cache()->CreateShadow();
}

Status SetupBookstoreCache(RccSystem* system, SimTimeMs refresh_interval_ms,
                           SimTimeMs delay_ms) {
  CacheDbms* cache = system->cache();
  RegionDef r1;
  r1.cid = 1;
  r1.update_interval = refresh_interval_ms;
  r1.update_delay = delay_ms;
  r1.heartbeat_interval = 1000;
  RegionDef r2 = r1;
  r2.cid = 2;
  RCC_RETURN_NOT_OK(cache->DefineRegion(r1));
  RCC_RETURN_NOT_OK(cache->DefineRegion(r2));

  ViewDef books_copy;
  books_copy.name = "BooksCopy";
  books_copy.source_table = "Books";
  books_copy.columns = {"isbn", "title", "price", "stock"};
  books_copy.region = 1;
  RCC_RETURN_NOT_OK(cache->CreateView(books_copy));

  ViewDef reviews_copy;
  reviews_copy.name = "ReviewsCopy";
  reviews_copy.source_table = "Reviews";
  reviews_copy.columns = {"isbn", "review_id", "rating"};
  reviews_copy.region = 2;
  RCC_RETURN_NOT_OK(cache->CreateView(reviews_copy));

  ViewDef sales_copy;
  sales_copy.name = "SalesCopy";
  sales_copy.source_table = "Sales";
  sales_copy.columns = {"sale_id", "isbn", "year", "amount"};
  sales_copy.region = 1;  // consistent with BooksCopy
  sales_copy.secondary_indexes.push_back(
      IndexDef{"idx_salescopy_isbn", {"isbn"}});
  return cache->CreateView(sales_copy);
}

}  // namespace rcc
