#include "workload/driver.h"

#include <algorithm>

#include "common/rng.h"
#include "sql/parser.h"

namespace rcc {

Result<WorkloadRunResult> RunUniformWorkload(RccSystem* system,
                                             const std::string& sql,
                                             int64_t executions,
                                             SimTimeMs horizon,
                                             uint64_t seed) {
  RCC_ASSIGN_OR_RETURN(auto select, ParseSelect(sql));
  RCC_ASSIGN_OR_RETURN(QueryPlan plan, system->cache()->Prepare(*select));

  // Draw arrival times uniformly over the horizon, then visit in order.
  Rng rng(seed);
  SimTimeMs start = system->Now();
  std::vector<SimTimeMs> arrivals;
  arrivals.reserve(static_cast<size_t>(executions));
  for (int64_t i = 0; i < executions; ++i) {
    arrivals.push_back(start + rng.Uniform(0, horizon - 1));
  }
  std::sort(arrivals.begin(), arrivals.end());

  WorkloadRunResult out;
  for (SimTimeMs at : arrivals) {
    system->AdvanceTo(at);
    RCC_ASSIGN_OR_RETURN(CacheQueryOutcome outcome,
                         system->cache()->ExecutePrepared(plan));
    ++out.executions;
    out.local += outcome.stats.switch_local;
    out.remote += outcome.stats.switch_remote;
    out.rows += outcome.stats.rows_returned;
  }
  return out;
}

}  // namespace rcc
