#ifndef RCC_WORKLOAD_BOOKSTORE_H_
#define RCC_WORKLOAD_BOOKSTORE_H_

#include "core/system.h"

namespace rcc {

/// The small online book store of the paper's §2: Books, Reviews and Sales.
/// Used by the specification examples (E1-E4, Q1-Q3) and the bookstore
/// example application.
struct BookstoreConfig {
  int64_t books = 500;
  int reviews_per_book = 4;
  int sales_per_book = 6;
  uint64_t seed = 7;
};

/// Creates/loads Books(isbn, title, price, stock), Reviews(isbn, review_id,
/// rating) and Sales(sale_id, isbn, year, amount) on the back-end and the
/// shadow catalog on the cache.
Status LoadBookstore(RccSystem* system, const BookstoreConfig& config);

/// Cache configuration for the bookstore: BooksCopy and ReviewsCopy
/// "refreshed once every hour" in the paper's narrative — here regions R1
/// and R2 with configurable intervals; SalesCopy shares R1 so queries can
/// require Books/Sales consistency.
Status SetupBookstoreCache(RccSystem* system, SimTimeMs refresh_interval_ms,
                           SimTimeMs delay_ms);

}  // namespace rcc

#endif  // RCC_WORKLOAD_BOOKSTORE_H_
