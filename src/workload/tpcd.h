#ifndef RCC_WORKLOAD_TPCD_H_
#define RCC_WORKLOAD_TPCD_H_

#include "core/system.h"

namespace rcc {

/// The TPCD subset used in the paper's evaluation (§4): Customer and Orders.
/// At scale factor 1.0 the paper has 150,000 customers and 1,500,000 orders;
/// the generator reproduces the same schema, key structure, ratios and value
/// distributions at any scale.
struct TpcdConfig {
  double scale = 0.01;  // 1,500 customers / 15,000 orders
  uint64_t seed = 20040613;
  /// Orders per customer (paper: "Customers have 10 orders on average").
  int orders_per_customer = 10;
};

/// Number of customers at this scale.
int64_t TpcdCustomerCount(const TpcdConfig& config);

/// Creates and loads Customer and Orders on the back-end, with the paper's
/// physical design: Customer clustered on c_custkey with a secondary index
/// on c_acctbal; Orders clustered on (o_custkey, o_orderkey).
Status LoadTpcd(RccSystem* system, const TpcdConfig& config);

/// Applies the paper's cache configuration (Table 4.1): currency regions
/// CR1 (interval 15s, delay 5s) holding cust_prj and CR2 (interval 10s,
/// delay 5s) holding orders_prj, both projection views.
Status SetupPaperCache(RccSystem* system);

/// Same, but with configurable region parameters (used by the workload-shift
/// experiments, which sweep interval and delay).
Status SetupPaperCacheWithRegions(RccSystem* system, const RegionDef& cr1,
                                  const RegionDef& cr2);

/// A steady trickle of update transactions against Customer/Orders so the
/// cached views keep going stale: every `period_ms` one transaction updates
/// a customer's balance and one order's total price.
void StartUpdateTraffic(RccSystem* system, SimTimeMs period_ms, uint64_t seed);

}  // namespace rcc

#endif  // RCC_WORKLOAD_TPCD_H_
