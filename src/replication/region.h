#ifndef RCC_REPLICATION_REGION_H_
#define RCC_REPLICATION_REGION_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "replication/health.h"
#include "storage/table.h"
#include "txn/update_log.h"

namespace rcc {

/// A materialized view on the cache DBMS: a selection + projection of one
/// back-end table, stored as a local table and maintained incrementally by
/// the region's distribution agent applying back-end transactions in commit
/// order.
class MaterializedView {
 public:
  /// `source` must outlive the view. The view's clustered key is the
  /// projection of the source's clustered key.
  static Result<std::unique_ptr<MaterializedView>> Create(
      ViewDef def, const TableDef& source);

  const ViewDef& def() const { return def_; }
  const Table& data() const { return data_; }
  Table& mutable_data() { return data_; }
  const Schema& schema() const { return data_.schema(); }

  /// Positions (in the source schema) of the view's columns, in view order.
  const std::vector<size_t>& source_projection() const { return proj_; }

  /// True when a source row falls inside the view's predicate.
  bool PredicateMatches(const Row& source_row) const;

  /// Projects a source row into the view's schema.
  Row ProjectRow(const Row& source_row) const;

  /// Applies one replicated row operation (against the *source* table's
  /// schema) to the view, honoring the selection predicate: updates that move
  /// a row out of range delete it; updates that move a row into range insert
  /// it.
  void ApplyOp(const RowOp& op);

  /// Bulk-loads the view from the current contents of the master table
  /// (initial population when the replication subscription is created).
  void PopulateFrom(const Table& master);

 private:
  MaterializedView(ViewDef def, Schema schema,
                   std::vector<size_t> clustered_key, std::vector<size_t> proj,
                   std::vector<size_t> pred_cols)
      : def_(std::move(def)),
        data_(def_.name, std::move(schema), std::move(clustered_key)),
        proj_(std::move(proj)),
        pred_cols_(std::move(pred_cols)) {}

  ViewDef def_;
  Table data_;
  std::vector<size_t> proj_;
  /// Source-schema column positions of def_.predicate, parallel to it.
  std::vector<size_t> pred_cols_;
};

/// Runtime state of a currency region on the cache: its definition, the views
/// it maintains, the local heartbeat value, and the back-end snapshot the
/// region currently reflects. All views in one region are updated atomically
/// by the same agent and are therefore mutually consistent at all times
/// (paper §3.1).
///
/// Concurrency: a region carries a reader–writer lock (`data_lock()`), the
/// unit of the engine's lock hierarchy. Concurrent query workers hold it
/// shared while scanning the region's views; `DistributionAgent::Deliver`
/// holds it exclusive while applying a replication batch, so every reader
/// sees all views at one back-end snapshot. The local heartbeat is an atomic
/// published *after* the batch (release/acquire), so a guard that observes
/// heartbeat T is guaranteed the region data reflects at least snapshot T;
/// `delivery_epoch()` stamps each install for race-free re-probe detection.
class CurrencyRegion {
 public:
  explicit CurrencyRegion(RegionDef def) : def_(def) {}

  CurrencyRegion(const CurrencyRegion&) = delete;
  CurrencyRegion& operator=(const CurrencyRegion&) = delete;

  const RegionDef& def() const { return def_; }
  RegionId id() const { return def_.cid; }

  void AddView(MaterializedView* view);
  const std::vector<MaterializedView*>& views() const { return views_; }

  /// Views whose source is `lower_table` (an already lower-cased table
  /// name); nullptr when the region maintains none. This is the delivery
  /// hot path: one map lookup per row op instead of a case-insensitive
  /// string compare per (op × view).
  const std::vector<MaterializedView*>* ViewsOf(
      const std::string& lower_table) const;

  /// Local heartbeat timestamp T: all back-end updates committed at or before
  /// virtual time T have been applied here. Atomic so currency-guard probes
  /// on worker threads never race the agent's install.
  SimTimeMs local_heartbeat() const {
    return local_heartbeat_.load(std::memory_order_acquire);
  }
  void set_local_heartbeat(SimTimeMs t) {
    local_heartbeat_.store(t, std::memory_order_release);
  }

  /// Upper bound on the staleness of this region's data at time `now`
  /// (t - T in the paper).
  SimTimeMs CurrencyAt(SimTimeMs now) const { return now - local_heartbeat(); }

  /// Replication-pipeline health (HEALTHY → SUSPECT → QUARANTINED →
  /// RESYNCING → HEALTHY). Atomic: guards on worker threads read it while
  /// the agent transitions it. Quarantine must be *published before* any
  /// other recovery action (memory_order_release on the store, acquire on
  /// the load) — it is what invalidates the heartbeat.
  RegionHealth health() const {
    return health_.load(std::memory_order_acquire);
  }
  void set_health(RegionHealth h) {
    health_.store(h, std::memory_order_release);
  }

  /// The heartbeat value a currency guard may trust: the local heartbeat
  /// while the pipeline is HEALTHY or SUSPECT, nullopt once the region is
  /// QUARANTINED or RESYNCING — a quarantined region's staleness bound is no
  /// longer knowable, so guards must see "unknown region" and refuse rather
  /// than certify freshness off a heartbeat the pipeline can't back.
  std::optional<SimTimeMs> certified_heartbeat() const {
    // Health before heartbeat: quarantine stores health first (release), so
    // a reader that still sees HEALTHY reads a heartbeat value that was
    // valid when published — never a value the quarantine already withdrew.
    if (!HeartbeatValid(health())) return std::nullopt;
    return local_heartbeat();
  }

  /// Monotonic count of delivery installs; bumped (with release ordering,
  /// after the heartbeat store) at the end of every `Deliver`. Guard
  /// re-probes and tests use it to tell "same heartbeat value" from "no new
  /// delivery happened".
  uint64_t delivery_epoch() const {
    return delivery_epoch_.load(std::memory_order_acquire);
  }
  void BumpDeliveryEpoch() {
    delivery_epoch_.fetch_add(1, std::memory_order_release);
  }

  /// Reader–writer lock over the region's view data: shared for query scans
  /// and guard-plus-scan sequences, exclusive for replication deliveries.
  /// Lock ordering: regions are always acquired in ascending cid order, and
  /// no thread takes a second region's lock while holding one exclusively.
  std::shared_mutex& data_lock() const { return data_lock_; }

  /// The region's data reflects the back-end snapshot H_{as_of}.
  TxnTimestamp as_of() const { return as_of_; }
  void set_as_of(TxnTimestamp ts) { as_of_ = ts; }

  /// Log position the region has applied up to.
  size_t applied_log_pos() const { return applied_log_pos_; }
  void set_applied_log_pos(size_t p) { applied_log_pos_ = p; }

 private:
  RegionDef def_;
  std::vector<MaterializedView*> views_;
  /// Lower-cased source-table name → views maintained from it.
  std::map<std::string, std::vector<MaterializedView*>> views_by_source_;
  std::atomic<SimTimeMs> local_heartbeat_{0};
  std::atomic<RegionHealth> health_{RegionHealth::kHealthy};
  std::atomic<uint64_t> delivery_epoch_{0};
  mutable std::shared_mutex data_lock_;
  /// `as_of_` and `applied_log_pos_` are written under the exclusive
  /// data_lock_ and read either under it or from the single simulation
  /// thread between batches.
  TxnTimestamp as_of_ = kInitialTimestamp;
  size_t applied_log_pos_ = 0;
};

}  // namespace rcc

#endif  // RCC_REPLICATION_REGION_H_
