#ifndef RCC_REPLICATION_REGION_H_
#define RCC_REPLICATION_REGION_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/clock.h"
#include "replication/health.h"
#include "replication/snapshot.h"
#include "storage/table.h"
#include "txn/update_log.h"

namespace rcc {

/// A materialized view on the cache DBMS: a selection + projection of one
/// back-end table, stored as a local table and maintained incrementally by
/// the region's distribution agent applying back-end transactions in commit
/// order.
class MaterializedView {
 public:
  /// `source` must outlive the view. The view's clustered key is the
  /// projection of the source's clustered key.
  static Result<std::unique_ptr<MaterializedView>> Create(
      ViewDef def, const TableDef& source);

  const ViewDef& def() const { return def_; }
  const Table& data() const { return data_; }
  Table& mutable_data() { return data_; }
  const Schema& schema() const { return data_.schema(); }

  /// Deep copy (rows + secondary indexes). The delivery path clones only the
  /// views a batch touches; untouched views are shared between snapshots.
  std::shared_ptr<MaterializedView> Clone() const;

  /// Positions (in the source schema) of the view's columns, in view order.
  const std::vector<size_t>& source_projection() const { return proj_; }

  /// True when a source row falls inside the view's predicate.
  bool PredicateMatches(const Row& source_row) const;

  /// Projects a source row into the view's schema.
  Row ProjectRow(const Row& source_row) const;

  /// Applies one replicated row operation (against the *source* table's
  /// schema) to the view, honoring the selection predicate: updates that move
  /// a row out of range delete it; updates that move a row into range insert
  /// it.
  void ApplyOp(const RowOp& op);

  /// Bulk-loads the view from the current contents of the master table
  /// (initial population when the replication subscription is created).
  void PopulateFrom(const Table& master);

 private:
  MaterializedView(ViewDef def, Schema schema,
                   std::vector<size_t> clustered_key, std::vector<size_t> proj,
                   std::vector<size_t> pred_cols)
      : def_(std::move(def)),
        data_(def_.name, std::move(schema), std::move(clustered_key)),
        proj_(std::move(proj)),
        pred_cols_(std::move(pred_cols)) {}

  ViewDef def_;
  Table data_;
  std::vector<size_t> proj_;
  /// Source-schema column positions of def_.predicate, parallel to it.
  std::vector<size_t> pred_cols_;
};

/// One published version of a region: every view plus the metadata that
/// certifies it ({heartbeat, as_of, applied_log_pos, health}), immutable
/// after publication. Because all of it travels in one snapshot, the
/// health-before-heartbeat publication-order dance of the lock era is gone:
/// a reader either sees the whole new version or the whole old one.
struct RegionSnapshot {
  /// Publication sequence number, bumped on *every* publish (data installs,
  /// heartbeat refreshes, health transitions). All local serves of one
  /// region inside one query must come from a single epoch — the oracle
  /// checks this structurally.
  uint64_t epoch = 0;
  /// Local heartbeat timestamp T: all back-end updates committed at or
  /// before virtual time T are reflected in `views`.
  SimTimeMs heartbeat = 0;
  /// The data reflects the back-end snapshot H_{as_of}.
  TxnTimestamp as_of = kInitialTimestamp;
  /// Update-log position the data has applied up to.
  size_t applied_log_pos = 0;
  RegionHealth health = RegionHealth::kHealthy;
  std::vector<std::shared_ptr<const MaterializedView>> views;

  /// Derived lookup structures, index-valued so that swapping one view for
  /// its clone leaves them intact. Rebuilt by RebuildViewIndexes() whenever
  /// the view *set* changes (AddView), not per publish.
  std::map<std::string, std::vector<size_t>> views_by_source;
  std::map<std::string, size_t> views_by_name;

  /// The heartbeat value a currency guard may trust: `heartbeat` while the
  /// pipeline is HEALTHY or SUSPECT, nullopt once QUARANTINED or RESYNCING —
  /// a quarantined region's staleness bound is no longer knowable, so guards
  /// must see "unknown region" and refuse rather than certify freshness off
  /// a heartbeat the pipeline can't back.
  std::optional<SimTimeMs> certified_heartbeat() const {
    if (!HeartbeatValid(health)) return std::nullopt;
    return heartbeat;
  }

  /// View lookup by lower-cased view name; nullptr if absent.
  const MaterializedView* FindView(const std::string& lower_name) const;
  std::shared_ptr<const MaterializedView> SharedView(
      const std::string& lower_name) const;

  /// Indices (into `views`) of the views maintained from `lower_table` (an
  /// already lower-cased source-table name); nullptr when none. Delivery hot
  /// path: one map lookup per row op.
  const std::vector<size_t>* ViewIndicesOf(
      const std::string& lower_table) const;

  void RebuildViewIndexes();
};

/// Runtime state of a currency region on the cache. All views in one region
/// are updated atomically by the same agent and are therefore mutually
/// consistent at all times (paper §3.1).
///
/// Concurrency (MVCC): the region's entire state lives in an immutable
/// RegionSnapshot published through a single atomic pointer. Readers pin an
/// epoch in the shared SnapshotEpochManager, load the pointer, and scan
/// without taking any lock; writers build the next snapshot off to the side
/// (copy-on-write at view granularity) under `publish_mu_`, store the new
/// pointer, and retire the old snapshot into a stamped list reclaimed once
/// no reader pins an epoch at or below its stamp. A delivery therefore never
/// blocks a scan and a scan never blocks a delivery.
class CurrencyRegion {
 public:
  /// Regions owned by one CacheDbms share its SnapshotEpochManager so a
  /// single query pin covers every region it touches; standalone regions
  /// (unit tests, benches) get a private manager.
  explicit CurrencyRegion(RegionDef def,
                          std::shared_ptr<SnapshotEpochManager> epochs = {});
  ~CurrencyRegion();

  CurrencyRegion(const CurrencyRegion&) = delete;
  CurrencyRegion& operator=(const CurrencyRegion&) = delete;

  const RegionDef& def() const { return def_; }
  RegionId id() const { return def_.cid; }
  SnapshotEpochManager* epochs() const { return epochs_.get(); }

  /// Lock-free read of the current snapshot. The caller MUST hold a pinned
  /// epoch in this region's SnapshotEpochManager for as long as it uses the
  /// returned pointer (see SnapshotPin); nothing else keeps it alive.
  const RegionSnapshot* CurrentPinned() const {
    return current_.load(std::memory_order_seq_cst);
  }

  /// Owning handle on the current snapshot; the shared_ptr keeps it alive
  /// regardless of pins. Mutex-guarded — the compat read path for setup
  /// code, accessors and tests, not the per-row hot path.
  std::shared_ptr<const RegionSnapshot> Snapshot() const;

  /// Builds and publishes the next snapshot. `fn` receives the current
  /// version and a mutable successor pre-seeded as a copy sharing every
  /// view; it returns false to abandon the publish (nothing changes).
  /// The epoch bump happens after `fn` returns.
  using UpdateFn =
      std::function<bool(const RegionSnapshot& cur, RegionSnapshot* next)>;
  bool PublishUpdate(const UpdateFn& fn);

  /// Transfers ownership of a fully-built view into the region (publishes a
  /// new snapshot containing it). Setup path only.
  void AddView(std::shared_ptr<MaterializedView> view);

  /// The current snapshot's views (owning copies). Setup/test convenience.
  std::vector<std::shared_ptr<const MaterializedView>> views() const;
  std::shared_ptr<const MaterializedView> view(
      const std::string& lower_name) const;

  // ---- Compatibility accessors over the current snapshot ----------------
  // Each setter republishes; each getter reads the current snapshot through
  // the owning (mutex-guarded) path. Single-field reads are individually
  // consistent but two successive calls may span a publish — callers that
  // need one coherent version take Snapshot() or hold a SnapshotPin.

  SimTimeMs local_heartbeat() const { return Snapshot()->heartbeat; }
  void set_local_heartbeat(SimTimeMs t);

  /// Upper bound on the staleness of this region's data at time `now`
  /// (t - T in the paper), clamped at 0: a reader pinned to a just-published
  /// snapshot whose heartbeat leads the frozen query clock is current, not
  /// negatively stale (mirrors semantics::CurrencyOf).
  SimTimeMs CurrencyAt(SimTimeMs now) const {
    SimTimeMs hb = local_heartbeat();
    return now > hb ? now - hb : 0;
  }

  RegionHealth health() const { return Snapshot()->health; }
  void set_health(RegionHealth h);

  std::optional<SimTimeMs> certified_heartbeat() const {
    return Snapshot()->certified_heartbeat();
  }

  /// Monotonic publication count (epoch of the current snapshot).
  uint64_t delivery_epoch() const { return Snapshot()->epoch; }

  TxnTimestamp as_of() const { return Snapshot()->as_of; }
  void set_as_of(TxnTimestamp ts);

  size_t applied_log_pos() const { return Snapshot()->applied_log_pos; }
  void set_applied_log_pos(size_t p);

  /// Retired-but-not-yet-reclaimed snapshots (test hook).
  size_t retired_count() const;

 private:
  /// Publishes `next` as the current snapshot and retires the predecessor.
  /// Caller holds publish_mu_.
  void PublishLocked(std::shared_ptr<const RegionSnapshot> next);
  void ReclaimLocked();

  RegionDef def_;
  std::shared_ptr<SnapshotEpochManager> epochs_;

  /// Serializes writers (and the compat shared_ptr read path). Never held
  /// while a reader scans.
  mutable std::mutex publish_mu_;
  /// Lock-free publication point for pinned readers.
  std::atomic<const RegionSnapshot*> current_{nullptr};
  /// Owning reference backing `current_` (under publish_mu_).
  std::shared_ptr<const RegionSnapshot> current_owner_;
  /// Retired snapshots awaiting reclamation: (retire stamp, snapshot).
  std::vector<std::pair<uint64_t, std::shared_ptr<const RegionSnapshot>>>
      retired_;
};

/// A query's read handle over the MVCC store: lazily pins an epoch on first
/// use and caches, per region, the snapshot the query saw first — so the
/// guard probe, every scan, and the audit trail of one query all read one
/// version per region. Not thread-safe; one pin per query execution.
class SnapshotPin {
 public:
  explicit SnapshotPin(SnapshotEpochManager* mgr) : mgr_(mgr) {}
  ~SnapshotPin() {
    if (slot_ != SnapshotEpochManager::kNoSlot) mgr_->Unpin(slot_);
  }

  SnapshotPin(const SnapshotPin&) = delete;
  SnapshotPin& operator=(const SnapshotPin&) = delete;

  /// The snapshot this query reads for `region`: cached from the first call.
  const RegionSnapshot* Acquire(const CurrencyRegion* region);

  /// Re-reads the region's current snapshot (degrade re-probe path), unless
  /// the query has already served data from it — after MarkServed the cached
  /// version is immutable for this query so all its local serves stay on one
  /// snapshot. The pin slot's epoch is NOT advanced: the old pin still
  /// protects other regions' cached snapshots, and the newer snapshot being
  /// current (or retired at a stamp >= our pin) is protected by it too.
  void Refresh(const CurrencyRegion* region);

  /// Marks the region's cached snapshot as served-from (freezes Refresh).
  void MarkServed(RegionId cid);

  uint64_t pinned_epoch() const { return epoch_; }

 private:
  void EnsurePinned();

  struct Entry {
    const RegionSnapshot* snap = nullptr;
    bool served = false;
  };

  SnapshotEpochManager* mgr_;
  size_t slot_ = SnapshotEpochManager::kNoSlot;
  uint64_t epoch_ = 0;
  std::map<RegionId, Entry> regions_;
};

}  // namespace rcc

#endif  // RCC_REPLICATION_REGION_H_
