#include "replication/region.h"

#include "common/logging.h"
#include "common/strings.h"

namespace rcc {

Result<std::unique_ptr<MaterializedView>> MaterializedView::Create(
    ViewDef def, const TableDef& source) {
  // Resolve view columns against the source schema.
  std::vector<size_t> proj;
  std::vector<Column> view_cols;
  for (const std::string& c : def.columns) {
    auto idx = source.schema.FindColumn(c);
    if (!idx) {
      return Status::NotFound("view column " + c + " not in table " +
                              source.name);
    }
    proj.push_back(*idx);
    view_cols.push_back(source.schema.column(*idx));
  }
  Schema view_schema((std::vector<Column>(view_cols)));

  // The view's clustered key = projection of the source clustered key.
  std::vector<size_t> view_key;
  for (const std::string& kc : source.clustered_key) {
    auto src_idx = source.schema.FindColumn(kc);
    RCC_CHECK(src_idx.has_value(), "source clustered key must resolve");
    bool found = false;
    for (size_t vi = 0; vi < proj.size(); ++vi) {
      if (proj[vi] == *src_idx) {
        view_key.push_back(vi);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("view " + def.name +
                                     " does not project key column " + kc);
    }
  }

  // Resolve predicate columns (positions in the source schema).
  std::vector<size_t> pred_cols;
  for (const ColumnRange& range : def.predicate) {
    auto idx = source.schema.FindColumn(range.column);
    if (!idx) {
      return Status::NotFound("predicate column " + range.column +
                              " not in table " + source.name);
    }
    pred_cols.push_back(*idx);
  }

  return std::unique_ptr<MaterializedView>(
      new MaterializedView(std::move(def), std::move(view_schema),
                           std::move(view_key), std::move(proj),
                           std::move(pred_cols)));
}

bool MaterializedView::PredicateMatches(const Row& source_row) const {
  for (size_t i = 0; i < def_.predicate.size(); ++i) {
    const ColumnRange& range = def_.predicate[i];
    const Value& v = source_row[pred_cols_[i]];
    if (v.is_null()) return false;
    if (range.lo && v.Compare(*range.lo) < 0) return false;
    if (range.hi && range.hi->Compare(v) < 0) return false;
  }
  return true;
}

Row MaterializedView::ProjectRow(const Row& source_row) const {
  Row out;
  out.reserve(proj_.size());
  for (size_t c : proj_) out.push_back(source_row[c]);
  return out;
}

void MaterializedView::ApplyOp(const RowOp& op) {
  switch (op.kind) {
    case RowOp::Kind::kInsert:
    case RowOp::Kind::kUpdate: {
      Row projected = ProjectRow(op.row);
      const TableKey new_key = data_.KeyOf(projected);
      // op.key is the logged *pre-image* source primary key (empty only for
      // hand-built ops that never change keys). When an update moved the row
      // to a new clustered key, the view entry filed under the old key must
      // go first, or the pre-image lives on beside the new image forever.
      const bool has_pre_image_key =
          op.kind == RowOp::Kind::kUpdate && !op.key.empty();
      if (has_pre_image_key && op.key != new_key &&
          data_.Get(op.key) != nullptr) {
        Status st = data_.Delete(op.key);
        RCC_CHECK(st.ok(), "delete of moved view row failed");
      }
      if (PredicateMatches(op.row)) {
        data_.Upsert(std::move(projected));
      } else {
        // The (possibly pre-existing) row no longer qualifies. Delete by the
        // logged source key — exactly like the kDelete arm — because after a
        // key change the *new* image's key may never have been in the view.
        const TableKey& key = has_pre_image_key ? op.key : new_key;
        if (data_.Get(key) != nullptr) {
          Status st = data_.Delete(key);
          RCC_CHECK(st.ok(), "delete of disqualified view row failed");
        }
      }
      break;
    }
    case RowOp::Kind::kDelete: {
      // op.key is the source primary key; the view key is its projection in
      // the same column order, so the values coincide.
      if (data_.Get(op.key) != nullptr) {
        Status st = data_.Delete(op.key);
        RCC_CHECK(st.ok(), "view delete failed");
      }
      break;
    }
  }
}

void MaterializedView::PopulateFrom(const Table& master) {
  data_.Clear();
  master.Scan([&](const Row& row) {
    if (PredicateMatches(row)) data_.Upsert(ProjectRow(row));
    return true;
  });
}

void CurrencyRegion::AddView(MaterializedView* view) {
  views_.push_back(view);
  views_by_source_[ToLower(view->def().source_table)].push_back(view);
}

const std::vector<MaterializedView*>* CurrencyRegion::ViewsOf(
    const std::string& lower_table) const {
  auto it = views_by_source_.find(lower_table);
  return it == views_by_source_.end() ? nullptr : &it->second;
}

}  // namespace rcc
