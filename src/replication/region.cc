#include "replication/region.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace rcc {

Result<std::unique_ptr<MaterializedView>> MaterializedView::Create(
    ViewDef def, const TableDef& source) {
  // Resolve view columns against the source schema.
  std::vector<size_t> proj;
  std::vector<Column> view_cols;
  for (const std::string& c : def.columns) {
    auto idx = source.schema.FindColumn(c);
    if (!idx) {
      return Status::NotFound("view column " + c + " not in table " +
                              source.name);
    }
    proj.push_back(*idx);
    view_cols.push_back(source.schema.column(*idx));
  }
  Schema view_schema((std::vector<Column>(view_cols)));

  // The view's clustered key = projection of the source clustered key.
  std::vector<size_t> view_key;
  for (const std::string& kc : source.clustered_key) {
    auto src_idx = source.schema.FindColumn(kc);
    RCC_CHECK(src_idx.has_value(), "source clustered key must resolve");
    bool found = false;
    for (size_t vi = 0; vi < proj.size(); ++vi) {
      if (proj[vi] == *src_idx) {
        view_key.push_back(vi);
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::InvalidArgument("view " + def.name +
                                     " does not project key column " + kc);
    }
  }

  // Resolve predicate columns (positions in the source schema).
  std::vector<size_t> pred_cols;
  for (const ColumnRange& range : def.predicate) {
    auto idx = source.schema.FindColumn(range.column);
    if (!idx) {
      return Status::NotFound("predicate column " + range.column +
                              " not in table " + source.name);
    }
    pred_cols.push_back(*idx);
  }

  return std::unique_ptr<MaterializedView>(
      new MaterializedView(std::move(def), std::move(view_schema),
                           std::move(view_key), std::move(proj),
                           std::move(pred_cols)));
}

std::shared_ptr<MaterializedView> MaterializedView::Clone() const {
  std::shared_ptr<MaterializedView> copy(new MaterializedView(
      def_, data_.schema(), data_.clustered_key(), proj_, pred_cols_));
  copy->data_.CopyContentsFrom(data_);
  return copy;
}

bool MaterializedView::PredicateMatches(const Row& source_row) const {
  for (size_t i = 0; i < def_.predicate.size(); ++i) {
    const ColumnRange& range = def_.predicate[i];
    const Value& v = source_row[pred_cols_[i]];
    if (v.is_null()) return false;
    if (range.lo && v.Compare(*range.lo) < 0) return false;
    if (range.hi && range.hi->Compare(v) < 0) return false;
  }
  return true;
}

Row MaterializedView::ProjectRow(const Row& source_row) const {
  Row out;
  out.reserve(proj_.size());
  for (size_t c : proj_) out.push_back(source_row[c]);
  return out;
}

void MaterializedView::ApplyOp(const RowOp& op) {
  switch (op.kind) {
    case RowOp::Kind::kInsert:
    case RowOp::Kind::kUpdate: {
      Row projected = ProjectRow(op.row);
      const TableKey new_key = data_.KeyOf(projected);
      // op.key is the logged *pre-image* source primary key (empty only for
      // hand-built ops that never change keys). When an update moved the row
      // to a new clustered key, the view entry filed under the old key must
      // go first, or the pre-image lives on beside the new image forever.
      const bool has_pre_image_key =
          op.kind == RowOp::Kind::kUpdate && !op.key.empty();
      if (has_pre_image_key && op.key != new_key &&
          data_.Get(op.key) != nullptr) {
        Status st = data_.Delete(op.key);
        RCC_CHECK(st.ok(), "delete of moved view row failed");
      }
      if (PredicateMatches(op.row)) {
        data_.Upsert(std::move(projected));
      } else {
        // The (possibly pre-existing) row no longer qualifies. Delete by the
        // logged source key — exactly like the kDelete arm — because after a
        // key change the *new* image's key may never have been in the view.
        const TableKey& key = has_pre_image_key ? op.key : new_key;
        if (data_.Get(key) != nullptr) {
          Status st = data_.Delete(key);
          RCC_CHECK(st.ok(), "delete of disqualified view row failed");
        }
      }
      break;
    }
    case RowOp::Kind::kDelete: {
      // op.key is the source primary key; the view key is its projection in
      // the same column order, so the values coincide.
      if (data_.Get(op.key) != nullptr) {
        Status st = data_.Delete(op.key);
        RCC_CHECK(st.ok(), "view delete failed");
      }
      break;
    }
  }
}

void MaterializedView::PopulateFrom(const Table& master) {
  data_.Clear();
  master.Scan([&](const Row& row) {
    if (PredicateMatches(row)) data_.Upsert(ProjectRow(row));
    return true;
  });
}

const MaterializedView* RegionSnapshot::FindView(
    const std::string& lower_name) const {
  auto it = views_by_name.find(lower_name);
  return it == views_by_name.end() ? nullptr : views[it->second].get();
}

std::shared_ptr<const MaterializedView> RegionSnapshot::SharedView(
    const std::string& lower_name) const {
  auto it = views_by_name.find(lower_name);
  return it == views_by_name.end() ? nullptr : views[it->second];
}

const std::vector<size_t>* RegionSnapshot::ViewIndicesOf(
    const std::string& lower_table) const {
  auto it = views_by_source.find(lower_table);
  return it == views_by_source.end() ? nullptr : &it->second;
}

void RegionSnapshot::RebuildViewIndexes() {
  views_by_source.clear();
  views_by_name.clear();
  for (size_t i = 0; i < views.size(); ++i) {
    views_by_source[ToLower(views[i]->def().source_table)].push_back(i);
    views_by_name[ToLower(views[i]->def().name)] = i;
  }
}

CurrencyRegion::CurrencyRegion(RegionDef def,
                               std::shared_ptr<SnapshotEpochManager> epochs)
    : def_(def),
      epochs_(epochs ? std::move(epochs)
                     : std::make_shared<SnapshotEpochManager>()) {
  current_owner_ = std::make_shared<RegionSnapshot>();
  current_.store(current_owner_.get(), std::memory_order_seq_cst);
}

CurrencyRegion::~CurrencyRegion() = default;

std::shared_ptr<const RegionSnapshot> CurrencyRegion::Snapshot() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return current_owner_;
}

bool CurrencyRegion::PublishUpdate(const UpdateFn& fn) {
  std::lock_guard<std::mutex> lock(publish_mu_);
  const RegionSnapshot& cur = *current_owner_;
  // The successor starts as a copy of the current version sharing every
  // view; fn clones (copy-on-write) only what it mutates.
  auto next = std::make_shared<RegionSnapshot>(cur);
  if (!fn(cur, next.get())) return false;
  next->epoch = cur.epoch + 1;
  PublishLocked(std::move(next));
  return true;
}

void CurrencyRegion::AddView(std::shared_ptr<MaterializedView> view) {
  std::shared_ptr<const MaterializedView> added = std::move(view);
  PublishUpdate([&](const RegionSnapshot&, RegionSnapshot* next) {
    next->views.push_back(added);
    next->RebuildViewIndexes();
    return true;
  });
}

std::vector<std::shared_ptr<const MaterializedView>> CurrencyRegion::views()
    const {
  return Snapshot()->views;
}

std::shared_ptr<const MaterializedView> CurrencyRegion::view(
    const std::string& lower_name) const {
  return Snapshot()->SharedView(lower_name);
}

void CurrencyRegion::set_local_heartbeat(SimTimeMs t) {
  PublishUpdate([&](const RegionSnapshot&, RegionSnapshot* next) {
    next->heartbeat = t;
    return true;
  });
}

void CurrencyRegion::set_health(RegionHealth h) {
  PublishUpdate([&](const RegionSnapshot&, RegionSnapshot* next) {
    next->health = h;
    return true;
  });
}

void CurrencyRegion::set_as_of(TxnTimestamp ts) {
  PublishUpdate([&](const RegionSnapshot&, RegionSnapshot* next) {
    next->as_of = ts;
    return true;
  });
}

void CurrencyRegion::set_applied_log_pos(size_t p) {
  PublishUpdate([&](const RegionSnapshot&, RegionSnapshot* next) {
    next->applied_log_pos = p;
    return true;
  });
}

size_t CurrencyRegion::retired_count() const {
  std::lock_guard<std::mutex> lock(publish_mu_);
  return retired_.size();
}

void CurrencyRegion::PublishLocked(
    std::shared_ptr<const RegionSnapshot> next) {
  std::shared_ptr<const RegionSnapshot> old = std::move(current_owner_);
  // Publication point: after this store every new pin observes `next`.
  current_.store(next.get(), std::memory_order_seq_cst);
  current_owner_ = std::move(next);
  // Stamp the predecessor with the pre-increment global epoch: readers
  // confirmed at a later epoch can no longer reach it (see snapshot.h).
  retired_.emplace_back(epochs_->RetireStamp(), std::move(old));
  ReclaimLocked();
}

void CurrencyRegion::ReclaimLocked() {
  uint64_t min_pinned = epochs_->MinPinnedEpoch();
  retired_.erase(
      std::remove_if(retired_.begin(), retired_.end(),
                     [&](const auto& e) { return e.first < min_pinned; }),
      retired_.end());
}

const RegionSnapshot* SnapshotPin::Acquire(const CurrencyRegion* region) {
  auto it = regions_.find(region->id());
  if (it != regions_.end()) return it->second.snap;
  EnsurePinned();
  Entry entry;
  entry.snap = region->CurrentPinned();
  return regions_.emplace(region->id(), entry).first->second.snap;
}

void SnapshotPin::Refresh(const CurrencyRegion* region) {
  auto it = regions_.find(region->id());
  if (it != regions_.end() && it->second.served) return;
  EnsurePinned();
  const RegionSnapshot* snap = region->CurrentPinned();
  if (it != regions_.end()) {
    it->second.snap = snap;
  } else {
    Entry entry;
    entry.snap = snap;
    regions_.emplace(region->id(), entry);
  }
}

void SnapshotPin::MarkServed(RegionId cid) {
  auto it = regions_.find(cid);
  if (it != regions_.end()) it->second.served = true;
}

void SnapshotPin::EnsurePinned() {
  if (slot_ == SnapshotEpochManager::kNoSlot) slot_ = mgr_->Pin(&epoch_);
}

}  // namespace rcc
