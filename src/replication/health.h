#ifndef RCC_REPLICATION_HEALTH_H_
#define RCC_REPLICATION_HEALTH_H_

#include <string_view>

namespace rcc {

/// Health of a currency region's replication pipeline — the run-time state
/// machine a faulty maintenance stream drives:
///
///   HEALTHY → SUSPECT → QUARANTINED → RESYNCING → HEALTHY
///
/// HEALTHY: deliveries arrive and apply normally; the local heartbeat is a
/// valid staleness bound. SUSPECT: recent delivery anomalies (dropped or
/// stale batches, stalls) but the applied data is still a consistent
/// back-end snapshot — the heartbeat remains valid, only confidence is
/// reduced. QUARANTINED: the staleness bound is no longer knowable (a batch
/// failed mid-apply, or too many consecutive anomalies); the local heartbeat
/// is *invalidated* — currency guards see an unknown region and refuse, and
/// degradation refuses too. RESYNCING: the agent is rebuilding every view
/// from a back-end snapshot; the heartbeat stays invalid until the rebuild
/// publishes. Kept in its own dependency-light header because the exec and
/// optimizer layers consume it without needing the region runtime.
enum class RegionHealth {
  kHealthy = 0,
  kSuspect = 1,
  kQuarantined = 2,
  kResyncing = 3,
};

inline std::string_view RegionHealthName(RegionHealth h) {
  switch (h) {
    case RegionHealth::kHealthy:
      return "healthy";
    case RegionHealth::kSuspect:
      return "suspect";
    case RegionHealth::kQuarantined:
      return "quarantined";
    case RegionHealth::kResyncing:
      return "resyncing";
  }
  return "?";
}

/// True when the region's local heartbeat may be used as a staleness bound.
/// SUSPECT data is still a consistent snapshot (anomalies were rejected, not
/// applied), so only quarantine and resync invalidate the heartbeat.
inline bool HeartbeatValid(RegionHealth h) {
  return h == RegionHealth::kHealthy || h == RegionHealth::kSuspect;
}

}  // namespace rcc

#endif  // RCC_REPLICATION_HEALTH_H_
