#ifndef RCC_REPLICATION_SNAPSHOT_H_
#define RCC_REPLICATION_SNAPSHOT_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace rcc {

/// Epoch-based reclamation for published region snapshots.
///
/// The protocol has two sides:
///
///  * Readers claim a slot and publish the current global epoch into it
///    (`Pin`), then load snapshot pointers with plain seq_cst loads. The
///    pin is confirmed only once the global epoch is re-read unchanged, so
///    a pinned epoch E means "this reader entered no earlier than the
///    moment the global epoch was E".
///  * Writers publish a new snapshot pointer (seq_cst store), then stamp
///    the retired predecessor with `RetireStamp()` — the global epoch value
///    *before* the post-publish increment. A retired snapshot is reclaimed
///    once `stamp < MinPinnedEpoch()`.
///
/// Why that is safe (all operations seq_cst, so they form one total order
/// S): the writer's pointer store precedes its epoch increment in S. A
/// reader whose *confirmed* pin epoch is > stamp confirmed its pin by a
/// global-epoch load that followed the increment in S, hence followed the
/// pointer store; every snapshot-pointer load the reader performs after
/// that confirmation therefore observes the new pointer (or a newer one),
/// never the retired one. Conversely a reader that might still dereference
/// the retired pointer has pinned epoch <= stamp and blocks reclamation
/// via MinPinnedEpoch().
///
/// One manager is shared by all regions of a CacheDbms, so a single pin
/// protects every snapshot a query touches across regions.
class SnapshotEpochManager {
 public:
  static constexpr uint64_t kIdleEpoch = ~0ull;
  static constexpr size_t kSlots = 64;
  static constexpr size_t kNoSlot = ~size_t{0};

  SnapshotEpochManager() = default;
  SnapshotEpochManager(const SnapshotEpochManager&) = delete;
  SnapshotEpochManager& operator=(const SnapshotEpochManager&) = delete;

  /// Claims a free slot and publishes the current global epoch into it.
  /// Spins (with yields) if all slots are busy — kSlots is sized well above
  /// the engine's worker-pool bound, so contention is theoretical. Returns
  /// the slot index; the confirmed pinned epoch is written to `*epoch_out`.
  size_t Pin(uint64_t* epoch_out);

  /// Releases a slot claimed by Pin.
  void Unpin(size_t slot);

  /// Writer side: advances the global epoch and returns its value *before*
  /// the increment — the stamp for the snapshot retired by this publish.
  uint64_t RetireStamp() { return global_.fetch_add(1); }

  /// Smallest epoch any active reader has pinned; the current global epoch
  /// when no reader is active. Retired entries with stamp < MinPinnedEpoch()
  /// can be freed.
  uint64_t MinPinnedEpoch() const;

  uint64_t current_epoch() const { return global_.load(); }

 private:
  /// One cache line per slot so reader pins never false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> epoch{kIdleEpoch};
  };

  std::atomic<uint64_t> global_{1};
  Slot slots_[kSlots];
};

}  // namespace rcc

#endif  // RCC_REPLICATION_SNAPSHOT_H_
