#include "replication/heartbeat.h"

// HeartbeatStore is header-only; this translation unit anchors the library.

namespace rcc {}  // namespace rcc
