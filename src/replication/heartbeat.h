#ifndef RCC_REPLICATION_HEARTBEAT_H_
#define RCC_REPLICATION_HEARTBEAT_H_

#include <map>
#include <optional>

#include "catalog/catalog.h"
#include "common/clock.h"

namespace rcc {

/// The heartbeat table of paper §3.1: one row per currency region holding a
/// timestamp. The back-end hosts the *global* heartbeat table whose rows are
/// "beaten" (set to the current time) at each region's heartbeat interval; a
/// replica of each row travels to the cache with the region's other updates
/// and becomes the *local* heartbeat, bounding the staleness of the region's
/// data: if the local value is T at current time t, all updates up to T have
/// been applied, so the region reflects a snapshot no older than t - T.
class HeartbeatStore {
 public:
  HeartbeatStore() = default;

  /// Sets region `cid`'s heartbeat row to `now` (the back-end stored proc).
  void Beat(RegionId cid, SimTimeMs now) { rows_[cid] = now; }

  /// Current timestamp value of region `cid`'s row, or nullopt when the row
  /// was never beaten. A region defined mid-run has *unknown* currency until
  /// its first beat — callers must not conflate that with "synced at
  /// simulation start" (time 0), which would report maximal staleness.
  std::optional<SimTimeMs> Get(RegionId cid) const {
    auto it = rows_.find(cid);
    if (it == rows_.end()) return std::nullopt;
    return it->second;
  }

  /// Convenience for callers with a documented fallback.
  SimTimeMs GetOr(RegionId cid, SimTimeMs fallback) const {
    return Get(cid).value_or(fallback);
  }

  /// Number of heartbeat rows.
  size_t size() const { return rows_.size(); }

 private:
  std::map<RegionId, SimTimeMs> rows_;
};

}  // namespace rcc

#endif  // RCC_REPLICATION_HEARTBEAT_H_
