#ifndef RCC_REPLICATION_HEARTBEAT_H_
#define RCC_REPLICATION_HEARTBEAT_H_

#include <map>

#include "catalog/catalog.h"
#include "common/clock.h"

namespace rcc {

/// The heartbeat table of paper §3.1: one row per currency region holding a
/// timestamp. The back-end hosts the *global* heartbeat table whose rows are
/// "beaten" (set to the current time) at each region's heartbeat interval; a
/// replica of each row travels to the cache with the region's other updates
/// and becomes the *local* heartbeat, bounding the staleness of the region's
/// data: if the local value is T at current time t, all updates up to T have
/// been applied, so the region reflects a snapshot no older than t - T.
class HeartbeatStore {
 public:
  HeartbeatStore() = default;

  /// Sets region `cid`'s heartbeat row to `now` (the back-end stored proc).
  void Beat(RegionId cid, SimTimeMs now) { rows_[cid] = now; }

  /// Current timestamp value of region `cid`'s row (0 if never beaten,
  /// i.e. synced at simulation start).
  SimTimeMs Get(RegionId cid) const {
    auto it = rows_.find(cid);
    return it == rows_.end() ? 0 : it->second;
  }

  /// Number of heartbeat rows.
  size_t size() const { return rows_.size(); }

 private:
  std::map<RegionId, SimTimeMs> rows_;
};

}  // namespace rcc

#endif  // RCC_REPLICATION_HEARTBEAT_H_
