#ifndef RCC_REPLICATION_FAULT_INJECTOR_H_
#define RCC_REPLICATION_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>

#include "common/clock.h"
#include "common/fault_config.h"
#include "common/rng.h"

namespace rcc {

/// Faults injected into the replication pipeline (the backend→cache
/// maintenance stream), mirroring FaultInjectorConfig for the query channel.
/// Everything is driven by the shared seed/outage knobs of
/// FaultScheduleConfig plus per-fault probabilities, so a fault schedule is
/// exactly reproducible from the seed.
struct ReplicationFaultConfig : FaultScheduleConfig {
  /// Probability that a delivery batch is silently lost in transit.
  double drop_probability = 0.0;
  /// Probability that a delivery batch is delayed by delay_ms on top of the
  /// region's update_delay. A delay longer than update_interval makes the
  /// batch arrive *after* the next wakeup's batch — out-of-order arrival.
  double delay_probability = 0.0;
  SimTimeMs delay_ms = 0;
  /// Probability that a delivery batch arrives twice (retransmission bug).
  double duplicate_probability = 0.0;
  /// Probability, evaluated at each wakeup, that the agent stalls — skips
  /// this and the following stall_wakeups-1 wakeups entirely (GC pause,
  /// swapped-out process, wedged subscription).
  double stall_probability = 0.0;
  int stall_wakeups = 3;
  /// Probability that a batch is poisoned: one of its row ops fails to
  /// apply mid-batch (corrupt op, schema drift), leaving the batch
  /// half-applied unless the agent defends.
  double poison_probability = 0.0;
};

/// Per-batch delivery fate, drawn once at the wakeup that schedules it.
struct DeliveryFate {
  /// Batch never arrives (random drop or outage window).
  bool drop = false;
  /// Batch arrives this much later than the nominal update_delay.
  SimTimeMs extra_delay_ms = 0;
  /// Batch arrives a second time (at the nominal time).
  bool duplicate = false;
};

/// Deterministic, seeded fault source for one distribution agent. Decisions
/// are drawn from a private RNG stream in wakeup order, so the whole fault
/// schedule replays exactly from (seed, wakeup sequence). Counters are plain
/// int64 — the injector is only ever consulted from the simulation thread
/// (agent wakeups and deliveries), never from query workers.
class ReplicationFaultInjector {
 public:
  explicit ReplicationFaultInjector(ReplicationFaultConfig config)
      : config_(std::move(config)), rng_(config_.seed) {}

  ReplicationFaultInjector(const ReplicationFaultInjector&) = delete;
  ReplicationFaultInjector& operator=(const ReplicationFaultInjector&) =
      delete;

  /// Draws the fate of the batch snapshotted at `now`. An outage window
  /// (shared schedule) downs the maintenance stream: the batch drops.
  DeliveryFate DrawDeliveryFate(SimTimeMs now) {
    DeliveryFate fate;
    if (InOutageAt(config_, now)) {
      fate.drop = true;
      ++outage_drops_;
      ++batches_dropped_;
      return fate;
    }
    if (config_.drop_probability > 0 &&
        rng_.NextDouble() < config_.drop_probability) {
      fate.drop = true;
      ++batches_dropped_;
      return fate;
    }
    if (config_.delay_probability > 0 &&
        rng_.NextDouble() < config_.delay_probability) {
      fate.extra_delay_ms = config_.delay_ms;
      ++batches_delayed_;
    }
    if (config_.duplicate_probability > 0 &&
        rng_.NextDouble() < config_.duplicate_probability) {
      fate.duplicate = true;
      ++batches_duplicated_;
    }
    return fate;
  }

  /// At a wakeup: number of wakeups (including this one) the agent should
  /// skip, or 0 to proceed normally.
  int DrawStall() {
    if (config_.stall_probability > 0 &&
        rng_.NextDouble() < config_.stall_probability) {
      ++stalls_;
      return config_.stall_wakeups > 0 ? config_.stall_wakeups : 1;
    }
    return 0;
  }

  /// For a batch of `batch_ops` row ops: index of the op that fails to
  /// apply (poison), or nullopt for a clean batch.
  std::optional<size_t> DrawPoisonedOp(size_t batch_ops) {
    if (batch_ops == 0 || config_.poison_probability <= 0) return std::nullopt;
    if (rng_.NextDouble() >= config_.poison_probability) return std::nullopt;
    ++poisoned_batches_;
    return static_cast<size_t>(
        rng_.Uniform(0, static_cast<int64_t>(batch_ops) - 1));
  }

  const ReplicationFaultConfig& config() const { return config_; }

  int64_t batches_dropped() const { return batches_dropped_; }
  int64_t outage_drops() const { return outage_drops_; }
  int64_t batches_delayed() const { return batches_delayed_; }
  int64_t batches_duplicated() const { return batches_duplicated_; }
  int64_t stalls() const { return stalls_; }
  int64_t poisoned_batches() const { return poisoned_batches_; }

 private:
  ReplicationFaultConfig config_;
  Rng rng_;
  int64_t batches_dropped_ = 0;
  int64_t outage_drops_ = 0;
  int64_t batches_delayed_ = 0;
  int64_t batches_duplicated_ = 0;
  int64_t stalls_ = 0;
  int64_t poisoned_batches_ = 0;
};

}  // namespace rcc

#endif  // RCC_REPLICATION_FAULT_INJECTOR_H_
