#include "replication/agent.h"

#include <mutex>
#include <shared_mutex>

#include "common/logging.h"
#include "common/strings.h"

namespace rcc {

void DistributionAgent::Start(SimTimeMs first_wakeup) {
  scheduler_->SchedulePeriodic(first_wakeup, region_->def().update_interval,
                               [this](SimTimeMs now) { Wakeup(now); });
}

void DistributionAgent::Wakeup(SimTimeMs now) {
  // Snapshot what is committed *now*; it arrives update_delay later. The
  // captured heartbeat value is the region's global heartbeat row at the
  // snapshot, which is what the replica of that row will contain.
  size_t snapshot_pos = log_->UpperBoundByCommitTime(now);
  std::optional<SimTimeMs> captured_hb = global_heartbeat_->Get(region_->id());
  SimTimeMs deliver_at = now + region_->def().update_delay;
  scheduler_->ScheduleAt(deliver_at,
                         [this, snapshot_pos, captured_hb](SimTimeMs at) {
                           Deliver(snapshot_pos, captured_hb, at);
                         });
}

void DistributionAgent::Deliver(size_t snapshot_pos,
                                std::optional<SimTimeMs> captured_heartbeat,
                                SimTimeMs delivered_at) {
  int64_t batch_ops = 0;
  {
    // The whole batch is applied under the region's exclusive lock: queries
    // on worker threads holding it shared never observe a half-applied
    // transaction, preserving the invariant that every view in the region
    // reflects one back-end snapshot.
    std::unique_lock<std::shared_mutex> region_guard(region_->data_lock());
    // Deliveries are scheduled in wake-up order with a constant delay, so
    // snapshot positions arrive non-decreasing.
    size_t from = region_->applied_log_pos();
    // Ops of one transaction typically hit one table; memoize the last
    // lower-casing so the common case pays no allocation either.
    std::string last_table;
    std::string last_lower;
    for (size_t i = from; i < snapshot_pos; ++i) {
      const CommittedTxn& txn = log_->at(i);
      // Apply the whole transaction to every view in the region before moving
      // to the next one: commit-order, transaction-at-a-time application.
      for (const RowOp& op : txn.ops) {
        if (op.table != last_table) {
          last_table = op.table;
          last_lower = ToLower(op.table);
        }
        const std::vector<MaterializedView*>* views =
            region_->ViewsOf(last_lower);
        if (views == nullptr) continue;
        for (MaterializedView* view : *views) {
          view->ApplyOp(op);
          ++ops_applied_;
          ++batch_ops;
        }
      }
    }
    if (snapshot_pos > from) {
      region_->set_applied_log_pos(snapshot_pos);
      region_->set_as_of(log_->TimestampAtPosition(snapshot_pos));
    }
    // The heartbeat store is the publication point: it happens after the data
    // is in place, so a guard observing heartbeat T is guaranteed the region
    // reflects at least snapshot T. A never-beaten global row contributes
    // nothing (unknown, not "stale since time 0").
    if (captured_heartbeat.has_value() &&
        *captured_heartbeat > region_->local_heartbeat()) {
      region_->set_local_heartbeat(*captured_heartbeat);
    }
    region_->BumpDeliveryEpoch();
    ++deliveries_;
  }
  // Outside the data lock: the observer may do arbitrary engine-side work
  // (metrics, tracing) and must not extend the exclusive section.
  if (observer_) {
    observer_(region_->id(), delivered_at, batch_ops, captured_heartbeat);
  }
}

}  // namespace rcc
