#include "replication/agent.h"

#include <memory>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/strings.h"

namespace rcc {

void DistributionAgent::Start(SimTimeMs first_wakeup) {
  if (cancel_ == nullptr) cancel_ = MakeCancelToken();
  scheduler_->SchedulePeriodic(
      first_wakeup, region_->def().update_interval,
      [this](SimTimeMs now) { Wakeup(now); }, cancel_);
}

void DistributionAgent::Stop() {
  if (cancel_ != nullptr) {
    cancel_->store(true, std::memory_order_release);
  }
}

void DistributionAgent::TransitionHealth(RegionHealth to, SimTimeMs at) {
  RegionHealth from = region_->health();
  if (from == to) return;
  region_->set_health(to);
  if (health_observer_) health_observer_(region_->id(), from, to, at);
}

void DistributionAgent::NoteAnomaly(SimTimeMs at) {
  RegionHealth h = region_->health();
  if (h == RegionHealth::kQuarantined || h == RegionHealth::kResyncing) {
    return;  // already out of service; resync is the only way back
  }
  ++consecutive_anomalies_;
  if (consecutive_anomalies_ >= quarantine_after_) {
    quarantines_.fetch_add(1, std::memory_order_relaxed);
    quarantined_at_ = at;
    TransitionHealth(RegionHealth::kQuarantined, at);
  } else {
    TransitionHealth(RegionHealth::kSuspect, at);
  }
}

void DistributionAgent::Wakeup(SimTimeMs now) {
  // An injected stall: the agent process is wedged — no snapshot, no
  // delivery. Staleness grows honestly (the heartbeat stops advancing) and
  // each missed wakeup counts as an anomaly, so a long stall escalates to
  // quarantine and a resync rather than silently serving ever-staler data.
  if (stall_remaining_ > 0) {
    --stall_remaining_;
    NoteAnomaly(now);
    return;
  }

  RegionHealth health = region_->health();
  if (health == RegionHealth::kResyncing) {
    // A resync snapshot is already in flight; wait for it.
    return;
  }
  if (health == RegionHealth::kQuarantined) {
    // Begin recovery: the resync snapshot is taken now and, like any other
    // delivery, becomes visible after the propagation delay. Recovery is
    // checked *before* drawing a new stall, so once an in-progress stall
    // drains the region is back to HEALTHY within a bounded number of
    // wakeups (one to enter RESYNCING plus the propagation delay) under any
    // fault mix.
    if (master_tables_ == nullptr) return;  // cannot resync without masters
    TransitionHealth(RegionHealth::kResyncing, now);
    scheduler_->ScheduleAt(
        now + region_->def().update_delay,
        [this](SimTimeMs at) { Resync(at); }, cancel_);
    return;
  }

  if (injector_ != nullptr) {
    int stall = injector_->DrawStall();
    if (stall > 0) {
      stall_remaining_ = stall - 1;  // this wakeup is the first one skipped
      NoteAnomaly(now);
      return;
    }
  }

  // Snapshot what is committed *now*; it arrives update_delay later. The
  // captured heartbeat value is the region's global heartbeat row at the
  // snapshot, which is what the replica of that row will contain.
  size_t snapshot_pos = log_->UpperBoundByCommitTime(now);
  std::optional<SimTimeMs> captured_hb = global_heartbeat_->Get(region_->id());
  SimTimeMs deliver_at = now + region_->def().update_delay;

  DeliveryFate fate;
  if (injector_ != nullptr) fate = injector_->DrawDeliveryFate(now);
  if (fate.drop) {
    // The batch is lost in transit. No data is corrupted — the next
    // successful delivery applies the whole gap from the log — but the
    // missed install is an anomaly.
    NoteAnomaly(now);
    return;
  }
  scheduler_->ScheduleAt(deliver_at + fate.extra_delay_ms,
                         [this, snapshot_pos, captured_hb](SimTimeMs at) {
                           Deliver(snapshot_pos, captured_hb, at);
                         },
                         cancel_);
  if (fate.duplicate) {
    scheduler_->ScheduleAt(deliver_at,
                           [this, snapshot_pos, captured_hb](SimTimeMs at) {
                             Deliver(snapshot_pos, captured_hb, at);
                           },
                           cancel_);
  }
}

void DistributionAgent::Deliver(size_t snapshot_pos,
                                std::optional<SimTimeMs> captured_heartbeat,
                                SimTimeMs delivered_at) {
  int64_t batch_ops = 0;
  bool poisoned = false;
  bool stale = false;
  RegionHealth health_before = RegionHealth::kHealthy;
  TxnTimestamp published_as_of = kInitialTimestamp;
  SimTimeMs published_hb = 0;
  // Build-then-publish: the successor snapshot is assembled off to the side
  // — cloning only the views this batch touches — and becomes visible in one
  // atomic pointer store. Readers pinned to the old snapshot keep scanning
  // it untouched; the install never blocks a scan and never waits for one.
  region_->PublishUpdate([&](const RegionSnapshot& cur, RegionSnapshot* next) {
    health_before = cur.health;
    size_t from = cur.applied_log_pos;
    // Monotonicity defense: deliveries are *usually* scheduled in wake-up
    // order with a constant delay, but a delayed batch can arrive after a
    // later snapshot was applied (out-of-order), and a duplicated batch
    // arrives with its range already applied. The applied-log-pos check —
    // not an assumption about arrival order — is what keeps application in
    // commit order: a batch whose snapshot is behind the applied position
    // carries nothing new (its heartbeat is older than the installed one
    // too, since both grow with snapshot time), so it is rejected whole.
    // A batch landing during resync would race the rebuild snapshot, which
    // covers its range anyway.
    if (snapshot_pos < from || cur.health == RegionHealth::kResyncing) {
      stale_batches_rejected_.fetch_add(1, std::memory_order_relaxed);
      stale = true;
      return false;  // publish nothing
    }
    // A poisoned batch fails on one of its row ops. Decide up front which
    // one (deterministically, from the injector's seed).
    std::optional<size_t> poison_at;
    if (injector_ != nullptr) {
      size_t total_ops = 0;
      for (size_t i = from; i < snapshot_pos; ++i) {
        total_ops += log_->at(i).ops.size();
      }
      poison_at = injector_->DrawPoisonedOp(total_ops);
    }
    // Copy-on-write at view granularity: a view is cloned the first time
    // the batch touches it; untouched views stay shared with the previous
    // snapshot. `clones[vi]` is the mutable alias of `next->views[vi]`.
    std::vector<std::shared_ptr<MaterializedView>> clones(next->views.size());
    // Ops of one transaction typically hit one table; memoize the last
    // lower-casing so the common case pays no allocation either.
    std::string last_table;
    std::string last_lower;
    size_t op_index = 0;
    for (size_t i = from; i < snapshot_pos && !poisoned; ++i) {
      const CommittedTxn& txn = log_->at(i);
      // Apply the whole transaction to every view in the region before
      // moving to the next one: commit-order, transaction-at-a-time
      // application.
      for (const RowOp& op : txn.ops) {
        if (poison_at.has_value() && op_index == *poison_at) {
          poisoned = true;
          break;
        }
        ++op_index;
        if (op.table != last_table) {
          last_table = op.table;
          last_lower = ToLower(op.table);
        }
        const std::vector<size_t>* view_idx = next->ViewIndicesOf(last_lower);
        if (view_idx == nullptr) continue;
        for (size_t vi : *view_idx) {
          if (clones[vi] == nullptr) {
            clones[vi] = next->views[vi]->Clone();
            next->views[vi] = clones[vi];
          }
          clones[vi]->ApplyOp(op);
          ++batch_ops;
        }
      }
    }
    if (poisoned) {
      quarantines_.fetch_add(1, std::memory_order_relaxed);
      quarantined_at_ = delivered_at;
      // Mid-batch failure: the half-applied clones are simply discarded —
      // under MVCC there is nothing to roll back, the published data is
      // still the last complete snapshot. What must change atomically with
      // the data is the health gate: QUARANTINED travels in the same
      // immutable snapshot, so no guard can certify freshness off a
      // heartbeat while the pipeline is stuck between back-end snapshots.
      // Neither applied_log_pos, as_of, nor the heartbeat advance.
      *next = cur;
      next->health = RegionHealth::kQuarantined;
      batch_ops = 0;
      return true;
    }
    ops_applied_.fetch_add(batch_ops, std::memory_order_relaxed);
    if (snapshot_pos > from) {
      next->applied_log_pos = snapshot_pos;
      next->as_of = log_->TimestampAtPosition(snapshot_pos);
    }
    // The heartbeat is folded into the same snapshot as the data it
    // certifies, so a guard observing heartbeat T from a pinned snapshot is
    // guaranteed the views it scans reflect at least snapshot T. A
    // never-beaten global row contributes nothing (unknown, not "stale
    // since time 0").
    if (captured_heartbeat.has_value() &&
        *captured_heartbeat > next->heartbeat) {
      next->heartbeat = *captured_heartbeat;
    }
    published_as_of = next->as_of;
    published_hb = next->heartbeat;
#ifdef RCC_MVCC_MUTATE
    // Planted publication-order bug (mvcc-mutate preset): the pointer is
    // published while the snapshot still carries the *old* heartbeat, as if
    // the store had happened before the heartbeat fold. The install stream
    // reports the folded value, so every guard pinned to the published
    // snapshot diverges from the audit trail — the sim oracle's
    // heartbeat-divergence rule must flag it. Never ship this.
    next->heartbeat = cur.heartbeat;
#endif
    deliveries_.fetch_add(1, std::memory_order_relaxed);
    return true;
  });
  // Outside the publish mutex: health notifications and the observer may do
  // arbitrary engine-side work (metrics, tracing) and must not extend the
  // writer's critical section.
  if (poisoned) {
    if (health_observer_) {
      // The transition already published inside the snapshot; report it.
      health_observer_(region_->id(), health_before,
                       RegionHealth::kQuarantined, delivered_at);
    }
    return;
  }
  if (stale) {
    NoteAnomaly(delivered_at);
    return;
  }
  // A clean install restores confidence: SUSPECT heals back to HEALTHY.
  consecutive_anomalies_ = 0;
  if (health_before == RegionHealth::kSuspect) {
    TransitionHealth(RegionHealth::kHealthy, delivered_at);
  }
  if (observer_) {
    observer_(region_->id(), delivered_at, batch_ops, captured_heartbeat);
  }
  if (install_observer_) {
    // Report the values the installer committed to publishing — not a
    // re-read of the region, which a concurrent publish (or the planted
    // mutation) could have moved.
    install_observer_(region_->id(), delivered_at, published_as_of,
                      published_hb, batch_ops, /*resync=*/false);
  }
}

void DistributionAgent::Resync(SimTimeMs now) {
  bool ok = true;
  TxnTimestamp published_as_of = kInitialTimestamp;
  SimTimeMs published_hb = 0;
  region_->PublishUpdate([&](const RegionSnapshot&, RegionSnapshot* next) {
    // Rebuild every view from the master tables. The master data and the
    // update log are mutated only by the simulation thread — which is the
    // thread running this event — so everything read here is one consistent
    // back-end snapshot as of `now`; setting applied_log_pos to the current
    // log size is the log catch-up (nothing committed at or before `now` is
    // missing from the rebuilt views).
    for (size_t vi = 0; vi < next->views.size(); ++vi) {
      const Table* master =
          master_tables_(next->views[vi]->def().source_table);
      if (master == nullptr) {
        ok = false;
        return false;
      }
      std::shared_ptr<MaterializedView> rebuilt = next->views[vi]->Clone();
      rebuilt->PopulateFrom(*master);
      next->views[vi] = std::move(rebuilt);
    }
    next->applied_log_pos = log_->size();
    next->as_of = log_->TimestampAtPosition(log_->size());
    if (now > next->heartbeat) next->heartbeat = now;
    // Recovery publishes the rebuilt data, the restored heartbeat, and the
    // HEALTHY flip in one immutable snapshot — the mirror-image ordering
    // dance of the lock era is unnecessary when readers can only ever
    // observe whole versions.
    next->health = RegionHealth::kHealthy;
    published_as_of = next->as_of;
    published_hb = next->heartbeat;
    return true;
  });
  if (!ok) {
    // A master table vanished mid-resync: stay quarantined and retry at a
    // later wakeup.
    TransitionHealth(RegionHealth::kQuarantined, now);
    return;
  }
  resyncs_.fetch_add(1, std::memory_order_relaxed);
  resync_latency_total_ms_.fetch_add(now - quarantined_at_,
                                     std::memory_order_relaxed);
  consecutive_anomalies_ = 0;
  if (health_observer_) {
    health_observer_(region_->id(), RegionHealth::kResyncing,
                     RegionHealth::kHealthy, now);
  }
  if (install_observer_) {
    install_observer_(region_->id(), now, published_as_of, published_hb,
                      /*ops=*/0, /*resync=*/true);
  }
}

}  // namespace rcc
